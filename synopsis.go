package probsyn

import (
	"io"

	"probsyn/internal/synopsis"
)

// Synopsis is the shared query surface of every synopsis family —
// histograms and wavelets both implement it — so callers can estimate
// frequencies, answer range sums, and persist a synopsis without caring
// which family produced it. See internal/synopsis for the interface and
// codec details.
type Synopsis = synopsis.Synopsis

// Frontier is a whole cost-vs-budget curve from one build: optimal costs
// and a Synopsis extractor for every budget 1 <= b <= Bmax, with each
// extracted synopsis byte-identical (through the codec) to an independent
// build at that budget. BuildSweep constructs one for either family.
type Frontier = synopsis.Frontier

// MarshalSynopsis serializes a synopsis in the versioned binary envelope
// ("PSYN" magic, type-tagged, CRC-checked payload).
func MarshalSynopsis(s Synopsis) ([]byte, error) { return synopsis.Marshal(s) }

// MarshalSynopsisJSON serializes a synopsis in the versioned JSON envelope.
func MarshalSynopsisJSON(s Synopsis) ([]byte, error) { return synopsis.MarshalJSON(s) }

// UnmarshalSynopsis deserializes a synopsis from either envelope (binary
// or JSON, sniffed), returning the registered concrete family behind the
// Synopsis interface.
func UnmarshalSynopsis(data []byte) (Synopsis, error) { return synopsis.Unmarshal(data) }

// WriteSynopsis writes a synopsis to w in the binary envelope.
func WriteSynopsis(w io.Writer, s Synopsis) error {
	data, err := synopsis.Marshal(s)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// ReadSynopsis reads one synopsis (either envelope) from r.
func ReadSynopsis(r io.Reader) (Synopsis, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return synopsis.Unmarshal(data)
}
