package probsyn

import (
	"context"
	"fmt"

	"probsyn/internal/engine"
	"probsyn/internal/haar"
	"probsyn/internal/hist"
	"probsyn/internal/pdata"
	"probsyn/internal/shard"
	"probsyn/internal/wavelet"
)

// ShardedResult is a domain-sharded build: the item domain is split into
// k contiguous shards, each shard's synopsis is built independently (and
// concurrently), and the per-shard solutions are merged under the global
// term budget. The per-shard solutions survive as Pieces — Pieces[s] is
// shard s's synopsis over its own local domain [0, Bounds[s+1]-Bounds[s]),
// covering global items [Bounds[s], Bounds[s+1]) — so a cluster can serve
// range queries from pieces without ever assembling the merged synopsis.
type ShardedResult struct {
	// Synopsis is the merged global synopsis over the full domain.
	Synopsis Synopsis
	// Pieces are the k per-shard synopses over their local subdomains.
	Pieces []Synopsis
	// Bounds are the k+1 global item boundaries of the shards, as
	// returned by ShardBounds: Pieces[s] covers [Bounds[s], Bounds[s+1]).
	Bounds []int
	// Bound is the additive suboptimality certificate:
	// Synopsis.ErrorCost() <= unsharded optimum + Bound. It is exactly 0
	// for the SSE wavelet family, whose sharded merge is exact.
	Bound float64
}

// ShardBounds returns the k+1 global item boundaries a k-way sharded
// build uses over a domain of n items: near-equal contiguous ranges,
// shard s covering [s*n/k, (s+1)*n/k). Wavelet builds shard the
// zero-padded power-of-two domain (pass wavelet=true), so their
// boundaries divide haar.Pow2Ceil(n) instead of n; a cluster node can
// recompute the same boundaries from (n, k) alone, with no coordination.
func ShardBounds(n, k int, wavelet bool) []int {
	if wavelet {
		n = haar.Pow2Ceil(n)
	}
	return shard.Bounds(n, k)
}

// BuildSharded builds a B-term synopsis by splitting the domain into k
// contiguous shards, building each shard concurrently, and merging:
//
//   - SSE/SSEFixed wavelets merge per-shard coefficient selections into
//     the exact global top-B — bit-identical to the unsharded build,
//     expected SSE included (Bound = 0);
//   - histograms and the restricted wavelet DP metrics solve each shard
//     to a cost-vs-budget frontier and split B across shards by an exact
//     allocation DP, with the reported cost the true combined expected
//     error and Bound certifying it against the unsharded optimum.
//
// k = 1 is the unsharded build (one piece spanning the domain); wavelet
// shard counts must be powers of two. The DP families need B >= k (every
// shard retains at least one term). On a pool with a MaxBuilds admission
// cap, a k-way sharded build holds up to k build tokens — acquired
// all-or-nothing, and gracefully degrading to fewer (serializing shards)
// when the cap is smaller — so a cluster of sharded builds cannot
// oversubscribe the pool. Accepts WithQuantize for the restricted
// wavelet family; WithEps and WithUnrestricted have no sharded merge
// rule and are rejected.
func BuildSharded(src Source, m Metric, B, k int, opts ...BuildOption) (*ShardedResult, error) {
	cfg := buildConfig{params: DefaultParams(), parallelism: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.shardsSet {
		return nil, fmt.Errorf("probsyn: BuildSharded takes the shard count directly; drop WithShards")
	}
	return buildSharded(src, m, B, k, &cfg)
}

func buildSharded(src Source, m Metric, B, k int, cfg *buildConfig) (*ShardedResult, error) {
	if k < 1 {
		return nil, fmt.Errorf("probsyn: shard count %d < 1", k)
	}
	if cfg.epsSet {
		return nil, fmt.Errorf("probsyn: the (1+eps)-approximate DP has no sharded merge rule")
	}
	if cfg.quantizeSet {
		return nil, fmt.Errorf("probsyn: unrestricted coefficient values have no sharded merge rule")
	}
	if k == 1 {
		syn, err := buildOne(src, m, B, cfg)
		if err != nil {
			return nil, err
		}
		return &ShardedResult{
			Synopsis: syn,
			Pieces:   []Synopsis{syn},
			Bounds:   ShardBounds(src.Domain(), 1, cfg.wavelet),
		}, nil
	}
	pool := cfg.pool
	if pool == nil {
		pool = engine.New(engine.Options{Workers: cfg.parallelism})
	}
	// Admission: ask for one build token per shard, all-or-nothing so
	// concurrent multi-token holders cannot deadlock a capped pool, and
	// fan the per-shard builds at whatever width was granted.
	granted, release, err := pool.AcquireN(context.Background(), k)
	if err != nil {
		return nil, err
	}
	defer release()
	if cfg.wavelet {
		return buildShardedWavelet(src, m, B, k, cfg, pool, granted)
	}
	return buildShardedHistogram(src, m, B, k, cfg, pool, granted)
}

func buildShardedWavelet(src Source, m Metric, B, k int, cfg *buildConfig, pool *engine.Pool, conc int) (*ShardedResult, error) {
	if cfg.weights != nil {
		return nil, fmt.Errorf("probsyn: workload weights are a histogram option")
	}
	bounds := ShardBounds(src.Domain(), k, true)
	if m == SSE || m == SSEFixed {
		if cfg.rquantSet {
			return nil, fmt.Errorf("probsyn: the SSE wavelet build is greedy-exact (Theorem 7); incoming-value quantization applies to the restricted DP metrics")
		}
		res, _, err := wavelet.BuildShardedSSE(src, B, k, conc)
		if err != nil {
			return nil, err
		}
		return rootSharded(res.Merged, res.Pieces, bounds, res.Bound), nil
	}
	q := 0
	if cfg.rquantSet {
		q = cfg.rquant
	}
	res, err := wavelet.BuildShardedRestricted(src, m, cfg.params, B, k, q, pool, conc)
	if err != nil {
		return nil, err
	}
	return rootSharded(res.Merged, res.Pieces, bounds, res.Bound), nil
}

// buildShardedHistogram prices shards against the source's per-item
// marginal value pdf. That is lossless: every bucket-cost oracle is a
// per-item expectation aggregated over the bucket, so it depends on the
// per-item marginals only, and AsValuePDF preserves those for all three
// data models.
func buildShardedHistogram(src Source, m Metric, B, k int, cfg *buildConfig, pool *engine.Pool, conc int) (*ShardedResult, error) {
	if cfg.rquantSet {
		return nil, fmt.Errorf("probsyn: incoming-value quantization is a wavelet option")
	}
	vp := pdata.AsValuePDF(src)
	if k > vp.N {
		return nil, fmt.Errorf("probsyn: %d shards over %d items (need k <= n)", k, vp.N)
	}
	bounds := shard.Bounds(vp.N, k)
	oracles := make([]hist.Oracle, k)
	for s := range oracles {
		svp := &pdata.ValuePDF{N: bounds[s+1] - bounds[s], Items: vp.Items[bounds[s]:bounds[s+1]]}
		scfg := *cfg
		if cfg.weights != nil {
			if len(cfg.weights) != vp.N {
				return nil, fmt.Errorf("probsyn: %d workload weights for %d items", len(cfg.weights), vp.N)
			}
			scfg.weights = cfg.weights[bounds[s]:bounds[s+1]]
		}
		o, err := histOracle(svp, m, &scfg)
		if err != nil {
			return nil, err
		}
		oracles[s] = o
	}
	res, err := hist.BuildSharded(oracles, bounds, B, pool, conc)
	if err != nil {
		return nil, err
	}
	if cfg.dpStats != nil {
		*cfg.dpStats = res.Stats
	}
	return rootSharded(res.Merged, res.Pieces, bounds, res.Bound), nil
}

// rootSharded lifts a family-layer sharded result (concrete synopsis
// pointers) into the interface-typed root result.
func rootSharded[S Synopsis](merged S, pieces []S, bounds []int, bound float64) *ShardedResult {
	out := &ShardedResult{Synopsis: merged, Bounds: bounds, Bound: bound}
	out.Pieces = make([]Synopsis, len(pieces))
	for i, p := range pieces {
		out.Pieces[i] = p
	}
	return out
}
