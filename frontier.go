package probsyn

import (
	"context"
	"fmt"

	"probsyn/internal/engine"
	"probsyn/internal/hist"
	"probsyn/internal/wavelet"
)

// BuildSweep is Build's budget-sweep twin: one DP run at budget Bmax that
// serves the optimal synopsis for every budget 1 <= b <= Bmax through the
// returned Frontier. It accepts the same functional options as Build
// (family, metric parameters, parallelism, shared pool, workload
// weights), holds a single pool admission token for the whole
// construction, and guarantees Frontier.Synopsis(b) is bit-identical —
// byte-identical through the codec — to Build at budget b with the same
// options. The (1+eps)-approximate histogram DP prunes its search per
// budget and produces no frontier; WithEps is rejected.
func BuildSweep(src Source, m Metric, Bmax int, opts ...BuildOption) (Frontier, error) {
	if Bmax < 1 {
		return nil, fmt.Errorf("probsyn: sweep budget %d, want >= 1", Bmax)
	}
	cfg := buildConfig{params: DefaultParams(), parallelism: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.epsSet {
		return nil, fmt.Errorf("probsyn: the (1+eps)-approximate DP prunes per budget and has no frontier; use the exact DP for sweeps")
	}
	pool := cfg.pool
	if pool == nil {
		pool = engine.New(engine.Options{Workers: cfg.parallelism})
	}
	// One admission token covers the whole sweep: the point of the
	// frontier is that B budgets cost one DP, so they also cost one
	// build slot.
	release, err := pool.Acquire(context.Background())
	if err != nil {
		return nil, err
	}
	defer release()
	if cfg.wavelet {
		sw, err := buildWaveletSweep(src, m, Bmax, &cfg, pool)
		if err != nil {
			return nil, err
		}
		return waveletFrontier{sw}, nil
	}
	if cfg.quantizeSet {
		return nil, fmt.Errorf("probsyn: unrestricted coefficient values are a wavelet option")
	}
	if cfg.rquantSet {
		return nil, fmt.Errorf("probsyn: incoming-value quantization is a wavelet option")
	}
	o, err := histOracle(src, m, &cfg)
	if err != nil {
		return nil, err
	}
	tab, err := hist.RunDPPool(o, Bmax, pool)
	if err != nil {
		return nil, err
	}
	if cfg.dpStats != nil {
		*cfg.dpStats = tab.Stats()
	}
	return histFrontier{tab}, nil
}

func buildWaveletSweep(src Source, m Metric, Bmax int, cfg *buildConfig, pool *engine.Pool) (*wavelet.Sweep, error) {
	switch {
	case cfg.weights != nil:
		return nil, fmt.Errorf("probsyn: workload weights are a histogram option")
	case cfg.quantizeSet && cfg.rquantSet:
		return nil, fmt.Errorf("probsyn: WithQuantize (approximate restricted) and WithUnrestricted are mutually exclusive")
	case cfg.quantizeSet:
		return wavelet.SweepUnrestrictedPool(src, m, cfg.params, Bmax, cfg.quantize, pool)
	case cfg.rquantSet:
		if m == SSE {
			return nil, fmt.Errorf("probsyn: the SSE wavelet build is greedy-exact (Theorem 7); incoming-value quantization applies to the restricted DP metrics")
		}
		return wavelet.SweepRestrictedApproxPool(src, m, cfg.params, Bmax, cfg.rquant, pool)
	case m == SSE || m == SSEFixed:
		return wavelet.SweepSSE(src, Bmax)
	default:
		return wavelet.SweepRestrictedPool(src, m, cfg.params, Bmax, pool)
	}
}

// histFrontier adapts the histogram DP table (which already holds every
// budget level) to the shared Frontier surface.
type histFrontier struct{ tab *hist.DPTable }

func (f histFrontier) Bmax() int { return f.tab.Bmax() }

func (f histFrontier) Cost(b int) float64 {
	if b < 1 {
		b = 1
	}
	return f.tab.Cost(b)
}

func (f histFrontier) Synopsis(b int) (Synopsis, error) {
	if b < 1 || b > f.tab.Bmax() {
		return nil, fmt.Errorf("probsyn: frontier budget %d outside [1, %d]", b, f.tab.Bmax())
	}
	return f.tab.Histogram(b)
}

// waveletFrontier adapts a wavelet sweep to the shared Frontier surface.
type waveletFrontier struct{ sw *wavelet.Sweep }

func (f waveletFrontier) Bmax() int          { return f.sw.Bmax() }
func (f waveletFrontier) Cost(b int) float64 { return f.sw.Cost(b) }

func (f waveletFrontier) Synopsis(b int) (Synopsis, error) {
	syn, err := f.sw.Synopsis(b)
	if err != nil {
		return nil, err
	}
	return syn, nil
}

// ErrorBound reports the additive suboptimality bound of a quantized
// sweep (0 for exact ones); see ApproxBound.
func (f waveletFrontier) ErrorBound() float64 { return f.sw.ErrorBound() }

// ApproxBound returns the additive suboptimality bound of a frontier
// built by an approximate DP: every extracted synopsis's reported cost
// (its exactly-evaluated expected error) is within the bound of the
// exact optimum at that budget. Exact frontiers — and frontier types
// that carry no bound — return 0.
func ApproxBound(f Frontier) float64 {
	if b, ok := f.(interface{ ErrorBound() float64 }); ok {
		return b.ErrorBound()
	}
	return 0
}
