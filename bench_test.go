// Benchmarks regenerating every figure of the paper's evaluation (§5) at
// bench-friendly scales, plus the ablations called out in DESIGN.md. The
// cmd/experiments tool runs the same code at larger (or, with -full, the
// paper's exact) sizes and prints the series; these benches track the cost
// of each experiment and guard against performance regressions.
//
// Mapping:
//
//	BenchmarkFig2a..f   histogram error% sweeps, all methods (Figure 2)
//	BenchmarkFig3a      DP scaling in n at fixed B (Figure 3a)
//	BenchmarkFig3b      DP scaling in B at fixed n (Figure 3b)
//	BenchmarkFig4a/b    wavelet error% sweeps (Figure 4)
//	BenchmarkWavelet*Build  restricted/unrestricted coefficient-tree DP
//	BenchmarkAblate*    exact-vs-closed-form tuple SSE; exact-vs-approx DP
package probsyn_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"probsyn"
	"probsyn/internal/eval"
	"probsyn/internal/gen"
	"probsyn/internal/hist"
	"probsyn/internal/metric"
	"probsyn/internal/pdata"
	"probsyn/internal/wavelet"
)

const benchN = 512

func benchLinkage(n int) *pdata.Basic {
	return gen.MystiQLinkage(rand.New(rand.NewSource(42)), gen.DefaultMystiQ(n))
}

func benchTPCH(n int) *pdata.TuplePDF {
	return gen.TPCHLineitem(rand.New(rand.NewSource(42)), gen.DefaultTPCH(n, 4*n))
}

func benchFig2(b *testing.B, k metric.Kind, c float64) {
	b.Helper()
	src := benchLinkage(benchN)
	budgets := []int{1, 8, 16, 32, 52}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp := &eval.HistogramExperiment{
			Source: src, Metric: k, Params: metric.Params{C: c},
			Budgets: budgets, Samples: 1, Rng: rand.New(rand.NewSource(1)),
		}
		if _, err := exp.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2a_SSRE_c05(b *testing.B) { benchFig2(b, metric.SSRE, 0.5) }
func BenchmarkFig2b_SSRE_c10(b *testing.B) { benchFig2(b, metric.SSRE, 1.0) }
func BenchmarkFig2c_SSE(b *testing.B)      { benchFig2(b, metric.SSE, 0) }
func BenchmarkFig2d_SARE_c05(b *testing.B) { benchFig2(b, metric.SARE, 0.5) }
func BenchmarkFig2e_SARE_c10(b *testing.B) { benchFig2(b, metric.SARE, 1.0) }
func BenchmarkFig2f_SAE(b *testing.B)      { benchFig2(b, metric.SAE, 0) }

// BenchmarkFig3a: DP time as n grows, fixed B (the paper reports ~quadratic
// growth in n; compare ns/op across sub-benchmarks).
func BenchmarkFig3a(b *testing.B) {
	for _, n := range []int{256, 512, 1024, 2048} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			src := benchLinkage(n)
			o, err := hist.NewOracle(src, metric.SSRE, metric.Params{C: 0.5})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := hist.Optimal(o, 50); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3b: DP time as B grows, fixed n (the paper reports linear
// growth in B).
func BenchmarkFig3b(b *testing.B) {
	src := benchLinkage(1024)
	o, err := hist.NewOracle(src, metric.SSRE, metric.Params{C: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	for _, B := range []int{25, 50, 100, 200} {
		b.Run(fmt.Sprintf("B=%d", B), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := hist.Optimal(o, B); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchFig4(b *testing.B, src pdata.Source, bmax int) {
	b.Helper()
	budgets := []int{1, bmax / 8, bmax / 4, bmax / 2, bmax}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp := &eval.WaveletExperiment{
			Source: src, Budgets: budgets, Samples: 1,
			Rng: rand.New(rand.NewSource(1)),
		}
		if _, err := exp.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4a_WaveletMovie(b *testing.B)     { benchFig4(b, benchLinkage(4096), 640) }
func BenchmarkFig4b_WaveletSynthetic(b *testing.B) { benchFig4(b, benchTPCH(4096), 128) }

// --- ablations ----------------------------------------------------------------

// Exact straddle-corrected tuple-pdf SSE DP vs the paper's closed form
// (DESIGN.md finding 3): the closed form skips the per-boundary correction.
func BenchmarkAblateTupleSSEExact(b *testing.B) {
	cfg := gen.DefaultTPCH(benchN, 4*benchN)
	cfg.Spread = 8
	src := gen.TPCHLineitem(rand.New(rand.NewSource(42)), cfg)
	o := hist.NewSSETuple(src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hist.Optimal(o, 32); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblateTupleSSEClosedForm(b *testing.B) {
	cfg := gen.DefaultTPCH(benchN, 4*benchN)
	cfg.Spread = 8
	src := gen.TPCHLineitem(rand.New(rand.NewSource(42)), cfg)
	o := hist.NewSSETupleClosedForm(src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hist.Optimal(o, 32); err != nil {
			b.Fatal(err)
		}
	}
}

// Exact DP vs the (1+eps)-approximate DP of Theorem 5, in the B << n
// regime where the approximation's compressed levels pay off (see
// DESIGN.md: at B ~ n/10 the exact DP is already as fast).
func BenchmarkAblateExactDP(b *testing.B) {
	src := benchLinkage(4096)
	o, err := hist.NewOracle(src, metric.SSE, metric.Params{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hist.Optimal(o, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblateApproxDP(b *testing.B) {
	src := benchLinkage(4096)
	o, err := hist.NewOracle(src, metric.SSE, metric.Params{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hist.Approximate(o, 16, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// Restricted non-SSE wavelet DP (Theorem 8) vs the greedy SSE synopsis
// (Theorem 7) at equal budget — the cost of optimizing a non-SSE metric.
func BenchmarkWaveletGreedySSE(b *testing.B) {
	src := benchLinkage(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := wavelet.BuildSSE(src, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWaveletRestrictedSAE(b *testing.B) {
	src := benchLinkage(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := wavelet.BuildRestricted(src, metric.SAE, metric.Params{C: 0.5}, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// --- wavelet build benchmarks (bottom-up tree DP on the engine) ---------------

// benchWaveletBuild sweeps the coefficient-tree DP over the sizes where
// production wavelet builds live. The parallel schedule is deterministic
// (bit-identical synopses), so the worker axis measures pure scheduling
// speedup, and the workers=1 rows track the serial hot path the bottom-up
// rewrite optimizes (the seed's recursive map-memoized DP was ~10x slower
// at n=1024, B=16).
func benchWaveletBuild(b *testing.B, build func(src pdata.Source, B, workers int) error) {
	b.Helper()
	for _, n := range []int{1024, 4096} {
		src := benchLinkage(n)
		for _, B := range []int{16, 64} {
			for _, workers := range benchWorkers() {
				name := fmt.Sprintf("n=%d/B=%d/workers=%d", n, B, workers)
				b.Run(name, func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if err := build(src, B, workers); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkWaveletRestrictedBuild: the restricted DP of Theorem 8 under
// SAE (every retained coefficient pinned to its expected value).
func BenchmarkWaveletRestrictedBuild(b *testing.B) {
	benchWaveletBuild(b, func(src pdata.Source, B, workers int) error {
		_, _, err := wavelet.BuildRestrictedWorkers(src, metric.SAE, metric.Params{C: 0.5}, B, workers)
		return err
	})
}

// BenchmarkWaveletUnrestrictedBuild: the same sweep through the
// unrestricted path at q=0, where the candidate grids degenerate to the
// expected values — larger q is exponential in tree depth and is not
// benchmark material. This tracks the unrestricted plumbing at the same
// state-space size as the restricted DP.
func BenchmarkWaveletUnrestrictedBuild(b *testing.B) {
	benchWaveletBuild(b, func(src pdata.Source, B, workers int) error {
		_, _, err := wavelet.BuildUnrestrictedWorkers(src, metric.SAE, metric.Params{C: 0.5}, B, 0, workers)
		return err
	})
}

// BenchmarkWaveletRestrictedApprox: the quantized restricted DP against
// the exact one at the size where quantization starts paying — the exact
// DP's incoming-value rows grow as 2^(l+1) up the tree while the grids
// stay capped at q. The acceptance target is >= 5x over exact at n=4096,
// B=32 (q=16); past this n the exact DP trips the state cap entirely and
// only the quantized rows fit.
func BenchmarkWaveletRestrictedApprox(b *testing.B) {
	const n, B = 4096, 32
	src := benchLinkage(n)
	run := func(variant string, build func() error) {
		b.Run(fmt.Sprintf("n=%d/B=%d/%s", n, B, variant), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := build(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	run("exact", func() error {
		_, _, err := wavelet.BuildRestricted(src, metric.SAE, metric.Params{C: 0.5}, B)
		return err
	})
	for _, q := range []int{16, 64} {
		run(fmt.Sprintf("q=%d", q), func() error {
			_, _, err := wavelet.BuildRestrictedApprox(src, metric.SAE, metric.Params{C: 0.5}, B, q)
			return err
		})
	}
}

// --- sharded builds -----------------------------------------------------------

// BenchmarkShardedBuild: the same synopsis built with k ∈ {1, 2, 4, 8}
// domain shards; k = 1 delegates to the unsharded build and is the
// honest baseline. Two speedup sources compose: work reduction (each
// shard's DP runs over n/k items, so a superlinear DP shrinks faster
// than the shard count) and shard concurrency over the pool. The
// acceptance target — >= 2.5x at k = 4 — is met by the quadratic
// histogram DP from work reduction alone (~10x even on one core); the
// O(n·q·B) quantized restricted DP does linear work regardless of k,
// so its k-fold win is pure concurrency and needs a >= 4-core runner
// to materialize. The SSE wavelet merge is exact and its transform is
// cheap, so its entry tracks merge overhead at scale rather than a
// speedup claim. The exact histogram DP is quadratic in n, so it
// benches at n=8192; the wavelet families take n=65536, the scale the
// quantized-build smoke pins.
func BenchmarkShardedBuild(b *testing.B) {
	cases := []struct {
		name string
		n, B int
		m    probsyn.Metric
		opts []probsyn.BuildOption
	}{
		{"histogram-SSE/n=8192/B=8", 8192, 8, probsyn.SSE, nil},
		{"wavelet-SAE-q16/n=65536/B=32", 65536, 32, probsyn.SAE,
			[]probsyn.BuildOption{probsyn.WithWavelet(), probsyn.WithQuantize(16)}},
		{"wavelet-SSE/n=65536/B=64", 65536, 64, probsyn.SSE,
			[]probsyn.BuildOption{probsyn.WithWavelet()}},
	}
	for _, c := range cases {
		src := benchLinkage(c.n)
		for _, k := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/k=%d", c.name, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := probsyn.BuildSharded(src, c.m, c.B, k, c.opts...); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- budget-sweep frontiers ---------------------------------------------------

// The frontier benchmarks prove the sweep's amortization: one DP run
// extracting every budget 1..B versus B independent single-budget
// builds of the same configuration (the acceptance target is >= 5x at
// n=1024, B=32; one forward DP dominates both sides, so the sweep is
// ~Bx cheaper). Sweep and independent variants do byte-identical work
// per synopsis — the delta is purely the shared forward DP.

const (
	frontierN = 1024
	frontierB = 32
)

func benchFrontierSweep(b *testing.B, sweep func(src pdata.Source) (*wavelet.Sweep, error)) {
	b.Helper()
	src := benchLinkage(frontierN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw, err := sweep(src)
		if err != nil {
			b.Fatal(err)
		}
		for bb := 1; bb <= sw.Bmax(); bb++ {
			if _, err := sw.Synopsis(bb); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchFrontierIndependent(b *testing.B, build func(src pdata.Source, B int) error) {
	b.Helper()
	src := benchLinkage(frontierN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for bb := 1; bb <= frontierB; bb++ {
			if err := build(src, bb); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFrontierSweepRestricted(b *testing.B) {
	benchFrontierSweep(b, func(src pdata.Source) (*wavelet.Sweep, error) {
		return wavelet.SweepRestricted(src, metric.SAE, metric.Params{C: 0.5}, frontierB)
	})
}

func BenchmarkFrontierIndependentRestricted(b *testing.B) {
	benchFrontierIndependent(b, func(src pdata.Source, B int) error {
		_, _, err := wavelet.BuildRestricted(src, metric.SAE, metric.Params{C: 0.5}, B)
		return err
	})
}

func BenchmarkFrontierSweepUnrestricted(b *testing.B) {
	benchFrontierSweep(b, func(src pdata.Source) (*wavelet.Sweep, error) {
		return wavelet.SweepUnrestricted(src, metric.SAE, metric.Params{C: 0.5}, frontierB, 0)
	})
}

func BenchmarkFrontierIndependentUnrestricted(b *testing.B) {
	benchFrontierIndependent(b, func(src pdata.Source, B int) error {
		_, _, err := wavelet.BuildUnrestricted(src, metric.SAE, metric.Params{C: 0.5}, B, 0)
		return err
	})
}

// The histogram side of the same comparison: the DP table has always
// held every budget level; the frontier makes the amortization part of
// the public API surface.
func BenchmarkFrontierSweepHistogram(b *testing.B) {
	src := benchLinkage(frontierN)
	o, err := hist.NewOracle(src, metric.SSE, metric.Params{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := hist.RunDP(o, frontierB)
		if err != nil {
			b.Fatal(err)
		}
		for bb := 1; bb <= tab.Bmax(); bb++ {
			if _, err := tab.Histogram(bb); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFrontierIndependentHistogram(b *testing.B) {
	src := benchLinkage(frontierN)
	o, err := hist.NewOracle(src, metric.SSE, metric.Params{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for bb := 1; bb <= frontierB; bb++ {
			if _, err := hist.Optimal(o, bb); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- parallel DP engine -------------------------------------------------------

// benchWorkers returns the worker counts to compare: serial vs the full
// machine (vs 2, so the parallel path is still exercised on 1-CPU boxes).
func benchWorkers() []int {
	par := runtime.NumCPU()
	if par < 2 {
		par = 2
	}
	return []int{1, par}
}

// BenchmarkRunDP tracks the worker-pool DP against the serial baseline on
// the same oracle, at the sizes where production builds live. The parallel
// schedule is deterministic (bit-identical tables), so the two variants do
// exactly the same arithmetic — the ratio is pure scheduling overhead vs
// speedup.
func BenchmarkRunDP(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		src := benchLinkage(n)
		o, err := hist.NewOracle(src, metric.SSE, metric.Params{})
		if err != nil {
			b.Fatal(err)
		}
		for _, B := range []int{16, 64} {
			for _, workers := range benchWorkers() {
				name := fmt.Sprintf("n=%d/B=%d/workers=%d", n, B, workers)
				b.Run(name, func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, err := hist.RunDPWorkers(o, B, workers); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkRunDPSweepOracle: same comparison on the tuple-pdf SSE oracle,
// whose per-end sweep is sequential (SweepOracle) — only the split-point
// reduction parallelizes, bounding the achievable speedup.
func BenchmarkRunDPSweepOracle(b *testing.B) {
	src := benchTPCH(1024)
	o := hist.NewSSETuple(src)
	for _, workers := range benchWorkers() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := hist.RunDPWorkers(o, 64, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- oracle micro-benchmarks (per-bucket pricing cost, Theorems 1-4, 6) -------

func BenchmarkOracleCost(b *testing.B) {
	src := benchLinkage(2048)
	p := metric.Params{C: 0.5}
	for _, k := range []metric.Kind{metric.SSE, metric.SSEFixed, metric.SSRE,
		metric.SAE, metric.SARE, metric.MAE, metric.MARE} {
		b.Run(k.String(), func(b *testing.B) {
			o, err := hist.NewOracle(src, k, p)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(9))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := rng.Intn(2048)
				e := s + rng.Intn(2048-s)
				if k == metric.MAE || k == metric.MARE {
					// max oracles are O(bucket width); keep widths modest
					if e > s+64 {
						e = s + 64
					}
				}
				o.Cost(s, e)
			}
		})
	}
}

func BenchmarkMonteCarloEvaluation(b *testing.B) {
	src := benchLinkage(1024)
	o, err := hist.NewOracle(src, metric.SAE, metric.Params{C: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	h, err := hist.Optimal(o, 32)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.MonteCarloHistogramError(src, h, metric.SAE, metric.Params{C: 0.5}, 100, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// --- incremental maintenance -------------------------------------------------

// The incremental benchmarks prove the live-maintenance acceptance
// target: at n=1024 (padded, for wavelets), B=32, one live mutation —
// including the revalidated frontier it leaves behind — must be >= 5x
// cheaper than a from-scratch BuildSweep over the same data. Each family
// is measured where its incremental path applies: histogram updates land
// near the domain tail (re-DP cost is proportional to the columns right
// of the update), wavelet updates are mean-preserving corrections (the
// dirty-path repair; mean-changing updates re-run the forward sweep),
// and wavelet appends ride the SSE family (DP-family appends move every
// path coefficient's expected value, which is a full resweep by design —
// see DESIGN.md "Incremental maintenance").

const incrB = 32

// incrHistSource: the histogram benches run at the acceptance n directly.
func incrHistSource() *probsyn.ValuePDF {
	return gen.SensorGrid(rand.New(rand.NewSource(42)), gen.DefaultSensor(1024))
}

// incrWaveSource: logical 1008 pads to the acceptance n=1024 and leaves
// 16 slots so appends stay inside the padding between live rebuilds.
func incrWaveSource() *probsyn.ValuePDF {
	return gen.SensorGrid(rand.New(rand.NewSource(42)), gen.DefaultSensor(1008))
}

// Exactly-mean-1 pdfs: alternating between them is a mean-preserving
// correction (0.5*2 == 0.25*1 + 0.25*3), the wavelet fast path.
var (
	incrItemA = probsyn.ItemPDF{Entries: []probsyn.FreqProb{{Freq: 2, Prob: 0.5}}}
	incrItemB = probsyn.ItemPDF{Entries: []probsyn.FreqProb{{Freq: 1, Prob: 0.25}, {Freq: 3, Prob: 0.25}}}
)

func mustBuildLive(b *testing.B, src *probsyn.ValuePDF, m probsyn.Metric, opts ...probsyn.BuildOption) probsyn.Maintainer {
	b.Helper()
	live, err := probsyn.BuildLive(src, m, incrB, opts...)
	if err != nil {
		b.Fatal(err)
	}
	return live
}

func BenchmarkIncrementalUpdate(b *testing.B) {
	b.Run("histogram-live", func(b *testing.B) {
		src := incrHistSource()
		live := mustBuildLive(b, src, probsyn.SSE)
		at := src.N - 64 // tail correction: 64 suffix columns re-run
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			it := incrItemA
			if i%2 == 1 {
				it = incrItemB
			}
			if err := live.Update(at, it); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("histogram-rebuild", func(b *testing.B) {
		src := incrHistSource()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := probsyn.BuildSweep(src, probsyn.SSE, incrB); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("wavelet-live", func(b *testing.B) {
		src := incrWaveSource()
		live := mustBuildLive(b, src, probsyn.SAE, probsyn.WithWavelet())
		at := src.N / 2
		if err := live.Update(at, incrItemA); err != nil { // pin an exact mean (untimed)
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			it := incrItemB
			if i%2 == 1 {
				it = incrItemA
			}
			if err := live.Update(at, it); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("wavelet-rebuild", func(b *testing.B) {
		src := incrWaveSource()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := probsyn.BuildSweep(src, probsyn.SAE, incrB, probsyn.WithWavelet()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkIncrementalAppend(b *testing.B) {
	appendLoop := func(b *testing.B, build func() probsyn.Maintainer, capacity int) {
		b.Helper()
		var live probsyn.Maintainer
		used := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if live == nil || used == capacity {
				b.StopTimer()
				live, used = build(), 0
				b.StartTimer()
			}
			if err := live.Append([]probsyn.ItemPDF{incrItemA}); err != nil {
				b.Fatal(err)
			}
			used++
		}
	}
	b.Run("histogram-live", func(b *testing.B) {
		src := incrHistSource()
		appendLoop(b, func() probsyn.Maintainer { return mustBuildLive(b, src, probsyn.SSE) }, 64)
	})
	b.Run("histogram-rebuild", func(b *testing.B) {
		src := incrHistSource()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := probsyn.BuildSweep(src, probsyn.SSE, incrB); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("wavelet-live", func(b *testing.B) {
		src := incrWaveSource()
		appendLoop(b, func() probsyn.Maintainer {
			return mustBuildLive(b, src, probsyn.SSE, probsyn.WithWavelet())
		}, 16)
	})
	b.Run("wavelet-rebuild", func(b *testing.B) {
		src := incrWaveSource()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := probsyn.BuildSweep(src, probsyn.SSE, incrB, probsyn.WithWavelet()); err != nil {
				b.Fatal(err)
			}
		}
	})
}
