module probsyn

go 1.24
