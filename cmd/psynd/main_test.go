package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"probsyn"
	"probsyn/internal/catalog"
	"probsyn/internal/gen"
)

// syncBuffer is a mutex-guarded buffer: the test reads psynd's stdout
// while the server goroutine is still writing it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var listenRE = regexp.MustCompile(`listening on ([^\s(]+)`)

// startPsynd runs the psynd run() seam on an ephemeral port and returns
// its base URL plus a stop func that triggers graceful shutdown and
// returns run's error.
func startPsynd(t *testing.T, args []string) (string, *syncBuffer, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() { done <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), out) }()
	deadline := time.Now().Add(15 * time.Second)
	var addr string
	for addr == "" {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			addr = m[1]
			break
		}
		select {
		case err := <-done:
			t.Fatalf("psynd exited before listening: %v\noutput:\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("psynd never reported its listen address:\n%s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	stop := func() error {
		cancel()
		select {
		case err := <-done:
			return err
		case <-time.After(30 * time.Second):
			return errors.New("psynd did not shut down")
		}
	}
	return "http://" + addr, out, stop
}

func writeDataset(t *testing.T, dir string) probsyn.Source {
	t.Helper()
	src := gen.MystiQLinkage(rand.New(rand.NewSource(7)), gen.DefaultMystiQ(64))
	f, err := os.Create(filepath.Join(dir, "ds.pd"))
	if err != nil {
		t.Fatal(err)
	}
	if err := probsyn.WriteDataset(f, src); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return src
}

// The binary-level acceptance round trip: psynd builds both families
// through its shared pool, serves estimates equal to offline
// probsyn.Build results, persists envelopes byte-identical to the
// offline codec bytes, reloads its catalog on restart, and shuts down
// cleanly on context cancel.
func TestPsyndEndToEnd(t *testing.T) {
	dataDir, catDir := t.TempDir(), t.TempDir()
	src := writeDataset(t, dataDir)
	base, _, stop := startPsynd(t, []string{"-data", dataDir, "-catalog", catDir, "-max-builds", "1"})

	build := func(family, metric string, budget int) {
		t.Helper()
		body := fmt.Sprintf(`{"dataset":"ds","family":%q,"metric":%q,"budget":%d,"wait":true}`, family, metric, budget)
		resp, err := http.Post(base+"/v1/build", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s build: status %d", family, resp.StatusCode)
		}
	}
	build("histogram", "SSE", 8)
	build("wavelet", "SAE", 8)

	offline := map[string]probsyn.Synopsis{}
	for family, opts := range map[string][]probsyn.BuildOption{
		"histogram": {probsyn.WithParams(probsyn.Params{C: 0.5})},
		"wavelet":   {probsyn.WithParams(probsyn.Params{C: 0.5}), probsyn.WithWavelet()},
	} {
		m := probsyn.SSE
		if family == "wavelet" {
			m = probsyn.SAE
		}
		syn, err := probsyn.Build(src, m, 8, opts...)
		if err != nil {
			t.Fatal(err)
		}
		offline[family] = syn
	}

	for family, metric := range map[string]string{"histogram": "SSE", "wavelet": "SAE"} {
		for i := 0; i < src.Domain(); i += 11 {
			url := fmt.Sprintf("%s/v1/estimate?dataset=ds&family=%s&metric=%s&budget=8&i=%d", base, family, metric, i)
			resp, err := http.Get(url)
			if err != nil {
				t.Fatal(err)
			}
			var er struct {
				Estimate float64 `json:"estimate"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if want := offline[family].Estimate(i); er.Estimate != want {
				t.Fatalf("%s: served Estimate(%d) = %v, offline %v", family, i, er.Estimate, want)
			}
		}
		// Replica byte-interchangeability: the persisted envelope equals
		// the offline marshal of the same build.
		key, err := catalog.NewKey("ds", family, metric, 8, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		onDisk, err := os.ReadFile(filepath.Join(catDir, key.Filename()))
		if err != nil {
			t.Fatal(err)
		}
		want, err := probsyn.MarshalSynopsis(offline[family])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(onDisk, want) {
			t.Fatalf("%s: persisted envelope differs from offline bytes", family)
		}
	}

	if err := stop(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}

	// Restart against the same catalog: the persisted synopses serve
	// without rebuilding.
	base2, out2, stop2 := startPsynd(t, []string{"-data", dataDir, "-catalog", catDir})
	if !strings.Contains(out2.String(), "loaded 2 synopses") {
		t.Fatalf("restart did not preload the catalog:\n%s", out2.String())
	}
	resp, err := http.Get(base2 + "/v1/synopses")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Synopses []json.RawMessage `json:"synopses"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Synopses) != 2 {
		t.Fatalf("restarted server lists %d synopses, want 2", len(list.Synopses))
	}
	if err := stop2(); err != nil {
		t.Fatalf("graceful shutdown after restart: %v", err)
	}
}

func TestRunRequiresDataDir(t *testing.T) {
	if err := run(context.Background(), nil, &bytes.Buffer{}); err == nil {
		t.Fatal("run with no -data succeeded")
	}
}

func TestRunHelpIsNotAnError(t *testing.T) {
	if err := run(context.Background(), []string{"-h"}, &bytes.Buffer{}); err != nil {
		t.Fatalf("-h returned %v", err)
	}
}

func TestRunUnknownFlagIsParseError(t *testing.T) {
	if err := run(context.Background(), []string{"-bogus"}, &bytes.Buffer{}); !errors.Is(err, errParse) {
		t.Fatalf("unknown flag returned %v, want errParse", err)
	}
}

var pprofRE = regexp.MustCompile(`pprof on ([^\s(]+)`)

// TestPsyndPprofListener: -pprof serves the profiler on its own
// listener — profile endpoints answer there and are absent from the
// query surface.
func TestPsyndPprofListener(t *testing.T) {
	dir := t.TempDir()
	writeDataset(t, dir)
	base, out, stop := startPsynd(t, []string{"-data", dir, "-pprof", "127.0.0.1:0"})
	defer func() {
		if err := stop(); err != nil {
			t.Error(err)
		}
	}()
	deadline := time.Now().Add(15 * time.Second)
	var paddr string
	for paddr == "" {
		if m := pprofRE.FindStringSubmatch(out.String()); m != nil {
			paddr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("psynd never reported its pprof address:\n%s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err := http.Get("http://" + paddr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline: %d", resp.StatusCode)
	}
	// The profiler must not leak onto the serving address.
	resp, err = http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof served on the query listener")
	}
}

// reservePort binds an ephemeral port and releases it, returning the
// address for a server about to start. The tiny race (something else
// grabbing the port between close and listen) is acceptable in tests —
// cluster mode needs the full peer list before any node starts.
func reservePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return addr
}

// Two psynd processes with the same -peers list form a cluster: a
// sharded build POSTed to either node forwards to the dataset owner,
// pieces spread over both catalogs, gathered reads answer identically
// from either node, and both shut down cleanly.
func TestPsyndClusterTwoNodes(t *testing.T) {
	addrs := []string{reservePort(t), reservePort(t)}
	peers := strings.Join(addrs, ",")
	var src probsyn.Source
	urls := make([]string, 2)
	stops := make([]func() error, 2)
	for i, addr := range addrs {
		dataDir := t.TempDir()
		src = writeDataset(t, dataDir)
		ctx, cancel := context.WithCancel(context.Background())
		out := &syncBuffer{}
		done := make(chan error, 1)
		args := []string{"-addr", addr, "-data", dataDir, "-catalog", t.TempDir(), "-peers", peers}
		go func() { done <- run(ctx, args, out) }()
		deadline := time.Now().Add(15 * time.Second)
		for !strings.Contains(out.String(), "listening on") {
			select {
			case err := <-done:
				t.Fatalf("psynd %s exited before listening: %v\noutput:\n%s", addr, err, out.String())
			default:
			}
			if time.Now().After(deadline) {
				t.Fatalf("psynd %s never listened:\n%s", addr, out.String())
			}
			time.Sleep(10 * time.Millisecond)
		}
		if !strings.Contains(out.String(), "cluster mode, 2 peers") {
			t.Fatalf("psynd %s did not report cluster mode:\n%s", addr, out.String())
		}
		urls[i] = "http://" + addr
		stops[i] = func() error { cancel(); return <-done }
	}
	defer func() {
		for i, stop := range stops {
			if stop == nil {
				continue
			}
			if err := stop(); err != nil {
				t.Errorf("node %d shutdown: %v", i, err)
			}
		}
	}()

	const k = 2
	body := `{"dataset":"ds","family":"histogram","metric":"SSE","budget":8,"shards":2,"wait":true}`
	resp, err := http.Post(urls[0]+"/v1/build", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sharded build: status %d: %s", resp.StatusCode, raw)
	}
	ref, err := probsyn.BuildSharded(src, probsyn.SSE, 8, k)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int{{0, 63}, {5, 40}, {30, 50}} {
		want := 0.0
		for s := 0; s < k; s++ {
			lo, hi := ref.Bounds[s], ref.Bounds[s+1]-1
			if lo > r[1] || hi < r[0] {
				continue
			}
			want += ref.Pieces[s].RangeSum(max(r[0], lo)-lo, min(r[1], hi)-lo)
		}
		for _, u := range urls {
			var rr struct {
				Sum float64 `json:"sum"`
			}
			resp, err := http.Get(fmt.Sprintf("%s/v1/rangesum?dataset=ds&family=histogram&metric=SSE&budget=8&shards=%d&lo=%d&hi=%d", u, k, r[0], r[1]))
			if err != nil {
				t.Fatal(err)
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("gathered rangesum via %s: status %d: %s", u, resp.StatusCode, raw)
			}
			if err := json.Unmarshal(raw, &rr); err != nil {
				t.Fatal(err)
			}
			if rr.Sum != want {
				t.Fatalf("gathered rangesum [%d,%d] via %s = %v, want %v", r[0], r[1], u, rr.Sum, want)
			}
		}
	}
	// Clean shutdown of both nodes (the deferred stops check errors);
	// run them now so failures attribute to this point.
	for i, stop := range stops {
		if err := stop(); err != nil {
			t.Errorf("node %d shutdown: %v", i, err)
		}
		stops[i] = nil
	}
}

func TestRunRejectsSelfWithoutPeers(t *testing.T) {
	err := run(context.Background(), []string{"-data", t.TempDir(), "-self", "x:1"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-peers") {
		t.Fatalf("err = %v", err)
	}
}

// -flat drives the whole replica-restart story at the binary level:
// a first run builds and (on graceful shutdown) packs the flat file, a
// restart boots from it in one mmap — reporting "N flat, 0 codec" — and
// the flat-backed querier serves bit-identical estimates to the codec
// path.
func TestPsyndFlatBoot(t *testing.T) {
	dataDir, catDir := t.TempDir(), t.TempDir()
	src := writeDataset(t, dataDir)

	base, _, stop := startPsynd(t, []string{"-data", dataDir, "-catalog", catDir, "-flat"})
	body := `{"dataset":"ds","family":"histogram","metric":"SSE","budget":8,"wait":true}`
	resp, err := http.Post(base+"/v1/build", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("build: status %d", resp.StatusCode)
	}
	if err := stop(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	// Graceful shutdown runs the keeper's final synchronous pack.
	if _, err := os.Stat(catalog.FlatPath(catDir)); err != nil {
		t.Fatalf("no flat file after graceful shutdown: %v", err)
	}

	base2, out2, stop2 := startPsynd(t, []string{"-data", dataDir, "-catalog", catDir, "-flat"})
	if !strings.Contains(out2.String(), "(1 flat, 0 codec)") {
		t.Fatalf("restart did not boot from the flat file:\n%s", out2.String())
	}
	syn, err := probsyn.Build(src, probsyn.SSE, 8, probsyn.WithParams(probsyn.Params{C: 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < src.Domain(); i += 7 {
		url := fmt.Sprintf("%s/v1/estimate?dataset=ds&family=histogram&metric=SSE&budget=8&i=%d", base2, i)
		r, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		var er struct {
			Estimate float64 `json:"estimate"`
		}
		if err := json.NewDecoder(r.Body).Decode(&er); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if want := syn.Estimate(i); er.Estimate != want {
			t.Fatalf("flat-served Estimate(%d) = %v, offline %v", i, er.Estimate, want)
		}
	}
	if err := stop2(); err != nil {
		t.Fatalf("graceful shutdown after flat boot: %v", err)
	}
}

// -flat is a catalog-directory feature; without -catalog there is
// nothing to pack or boot from.
func TestRunFlatRequiresCatalog(t *testing.T) {
	err := run(context.Background(), []string{"-data", t.TempDir(), "-flat"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-flat requires -catalog") {
		t.Fatalf("err = %v, want -flat requires -catalog", err)
	}
}
