// Command psynd is the probsyn synopsis server: a long-lived process
// that loads codec-serialized synopses into an in-memory catalog, accepts
// build requests onto a bounded queue drained through one process-wide
// admission-controlled engine pool, and answers point/range estimates
// over HTTP. Builds are deterministic, so replicas serving the same
// catalog key are byte-interchangeable with each other and with offline
// cmd/psyn builds.
//
// Example:
//
//	psynd -addr 127.0.0.1:7075 -data ./data -catalog ./catalog -max-builds 2
//
//	curl -X POST localhost:7075/v1/build \
//	     -d '{"dataset":"ds","family":"histogram","metric":"SSE","budget":16,"wait":true}'
//	curl -X POST localhost:7075/v1/sweep \
//	     -d '{"dataset":"ds","family":"histogram","metric":"SSE","budget":16,"wait":true}'
//	curl 'localhost:7075/v1/estimate?dataset=ds&family=histogram&metric=SSE&budget=16&i=42'
//	curl 'localhost:7075/v1/rangesum?dataset=ds&family=histogram&metric=SSE&budget=16&lo=0&hi=99'
//	curl 'localhost:7075/v1/synopses'
//
// With -flat, the server boots from the catalog directory's flat mmap
// file (packed by `psyn -pack` or a previous run of this server) and
// serves its first query in milliseconds; the file is invalidated
// before any catalog-changing work and re-packed in the background at
// quiescence, so a crash at any instant leaves a directory that boots
// correctly from the .psyn envelopes alone:
//
//	psyn -pack ./catalog
//	psynd -addr 127.0.0.1:7075 -data ./data -catalog ./catalog -flat
//
// With -peers, several psynd processes form a scatter/gather cluster:
// datasets and sharded-build pieces place on a consistent-hash ring
// derived from the shared peer list, builds forward to the owning node,
// and gathered reads fan out to the piece owners:
//
//	psynd -addr 127.0.0.1:7075 -data ./data -peers 127.0.0.1:7075,127.0.0.1:7085
//	psynd -addr 127.0.0.1:7085 -data ./data -peers 127.0.0.1:7075,127.0.0.1:7085
//
//	curl -X POST localhost:7075/v1/build \
//	     -d '{"dataset":"ds","family":"histogram","metric":"SSE","budget":16,"shards":4,"wait":true}'
//	curl 'localhost:7085/v1/rangesum?dataset=ds&family=histogram&metric=SSE&budget=16&shards=4&lo=0&hi=99'
//
// With -pprof ADDR, net/http/pprof serves on a second listener separate
// from the query surface, so profiling a server under load neither
// exposes the profiler to query clients nor competes with them for the
// serving mux:
//
//	psynd -addr 127.0.0.1:7075 -data ./data -pprof 127.0.0.1:7076
//	go tool pprof http://127.0.0.1:7076/debug/pprof/profile?seconds=10
//
// SIGINT/SIGTERM shut down gracefully: the listener closes, queued
// builds drain, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"probsyn/internal/catalog"
	"probsyn/internal/engine"
	"probsyn/internal/server"
)

// errParse marks a flag-parse failure the FlagSet has already reported to
// stderr, so main neither reprints it nor masks the usage text.
var errParse = errors.New("flag parse error")

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, errParse) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "psynd:", err)
		os.Exit(1)
	}
}

// run is the whole server behind a testable seam: it serves until ctx is
// cancelled (the signal handler in main, the test's cancel func), then
// shuts down gracefully. Progress lines go to stdout, including the
// bound listen address, so callers starting on ":0" learn the port.
func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("psynd", flag.ContinueOnError)
	var (
		flagAddr     = fs.String("addr", "127.0.0.1:7075", "HTTP listen address")
		flagData     = fs.String("data", "", "dataset directory: dataset NAME is NAME.pd in this directory (required)")
		flagCatalog  = fs.String("catalog", "", "catalog directory: preload synopses at startup, persist new builds (optional)")
		flagFlat     = fs.Bool("flat", false, "boot from the catalog directory's flat mmap file when present and maintain it across builds (requires -catalog)")
		flagQueue    = fs.Int("queue", server.DefaultQueueDepth, "build queue depth; a full queue rejects builds with queue_full")
		flagBuilders = fs.Int("build-workers", server.DefaultBuildWorkers, "goroutines draining the build queue")
		flagMax      = fs.Int("max-builds", 2, "admission cap: builds running DPs concurrently on the shared pool (<= 0: unlimited)")
		flagParallel = fs.Int("parallelism", 0, "engine worker goroutines per build DP (<= 0: one per CPU)")
		flagC        = fs.Float64("c", 0.5, "sanity constant for relative-error metrics")
		flagMaxLive  = fs.Int("max-live", server.DefaultMaxLiveStates, "retained live frontiers (DP state for incremental /v1/append|/v1/update); least-recently-mutated evicted beyond this")
		flagDrain    = fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for draining queued builds")
		flagPprof    = fs.String("pprof", "", "serve net/http/pprof on this address (a second listener, kept off the query surface); empty disables")
		flagPeers    = fs.String("peers", "", "comma-separated static peer list enabling cluster mode; every node must pass the identical list")
		flagSelf     = fs.String("self", "", "this node's entry in -peers (required with -peers); defaults to -addr")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return errParse
	}
	if *flagData == "" {
		fs.Usage()
		return fmt.Errorf("missing -data directory")
	}
	var peers []string
	self := ""
	if *flagPeers != "" {
		for _, p := range strings.Split(*flagPeers, ",") {
			peers = append(peers, strings.TrimSpace(p))
		}
		self = *flagSelf
		if self == "" {
			self = *flagAddr
		}
	} else if *flagSelf != "" {
		return fmt.Errorf("-self %q set without -peers", *flagSelf)
	}

	// The process-wide pool: every build this server runs shares these
	// workers, and at most -max-builds DPs dispatch at once.
	pool := engine.New(engine.Options{Workers: *flagParallel, MaxBuilds: *flagMax})
	cat := catalog.New()
	flatPath := ""
	if *flagFlat {
		if *flagCatalog == "" {
			return fmt.Errorf("-flat requires -catalog")
		}
		flatPath = catalog.FlatPath(*flagCatalog)
	}
	if *flagCatalog != "" {
		if err := os.MkdirAll(*flagCatalog, 0o755); err != nil {
			return err
		}
		if *flagFlat {
			warnf := func(format string, args ...any) {
				fmt.Fprintf(stdout, "psynd: "+format+"\n", args...)
			}
			// The Flat handle stays open for the process lifetime: the
			// keeper's atomic rewrites replace the directory entry without
			// disturbing this mapping, and view-backed queriers alias it.
			flat, flatN, codecN, err := catalog.BootDir(cat, *flagCatalog, warnf)
			if err != nil {
				return err
			}
			if flat != nil {
				defer flat.Close()
			}
			fmt.Fprintf(stdout, "psynd: loaded %d synopses from %s (%d flat, %d codec)\n",
				flatN+codecN, *flagCatalog, flatN, codecN)
		} else {
			n, err := cat.LoadDir(*flagCatalog)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "psynd: loaded %d synopses from %s\n", n, *flagCatalog)
		}
	}
	srv, err := server.New(server.Config{
		DataDir:       *flagData,
		CatalogDir:    *flagCatalog,
		FlatPath:      flatPath,
		Catalog:       cat,
		Pool:          pool,
		QueueDepth:    *flagQueue,
		BuildWorkers:  *flagBuilders,
		C:             *flagC,
		MaxLiveStates: *flagMaxLive,
		Peers:         peers,
		Self:          self,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stdout, "psynd: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *flagAddr)
	if err != nil {
		return err
	}
	var pprofSrv *http.Server
	if *flagPprof != "" {
		// An explicit mux, not http.DefaultServeMux: importing net/http/pprof
		// registers its handlers globally, and serving the default mux would
		// drag along anything else the process (or a dependency) registered.
		pln, err := net.Listen("tcp", *flagPprof)
		if err != nil {
			return err
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv = &http.Server{Handler: pmux}
		fmt.Fprintf(stdout, "psynd: pprof on %s\n", pln.Addr())
		go func() {
			if err := pprofSrv.Serve(pln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(stdout, "psynd: pprof server: %v\n", err)
			}
		}()
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(stdout, "psynd: listening on %s (pool: %d workers, max %d concurrent builds)\n",
		ln.Addr(), pool.Workers(), pool.MaxBuilds())
	if len(peers) > 1 {
		fmt.Fprintf(stdout, "psynd: cluster mode, %d peers, self %s\n", len(peers), self)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(stdout, "psynd: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), *flagDrain)
	defer cancel()
	httpErr := httpSrv.Shutdown(sctx) // close the listener, finish in-flight requests
	if pprofSrv != nil {
		httpErr = errors.Join(httpErr, pprofSrv.Shutdown(sctx))
	}
	drainErr := srv.Shutdown(sctx) // drain queued builds through the pool
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := errors.Join(httpErr, drainErr); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "psynd: bye")
	return nil
}
