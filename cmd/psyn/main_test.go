package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"probsyn"
	"probsyn/internal/catalog"
	"probsyn/internal/gen"
)

// writeDataset materializes a small generated dataset in the probsyn text
// format and returns its path.
func writeDataset(t *testing.T, dir string) (string, probsyn.Source) {
	t.Helper()
	src := gen.MystiQLinkage(rand.New(rand.NewSource(7)), gen.DefaultMystiQ(64))
	path := filepath.Join(dir, "data.pd")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := probsyn.WriteDataset(f, src); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, src
}

// TestRunRoundTrip drives the CLI end to end for both synopsis families
// and both codec envelopes: build with -out, reload with -in, and assert
// the persisted synopsis answers Estimate and ErrorCost exactly like the
// synopsis the same build produces in-process.
func TestRunRoundTrip(t *testing.T) {
	dir := t.TempDir()
	dataset, src := writeDataset(t, dir)

	cases := []struct {
		name    string
		file    string
		loadTag string
		args    []string
		ref     func() (probsyn.Synopsis, error)
	}{
		{
			name: "histogram-binary", file: "h.syn", loadTag: "histogram synopsis",
			args: []string{"-input", dataset, "-metric", "SSE", "-buckets", "8", "-parallelism", "2"},
			ref: func() (probsyn.Synopsis, error) {
				return probsyn.Build(src, probsyn.SSE, 8, probsyn.WithParallelism(2))
			},
		},
		{
			name: "histogram-json", file: "h.json", loadTag: "histogram synopsis",
			args: []string{"-input", dataset, "-metric", "SSE", "-buckets", "8"},
			ref: func() (probsyn.Synopsis, error) {
				return probsyn.Build(src, probsyn.SSE, 8)
			},
		},
		{
			name: "wavelet-binary", file: "w.syn", loadTag: "wavelet synopsis",
			args: []string{"-input", dataset, "-wavelet", "-metric", "SAE", "-coeffs", "8", "-parallelism", "2"},
			ref: func() (probsyn.Synopsis, error) {
				return probsyn.Build(src, probsyn.SAE, 8, probsyn.WithWavelet(), probsyn.WithParallelism(2))
			},
		},
		{
			name: "wavelet-json", file: "w.json", loadTag: "wavelet synopsis",
			args: []string{"-input", dataset, "-wavelet", "-metric", "SAE", "-coeffs", "8"},
			ref: func() (probsyn.Synopsis, error) {
				return probsyn.Build(src, probsyn.SAE, 8, probsyn.WithWavelet())
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := filepath.Join(dir, tc.file)
			var buildOut bytes.Buffer
			if err := run(append(tc.args, "-out", out), &buildOut); err != nil {
				t.Fatalf("build: %v", err)
			}
			if !strings.Contains(buildOut.String(), "saved") {
				t.Fatalf("build output missing save line:\n%s", buildOut.String())
			}

			var loadOut bytes.Buffer
			if err := run([]string{"-in", out}, &loadOut); err != nil {
				t.Fatalf("load: %v", err)
			}
			if !strings.Contains(loadOut.String(), tc.loadTag) {
				t.Fatalf("load output missing %q:\n%s", tc.loadTag, loadOut.String())
			}

			data, err := os.ReadFile(out)
			if err != nil {
				t.Fatal(err)
			}
			loaded, err := probsyn.UnmarshalSynopsis(data)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := tc.ref()
			if err != nil {
				t.Fatal(err)
			}
			if loaded.Terms() != ref.Terms() {
				t.Fatalf("loaded %d terms, built %d", loaded.Terms(), ref.Terms())
			}
			if got, want := loaded.ErrorCost(), ref.ErrorCost(); got != want && math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("loaded ErrorCost %v, built %v", got, want)
			}
			for i := 0; i < src.Domain(); i++ {
				if got, want := loaded.Estimate(i), ref.Estimate(i); got != want && math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
					t.Fatalf("Estimate(%d): loaded %v, built %v", i, got, want)
				}
			}
		})
	}
}

func TestRunHelpIsNotAnError(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-h"}, &out); err != nil {
		t.Fatalf("-h returned %v, want nil", err)
	}
}

func TestRunUnknownFlagIsParseError(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-bogus"}, &out)
	if !errors.Is(err, errParse) {
		t.Fatalf("unknown flag returned %v, want errParse", err)
	}
}

func TestRunRequiresInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("run with no -input and no -in succeeded")
	}
}

func TestRunRejectsUnknownMetric(t *testing.T) {
	dir := t.TempDir()
	dataset, _ := writeDataset(t, dir)
	var out bytes.Buffer
	if err := run([]string{"-input", dataset, "-metric", "XXX"}, &out); err == nil {
		t.Fatal("unknown metric accepted")
	}
}

// TestRunSweep drives -sweep for both families: the CSV frontier prints,
// the -out directory receives one catalog file per budget, and each file
// is byte-identical to a single-budget -out build.
func TestRunSweep(t *testing.T) {
	dir := t.TempDir()
	dataset, _ := writeDataset(t, dir)
	cases := []struct {
		name    string
		args    []string
		family  string
		metric  string
		budgets int
	}{
		{"histogram", []string{"-metric", "SSE", "-buckets", "5"}, "histogram", "SSE", 5},
		{"wavelet", []string{"-wavelet", "-metric", "SAE", "-coeffs", "4"}, "wavelet", "SAE", 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			outDir := filepath.Join(dir, tc.name+"-sweep")
			var sweepOut bytes.Buffer
			args := append([]string{"-input", dataset, "-sweep", "-dataset", "ds", "-out", outDir}, tc.args...)
			if err := run(args, &sweepOut); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(sweepOut.String(), "budget,terms,cost") {
				t.Fatalf("sweep output missing CSV header:\n%s", sweepOut.String())
			}
			for b := 1; b <= tc.budgets; b++ {
				single := filepath.Join(dir, "single.syn")
				budgetFlag := "-buckets"
				if tc.family == "wavelet" {
					budgetFlag = "-coeffs"
				}
				sargs := append([]string{"-input", dataset, "-out", single}, tc.args...)
				// Override the budget for the single build.
				sargs = append(sargs, budgetFlag, itoa(b))
				var buildOut bytes.Buffer
				if err := run(sargs, &buildOut); err != nil {
					t.Fatal(err)
				}
				swept, err := os.ReadFile(filepath.Join(outDir,
					"ds--"+tc.family+"--"+tc.metric+"--b"+itoa(b)+".psyn"))
				if err != nil {
					t.Fatalf("budget %d: %v", b, err)
				}
				want, err := os.ReadFile(single)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(swept, want) {
					t.Fatalf("budget %d: swept catalog file differs from single build", b)
				}
			}
		})
	}
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

// -sweep needs the exact DP; heuristic modes are rejected.
func TestRunSweepRejectsHeuristics(t *testing.T) {
	dir := t.TempDir()
	dataset, _ := writeDataset(t, dir)
	for _, extra := range [][]string{{"-approx", "0.5"}, {"-equidepth"}} {
		args := append([]string{"-input", dataset, "-metric", "SSE", "-sweep"}, extra...)
		if err := run(args, io.Discard); err == nil {
			t.Fatalf("sweep with %v succeeded, want error", extra)
		}
	}
}

// -quantize alone routes the wavelet build through the quantized
// restricted DP (reporting its additive error bound); with -unrestricted
// it selects the unrestricted thresholding DP. Both require -wavelet.
func TestRunQuantize(t *testing.T) {
	dir := t.TempDir()
	dataset, _ := writeDataset(t, dir)
	if err := run([]string{"-input", dataset, "-metric", "SAE", "-quantize", "4"}, io.Discard); err == nil {
		t.Fatal("-quantize without -wavelet succeeded, want error")
	}
	if err := run([]string{"-input", dataset, "-unrestricted"}, io.Discard); err == nil {
		t.Fatal("-unrestricted without -quantize succeeded, want error")
	}
	if err := run([]string{"-input", dataset, "-wavelet", "-metric", "SAE", "-coeffs", "3", "-quantize", "1"}, io.Discard); err == nil {
		t.Fatal("quantized restricted build with q=1 succeeded, want error (grids need q >= 2)")
	}
	var out bytes.Buffer
	if err := run([]string{"-input", dataset, "-wavelet", "-metric", "SAE", "-coeffs", "3", "-quantize", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "quantized restricted (q=4)") || !strings.Contains(out.String(), "of the restricted optimum") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-input", dataset, "-wavelet", "-metric", "SAE", "-coeffs", "3", "-quantize", "1", "-unrestricted"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "unrestricted (q=1)") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
}

// writeValueDataset materializes a small value-model dataset (the model
// live maintenance is defined over).
func writeValueDataset(t *testing.T, dir, name string, n int) (string, *probsyn.ValuePDF) {
	t.Helper()
	vp := &probsyn.ValuePDF{N: n, Items: make([]probsyn.ItemPDF, n)}
	for i := 0; i < n; i++ {
		vp.Items[i] = probsyn.ItemPDF{Entries: []probsyn.FreqProb{
			{Freq: float64(i % 4), Prob: 0.5},
			{Freq: float64(1 + i%2), Prob: 0.25},
		}}
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := probsyn.WriteDataset(f, vp); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, vp
}

// TestRunAppend: sweep a catalog, append a batch through the CLI, and
// assert every catalog file now matches a from-scratch sweep over the
// merged dataset byte for byte — plus the -save-data round trip.
func TestRunAppend(t *testing.T) {
	dir := t.TempDir()
	basePath, base := writeValueDataset(t, dir, "vds.pd", 20)
	morePath, more := writeValueDataset(t, dir, "more.pd", 3)
	outDir := filepath.Join(dir, "catalog")

	var out bytes.Buffer
	if err := run([]string{"-input", basePath, "-sweep", "-dataset", "vds", "-metric", "SSE", "-buckets", "4", "-out", outDir}, &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-input", basePath, "-sweep", "-dataset", "vds", "-wavelet", "-metric", "SAE", "-coeffs", "3", "-out", outDir}, &out); err != nil {
		t.Fatal(err)
	}
	// A quantized restricted sweep catalogs under q-tagged keys, next to
	// the exact wavelet entries of the same metric and budgets.
	if err := run([]string{"-input", basePath, "-sweep", "-dataset", "vds", "-wavelet", "-metric", "SAE", "-coeffs", "3", "-quantize", "4", "-out", outDir}, &out); err != nil {
		t.Fatal(err)
	}

	merged := filepath.Join(dir, "merged.pd")
	out.Reset()
	if err := run([]string{"-input", basePath, "-append", morePath, "-dataset", "vds", "-out", outDir, "-save-data", merged}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "revalidated 10 synopses") {
		t.Fatalf("append output:\n%s", out.String())
	}

	// The rewritten catalog must equal a fresh sweep over the merged data.
	want := &probsyn.ValuePDF{N: base.N + more.N, Items: append(append([]probsyn.ItemPDF(nil), base.Items...), more.Items...)}
	freshDir := filepath.Join(dir, "fresh")
	mergedPath := filepath.Join(dir, "want.pd")
	f, err := os.Create(mergedPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := probsyn.WriteDataset(f, want); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-input", mergedPath, "-sweep", "-dataset", "vds", "-metric", "SSE", "-buckets", "4", "-out", freshDir}, &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-input", mergedPath, "-sweep", "-dataset", "vds", "-wavelet", "-metric", "SAE", "-coeffs", "3", "-out", freshDir}, &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-input", mergedPath, "-sweep", "-dataset", "vds", "-wavelet", "-metric", "SAE", "-coeffs", "3", "-quantize", "4", "-out", freshDir}, &out); err != nil {
		t.Fatal(err)
	}
	des, err := os.ReadDir(freshDir)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, de := range des {
		fresh, err := os.ReadFile(filepath.Join(freshDir, de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		live, err := os.ReadFile(filepath.Join(outDir, de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(live, fresh) {
			t.Fatalf("%s: appended catalog differs from fresh sweep over merged data", de.Name())
		}
		checked++
	}
	if checked != 10 {
		t.Fatalf("checked %d files, want 10", checked)
	}

	// -save-data round trip.
	mf, err := os.Open(merged)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	msrc, err := probsyn.ReadDataset(mf)
	if err != nil {
		t.Fatal(err)
	}
	if msrc.Domain() != base.N+more.N {
		t.Fatalf("merged domain %d, want %d", msrc.Domain(), base.N+more.N)
	}
}

// TestRunAppendValidation: -append needs a catalog dir with files for
// the dataset and a value-model input.
func TestRunAppendValidation(t *testing.T) {
	dir := t.TempDir()
	basePath, _ := writeValueDataset(t, dir, "vds.pd", 8)
	morePath, _ := writeValueDataset(t, dir, "more.pd", 2)
	var out bytes.Buffer
	if err := run([]string{"-input", basePath, "-append", morePath}, &out); err == nil {
		t.Fatal("-append without -out accepted")
	}
	empty := filepath.Join(dir, "empty")
	if err := os.MkdirAll(empty, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-input", basePath, "-append", morePath, "-out", empty}, &out); err == nil {
		t.Fatal("-append against an empty catalog accepted")
	}
	basicPath, _ := writeDataset(t, dir)
	if err := run([]string{"-input", basicPath, "-append", morePath, "-out", empty}, &out); err == nil {
		t.Fatal("-append over a basic-model input accepted")
	}
}

// TestRunQuery: -query answers a batch request file offline from a
// catalog directory, with per-op errors, and writes only the canonical
// response JSON (exact float64 values, nothing else on stdout).
func TestRunQuery(t *testing.T) {
	dir := t.TempDir()
	dataset, src := writeDataset(t, dir)
	catDir := filepath.Join(dir, "catalog")
	for _, args := range [][]string{
		{"-input", dataset, "-metric", "SSE", "-buckets", "4", "-sweep", "-dataset", "ds", "-out", catDir},
		{"-input", dataset, "-wavelet", "-metric", "SAE", "-coeffs", "3", "-sweep", "-dataset", "ds", "-out", catDir},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err != nil {
			t.Fatal(err)
		}
	}
	reqPath := filepath.Join(dir, "batch.json")
	batch := `{"ops":[
		{"dataset":"ds","family":"histogram","metric":"SSE","budget":4,"op":"estimate","i":7},
		{"dataset":"ds","family":"wavelet","metric":"SAE","budget":3,"op":"rangesum","lo":2,"hi":20},
		{"dataset":"ds","family":"histogram","metric":"SSE","budget":99,"op":"estimate","i":0}
	]}`
	if err := os.WriteFile(reqPath, []byte(batch), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-query", reqPath, "-out", catDir}, &out); err != nil {
		t.Fatal(err)
	}
	var resp struct {
		Results []struct {
			Value float64 `json:"value"`
			Err   *struct {
				Code string `json:"code"`
			} `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(out.Bytes(), &resp); err != nil {
		t.Fatalf("stdout is not exactly the response JSON: %v\n%s", err, out.String())
	}
	if len(resp.Results) != 3 {
		t.Fatalf("%d results, want 3", len(resp.Results))
	}
	// Reference answers from offline builds over the same dataset.
	hs, err := probsyn.Build(src, probsyn.SSE, 4)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := probsyn.Build(src, probsyn.SAE, 3, probsyn.WithWavelet(), probsyn.WithParams(probsyn.Params{C: 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resp.Results[0].Value, hs.Estimate(7); got != want || resp.Results[0].Err != nil {
		t.Fatalf("op 0: %v, want %v", got, want)
	}
	if got, want := resp.Results[1].Value, ws.RangeSum(2, 20); got != want || resp.Results[1].Err != nil {
		t.Fatalf("op 1: %v, want %v", got, want)
	}
	if e := resp.Results[2].Err; e == nil || e.Code != "not_found" {
		t.Fatalf("op 2: want not_found, got %+v", resp.Results[2])
	}
	// A second run over the same catalog produces the same bytes
	// (determinism underpinning the served-vs-offline cmp check in CI).
	var again bytes.Buffer
	if err := run([]string{"-query", reqPath, "-out", catDir}, &again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), again.Bytes()) {
		t.Fatal("query response not deterministic")
	}
}

func TestRunQueryValidation(t *testing.T) {
	dir := t.TempDir()
	reqPath := filepath.Join(dir, "batch.json")
	if err := os.WriteFile(reqPath, []byte(`{"ops":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-query", reqPath}, io.Discard); err == nil || !strings.Contains(err.Error(), "-out") {
		t.Fatalf("missing -out accepted: %v", err)
	}
	if err := run([]string{"-query", reqPath, "-out", dir}, io.Discard); err == nil {
		t.Fatal("empty batch accepted")
	}
	if err := os.WriteFile(reqPath, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-query", reqPath, "-out", dir}, io.Discard); err == nil {
		t.Fatal("malformed batch accepted")
	}
}

// TestRunSharded: a -shards build saves the merged synopsis plus every
// piece, byte-identical to an in-process BuildSharded, and a -query
// batch with "shards" answers through the saved pieces.
func TestRunSharded(t *testing.T) {
	dir := t.TempDir()
	dataset, src := writeDataset(t, dir)
	catDir := filepath.Join(dir, "catalog")
	var out bytes.Buffer
	if err := run([]string{"-input", dataset, "-metric", "SSE", "-buckets", "8", "-shards", "4", "-dataset", "ds", "-out", catDir}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "suboptimality bound") && !strings.Contains(out.String(), "merge is exact") {
		t.Fatalf("no bound line in output:\n%s", out.String())
	}
	ref, err := probsyn.BuildSharded(src, probsyn.SSE, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Merged file and all four piece files exist and decode to the
	// reference bytes.
	names := []string{"ds--histogram--SSE--b8.psyn"}
	for i := 0; i < 4; i++ {
		names = append(names, fmt.Sprintf("ds--histogram--SSE--s%dof4--b8.psyn", i))
	}
	want := make([][]byte, 0, len(names))
	for _, syn := range append([]probsyn.Synopsis{ref.Synopsis}, ref.Pieces...) {
		blob, err := probsyn.MarshalSynopsis(syn)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, blob)
	}
	for k, name := range names {
		got, err := os.ReadFile(filepath.Join(catDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[k]) {
			t.Fatalf("%s differs from the in-process build", name)
		}
	}
	// SSE wavelet sharding is exact, and the report says so.
	out.Reset()
	if err := run([]string{"-input", dataset, "-wavelet", "-metric", "SSE", "-coeffs", "6", "-shards", "2", "-dataset", "ds", "-out", catDir}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "merge is exact") {
		t.Fatalf("SSE wavelet shard merge not reported exact:\n%s", out.String())
	}
	// Offline batch queries resolve sharded keys from the piece files.
	reqPath := filepath.Join(dir, "batch.json")
	batch := `{"ops":[{"dataset":"ds","family":"histogram","metric":"SSE","budget":8,"shards":4,"op":"rangesum","lo":5,"hi":40}]}`
	if err := os.WriteFile(reqPath, []byte(batch), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-query", reqPath, "-out", catDir}, &out); err != nil {
		t.Fatal(err)
	}
	var resp struct {
		Results []struct {
			Value float64 `json:"value"`
			Err   *struct {
				Code string `json:"code"`
			} `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(out.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Err != nil {
		t.Fatalf("batch results %+v\n%s", resp.Results, out.String())
	}
	want0 := 0.0
	for s := 0; s < 4; s++ {
		lo, hi := ref.Bounds[s], ref.Bounds[s+1]-1
		if lo > 40 || hi < 5 {
			continue
		}
		want0 += ref.Pieces[s].RangeSum(max(5, lo)-lo, min(40, hi)-lo)
	}
	if resp.Results[0].Value != want0 {
		t.Fatalf("sharded batch rangesum = %v, want %v", resp.Results[0].Value, want0)
	}
}

func TestRunShardedValidation(t *testing.T) {
	dir := t.TempDir()
	dataset, _ := writeDataset(t, dir)
	if err := run([]string{"-input", dataset, "-shards", "2", "-equidepth"}, io.Discard); err == nil {
		t.Fatal("-shards -equidepth accepted")
	}
	if err := run([]string{"-input", dataset, "-shards", "2", "-sweep"}, io.Discard); err == nil {
		t.Fatal("-shards -sweep accepted")
	}
}

// -pack builds the flat mmap file psynd -flat boots from. The output
// must be deterministic and byte-identical to the pack a server's
// background keeper writes for the same logical catalog — that identity
// is what lets replicas rsync or content-address the file.
func TestRunPack(t *testing.T) {
	dir := t.TempDir()
	dataset, _ := writeDataset(t, dir)
	outDir := filepath.Join(dir, "cat")
	if err := run([]string{"-input", dataset, "-metric", "SSE", "-buckets", "4",
		"-sweep", "-dataset", "ds", "-out", outDir}, io.Discard); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-pack", outDir}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "packed 4 synopses") {
		t.Fatalf("pack report:\n%s", out.String())
	}
	path := catalog.FlatPath(outDir)
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := catalog.OpenFlat(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 4 {
		t.Fatalf("flat file holds %d entries, want 4", f.Len())
	}
	f.Close()

	// Byte identity with the in-process pack the server's keeper writes.
	c := catalog.New()
	if _, err := c.LoadDir(outDir); err != nil {
		t.Fatal(err)
	}
	want, err := catalog.PackBytes(c.List())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, want) {
		t.Fatal("-pack output differs from an in-process PackBytes of the same catalog")
	}

	// Determinism across repeated invocations.
	if err := run([]string{"-pack", outDir}, io.Discard); err != nil {
		t.Fatal(err)
	}
	again, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, again) {
		t.Fatal("re-pack changed the flat file bytes")
	}
}
