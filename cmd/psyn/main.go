// Command psyn builds histogram and wavelet synopses from a probabilistic
// dataset file (probsyn text format; see cmd/datagen to create one).
//
// Examples:
//
//	psyn -input data.pd -metric SSE -buckets 20
//	psyn -input data.pd -metric SARE -c 1.0 -buckets 50 -approx 0.25
//	psyn -input data.pd -wavelet -coeffs 32
//	psyn -input data.pd -wavelet -metric SAE -coeffs 16
package main

import (
	"flag"
	"fmt"
	"os"

	"probsyn"
)

var (
	flagInput   = flag.String("input", "", "dataset file (required)")
	flagMetric  = flag.String("metric", "SSE", "error metric: SSE, SSE-fixed, SSRE, SAE, SARE, MAE, MARE")
	flagC       = flag.Float64("c", 0.5, "sanity constant for relative-error metrics")
	flagBuckets = flag.Int("buckets", 16, "histogram bucket budget")
	flagApprox  = flag.Float64("approx", 0, "if > 0, build a (1+eps)-approximate histogram with this eps")
	flagEqui    = flag.Bool("equidepth", false, "build the equi-depth heuristic instead of the optimal histogram")
	flagWavelet = flag.Bool("wavelet", false, "build a wavelet synopsis instead of a histogram")
	flagCoeffs  = flag.Int("coeffs", 16, "wavelet coefficient budget")
)

func main() {
	flag.Parse()
	if *flagInput == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*flagInput)
	fatal(err)
	defer f.Close()
	src, err := probsyn.ReadDataset(f)
	fatal(err)

	m, err := probsyn.ParseMetric(*flagMetric)
	fatal(err)
	p := probsyn.Params{C: *flagC}

	if *flagWavelet {
		buildWavelet(src, m, p)
		return
	}
	buildHistogram(src, m, p)
}

func buildHistogram(src probsyn.Source, m probsyn.Metric, p probsyn.Params) {
	var (
		h   *probsyn.Histogram
		err error
		how string
	)
	switch {
	case *flagEqui:
		h, err = probsyn.EquiDepthHistogram(src, m, p, *flagBuckets)
		how = "equi-depth"
	case *flagApprox > 0:
		h, err = probsyn.ApproxHistogram(src, m, p, *flagBuckets, *flagApprox)
		how = fmt.Sprintf("(1+%g)-approximate", *flagApprox)
	default:
		h, err = probsyn.OptimalHistogram(src, m, p, *flagBuckets)
		how = "optimal"
	}
	fatal(err)
	fmt.Printf("%s %v histogram over n=%d (m=%d pairs): %d buckets, expected error %.6g\n",
		how, m, src.Domain(), src.M(), h.B(), h.Cost)
	fmt.Println("start,end,width,representative,bucket_cost")
	for _, b := range h.Buckets {
		fmt.Printf("%d,%d,%d,%.6g,%.6g\n", b.Start, b.End, b.Width(), b.Rep, b.Cost)
	}
}

func buildWavelet(src probsyn.Source, m probsyn.Metric, p probsyn.Params) {
	if m == probsyn.SSE || m == probsyn.SSEFixed {
		syn, rep, err := probsyn.SSEWavelet(src, *flagCoeffs)
		fatal(err)
		fmt.Printf("SSE-optimal wavelet synopsis over n=%d (padded %d): %d coefficients\n",
			src.Domain(), syn.N, syn.B())
		fmt.Printf("expected SSE %.6g (irreducible variance %.6g, dropped energy %.6g = %.2f%%)\n",
			rep.ExpectedSSE, rep.VarianceFloor, rep.DroppedMuSq(), rep.ErrorPercent())
		printCoeffs(syn)
		return
	}
	syn, cost, err := probsyn.RestrictedWavelet(src, m, p, *flagCoeffs)
	fatal(err)
	fmt.Printf("restricted %v wavelet synopsis over n=%d (padded %d): %d coefficients, expected error %.6g\n",
		m, src.Domain(), syn.N, syn.B(), cost)
	printCoeffs(syn)
}

func printCoeffs(syn *probsyn.WaveletSynopsis) {
	fmt.Println("index,value")
	for k, idx := range syn.Indices {
		fmt.Printf("%d,%.6g\n", idx, syn.Values[k])
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "psyn:", err)
		os.Exit(1)
	}
}
