// Command psyn builds histogram and wavelet synopses from a probabilistic
// dataset file (probsyn text format; see cmd/datagen to create one), and
// saves/loads them through the versioned synopsis codec.
//
// Examples:
//
//	psyn -input data.pd -metric SSE -buckets 20
//	psyn -input data.pd -metric SARE -c 1.0 -buckets 50 -approx 0.25
//	psyn -input data.pd -metric SSE -buckets 64 -parallelism 0 -out h.syn
//	psyn -input data.pd -wavelet -coeffs 32 -out w.json
//	psyn -in h.syn
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"probsyn"
)

var (
	flagInput    = flag.String("input", "", "dataset file (required unless -in is given)")
	flagMetric   = flag.String("metric", "SSE", "error metric: SSE, SSE-fixed, SSRE, SAE, SARE, MAE, MARE")
	flagC        = flag.Float64("c", 0.5, "sanity constant for relative-error metrics")
	flagBuckets  = flag.Int("buckets", 16, "histogram bucket budget")
	flagApprox   = flag.Float64("approx", 0, "if > 0, build a (1+eps)-approximate histogram with this eps")
	flagEqui     = flag.Bool("equidepth", false, "build the equi-depth heuristic instead of the optimal histogram")
	flagWavelet  = flag.Bool("wavelet", false, "build a wavelet synopsis instead of a histogram")
	flagCoeffs   = flag.Int("coeffs", 16, "wavelet coefficient budget")
	flagParallel = flag.Int("parallelism", 1, "DP worker goroutines (<= 0: one per CPU); output is identical at any setting")
	flagOut      = flag.String("out", "", "save the built synopsis to this file (.json: JSON envelope, otherwise binary)")
	flagIn       = flag.String("in", "", "load a saved synopsis instead of building one")
)

func main() {
	flag.Parse()
	if *flagIn != "" {
		loadSynopsis(*flagIn)
		return
	}
	if *flagInput == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*flagInput)
	fatal(err)
	defer f.Close()
	src, err := probsyn.ReadDataset(f)
	fatal(err)

	m, err := probsyn.ParseMetric(*flagMetric)
	fatal(err)
	p := probsyn.Params{C: *flagC}

	var syn probsyn.Synopsis
	if *flagWavelet {
		syn = buildWavelet(src, m, p)
	} else {
		syn = buildHistogram(src, m, p)
	}
	if *flagOut != "" {
		saveSynopsis(*flagOut, syn)
	}
}

func buildOptions(p probsyn.Params, extra ...probsyn.BuildOption) []probsyn.BuildOption {
	opts := []probsyn.BuildOption{probsyn.WithParams(p), probsyn.WithParallelism(*flagParallel)}
	return append(opts, extra...)
}

func buildHistogram(src probsyn.Source, m probsyn.Metric, p probsyn.Params) probsyn.Synopsis {
	var (
		h   *probsyn.Histogram
		err error
		how string
	)
	switch {
	case *flagEqui:
		h, err = probsyn.EquiDepthHistogram(src, m, p, *flagBuckets)
		how = "equi-depth"
	case *flagApprox > 0:
		var s probsyn.Synopsis
		s, err = probsyn.Build(src, m, *flagBuckets, buildOptions(p, probsyn.WithEps(*flagApprox))...)
		if err == nil {
			h = s.(*probsyn.Histogram)
		}
		how = fmt.Sprintf("(1+%g)-approximate", *flagApprox)
	default:
		var s probsyn.Synopsis
		s, err = probsyn.Build(src, m, *flagBuckets, buildOptions(p)...)
		if err == nil {
			h = s.(*probsyn.Histogram)
		}
		how = "optimal"
	}
	fatal(err)
	fmt.Printf("%s %v histogram over n=%d (m=%d pairs): %d buckets, expected error %.6g\n",
		how, m, src.Domain(), src.M(), h.B(), h.Cost)
	fmt.Println("start,end,width,representative,bucket_cost")
	for _, b := range h.Buckets {
		fmt.Printf("%d,%d,%d,%.6g,%.6g\n", b.Start, b.End, b.Width(), b.Rep, b.Cost)
	}
	return h
}

func buildWavelet(src probsyn.Source, m probsyn.Metric, p probsyn.Params) probsyn.Synopsis {
	if m == probsyn.SSE || m == probsyn.SSEFixed {
		syn, rep, err := probsyn.SSEWavelet(src, *flagCoeffs)
		fatal(err)
		fmt.Printf("SSE-optimal wavelet synopsis over n=%d (padded %d): %d coefficients\n",
			src.Domain(), syn.N, syn.B())
		fmt.Printf("expected SSE %.6g (irreducible variance %.6g, dropped energy %.6g = %.2f%%)\n",
			rep.ExpectedSSE, rep.VarianceFloor, rep.DroppedMuSq(), rep.ErrorPercent())
		printCoeffs(syn)
		return syn
	}
	syn, cost, err := probsyn.RestrictedWavelet(src, m, p, *flagCoeffs)
	fatal(err)
	fmt.Printf("restricted %v wavelet synopsis over n=%d (padded %d): %d coefficients, expected error %.6g\n",
		m, src.Domain(), syn.N, syn.B(), cost)
	printCoeffs(syn)
	return syn
}

func printCoeffs(syn *probsyn.WaveletSynopsis) {
	fmt.Println("index,value")
	for k, idx := range syn.Indices {
		fmt.Printf("%d,%.6g\n", idx, syn.Values[k])
	}
}

// saveSynopsis writes the synopsis through the versioned codec: JSON when
// the path ends in .json, the binary envelope otherwise.
func saveSynopsis(path string, syn probsyn.Synopsis) {
	var (
		data []byte
		err  error
	)
	if strings.HasSuffix(path, ".json") {
		data, err = probsyn.MarshalSynopsisJSON(syn)
	} else {
		data, err = probsyn.MarshalSynopsis(syn)
	}
	fatal(err)
	fatal(os.WriteFile(path, data, 0o644))
	fmt.Printf("saved %d-term synopsis to %s (%d bytes)\n", syn.Terms(), path, len(data))
}

// loadSynopsis reads a saved synopsis (either envelope) and summarizes it.
func loadSynopsis(path string) {
	data, err := os.ReadFile(path)
	fatal(err)
	syn, err := probsyn.UnmarshalSynopsis(data)
	fatal(err)
	switch s := syn.(type) {
	case *probsyn.Histogram:
		fmt.Printf("histogram synopsis: n=%d, %d buckets, expected error %.6g\n", s.N, s.Terms(), s.ErrorCost())
		fmt.Println("start,end,width,representative,bucket_cost")
		for _, b := range s.Buckets {
			fmt.Printf("%d,%d,%d,%.6g,%.6g\n", b.Start, b.End, b.Width(), b.Rep, b.Cost)
		}
	case *probsyn.WaveletSynopsis:
		fmt.Printf("wavelet synopsis: n=%d (padded), %d coefficients, expected error %.6g\n", s.N, s.Terms(), s.ErrorCost())
		printCoeffs(s)
	default:
		fmt.Printf("synopsis: %d terms, expected error %.6g\n", syn.Terms(), syn.ErrorCost())
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "psyn:", err)
		os.Exit(1)
	}
}
