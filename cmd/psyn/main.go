// Command psyn builds histogram and wavelet synopses from a probabilistic
// dataset file (probsyn text format; see cmd/datagen to create one), and
// saves/loads them through the versioned synopsis codec.
//
// Examples:
//
//	psyn -input data.pd -metric SSE -buckets 20
//	psyn -input data.pd -metric SARE -c 1.0 -buckets 50 -approx 0.25
//	psyn -input data.pd -metric SSE -buckets 64 -parallelism 0 -out h.syn
//	psyn -input data.pd -wavelet -metric SAE -coeffs 32 -parallelism 0 -out w.json
//	psyn -input big.pd -wavelet -metric SAE -coeffs 32 -quantize 64
//	psyn -input data.pd -wavelet -metric SAE -coeffs 8 -quantize 2 -unrestricted
//	psyn -in h.syn
//
// With -sweep, one DP run builds the whole budget frontier: the
// cost-vs-budget curve for every budget up to -buckets/-coeffs prints as
// CSV, and -out (a directory) receives one key-encoded catalog file per
// budget — each byte-identical to a single-budget build, and servable by
// psynd:
//
//	psyn -input data.pd -metric SSE -buckets 32 -sweep -out ./catalog
//
// With -append, the items of a second (value-model) dataset file extend
// the -input dataset, and every key-encoded synopsis for that dataset in
// the -out catalog directory is revalidated through a live frontier
// (probsyn.BuildLive) and rewritten — each file byte-identical to a
// from-scratch build over the merged data, and -save-data persists the
// merged dataset itself:
//
//	psyn -input data.pd -append more.pd -dataset ds -out ./catalog -save-data data.pd
//
// With -query, a batch request file (the POST /v1/query JSON body: ops of
// estimate/rangesum against catalog keys) is answered offline from the
// -out catalog directory, writing exactly the bytes psynd would serve —
// the two responses are cmp-identical over the same catalog:
//
//	psyn -query batch.json -out ./catalog
//
// With -pack, a catalog directory's .psyn envelopes are packed into the
// flat mmap file psynd boots from with -flat (see internal/catalog).
// Packing is deterministic: the same logical catalog packs to the same
// bytes here, on a server's background re-pack, or anywhere else:
//
//	psyn -pack ./catalog
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"probsyn"
	"probsyn/internal/catalog"
	"probsyn/internal/query"
)

// errParse marks a flag-parse failure the FlagSet has already reported to
// stderr, so main neither reprints it nor masks the usage text.
var errParse = errors.New("flag parse error")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, errParse) {
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "psyn:", err)
		os.Exit(1)
	}
}

// run executes the CLI against args, writing reports to stdout. It is the
// whole command behind a testable seam: main only wires OS state.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("psyn", flag.ContinueOnError)
	var (
		flagInput    = fs.String("input", "", "dataset file (required unless -in is given)")
		flagMetric   = fs.String("metric", "SSE", "error metric: SSE, SSE-fixed, SSRE, SAE, SARE, MAE, MARE")
		flagC        = fs.Float64("c", 0.5, "sanity constant for relative-error metrics")
		flagBuckets  = fs.Int("buckets", 16, "histogram bucket budget")
		flagApprox   = fs.Float64("approx", 0, "if > 0, build a (1+eps)-approximate histogram with this eps")
		flagEqui     = fs.Bool("equidepth", false, "build the equi-depth heuristic instead of the optimal histogram")
		flagWavelet  = fs.Bool("wavelet", false, "build a wavelet synopsis instead of a histogram")
		flagCoeffs   = fs.Int("coeffs", 16, "wavelet coefficient budget")
		flagQuant    = fs.Int("quantize", -1, "if >= 0, quantize the restricted wavelet DP's incoming values onto grids of q points (q >= 2; approximate, O(n q B) states, domains far beyond the exact DP build in seconds); with -unrestricted, instead optimize coefficient values over 2q grid points plus the expected value (exact over the grid, exponential in q and log n). Wavelet DP metrics only (not the greedy-exact SSE build, not histograms)")
		flagUnres    = fs.Bool("unrestricted", false, "with -quantize: build the unrestricted wavelet thresholding DP instead of the quantized restricted one")
		flagParallel = fs.Int("parallelism", 1, "DP worker goroutines for histogram and non-SSE wavelet builds (<= 0: one per CPU); output is identical at any setting (the SSE wavelet build is greedy and ignores it)")
		flagOut      = fs.String("out", "", "save the built synopsis to this file (.json: JSON envelope, otherwise binary); with -sweep, a directory receiving one catalog file per budget")
		flagIn       = fs.String("in", "", "load a saved synopsis instead of building one")
		flagSweep    = fs.Bool("sweep", false, "build the whole budget frontier (every budget up to -buckets/-coeffs) from one DP run and print budget,terms,cost CSV")
		flagDataset  = fs.String("dataset", "", "dataset name used in -sweep/-append catalog filenames (default: the -input file stem)")
		flagAppend   = fs.String("append", "", "value-model dataset file whose items extend the -input dataset; every synopsis for -dataset in the -out catalog directory is revalidated and rewritten")
		flagSaveData = fs.String("save-data", "", "with -append: write the merged dataset to this file")
		flagQuery    = fs.String("query", "", "batch request file (POST /v1/query JSON body) answered offline from the -out catalog directory; the response JSON is written to stdout, byte-identical to a served one")
		flagPack     = fs.String("pack", "", "pack this catalog directory's synopses into its flat mmap file (catalog.flat) for millisecond psynd -flat boots; deterministic, byte-identical to the server's own re-packs")
		flagShards   = fs.Int("shards", 0, "if >= 2, build sharded: split the domain into this many contiguous ranges, build each in parallel, and merge (exact for SSE wavelets; DP families report a certified additive suboptimality bound); with -out (a catalog directory), the merged synopsis and every piece are saved under key-encoded filenames")
		flagVerbose  = fs.Bool("v", false, "after a histogram DP build (plain, -sweep, or -shards), report the DP work counters: split candidates scanned vs. monotonicity-pruned and bucket-cost evaluations — the pruned DP's output-sensitivity (see probsyn.DPStats); non-DP builds print nothing")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil // -h/-help: usage already printed, exit 0
		}
		return errParse
	}
	if *flagPack != "" {
		return runPack(stdout, *flagPack)
	}
	if *flagQuery != "" {
		return runQuery(stdout, *flagQuery, *flagOut, *flagC)
	}
	if *flagIn != "" {
		return loadSynopsis(stdout, *flagIn)
	}
	if *flagInput == "" {
		fs.Usage()
		return fmt.Errorf("missing -input (or -in)")
	}
	f, err := os.Open(*flagInput)
	if err != nil {
		return err
	}
	defer f.Close()
	src, err := probsyn.ReadDataset(f)
	if err != nil {
		return err
	}

	m, err := probsyn.ParseMetric(*flagMetric)
	if err != nil {
		return err
	}
	p := probsyn.Params{C: *flagC}
	opts := []probsyn.BuildOption{probsyn.WithParams(p), probsyn.WithParallelism(*flagParallel)}
	var dpStats probsyn.DPStats
	if *flagVerbose {
		opts = append(opts, probsyn.WithDPStats(&dpStats))
	}
	if *flagUnres && *flagQuant < 0 {
		return fmt.Errorf("-unrestricted needs -quantize q")
	}
	rquant := 0 // the restricted-DP grid size, when the approximate path is selected
	if *flagQuant >= 0 {
		if !*flagWavelet {
			return fmt.Errorf("-quantize is a wavelet option (add -wavelet)")
		}
		if *flagUnres {
			opts = append(opts, probsyn.WithUnrestricted(*flagQuant))
		} else {
			opts = append(opts, probsyn.WithQuantize(*flagQuant))
			rquant = *flagQuant
		}
	}

	if *flagAppend != "" {
		dataset := *flagDataset
		if dataset == "" {
			dataset = strings.TrimSuffix(filepath.Base(*flagInput), filepath.Ext(*flagInput))
		}
		return runAppend(stdout, src, *flagAppend, dataset, *flagOut, *flagSaveData, *flagParallel)
	}

	if *flagSweep {
		if *flagEqui || *flagApprox > 0 {
			return fmt.Errorf("-sweep needs the exact DP (drop -equidepth/-approx)")
		}
		if *flagShards >= 2 {
			return fmt.Errorf("-sweep cannot shard (drop -shards)")
		}
		dataset := *flagDataset
		if dataset == "" {
			dataset = strings.TrimSuffix(filepath.Base(*flagInput), filepath.Ext(*flagInput))
		}
		budget := *flagBuckets
		if *flagWavelet {
			budget = *flagCoeffs
			opts = append(opts, probsyn.WithWavelet())
		}
		if err := runSweep(stdout, src, m, p, budget, dataset, *flagOut, rquant, opts); err != nil {
			return err
		}
		reportDPStats(stdout, dpStats)
		return nil
	}

	if *flagShards >= 2 {
		if *flagEqui || *flagApprox > 0 || *flagUnres {
			return fmt.Errorf("-shards needs the exact or quantized DP (drop -equidepth/-approx/-unrestricted)")
		}
		dataset := *flagDataset
		if dataset == "" {
			dataset = strings.TrimSuffix(filepath.Base(*flagInput), filepath.Ext(*flagInput))
		}
		budget := *flagBuckets
		if *flagWavelet {
			budget = *flagCoeffs
			opts = append(opts, probsyn.WithWavelet())
		}
		if err := runSharded(stdout, src, m, p, budget, *flagShards, dataset, *flagOut, rquant, opts); err != nil {
			return err
		}
		reportDPStats(stdout, dpStats)
		return nil
	}

	var syn probsyn.Synopsis
	if *flagWavelet {
		syn, err = buildWavelet(stdout, src, m, *flagCoeffs, *flagQuant, *flagUnres, opts)
	} else {
		syn, err = buildHistogram(stdout, src, m, p, *flagBuckets, *flagApprox, *flagEqui, opts)
	}
	if err != nil {
		return err
	}
	reportDPStats(stdout, dpStats)
	if *flagOut != "" {
		return saveSynopsis(stdout, *flagOut, syn)
	}
	return nil
}

// reportDPStats prints the histogram DP's work counters collected via
// WithDPStats (-v). A zero struct — no DP ran, or -v was off — prints
// nothing.
func reportDPStats(stdout io.Writer, st probsyn.DPStats) {
	total := st.CandidatesScanned + st.CandidatesPruned
	if total == 0 {
		return
	}
	fmt.Fprintf(stdout, "dp: %d split candidates, %d scanned, %d pruned (%.1f%%), %d bucket-cost evals\n",
		total, st.CandidatesScanned, st.CandidatesPruned,
		100*float64(st.CandidatesPruned)/float64(total), st.CostEvals)
}

// runAppend extends a value-model dataset with the items of a second
// dataset file and revalidates every key-encoded synopsis for the
// dataset in the catalog directory: one live frontier per
// (family, metric, c) group absorbs the append, and each cataloged
// budget is rewritten atomically — the offline twin of a psynd
// POST /v1/append, producing byte-identical files.
func runAppend(stdout io.Writer, src probsyn.Source, appendPath, dataset, outDir, saveData string, parallelism int) error {
	base, ok := src.(*probsyn.ValuePDF)
	if !ok {
		return fmt.Errorf("-append is defined over the value-pdf model; -input is another model")
	}
	af, err := os.Open(appendPath)
	if err != nil {
		return err
	}
	defer af.Close()
	asrc, err := probsyn.ReadDataset(af)
	if err != nil {
		return err
	}
	avp, ok := asrc.(*probsyn.ValuePDF)
	if !ok {
		return fmt.Errorf("-append file must be a value-model dataset")
	}
	if outDir == "" {
		return fmt.Errorf("-append needs -out pointing at a saved catalog directory")
	}
	des, err := os.ReadDir(outDir)
	if err != nil {
		return err
	}
	// Collect the dataset's catalog files; directory order is
	// lexicographic, so the shared grouping (one live frontier per
	// family/metric/c — the same unit psynd's mutation path revalidates)
	// is deterministic.
	var keys []catalog.Key
	for _, de := range des {
		key, err := catalog.ParseFilename(de.Name())
		if err != nil || key.Dataset != dataset {
			continue
		}
		keys = append(keys, key)
	}
	if len(keys) == 0 {
		return fmt.Errorf("no catalog files for dataset %q in %s", dataset, outDir)
	}
	oldN := base.Domain()
	fmt.Fprintf(stdout, "appending %d items to %s (domain %d -> %d)\n", avp.N, dataset, oldN, oldN+avp.N)
	written := 0
	for _, group := range catalog.GroupKeys(keys) {
		gmax := 0
		for _, k := range group {
			if k.Budget > gmax {
				gmax = k.Budget
			}
		}
		m, err := probsyn.ParseMetric(group[0].Metric)
		if err != nil {
			return err
		}
		opts := []probsyn.BuildOption{
			probsyn.WithParams(probsyn.Params{C: group[0].C}),
			probsyn.WithParallelism(parallelism),
		}
		if group[0].Family == catalog.FamilyWavelet {
			opts = append(opts, probsyn.WithWavelet())
			if group[0].Q > 0 {
				opts = append(opts, probsyn.WithQuantize(group[0].Q))
			}
		}
		live, err := probsyn.BuildLive(base, m, gmax, opts...)
		if err != nil {
			return err
		}
		if err := live.Append(avp.Items); err != nil {
			return err
		}
		for _, key := range group {
			syn, err := catalog.ExtractBudget(live, key.Budget)
			if err != nil {
				return err
			}
			if _, err := catalog.WriteFile(filepath.Join(outDir, key.Filename()), syn); err != nil {
				return err
			}
			written++
		}
	}
	fmt.Fprintf(stdout, "revalidated %d synopses in %s\n", written, outDir)
	if saveData != "" {
		merged := base.Clone()
		for i := range avp.Items {
			merged.Items = append(merged.Items, avp.Items[i].Clone())
		}
		merged.N = len(merged.Items)
		var buf bytes.Buffer
		if err := probsyn.WriteDataset(&buf, merged); err != nil {
			return err
		}
		// Atomic (temp + rename) through the catalog layer's shared write
		// path — the same discipline psynd uses for its dataset rewrites.
		if err := catalog.WriteBlob(saveData, buf.Bytes()); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "saved merged dataset to %s\n", saveData)
	}
	return nil
}

// runPack loads every .psyn envelope in the catalog directory and packs
// the flat mmap file beside them. The entry ordering and serialization
// are fixed by the format, so this file is byte-identical to the one a
// psynd -flat server re-packs for the same logical catalog — replicas
// can rsync it, cmp it, or content-address it.
func runPack(stdout io.Writer, dir string) error {
	c := catalog.New()
	n, err := c.LoadDir(dir)
	if err != nil {
		return err
	}
	path := catalog.FlatPath(dir)
	if _, err := catalog.Pack(path, c.List()); err != nil {
		return err
	}
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "packed %d synopses into %s (%d bytes)\n", n, path, st.Size())
	return nil
}

// runQuery answers a batch request file offline from a catalog
// directory: the same evaluator, key canonicalization, c-defaulting, and
// canonical response serialization as psynd's POST /v1/query, so the
// bytes written to stdout are cmp-identical to the served response over
// the same catalog. Nothing else is written to stdout — reports would
// break the byte identity.
func runQuery(stdout io.Writer, reqPath, catalogDir string, c float64) error {
	if catalogDir == "" {
		return fmt.Errorf("-query needs -out pointing at a saved catalog directory")
	}
	data, err := os.ReadFile(reqPath)
	if err != nil {
		return err
	}
	var req query.BatchRequest
	// Same decoder as the server's /v1/query, so the two paths accept
	// exactly the same bodies and reject with the same errors.
	if err := query.DecodeBatch(data, &req); err != nil {
		return fmt.Errorf("bad query body: %w", err)
	}
	if err := req.Validate(); err != nil {
		return err
	}
	resolve := func(bk query.BatchKey) (query.Querier, int, *query.OpError) {
		kc := bk.C
		if kc == 0 {
			kc = c // the -c default, exactly as psynd defaults its -c
		}
		key, err := catalog.NewKeyQ(bk.Dataset, bk.Family, bk.Metric, bk.Budget, kc, bk.Q)
		if err != nil {
			return nil, 0, &query.OpError{Code: "bad_request", Message: err.Error()}
		}
		if bk.Shards >= 2 {
			// A sharded key answers through a composite querier over its
			// saved piece files — the offline twin of the server's
			// sharded batch resolution.
			pieces := make([]query.Querier, bk.Shards)
			bounds := make([]int, bk.Shards+1)
			for s := 0; s < bk.Shards; s++ {
				pk, err := key.Piece(s, bk.Shards)
				if err != nil {
					return nil, 0, &query.OpError{Code: "bad_request", Message: err.Error()}
				}
				syn, err := catalog.ReadFile(filepath.Join(catalogDir, pk.Filename()))
				if err != nil {
					return nil, 0, &query.OpError{Code: "not_found", Message: fmt.Sprintf("no synopsis for %s (build it first)", pk)}
				}
				pieces[s] = query.Compile(syn)
				bounds[s+1] = bounds[s] + syn.Domain()
			}
			sq, err := query.NewSharded(pieces, bounds)
			if err != nil {
				return nil, 0, &query.OpError{Code: "bad_request", Message: err.Error()}
			}
			return sq, sq.Domain(), nil
		}
		syn, err := catalog.ReadFile(filepath.Join(catalogDir, key.Filename()))
		if err != nil {
			// The same message the server's resolver produces for an
			// uncataloged key, so error results are byte-identical too.
			return nil, 0, &query.OpError{Code: "not_found", Message: fmt.Sprintf("no synopsis for %s (build it first)", key)}
		}
		return query.Compile(syn), syn.Domain(), nil
	}
	var resp query.BatchResponse
	query.EvalBatch(&req, resolve, &resp)
	return query.EncodeResponse(stdout, &resp)
}

// runSweep builds the budget frontier in one DP run, prints the
// cost-vs-budget curve, and (with -out) persists every budget as a
// key-encoded catalog file — the same files psynd writes for a
// /v1/sweep, byte-identical to single-budget builds.
func runSweep(stdout io.Writer, src probsyn.Source, m probsyn.Metric, p probsyn.Params, budget int, dataset, outDir string, rquant int, opts []probsyn.BuildOption) error {
	fr, err := probsyn.BuildSweep(src, m, budget, opts...)
	if err != nil {
		return err
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "frontier over n=%d: budgets 1..%d from one DP run\n", src.Domain(), fr.Bmax())
	if rquant > 0 {
		fmt.Fprintf(stdout, "quantized restricted DP (q=%d): every cost within %.6g of its restricted optimum\n", rquant, probsyn.ApproxBound(fr))
	}
	fmt.Fprintln(stdout, "budget,terms,cost")
	written := 0
	for b := 1; b <= fr.Bmax(); b++ {
		syn, err := fr.Synopsis(b)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%d,%d,%.6g\n", b, syn.Terms(), syn.ErrorCost())
		if outDir == "" {
			continue
		}
		family := catalog.FamilyHistogram
		if _, ok := syn.(*probsyn.WaveletSynopsis); ok {
			family = catalog.FamilyWavelet
		}
		key, err := catalog.NewKeyQ(dataset, family, m.String(), b, p.C, rquant)
		if err != nil {
			return err
		}
		if _, err := catalog.WriteFile(filepath.Join(outDir, key.Filename()), syn); err != nil {
			return err
		}
		written++
	}
	if outDir != "" {
		fmt.Fprintf(stdout, "saved %d synopses to %s\n", written, outDir)
	}
	return nil
}

// runSharded builds a k-way sharded synopsis — the offline twin of a
// psynd build request with shards — printing the merged cost and the
// certified additive suboptimality bound, and (with -out) saving the
// merged synopsis plus every piece under key-encoded catalog filenames,
// byte-identical to what a psynd sharded build persists.
func runSharded(stdout io.Writer, src probsyn.Source, m probsyn.Metric, p probsyn.Params, budget, shards int, dataset, outDir string, rquant int, opts []probsyn.BuildOption) error {
	res, err := probsyn.BuildSharded(src, m, budget, shards, opts...)
	if err != nil {
		return err
	}
	syn := res.Synopsis
	family := catalog.FamilyHistogram
	if _, ok := syn.(*probsyn.WaveletSynopsis); ok {
		family = catalog.FamilyWavelet
	}
	fmt.Fprintf(stdout, "sharded %s %v build over n=%d: %d shards, budget %d, expected error %.6g\n",
		family, m, src.Domain(), shards, budget, syn.ErrorCost())
	if res.Bound == 0 {
		fmt.Fprintln(stdout, "merge is exact: cost equals the unsharded optimum")
	} else {
		fmt.Fprintf(stdout, "suboptimality bound: within %.6g of the unsharded optimum\n", res.Bound)
	}
	fmt.Fprintln(stdout, "shard,start,end,terms,cost")
	for i, piece := range res.Pieces {
		fmt.Fprintf(stdout, "%d,%d,%d,%d,%.6g\n", i, res.Bounds[i], res.Bounds[i+1]-1, piece.Terms(), piece.ErrorCost())
	}
	if outDir == "" {
		return nil
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	key, err := catalog.NewKeyQ(dataset, family, m.String(), budget, p.C, rquant)
	if err != nil {
		return err
	}
	if _, err := catalog.WriteFile(filepath.Join(outDir, key.Filename()), syn); err != nil {
		return err
	}
	for i, piece := range res.Pieces {
		pk, err := key.Piece(i, shards)
		if err != nil {
			return err
		}
		if _, err := catalog.WriteFile(filepath.Join(outDir, pk.Filename()), piece); err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "saved the merged synopsis and %d pieces to %s\n", len(res.Pieces), outDir)
	return nil
}

func buildHistogram(stdout io.Writer, src probsyn.Source, m probsyn.Metric, p probsyn.Params, buckets int, approx float64, equi bool, opts []probsyn.BuildOption) (probsyn.Synopsis, error) {
	var (
		h   *probsyn.Histogram
		err error
		how string
	)
	switch {
	case equi:
		h, err = probsyn.EquiDepthHistogram(src, m, p, buckets)
		how = "equi-depth"
	case approx > 0:
		var s probsyn.Synopsis
		s, err = probsyn.Build(src, m, buckets, append(opts, probsyn.WithEps(approx))...)
		if err == nil {
			h = s.(*probsyn.Histogram)
		}
		how = fmt.Sprintf("(1+%g)-approximate", approx)
	default:
		var s probsyn.Synopsis
		s, err = probsyn.Build(src, m, buckets, opts...)
		if err == nil {
			h = s.(*probsyn.Histogram)
		}
		how = "optimal"
	}
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(stdout, "%s %v histogram over n=%d (m=%d pairs): %d buckets, expected error %.6g\n",
		how, m, src.Domain(), src.M(), h.B(), h.Cost)
	fmt.Fprintln(stdout, "start,end,width,representative,bucket_cost")
	for _, b := range h.Buckets {
		fmt.Fprintf(stdout, "%d,%d,%d,%.6g,%.6g\n", b.Start, b.End, b.Width(), b.Rep, b.Cost)
	}
	return h, nil
}

func buildWavelet(stdout io.Writer, src probsyn.Source, m probsyn.Metric, coeffs, quantize int, unrestricted bool, opts []probsyn.BuildOption) (probsyn.Synopsis, error) {
	if quantize >= 0 && unrestricted {
		// Unrestricted DP: coefficient values optimized over quantized
		// candidate grids (already selected via WithUnrestricted in opts).
		s, err := probsyn.Build(src, m, coeffs, append(opts, probsyn.WithWavelet())...)
		if err != nil {
			return nil, err
		}
		syn := s.(*probsyn.WaveletSynopsis)
		fmt.Fprintf(stdout, "unrestricted (q=%d) %v wavelet synopsis over n=%d (padded %d): %d coefficients, expected error %.6g\n",
			quantize, m, src.Domain(), syn.N, syn.B(), syn.Cost)
		printCoeffs(stdout, syn)
		return syn, nil
	}
	if quantize >= 0 {
		// Quantized restricted DP: build through the frontier (bit-identical
		// to probsyn.Build, per the sweep guarantee) so the §4.2 additive
		// suboptimality bound can be reported alongside the true cost.
		fr, err := probsyn.BuildSweep(src, m, coeffs, append(opts, probsyn.WithWavelet())...)
		if err != nil {
			return nil, err
		}
		b := coeffs
		if bm := fr.Bmax(); b > bm {
			b = bm
		}
		s, err := fr.Synopsis(b)
		if err != nil {
			return nil, err
		}
		syn := s.(*probsyn.WaveletSynopsis)
		fmt.Fprintf(stdout, "quantized restricted (q=%d) %v wavelet synopsis over n=%d (padded %d): %d coefficients, expected error %.6g (within %.6g of the restricted optimum)\n",
			quantize, m, src.Domain(), syn.N, syn.B(), syn.Cost, probsyn.ApproxBound(fr))
		printCoeffs(stdout, syn)
		return syn, nil
	}
	if m == probsyn.SSE || m == probsyn.SSEFixed {
		syn, rep, err := probsyn.SSEWavelet(src, coeffs)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(stdout, "SSE-optimal wavelet synopsis over n=%d (padded %d): %d coefficients\n",
			src.Domain(), syn.N, syn.B())
		fmt.Fprintf(stdout, "expected SSE %.6g (irreducible variance %.6g, dropped energy %.6g = %.2f%%)\n",
			rep.ExpectedSSE, rep.VarianceFloor, rep.DroppedMuSq(), rep.ErrorPercent())
		printCoeffs(stdout, syn)
		return syn, nil
	}
	// Non-SSE metrics run the restricted coefficient-tree DP through the
	// unified constructor, so -parallelism applies here exactly as it does
	// to histogram builds.
	s, err := probsyn.Build(src, m, coeffs, append(opts, probsyn.WithWavelet())...)
	if err != nil {
		return nil, err
	}
	syn := s.(*probsyn.WaveletSynopsis)
	fmt.Fprintf(stdout, "restricted %v wavelet synopsis over n=%d (padded %d): %d coefficients, expected error %.6g\n",
		m, src.Domain(), syn.N, syn.B(), syn.Cost)
	printCoeffs(stdout, syn)
	return syn, nil
}

func printCoeffs(stdout io.Writer, syn *probsyn.WaveletSynopsis) {
	fmt.Fprintln(stdout, "index,value")
	for k, idx := range syn.Indices {
		fmt.Fprintf(stdout, "%d,%.6g\n", idx, syn.Values[k])
	}
}

// saveSynopsis writes the synopsis through the catalog layer's shared
// file path (JSON envelope for .json, binary otherwise) — the same bytes
// psynd persists, so an offline -out file and a served catalog entry for
// the same build are interchangeable.
func saveSynopsis(stdout io.Writer, path string, syn probsyn.Synopsis) error {
	n, err := catalog.WriteFile(path, syn)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "saved %d-term synopsis to %s (%d bytes)\n", syn.Terms(), path, n)
	return nil
}

// loadSynopsis reads a saved synopsis through the catalog layer's shared
// load path and summarizes it.
func loadSynopsis(stdout io.Writer, path string) error {
	syn, err := catalog.ReadFile(path)
	if err != nil {
		return err
	}
	switch s := syn.(type) {
	case *probsyn.Histogram:
		fmt.Fprintf(stdout, "histogram synopsis: n=%d, %d buckets, expected error %.6g\n", s.N, s.Terms(), s.ErrorCost())
		fmt.Fprintln(stdout, "start,end,width,representative,bucket_cost")
		for _, b := range s.Buckets {
			fmt.Fprintf(stdout, "%d,%d,%d,%.6g,%.6g\n", b.Start, b.End, b.Width(), b.Rep, b.Cost)
		}
	case *probsyn.WaveletSynopsis:
		fmt.Fprintf(stdout, "wavelet synopsis: n=%d (padded), %d coefficients, expected error %.6g\n", s.N, s.Terms(), s.ErrorCost())
		printCoeffs(stdout, s)
	default:
		fmt.Fprintf(stdout, "synopsis: %d terms, expected error %.6g\n", syn.Terms(), syn.ErrorCost())
	}
	return nil
}
