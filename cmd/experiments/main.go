// Command experiments regenerates every figure of the paper's evaluation
// (§5) as CSV on stdout, using the generated stand-ins for the MystiQ and
// MayBMS/TPC-H datasets (see DESIGN.md). Default sizes are scaled down so a
// full run finishes in minutes; pass -full for the paper's sizes.
//
// Usage:
//
//	experiments [flags] fig2a|fig2b|fig2c|fig2d|fig2e|fig2f|
//	                    fig3a|fig3b|fig4a|fig4b|wavelet-dp|frontier|
//	                    approx-frontier|incremental|ablate-straddle|
//	                    ablate-approx|all
//
// The frontier mode emits Figure-4-style cost-vs-budget curves built the
// cheap way — one DP run per family serves every budget (see
// probsyn.BuildSweep) — as CSV on stdout and, with -frontier-json, as a
// JSON file. The approx-frontier mode sweeps the quantized restricted
// wavelet DP's grid size q at a fixed budget — seconds, true cost, and
// the §4.2 additive bound per point, next to the exact restricted
// baseline the costs converge to — the table to consult before picking q
// for a domain the exact DP cannot reach.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"probsyn/internal/catalog"
	"probsyn/internal/engine"
	"probsyn/internal/eval"
	"probsyn/internal/gen"
	"probsyn/internal/hist"
	"probsyn/internal/metric"
	"probsyn/internal/pdata"
)

var (
	flagN        = flag.Int("n", 2048, "domain size for figure 2 (paper: 10000)")
	flagSeed     = flag.Int64("seed", 42, "random seed")
	flagSamples  = flag.Int("samples", 3, "sampled-world repetitions")
	flagPoints   = flag.Int("points", 10, "budgets per series")
	flagFull     = flag.Bool("full", false, "use the paper's full problem sizes (slow)")
	flagParallel = flag.Int("parallelism", 1, "DP worker goroutines for the histogram and wavelet DPs (<= 0: one per CPU); results are identical at any setting")
	flagCatalog  = flag.String("catalog", "", "save the probabilistic synopses built by fig2*/wavelet-dp/frontier into this catalog directory (servable by psynd)")
	flagFrontier = flag.String("frontier-json", "", "frontier mode: also write the series as JSON to this file")
	flagQuantize = flag.Int("quantize", 0, "frontier mode: unrestricted wavelet quantization q (< 0: skip the unrestricted series); approx-frontier mode: sweep only this grid size")
)

// workers resolves -parallelism to an explicit positive worker count, so
// every subcommand (and eval.HistogramExperiment, whose zero value means
// serial) sees the same setting.
func workers() int {
	if *flagParallel <= 0 {
		return runtime.NumCPU()
	}
	return *flagParallel
}

// pool returns the one process-wide engine pool every DP in this run
// schedules on — the same discipline psynd uses, instead of a fresh
// per-call pool under each build.
var pool = sync.OnceValue(func() *engine.Pool {
	return engine.New(engine.Options{Workers: workers()})
})

// cat returns the run's shared catalog when -catalog is set; experiment
// runners stash their built synopses in it and saveCatalog persists them
// through the same envelope files psynd loads.
var cat = sync.OnceValue(func() *catalog.Catalog {
	if *flagCatalog == "" {
		return nil
	}
	return catalog.New()
})

// saveCatalog persists everything the runners stashed, once, after the
// figures are done.
func saveCatalog() {
	c := cat()
	if c == nil || c.Len() == 0 {
		return
	}
	n, err := c.SaveAll(*flagCatalog)
	check(err)
	fmt.Printf("# catalog: saved %d synopses to %s\n", n, *flagCatalog)
}

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: experiments [flags] <figure>; figures: fig2a..fig2f fig3a fig3b fig4a fig4b wavelet-dp frontier approx-frontier incremental ablate-straddle ablate-approx all")
		os.Exit(2)
	}
	cmd := flag.Arg(0)
	runners := map[string]func(){
		"fig2a":           func() { fig2(metric.SSRE, 0.5, "fig2a: sum squared relative error, c=0.5") },
		"fig2b":           func() { fig2(metric.SSRE, 1.0, "fig2b: sum squared relative error, c=1.0") },
		"fig2c":           func() { fig2(metric.SSE, 0, "fig2c: sum squared error") },
		"fig2d":           func() { fig2(metric.SARE, 0.5, "fig2d: sum of relative errors, c=0.5") },
		"fig2e":           func() { fig2(metric.SARE, 1.0, "fig2e: sum of relative errors, c=1.0") },
		"fig2f":           func() { fig2(metric.SAE, 0, "fig2f: sum of absolute errors") },
		"fig3a":           fig3a,
		"fig3b":           fig3b,
		"fig4a":           fig4a,
		"fig4b":           fig4b,
		"wavelet-dp":      waveletDP,
		"frontier":        frontier,
		"approx-frontier": approxFrontier,
		"incremental":     incremental,
		"ablate-straddle": ablateStraddle,
		"ablate-approx":   ablateApprox,
	}
	if cmd == "all" {
		for _, name := range []string{"fig2a", "fig2b", "fig2c", "fig2d", "fig2e", "fig2f",
			"fig3a", "fig3b", "fig4a", "fig4b", "wavelet-dp", "frontier", "approx-frontier", "incremental", "ablate-straddle", "ablate-approx"} {
			runners[name]()
			fmt.Println()
		}
		saveCatalog()
		return
	}
	run, ok := runners[cmd]
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown figure %q\n", cmd)
		os.Exit(2)
	}
	run()
	saveCatalog()
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// budgets returns ~points budgets spread over [1, bmax] like the paper's
// x-axes (which start at 1 bucket and end at n/10).
func budgets(bmax, points int) []int {
	if points < 2 {
		points = 2
	}
	out := []int{1}
	for k := 1; k < points; k++ {
		b := 1 + k*(bmax-1)/(points-1)
		if b > out[len(out)-1] {
			out = append(out, b)
		}
	}
	return out
}

// fig2 reproduces one panel of Figure 2: histogram error% vs buckets on the
// MystiQ-shaped linkage data, Probabilistic vs Expectation vs Sampled World.
func fig2(k metric.Kind, c float64, title string) {
	n := *flagN
	if *flagFull {
		n = 10000
	}
	rng := rand.New(rand.NewSource(*flagSeed))
	src := gen.MystiQLinkage(rng, gen.DefaultMystiQ(n))
	exp := &eval.HistogramExperiment{
		Source:  src,
		Metric:  k,
		Params:  metric.Params{C: c},
		Budgets: budgets(n/10, *flagPoints),
		Samples: *flagSamples,
		Rng:     rng,
		Pool:    pool(),
		Catalog: cat(),
		Dataset: fmt.Sprintf("mystiq-n%d-c%g", n, c),
	}
	start := time.Now()
	series, err := exp.Run()
	check(err)
	fmt.Printf("# %s; n=%d, m=%d, basic model (MystiQ-shaped), %v\n", title, n, src.M(), time.Since(start).Round(time.Millisecond))
	printHistCSV(series)
}

func printHistCSV(series []eval.HistSeries) {
	header := []string{"buckets"}
	for _, s := range series {
		name := s.Method.String()
		if s.Method == eval.SampledWorld {
			name = fmt.Sprintf("%s %d", name, s.Sample+1)
		}
		header = append(header, name)
	}
	fmt.Println(strings.Join(header, ","))
	for i := range series[0].Points {
		row := []string{fmt.Sprintf("%d", series[0].Points[i].B)}
		for _, s := range series {
			row = append(row, fmt.Sprintf("%.3f", s.Points[i].ErrorPct))
		}
		fmt.Println(strings.Join(row, ","))
	}
}

// fig3a: DP wall time vs n at fixed B (paper: B=200, n up to 30000).
func fig3a() {
	ns := []int{1000, 2000, 4000, 8000}
	B := 200
	if *flagFull {
		ns = append(ns, 16000, 30000)
	}
	fmt.Printf("# fig3a: histogram DP time vs n, B=%d, SSRE c=0.5, MystiQ-shaped\n", B)
	fmt.Println("n,seconds,scanned,pruned,pruned_pct,cost_evals")
	for _, n := range ns {
		rng := rand.New(rand.NewSource(*flagSeed))
		src := gen.MystiQLinkage(rng, gen.DefaultMystiQ(n))
		o, err := hist.NewOracle(src, metric.SSRE, metric.Params{C: 0.5})
		check(err)
		start := time.Now()
		tab, err := hist.RunDPPool(o, B, pool())
		check(err)
		secs := time.Since(start).Seconds()
		_, err = tab.Histogram(B)
		check(err)
		st := tab.Stats()
		fmt.Printf("%d,%.3f,%d,%d,%.1f,%d\n", n, secs,
			st.CandidatesScanned, st.CandidatesPruned, prunedPct(st), st.CostEvals)
	}
}

// prunedPct is the share of split candidates the DP pruned, in percent.
func prunedPct(st hist.DPStats) float64 {
	total := st.CandidatesScanned + st.CandidatesPruned
	if total == 0 {
		return 0
	}
	return 100 * float64(st.CandidatesPruned) / float64(total)
}

// fig3b: DP wall time vs B at fixed n (paper: n=10^4, B up to 1000).
func fig3b() {
	n := *flagN
	if *flagFull {
		n = 10000
	}
	rng := rand.New(rand.NewSource(*flagSeed))
	src := gen.MystiQLinkage(rng, gen.DefaultMystiQ(n))
	o, err := hist.NewOracle(src, metric.SSRE, metric.Params{C: 0.5})
	check(err)
	fmt.Printf("# fig3b: histogram DP time vs buckets, n=%d, SSRE c=0.5, MystiQ-shaped\n", n)
	fmt.Println("buckets,seconds,scanned,pruned,pruned_pct,cost_evals")
	for _, B := range budgets(n/10, *flagPoints) {
		start := time.Now()
		tab, err := hist.RunDPPool(o, B, pool())
		check(err)
		secs := time.Since(start).Seconds()
		_, err = tab.Histogram(B)
		check(err)
		st := tab.Stats()
		fmt.Printf("%d,%.3f,%d,%d,%.1f,%d\n", B, secs,
			st.CandidatesScanned, st.CandidatesPruned, prunedPct(st), st.CostEvals)
	}
}

// fig4a: wavelet SSE error% vs coefficients on the movie-shaped data
// (paper: n=2^15, up to 5000 coefficients).
func fig4a() {
	n := 4096
	bmax := 640
	if *flagFull {
		n, bmax = 32768, 5000
	}
	rng := rand.New(rand.NewSource(*flagSeed))
	src := gen.MystiQLinkage(rng, gen.DefaultMystiQ(n))
	fig4(src, n, bmax, "fig4a: SSE wavelets, movie-shaped data")
}

// fig4b: wavelet SSE error% vs coefficients on the TPC-H-shaped tuple pdf
// data (paper: n=2^15, up to 1000 coefficients).
func fig4b() {
	n := 4096
	bmax := 128
	if *flagFull {
		n, bmax = 32768, 1000
	}
	rng := rand.New(rand.NewSource(*flagSeed))
	src := gen.TPCHLineitem(rng, gen.DefaultTPCH(n, 4*n))
	fig4(src, n, bmax, "fig4b: SSE wavelets, synthetic TPC-H-shaped data")
}

func fig4(src pdata.Source, n, bmax int, title string) {
	rng := rand.New(rand.NewSource(*flagSeed + 1))
	exp := &eval.WaveletExperiment{
		Source:  src,
		Budgets: budgets(bmax, *flagPoints),
		Samples: *flagSamples,
		Rng:     rng,
	}
	start := time.Now()
	series, err := exp.Run()
	check(err)
	fmt.Printf("# %s; n=%d, m=%d, %v\n", title, n, src.M(), time.Since(start).Round(time.Millisecond))
	header := []string{"coefficients"}
	for _, s := range series {
		name := s.Method.String()
		if s.Method == eval.SampledWorld {
			name = fmt.Sprintf("%s %d", name, s.Sample+1)
		}
		header = append(header, name)
	}
	fmt.Println(strings.Join(header, ","))
	for i := range series[0].Points {
		row := []string{fmt.Sprintf("%d", series[0].Points[i].B)}
		for _, s := range series {
			row = append(row, fmt.Sprintf("%.3f", s.Points[i].ErrorPct))
		}
		fmt.Println(strings.Join(row, ","))
	}
}

// waveletDP: restricted wavelet DP wall time and cost vs coefficient
// budget — the wavelet sibling of fig3a/fig3b, exercising the bottom-up
// coefficient-tree DP on the shared engine (it honors -parallelism
// exactly like the histogram DPs; the synopsis is bit-identical at any
// worker count).
func waveletDP() {
	n := 512
	if *flagFull {
		n = 2048
	}
	rng := rand.New(rand.NewSource(*flagSeed))
	src := gen.MystiQLinkage(rng, gen.DefaultMystiQ(n))
	exp := &eval.WaveletDPExperiment{
		Source:  src,
		Metric:  metric.SAE,
		Params:  metric.Params{C: 0.5},
		Budgets: budgets(n/16, *flagPoints),
		Pool:    pool(),
		Catalog: cat(),
		Dataset: fmt.Sprintf("mystiq-n%d", n),
	}
	points, err := exp.Run()
	check(err)
	fmt.Printf("# wavelet-dp: restricted SAE wavelet DP time and cost vs coefficients; n=%d, m=%d, workers=%d\n", n, src.M(), workers())
	fmt.Println("coefficients,terms,seconds,cost")
	for _, pt := range points {
		fmt.Printf("%d,%d,%.3f,%.6g\n", pt.B, pt.Terms, pt.Seconds, pt.Cost)
	}
}

// frontier: whole cost-vs-budget curves (the shape of Figures 2 and 4)
// from one DP run per family — the histogram DP table serves every
// budget level, the wavelet sweep extracts every budget from one
// coefficient-tree DP. Every plotted point used to cost one build; the
// whole frontier now costs one.
func frontier() {
	n := 512
	if *flagFull {
		n = 2048
	}
	rng := rand.New(rand.NewSource(*flagSeed))
	src := gen.MystiQLinkage(rng, gen.DefaultMystiQ(n))
	exp := &eval.FrontierExperiment{
		Source:   src,
		Metric:   metric.SAE,
		Params:   metric.Params{C: 0.5},
		Bmax:     n / 16,
		Quantize: *flagQuantize,
		Pool:     pool(),
		Catalog:  cat(),
		Dataset:  fmt.Sprintf("mystiq-n%d", n),
	}
	series, err := exp.Run()
	check(err)
	fmt.Printf("# frontier: SAE cost vs budget, every budget 1..%d from one DP run per family; n=%d, m=%d, workers=%d\n",
		exp.Bmax, n, src.M(), workers())
	fmt.Println("family,budget,terms,cost,sweep_seconds")
	for _, s := range series {
		if st := s.DPStats; st != nil {
			fmt.Printf("# %s dp: %d scanned, %d pruned (%.1f%%), %d cost evals\n",
				s.Family, st.CandidatesScanned, st.CandidatesPruned, prunedPct(*st), st.CostEvals)
		}
		for _, pt := range s.Points {
			fmt.Printf("%s,%d,%d,%.6g,%.3f\n", s.Family, pt.B, pt.Terms, pt.Cost, s.SweepSeconds)
		}
	}
	if *flagFrontier != "" {
		blob, err := json.MarshalIndent(series, "", "  ")
		check(err)
		check(os.WriteFile(*flagFrontier, append(blob, '\n'), 0o644))
		fmt.Printf("# frontier: wrote JSON series to %s\n", *flagFrontier)
	}
}

// approxFrontier sweeps the quantized restricted wavelet DP's accuracy
// knob at a fixed budget: one build per grid size q, each reporting wall
// time, the true (exactly-evaluated) cost of the synopsis it extracted,
// and the §4.2 additive suboptimality bound. On domains small enough for
// the exact restricted DP, that baseline runs first — the cost every
// quantized point converges to as q grows. -quantize narrows the sweep
// to a single grid size.
func approxFrontier() {
	n := 1024
	if *flagFull {
		n = 65536 // far past where the exact DP's state space fits
	}
	rng := rand.New(rand.NewSource(*flagSeed))
	src := gen.MystiQLinkage(rng, gen.DefaultMystiQ(n))
	qs := []int{4, 8, 16, 32, 64, 128}
	if *flagQuantize > 0 {
		qs = []int{*flagQuantize}
	}
	exp := &eval.ApproxFrontierExperiment{
		Source: src,
		Metric: metric.SAE,
		Params: metric.Params{C: 0.5},
		B:      32,
		Qs:     qs,
		Exact:  n <= 4096,
		Pool:   pool(),
	}
	res, err := exp.Run()
	check(err)
	fmt.Printf("# approx-frontier: quantized restricted wavelet DP quality vs speed at B=%d; SAE c=0.5, n=%d, m=%d, workers=%d\n",
		exp.B, n, src.M(), workers())
	if exp.Exact {
		fmt.Printf("# exact restricted baseline: cost %.6g in %.3fs\n", res.ExactCost, res.ExactSeconds)
	} else {
		fmt.Println("# exact restricted baseline skipped: state space exceeds the tree-DP cap at this n")
	}
	fmt.Println("q,seconds,cost,bound")
	for _, pt := range res.Points {
		fmt.Printf("%d,%.3f,%.6g,%.6g\n", pt.Q, pt.Seconds, pt.Cost, pt.Bound)
	}
}

// incremental measures what live maintenance buys: the average cost of
// one Append/Update absorbed by retained DP state versus a from-scratch
// budget sweep over the same final data, for both synopsis families. The
// domain starts shy of the next power of two so the wavelet appends stay
// inside the padding (appends that outgrow it rebuild, by design);
// histogram updates land near the tail, restricted-wavelet updates are
// mean-preserving corrections — the workloads the incremental paths are
// built for (see DESIGN.md "Incremental maintenance" for the cost model
// away from them).
func incremental() {
	n := 960 // pads to 1024 with room for the appends
	if *flagFull {
		n = 4032
	}
	rng := rand.New(rand.NewSource(*flagSeed))
	src := gen.SensorGrid(rng, gen.DefaultSensor(n))
	exp := &eval.IncrementalExperiment{
		Source:    src,
		Metric:    metric.SAE,
		Params:    metric.Params{C: 0.5},
		B:         32,
		Batch:     4,
		Mutations: 8,
		Pool:      pool(),
	}
	start := time.Now()
	points, err := exp.Run()
	check(err)
	fmt.Printf("# incremental: live maintenance vs from-scratch sweeps; n=%d, B=32, batch=4, workers=%d, %v\n",
		n, workers(), time.Since(start).Round(time.Millisecond))
	fmt.Println("family,op,mutations,incremental_seconds,rebuild_seconds,speedup")
	for _, pt := range points {
		fmt.Printf("%s,%s,%d,%.6f,%.6f,%.1f\n",
			pt.Family, pt.Op, pt.Mutations, pt.IncrementalSeconds, pt.RebuildSeconds, pt.Speedup)
	}
}

// ablateStraddle quantifies DESIGN.md finding 3: on straddle-heavy tuple
// pdf data, the paper's closed-form SSE cost misprices buckets; we compare
// the bucketing it induces (priced exactly) against the exact-oracle
// optimum, plus the timing difference.
func ablateStraddle() {
	n := 512
	if *flagFull {
		n = 2048
	}
	rng := rand.New(rand.NewSource(*flagSeed))
	cfg := gen.DefaultTPCH(n, 4*n)
	cfg.Spread = 8 // tight alternative windows maximize boundary straddling
	src := gen.TPCHLineitem(rng, cfg)
	exact := hist.NewSSETuple(src)
	closed := hist.NewSSETupleClosedForm(src)
	fmt.Printf("# ablate-straddle: exact vs closed-form tuple-pdf SSE oracle; n=%d, m=%d, spread=%d\n", n, src.M(), cfg.Spread)
	fmt.Println("buckets,exact_cost,closedform_cost_repriced,regret_pct,exact_seconds,closedform_seconds")
	for _, B := range []int{4, 16, 64} {
		t0 := time.Now()
		hOpt, err := hist.OptimalPool(exact, B, pool())
		check(err)
		dtExact := time.Since(t0)
		t0 = time.Now()
		hClosed, err := hist.OptimalPool(closed, B, pool())
		check(err)
		dtClosed := time.Since(t0)
		repriced, err := hist.FromBoundaries(exact, hClosed.Boundaries())
		check(err)
		regret := 100 * (repriced.Cost - hOpt.Cost) / hOpt.Cost
		fmt.Printf("%d,%.4f,%.4f,%.3f,%.3f,%.3f\n",
			B, hOpt.Cost, repriced.Cost, regret, dtExact.Seconds(), dtClosed.Seconds())
	}
}

// ablateApprox quantifies Theorem 5's trade-off: (1+eps)-approximate DP
// versus the exact DP, cost ratio and speedup. The approximation's level
// compression keeps ~(2B/eps)·ln(errorRange) candidate split points per
// cell instead of n, so it wins when B << n — the "larger relations"
// regime §3.5 targets; for B ~ n/10 the exact DP is already as fast.
func ablateApprox() {
	n := 4 * *flagN
	if *flagFull {
		n = 32768
	}
	rng := rand.New(rand.NewSource(*flagSeed))
	src := gen.MystiQLinkage(rng, gen.DefaultMystiQ(n))
	o, err := hist.NewOracle(src, metric.SSE, metric.Params{})
	check(err)
	B := 16
	fmt.Printf("# ablate-approx: exact vs (1+eps)-approximate DP; n=%d, B=%d, SSE\n", n, B)
	t0 := time.Now()
	opt, err := hist.OptimalPool(o, B, pool())
	check(err)
	exactSec := time.Since(t0).Seconds()
	fmt.Println("eps,cost_ratio,approx_seconds,exact_seconds")
	for _, eps := range []float64{0.05, 0.1, 0.25, 0.5, 1.0} {
		t0 = time.Now()
		apx, err := hist.ApproximatePool(o, B, eps, pool())
		check(err)
		fmt.Printf("%.2f,%.5f,%.3f,%.3f\n", eps, apx.Cost/opt.Cost, time.Since(t0).Seconds(), exactSec)
	}
}
