package main

import "testing"

func TestBudgetsSpread(t *testing.T) {
	bs := budgets(100, 5)
	if bs[0] != 1 {
		t.Fatalf("first budget %d, want 1", bs[0])
	}
	if bs[len(bs)-1] != 100 {
		t.Fatalf("last budget %d, want 100", bs[len(bs)-1])
	}
	for i := 1; i < len(bs); i++ {
		if bs[i] <= bs[i-1] {
			t.Fatalf("budgets not strictly increasing: %v", bs)
		}
	}
}

func TestBudgetsDegenerate(t *testing.T) {
	bs := budgets(1, 5)
	if len(bs) != 1 || bs[0] != 1 {
		t.Fatalf("budgets(1,5) = %v, want [1]", bs)
	}
	bs = budgets(10, 1) // fewer than 2 points requested
	if bs[len(bs)-1] != 10 {
		t.Fatalf("budgets(10,1) = %v, want to end at 10", bs)
	}
}

func TestBudgetsNoDuplicatesWhenDense(t *testing.T) {
	bs := budgets(4, 10) // more points than distinct budgets
	seen := map[int]bool{}
	for _, b := range bs {
		if seen[b] {
			t.Fatalf("duplicate budget in %v", bs)
		}
		seen[b] = true
	}
}
