// Command loadbench drives a running psynd over a real socket and
// reports read-path throughput and latency: queries per second with p50
// and p99 latency for three scenarios — single /v1/estimate round trips,
// single /v1/rangesum round trips, and 100-op mixed /v1/query batches.
//
// The output is a JSON array shaped like scripts/bench_json.sh entries
// (name, iters, ns_per_op) with the load-test fields alongside (p50_ns,
// p99_ns, qps), so scripts/bench_gate.sh can carry loadbench results in
// the same snapshot as the go-test benchmarks. ns_per_op is the p50
// latency: the representative per-request cost, robust to tail noise on
// shared CI runners.
//
// Example (against a psynd with dataset "ds" built at budget 8):
//
//	loadbench -addr http://127.0.0.1:7075 -dataset ds -budget 8 -domain 256
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"probsyn/internal/query"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadbench:", err)
		os.Exit(1)
	}
}

// result is one scenario's measurement, serialized in the bench_json.sh
// entry shape plus the load-test fields.
type result struct {
	Name    string  `json:"name"`
	Iters   int     `json:"iters"`
	NsPerOp float64 `json:"ns_per_op"` // p50 latency
	P50Ns   float64 `json:"p50_ns"`
	P99Ns   float64 `json:"p99_ns"`
	QPS     float64 `json:"qps"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("loadbench", flag.ContinueOnError)
	var (
		flagAddr     = fs.String("addr", "http://127.0.0.1:7075", "psynd base URL")
		flagDataset  = fs.String("dataset", "ds", "dataset name the synopses were built for")
		flagMetric   = fs.String("metric", "SSE", "metric of the built synopses")
		flagBudget   = fs.Int("budget", 8, "budget of the built synopses (both families must be cataloged)")
		flagDomain   = fs.Int("domain", 256, "dataset domain size, bounding query items and ranges")
		flagDuration = fs.Duration("duration", 3*time.Second, "measurement window per scenario")
		flagConns    = fs.Int("conns", 4, "concurrent client connections")
		flagShards   = fs.Int("shards", 0, "if >= 2, add the scatter/gather scenario: cross-shard /v1/rangesum queries against a sharded build of this shard count (the ranges straddle shard boundaries, so every request fans out to piece owners)")
		flagOut      = fs.String("out", "", "write the JSON results here (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *flagDomain < 2 || *flagConns < 1 {
		return fmt.Errorf("need -domain >= 2 and -conns >= 1")
	}

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: *flagConns}}
	n := *flagDomain
	estimateURL := func(seq int) string {
		return fmt.Sprintf("%s/v1/estimate?dataset=%s&family=histogram&metric=%s&budget=%d&i=%d",
			*flagAddr, *flagDataset, *flagMetric, *flagBudget, seq%n)
	}
	rangeURL := func(seq int) string {
		lo := seq % (n / 2)
		return fmt.Sprintf("%s/v1/rangesum?dataset=%s&family=histogram&metric=%s&budget=%d&lo=%d&hi=%d",
			*flagAddr, *flagDataset, *flagMetric, *flagBudget, lo, lo+n/2)
	}
	batchBody, err := buildBatch(*flagDataset, *flagMetric, *flagBudget, n)
	if err != nil {
		return err
	}

	var results []result
	scenarios := []struct {
		name string
		do   func(seq int) error
	}{
		{"LoadbenchEstimate", func(seq int) error { return get(client, estimateURL(seq)) }},
		{"LoadbenchRangeSum", func(seq int) error { return get(client, rangeURL(seq)) }},
		{"LoadbenchQueryBatch100", func(seq int) error { return post(client, *flagAddr+"/v1/query", batchBody) }},
	}
	if *flagShards >= 2 {
		// Cross-shard gathers: every range starts in the first half and
		// ends in the second, so it spans at least one shard boundary and
		// the coordinator must fan out (locally or to peers) and sum.
		k := *flagShards
		gatherURL := func(seq int) string {
			lo := seq % (n / 2)
			return fmt.Sprintf("%s/v1/rangesum?dataset=%s&family=histogram&metric=%s&budget=%d&shards=%d&lo=%d&hi=%d",
				*flagAddr, *flagDataset, *flagMetric, *flagBudget, k, lo, lo+n/2)
		}
		scenarios = append(scenarios, struct {
			name string
			do   func(seq int) error
		}{"LoadbenchGatherRangeSum", func(seq int) error { return get(client, gatherURL(seq)) }})
	}
	for _, sc := range scenarios {
		r, err := measure(sc.name, *flagDuration, *flagConns, sc.do)
		if err != nil {
			return fmt.Errorf("%s: %w", sc.name, err)
		}
		results = append(results, r)
		fmt.Fprintf(os.Stderr, "%s: %d requests, %.0f qps, p50 %.0f ns, p99 %.0f ns\n",
			r.Name, r.Iters, r.QPS, r.P50Ns, r.P99Ns)
	}

	// One entry per line in bench_json.sh's exact style ("key": value,
	// space after the colon): bench_gate.sh extracts name/ns fields
	// line-wise, and scripts/json_concat.sh merges arrays line-wise.
	var buf bytes.Buffer
	buf.WriteString("[\n")
	for i, r := range results {
		fmt.Fprintf(&buf, "  {\"name\": %q, \"iters\": %d, \"ns_per_op\": %.0f, \"p50_ns\": %.0f, \"p99_ns\": %.0f, \"qps\": %.1f}",
			r.Name, r.Iters, r.NsPerOp, r.P50Ns, r.P99Ns, r.QPS)
		if i < len(results)-1 {
			buf.WriteString(",")
		}
		buf.WriteString("\n")
	}
	buf.WriteString("]\n")
	if *flagOut != "" {
		return os.WriteFile(*flagOut, buf.Bytes(), 0o644)
	}
	_, err = stdout.Write(buf.Bytes())
	return err
}

// buildBatch assembles the 100-op mixed batch: half estimates, half
// range sums, alternating histogram and wavelet keys.
func buildBatch(dataset, metric string, budget, n int) ([]byte, error) {
	var req query.BatchRequest
	for i := 0; i < 100; i++ {
		family := "histogram"
		if i%2 == 1 {
			family = "wavelet"
		}
		k := query.BatchKey{Dataset: dataset, Family: family, Metric: metric, Budget: budget}
		if i%4 < 2 {
			req.Ops = append(req.Ops, query.Op{BatchKey: k, Op: query.OpEstimate, I: i % n})
		} else {
			lo := i % (n / 2)
			req.Ops = append(req.Ops, query.Op{BatchKey: k, Op: query.OpRangeSum, Lo: lo, Hi: lo + n/2})
		}
	}
	return json.Marshal(&req)
}

// measure runs do concurrently for the window and reduces the recorded
// latencies to p50/p99/QPS.
func measure(name string, window time.Duration, conns int, do func(seq int) error) (result, error) {
	deadline := time.Now().Add(window)
	latencies := make([][]int64, conns)
	errs := make([]error, conns)
	var seq atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				s := int(seq.Add(1))
				t0 := time.Now()
				if err := do(s); err != nil {
					errs[w] = err
					return
				}
				latencies[w] = append(latencies[w], time.Since(t0).Nanoseconds())
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var all []int64
	for w := range latencies {
		if errs[w] != nil {
			return result{}, errs[w]
		}
		all = append(all, latencies[w]...)
	}
	if len(all) == 0 {
		return result{}, fmt.Errorf("no requests completed in %v", window)
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(all)-1))
		return float64(all[i])
	}
	return result{
		Name:    name,
		Iters:   len(all),
		NsPerOp: pct(0.50),
		P50Ns:   pct(0.50),
		P99Ns:   pct(0.99),
		QPS:     float64(len(all)) / elapsed.Seconds(),
	}, nil
}

func get(client *http.Client, url string) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	return drain(resp)
}

func post(client *http.Client, url string, body []byte) error {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	return drain(resp)
}

// drain consumes and closes the body (keeping the connection reusable)
// and fails on any non-200 — a load test over failing requests measures
// nothing.
func drain(resp *http.Response) error {
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", resp.Request.URL, resp.StatusCode)
	}
	return nil
}
