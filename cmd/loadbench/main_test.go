package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"sync/atomic"
	"testing"

	"probsyn/internal/query"
)

// TestRunAgainstStubServer drives the whole harness against a stub that
// answers everything 200, checking the scenarios run, the batch body is
// a valid 100-op request, and the output is one well-formed entry per
// line with p50 <= p99.
func TestRunAgainstStubServer(t *testing.T) {
	var batches atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/query" {
			var req query.BatchRequest
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(r.Body); err != nil {
				t.Error(err)
			}
			if err := query.DecodeBatch(buf.Bytes(), &req); err != nil {
				t.Errorf("batch body does not decode: %v", err)
			} else if len(req.Ops) != 100 {
				t.Errorf("batch has %d ops, want 100", len(req.Ops))
			}
			batches.Add(1)
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	out := filepath.Join(t.TempDir(), "lb.json")
	err := run([]string{
		"-addr", srv.URL, "-duration", "50ms", "-conns", "2", "-domain", "16", "-out", out,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if batches.Load() == 0 {
		t.Fatal("no /v1/query batches reached the server")
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	entryRE := regexp.MustCompile(`\{"name": "(Loadbench\w+)", "iters": (\d+), "ns_per_op": (\d+), "p50_ns": (\d+), "p99_ns": (\d+), "qps": [0-9.]+\}`)
	matches := entryRE.FindAllStringSubmatch(string(data), -1)
	if len(matches) != 3 {
		t.Fatalf("want 3 result entries, got %d in:\n%s", len(matches), data)
	}
	want := []string{"LoadbenchEstimate", "LoadbenchRangeSum", "LoadbenchQueryBatch100"}
	for i, m := range matches {
		if m[1] != want[i] {
			t.Errorf("entry %d: name %q, want %q", i, m[1], want[i])
		}
		p50, _ := strconv.Atoi(m[4])
		p99, _ := strconv.Atoi(m[5])
		if p50 <= 0 || p99 < p50 {
			t.Errorf("%s: implausible percentiles p50=%d p99=%d", m[1], p50, p99)
		}
	}
}

// TestRunShardsAddsGatherScenario pins that -shards >= 2 appends the
// scatter/gather scenario, its requests carry &shards=, and every range
// straddles a shard boundary (lo in the first half, hi in the second).
func TestRunShardsAddsGatherScenario(t *testing.T) {
	var gathers atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/rangesum" && r.URL.Query().Get("shards") != "" {
			gathers.Add(1)
			if got := r.URL.Query().Get("shards"); got != "2" {
				t.Errorf("gather request shards=%s, want 2", got)
			}
			lo, _ := strconv.Atoi(r.URL.Query().Get("lo"))
			hi, _ := strconv.Atoi(r.URL.Query().Get("hi"))
			if lo >= 8 || hi < 8 {
				t.Errorf("gather range [%d,%d] does not cross the n/2 boundary", lo, hi)
			}
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	out := filepath.Join(t.TempDir(), "lb.json")
	err := run([]string{
		"-addr", srv.URL, "-duration", "50ms", "-conns", "2", "-domain", "16",
		"-shards", "2", "-out", out,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gathers.Load() == 0 {
		t.Fatal("no gathered /v1/rangesum requests reached the server")
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"name": "LoadbenchGatherRangeSum"`)) {
		t.Fatalf("output lacks the gather scenario entry:\n%s", data)
	}
}

// TestRunRejectsFailingServer pins that a non-200 fails the measurement
// instead of timing error responses.
func TestRunRejectsFailingServer(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusNotFound)
	}))
	defer srv.Close()
	err := run([]string{"-addr", srv.URL, "-duration", "50ms", "-conns", "1"}, nil)
	if err == nil {
		t.Fatal("run succeeded against a 404-everything server")
	}
}
