// Command datagen writes generated probabilistic datasets in the probsyn
// text format: the MystiQ-linkage-shaped basic model, the TPC-H-shaped
// tuple pdf model, and a sensor-grid value pdf model (see DESIGN.md for how
// these stand in for the paper's datasets).
//
// Examples:
//
//	datagen -kind mystiq -n 10000 -out movie.pd
//	datagen -kind tpch -n 4096 -m 16384 -spread 8 -out lineitem.pd
//	datagen -kind sensor -n 1024 -out sensors.pd
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"probsyn"
	"probsyn/internal/gen"
)

var (
	flagKind   = flag.String("kind", "mystiq", "dataset kind: mystiq, tpch, sensor")
	flagN      = flag.Int("n", 4096, "domain size")
	flagM      = flag.Int("m", 0, "tuples (tpch only; default 4n)")
	flagSpread = flag.Int("spread", 0, "tpch alternative-window spread (0 = unbounded)")
	flagSeed   = flag.Int64("seed", 1, "random seed")
	flagOut    = flag.String("out", "", "output file (default stdout)")
)

func main() {
	flag.Parse()
	rng := rand.New(rand.NewSource(*flagSeed))

	var src probsyn.Source
	switch *flagKind {
	case "mystiq":
		src = gen.MystiQLinkage(rng, gen.DefaultMystiQ(*flagN))
	case "tpch":
		m := *flagM
		if m <= 0 {
			m = 4 * *flagN
		}
		cfg := gen.DefaultTPCH(*flagN, m)
		cfg.Spread = *flagSpread
		src = gen.TPCHLineitem(rng, cfg)
	case "sensor":
		src = gen.SensorGrid(rng, gen.DefaultSensor(*flagN))
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown kind %q\n", *flagKind)
		os.Exit(2)
	}

	out := os.Stdout
	if *flagOut != "" {
		f, err := os.Create(*flagOut)
		fatal(err)
		defer f.Close()
		out = f
	}
	fatal(probsyn.WriteDataset(out, src))
	fmt.Fprintf(os.Stderr, "datagen: wrote %s dataset, n=%d, m=%d pairs\n", *flagKind, src.Domain(), src.M())
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}
