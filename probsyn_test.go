package probsyn_test

import (
	"bytes"
	"math"
	"testing"

	"probsyn"
)

func sampleValuePDF() *probsyn.ValuePDF {
	return &probsyn.ValuePDF{N: 4, Items: []probsyn.ItemPDF{
		{Entries: []probsyn.FreqProb{{Freq: 2, Prob: 0.5}, {Freq: 3, Prob: 0.5}}},
		{Entries: []probsyn.FreqProb{{Freq: 2, Prob: 0.9}}},
		{Entries: []probsyn.FreqProb{{Freq: 8, Prob: 0.7}}},
		{Entries: []probsyn.FreqProb{{Freq: 9, Prob: 0.6}}},
	}}
}

func TestOptimalHistogramFacade(t *testing.T) {
	for _, m := range []probsyn.Metric{probsyn.SSE, probsyn.SSEFixed, probsyn.SSRE,
		probsyn.SAE, probsyn.SARE, probsyn.MAE, probsyn.MARE} {
		h, err := probsyn.OptimalHistogram(sampleValuePDF(), m, probsyn.DefaultParams(), 2)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if h.B() != 2 {
			t.Fatalf("%v: %d buckets", m, h.B())
		}
	}
}

func TestParseMetricFacade(t *testing.T) {
	m, err := probsyn.ParseMetric("SARE")
	if err != nil || m != probsyn.SARE {
		t.Fatalf("ParseMetric: %v %v", m, err)
	}
	if _, err := probsyn.ParseMetric("bogus"); err == nil {
		t.Fatal("bogus metric accepted")
	}
}

func TestApproxHistogramFacade(t *testing.T) {
	opt, err := probsyn.OptimalHistogram(sampleValuePDF(), probsyn.SSE, probsyn.Params{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	apx, err := probsyn.ApproxHistogram(sampleValuePDF(), probsyn.SSE, probsyn.Params{}, 2, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if apx.Cost > 1.25*opt.Cost+1e-9 || apx.Cost < opt.Cost-1e-9 {
		t.Fatalf("approx %v vs optimal %v", apx.Cost, opt.Cost)
	}
}

func TestEquiDepthFacade(t *testing.T) {
	h, err := probsyn.EquiDepthHistogram(sampleValuePDF(), probsyn.SAE, probsyn.DefaultParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSSEWaveletFacade(t *testing.T) {
	syn, rep, err := probsyn.SSEWavelet(sampleValuePDF(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if syn.B() != 2 {
		t.Fatalf("retained %d coefficients", syn.B())
	}
	direct := probsyn.ExpectedSSE(sampleValuePDF(), syn)
	if math.Abs(direct-rep.ExpectedSSE) > 1e-9*(1+direct) {
		t.Fatalf("report %v vs direct %v", rep.ExpectedSSE, direct)
	}
}

func TestRestrictedWaveletFacade(t *testing.T) {
	syn, cost, err := probsyn.RestrictedWavelet(sampleValuePDF(), probsyn.SAE, probsyn.DefaultParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if syn.B() > 2 || cost < 0 {
		t.Fatalf("synopsis B=%d cost=%v", syn.B(), cost)
	}
}

func TestDatasetRoundTripFacade(t *testing.T) {
	src := &probsyn.Basic{N: 3, Tuples: []probsyn.BasicTuple{{Item: 1, Prob: 0.5}}}
	var buf bytes.Buffer
	if err := probsyn.WriteDataset(&buf, src); err != nil {
		t.Fatal(err)
	}
	back, err := probsyn.ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Domain() != 3 || back.M() != 1 {
		t.Fatalf("roundtrip: %+v", back)
	}
}

func TestUnrestrictedWaveletFacade(t *testing.T) {
	vp := sampleValuePDF()
	_, restricted, err := probsyn.RestrictedWavelet(vp, probsyn.SAE, probsyn.DefaultParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	syn, unrestricted, err := probsyn.UnrestrictedWavelet(vp, probsyn.SAE, probsyn.DefaultParams(), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if syn.B() > 2 {
		t.Fatalf("budget exceeded: %d", syn.B())
	}
	if unrestricted > restricted+1e-9 {
		t.Fatalf("unrestricted %v worse than restricted %v", unrestricted, restricted)
	}
}

func TestWorkloadHistogramFacade(t *testing.T) {
	vp := sampleValuePDF()
	h, err := probsyn.WorkloadHistogram(vp, []float64{4, 1, 1, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := probsyn.WorkloadHistogram(vp, []float64{1}, 2); err == nil {
		t.Fatal("weight length mismatch accepted")
	}
}

func TestDeterministicFacadeAndEstimate(t *testing.T) {
	h, err := probsyn.OptimalHistogram(probsyn.Deterministic([]float64{7, 7, 1, 1}),
		probsyn.SSE, probsyn.Params{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.Cost > 1e-12 {
		t.Fatalf("cost %v, want 0", h.Cost)
	}
	if h.Estimate(0) != 7 || h.Estimate(3) != 1 {
		t.Fatalf("estimates wrong: %v %v", h.Estimate(0), h.Estimate(3))
	}
}
