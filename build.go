package probsyn

import (
	"context"
	"fmt"

	"probsyn/internal/engine"
	"probsyn/internal/hist"
	"probsyn/internal/wavelet"
)

// BuildOption configures Build. The zero configuration builds the exact
// error-optimal histogram single-threaded with DefaultParams.
type BuildOption func(*buildConfig)

type buildConfig struct {
	params      Params
	parallelism int
	pool        *engine.Pool
	eps         float64
	epsSet      bool
	weights     []float64
	wavelet     bool
	quantize    int
	quantizeSet bool
	rquant      int
	rquantSet   bool
	shards      int
	shardsSet   bool
	dpStats     *hist.DPStats
}

// WithParams sets the metric parameters (the sanity constant c of the
// relative-error metrics). The default is DefaultParams().
func WithParams(p Params) BuildOption {
	return func(c *buildConfig) { c.params = p }
}

// WithParallelism spreads the synopsis DP across the given number of
// worker goroutines — the histogram DP's cost sweeps and split-point
// reductions, and the wavelet coefficient-tree DP's level sweeps; values
// <= 0 mean one worker per CPU. The parallel schedule is deterministic:
// results are bit-identical to a single-threaded build. (The SSE-optimal
// wavelet build is a greedy selection with no DP; it ignores the
// setting.)
func WithParallelism(workers int) BuildOption {
	return func(c *buildConfig) {
		if workers <= 0 {
			workers = 0 // resolved to NumCPU by the DP engine
		}
		c.parallelism = workers
	}
}

// WithPool schedules the build on a shared engine pool instead of a
// per-call one, overriding WithParallelism. A long-lived process creates
// one pool (engine.New with its worker count and, for serving workloads,
// a MaxBuilds admission cap) and passes it to every Build: concurrent
// builds then share the pool's workers, and when the pool caps admission
// each Build blocks for a build token before its DP dispatches, so N
// simultaneous build requests cannot oversubscribe cores. Determinism is
// unchanged — the synopsis is bit-identical whatever pool runs it.
func WithPool(pool *engine.Pool) BuildOption {
	return func(c *buildConfig) { c.pool = pool }
}

// WithEps switches histogram construction to the (1+eps)-approximate DP of
// Theorem 5 (cumulative metrics only), trading accuracy for a much smaller
// split-point search. eps must be > 0; a non-positive value is rejected at
// Build time rather than silently falling back to the exact DP.
func WithEps(eps float64) BuildOption {
	return func(c *buildConfig) { c.eps, c.epsSet = eps, true }
}

// WithWorkloadWeights builds the histogram under query-workload-weighted
// expected squared error: weights[i] is the access frequency of point
// queries on item i. Requires the SSEFixed (or SSE) metric — the weighted
// objective charges a stored representative, and uniform weights reduce to
// SSEFixed.
func WithWorkloadWeights(weights []float64) BuildOption {
	return func(c *buildConfig) { c.weights = weights }
}

// WithWavelet builds a B-term wavelet synopsis instead of a histogram:
// the SSE-optimal synopsis of Theorem 7 for SSE/SSEFixed, the restricted
// coefficient-tree DP of Theorem 8 otherwise.
func WithWavelet() BuildOption {
	return func(c *buildConfig) { c.wavelet = true }
}

// WithUnrestricted switches a wavelet build to the unrestricted
// thresholding DP (§4.2's "bound and quantize" sketch): retained
// coefficient values are optimized over a grid of 2q points spanning each
// coefficient's pessimistic range, plus the expected value, instead of
// being pinned to the expected value. Never worse than the restricted
// optimum; exponentially more expensive in q and log n, so intended for
// small domains. Requires WithWavelet and a non-SSE metric (for SSE the
// expected values are already unrestricted-optimal, Theorem 7).
func WithUnrestricted(q int) BuildOption {
	return func(c *buildConfig) { c.quantize, c.quantizeSet = q, true }
}

// WithQuantize switches a wavelet build to the approximate restricted DP
// (§4.2's bound-and-quantize argument): per-node incoming-value rows are
// bucketed onto grids of q >= 2 points, capping the DP's state space at
// O(n·q·B) instead of O(n²B²) so domains far beyond the exact DP's reach
// build in seconds. The synopsis's reported cost is its exactly-evaluated
// expected error — never below the exact optimum, within an additive
// bound of it (surfaced on frontiers via ApproxBound), and converging to
// it as q grows; q at least half the padded domain size is the exact DP.
// Results stay bit-identical at any worker count. Requires WithWavelet
// and a metric the restricted DP prices (not plain SSE, whose greedy
// build is already exact); mutually exclusive with WithUnrestricted.
func WithQuantize(q int) BuildOption {
	return func(c *buildConfig) { c.rquant, c.rquantSet = q, true }
}

// WithDPStats points the build at a work-counter sink: on success of a
// histogram DP build (Build, BuildSweep, BuildSharded), *st is
// overwritten with the DP's cumulative DPStats — split candidates
// scanned vs. monotonicity-pruned and bucket-cost evaluations — so the
// pruned DP's output-sensitivity is observable (psyn -v prints it). A
// live build (BuildLive) refreshes *st after every mutation. Families
// with no histogram DP — wavelets, the (1+eps)-approximate DP, the
// equi-depth heuristic — leave the sink untouched.
func WithDPStats(st *DPStats) BuildOption {
	return func(c *buildConfig) { c.dpStats = st }
}

// WithShards splits the build across k contiguous domain shards built
// concurrently and merged under the global budget (see BuildSharded,
// which also returns the per-shard pieces and the suboptimality bound
// that Build discards). k = 1 is the ordinary unsharded build; wavelet
// shard counts must be powers of two, and the DP families need B >= k.
func WithShards(k int) BuildOption {
	return func(c *buildConfig) { c.shards, c.shardsSet = k, true }
}

// Build is the unified synopsis constructor: it builds a B-term synopsis
// of the requested family minimizing the metric's expected error over the
// source's possible worlds, and returns it behind the shared Synopsis
// interface (Estimate/RangeSum/Terms/ErrorCost; serializable with
// MarshalSynopsis). OptimalHistogram, ApproxHistogram, WorkloadHistogram
// and the wavelet builders are thin wrappers over the same paths.
func Build(src Source, m Metric, B int, opts ...BuildOption) (Synopsis, error) {
	cfg := buildConfig{params: DefaultParams(), parallelism: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.shardsSet && cfg.shards != 1 {
		res, err := buildSharded(src, m, B, cfg.shards, &cfg)
		if err != nil {
			return nil, err
		}
		return res.Synopsis, nil
	}
	return buildOne(src, m, B, &cfg)
}

func buildOne(src Source, m Metric, B int, cfg *buildConfig) (Synopsis, error) {
	pool := cfg.pool
	if pool == nil {
		pool = engine.New(engine.Options{Workers: cfg.parallelism})
	}
	// Admission: hold a build token for the whole construction, so builds
	// sharing a capped pool are bounded at its MaxBuilds (a no-op on
	// uncapped pools, including every per-call one made above).
	release, err := pool.Acquire(context.Background())
	if err != nil {
		return nil, err
	}
	defer release()
	// Return an untyped nil on error: wrapping a nil concrete pointer in
	// the interface would defeat callers' `!= nil` checks.
	if cfg.wavelet {
		syn, err := buildWavelet(src, m, B, cfg, pool)
		if err != nil {
			return nil, err
		}
		return syn, nil
	}
	h, err := buildHistogram(src, m, B, cfg, pool)
	if err != nil {
		return nil, err
	}
	return h, nil
}

func buildHistogram(src Source, m Metric, B int, cfg *buildConfig, pool *engine.Pool) (*Histogram, error) {
	if cfg.quantizeSet {
		return nil, fmt.Errorf("probsyn: unrestricted coefficient values are a wavelet option")
	}
	if cfg.rquantSet {
		return nil, fmt.Errorf("probsyn: incoming-value quantization is a wavelet option")
	}
	o, err := histOracle(src, m, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.epsSet {
		return hist.ApproximatePool(o, B, cfg.eps, pool)
	}
	tab, err := hist.RunDPPool(o, B, pool)
	if err != nil {
		return nil, err
	}
	if cfg.dpStats != nil {
		*cfg.dpStats = tab.Stats()
	}
	return tab.Histogram(B)
}

// histOracle constructs the bucket-cost oracle a histogram build (or
// sweep) prices against: workload-weighted SSE when weights are set, the
// metric's standard oracle otherwise.
func histOracle(src Source, m Metric, cfg *buildConfig) (hist.Oracle, error) {
	if cfg.weights != nil {
		if m != SSE && m != SSEFixed {
			return nil, fmt.Errorf("probsyn: workload weights require the SSE or SSE-fixed metric, got %v", m)
		}
		return hist.NewWorkloadSSE(src, cfg.weights)
	}
	return hist.NewOracle(src, m, cfg.params)
}

func buildWavelet(src Source, m Metric, B int, cfg *buildConfig, pool *engine.Pool) (*WaveletSynopsis, error) {
	switch {
	case cfg.weights != nil:
		return nil, fmt.Errorf("probsyn: workload weights are a histogram option")
	case cfg.epsSet:
		return nil, fmt.Errorf("probsyn: the (1+eps)-approximate DP is a histogram option")
	case cfg.quantizeSet && cfg.rquantSet:
		return nil, fmt.Errorf("probsyn: WithQuantize (approximate restricted) and WithUnrestricted are mutually exclusive")
	case cfg.quantizeSet:
		syn, _, err := wavelet.BuildUnrestrictedPool(src, m, cfg.params, B, cfg.quantize, pool)
		return syn, err
	case cfg.rquantSet:
		if m == SSE {
			return nil, fmt.Errorf("probsyn: the SSE wavelet build is greedy-exact (Theorem 7); incoming-value quantization applies to the restricted DP metrics")
		}
		syn, _, err := wavelet.BuildRestrictedApproxPool(src, m, cfg.params, B, cfg.rquant, pool)
		return syn, err
	}
	if m == SSE || m == SSEFixed {
		syn, _, err := wavelet.BuildSSE(src, B)
		return syn, err
	}
	syn, _, err := wavelet.BuildRestrictedPool(src, m, cfg.params, B, pool)
	return syn, err
}

// assert the concrete families satisfy the shared interface.
var (
	_ Synopsis = (*hist.Histogram)(nil)
	_ Synopsis = (*wavelet.Synopsis)(nil)
)
