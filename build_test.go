package probsyn_test

import (
	"bytes"
	"runtime"
	"sync"
	"testing"

	"probsyn"
	"probsyn/internal/engine"
)

// WithPool must produce bit-identical synopses to per-call builds, for
// both families, on one shared pool reused across builds.
func TestBuildWithPoolBitIdentical(t *testing.T) {
	src := sampleValuePDF()
	pool := engine.New(engine.Options{Workers: runtime.NumCPU(), Grain: 1})
	for name, opts := range map[string][]probsyn.BuildOption{
		"histogram": nil,
		"wavelet":   {probsyn.WithWavelet()},
	} {
		want, err := probsyn.Build(src, probsyn.SAE, 2, opts...)
		if err != nil {
			t.Fatal(err)
		}
		got, err := probsyn.Build(src, probsyn.SAE, 2, append([]probsyn.BuildOption{probsyn.WithPool(pool)}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		if got.ErrorCost() != want.ErrorCost() || got.Terms() != want.Terms() {
			t.Fatalf("%s: pooled build (%d terms, cost %v) != per-call (%d terms, cost %v)",
				name, got.Terms(), got.ErrorCost(), want.Terms(), want.ErrorCost())
		}
		for i := 0; i < 4; i++ {
			if a, b := got.Estimate(i), want.Estimate(i); a != b {
				t.Fatalf("%s: Estimate(%d) %v != %v", name, i, a, b)
			}
		}
	}
}

// Concurrent Builds sharing a capped pool must be admission-controlled:
// the pool's high-water mark of in-flight builds never exceeds MaxBuilds,
// and every build still completes with the right result.
func TestBuildSharedPoolAdmissionControl(t *testing.T) {
	src := sampleValuePDF()
	const maxBuilds = 2
	pool := engine.New(engine.Options{Workers: 2, Grain: 1, MaxBuilds: maxBuilds})
	want, err := probsyn.Build(src, probsyn.SSRE, 2)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 12)
	costs := make([]float64, 12)
	for k := range errs {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			s, err := probsyn.Build(src, probsyn.SSRE, 2, probsyn.WithPool(pool))
			if err != nil {
				errs[k] = err
				return
			}
			costs[k] = s.ErrorCost()
		}(k)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			t.Fatalf("build %d: %v", k, err)
		}
		if costs[k] != want.ErrorCost() {
			t.Fatalf("build %d: cost %v, want %v", k, costs[k], want.ErrorCost())
		}
	}
	if peak := pool.PeakInFlight(); peak < 1 || peak > maxBuilds {
		t.Fatalf("peak in-flight builds %d, want in [1, %d]", peak, maxBuilds)
	}
	if got := pool.InFlight(); got != 0 {
		t.Fatalf("in-flight builds %d after completion, want 0", got)
	}
}

// Build must produce the same histogram as the named wrappers, at any
// parallelism, behind the shared interface.
func TestBuildMatchesWrappers(t *testing.T) {
	src := sampleValuePDF()
	want, err := probsyn.OptimalHistogram(src, probsyn.SSRE, probsyn.DefaultParams(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, runtime.NumCPU(), 0} {
		s, err := probsyn.Build(src, probsyn.SSRE, 2, probsyn.WithParallelism(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		h, ok := s.(*probsyn.Histogram)
		if !ok {
			t.Fatalf("workers=%d: Build returned %T, want *Histogram", workers, s)
		}
		if h.Cost != want.Cost || h.B() != want.B() {
			t.Fatalf("workers=%d: (B=%d, cost=%v) != wrapper (B=%d, cost=%v)",
				workers, h.B(), h.Cost, want.B(), want.Cost)
		}
	}
}

func TestBuildWaveletOption(t *testing.T) {
	src := sampleValuePDF()
	s, err := probsyn.Build(src, probsyn.SSE, 3, probsyn.WithWavelet())
	if err != nil {
		t.Fatal(err)
	}
	syn, ok := s.(*probsyn.WaveletSynopsis)
	if !ok {
		t.Fatalf("Build returned %T, want *WaveletSynopsis", s)
	}
	want, rep, err := probsyn.SSEWavelet(src, 3)
	if err != nil {
		t.Fatal(err)
	}
	if syn.Terms() != want.Terms() || syn.ErrorCost() != rep.ExpectedSSE {
		t.Fatalf("wavelet Build: %d terms cost %v, want %d terms cost %v",
			syn.Terms(), syn.ErrorCost(), want.Terms(), rep.ExpectedSSE)
	}
	// Restricted path for a non-SSE metric.
	s, err = probsyn.Build(src, probsyn.SAE, 2, probsyn.WithWavelet())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*probsyn.WaveletSynopsis); !ok {
		t.Fatalf("Build(SAE, WithWavelet) returned %T", s)
	}
}

func TestBuildOptionValidation(t *testing.T) {
	src := sampleValuePDF()
	// Non-positive eps must error, not silently fall back to the exact DP.
	for _, eps := range []float64{0, -0.5} {
		if _, err := probsyn.Build(src, probsyn.SSE, 2, probsyn.WithEps(eps)); err == nil {
			t.Errorf("eps=%v accepted", eps)
		}
		if _, err := probsyn.ApproxHistogram(src, probsyn.SSE, probsyn.DefaultParams(), 2, eps); err == nil {
			t.Errorf("ApproxHistogram eps=%v accepted", eps)
		}
	}
	// Errors must return an untyped nil interface, not a typed-nil pointer
	// (the approximate DP rejects maximum-error metrics).
	if s, err := probsyn.Build(src, probsyn.MAE, 2, probsyn.WithEps(0.5)); err == nil {
		t.Error("approximate DP accepted for a maximum-error metric")
	} else if s != nil {
		t.Errorf("Build error path returned non-nil Synopsis %#v", s)
	}
	if _, err := probsyn.Build(src, probsyn.SAE, 2, probsyn.WithWorkloadWeights([]float64{1, 1, 1, 1})); err == nil {
		t.Error("workload weights accepted under SAE")
	}
	if _, err := probsyn.Build(src, probsyn.SSE, 2, probsyn.WithWavelet(), probsyn.WithEps(0.5)); err == nil {
		t.Error("eps accepted for wavelet family")
	}
	if _, err := probsyn.Build(src, probsyn.SSE, 2, probsyn.WithWavelet(),
		probsyn.WithWorkloadWeights([]float64{1, 1, 1, 1})); err == nil {
		t.Error("workload weights accepted for wavelet family")
	}
}

func TestBuildWorkloadWeights(t *testing.T) {
	src := sampleValuePDF()
	weights := []float64{1, 1, 10, 10}
	want, err := probsyn.WorkloadHistogram(src, weights, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := probsyn.Build(src, probsyn.SSEFixed, 2, probsyn.WithWorkloadWeights(weights))
	if err != nil {
		t.Fatal(err)
	}
	if h := s.(*probsyn.Histogram); h.Cost != want.Cost {
		t.Fatalf("Build workload cost %v != wrapper %v", h.Cost, want.Cost)
	}
}

// The public serialization facade: both families survive binary and JSON
// round-trips, and the streaming helpers agree with the byte-level ones.
func TestSynopsisFacadeRoundTrip(t *testing.T) {
	src := sampleValuePDF()
	h, err := probsyn.Build(src, probsyn.SSE, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := probsyn.Build(src, probsyn.SSE, 2, probsyn.WithWavelet())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []probsyn.Synopsis{h, w} {
		for name, marshal := range map[string]func(probsyn.Synopsis) ([]byte, error){
			"binary": probsyn.MarshalSynopsis,
			"json":   probsyn.MarshalSynopsisJSON,
		} {
			blob, err := marshal(s)
			if err != nil {
				t.Fatalf("%T/%s: %v", s, name, err)
			}
			back, err := probsyn.UnmarshalSynopsis(blob)
			if err != nil {
				t.Fatalf("%T/%s: %v", s, name, err)
			}
			for i := 0; i < 4; i++ {
				if a, b := s.Estimate(i), back.Estimate(i); a != b {
					t.Fatalf("%T/%s: Estimate(%d) %v != %v", s, name, i, b, a)
				}
			}
			if a, b := s.ErrorCost(), back.ErrorCost(); a != b {
				t.Fatalf("%T/%s: ErrorCost %v != %v", s, name, b, a)
			}
		}
		var buf bytes.Buffer
		if err := probsyn.WriteSynopsis(&buf, s); err != nil {
			t.Fatal(err)
		}
		back, err := probsyn.ReadSynopsis(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.Terms() != s.Terms() {
			t.Fatalf("%T: stream round-trip terms %d != %d", s, back.Terms(), s.Terms())
		}
	}
}
