// Package pdata implements the probabilistic data models of Cormode &
// Garofalakis (§2.1): the basic model, the tuple pdf model, and the value
// pdf model. It provides validation, conversions between the models
// (including the induced value pdf), per-item frequency moments, and a
// possible-worlds engine (exact enumeration for small inputs and Monte
// Carlo sampling for large ones) that serves as ground truth for every
// synopsis algorithm in the library.
//
// Throughout, the ordered domain is [0, n) and g_i denotes the (random)
// frequency of domain item i. In the basic and tuple pdf models g_i is a
// non-negative integer count; in the value pdf model it may be fractional.
package pdata

import (
	"errors"
	"fmt"
	"math/rand"
)

// probTol is the slack allowed when validating that probabilities lie in
// [0,1] and per-tuple probability masses sum to at most 1; inputs produced
// by floating-point pipelines routinely overshoot by a few ulps.
const probTol = 1e-9

// Source is a probabilistic relation over the ordered domain [0, Domain()).
// All three models implement it. EnumerateWorlds must only be called on
// small inputs (the number of worlds is exponential); Sample and
// ExpectedFreqs scale to arbitrary inputs.
type Source interface {
	// Domain returns n, the size of the ordered item domain.
	Domain() int
	// M returns the input size m: the total number of (item or frequency,
	// probability) pairs in the representation.
	M() int
	// EnumerateWorlds calls yield once per possible world with the world's
	// item-frequency vector and its probability. The frequency slice is
	// reused between calls; yield must copy it if it retains it.
	// Enumeration stops early if yield returns false.
	EnumerateWorlds(yield func(freqs []float64, prob float64) bool)
	// SampleInto draws one possible world, writing its frequency vector
	// into freqs (which must have length Domain()).
	SampleInto(rng *rand.Rand, freqs []float64)
	// ExpectedFreqs returns E[g_i] for every item i.
	ExpectedFreqs() []float64
}

// ---------------------------------------------------------------------------
// Basic model (Definition 1): tuples ⟨item, probability⟩, independent.

// BasicTuple is one uncertain tuple of the basic model: item t appears in a
// possible world with probability Prob, independently of all other tuples.
type BasicTuple struct {
	Item int
	Prob float64
}

// Basic is a probabilistic relation in the basic model.
type Basic struct {
	N      int // domain size; items are in [0, N)
	Tuples []BasicTuple
}

// Validate checks domain bounds and probability ranges.
func (b *Basic) Validate() error {
	if b.N <= 0 {
		return fmt.Errorf("pdata: basic model: domain size %d, want > 0", b.N)
	}
	for k, t := range b.Tuples {
		if t.Item < 0 || t.Item >= b.N {
			return fmt.Errorf("pdata: basic tuple %d: item %d outside domain [0,%d)", k, t.Item, b.N)
		}
		if t.Prob < -probTol || t.Prob > 1+probTol {
			return fmt.Errorf("pdata: basic tuple %d: probability %v outside [0,1]", k, t.Prob)
		}
	}
	return nil
}

// Domain returns the domain size n.
func (b *Basic) Domain() int { return b.N }

// M returns the number of (item, probability) pairs.
func (b *Basic) M() int { return len(b.Tuples) }

// ExpectedFreqs returns E[g_i] = sum of probabilities of tuples for item i.
func (b *Basic) ExpectedFreqs() []float64 {
	e := make([]float64, b.N)
	for _, t := range b.Tuples {
		e[t.Item] += t.Prob
	}
	return e
}

// EnumerateWorlds enumerates the 2^m possible worlds of the basic model.
func (b *Basic) EnumerateWorlds(yield func(freqs []float64, prob float64) bool) {
	freqs := make([]float64, b.N)
	var rec func(k int, prob float64) bool
	rec = func(k int, prob float64) bool {
		if prob == 0 {
			return true // dead branch contributes nothing
		}
		if k == len(b.Tuples) {
			return yield(freqs, prob)
		}
		t := b.Tuples[k]
		// tuple absent
		if !rec(k+1, prob*(1-t.Prob)) {
			return false
		}
		// tuple present
		freqs[t.Item]++
		ok := rec(k+1, prob*t.Prob)
		freqs[t.Item]--
		return ok
	}
	rec(0, 1)
}

// SampleInto draws a world by flipping one independent coin per tuple.
func (b *Basic) SampleInto(rng *rand.Rand, freqs []float64) {
	for i := range freqs {
		freqs[i] = 0
	}
	for _, t := range b.Tuples {
		if rng.Float64() < t.Prob {
			freqs[t.Item]++
		}
	}
}

// TuplePDF converts the basic model into the tuple pdf model (of which it is
// the single-alternative special case).
func (b *Basic) TuplePDF() *TuplePDF {
	tp := &TuplePDF{N: b.N, Tuples: make([]Tuple, len(b.Tuples))}
	for k, t := range b.Tuples {
		tp.Tuples[k] = Tuple{Alts: []Alternative{{Item: t.Item, Prob: t.Prob}}}
	}
	return tp
}

// ---------------------------------------------------------------------------
// Tuple pdf model (Definition 2): each tuple is a discrete pdf over
// mutually exclusive alternative items; probabilities sum to at most 1,
// with any remainder the probability that the tuple is absent.

// Alternative is one (item, probability) alternative of an uncertain tuple.
type Alternative struct {
	Item int
	Prob float64
}

// Tuple is one uncertain tuple: a pdf over mutually exclusive alternatives.
type Tuple struct {
	Alts []Alternative
}

// TotalProb returns the summed probability mass of the tuple's alternatives.
func (t *Tuple) TotalProb() float64 {
	s := 0.0
	for _, a := range t.Alts {
		s += a.Prob
	}
	return s
}

// ProbAt returns Pr[t = item], summing alternatives that name item.
func (t *Tuple) ProbAt(item int) float64 {
	s := 0.0
	for _, a := range t.Alts {
		if a.Item == item {
			s += a.Prob
		}
	}
	return s
}

// ProbUpTo returns Pr[t <= item] (the tuple instantiates to an item <= item).
func (t *Tuple) ProbUpTo(item int) float64 {
	s := 0.0
	for _, a := range t.Alts {
		if a.Item <= item {
			s += a.Prob
		}
	}
	return s
}

// Span returns the minimum and maximum item named by the tuple's
// alternatives; ok is false for a tuple with no alternatives.
func (t *Tuple) Span() (lo, hi int, ok bool) {
	if len(t.Alts) == 0 {
		return 0, 0, false
	}
	lo, hi = t.Alts[0].Item, t.Alts[0].Item
	for _, a := range t.Alts[1:] {
		if a.Item < lo {
			lo = a.Item
		}
		if a.Item > hi {
			hi = a.Item
		}
	}
	return lo, hi, true
}

// TuplePDF is a probabilistic relation in the tuple pdf model.
type TuplePDF struct {
	N      int
	Tuples []Tuple
}

// Validate checks domain bounds, probability ranges and per-tuple mass.
func (tp *TuplePDF) Validate() error {
	if tp.N <= 0 {
		return fmt.Errorf("pdata: tuple pdf: domain size %d, want > 0", tp.N)
	}
	for k := range tp.Tuples {
		t := &tp.Tuples[k]
		total := 0.0
		for _, a := range t.Alts {
			if a.Item < 0 || a.Item >= tp.N {
				return fmt.Errorf("pdata: tuple %d: item %d outside domain [0,%d)", k, a.Item, tp.N)
			}
			if a.Prob < -probTol || a.Prob > 1+probTol {
				return fmt.Errorf("pdata: tuple %d: probability %v outside [0,1]", k, a.Prob)
			}
			total += a.Prob
		}
		if total > 1+probTol {
			return fmt.Errorf("pdata: tuple %d: probabilities sum to %v > 1", k, total)
		}
	}
	return nil
}

// Domain returns the domain size n.
func (tp *TuplePDF) Domain() int { return tp.N }

// M returns the total number of (item, probability) pairs across tuples.
func (tp *TuplePDF) M() int {
	m := 0
	for k := range tp.Tuples {
		m += len(tp.Tuples[k].Alts)
	}
	return m
}

// ExpectedFreqs returns E[g_i] = sum over tuples of Pr[t = i].
func (tp *TuplePDF) ExpectedFreqs() []float64 {
	e := make([]float64, tp.N)
	for k := range tp.Tuples {
		for _, a := range tp.Tuples[k].Alts {
			e[a.Item] += a.Prob
		}
	}
	return e
}

// EnumerateWorlds enumerates all alternative choices across tuples
// (including "absent" when a tuple's mass is below 1).
func (tp *TuplePDF) EnumerateWorlds(yield func(freqs []float64, prob float64) bool) {
	freqs := make([]float64, tp.N)
	var rec func(k int, prob float64) bool
	rec = func(k int, prob float64) bool {
		if prob == 0 {
			return true
		}
		if k == len(tp.Tuples) {
			return yield(freqs, prob)
		}
		t := &tp.Tuples[k]
		rem := 1 - t.TotalProb()
		if rem > 0 {
			if !rec(k+1, prob*rem) {
				return false
			}
		}
		for _, a := range t.Alts {
			freqs[a.Item]++
			ok := rec(k+1, prob*a.Prob)
			freqs[a.Item]--
			if !ok {
				return false
			}
		}
		return true
	}
	rec(0, 1)
}

// SampleInto draws one alternative (or absence) per tuple.
func (tp *TuplePDF) SampleInto(rng *rand.Rand, freqs []float64) {
	for i := range freqs {
		freqs[i] = 0
	}
	for k := range tp.Tuples {
		u := rng.Float64()
		acc := 0.0
		for _, a := range tp.Tuples[k].Alts {
			acc += a.Prob
			if u < acc {
				freqs[a.Item]++
				break
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Value pdf model (Definition 3): per item, an explicit pdf over frequency
// values; items are independent. Probability mass not listed is implicitly
// Pr[g_i = 0].

// FreqProb is one (frequency, probability) entry of an item's pdf.
type FreqProb struct {
	Freq float64
	Prob float64
}

// ItemPDF is the discrete frequency distribution of one item. Entries need
// not mention frequency 0: the remainder 1 - sum(Prob) is implicitly
// Pr[g = 0] (for compatibility with the basic model, per Definition 3).
type ItemPDF struct {
	Entries []FreqProb
}

// ZeroProb returns the implicit (plus any explicit) probability that the
// item's frequency is zero.
func (ip *ItemPDF) ZeroProb() float64 {
	rem := 1.0
	for _, e := range ip.Entries {
		if e.Freq != 0 {
			rem -= e.Prob
		}
	}
	if rem < 0 {
		return 0
	}
	return rem
}

// Mean returns E[g] for the item.
func (ip *ItemPDF) Mean() float64 {
	s := 0.0
	for _, e := range ip.Entries {
		s += e.Prob * e.Freq
	}
	return s
}

// MeanSq returns E[g^2] for the item.
func (ip *ItemPDF) MeanSq() float64 {
	s := 0.0
	for _, e := range ip.Entries {
		s += e.Prob * e.Freq * e.Freq
	}
	return s
}

// Validate checks one item pdf in isolation: probability ranges,
// non-negative frequencies, and total mass at most 1. It is the per-item
// slice of ValuePDF.Validate, for callers admitting item mutations (live
// synopsis maintenance, the serving layer's append/update ingest) that
// must reject a bad pdf before touching any retained state.
func (ip *ItemPDF) Validate() error {
	total := 0.0
	for _, e := range ip.Entries {
		if e.Prob < -probTol || e.Prob > 1+probTol {
			return fmt.Errorf("pdata: item pdf: probability %v outside [0,1]", e.Prob)
		}
		if e.Freq < 0 {
			return fmt.Errorf("pdata: item pdf: negative frequency %v", e.Freq)
		}
		total += e.Prob
	}
	if total > 1+probTol {
		return fmt.Errorf("pdata: item pdf: probabilities sum to %v > 1", total)
	}
	return nil
}

// Clone returns a deep copy of the item pdf, so a caller retaining it
// (live maintenance state) is insulated from later mutation of the
// argument's entry slice.
func (ip ItemPDF) Clone() ItemPDF {
	if ip.Entries == nil {
		return ItemPDF{}
	}
	return ItemPDF{Entries: append([]FreqProb(nil), ip.Entries...)}
}

// ValuePDF is a probabilistic relation in the value pdf model: one ItemPDF
// per domain item, items mutually independent.
type ValuePDF struct {
	N     int
	Items []ItemPDF // len N; a missing/empty ItemPDF means g_i = 0 surely
}

// Clone returns a deep copy of the value pdf. Live synopsis maintenance
// clones its input so the retained, mutable copy cannot alias (or be
// aliased by) the caller's data.
func (vp *ValuePDF) Clone() *ValuePDF {
	out := &ValuePDF{N: vp.N, Items: make([]ItemPDF, len(vp.Items))}
	for i := range vp.Items {
		out.Items[i] = vp.Items[i].Clone()
	}
	return out
}

// Validate checks shape, frequency signs, and per-item probability mass.
func (vp *ValuePDF) Validate() error {
	if vp.N <= 0 {
		return fmt.Errorf("pdata: value pdf: domain size %d, want > 0", vp.N)
	}
	if len(vp.Items) != vp.N {
		return fmt.Errorf("pdata: value pdf: %d item pdfs for domain size %d", len(vp.Items), vp.N)
	}
	for i := range vp.Items {
		total := 0.0
		for _, e := range vp.Items[i].Entries {
			if e.Prob < -probTol || e.Prob > 1+probTol {
				return fmt.Errorf("pdata: item %d: probability %v outside [0,1]", i, e.Prob)
			}
			if e.Freq < 0 {
				return fmt.Errorf("pdata: item %d: negative frequency %v", i, e.Freq)
			}
			total += e.Prob
		}
		if total > 1+probTol {
			return fmt.Errorf("pdata: item %d: probabilities sum to %v > 1", i, total)
		}
	}
	return nil
}

// Domain returns the domain size n.
func (vp *ValuePDF) Domain() int { return vp.N }

// M returns the total number of (frequency, probability) pairs.
func (vp *ValuePDF) M() int {
	m := 0
	for i := range vp.Items {
		m += len(vp.Items[i].Entries)
	}
	return m
}

// ExpectedFreqs returns E[g_i] per item.
func (vp *ValuePDF) ExpectedFreqs() []float64 {
	e := make([]float64, vp.N)
	for i := range vp.Items {
		e[i] = vp.Items[i].Mean()
	}
	return e
}

// EnumerateWorlds enumerates the cross product of per-item frequency choices.
func (vp *ValuePDF) EnumerateWorlds(yield func(freqs []float64, prob float64) bool) {
	freqs := make([]float64, vp.N)
	var rec func(i int, prob float64) bool
	rec = func(i int, prob float64) bool {
		if prob == 0 {
			return true
		}
		if i == vp.N {
			return yield(freqs, prob)
		}
		ip := &vp.Items[i]
		zero := ip.ZeroProb()
		if zero > 0 {
			freqs[i] = 0
			if !rec(i+1, prob*zero) {
				return false
			}
		}
		for _, e := range ip.Entries {
			if e.Freq == 0 {
				continue // folded into ZeroProb above
			}
			freqs[i] = e.Freq
			if !rec(i+1, prob*e.Prob) {
				return false
			}
		}
		freqs[i] = 0
		return true
	}
	rec(0, 1)
}

// SampleInto draws each item's frequency independently.
func (vp *ValuePDF) SampleInto(rng *rand.Rand, freqs []float64) {
	for i := range vp.Items {
		u := rng.Float64()
		acc := 0.0
		freqs[i] = 0
		for _, e := range vp.Items[i].Entries {
			acc += e.Prob
			if u < acc {
				freqs[i] = e.Freq
				break
			}
		}
	}
}

// Deterministic wraps an ordinary (certain) frequency vector as a value pdf
// with unit probabilities, so that deterministic data can flow through the
// probabilistic algorithms unchanged (§5: "deterministic data can be
// interpreted as probabilistic data in the value pdf model with probability
// 1 of attaining a certain frequency").
func Deterministic(freqs []float64) *ValuePDF {
	vp := &ValuePDF{N: len(freqs), Items: make([]ItemPDF, len(freqs))}
	for i, f := range freqs {
		if f != 0 {
			vp.Items[i] = ItemPDF{Entries: []FreqProb{{Freq: f, Prob: 1}}}
		} else {
			vp.Items[i] = ItemPDF{Entries: []FreqProb{{Freq: 0, Prob: 1}}}
		}
	}
	return vp
}

// ErrTooManyWorlds is returned by CountWorlds when the possible-world count
// exceeds the given limit.
var ErrTooManyWorlds = errors.New("pdata: too many possible worlds to enumerate")

// CountWorlds returns the number of raw enumeration branches of src (an
// upper bound on distinct worlds), capped at limit. It lets callers guard
// EnumerateWorlds against exponential blowup.
func CountWorlds(src Source, limit float64) (float64, error) {
	count := 1.0
	mul := func(k float64) error {
		count *= k
		if count > limit {
			return ErrTooManyWorlds
		}
		return nil
	}
	switch s := src.(type) {
	case *Basic:
		for range s.Tuples {
			if err := mul(2); err != nil {
				return count, err
			}
		}
	case *TuplePDF:
		for k := range s.Tuples {
			branches := float64(len(s.Tuples[k].Alts))
			if s.Tuples[k].TotalProb() < 1-probTol {
				branches++
			}
			if branches == 0 {
				branches = 1
			}
			if err := mul(branches); err != nil {
				return count, err
			}
		}
	case *ValuePDF:
		for i := range s.Items {
			branches := 0.0
			for _, e := range s.Items[i].Entries {
				if e.Freq != 0 {
					branches++
				}
			}
			if s.Items[i].ZeroProb() > 0 {
				branches++
			}
			if branches == 0 {
				branches = 1
			}
			if err := mul(branches); err != nil {
				return count, err
			}
		}
	default:
		return 0, fmt.Errorf("pdata: CountWorlds: unknown source type %T", src)
	}
	return count, nil
}
