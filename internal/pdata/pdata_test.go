package pdata

import (
	"math"
	"math/rand"
	"testing"
)

func TestBasicValidate(t *testing.T) {
	good := exampleBasic()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	cases := []struct {
		name string
		b    Basic
	}{
		{"zero domain", Basic{N: 0}},
		{"item out of range", Basic{N: 2, Tuples: []BasicTuple{{Item: 2, Prob: 0.5}}}},
		{"negative item", Basic{N: 2, Tuples: []BasicTuple{{Item: -1, Prob: 0.5}}}},
		{"probability > 1", Basic{N: 2, Tuples: []BasicTuple{{Item: 0, Prob: 1.5}}}},
		{"negative probability", Basic{N: 2, Tuples: []BasicTuple{{Item: 0, Prob: -0.5}}}},
	}
	for _, c := range cases {
		if err := c.b.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid model", c.name)
		}
	}
}

func TestTuplePDFValidate(t *testing.T) {
	if err := exampleTuplePDF().Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	bad := TuplePDF{N: 3, Tuples: []Tuple{
		{Alts: []Alternative{{Item: 0, Prob: 0.7}, {Item: 1, Prob: 0.7}}},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("tuple mass > 1 accepted")
	}
	badItem := TuplePDF{N: 3, Tuples: []Tuple{{Alts: []Alternative{{Item: 5, Prob: 0.1}}}}}
	if err := badItem.Validate(); err == nil {
		t.Error("out-of-domain alternative accepted")
	}
}

func TestValuePDFValidate(t *testing.T) {
	if err := exampleValuePDF().Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	wrongLen := ValuePDF{N: 3, Items: make([]ItemPDF, 2)}
	if err := wrongLen.Validate(); err == nil {
		t.Error("length mismatch accepted")
	}
	overMass := ValuePDF{N: 1, Items: []ItemPDF{
		{Entries: []FreqProb{{Freq: 1, Prob: 0.8}, {Freq: 2, Prob: 0.8}}},
	}}
	if err := overMass.Validate(); err == nil {
		t.Error("mass > 1 accepted")
	}
	negFreq := ValuePDF{N: 1, Items: []ItemPDF{
		{Entries: []FreqProb{{Freq: -1, Prob: 0.5}}},
	}}
	if err := negFreq.Validate(); err == nil {
		t.Error("negative frequency accepted")
	}
}

func TestMCounts(t *testing.T) {
	if got := exampleBasic().M(); got != 4 {
		t.Errorf("basic M = %d, want 4", got)
	}
	if got := exampleTuplePDF().M(); got != 4 {
		t.Errorf("tuple M = %d, want 4", got)
	}
	if got := exampleValuePDF().M(); got != 4 {
		t.Errorf("value M = %d, want 4", got)
	}
}

func TestBasicToTuplePDFPreservesWorlds(t *testing.T) {
	b := exampleBasic()
	checkWorlds(t, collectWorlds(t, b.TuplePDF()), collectWorlds(t, b))
}

func TestEnumerationEarlyStop(t *testing.T) {
	calls := 0
	exampleBasic().EnumerateWorlds(func(_ []float64, _ float64) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Fatalf("enumeration visited %d worlds after early stop, want 3", calls)
	}
}

func TestDeterministicWrapper(t *testing.T) {
	freqs := []float64{2, 0, 3.5}
	vp := Deterministic(freqs)
	if err := vp.Validate(); err != nil {
		t.Fatal(err)
	}
	worlds := 0
	vp.EnumerateWorlds(func(got []float64, prob float64) bool {
		worlds++
		if prob != 1 {
			t.Errorf("deterministic world probability %v, want 1", prob)
		}
		for i := range freqs {
			if got[i] != freqs[i] {
				t.Errorf("freqs[%d] = %v, want %v", i, got[i], freqs[i])
			}
		}
		return true
	})
	if worlds != 1 {
		t.Fatalf("deterministic input has %d worlds, want 1", worlds)
	}
}

// Moments must agree with exact expectation over enumerated worlds, for
// randomized instances of all three models.
func TestMomentsAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		for _, src := range []Source{
			randomBasic(rng, 4, 6), randomTuplePDF(rng, 4, 4, 3), randomValuePDF(rng, 4, 3),
		} {
			n := src.Domain()
			mean := make([]float64, n)
			meanSq := make([]float64, n)
			src.EnumerateWorlds(func(freqs []float64, prob float64) bool {
				for i := 0; i < n; i++ {
					mean[i] += prob * freqs[i]
					meanSq[i] += prob * freqs[i] * freqs[i]
				}
				return true
			})
			mom := MomentsOf(src)
			for i := 0; i < n; i++ {
				if math.Abs(mom.Mean[i]-mean[i]) > 1e-9 {
					t.Fatalf("%T trial %d: Mean[%d] = %v, enum %v", src, trial, i, mom.Mean[i], mean[i])
				}
				if math.Abs(mom.MeanSq[i]-meanSq[i]) > 1e-9 {
					t.Fatalf("%T trial %d: MeanSq[%d] = %v, enum %v", src, trial, i, mom.MeanSq[i], meanSq[i])
				}
				wantVar := meanSq[i] - mean[i]*mean[i]
				if math.Abs(mom.Var[i]-wantVar) > 1e-9 {
					t.Fatalf("%T trial %d: Var[%d] = %v, enum %v", src, trial, i, mom.Var[i], wantVar)
				}
			}
		}
	}
}

// The induced value pdf of a tuple pdf must match the marginal frequency
// distribution of each item computed by exhaustive enumeration.
func TestInducedValuePDFAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		tp := randomTuplePDF(rng, 4, 4, 3)
		iv := InducedValuePDF(tp)
		n := tp.Domain()
		marg := make([]map[float64]float64, n)
		for i := range marg {
			marg[i] = make(map[float64]float64)
		}
		tp.EnumerateWorlds(func(freqs []float64, prob float64) bool {
			for i := 0; i < n; i++ {
				marg[i][freqs[i]] += prob
			}
			return true
		})
		for i := 0; i < n; i++ {
			got := map[float64]float64{0: iv.Items[i].ZeroProb()}
			for _, e := range iv.Items[i].Entries {
				if e.Freq != 0 {
					got[e.Freq] += e.Prob
				}
			}
			for v, p := range marg[i] {
				if math.Abs(got[v]-p) > 1e-9 {
					t.Fatalf("trial %d item %d: Pr[g=%v] induced %v, enum %v", trial, i, v, got[v], p)
				}
			}
		}
	}
}

func TestPoissonBinomialPMF(t *testing.T) {
	pmf := poissonBinomialPMF([]float64{0.5, 0.5})
	want := []float64{0.25, 0.5, 0.25}
	for i := range want {
		if math.Abs(pmf[i]-want[i]) > 1e-12 {
			t.Errorf("pmf[%d] = %v, want %v", i, pmf[i], want[i])
		}
	}
	if pmf := poissonBinomialPMF(nil); len(pmf) != 1 || pmf[0] != 1 {
		t.Errorf("empty pmf = %v, want [1]", pmf)
	}
}

func TestSupportValuePDF(t *testing.T) {
	vs := Support(exampleValuePDF())
	want := []float64{0, 1, 2}
	if len(vs.Values) != len(want) {
		t.Fatalf("support = %v, want %v", vs.Values, want)
	}
	for i := range want {
		if vs.Values[i] != want[i] {
			t.Fatalf("support = %v, want %v", vs.Values, want)
		}
	}
}

func TestSupportBasicAndTuple(t *testing.T) {
	// Two tuples can both choose item 1, so multiplicity reaches 2.
	vsB := Support(exampleBasic())
	if got := vsB.Values; len(got) != 3 || got[2] != 2 {
		t.Errorf("basic support = %v, want [0 1 2]", got)
	}
	vsT := Support(exampleTuplePDF())
	if got := vsT.Values; len(got) != 3 || got[2] != 2 {
		t.Errorf("tuple support = %v, want [0 1 2]", got)
	}
}

func TestValueSetIndexAndGap(t *testing.T) {
	vs := ValueSet{Values: []float64{0, 1, 2.5, 7}}
	if vs.Index(2.5) != 2 || vs.Index(3) != -1 || vs.Index(0) != 0 {
		t.Error("Index misbehaves")
	}
	if vs.Gap(0) != 1 || vs.Gap(2) != 4.5 || vs.Gap(3) != 0 {
		t.Error("Gap misbehaves")
	}
	if vs.Len() != 4 {
		t.Error("Len misbehaves")
	}
}

func TestPMFTable(t *testing.T) {
	vp := exampleValuePDF()
	vs := Support(vp)
	tab, err := NewPMFTable(vp, vs)
	if err != nil {
		t.Fatal(err)
	}
	if tab.N() != 3 {
		t.Fatalf("N = %d", tab.N())
	}
	// item 2: Pr[g<=0] = 5/12, Pr[g<=1] = 5/12+1/3 = 3/4, Pr[g<=2] = 1.
	if got := tab.CDF(1, 0); math.Abs(got-5.0/12) > 1e-12 {
		t.Errorf("CDF(1,0) = %v, want 5/12", got)
	}
	if got := tab.CDF(1, 1); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("CDF(1,1) = %v, want 3/4", got)
	}
	if got := tab.CDF(1, 2); math.Abs(got-1) > 1e-12 {
		t.Errorf("CDF(1,2) = %v, want 1", got)
	}
	if got := tab.CDF(1, -1); got != 0 {
		t.Errorf("CDF(1,-1) = %v, want 0", got)
	}
	if got := tab.Tail(1, 0); math.Abs(got-7.0/12) > 1e-12 {
		t.Errorf("Tail(1,0) = %v, want 7/12", got)
	}
}

func TestPMFTableMissingValue(t *testing.T) {
	vp := exampleValuePDF()
	if _, err := NewPMFTable(vp, ValueSet{Values: []float64{0, 1}}); err == nil {
		t.Fatal("expected error for frequency outside ValueSet")
	}
}

func TestSampleMeansConvergeToExpectation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, src := range []Source{exampleBasic(), exampleTuplePDF(), exampleValuePDF()} {
		n := src.Domain()
		want := src.ExpectedFreqs()
		sums := make([]float64, n)
		freqs := make([]float64, n)
		const samples = 200000
		for s := 0; s < samples; s++ {
			src.SampleInto(rng, freqs)
			for i := range sums {
				sums[i] += freqs[i]
			}
		}
		for i := range sums {
			got := sums[i] / samples
			if math.Abs(got-want[i]) > 0.01 {
				t.Errorf("%T: sample mean[%d] = %v, want %v", src, i, got, want[i])
			}
		}
	}
}

func TestCountWorlds(t *testing.T) {
	if c, err := CountWorlds(exampleBasic(), 1e6); err != nil || c != 16 {
		t.Errorf("basic count = %v err %v, want 16", c, err)
	}
	// tuple pdf: both tuples have mass < 1, so branches = 3 each.
	if c, err := CountWorlds(exampleTuplePDF(), 1e6); err != nil || c != 9 {
		t.Errorf("tuple count = %v err %v, want 9", c, err)
	}
	if c, err := CountWorlds(exampleValuePDF(), 1e6); err != nil || c != 12 {
		t.Errorf("value count = %v err %v, want 12", c, err)
	}
	big := &Basic{N: 2, Tuples: make([]BasicTuple, 100)}
	for i := range big.Tuples {
		big.Tuples[i] = BasicTuple{Item: 0, Prob: 0.5}
	}
	if _, err := CountWorlds(big, 1e6); err != ErrTooManyWorlds {
		t.Errorf("expected ErrTooManyWorlds, got %v", err)
	}
}

func TestTupleHelpers(t *testing.T) {
	tp := exampleTuplePDF()
	t0 := &tp.Tuples[0]
	if got := t0.TotalProb(); math.Abs(got-5.0/6) > 1e-12 {
		t.Errorf("TotalProb = %v, want 5/6", got)
	}
	if got := t0.ProbAt(1); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("ProbAt(1) = %v, want 1/3", got)
	}
	if got := t0.ProbUpTo(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("ProbUpTo(0) = %v, want 1/2", got)
	}
	if got := t0.ProbUpTo(2); math.Abs(got-5.0/6) > 1e-12 {
		t.Errorf("ProbUpTo(2) = %v, want 5/6", got)
	}
	lo, hi, ok := t0.Span()
	if !ok || lo != 0 || hi != 1 {
		t.Errorf("Span = (%d,%d,%v), want (0,1,true)", lo, hi, ok)
	}
	empty := Tuple{}
	if _, _, ok := empty.Span(); ok {
		t.Error("empty tuple Span should report !ok")
	}
}

func TestAsValuePDF(t *testing.T) {
	vp := exampleValuePDF()
	if AsValuePDF(vp) != vp {
		t.Error("AsValuePDF of a ValuePDF must be the identity")
	}
	// Basic -> induced marginals must match enumeration marginals.
	b := exampleBasic()
	iv := AsValuePDF(b)
	margE := make([]float64, 3)
	b.EnumerateWorlds(func(freqs []float64, prob float64) bool {
		for i := range margE {
			margE[i] += prob * freqs[i]
		}
		return true
	})
	for i, want := range margE {
		if got := iv.Items[i].Mean(); math.Abs(got-want) > 1e-12 {
			t.Errorf("induced mean[%d] = %v, want %v", i, got, want)
		}
	}
}
