package pdata

// Moments holds the first two moments of every item's frequency
// distribution. These drive the SSE family of cost oracles (§3.1) and the
// wavelet coefficient statistics (§4.1).
type Moments struct {
	Mean   []float64 // E[g_i]
	MeanSq []float64 // E[g_i^2]
	Var    []float64 // Var[g_i] = E[g_i^2] - E[g_i]^2
}

// MomentsOf computes per-item moments for any source, in O(m).
//
// Value pdf: directly from each item's pdf.
// Basic / tuple pdf: g_i is a sum of independent Bernoulli indicators (one
// per tuple, with success probability Pr[t = i]), so
// Var[g_i] = Σ_t p_t(i)(1-p_t(i)) and E[g_i^2] = Var + E^2 (§3.1).
func MomentsOf(src Source) Moments {
	n := src.Domain()
	mom := Moments{
		Mean:   make([]float64, n),
		MeanSq: make([]float64, n),
		Var:    make([]float64, n),
	}
	switch s := src.(type) {
	case *ValuePDF:
		for i := range s.Items {
			mean, sq := s.Items[i].Mean(), s.Items[i].MeanSq()
			mom.Mean[i], mom.MeanSq[i], mom.Var[i] = mean, sq, sq-mean*mean
		}
	case *Basic:
		for _, t := range s.Tuples {
			mom.Mean[t.Item] += t.Prob
			mom.Var[t.Item] += t.Prob * (1 - t.Prob)
		}
		for i := 0; i < n; i++ {
			mom.MeanSq[i] = mom.Var[i] + mom.Mean[i]*mom.Mean[i]
		}
	case *TuplePDF:
		// Within a tuple, alternatives naming the same item merge into a
		// single Bernoulli with the summed probability.
		for k := range s.Tuples {
			t := &s.Tuples[k]
			if len(t.Alts) == 1 {
				a := t.Alts[0]
				mom.Mean[a.Item] += a.Prob
				mom.Var[a.Item] += a.Prob * (1 - a.Prob)
				continue
			}
			perItem := make(map[int]float64, len(t.Alts))
			for _, a := range t.Alts {
				perItem[a.Item] += a.Prob
			}
			for item, p := range perItem {
				mom.Mean[item] += p
				mom.Var[item] += p * (1 - p)
			}
		}
		for i := 0; i < n; i++ {
			mom.MeanSq[i] = mom.Var[i] + mom.Mean[i]*mom.Mean[i]
		}
	default:
		// Generic fallback via the value pdf induced marginals would be
		// expensive; all shipped sources are covered above.
		panic("pdata: MomentsOf: unknown source type")
	}
	return mom
}

// InducedValuePDF computes, for a tuple pdf input, the per-item marginal
// frequency distributions Pr[g_i = v] (§2.1). Each item's frequency is a
// Poisson-binomial: the number of successes among independent Bernoullis,
// one per tuple that can instantiate to the item. The induced pdfs are NOT
// independent across items (tuples correlate them); they are exactly the
// object needed by the per-item-decomposable error metrics (§3.2-§3.6),
// whose costs depend only on the marginals.
//
// Cost: O(Σ_i k_i^2) where k_i is the number of tuples naming item i —
// the "inductive O(|V|) update per pair" of §2.1.
func InducedValuePDF(tp *TuplePDF) *ValuePDF {
	// Gather, per item, the Bernoulli success probabilities.
	perItem := make([][]float64, tp.N)
	for k := range tp.Tuples {
		t := &tp.Tuples[k]
		if len(t.Alts) == 1 {
			a := t.Alts[0]
			if a.Prob > 0 {
				perItem[a.Item] = append(perItem[a.Item], a.Prob)
			}
			continue
		}
		merged := make(map[int]float64, len(t.Alts))
		for _, a := range t.Alts {
			if a.Prob > 0 {
				merged[a.Item] += a.Prob
			}
		}
		for item, p := range merged {
			perItem[item] = append(perItem[item], p)
		}
	}
	vp := &ValuePDF{N: tp.N, Items: make([]ItemPDF, tp.N)}
	for i, probs := range perItem {
		pmf := poissonBinomialPMF(probs)
		entries := make([]FreqProb, 0, len(pmf))
		for v, p := range pmf {
			if p > 0 {
				entries = append(entries, FreqProb{Freq: float64(v), Prob: p})
			}
		}
		vp.Items[i] = ItemPDF{Entries: entries}
	}
	return vp
}

// poissonBinomialPMF returns pmf[v] = Pr[#successes = v] for independent
// Bernoulli trials with the given success probabilities, by iterative
// convolution.
func poissonBinomialPMF(probs []float64) []float64 {
	pmf := make([]float64, 1, len(probs)+1)
	pmf[0] = 1
	for _, q := range probs {
		pmf = append(pmf, 0)
		for v := len(pmf) - 1; v >= 1; v-- {
			pmf[v] = pmf[v]*(1-q) + pmf[v-1]*q
		}
		pmf[0] *= 1 - q
	}
	return pmf
}

// AsValuePDF returns the per-item marginal value pdf of any source:
// the identity for *ValuePDF, and the induced value pdf otherwise.
// The result captures per-item marginals only; cross-item correlations of
// the tuple pdf model are deliberately dropped (see InducedValuePDF).
func AsValuePDF(src Source) *ValuePDF {
	switch s := src.(type) {
	case *ValuePDF:
		return s
	case *Basic:
		return InducedValuePDF(s.TuplePDF())
	case *TuplePDF:
		return InducedValuePDF(s)
	default:
		panic("pdata: AsValuePDF: unknown source type")
	}
}

// PMFTable is a dense per-item pmf over a global ValueSet:
// P[i][j] = Pr[g_i = V[j]], including the implicit zero mass.
// It is the common precomputation feeding the SAE/SARE/MAE/MARE oracles
// and the wavelet leaf-error tables.
type PMFTable struct {
	VS  ValueSet
	P   [][]float64 // n x |V|
	cdf [][]float64 // n x |V| running Pr[g_i <= V[j]]
}

// NewPMFTable builds the dense table for a value pdf over the given set.
// Every frequency in vp must be a member of vs.
func NewPMFTable(vp *ValuePDF, vs ValueSet) (*PMFTable, error) {
	n, k := vp.N, vs.Len()
	flatP := make([]float64, n*k)
	flatC := make([]float64, n*k)
	t := &PMFTable{VS: vs, P: make([][]float64, n), cdf: make([][]float64, n)}
	for i := 0; i < n; i++ {
		row := flatP[i*k : (i+1)*k : (i+1)*k]
		crow := flatC[i*k : (i+1)*k : (i+1)*k]
		row[0] = vp.Items[i].ZeroProb()
		for _, e := range vp.Items[i].Entries {
			if e.Freq == 0 {
				continue
			}
			j := vs.Index(e.Freq)
			if j < 0 {
				return nil, errValueNotInSupport(i, e.Freq)
			}
			row[j] += e.Prob
		}
		acc := 0.0
		for j := 0; j < k; j++ {
			acc += row[j]
			crow[j] = acc
		}
		t.P[i], t.cdf[i] = row, crow
	}
	return t, nil
}

func errValueNotInSupport(item int, freq float64) error {
	return &supportError{item: item, freq: freq}
}

type supportError struct {
	item int
	freq float64
}

func (e *supportError) Error() string {
	return "pdata: frequency value not in the provided ValueSet"
}

// CDF returns Pr[g_i <= V[j]]. CDF(i, -1) == 0.
func (t *PMFTable) CDF(i, j int) float64 {
	if j < 0 {
		return 0
	}
	return t.cdf[i][j]
}

// Tail returns Pr[g_i > V[j]].
func (t *PMFTable) Tail(i, j int) float64 { return 1 - t.CDF(i, j) }

// N returns the number of items.
func (t *PMFTable) N() int { return len(t.P) }
