package pdata

import (
	"fmt"
	"sort"
)

// ValueSet is the sorted global frequency support V (§2.1): the set of all
// frequency values any item can take on, always including 0. Oracles index
// their precomputed tables by position in V.
type ValueSet struct {
	Values []float64 // strictly increasing; Values[0] == 0 in count models
}

// Len returns |V|.
func (vs *ValueSet) Len() int { return len(vs.Values) }

// Index returns the position of value v in V, or -1 if absent.
func (vs *ValueSet) Index(v float64) int {
	i := sort.SearchFloat64s(vs.Values, v)
	if i < len(vs.Values) && vs.Values[i] == v {
		return i
	}
	return -1
}

// Gap returns Values[j+1]-Values[j], the spacing above the j-th value; the
// gap above the largest value is 0 by convention (it is always multiplied
// by a zero tail probability in the SAE/SARE cost forms, §3.3).
func (vs *ValueSet) Gap(j int) float64 {
	if j+1 >= len(vs.Values) {
		return 0
	}
	return vs.Values[j+1] - vs.Values[j]
}

// newValueSet sorts and dedups raw values, forcing 0 into the set.
func newValueSet(raw []float64) ValueSet {
	raw = append(raw, 0)
	sort.Float64s(raw)
	out := raw[:1]
	for _, v := range raw[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return ValueSet{Values: out}
}

// Support returns the global value set of a source:
//   - value pdf: the union of listed frequencies plus 0;
//   - basic / tuple pdf: the integers 0..maxMultiplicity, where
//     maxMultiplicity is the largest number of tuples that can
//     simultaneously instantiate to a single item.
func Support(src Source) ValueSet {
	switch s := src.(type) {
	case *ValuePDF:
		raw := make([]float64, 0, s.M())
		for i := range s.Items {
			for _, e := range s.Items[i].Entries {
				raw = append(raw, e.Freq)
			}
		}
		return newValueSet(raw)
	case *Basic:
		counts := make([]int, s.N)
		maxC := 0
		for _, t := range s.Tuples {
			if t.Prob > 0 {
				counts[t.Item]++
				if counts[t.Item] > maxC {
					maxC = counts[t.Item]
				}
			}
		}
		return integerValues(maxC)
	case *TuplePDF:
		counts := make([]int, s.N)
		seen := make(map[int]bool)
		maxC := 0
		for k := range s.Tuples {
			// within one tuple, alternatives are exclusive: an item gains at
			// most one occurrence per tuple no matter how many alternatives
			// name it.
			for key := range seen {
				delete(seen, key)
			}
			for _, a := range s.Tuples[k].Alts {
				if a.Prob > 0 && !seen[a.Item] {
					seen[a.Item] = true
					counts[a.Item]++
					if counts[a.Item] > maxC {
						maxC = counts[a.Item]
					}
				}
			}
		}
		return integerValues(maxC)
	default:
		panic(fmt.Sprintf("pdata: Support: unknown source type %T", src))
	}
}

func integerValues(maxC int) ValueSet {
	vals := make([]float64, maxC+1)
	for i := range vals {
		vals[i] = float64(i)
	}
	return ValueSet{Values: vals}
}
