package pdata

import "math/rand"

// Random small-instance generators used by the in-package property tests.
// (Other packages use the exported equivalents in internal/ptest; these are
// duplicated locally because an in-package test cannot import a package
// that imports pdata.)

func randomBasic(rng *rand.Rand, n, m int) *Basic {
	b := &Basic{N: n, Tuples: make([]BasicTuple, m)}
	for k := range b.Tuples {
		b.Tuples[k] = BasicTuple{Item: rng.Intn(n), Prob: rng.Float64()}
	}
	return b
}

func randomTuplePDF(rng *rand.Rand, n, tuples, maxAlts int) *TuplePDF {
	tp := &TuplePDF{N: n, Tuples: make([]Tuple, tuples)}
	for k := range tp.Tuples {
		alts := 1 + rng.Intn(maxAlts)
		mass := rng.Float64()
		t := Tuple{Alts: make([]Alternative, alts)}
		remaining := mass
		for a := 0; a < alts; a++ {
			p := remaining / float64(alts-a)
			if a < alts-1 {
				p = remaining * rng.Float64()
			}
			t.Alts[a] = Alternative{Item: rng.Intn(n), Prob: p}
			remaining -= p
		}
		tp.Tuples[k] = t
	}
	return tp
}

func randomValuePDF(rng *rand.Rand, n, maxVals int) *ValuePDF {
	vp := &ValuePDF{N: n, Items: make([]ItemPDF, n)}
	for i := range vp.Items {
		vals := rng.Intn(maxVals + 1)
		remaining := rng.Float64()
		entries := make([]FreqProb, 0, vals)
		for v := 0; v < vals; v++ {
			p := remaining * rng.Float64()
			remaining -= p
			entries = append(entries, FreqProb{Freq: float64(rng.Intn(4)), Prob: p})
		}
		vp.Items[i] = ItemPDF{Entries: entries}
	}
	return vp
}
