package pdata

// Golden tests pinned to Example 1 of the paper (§2.1): the same three-item
// inputs in all three models, with every possible world and probability the
// paper lists, plus the moment values quoted in the text.
//
// The paper's domain {1,2,3} maps to {0,1,2} here.

import (
	"fmt"
	"math"
	"testing"
)

// exampleBasic is ⟨1,1/2⟩,⟨2,1/3⟩,⟨2,1/4⟩,⟨3,1/2⟩.
func exampleBasic() *Basic {
	return &Basic{N: 3, Tuples: []BasicTuple{
		{Item: 0, Prob: 0.5},
		{Item: 1, Prob: 1.0 / 3},
		{Item: 1, Prob: 0.25},
		{Item: 2, Prob: 0.5},
	}}
}

// exampleTuplePDF is ⟨(1,1/2),(2,1/3)⟩, ⟨(2,1/4),(3,1/2)⟩.
func exampleTuplePDF() *TuplePDF {
	return &TuplePDF{N: 3, Tuples: []Tuple{
		{Alts: []Alternative{{Item: 0, Prob: 0.5}, {Item: 1, Prob: 1.0 / 3}}},
		{Alts: []Alternative{{Item: 1, Prob: 0.25}, {Item: 2, Prob: 0.5}}},
	}}
}

// exampleValuePDF is ⟨1:(1,1/2)⟩, ⟨2:(1,1/3),(2,1/4)⟩, ⟨3:(1,1/2)⟩.
func exampleValuePDF() *ValuePDF {
	return &ValuePDF{N: 3, Items: []ItemPDF{
		{Entries: []FreqProb{{Freq: 1, Prob: 0.5}}},
		{Entries: []FreqProb{{Freq: 1, Prob: 1.0 / 3}, {Freq: 2, Prob: 0.25}}},
		{Entries: []FreqProb{{Freq: 1, Prob: 0.5}}},
	}}
}

// worldKey renders a frequency vector as the paper's multiset notation,
// e.g. [1 2 0] -> "122" and [0 0 0] -> "∅".
func worldKey(freqs []float64) string {
	s := ""
	for i, f := range freqs {
		for k := 0; k < int(f+0.5); k++ {
			s += fmt.Sprintf("%d", i+1)
		}
	}
	if s == "" {
		return "∅"
	}
	return s
}

// collectWorlds aggregates enumeration output by world key.
func collectWorlds(t *testing.T, src Source) map[string]float64 {
	t.Helper()
	got := make(map[string]float64)
	src.EnumerateWorlds(func(freqs []float64, prob float64) bool {
		got[worldKey(freqs)] += prob
		return true
	})
	return got
}

func checkWorlds(t *testing.T, got, want map[string]float64) {
	t.Helper()
	total := 0.0
	for k, p := range got {
		total += p
		w, ok := want[k]
		if !ok {
			t.Errorf("unexpected world %q with probability %v", k, p)
			continue
		}
		if math.Abs(p-w) > 1e-12 {
			t.Errorf("world %q: probability %v, want %v", k, p, w)
		}
	}
	for k := range want {
		if _, ok := got[k]; !ok {
			t.Errorf("missing world %q", k)
		}
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("world probabilities sum to %v, want 1", total)
	}
}

func TestExample1BasicWorlds(t *testing.T) {
	want := map[string]float64{
		"∅": 1.0 / 8, "1": 1.0 / 8, "12": 5.0 / 48, "122": 1.0 / 48,
		"123": 5.0 / 48, "1223": 1.0 / 48, "13": 1.0 / 8, "2": 5.0 / 48,
		"22": 1.0 / 48, "23": 5.0 / 48, "223": 1.0 / 48, "3": 1.0 / 8,
	}
	checkWorlds(t, collectWorlds(t, exampleBasic()), want)
}

func TestExample1TuplePDFWorlds(t *testing.T) {
	want := map[string]float64{
		"∅": 1.0 / 24, "1": 1.0 / 8, "2": 1.0 / 8, "3": 1.0 / 12,
		"12": 1.0 / 8, "13": 1.0 / 4, "22": 1.0 / 12, "23": 1.0 / 6,
	}
	checkWorlds(t, collectWorlds(t, exampleTuplePDF()), want)
}

func TestExample1ValuePDFWorlds(t *testing.T) {
	want := map[string]float64{
		"∅": 5.0 / 48, "1": 5.0 / 48, "12": 1.0 / 12, "122": 1.0 / 16,
		"123": 1.0 / 12, "1223": 1.0 / 16, "13": 5.0 / 48, "2": 1.0 / 12,
		"22": 1.0 / 16, "23": 1.0 / 12, "223": 1.0 / 16, "3": 5.0 / 48,
	}
	checkWorlds(t, collectWorlds(t, exampleValuePDF()), want)
}

// "In all three cases, EW[g1] = 1/2. In the value pdf case, EW[g2] = 5/6,
// for the other two cases EW[g2] = 7/12."
func TestExample1ExpectedFrequencies(t *testing.T) {
	for name, src := range map[string]Source{
		"basic": exampleBasic(), "tuple": exampleTuplePDF(),
	} {
		e := src.ExpectedFreqs()
		if math.Abs(e[0]-0.5) > 1e-12 {
			t.Errorf("%s: E[g1] = %v, want 1/2", name, e[0])
		}
		if math.Abs(e[1]-7.0/12) > 1e-12 {
			t.Errorf("%s: E[g2] = %v, want 7/12", name, e[1])
		}
	}
	e := exampleValuePDF().ExpectedFreqs()
	if math.Abs(e[0]-0.5) > 1e-12 {
		t.Errorf("value pdf: E[g1] = %v, want 1/2", e[0])
	}
	if math.Abs(e[1]-5.0/6) > 1e-12 {
		t.Errorf("value pdf: E[g2] = %v, want 5/6", e[1])
	}
}

// The value pdf of Example 1 prints its three pdfs explicitly; check the
// implicit-zero handling reproduces them.
func TestExample1ValuePDFZeroMass(t *testing.T) {
	vp := exampleValuePDF()
	if z := vp.Items[0].ZeroProb(); math.Abs(z-0.5) > 1e-12 {
		t.Errorf("Pr[g1=0] = %v, want 1/2", z)
	}
	if z := vp.Items[1].ZeroProb(); math.Abs(z-5.0/12) > 1e-12 {
		t.Errorf("Pr[g2=0] = %v, want 5/12", z)
	}
}

// §3.1 worked example: for the tuple pdf input, Σ E[g_i^2] = 252/144 and
// E[(Σ g_i)^2] = 136/48, giving bucket [1,3] cost 29/36.
func TestSection31WorkedExampleMoments(t *testing.T) {
	tp := exampleTuplePDF()
	mom := MomentsOf(tp)
	sumSq := mom.MeanSq[0] + mom.MeanSq[1] + mom.MeanSq[2]
	if math.Abs(sumSq-252.0/144) > 1e-12 {
		t.Errorf("Σ E[g^2] = %v, want 252/144", sumSq)
	}
	// E[(Σ g)^2] via enumeration.
	esq := 0.0
	tp.EnumerateWorlds(func(freqs []float64, prob float64) bool {
		s := freqs[0] + freqs[1] + freqs[2]
		esq += prob * s * s
		return true
	})
	if math.Abs(esq-136.0/48) > 1e-12 {
		t.Errorf("E[(Σ g)^2] = %v, want 136/48", esq)
	}
	cost := sumSq - esq/3
	if math.Abs(cost-29.0/36) > 1e-12 {
		t.Errorf("bucket cost = %v, want 29/36", cost)
	}
}

// The induced value pdf of the tuple example must reproduce the per-item
// marginals implied by the eight worlds.
func TestExample1InducedValuePDF(t *testing.T) {
	tp := exampleTuplePDF()
	iv := InducedValuePDF(tp)
	// item 2 (index 1) can be chosen by both tuples: Pr[g=2] = 1/3*1/4 = 1/12,
	// Pr[g=1] = 1/3*3/4 + 2/3*1/4 = 5/12, Pr[g=0] = 1/2.
	want := map[float64]float64{0: 0.5, 1: 5.0 / 12, 2: 1.0 / 12}
	got := map[float64]float64{0: iv.Items[1].ZeroProb()}
	for _, e := range iv.Items[1].Entries {
		if e.Freq != 0 {
			got[e.Freq] += e.Prob
		}
	}
	for v, p := range want {
		if math.Abs(got[v]-p) > 1e-12 {
			t.Errorf("induced Pr[g2=%v] = %v, want %v", v, got[v], p)
		}
	}
}
