// Package metric defines the error objectives of the probabilistic data
// reduction problem (§2.2-2.3): the cumulative metrics SSE, SSRE, SAE, SARE
// (expected sum over items of a per-item error) and the maximum-error
// metrics MAE, MARE (maximum over items of the per-item expected error).
//
// Two squared-error variants are provided (see DESIGN.md, finding 1):
// SSE is the paper's Eq. (5) objective — the expected within-world bucket
// variance, i.e. the error against the clairvoyant per-world bucket mean —
// while SSEFixed charges each bucket against a single fixed representative,
// the semantics an actual stored synopsis delivers.
package metric

import (
	"fmt"
	"math"
)

// Kind identifies an error objective.
type Kind int

// The supported error objectives.
const (
	SSE      Kind = iota // expected sum-squared error, paper Eq. (5) (clairvoyant representative)
	SSEFixed             // expected sum-squared error against a fixed representative
	SSRE                 // expected sum-squared relative error (sanity constant c)
	SAE                  // expected sum-absolute error
	SARE                 // expected sum-absolute relative error (sanity constant c)
	MAE                  // maximum per-item expected absolute error
	MARE                 // maximum per-item expected absolute relative error
)

// Params carries metric parameters. C is the sanity-bound constant of the
// relative-error metrics (§2.2); it is ignored by the absolute metrics.
type Params struct {
	C float64
}

// DefaultParams matches the paper's mid-range experimental setting c = 0.5.
func DefaultParams() Params { return Params{C: 0.5} }

// String returns the conventional name of the metric.
func (k Kind) String() string {
	switch k {
	case SSE:
		return "SSE"
	case SSEFixed:
		return "SSE-fixed"
	case SSRE:
		return "SSRE"
	case SAE:
		return "SAE"
	case SARE:
		return "SARE"
	case MAE:
		return "MAE"
	case MARE:
		return "MARE"
	default:
		return fmt.Sprintf("metric.Kind(%d)", int(k))
	}
}

// Parse returns the Kind named by s (case-sensitive, as printed by String).
func Parse(s string) (Kind, error) {
	for _, k := range []Kind{SSE, SSEFixed, SSRE, SAE, SARE, MAE, MARE} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("metric: unknown metric %q", s)
}

// Cumulative reports whether the metric sums per-item errors (true) or
// takes their maximum (false).
func (k Kind) Cumulative() bool { return k != MAE && k != MARE }

// Relative reports whether the metric uses the sanity constant C.
func (k Kind) Relative() bool { return k == SSRE || k == SARE || k == MARE }

// PointError returns err(g, ĝ) for a single realized frequency g and
// estimate ĝ — the deterministic per-item error the probabilistic
// objectives take expectations of. For SSE it is the plain squared error
// (the clairvoyant-representative subtlety lives in the bucket objective,
// not in the point error).
func (k Kind) PointError(g, ghat float64, p Params) float64 {
	d := g - ghat
	switch k {
	case SSE, SSEFixed:
		return d * d
	case SSRE:
		w := math.Max(p.C, math.Abs(g))
		return d * d / (w * w)
	case SAE, MAE:
		return math.Abs(d)
	case SARE, MARE:
		return math.Abs(d) / math.Max(p.C, math.Abs(g))
	default:
		panic("metric: PointError: unknown metric")
	}
}

// Weight returns the per-value weight w(v) the relative metrics attach to a
// realized frequency v: 1/max(c,|v|)^2 for SSRE and 1/max(c,|v|) for
// SARE/MARE; 1 for the absolute metrics.
func (k Kind) Weight(v float64, p Params) float64 {
	switch k {
	case SSRE:
		w := math.Max(p.C, math.Abs(v))
		return 1 / (w * w)
	case SARE, MARE:
		return 1 / math.Max(p.C, math.Abs(v))
	default:
		return 1
	}
}
