package metric

import (
	"math"
	"testing"
)

func TestStringAndParseRoundTrip(t *testing.T) {
	for _, k := range []Kind{SSE, SSEFixed, SSRE, SAE, SARE, MAE, MARE} {
		got, err := Parse(k.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("Parse(%q) = %v, want %v", k.String(), got, k)
		}
	}
}

func TestParseUnknown(t *testing.T) {
	if _, err := Parse("L7"); err == nil {
		t.Fatal("Parse of unknown metric should fail")
	}
}

func TestCumulative(t *testing.T) {
	for _, k := range []Kind{SSE, SSEFixed, SSRE, SAE, SARE} {
		if !k.Cumulative() {
			t.Errorf("%v should be cumulative", k)
		}
	}
	for _, k := range []Kind{MAE, MARE} {
		if k.Cumulative() {
			t.Errorf("%v should be a maximum metric", k)
		}
	}
}

func TestRelative(t *testing.T) {
	for _, k := range []Kind{SSRE, SARE, MARE} {
		if !k.Relative() {
			t.Errorf("%v should be relative", k)
		}
	}
	for _, k := range []Kind{SSE, SSEFixed, SAE, MAE} {
		if k.Relative() {
			t.Errorf("%v should not be relative", k)
		}
	}
}

func TestPointErrorValues(t *testing.T) {
	p := Params{C: 0.5}
	cases := []struct {
		k       Kind
		g, ghat float64
		want    float64
	}{
		{SSE, 3, 1, 4},
		{SSEFixed, 3, 1, 4},
		{SSRE, 3, 1, 4.0 / 9.0},         // denom max(0.5,3)^2 = 9
		{SSRE, 0.25, 0.75, 0.25 / 0.25}, // denom max(0.5,0.25)^2 = 0.25
		{SAE, 3, 1, 2},
		{SARE, 3, 1, 2.0 / 3.0},
		{SARE, 0, 1, 1 / 0.5},
		{MAE, -1, 2, 3},
		{MARE, 2, 5, 1.5},
	}
	for _, c := range cases {
		if got := c.k.PointError(c.g, c.ghat, p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%v.PointError(%v,%v) = %v, want %v", c.k, c.g, c.ghat, got, c.want)
		}
	}
}

func TestPointErrorZeroAtExact(t *testing.T) {
	p := DefaultParams()
	for _, k := range []Kind{SSE, SSEFixed, SSRE, SAE, SARE, MAE, MARE} {
		if got := k.PointError(7, 7, p); got != 0 {
			t.Errorf("%v.PointError(7,7) = %v, want 0", k, got)
		}
	}
}

func TestWeight(t *testing.T) {
	p := Params{C: 2}
	if w := SSRE.Weight(1, p); w != 0.25 {
		t.Errorf("SSRE weight below sanity bound: %v, want 1/4", w)
	}
	if w := SSRE.Weight(4, p); w != 1.0/16 {
		t.Errorf("SSRE weight above sanity bound: %v, want 1/16", w)
	}
	if w := SARE.Weight(1, p); w != 0.5 {
		t.Errorf("SARE weight: %v, want 1/2", w)
	}
	if w := SAE.Weight(123, p); w != 1 {
		t.Errorf("SAE weight must be 1, got %v", w)
	}
}

// Weight and PointError must agree: err = weight(g) * |g-ghat|^p.
func TestWeightConsistentWithPointError(t *testing.T) {
	p := Params{C: 0.7}
	gs := []float64{0, 0.3, 0.7, 1, 2.5, 10}
	ghats := []float64{0, 1.1, 3}
	for _, g := range gs {
		for _, ghat := range ghats {
			d := math.Abs(g - ghat)
			if got, want := SSRE.PointError(g, ghat, p), SSRE.Weight(g, p)*d*d; math.Abs(got-want) > 1e-12 {
				t.Errorf("SSRE inconsistency at g=%v ghat=%v: %v vs %v", g, ghat, got, want)
			}
			if got, want := SARE.PointError(g, ghat, p), SARE.Weight(g, p)*d; math.Abs(got-want) > 1e-12 {
				t.Errorf("SARE inconsistency at g=%v ghat=%v: %v vs %v", g, ghat, got, want)
			}
		}
	}
}
