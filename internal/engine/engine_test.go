package engine

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestChunkBoundsCoverExactly(t *testing.T) {
	for _, parts := range []int{1, 2, 3, 7, 16} {
		for _, span := range []int{0, 1, 2, 5, 16, 97} {
			lo, hi := 3, 3+span
			prev := lo
			for w := 0; w < parts; w++ {
				clo, chi := ChunkBounds(w, parts, lo, hi)
				if clo != prev {
					t.Fatalf("parts=%d span=%d chunk %d starts at %d, want %d", parts, span, w, clo, prev)
				}
				if chi < clo {
					t.Fatalf("parts=%d span=%d chunk %d inverted: [%d,%d)", parts, span, w, clo, chi)
				}
				prev = chi
			}
			if prev != hi {
				t.Fatalf("parts=%d span=%d chunks end at %d, want %d", parts, span, prev, hi)
			}
		}
	}
}

func TestChunksRespectsGrainAndWorkers(t *testing.T) {
	p := New(Options{Workers: 4, Grain: 100})
	if got := p.Chunks(99); got != 1 {
		t.Fatalf("below grain: %d chunks, want 1", got)
	}
	if got := p.Chunks(100); got != 4 {
		t.Fatalf("at grain: %d chunks, want 4", got)
	}
	if got := Serial().Chunks(1 << 20); got != 1 {
		t.Fatalf("serial pool: %d chunks, want 1", got)
	}
	var nilPool *Pool
	if got := nilPool.Chunks(1 << 20); got != 1 {
		t.Fatalf("nil pool: %d chunks, want 1", got)
	}
}

func TestNewDefaults(t *testing.T) {
	p := New(Options{})
	if p.Workers() != runtime.NumCPU() {
		t.Fatalf("default workers %d, want NumCPU %d", p.Workers(), runtime.NumCPU())
	}
	if p.grain != DefaultGrain {
		t.Fatalf("default grain %d, want %d", p.grain, DefaultGrain)
	}
}

// MapChunks must visit every index exactly once, at any worker count, and
// must invoke fn for empty chunks so indexed partial slots get written.
func TestMapChunksVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := New(Options{Workers: workers, Grain: 1})
		for _, span := range []int{0, 1, 2, 5, 100} {
			visits := make([]int32, span)
			calls := int32(0)
			p.MapChunks(0, span, span, func(w, lo, hi int) {
				atomic.AddInt32(&calls, 1)
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visits[i], 1)
				}
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("workers=%d span=%d: index %d visited %d times", workers, span, i, v)
				}
			}
			if want := int32(p.Chunks(span)); calls != want {
				t.Fatalf("workers=%d span=%d: fn called %d times, want %d", workers, span, calls, want)
			}
		}
	}
}

// ReduceMin over a synthetic cost array must match a serial strict-< scan
// bit for bit — value and argmin — at every worker count.
func TestReduceMinMatchesSerialScan(t *testing.T) {
	costs := []float64{5, 3, 7, 3, 1, 9, 1, 2, 8, 3, 1, 6}
	scan := func(lo, hi int) MinPartial {
		best := EmptyMin()
		for i := lo; i < hi; i++ {
			if costs[i] < best.Value {
				best = MinPartial{Value: costs[i], Arg: int32(i)}
			}
		}
		return best
	}
	want := scan(0, len(costs))
	if want.Arg != 4 { // first of the tied minima
		t.Fatalf("serial scan argmin %d, want 4", want.Arg)
	}
	for _, workers := range []int{1, 2, 3, 5, 16} {
		p := New(Options{Workers: workers, Grain: 1})
		got := p.ReduceMin(0, len(costs), len(costs), scan)
		if got != want {
			t.Fatalf("workers=%d: ReduceMin = %+v, want %+v", workers, got, want)
		}
	}
}

func TestReduceMinEmptyRange(t *testing.T) {
	p := New(Options{Workers: 4, Grain: 1})
	got := p.ReduceMin(0, 0, 10000, func(lo, hi int) MinPartial {
		t.Fatalf("fn called on empty range [%d,%d)", lo, hi)
		return MinPartial{}
	})
	if got.Arg >= 0 || !math.IsInf(got.Value, 1) {
		t.Fatalf("empty reduce = %+v, want identity", got)
	}
}

// MapChunksDynamic must preserve MapChunks's coverage contract — every
// index visited exactly once — while cutting finer chunks than workers.
func TestMapChunksDynamicVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := New(Options{Workers: workers, Grain: 1})
		for _, span := range []int{0, 1, 2, 5, 100, 1000} {
			visits := make([]int32, span)
			maxChunk := int32(-1)
			p.MapChunksDynamic(0, span, span, func(w, lo, hi int) {
				for {
					old := atomic.LoadInt32(&maxChunk)
					if int32(w) <= old || atomic.CompareAndSwapInt32(&maxChunk, old, int32(w)) {
						break
					}
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visits[i], 1)
				}
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("workers=%d span=%d: index %d visited %d times", workers, span, i, v)
				}
			}
			if workers > 1 && span >= workers*DynamicChunkFactor {
				if want := int32(workers*DynamicChunkFactor - 1); maxChunk != want {
					t.Fatalf("workers=%d span=%d: max chunk index %d, want %d", workers, span, maxChunk, want)
				}
			}
		}
	}
}

// A dynamic pool's Dispatch must fill range-derived slots identically to
// a static pool's, including when per-element work is ragged.
func TestDispatchDynamicMatchesStatic(t *testing.T) {
	const span = 513
	fill := func(p *Pool) []float64 {
		out := make([]float64, span)
		p.Dispatch(0, span, span, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				v := float64(i)
				for k := 0; k < i%17; k++ { // ragged per-element cost
					v = v*1.0000001 + float64(k)
				}
				out[i] = v
			}
		})
		return out
	}
	want := fill(Serial())
	for _, workers := range []int{2, 3, 8} {
		for _, dynamic := range []bool{false, true} {
			got := fill(New(Options{Workers: workers, Grain: 1, Dynamic: dynamic}))
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d dynamic=%v: slot %d = %v, want %v", workers, dynamic, i, got[i], want[i])
				}
			}
		}
	}
}

// Every dispatch must run inline on a nil pool, not panic: Chunks
// nil-checks before any field access.
func TestDispatchNilPoolRunsInline(t *testing.T) {
	var p *Pool
	for name, dispatch := range map[string]func(lo, hi, work int, fn func(w, clo, chi int)){
		"Dispatch": p.Dispatch, "MapChunks": p.MapChunks, "MapChunksDynamic": p.MapChunksDynamic,
	} {
		calls := 0
		dispatch(3, 7, 1<<20, func(w, clo, chi int) {
			calls++
			if w != 0 || clo != 3 || chi != 7 {
				t.Fatalf("%s: nil pool chunk (%d, %d, %d), want (0, 3, 7)", name, w, clo, chi)
			}
		})
		if calls != 1 {
			t.Fatalf("%s: nil pool made %d calls, want 1 inline", name, calls)
		}
	}
}

// Acquire must bound concurrently admitted builds at MaxBuilds: the
// high-water mark of holders inside the critical section can never
// exceed the cap, and every blocked Acquire is eventually admitted.
func TestAcquireBoundsInFlightBuilds(t *testing.T) {
	const cap, callers = 3, 16
	p := New(Options{Workers: 1, MaxBuilds: cap})
	if p.MaxBuilds() != cap {
		t.Fatalf("MaxBuilds() = %d, want %d", p.MaxBuilds(), cap)
	}
	var inside, peak int32
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := p.Acquire(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			n := atomic.AddInt32(&inside, 1)
			for {
				old := atomic.LoadInt32(&peak)
				if n <= old || atomic.CompareAndSwapInt32(&peak, old, n) {
					break
				}
			}
			runtime.Gosched()
			atomic.AddInt32(&inside, -1)
			release()
			release() // idempotent: double release must not free a second token
		}()
	}
	wg.Wait()
	if got := atomic.LoadInt32(&peak); got > cap {
		t.Fatalf("%d concurrent holders, cap %d", got, cap)
	}
	if got := p.PeakInFlight(); got > cap || got < 1 {
		t.Fatalf("PeakInFlight() = %d, want in [1, %d]", got, cap)
	}
	if got := p.InFlight(); got != 0 {
		t.Fatalf("InFlight() = %d after all releases, want 0", got)
	}
	// All tokens must be free again: cap sequential acquires succeed.
	for k := 0; k < cap; k++ {
		release, err := p.Acquire(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		defer release()
	}
}

func TestAcquireHonorsContextCancel(t *testing.T) {
	p := New(Options{Workers: 1, MaxBuilds: 1})
	release, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Acquire(ctx); err == nil {
		t.Fatal("Acquire with cancelled context succeeded while pool was full")
	}
	release()
	release2, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire after release: %v", err)
	}
	release2()
}

// An uncapped (or nil) pool admits everything without blocking.
func TestAcquireUnlimitedIsNoOp(t *testing.T) {
	for name, p := range map[string]*Pool{"uncapped": Serial(), "nil": nil} {
		for k := 0; k < 100; k++ {
			release, err := p.Acquire(context.Background())
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			release()
		}
		if p.MaxBuilds() != 0 {
			t.Fatalf("%s: MaxBuilds() = %d, want 0", name, p.MaxBuilds())
		}
	}
}

func TestCombineMinPrefersEarlierChunkOnTies(t *testing.T) {
	parts := []MinPartial{
		EmptyMin(),
		{Value: 2, Arg: 3},
		{Value: 2, Arg: 1}, // tied value, later chunk: must lose
		{Value: 5, Arg: 9},
	}
	got := CombineMin(parts)
	if got.Arg != 3 || got.Value != 2 {
		t.Fatalf("CombineMin = %+v, want {2 3}", got)
	}
}

// Regression for the multi-token deadlock: two concurrent holders each
// acquiring k=2 tokens from a MaxBuilds=2 pool in a loop would each get
// one and wait forever for the other's. AcquireN's all-or-nothing grant
// must let both complete.
func TestAcquireNAllOrNothingAvoidsDeadlock(t *testing.T) {
	p := New(Options{Workers: 1, MaxBuilds: 2})
	const holders = 4
	done := make(chan int, holders)
	for h := 0; h < holders; h++ {
		go func() {
			granted, release, err := p.AcquireN(context.Background(), 2)
			if err != nil {
				t.Errorf("AcquireN: %v", err)
				done <- 0
				return
			}
			done <- granted
			release()
			release() // idempotent
		}()
	}
	timeout := time.After(10 * time.Second)
	for h := 0; h < holders; h++ {
		select {
		case granted := <-done:
			if granted != 2 {
				t.Fatalf("granted %d tokens, want 2", granted)
			}
		case <-timeout:
			t.Fatal("AcquireN holders deadlocked")
		}
	}
	if p.InFlight() != 0 {
		t.Fatalf("InFlight() = %d after all releases, want 0", p.InFlight())
	}
	if p.PeakInFlight() > 2 {
		t.Fatalf("PeakInFlight() = %d, want <= MaxBuilds 2", p.PeakInFlight())
	}
}

// AcquireN clamps the request to the admission cap instead of
// self-deadlocking, and reports the smaller grant back.
func TestAcquireNClampsToCap(t *testing.T) {
	p := New(Options{Workers: 1, MaxBuilds: 2})
	granted, release, err := p.AcquireN(context.Background(), 8)
	if err != nil {
		t.Fatalf("AcquireN: %v", err)
	}
	if granted != 2 {
		t.Fatalf("granted %d, want the cap 2", granted)
	}
	release()
	granted, release, err = p.AcquireN(context.Background(), 0)
	if err != nil {
		t.Fatalf("AcquireN: %v", err)
	}
	if granted != 1 {
		t.Fatalf("granted %d for n=0, want 1", granted)
	}
	release()
}

// A cancelled AcquireN returns every token it had collected: the pool
// stays fully usable afterwards.
func TestAcquireNHonorsContextCancelAndRepays(t *testing.T) {
	p := New(Options{Workers: 1, MaxBuilds: 2})
	release1, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := p.AcquireN(ctx, 2) // blocks: only one token free
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("AcquireN with cancelled context succeeded while pool was short")
	}
	release1()
	// Both tokens must be available again.
	granted, release, err := p.AcquireN(context.Background(), 2)
	if err != nil || granted != 2 {
		t.Fatalf("AcquireN after cancel = (%d, %v), want (2, nil)", granted, err)
	}
	release()
}

// Uncapped and nil pools grant n immediately.
func TestAcquireNUnlimited(t *testing.T) {
	for name, p := range map[string]*Pool{"uncapped": Serial(), "nil": nil} {
		granted, release, err := p.AcquireN(context.Background(), 7)
		if err != nil || granted != 7 {
			t.Fatalf("%s: AcquireN = (%d, %v), want (7, nil)", name, granted, err)
		}
		release()
	}
}

// cutRef is the linear-scan reference for the Cut* binary searches: the
// first index in [lo, hi) whose value satisfies pred, or hi.
func cutRef(x []float64, lo, hi int, pred func(float64) bool) int {
	for i := lo; i < hi; i++ {
		if pred(x[i]) {
			return i
		}
	}
	return hi
}

func TestCutFunctionsMatchLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		// Non-decreasing array with plateaus (duplicates stress the
		// first-index contract), including ±Inf and exact-zero runs.
		up := make([]float64, n)
		acc := -5.0
		for i := range up {
			if rng.Intn(3) > 0 {
				acc += float64(rng.Intn(3))
			}
			up[i] = acc
		}
		if rng.Intn(8) == 0 {
			up[n-1] = math.Inf(1)
		}
		down := make([]float64, n)
		for i := range down {
			down[i] = -up[i] // non-increasing
		}
		lo := rng.Intn(n)
		hi := lo + rng.Intn(n-lo+1)
		for _, v := range []float64{up[rng.Intn(n)], -10, 10, 0, math.Inf(1), math.Inf(-1)} {
			if got, want := CutGE(up, lo, hi, v), cutRef(up, lo, hi, func(x float64) bool { return x >= v }); got != want {
				t.Fatalf("CutGE(%v, %d, %d, %v) = %d, want %d", up, lo, hi, v, got, want)
			}
			if got, want := CutGT(up, lo, hi, v), cutRef(up, lo, hi, func(x float64) bool { return x > v }); got != want {
				t.Fatalf("CutGT(%v, %d, %d, %v) = %d, want %d", up, lo, hi, v, got, want)
			}
			if got, want := CutLE(down, lo, hi, -v), cutRef(down, lo, hi, func(x float64) bool { return x <= -v }); got != want {
				t.Fatalf("CutLE(%v, %d, %d, %v) = %d, want %d", down, lo, hi, -v, got, want)
			}
		}
	}
}

func TestCutFunctionsEmptyRange(t *testing.T) {
	x := []float64{1, 2, 3}
	for _, lo := range []int{0, 1, 3} {
		if got := CutGE(x, lo, lo, 0); got != lo {
			t.Fatalf("CutGE empty range at %d returned %d", lo, got)
		}
		if got := CutGT(x, lo, lo, 0); got != lo {
			t.Fatalf("CutGT empty range at %d returned %d", lo, got)
		}
		if got := CutLE(x, lo, lo, 0); got != lo {
			t.Fatalf("CutLE empty range at %d returned %d", lo, got)
		}
	}
}
