package engine

import (
	"math"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestChunkBoundsCoverExactly(t *testing.T) {
	for _, parts := range []int{1, 2, 3, 7, 16} {
		for _, span := range []int{0, 1, 2, 5, 16, 97} {
			lo, hi := 3, 3+span
			prev := lo
			for w := 0; w < parts; w++ {
				clo, chi := ChunkBounds(w, parts, lo, hi)
				if clo != prev {
					t.Fatalf("parts=%d span=%d chunk %d starts at %d, want %d", parts, span, w, clo, prev)
				}
				if chi < clo {
					t.Fatalf("parts=%d span=%d chunk %d inverted: [%d,%d)", parts, span, w, clo, chi)
				}
				prev = chi
			}
			if prev != hi {
				t.Fatalf("parts=%d span=%d chunks end at %d, want %d", parts, span, prev, hi)
			}
		}
	}
}

func TestChunksRespectsGrainAndWorkers(t *testing.T) {
	p := New(Options{Workers: 4, Grain: 100})
	if got := p.Chunks(99); got != 1 {
		t.Fatalf("below grain: %d chunks, want 1", got)
	}
	if got := p.Chunks(100); got != 4 {
		t.Fatalf("at grain: %d chunks, want 4", got)
	}
	if got := Serial().Chunks(1 << 20); got != 1 {
		t.Fatalf("serial pool: %d chunks, want 1", got)
	}
	var nilPool *Pool
	if got := nilPool.Chunks(1 << 20); got != 1 {
		t.Fatalf("nil pool: %d chunks, want 1", got)
	}
}

func TestNewDefaults(t *testing.T) {
	p := New(Options{})
	if p.Workers() != runtime.NumCPU() {
		t.Fatalf("default workers %d, want NumCPU %d", p.Workers(), runtime.NumCPU())
	}
	if p.grain != DefaultGrain {
		t.Fatalf("default grain %d, want %d", p.grain, DefaultGrain)
	}
}

// MapChunks must visit every index exactly once, at any worker count, and
// must invoke fn for empty chunks so indexed partial slots get written.
func TestMapChunksVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := New(Options{Workers: workers, Grain: 1})
		for _, span := range []int{0, 1, 2, 5, 100} {
			visits := make([]int32, span)
			calls := int32(0)
			p.MapChunks(0, span, span, func(w, lo, hi int) {
				atomic.AddInt32(&calls, 1)
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visits[i], 1)
				}
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("workers=%d span=%d: index %d visited %d times", workers, span, i, v)
				}
			}
			if want := int32(p.Chunks(span)); calls != want {
				t.Fatalf("workers=%d span=%d: fn called %d times, want %d", workers, span, calls, want)
			}
		}
	}
}

// ReduceMin over a synthetic cost array must match a serial strict-< scan
// bit for bit — value and argmin — at every worker count.
func TestReduceMinMatchesSerialScan(t *testing.T) {
	costs := []float64{5, 3, 7, 3, 1, 9, 1, 2, 8, 3, 1, 6}
	scan := func(lo, hi int) MinPartial {
		best := EmptyMin()
		for i := lo; i < hi; i++ {
			if costs[i] < best.Value {
				best = MinPartial{Value: costs[i], Arg: int32(i)}
			}
		}
		return best
	}
	want := scan(0, len(costs))
	if want.Arg != 4 { // first of the tied minima
		t.Fatalf("serial scan argmin %d, want 4", want.Arg)
	}
	for _, workers := range []int{1, 2, 3, 5, 16} {
		p := New(Options{Workers: workers, Grain: 1})
		got := p.ReduceMin(0, len(costs), len(costs), scan)
		if got != want {
			t.Fatalf("workers=%d: ReduceMin = %+v, want %+v", workers, got, want)
		}
	}
}

func TestReduceMinEmptyRange(t *testing.T) {
	p := New(Options{Workers: 4, Grain: 1})
	got := p.ReduceMin(0, 0, 10000, func(lo, hi int) MinPartial {
		t.Fatalf("fn called on empty range [%d,%d)", lo, hi)
		return MinPartial{}
	})
	if got.Arg >= 0 || !math.IsInf(got.Value, 1) {
		t.Fatalf("empty reduce = %+v, want identity", got)
	}
}

func TestCombineMinPrefersEarlierChunkOnTies(t *testing.T) {
	parts := []MinPartial{
		EmptyMin(),
		{Value: 2, Arg: 3},
		{Value: 2, Arg: 1}, // tied value, later chunk: must lose
		{Value: 5, Arg: 9},
	}
	got := CombineMin(parts)
	if got.Arg != 3 || got.Value != 2 {
		t.Fatalf("CombineMin = %+v, want {2 3}", got)
	}
}
