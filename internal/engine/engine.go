// Package engine is the shared parallel execution layer under every
// synopsis family's dynamic program. It owns the scheduling decisions the
// DPs have in common — when to fan work out, how to cut an index range
// into per-worker chunks, and how to reduce per-chunk minima back into a
// single deterministic answer — so that histogram and wavelet builds run
// on one worker-pool discipline instead of re-implementing it per family.
//
// The central contract is determinism: every dispatch partitions its index
// range into contiguous chunks whose per-element work is performed in the
// same order as a serial loop, and argmin reductions combine chunk results
// left to right with strict <, so any result produced through the engine
// is bit-identical at every worker count. Clients keep that promise by
// writing only to slots derived from their own chunk (MapChunks) or by
// returning pure per-chunk candidates (ReduceMin).
package engine

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultGrain is the minimum number of unit operations a dispatch must
// contain before it fans out: fanning goroutines out over tiny ranges
// costs more than the loop itself.
const DefaultGrain = 2048

// DynamicChunkFactor is how many chunks per worker a dynamic dispatch
// cuts: fine enough that one straggling chunk cannot idle the other
// workers for long, coarse enough that the atomic cursor stays cold.
const DynamicChunkFactor = 8

// Options configure a Pool.
type Options struct {
	// Workers is the number of worker goroutines; <= 0 means one per CPU.
	Workers int
	// Grain is the minimum work estimate (unit operations) below which a
	// dispatch stays serial; <= 0 means DefaultGrain. Tests lower it to
	// push small inputs through the parallel schedule — it is an Options
	// field, not a package global, so concurrent tests cannot race on it.
	Grain int
	// MaxBuilds caps how many builds the pool admits concurrently
	// (Acquire blocks past the cap); <= 0 means unlimited. One
	// process-wide pool with MaxBuilds set is the serving layer's
	// admission control: N queued builds share the pool's workers
	// instead of oversubscribing cores with per-call pools.
	MaxBuilds int
	// Dynamic selects the work-stealing chunk dispatch (MapChunksDynamic)
	// for clients that route through Dispatch: levels whose per-element
	// cost is ragged — the unrestricted wavelet DP's state-count skew —
	// finish earlier when idle workers can pull finer chunks off an
	// atomic cursor. Results are bit-identical either way; see
	// MapChunksDynamic.
	Dynamic bool
}

// Pool executes chunked sweeps and deterministic min-reductions, and
// meters build admission. A Pool is immutable after New and safe for
// concurrent use; it holds no goroutines between dispatches.
type Pool struct {
	workers  int
	grain    int
	dynamic  bool
	sem      chan struct{} // admission tokens; nil = unlimited
	multiMu  sync.Mutex    // serializes multi-token acquirers (AcquireN)
	inflight atomic.Int32
	peak     atomic.Int32
}

// New returns a pool for the given options (zero value: NumCPU workers,
// DefaultGrain, unlimited admission, static dispatch).
func New(o Options) *Pool {
	w := o.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	g := o.Grain
	if g <= 0 {
		g = DefaultGrain
	}
	p := &Pool{workers: w, grain: g, dynamic: o.Dynamic}
	if o.MaxBuilds > 0 {
		p.sem = make(chan struct{}, o.MaxBuilds)
	}
	return p
}

// Serial returns a single-worker pool: every dispatch runs inline.
func Serial() *Pool { return New(Options{Workers: 1}) }

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// MaxBuilds returns the pool's admission cap (0 = unlimited).
func (p *Pool) MaxBuilds() int {
	if p == nil || p.sem == nil {
		return 0
	}
	return cap(p.sem)
}

// Acquire blocks until the pool admits one more build (or ctx is done)
// and returns the token's release func. Callers bracket each synopsis
// build with Acquire/release so that however many goroutines request
// builds, at most MaxBuilds DPs dispatch onto the pool's workers at
// once. With no cap configured (or on a nil pool) Acquire is a no-op
// that never blocks. release is idempotent.
func (p *Pool) Acquire(ctx context.Context) (release func(), err error) {
	if p == nil || p.sem == nil {
		return func() {}, nil
	}
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	n := p.inflight.Add(1)
	for {
		old := p.peak.Load()
		if n <= old || p.peak.CompareAndSwap(old, n) {
			break
		}
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			p.inflight.Add(-1)
			<-p.sem
		})
	}, nil
}

// AcquireN blocks until the pool admits n more builds at once and
// returns the granted token count with one release func covering all of
// them. The grant is all-or-nothing: a mutex serializes multi-token
// acquirers, so two concurrent AcquireN calls can never each hold a
// partial grant while waiting for the other's tokens — the loop-of-
// Acquire pattern deadlocks exactly that way on a small MaxBuilds cap.
// n is clamped to [1, MaxBuilds] (asking for more than the cap can ever
// supply would self-deadlock); the caller reads the granted count back
// and bounds its internal concurrency by it. Uncapped (or nil) pools
// grant n without blocking. Single Acquire calls are unaffected and
// cannot be starved: blocked channel sends are served in arrival order,
// so a collector mid-grant queues like any other sender.
func (p *Pool) AcquireN(ctx context.Context, n int) (granted int, release func(), err error) {
	if n < 1 {
		n = 1
	}
	if p == nil || p.sem == nil {
		return n, func() {}, nil
	}
	if c := cap(p.sem); n > c {
		n = c
	}
	p.multiMu.Lock()
	defer p.multiMu.Unlock()
	for got := 0; got < n; got++ {
		select {
		case p.sem <- struct{}{}:
		case <-ctx.Done():
			for ; got > 0; got-- {
				<-p.sem
			}
			return 0, nil, ctx.Err()
		}
	}
	in := p.inflight.Add(int32(n))
	for {
		old := p.peak.Load()
		if in <= old || p.peak.CompareAndSwap(old, in) {
			break
		}
	}
	nn := n
	var once sync.Once
	return n, func() {
		once.Do(func() {
			p.inflight.Add(int32(-nn))
			for i := 0; i < nn; i++ {
				<-p.sem
			}
		})
	}, nil
}

// InFlight returns the number of currently admitted builds.
func (p *Pool) InFlight() int {
	if p == nil {
		return 0
	}
	return int(p.inflight.Load())
}

// PeakInFlight returns the high-water mark of concurrently admitted
// builds over the pool's lifetime — the number admission control is
// asserted against in tests (it can never exceed MaxBuilds).
func (p *Pool) PeakInFlight() int {
	if p == nil {
		return 0
	}
	return int(p.peak.Load())
}

// Chunks returns how many chunks a dispatch with the given total work
// estimate fans out to: 1 when the pool is serial or the work is below the
// grain, the worker count otherwise.
func (p *Pool) Chunks(work int) int {
	if p == nil || p.workers <= 1 || work < p.grain {
		return 1
	}
	return p.workers
}

// MapChunks splits [lo, hi) into Chunks(work) contiguous near-equal chunks
// and runs fn(w, clo, chi) on each, concurrently when there is more than
// one. Chunk indices w are dense in [0, Chunks(work)); empty chunks
// (possible when hi-lo < chunks) are still invoked, with clo >= chi, so
// chunk-indexed result slots are always written. fn must only write state
// derived from its own chunk index or range.
func (p *Pool) MapChunks(lo, hi, work int, fn func(w, clo, chi int)) {
	parts := p.Chunks(work)
	if parts == 1 {
		fn(0, lo, hi)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < parts; w++ {
		clo, chi := ChunkBounds(w, parts, lo, hi)
		if clo >= chi {
			fn(w, clo, chi)
			continue
		}
		wg.Add(1)
		go func(w, clo, chi int) {
			defer wg.Done()
			fn(w, clo, chi)
		}(w, clo, chi)
	}
	wg.Wait()
}

// Dispatch routes a chunked sweep to MapChunksDynamic when the pool was
// built with Options.Dynamic, and to MapChunks otherwise. Clients whose
// per-chunk result slots are derived from the index range (not from the
// chunk index) can switch schedules freely: both produce bit-identical
// results. Like every dispatch here, it is safe on a nil pool — Chunks
// nil-checks before touching any field, so the sweep runs inline.
func (p *Pool) Dispatch(lo, hi, work int, fn func(w, clo, chi int)) {
	if p != nil && p.dynamic {
		p.MapChunksDynamic(lo, hi, work, fn)
		return
	}
	p.MapChunks(lo, hi, work, fn)
}

// MapChunksDynamic is MapChunks with work stealing: the range is cut
// into DynamicChunkFactor-times finer chunks and the pool's workers pull
// chunk indices off a shared atomic cursor, so ragged per-chunk costs
// (per-node state-count skew in the unrestricted wavelet DP's levels) do
// not leave workers idle behind one slow even split. Even slicing
// (MapChunks) divides the INDEX range equally, but the work behind equal
// index spans can differ by the product of branch factors along a path —
// the slowest chunk then bounds the level's wall time while every other
// worker idles; stealing bounds that tail at one fine chunk instead.
//
// The determinism contract is unchanged — chunks are the same contiguous
// sub-ranges regardless of which worker runs them, each element is
// processed in serial order within its chunk, and fn must only write
// state derived from its own chunk index or range (slot ownership: the
// cursor hands each chunk to exactly one worker, and result slots are
// functions of the range, not of worker identity) — so results stay
// bit-identical to MapChunks at every worker count. Chunk indices w are
// dense in [0, parts) with parts > Workers(); clients sizing per-chunk
// slot arrays by chunk index must use static MapChunks instead.
func (p *Pool) MapChunksDynamic(lo, hi, work int, fn func(w, clo, chi int)) {
	if p.Chunks(work) == 1 {
		fn(0, lo, hi)
		return
	}
	parts := p.workers * DynamicChunkFactor
	if span := hi - lo; parts > span {
		parts = span // below p.workers only when the range itself is tiny
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(cursor.Add(1) - 1)
				if c >= parts {
					return
				}
				clo, chi := ChunkBounds(c, parts, lo, hi)
				fn(c, clo, chi)
			}
		}()
	}
	wg.Wait()
}

// CutGE returns the first index i in [lo, hi) with x[i] >= v, or hi when
// there is none. x[lo:hi] must be non-decreasing — the caller certifies
// that (the histogram DP checks it at write time; float wobble voids the
// guarantee otherwise). With CombineMin it forms the engine's bounded-
// search min-reduction: a reducer that holds an upper bound on the
// minimum cuts the candidate range to the indices that can still matter
// in O(log) instead of scanning past them.
func CutGE(x []float64, lo, hi int, v float64) int {
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if x[mid] >= v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// CutGT returns the first index i in [lo, hi) with x[i] > v, or hi when
// there is none; x[lo:hi] must be non-decreasing.
func CutGT(x []float64, lo, hi int, v float64) int {
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if x[mid] > v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// CutLE returns the first index i in [lo, hi) with x[i] <= v, or hi when
// there is none; x[lo:hi] must be non-increasing (prefix-min envelopes
// are, exactly, by construction — see the histogram DP's pruned scan).
func CutLE(x []float64, lo, hi int, v float64) int {
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if x[mid] <= v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// MinPartial is one chunk's candidate for an argmin reduction: the minimal
// value over the chunk and the index achieving it. Arg < 0 marks an empty
// chunk (the identity of CombineMin).
type MinPartial struct {
	Value float64
	Arg   int32
}

// EmptyMin returns the identity candidate: +Inf value, no index.
func EmptyMin() MinPartial { return MinPartial{Value: math.Inf(1), Arg: -1} }

// CombineMin folds per-chunk candidates left to right with strict <, so
// on ties the earliest chunk — and therefore the smallest index, exactly
// as in a serial left-to-right scan — wins.
func CombineMin(parts []MinPartial) MinPartial {
	best := EmptyMin()
	for _, c := range parts {
		if c.Arg >= 0 && c.Value < best.Value {
			best = c
		}
	}
	return best
}

// ReduceMin evaluates fn over the chunks of [lo, hi) — fn returns the
// chunk's argmin candidate — and combines the candidates with CombineMin.
// The result is bit-identical to fn(lo, hi) provided fn scans its range
// left to right with strict-< tie-breaking. It is the one-dispatch form
// of the engine's reduction; a client amortizing one dispatch over many
// reductions (the histogram DP reduces every budget level per chunk)
// uses the decomposed form instead — MapChunks into chunk-indexed
// MinPartial slots, then CombineMin per reduction — which is equivalent
// by construction.
func (p *Pool) ReduceMin(lo, hi, work int, fn func(clo, chi int) MinPartial) MinPartial {
	parts := p.Chunks(work)
	if parts == 1 {
		return fn(lo, hi)
	}
	partials := make([]MinPartial, parts)
	p.MapChunks(lo, hi, work, func(w, clo, chi int) {
		if clo >= chi {
			partials[w] = EmptyMin()
			return
		}
		partials[w] = fn(clo, chi)
	})
	return CombineMin(partials)
}

// ChunkBounds splits [lo, hi) into parts near-equal contiguous chunks and
// returns the w-th as a half-open range.
func ChunkBounds(w, parts, lo, hi int) (int, int) {
	span := hi - lo
	return lo + w*span/parts, lo + (w+1)*span/parts
}

// Fan runs f(0..k-1) across at most conc goroutines (a bounded task fan
// for coarse units of independent work — per-shard builds, per-peer
// RPCs — as opposed to the pool's fine-grained chunk dispatch). Each
// call's outcome lands in its own slot, so results are deterministic at
// any concurrency and completion order; the first error by index wins.
func Fan(k, conc int, f func(i int) error) error {
	if conc < 1 {
		conc = 1
	}
	if conc > k {
		conc = k
	}
	errs := make([]error, k)
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = f(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
