package textio

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"probsyn/internal/pdata"
	"probsyn/internal/ptest"
)

func roundTrip(t *testing.T, src pdata.Source) pdata.Source {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, src); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	return got
}

func TestRoundTripBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := ptest.RandomBasic(rng, 10, 15)
	got := roundTrip(t, src)
	if !reflect.DeepEqual(got, src) {
		t.Fatalf("basic roundtrip mismatch:\n got %+v\nwant %+v", got, src)
	}
}

func TestRoundTripTuple(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := ptest.RandomTuplePDF(rng, 10, 8, 3)
	got := roundTrip(t, src)
	if !reflect.DeepEqual(got, src) {
		t.Fatalf("tuple roundtrip mismatch")
	}
}

func TestRoundTripValue(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := ptest.RandomFractionalValuePDF(rng, 10, 3)
	got := roundTrip(t, src).(*pdata.ValuePDF)
	if got.N != src.N {
		t.Fatalf("domain mismatch")
	}
	for i := range src.Items {
		if !reflect.DeepEqual(got.Items[i].Entries, src.Items[i].Entries) &&
			!(len(got.Items[i].Entries) == 0 && len(src.Items[i].Entries) == 0) {
			t.Fatalf("item %d mismatch: got %+v want %+v", i, got.Items[i], src.Items[i])
		}
	}
}

func TestReadCommentsAndBlanks(t *testing.T) {
	in := `
# a comment
model basic

domain 3
# another
t 0 0.5
t 2 0.25
`
	src, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	b := src.(*pdata.Basic)
	if b.N != 3 || len(b.Tuples) != 2 || b.Tuples[1].Item != 2 {
		t.Fatalf("parsed %+v", b)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"no model":          "domain 5\n",
		"unknown model":     "model nope\n",
		"bad domain":        "model basic\ndomain zero\n",
		"tuple before dom":  "model basic\nt 0 0.5\n",
		"bad basic tuple":   "model basic\ndomain 2\nt x 0.5\n",
		"bad alternative":   "model tuple\ndomain 2\nt 0-0.5\n",
		"empty tuple":       "model tuple\ndomain 2\nt\n",
		"v in basic":        "model basic\ndomain 2\nv 0 1:0.5\n",
		"bad item":          "model value\ndomain 2\nv 9 1:0.5\n",
		"bad entry":         "model value\ndomain 2\nv 0 1;0.5\n",
		"unknown directive": "model basic\ndomain 2\nq 1\n",
		"empty input":       "",
		"invalid data":      "model basic\ndomain 2\nt 0 1.5\n", // prob > 1 fails Validate
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Read accepted invalid input", name)
		}
	}
}

func TestWriteSkipsEmptyValueItems(t *testing.T) {
	vp := &pdata.ValuePDF{N: 3, Items: []pdata.ItemPDF{
		{},
		{Entries: []pdata.FreqProb{{Freq: 2, Prob: 0.5}}},
		{},
	}}
	var buf bytes.Buffer
	if err := Write(&buf, vp); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\nv "); got != 1 {
		t.Fatalf("wrote %d item lines, want 1:\n%s", got, buf.String())
	}
	back, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.(*pdata.ValuePDF).Items[1].Entries[0].Freq != 2 {
		t.Fatal("value lost in roundtrip")
	}
}
