// Package textio reads and writes probabilistic datasets in a simple
// line-oriented text format shared by the CLI tools:
//
//	# comments and blank lines are ignored
//	model basic|tuple|value
//	domain <n>
//	t <item> <prob>                  (basic: one line per tuple)
//	t <item>:<prob> <item>:<prob>…   (tuple pdf: one line per tuple)
//	v <item> <freq>:<prob>…          (value pdf: one line per item)
package textio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"probsyn/internal/pdata"
)

// Write serializes a source. Float formatting uses %.17g so a write/read
// round trip is exact.
func Write(w io.Writer, src pdata.Source) error {
	bw := bufio.NewWriter(w)
	switch s := src.(type) {
	case *pdata.Basic:
		fmt.Fprintf(bw, "model basic\ndomain %d\n", s.N)
		for _, t := range s.Tuples {
			fmt.Fprintf(bw, "t %d %.17g\n", t.Item, t.Prob)
		}
	case *pdata.TuplePDF:
		fmt.Fprintf(bw, "model tuple\ndomain %d\n", s.N)
		for k := range s.Tuples {
			bw.WriteString("t")
			for _, a := range s.Tuples[k].Alts {
				fmt.Fprintf(bw, " %d:%.17g", a.Item, a.Prob)
			}
			bw.WriteString("\n")
		}
	case *pdata.ValuePDF:
		fmt.Fprintf(bw, "model value\ndomain %d\n", s.N)
		for i := range s.Items {
			if len(s.Items[i].Entries) == 0 {
				continue
			}
			fmt.Fprintf(bw, "v %d", i)
			for _, e := range s.Items[i].Entries {
				fmt.Fprintf(bw, " %.17g:%.17g", e.Freq, e.Prob)
			}
			bw.WriteString("\n")
		}
	default:
		return fmt.Errorf("textio: unknown source type %T", src)
	}
	return bw.Flush()
}

// Read parses a dataset. The returned source is validated.
func Read(r io.Reader) (pdata.Source, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var (
		model  string
		domain = -1
		basic  *pdata.Basic
		tuple  *pdata.TuplePDF
		value  *pdata.ValuePDF
		lineNo int
	)
	fail := func(format string, args ...any) error {
		return fmt.Errorf("textio: line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "model":
			if len(fields) != 2 {
				return nil, fail("model line needs one argument")
			}
			model = fields[1]
			switch model {
			case "basic", "tuple", "value":
			default:
				return nil, fail("unknown model %q", model)
			}
		case "domain":
			if len(fields) != 2 {
				return nil, fail("domain line needs one argument")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				return nil, fail("bad domain %q", fields[1])
			}
			domain = n
			switch model {
			case "basic":
				basic = &pdata.Basic{N: n}
			case "tuple":
				tuple = &pdata.TuplePDF{N: n}
			case "value":
				value = &pdata.ValuePDF{N: n, Items: make([]pdata.ItemPDF, n)}
			default:
				return nil, fail("domain before model")
			}
		case "t":
			if domain < 0 {
				return nil, fail("tuple before domain")
			}
			switch model {
			case "basic":
				if len(fields) != 3 {
					return nil, fail("basic tuple needs item and probability")
				}
				item, err1 := strconv.Atoi(fields[1])
				prob, err2 := strconv.ParseFloat(fields[2], 64)
				if err1 != nil || err2 != nil {
					return nil, fail("bad basic tuple %q", line)
				}
				basic.Tuples = append(basic.Tuples, pdata.BasicTuple{Item: item, Prob: prob})
			case "tuple":
				t := pdata.Tuple{}
				for _, f := range fields[1:] {
					item, prob, err := parsePair(f)
					if err != nil {
						return nil, fail("bad alternative %q: %v", f, err)
					}
					t.Alts = append(t.Alts, pdata.Alternative{Item: int(item), Prob: prob})
				}
				if len(t.Alts) == 0 {
					return nil, fail("tuple with no alternatives")
				}
				tuple.Tuples = append(tuple.Tuples, t)
			default:
				return nil, fail("'t' line in %q model", model)
			}
		case "v":
			if model != "value" {
				return nil, fail("'v' line in %q model", model)
			}
			if domain < 0 {
				return nil, fail("item before domain")
			}
			if len(fields) < 2 {
				return nil, fail("value line needs an item")
			}
			item, err := strconv.Atoi(fields[1])
			if err != nil || item < 0 || item >= domain {
				return nil, fail("bad item %q", fields[1])
			}
			var ip pdata.ItemPDF
			for _, f := range fields[2:] {
				freq, prob, err := parsePair(f)
				if err != nil {
					return nil, fail("bad entry %q: %v", f, err)
				}
				ip.Entries = append(ip.Entries, pdata.FreqProb{Freq: freq, Prob: prob})
			}
			value.Items[item] = ip
		default:
			return nil, fail("unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("textio: %w", err)
	}
	var src pdata.Source
	var err error
	switch model {
	case "basic":
		src, err = basic, basic.Validate()
	case "tuple":
		src, err = tuple, tuple.Validate()
	case "value":
		src, err = value, value.Validate()
	case "":
		return nil, fmt.Errorf("textio: no model declared")
	}
	if err != nil {
		return nil, err
	}
	return src, nil
}

// parsePair parses "a:b" into two floats.
func parsePair(s string) (float64, float64, error) {
	colon := strings.IndexByte(s, ':')
	if colon < 0 {
		return 0, 0, fmt.Errorf("missing ':'")
	}
	a, err := strconv.ParseFloat(s[:colon], 64)
	if err != nil {
		return 0, 0, err
	}
	b, err := strconv.ParseFloat(s[colon+1:], 64)
	if err != nil {
		return 0, 0, err
	}
	return a, b, nil
}
