// Package wavelet builds B-term Haar wavelet synopses over probabilistic
// data (§4 of Cormode & Garofalakis): the SSE-optimal synopsis of Theorem 7
// (retain the B largest expected normalized coefficients) and the
// restricted dynamic program of Theorem 8 for non-SSE error metrics.
package wavelet

import (
	"fmt"
	"sort"

	"probsyn/internal/haar"
)

// Synopsis is a sparse set of retained (unnormalized) Haar coefficients
// over a power-of-two domain of size N. Coefficients not listed are zero.
type Synopsis struct {
	N       int
	Indices []int     // sorted ascending
	Values  []float64 // unnormalized coefficient values, parallel to Indices
	// Cost is the synopsis's expected error under the objective it was
	// built for (expected SSE for BuildSSE, the restricted/unrestricted
	// DP's metric otherwise). Zero for hand-assembled synopses.
	Cost float64
}

// B returns the number of retained coefficients.
func (s *Synopsis) B() int { return len(s.Indices) }

// Terms returns the synopsis size in terms (retained coefficients),
// implementing the shared synopsis interface (internal/synopsis).
func (s *Synopsis) Terms() int { return len(s.Indices) }

// ErrorCost returns the expected error recorded at build time,
// implementing the shared synopsis interface.
func (s *Synopsis) ErrorCost() float64 { return s.Cost }

// Domain returns the (padded, power-of-two) item-domain size.
func (s *Synopsis) Domain() int { return s.N }

// Validate checks shape invariants.
func (s *Synopsis) Validate() error {
	if !haar.IsPow2(s.N) {
		return fmt.Errorf("wavelet: domain %d not a power of two", s.N)
	}
	if len(s.Indices) != len(s.Values) {
		return fmt.Errorf("wavelet: %d indices vs %d values", len(s.Indices), len(s.Values))
	}
	for k, idx := range s.Indices {
		if idx < 0 || idx >= s.N {
			return fmt.Errorf("wavelet: coefficient index %d outside [0,%d)", idx, s.N)
		}
		if k > 0 && idx <= s.Indices[k-1] {
			return fmt.Errorf("wavelet: indices not strictly ascending at %d", k)
		}
	}
	return nil
}

// Dense returns the full coefficient array with zeros for dropped entries.
func (s *Synopsis) Dense() []float64 {
	c := make([]float64, s.N)
	for k, idx := range s.Indices {
		c[idx] = s.Values[k]
	}
	return c
}

// Reconstruct returns the synopsis's approximation of the full data array.
func (s *Synopsis) Reconstruct() []float64 { return haar.Inverse(s.Dense()) }

// Estimate returns the approximation of item i's frequency in O(log N),
// summing only retained ancestors of leaf i.
func (s *Synopsis) Estimate(i int) float64 {
	v := 0.0
	for _, idx := range haar.Path(i, s.N) {
		k := sort.SearchInts(s.Indices, idx)
		if k < len(s.Indices) && s.Indices[k] == idx {
			v += haar.Sign(idx, i, s.N) * s.Values[k]
		}
	}
	return v
}

// RangeSum estimates the total frequency over the inclusive item range
// [lo, hi] from the synopsis.
func (s *Synopsis) RangeSum(lo, hi int) float64 {
	if lo < 0 {
		lo = 0
	}
	if hi >= s.N {
		hi = s.N - 1
	}
	total := 0.0
	// Each retained coefficient contributes (overlap with + half) -
	// (overlap with - half), scaled by its value; the average contributes
	// its value times the range width.
	for k, idx := range s.Indices {
		val := s.Values[k]
		cLo, cHi := haar.Support(idx, s.N)
		a, b := max(lo, cLo), min(hi, cHi)
		if a > b {
			continue
		}
		if idx == 0 {
			total += val * float64(b-a+1)
			continue
		}
		mid := cLo + haar.SupportSize(idx, s.N)/2 // first leaf of the - half
		plus := overlap(a, b, cLo, mid-1)
		minus := overlap(a, b, mid, cHi)
		total += val * float64(plus-minus)
	}
	return total
}

func overlap(a, b, lo, hi int) int {
	s, e := max(a, lo), min(b, hi)
	if s > e {
		return 0
	}
	return e - s + 1
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// fromDense builds a sparse synopsis from a dense coefficient array,
// keeping the listed indices.
func fromDense(c []float64, keep []int) *Synopsis {
	idx := append([]int(nil), keep...)
	sort.Ints(idx)
	s := &Synopsis{N: len(c), Indices: idx, Values: make([]float64, len(idx))}
	for k, i := range idx {
		s.Values[k] = c[i]
	}
	return s
}
