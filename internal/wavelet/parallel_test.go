package wavelet_test

// White-box-adjacent tests that the parallel wavelet DP schedule is
// bit-identical to the serial one: same cost (exact float equality), same
// retained coefficient indices, same stored values, at parallelism 1, 2,
// and NumCPU. Run under -race this also exercises the engine pool inside
// the level sweeps for data races.

import (
	"math/rand"
	"runtime"
	"testing"

	"probsyn/internal/engine"
	"probsyn/internal/metric"
	"probsyn/internal/pdata"
	"probsyn/internal/ptest"
	"probsyn/internal/wavelet"
)

// finePool returns a pool whose grain is low enough that small test
// domains actually take the parallel level sweeps.
func finePool(workers int) *engine.Pool {
	return engine.New(engine.Options{Workers: workers, Grain: 1})
}

// synopsesIdentical asserts two synopses are bit-identical.
func synopsesIdentical(t *testing.T, label string, serial, par *wavelet.Synopsis, cs, cp float64) {
	t.Helper()
	if cs != cp {
		t.Fatalf("%s: cost %v != serial %v (not bit-identical)", label, cp, cs)
	}
	if serial.N != par.N || serial.Cost != par.Cost {
		t.Fatalf("%s: (N=%d, Cost=%v) != serial (N=%d, Cost=%v)", label, par.N, par.Cost, serial.N, serial.Cost)
	}
	if len(serial.Indices) != len(par.Indices) {
		t.Fatalf("%s: %d coefficients != serial %d", label, len(par.Indices), len(serial.Indices))
	}
	for k := range serial.Indices {
		if serial.Indices[k] != par.Indices[k] || serial.Values[k] != par.Values[k] {
			t.Fatalf("%s: coefficient %d is (%d, %v), serial (%d, %v)",
				label, k, par.Indices[k], par.Values[k], serial.Indices[k], serial.Values[k])
		}
	}
}

func TestBuildRestrictedPoolBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	workerCounts := []int{1, 2, runtime.NumCPU(), 0}
	sources := map[string]pdata.Source{
		"value": ptest.RandomValuePDF(rng, 16, 3),
		"tuple": ptest.RandomTuplePDF(rng, 16, 24, 3),
		"basic": ptest.RandomBasic(rng, 16, 20),
	}
	for srcName, src := range sources {
		for _, k := range []metric.Kind{metric.SSEFixed, metric.SSRE,
			metric.SAE, metric.SARE, metric.MAE, metric.MARE} {
			for _, B := range []int{0, 1, 4, 9} {
				serial, cs, err := wavelet.BuildRestricted(src, k, metric.Params{C: 0.5}, B)
				if err != nil {
					t.Fatalf("%s/%v B=%d serial: %v", srcName, k, B, err)
				}
				for _, w := range workerCounts {
					par, cp, err := wavelet.BuildRestrictedPool(src, k, metric.Params{C: 0.5}, B, finePool(w))
					if err != nil {
						t.Fatalf("%s/%v B=%d workers=%d: %v", srcName, k, B, w, err)
					}
					synopsesIdentical(t, srcName+"/"+k.String(), serial, par, cs, cp)
				}
			}
		}
	}
}

func TestBuildUnrestrictedPoolBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	src := ptest.RandomValuePDF(rng, 8, 3)
	for _, k := range []metric.Kind{metric.SAE, metric.MAE} {
		for _, q := range []int{0, 2} {
			for _, B := range []int{1, 3} {
				serial, cs, err := wavelet.BuildUnrestricted(src, k, metric.Params{C: 0.5}, B, q)
				if err != nil {
					t.Fatal(err)
				}
				for _, w := range []int{2, runtime.NumCPU()} {
					par, cp, err := wavelet.BuildUnrestrictedPool(src, k, metric.Params{C: 0.5}, B, q, finePool(w))
					if err != nil {
						t.Fatal(err)
					}
					synopsesIdentical(t, k.String(), serial, par, cs, cp)
				}
			}
		}
	}
}

// A dynamic (work-stealing) pool cuts finer chunks pulled off an atomic
// cursor; the DP's slots are range-derived, so the synopsis must still be
// bit-identical to serial — on the ragged unrestricted levels especially.
func TestBuildUnrestrictedDynamicPoolBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	src := ptest.RandomValuePDF(rng, 16, 3)
	for _, k := range []metric.Kind{metric.SAE, metric.MAE} {
		for _, q := range []int{0, 2} {
			serial, cs, err := wavelet.BuildUnrestricted(src, k, metric.Params{C: 0.5}, 3, q)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{2, runtime.NumCPU()} {
				dyn := engine.New(engine.Options{Workers: w, Grain: 1, Dynamic: true})
				par, cp, err := wavelet.BuildUnrestrictedPool(src, k, metric.Params{C: 0.5}, 3, q, dyn)
				if err != nil {
					t.Fatal(err)
				}
				synopsesIdentical(t, "dynamic/"+k.String(), serial, par, cs, cp)
			}
		}
	}
}

// The Workers entry points at the default grain must agree with serial
// too (they fall back to serial sweeps on small domains, but the whole
// build must still be deterministic end to end).
func TestBuildRestrictedWorkersDefaultGrain(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	src := ptest.RandomValuePDF(rng, 32, 3)
	serial, cs, err := wavelet.BuildRestricted(src, metric.SAE, metric.Params{C: 0.5}, 6)
	if err != nil {
		t.Fatal(err)
	}
	par, cp, err := wavelet.BuildRestrictedWorkers(src, metric.SAE, metric.Params{C: 0.5}, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	synopsesIdentical(t, "default-grain", serial, par, cs, cp)
}

// Non-power-of-two domains pad; the padded DP must stay deterministic and
// the tiny-domain special cases must not regress across worker counts.
func TestBuildRestrictedPoolTinyDomains(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	for n := 1; n <= 6; n++ {
		src := ptest.RandomValuePDF(rng, n, 3)
		for B := 0; B <= n+1; B++ {
			serial, cs, err := wavelet.BuildRestricted(src, metric.SAE, metric.Params{C: 0.5}, B)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{2, runtime.NumCPU()} {
				par, cp, err := wavelet.BuildRestrictedPool(src, metric.SAE, metric.Params{C: 0.5}, B, finePool(w))
				if err != nil {
					t.Fatal(err)
				}
				synopsesIdentical(t, "tiny", serial, par, cs, cp)
			}
		}
	}
}
