package wavelet_test

// Sharded-build correctness: the SSE merge must be element-identical to
// the unsharded build (the property the cluster's exactness rests on),
// the DP-family merge must cost at least the unsharded optimum and at
// most optimum + Bound, and everything must be bit-identical across
// fan concurrency, worker counts, and budgets.

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"probsyn/internal/metric"
	"probsyn/internal/ptest"
	"probsyn/internal/wavelet"
)

func relClose(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestShardedSSEIdenticalToUnsharded(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{8, 32, 48} { // 48 exercises pad-to-64
		src := ptest.RandomValuePDF(rng, n, 3)
		for _, k := range []int{2, 4, 8} {
			for _, B := range []int{0, 1, 5, 16, n} {
				want, wantRep, err := wavelet.BuildSSE(src, B)
				if err != nil {
					t.Fatal(err)
				}
				for _, conc := range []int{1, runtime.NumCPU()} {
					res, rep, err := wavelet.BuildShardedSSE(src, B, k, conc)
					if err != nil {
						t.Fatalf("n=%d k=%d B=%d: %v", n, k, B, err)
					}
					label := "sse-sharded"
					synopsesIdentical(t, label, want, res.Merged, want.Cost, res.Merged.Cost)
					if *rep != *wantRep {
						t.Fatalf("n=%d k=%d B=%d: report %+v != unsharded %+v", n, k, B, rep, wantRep)
					}
					if res.Bound != 0 {
						t.Fatalf("SSE merge bound = %v, want 0 (exact)", res.Bound)
					}
					// Pieces are the merged synopsis seen from each shard:
					// same reconstruction, shard by shard.
					full := res.Merged.Reconstruct()
					w := res.Merged.N / k
					for s, piece := range res.Pieces {
						if piece.N != w {
							t.Fatalf("piece %d domain %d, want %d", s, piece.N, w)
						}
						for i, v := range piece.Reconstruct() {
							if !relClose(v, full[s*w+i], 1e-9) {
								t.Fatalf("n=%d k=%d B=%d: piece %d item %d reconstructs %v, merged %v",
									n, k, B, s, i, v, full[s*w+i])
							}
						}
					}
				}
			}
		}
	}
}

func TestShardedRestrictedWithinBoundOfOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	p := metric.Params{C: 0.5}
	src := ptest.RandomValuePDF(rng, 32, 3)
	for _, kind := range []metric.Kind{metric.SAE, metric.SSEFixed, metric.MAE} {
		for _, k := range []int{2, 4} {
			for _, B := range []int{k, 8, 16} {
				res, err := wavelet.BuildShardedRestricted(src, kind, p, B, k, 0, finePool(2), 2)
				if err != nil {
					t.Fatalf("%v k=%d B=%d: %v", kind, k, B, err)
				}
				if err := res.Merged.Validate(); err != nil {
					t.Fatalf("%v k=%d B=%d: merged invalid: %v", kind, k, B, err)
				}
				if got := len(res.Merged.Indices); got > B {
					t.Fatalf("%v k=%d B=%d: merged has %d terms", kind, k, B, got)
				}
				_, opt, err := wavelet.BuildRestrictedPool(src, kind, p, B, nil)
				if err != nil {
					t.Fatal(err)
				}
				if res.Merged.Cost < opt && !relClose(res.Merged.Cost, opt, 1e-9) {
					t.Fatalf("%v k=%d B=%d: sharded cost %v below optimum %v", kind, k, B, res.Merged.Cost, opt)
				}
				if res.Merged.Cost > opt+res.Bound && !relClose(res.Merged.Cost, opt+res.Bound, 1e-9) {
					t.Fatalf("%v k=%d B=%d: sharded cost %v exceeds optimum %v + bound %v",
						kind, k, B, res.Merged.Cost, opt, res.Bound)
				}
				// The reported cost is the true expected error of the
				// merged synopsis (up to summation order).
				pe, err := wavelet.NewPointErrors(src, kind, p)
				if err != nil {
					t.Fatal(err)
				}
				if truth := pe.SynopsisError(res.Merged); !relClose(truth, res.Merged.Cost, 1e-9) {
					t.Fatalf("%v k=%d B=%d: merged cost %v but exact evaluation %v",
						kind, k, B, res.Merged.Cost, truth)
				}
			}
		}
	}
}

// TestShardedRestrictedDeterministic: fan concurrency, pool workers, and
// (by slot-indexed merging) shard completion order cannot change a bit.
func TestShardedRestrictedDeterministic(t *testing.T) {
	src := ptest.RandomValuePDF(rand.New(rand.NewSource(7)), 64, 3)
	p := metric.Params{C: 0.5}
	base, err := wavelet.BuildShardedRestricted(src, metric.SAE, p, 12, 4, 0, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, runtime.NumCPU()} {
		for _, conc := range []int{1, 2, 4} {
			res, err := wavelet.BuildShardedRestricted(src, metric.SAE, p, 12, 4, 0, finePool(workers), conc)
			if err != nil {
				t.Fatal(err)
			}
			synopsesIdentical(t, "sharded-restricted", base.Merged, res.Merged, base.Merged.Cost, res.Merged.Cost)
			if res.Bound != base.Bound {
				t.Fatalf("workers=%d conc=%d: bound %v != %v", workers, conc, res.Bound, base.Bound)
			}
			for s := range res.Pieces {
				synopsesIdentical(t, "piece", base.Pieces[s], res.Pieces[s], base.Pieces[s].Cost, res.Pieces[s].Cost)
			}
		}
	}
}

// TestShardedRestrictedPiecesComposeMerged: each piece reconstructs the
// merged synopsis's restriction to its shard — the invariant scatter/
// gather serving relies on.
func TestShardedRestrictedPiecesComposeMerged(t *testing.T) {
	src := ptest.RandomValuePDF(rand.New(rand.NewSource(11)), 32, 3)
	res, err := wavelet.BuildShardedRestricted(src, metric.SSEFixed, metric.Params{}, 10, 4, 0, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	full := res.Merged.Reconstruct()
	w := res.Merged.N / 4
	for s, piece := range res.Pieces {
		for i, v := range piece.Reconstruct() {
			if !relClose(v, full[s*w+i], 1e-9) {
				t.Fatalf("piece %d item %d reconstructs %v, merged %v", s, i, v, full[s*w+i])
			}
		}
	}
}

func TestShardedRestrictedQuantizedWithinBound(t *testing.T) {
	src := ptest.RandomValuePDF(rand.New(rand.NewSource(29)), 64, 3)
	p := metric.Params{C: 0.5}
	const B, k, q = 12, 4, 4
	res, err := wavelet.BuildShardedRestricted(src, metric.SAE, p, B, k, q, finePool(2), 2)
	if err != nil {
		t.Fatal(err)
	}
	_, opt, err := wavelet.BuildRestrictedPool(src, metric.SAE, p, B, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged.Cost < opt && !relClose(res.Merged.Cost, opt, 1e-9) {
		t.Fatalf("quantized sharded cost %v below exact optimum %v", res.Merged.Cost, opt)
	}
	if res.Merged.Cost > opt+res.Bound {
		t.Fatalf("quantized sharded cost %v exceeds optimum %v + bound %v", res.Merged.Cost, opt, res.Bound)
	}
}

func TestShardedArgumentErrors(t *testing.T) {
	src := ptest.RandomValuePDF(rand.New(rand.NewSource(3)), 16, 2)
	if _, _, err := wavelet.BuildShardedSSE(src, 4, 3, 1); err == nil {
		t.Fatal("k=3 (not a power of two) accepted")
	}
	if _, _, err := wavelet.BuildShardedSSE(src, 4, 1, 1); err == nil {
		t.Fatal("k=1 accepted by the sharded merge")
	}
	if _, _, err := wavelet.BuildShardedSSE(src, 4, 32, 1); err == nil {
		t.Fatal("k > n accepted")
	}
	if _, err := wavelet.BuildShardedRestricted(src, metric.SAE, metric.Params{C: 0.5}, 3, 4, 0, nil, 1); err == nil {
		t.Fatal("B < k accepted by the sharded restricted build")
	}
}
