package wavelet_test

import (
	"math"
	"math/rand"
	"testing"

	"probsyn/internal/metric"
	"probsyn/internal/pdata"
	"probsyn/internal/ptest"
	"probsyn/internal/wavelet"
)

// With q=0 the candidate grid is exactly {mu_j}, so the unrestricted DP
// must coincide with the restricted DP.
func TestUnrestrictedQZeroEqualsRestricted(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	p := metric.Params{C: 0.5}
	for trial := 0; trial < 6; trial++ {
		src := ptest.RandomValuePDF(rng, 8, 3)
		for _, k := range []metric.Kind{metric.SAE, metric.MAE} {
			for B := 0; B <= 3; B++ {
				_, restricted, err := wavelet.BuildRestricted(src, k, p, B)
				if err != nil {
					t.Fatal(err)
				}
				_, unrestricted, err := wavelet.BuildUnrestricted(src, k, p, B, 0)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(unrestricted-restricted) > 1e-8*(1+restricted) {
					t.Fatalf("%v trial %d B=%d: q=0 unrestricted %v != restricted %v",
						k, trial, B, unrestricted, restricted)
				}
			}
		}
	}
}

// The expected values are always candidates, so the unrestricted optimum
// can never be worse than the restricted one.
func TestUnrestrictedNeverWorseThanRestricted(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	p := metric.Params{C: 0.5}
	for trial := 0; trial < 6; trial++ {
		src := ptest.RandomValuePDF(rng, 8, 3)
		for _, k := range []metric.Kind{metric.SAE, metric.SARE} {
			for B := 1; B <= 3; B++ {
				_, restricted, err := wavelet.BuildRestricted(src, k, p, B)
				if err != nil {
					t.Fatal(err)
				}
				_, unrestricted, err := wavelet.BuildUnrestricted(src, k, p, B, 3)
				if err != nil {
					t.Fatal(err)
				}
				if unrestricted > restricted+1e-8*(1+restricted) {
					t.Fatalf("%v trial %d B=%d: unrestricted %v worse than restricted %v",
						k, trial, B, unrestricted, restricted)
				}
			}
		}
	}
}

// The restricted solution can be strictly suboptimal (§2.2: "this
// restriction can lead to sub-optimal synopses for non-SSE error"); the
// unrestricted DP must find a strictly better synopsis on a witness input.
func TestUnrestrictedBeatsRestrictedOnWitness(t *testing.T) {
	// One certain item with a large frequency, three at zero: with B=1
	// under SAE the restricted DP must use a coefficient of the expected
	// transform, while a free value can do better by targeting the
	// median-optimal representative for the skewed support.
	src := &pdata.ValuePDF{N: 4, Items: []pdata.ItemPDF{
		{Entries: []pdata.FreqProb{{Freq: 8, Prob: 0.5}, {Freq: 2, Prob: 0.5}}},
		{Entries: []pdata.FreqProb{{Freq: 1, Prob: 1}}},
		{Entries: []pdata.FreqProb{{Freq: 1, Prob: 1}}},
		{Entries: []pdata.FreqProb{{Freq: 1, Prob: 1}}},
	}}
	p := metric.Params{C: 0.5}
	_, restricted, err := wavelet.BuildRestricted(src, metric.SAE, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, unrestricted, err := wavelet.BuildUnrestricted(src, metric.SAE, p, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if unrestricted >= restricted-1e-9 {
		t.Fatalf("unrestricted %v should strictly beat restricted %v on witness", unrestricted, restricted)
	}
}

// DP result must equal the error of the synopsis it returns.
func TestUnrestrictedSelfConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	p := metric.Params{C: 0.5}
	for trial := 0; trial < 5; trial++ {
		src := ptest.RandomValuePDF(rng, 8, 3)
		for _, k := range []metric.Kind{metric.SAE, metric.MAE} {
			pe, err := wavelet.NewPointErrors(src, k, p)
			if err != nil {
				t.Fatal(err)
			}
			syn, got, err := wavelet.BuildUnrestricted(src, k, p, 2, 2)
			if err != nil {
				t.Fatal(err)
			}
			if err := syn.Validate(); err != nil {
				t.Fatal(err)
			}
			if syn.B() > 2 {
				t.Fatalf("%v: retained %d > budget", k, syn.B())
			}
			if direct := pe.SynopsisError(syn); math.Abs(direct-got) > 1e-8*(1+got) {
				t.Fatalf("%v trial %d: DP reports %v, synopsis evaluates to %v", k, trial, got, direct)
			}
		}
	}
}

func TestUnrestrictedMonotoneInBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	src := ptest.RandomValuePDF(rng, 8, 3)
	p := metric.Params{C: 0.5}
	prev := math.Inf(1)
	for B := 0; B <= 6; B++ {
		_, got, err := wavelet.BuildUnrestricted(src, metric.SAE, p, B, 2)
		if err != nil {
			t.Fatal(err)
		}
		if got > prev+1e-9 {
			t.Fatalf("B=%d: error %v above previous %v", B, got, prev)
		}
		prev = got
	}
}

func TestUnrestrictedTinyDomain(t *testing.T) {
	src := pdata.Deterministic([]float64{5})
	syn, cost, err := wavelet.BuildUnrestricted(src, metric.SAE, metric.Params{C: 1}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cost > 1e-9 || syn.B() != 1 {
		t.Fatalf("n=1: cost %v, B %d", cost, syn.B())
	}
}

func TestUnrestrictedArgumentErrors(t *testing.T) {
	src := pdata.Deterministic([]float64{1})
	if _, _, err := wavelet.BuildUnrestricted(src, metric.SAE, metric.Params{}, -1, 1); err == nil {
		t.Error("negative budget accepted")
	}
	if _, _, err := wavelet.BuildUnrestricted(src, metric.SAE, metric.Params{}, 1, -1); err == nil {
		t.Error("negative quantization accepted")
	}
	if _, _, err := wavelet.BuildUnrestricted(src, metric.SSE, metric.Params{}, 1, 1); err == nil {
		t.Error("clairvoyant SSE accepted")
	}
}
