package wavelet

import (
	"fmt"
	"math"

	"probsyn/internal/engine"
	"probsyn/internal/haar"
	"probsyn/internal/metric"
	"probsyn/internal/numeric"
	"probsyn/internal/pdata"
)

// PointErrors evaluates per-item expected point errors E[err(g_i, v)] at
// arbitrary reconstruction values v in O(log|V|) (absolute metrics) or O(1)
// (squared metrics), from per-item precomputed tables (§4.2: "almost all of
// the actual error computation takes place at the leaf nodes"). Items are
// those of a value pdf padded to the power-of-two wavelet domain.
type PointErrors struct {
	kind metric.Kind
	p    metric.Params
	n    int
	vs   pdata.ValueSet
	// absolute family: per-item cumulative weight / weight·value over V
	itemW, itemS []float64
	totW, totS   []float64
	// squared family: per-item x=Σpwv², y=Σpwv, z=Σpw
	x, y, z []float64
}

// NewPointErrors builds the evaluator for vp (already padded) under kind.
// Supported kinds: SSEFixed, SSRE, SAE, SARE, MAE, MARE.
func NewPointErrors(vp *pdata.ValuePDF, kind metric.Kind, p metric.Params) (*PointErrors, error) {
	pe := &PointErrors{kind: kind, p: p, n: vp.N}
	switch kind {
	case metric.SSEFixed, metric.SSRE:
		pe.x = make([]float64, vp.N)
		pe.y = make([]float64, vp.N)
		pe.z = make([]float64, vp.N)
		w0 := kind.Weight(0, p)
		for i := 0; i < vp.N; i++ {
			var xi, yi, zi float64
			for _, e := range vp.Items[i].Entries {
				if e.Freq == 0 {
					continue
				}
				w := kind.Weight(e.Freq, p)
				pw := e.Prob * w
				xi += pw * e.Freq * e.Freq
				yi += pw * e.Freq
				zi += pw
			}
			zi += vp.Items[i].ZeroProb() * w0
			pe.x[i], pe.y[i], pe.z[i] = xi, yi, zi
		}
	case metric.SAE, metric.SARE, metric.MAE, metric.MARE:
		vs := pdata.Support(vp)
		tab, err := pdata.NewPMFTable(vp, vs)
		if err != nil {
			return nil, err
		}
		k := vs.Len()
		pe.vs = vs
		pe.itemW = make([]float64, vp.N*k)
		pe.itemS = make([]float64, vp.N*k)
		pe.totW = make([]float64, vp.N)
		pe.totS = make([]float64, vp.N)
		for i := 0; i < vp.N; i++ {
			var cw, cs float64
			for j := 0; j < k; j++ {
				w := tab.P[i][j] * kind.Weight(vs.Values[j], p)
				cw += w
				cs += w * vs.Values[j]
				pe.itemW[i*k+j] = cw
				pe.itemS[i*k+j] = cs
			}
			pe.totW[i], pe.totS[i] = cw, cs
		}
	default:
		return nil, fmt.Errorf("wavelet: PointErrors does not support %v (use BuildSSE for SSE)", kind)
	}
	return pe, nil
}

// Err returns E[err(g_i, v)].
func (pe *PointErrors) Err(i int, v float64) float64 {
	switch pe.kind {
	case metric.SSEFixed, metric.SSRE:
		e := pe.x[i] - 2*v*pe.y[i] + v*v*pe.z[i]
		if e < 0 {
			e = 0
		}
		return e
	default:
		k := pe.vs.Len()
		// weight mass at values <= v
		j := numeric.SearchFloats(pe.vs.Values, v) // first index with value >= v
		if j < k && pe.vs.Values[j] == v {
			j++ // include the exact match in the <= side
		}
		var wle, sle float64
		if j > 0 {
			wle = pe.itemW[i*k+j-1]
			sle = pe.itemS[i*k+j-1]
		}
		e := v*(2*wle-pe.totW[i]) + pe.totS[i] - 2*sle
		if e < 0 {
			e = 0
		}
		return e
	}
}

// Cumulative reports whether the evaluator's metric sums over items.
func (pe *PointErrors) Cumulative() bool { return pe.kind.Cumulative() }

// errSlack bounds |Err(i, v') - Err(i, v)| for any v, v' inside [lo, hi]
// at distance |v' - v| <= delta: delta times the error function's
// Lipschitz constant over the interval. The squared family's derivative
// 2(vz - y) is monotone in v (z >= 0), so the constant sits at an
// endpoint; the absolute family is piecewise linear with slope
// 2·wle - totW, bounded by totW in magnitude.
func (pe *PointErrors) errSlack(i int, lo, hi, delta float64) float64 {
	switch pe.kind {
	case metric.SSEFixed, metric.SSRE:
		m := math.Max(math.Abs(pe.z[i]*lo-pe.y[i]), math.Abs(pe.z[i]*hi-pe.y[i]))
		return 2 * m * delta
	default:
		return pe.totW[i] * delta
	}
}

// SynopsisError evaluates the expected error of an arbitrary synopsis under
// the evaluator's metric: Σ_i E[err(g_i, rec_i)] for cumulative metrics,
// max_i for maximum metrics.
func (pe *PointErrors) SynopsisError(syn *Synopsis) float64 {
	rec := syn.Reconstruct()
	if pe.Cumulative() {
		var acc numeric.Accumulator
		for i, r := range rec {
			acc.Add(pe.Err(i, r))
		}
		return acc.Value()
	}
	worst := 0.0
	for i, r := range rec {
		if e := pe.Err(i, r); e > worst {
			worst = e
		}
	}
	return worst
}

// BuildRestricted solves the restricted thresholding problem (§4.2,
// Theorem 8): choose which coefficients to retain, with every retained
// coefficient fixed at its expected value, minimizing the expected target
// error. It runs the coefficient-tree dynamic program OPTW[j, b, v],
// enumerating incoming values v over ancestor subsets (the O(n²·B²)
// algorithm the paper describes for the restricted case) as a bottom-up,
// level-by-level sweep over dense per-level tables (see treedp.go).
//
// The budget semantics are "at most B coefficients". Returns the synopsis
// and its optimal expected error. BuildRestricted is single-threaded
// shorthand for BuildRestrictedPool with a nil pool.
func BuildRestricted(src pdata.Source, kind metric.Kind, p metric.Params, B int) (*Synopsis, float64, error) {
	return BuildRestrictedPool(src, kind, p, B, nil)
}

// BuildRestrictedWorkers is BuildRestricted with the DP's level sweeps
// spread across `workers` goroutines (workers <= 0 means one per CPU) at
// the engine's default grain.
func BuildRestrictedWorkers(src pdata.Source, kind metric.Kind, p metric.Params, B, workers int) (*Synopsis, float64, error) {
	return BuildRestrictedPool(src, kind, p, B, engine.New(engine.Options{Workers: workers}))
}

// BuildRestrictedPool is BuildRestricted scheduled on an explicit engine
// pool (nil means serial). The parallel schedule is deterministic: every
// DP state is an independent slot computed in the serial operation order,
// so the synopsis — coefficients, values, and cost — is bit-identical at
// any worker count.
func BuildRestrictedPool(src pdata.Source, kind metric.Kind, p metric.Params, B int, pool *engine.Pool) (*Synopsis, float64, error) {
	sw, err := SweepRestrictedPool(src, kind, p, B, pool)
	if err != nil {
		return nil, 0, err
	}
	syn := sw.at(min(B, sw.bmax))
	return syn, syn.Cost, nil
}

// BuildRestrictedApprox solves the restricted problem approximately with
// incoming values quantized onto per-node grids of q >= 2 points (§4.2's
// bound-and-quantize argument): the DP's state space drops from O(n²B²)
// to O(n·q·B), reaching domains the exact DP cannot, at a bounded
// additive suboptimality (see Sweep.ErrorBound). The returned cost is
// the synopsis's exactly-evaluated expected error, so it is never below
// the exact optimum and converges to it as q grows; q at least half the
// padded domain size degenerates to the exact DP. Results are
// bit-identical at any worker count.
func BuildRestrictedApprox(src pdata.Source, kind metric.Kind, p metric.Params, B, q int) (*Synopsis, float64, error) {
	return BuildRestrictedApproxPool(src, kind, p, B, q, nil)
}

// BuildRestrictedApproxPool is BuildRestrictedApprox scheduled on an
// explicit engine pool (nil means serial).
func BuildRestrictedApproxPool(src pdata.Source, kind metric.Kind, p metric.Params, B, q int, pool *engine.Pool) (*Synopsis, float64, error) {
	sw, err := SweepRestrictedApproxPool(src, kind, p, B, q, pool)
	if err != nil {
		return nil, 0, err
	}
	syn := sw.at(min(B, sw.bmax))
	return syn, syn.Cost, nil
}

// restrictedSingleton solves the n == 1 domain at budget b: retain c0 at
// its expected value when the budget allows and it is no worse than
// dropping.
func restrictedSingleton(pe *PointErrors, c0 float64, b int) *Synopsis {
	syn := &Synopsis{N: 1}
	errNo := pe.Err(0, 0)
	if b >= 1 && pe.Err(0, c0) <= errNo {
		syn.Indices = []int{0}
		syn.Values = []float64{c0}
		syn.Cost = pe.Err(0, c0)
		return syn
	}
	syn.Cost = errNo
	return syn
}

// restrictedSingletonForced is restrictedSingleton with the retain
// decision forced: the sharded merge pins every shard's c0.
func restrictedSingletonForced(pe *PointErrors, c0 float64) *Synopsis {
	return &Synopsis{N: 1, Indices: []int{0}, Values: []float64{c0}, Cost: pe.Err(0, c0)}
}

// padValuePDF extends a value pdf with deterministic-zero items up to the
// next power-of-two domain size.
func padValuePDF(vp *pdata.ValuePDF) *pdata.ValuePDF {
	n := haar.Pow2Ceil(vp.N)
	if n == vp.N {
		return vp
	}
	out := &pdata.ValuePDF{N: n, Items: make([]pdata.ItemPDF, n)}
	copy(out.Items, vp.Items)
	for i := vp.N; i < n; i++ {
		out.Items[i] = pdata.ItemPDF{Entries: []pdata.FreqProb{{Freq: 0, Prob: 1}}}
	}
	return out
}
