package wavelet

import (
	"fmt"
	"math"

	"probsyn/internal/haar"
	"probsyn/internal/metric"
	"probsyn/internal/numeric"
	"probsyn/internal/pdata"
)

// PointErrors evaluates per-item expected point errors E[err(g_i, v)] at
// arbitrary reconstruction values v in O(log|V|) (absolute metrics) or O(1)
// (squared metrics), from per-item precomputed tables (§4.2: "almost all of
// the actual error computation takes place at the leaf nodes"). Items are
// those of a value pdf padded to the power-of-two wavelet domain.
type PointErrors struct {
	kind metric.Kind
	p    metric.Params
	n    int
	vs   pdata.ValueSet
	// absolute family: per-item cumulative weight / weight·value over V
	itemW, itemS []float64
	totW, totS   []float64
	// squared family: per-item x=Σpwv², y=Σpwv, z=Σpw
	x, y, z []float64
}

// NewPointErrors builds the evaluator for vp (already padded) under kind.
// Supported kinds: SSEFixed, SSRE, SAE, SARE, MAE, MARE.
func NewPointErrors(vp *pdata.ValuePDF, kind metric.Kind, p metric.Params) (*PointErrors, error) {
	pe := &PointErrors{kind: kind, p: p, n: vp.N}
	switch kind {
	case metric.SSEFixed, metric.SSRE:
		pe.x = make([]float64, vp.N)
		pe.y = make([]float64, vp.N)
		pe.z = make([]float64, vp.N)
		w0 := kind.Weight(0, p)
		for i := 0; i < vp.N; i++ {
			var xi, yi, zi float64
			for _, e := range vp.Items[i].Entries {
				if e.Freq == 0 {
					continue
				}
				w := kind.Weight(e.Freq, p)
				pw := e.Prob * w
				xi += pw * e.Freq * e.Freq
				yi += pw * e.Freq
				zi += pw
			}
			zi += vp.Items[i].ZeroProb() * w0
			pe.x[i], pe.y[i], pe.z[i] = xi, yi, zi
		}
	case metric.SAE, metric.SARE, metric.MAE, metric.MARE:
		vs := pdata.Support(vp)
		tab, err := pdata.NewPMFTable(vp, vs)
		if err != nil {
			return nil, err
		}
		k := vs.Len()
		pe.vs = vs
		pe.itemW = make([]float64, vp.N*k)
		pe.itemS = make([]float64, vp.N*k)
		pe.totW = make([]float64, vp.N)
		pe.totS = make([]float64, vp.N)
		for i := 0; i < vp.N; i++ {
			var cw, cs float64
			for j := 0; j < k; j++ {
				w := tab.P[i][j] * kind.Weight(vs.Values[j], p)
				cw += w
				cs += w * vs.Values[j]
				pe.itemW[i*k+j] = cw
				pe.itemS[i*k+j] = cs
			}
			pe.totW[i], pe.totS[i] = cw, cs
		}
	default:
		return nil, fmt.Errorf("wavelet: PointErrors does not support %v (use BuildSSE for SSE)", kind)
	}
	return pe, nil
}

// Err returns E[err(g_i, v)].
func (pe *PointErrors) Err(i int, v float64) float64 {
	switch pe.kind {
	case metric.SSEFixed, metric.SSRE:
		e := pe.x[i] - 2*v*pe.y[i] + v*v*pe.z[i]
		if e < 0 {
			e = 0
		}
		return e
	default:
		k := pe.vs.Len()
		// weight mass at values <= v
		j := numeric.SearchFloats(pe.vs.Values, v) // first index with value >= v
		if j < k && pe.vs.Values[j] == v {
			j++ // include the exact match in the <= side
		}
		var wle, sle float64
		if j > 0 {
			wle = pe.itemW[i*k+j-1]
			sle = pe.itemS[i*k+j-1]
		}
		e := v*(2*wle-pe.totW[i]) + pe.totS[i] - 2*sle
		if e < 0 {
			e = 0
		}
		return e
	}
}

// Cumulative reports whether the evaluator's metric sums over items.
func (pe *PointErrors) Cumulative() bool { return pe.kind.Cumulative() }

// SynopsisError evaluates the expected error of an arbitrary synopsis under
// the evaluator's metric: Σ_i E[err(g_i, rec_i)] for cumulative metrics,
// max_i for maximum metrics.
func (pe *PointErrors) SynopsisError(syn *Synopsis) float64 {
	rec := syn.Reconstruct()
	if pe.Cumulative() {
		var acc numeric.Accumulator
		for i, r := range rec {
			acc.Add(pe.Err(i, r))
		}
		return acc.Value()
	}
	worst := 0.0
	for i, r := range rec {
		if e := pe.Err(i, r); e > worst {
			worst = e
		}
	}
	return worst
}

// BuildRestricted solves the restricted thresholding problem (§4.2,
// Theorem 8): choose which coefficients to retain, with every retained
// coefficient fixed at its expected value, minimizing the expected target
// error. It runs the coefficient-tree dynamic program OPTW[j, b, v],
// enumerating incoming values v over ancestor subsets (the O(n²·B²)
// algorithm the paper describes for the restricted case).
//
// The budget semantics are "at most B coefficients". Returns the synopsis
// and its optimal expected error.
func BuildRestricted(src pdata.Source, kind metric.Kind, p metric.Params, B int) (*Synopsis, float64, error) {
	if B < 0 {
		return nil, 0, fmt.Errorf("wavelet: negative budget %d", B)
	}
	vp := padValuePDF(pdata.AsValuePDF(src))
	pe, err := NewPointErrors(vp, kind, p)
	if err != nil {
		return nil, 0, err
	}
	n := vp.N
	cvals := haar.Forward(vp.ExpectedFreqs())
	if B > n {
		B = n
	}
	d := &restrictedDP{
		n: n, B: B, cvals: cvals, pe: pe,
		cumulative: kind.Cumulative(),
		memo:       make(map[uint64][]float64),
	}

	if n == 1 {
		syn := &Synopsis{N: 1}
		errNo := pe.Err(0, 0)
		if B >= 1 && pe.Err(0, cvals[0]) <= errNo {
			syn.Indices = []int{0}
			syn.Values = []float64{cvals[0]}
			syn.Cost = pe.Err(0, cvals[0])
			return syn, syn.Cost, nil
		}
		syn.Cost = errNo
		return syn, errNo, nil
	}

	// Root: decide on c0 (the overall average), then solve node 1.
	noC0 := d.solve(1, 0, 0, 1)
	withC0 := d.solve(1, 1, cvals[0], 1)
	best, retainC0 := noC0[B], false
	if B >= 1 && withC0[B-1] < best {
		best, retainC0 = withC0[B-1], true
	}

	var keep []int
	if retainC0 {
		keep = append(keep, 0)
		d.backtrack(1, 1, cvals[0], 1, B-1, &keep)
	} else {
		d.backtrack(1, 0, 0, 1, B, &keep)
	}
	syn := fromDense(cvals, keep)
	syn.Cost = best
	return syn, best, nil
}

type restrictedDP struct {
	n          int
	B          int
	cvals      []float64
	pe         *PointErrors
	cumulative bool
	memo       map[uint64][]float64
}

func (d *restrictedDP) combine(a, b float64) float64 {
	if d.cumulative {
		return a + b
	}
	return math.Max(a, b)
}

// solve returns res[b] = minimal subtree error of detail node j with at
// most b coefficients retained in the subtree, given incoming value v.
// mask encodes the retain decisions of j's ancestors (c0 at bit 0), which
// uniquely determine v — it exists purely as a memo key.
func (d *restrictedDP) solve(j int, mask uint64, v float64, depth int) []float64 {
	key := uint64(j)<<40 | mask
	if r, ok := d.memo[key]; ok {
		return r
	}
	res := make([]float64, d.B+1)
	vj := d.cvals[j]
	left, right, isLeaf := haar.Children(j, d.n)
	if isLeaf {
		res[0] = d.combine(d.pe.Err(left, v), d.pe.Err(right, v))
		if d.B >= 1 {
			retained := d.combine(d.pe.Err(left, v+vj), d.pe.Err(right, v-vj))
			res[1] = math.Min(res[0], retained)
			for b := 2; b <= d.B; b++ {
				res[b] = res[1]
			}
		}
	} else {
		childMask := mask << 1
		lnr := d.solve(left, childMask, v, depth+1)
		rnr := d.solve(right, childMask, v, depth+1)
		lr := d.solve(left, childMask|1, v+vj, depth+1)
		rr := d.solve(right, childMask|1, v-vj, depth+1)
		for b := 0; b <= d.B; b++ {
			best := math.Inf(1)
			for bl := 0; bl <= b; bl++ {
				if c := d.combine(lnr[bl], rnr[b-bl]); c < best {
					best = c
				}
			}
			if b >= 1 {
				for bl := 0; bl <= b-1; bl++ {
					if c := d.combine(lr[bl], rr[b-1-bl]); c < best {
						best = c
					}
				}
			}
			res[b] = best
		}
	}
	d.memo[key] = res
	return res
}

// backtrack re-derives the argmin decisions of solve and appends retained
// coefficient indices to keep.
func (d *restrictedDP) backtrack(j int, mask uint64, v float64, depth, b int, keep *[]int) {
	res := d.solve(j, mask, v, depth)
	target := res[b]
	vj := d.cvals[j]
	left, right, isLeaf := haar.Children(j, d.n)
	if isLeaf {
		if b >= 1 {
			retained := d.combine(d.pe.Err(left, v+vj), d.pe.Err(right, v-vj))
			if retained <= target {
				*keep = append(*keep, j)
			}
		}
		return
	}
	childMask := mask << 1
	lnr := d.solve(left, childMask, v, depth+1)
	rnr := d.solve(right, childMask, v, depth+1)
	for bl := 0; bl <= b; bl++ {
		if d.combine(lnr[bl], rnr[b-bl]) <= target {
			d.backtrack(left, childMask, v, depth+1, bl, keep)
			d.backtrack(right, childMask, v, depth+1, b-bl, keep)
			return
		}
	}
	lr := d.solve(left, childMask|1, v+vj, depth+1)
	rr := d.solve(right, childMask|1, v-vj, depth+1)
	for bl := 0; bl <= b-1; bl++ {
		if d.combine(lr[bl], rr[b-1-bl]) <= target {
			*keep = append(*keep, j)
			d.backtrack(left, childMask|1, v+vj, depth+1, bl, keep)
			d.backtrack(right, childMask|1, v-vj, depth+1, b-1-bl, keep)
			return
		}
	}
	// Floating-point slack: fall back to the not-retain minimum.
	bestBl, bestC := 0, math.Inf(1)
	for bl := 0; bl <= b; bl++ {
		if c := d.combine(lnr[bl], rnr[b-bl]); c < bestC {
			bestC, bestBl = c, bl
		}
	}
	d.backtrack(left, childMask, v, depth+1, bestBl, keep)
	d.backtrack(right, childMask, v, depth+1, b-bestBl, keep)
}

// padValuePDF extends a value pdf with deterministic-zero items up to the
// next power-of-two domain size.
func padValuePDF(vp *pdata.ValuePDF) *pdata.ValuePDF {
	n := haar.Pow2Ceil(vp.N)
	if n == vp.N {
		return vp
	}
	out := &pdata.ValuePDF{N: n, Items: make([]pdata.ItemPDF, n)}
	copy(out.Items, vp.Items)
	for i := vp.N; i < n; i++ {
		out.Items[i] = pdata.ItemPDF{Entries: []pdata.FreqProb{{Freq: 0, Prob: 1}}}
	}
	return out
}
