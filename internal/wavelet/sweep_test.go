package wavelet_test

// Sweep frontier tests: one DP run must serve every budget b <= B with
// exactly the synopsis (coefficients, values, cost — bit-identical) an
// independent budget-b build produces, for the restricted, unrestricted,
// and greedy-SSE families, at several worker counts and on the degenerate
// one- and two-item domains.

import (
	"math/rand"
	"runtime"
	"testing"

	"probsyn/internal/metric"
	"probsyn/internal/pdata"
	"probsyn/internal/ptest"
	"probsyn/internal/wavelet"
)

// sweepFamilies enumerates the sweep constructors next to their
// single-budget builders, so every test covers all three families.
type sweepFamily struct {
	name  string
	sweep func(src pdata.Source, B int, workers int) (*wavelet.Sweep, error)
	build func(src pdata.Source, B int, workers int) (*wavelet.Synopsis, float64, error)
}

func families() []sweepFamily {
	p := metric.Params{C: 0.5}
	return []sweepFamily{
		{
			name: "restricted",
			sweep: func(src pdata.Source, B, workers int) (*wavelet.Sweep, error) {
				return wavelet.SweepRestrictedPool(src, metric.SAE, p, B, finePool(workers))
			},
			build: func(src pdata.Source, B, workers int) (*wavelet.Synopsis, float64, error) {
				return wavelet.BuildRestrictedPool(src, metric.SAE, p, B, finePool(workers))
			},
		},
		{
			name: "unrestricted",
			sweep: func(src pdata.Source, B, workers int) (*wavelet.Sweep, error) {
				return wavelet.SweepUnrestrictedPool(src, metric.SARE, p, B, 2, finePool(workers))
			},
			build: func(src pdata.Source, B, workers int) (*wavelet.Synopsis, float64, error) {
				return wavelet.BuildUnrestrictedPool(src, metric.SARE, p, B, 2, finePool(workers))
			},
		},
		{
			name: "sse",
			sweep: func(src pdata.Source, B, _ int) (*wavelet.Sweep, error) {
				return wavelet.SweepSSE(src, B)
			},
			build: func(src pdata.Source, B, _ int) (*wavelet.Synopsis, float64, error) {
				syn, _, err := wavelet.BuildSSE(src, B)
				if err != nil {
					return nil, 0, err
				}
				return syn, syn.Cost, nil
			},
		},
	}
}

func TestSweepMatchesIndependentBuilds(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	sources := map[string]pdata.Source{
		"value": ptest.RandomValuePDF(rng, 16, 3),
		"basic": ptest.RandomBasic(rng, 16, 20),
	}
	const B = 16
	for _, fam := range families() {
		for srcName, src := range sources {
			for _, workers := range []int{1, 2, runtime.NumCPU()} {
				sw, err := fam.sweep(src, B, workers)
				if err != nil {
					t.Fatalf("%s/%s: sweep: %v", fam.name, srcName, err)
				}
				if sw.Bmax() != B {
					t.Fatalf("%s/%s: Bmax = %d, want %d", fam.name, srcName, sw.Bmax(), B)
				}
				prev := 0.0
				for b := 1; b <= B; b++ {
					got, err := sw.Synopsis(b)
					if err != nil {
						t.Fatalf("%s/%s: Synopsis(%d): %v", fam.name, srcName, b, err)
					}
					// Independent builds run serial: the sweep's parallel
					// schedule must not change a single bit.
					want, cost, err := fam.build(src, b, 1)
					if err != nil {
						t.Fatalf("%s/%s: build(%d): %v", fam.name, srcName, b, err)
					}
					label := fam.name + "/" + srcName
					synopsesIdentical(t, label, want, got, cost, got.Cost)
					if sw.Cost(b) != cost {
						t.Fatalf("%s: Cost(%d) = %v, independent build cost %v", label, b, sw.Cost(b), cost)
					}
					if b > 1 && sw.Cost(b) > prev {
						t.Fatalf("%s: frontier not non-increasing: Cost(%d)=%v > Cost(%d)=%v",
							label, b, sw.Cost(b), b-1, prev)
					}
					prev = sw.Cost(b)
				}
			}
		}
	}
}

// TestSweepSynopsesParallelExtraction: extracting all budgets through the
// pool yields exactly the per-budget extractions.
func TestSweepSynopsesParallelExtraction(t *testing.T) {
	src := ptest.RandomValuePDF(rand.New(rand.NewSource(5)), 32, 3)
	const B = 12
	sw, err := wavelet.SweepRestrictedPool(src, metric.SAE, metric.Params{C: 0.5}, B, finePool(runtime.NumCPU()))
	if err != nil {
		t.Fatal(err)
	}
	all := sw.Synopses()
	if len(all) != B {
		t.Fatalf("Synopses() returned %d budgets, want %d", len(all), B)
	}
	for b := 1; b <= B; b++ {
		one, err := sw.Synopsis(b)
		if err != nil {
			t.Fatal(err)
		}
		synopsesIdentical(t, "parallel-extract", one, all[b-1], one.Cost, all[b-1].Cost)
	}
}

// TestSweepTinyDomains exercises the n == 1 and n == 2 special paths of
// every family.
func TestSweepTinyDomains(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{1, 2} {
		src := ptest.RandomValuePDF(rng, n, 3)
		for _, fam := range families() {
			sw, err := fam.sweep(src, n, 1)
			if err != nil {
				t.Fatalf("n=%d %s: %v", n, fam.name, err)
			}
			if sw.Bmax() != n {
				t.Fatalf("n=%d %s: Bmax = %d, want %d", n, fam.name, sw.Bmax(), n)
			}
			for b := 1; b <= n; b++ {
				got, err := sw.Synopsis(b)
				if err != nil {
					t.Fatal(err)
				}
				want, cost, err := fam.build(src, b, 1)
				if err != nil {
					t.Fatal(err)
				}
				synopsesIdentical(t, fam.name, want, got, cost, got.Cost)
			}
		}
	}
}

// TestSweepBudgetValidation: out-of-range extraction budgets error
// instead of clamping silently; Cost clamps like hist.DPTable.
func TestSweepBudgetValidation(t *testing.T) {
	src := ptest.RandomValuePDF(rand.New(rand.NewSource(3)), 8, 3)
	sw, err := wavelet.SweepRestricted(src, metric.SAE, metric.Params{C: 0.5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []int{0, -1, 5} {
		if _, err := sw.Synopsis(b); err == nil {
			t.Fatalf("Synopsis(%d) succeeded, want range error", b)
		}
	}
	if sw.Cost(99) != sw.Cost(4) || sw.Cost(-3) != sw.Cost(1) {
		t.Fatal("Cost should clamp out-of-range budgets")
	}
	if _, err := wavelet.SweepRestricted(src, metric.SAE, metric.Params{C: 0.5}, -1); err == nil {
		t.Fatal("negative sweep budget accepted")
	}
	// A zero-budget sweep (built internally by Build* at B=0) has no
	// extractable budgets but must still answer Cost without panicking.
	zero, err := wavelet.SweepRestricted(src, metric.SAE, metric.Params{C: 0.5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if zero.Bmax() != 0 {
		t.Fatalf("zero sweep Bmax = %d", zero.Bmax())
	}
	_, emptyCost, err := wavelet.BuildRestricted(src, metric.SAE, metric.Params{C: 0.5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := zero.Cost(1); got != emptyCost {
		t.Fatalf("zero sweep Cost = %v, empty build cost %v", got, emptyCost)
	}
	if _, err := zero.Synopsis(1); err == nil {
		t.Fatal("zero sweep Synopsis(1) succeeded, want range error")
	}
	if _, err := wavelet.SweepUnrestricted(src, metric.SAE, metric.Params{C: 0.5}, 4, -1); err == nil {
		t.Fatal("negative quantization accepted")
	}
}
