package wavelet

import (
	"fmt"
	"math"

	"probsyn/internal/haar"
	"probsyn/internal/numeric"
	"probsyn/internal/pdata"
)

// SSEReport is the exact expected-SSE accounting of an SSE-optimal synopsis
// (§4.1). Writing μ_i and σ²_i for the mean and variance of the normalized
// coefficient c_i,
//
//	E[SSE] = Σ_i σ²_i  +  Σ_{i∉I} μ_i²  :
//
// the total coefficient variance is irreducible (it is also Σ_i Var[g_i]);
// a B-term synopsis only controls the dropped-μ² term, which is the range
// the paper's Figure 4 reports error percentages over.
type SSEReport struct {
	// TotalMuSq is Σ_i μ_i², the sum of squared expected normalized
	// coefficients (the maximum reducible error).
	TotalMuSq float64
	// RetainedMuSq is Σ_{i∈I} μ_i².
	RetainedMuSq float64
	// VarianceFloor is Σ_i σ²_i = Σ_i Var[g_i], the irreducible error.
	VarianceFloor float64
	// ExpectedSSE = VarianceFloor + (TotalMuSq - RetainedMuSq).
	ExpectedSSE float64
}

// DroppedMuSq returns Σ_{i∉I} μ_i², Figure 4's raw error measure.
func (r *SSEReport) DroppedMuSq() float64 { return r.TotalMuSq - r.RetainedMuSq }

// ErrorPercent is Figure 4's y-axis: dropped μ² as a percentage of total μ².
func (r *SSEReport) ErrorPercent() float64 {
	if r.TotalMuSq == 0 {
		return 0
	}
	return 100 * r.DroppedMuSq() / r.TotalMuSq
}

// BuildSSE constructs the expected-SSE-optimal B-term synopsis (Theorem 7):
// compute the Haar transform of the expected frequencies — by linearity
// these are the expected coefficients — and keep the B largest in absolute
// normalized value, each retained at its expected value. Runs in O(m + n
// log n) (the paper's O(n) up to our sort-based selection). The domain is
// zero-padded to a power of two.
func BuildSSE(src pdata.Source, B int) (*Synopsis, *SSEReport, error) {
	if B < 0 {
		return nil, nil, fmt.Errorf("wavelet: negative budget %d", B)
	}
	expected := haar.Pad(src.ExpectedFreqs())
	c := haar.Forward(expected)
	keep := haar.TopK(c, B)
	syn := fromDense(c, keep)

	rep := &SSEReport{}
	n := len(c)
	for i, v := range c {
		nv := v * haar.NormFactor(i, n)
		rep.TotalMuSq += nv * nv
	}
	for k, i := range syn.Indices {
		nv := syn.Values[k] * haar.NormFactor(i, n)
		rep.RetainedMuSq += nv * nv
	}
	// Irreducible floor: Σ Var[g_i] (padding items are deterministic zeros).
	mom := pdata.MomentsOf(src)
	var acc numeric.Accumulator
	for _, v := range mom.Var {
		acc.Add(v)
	}
	rep.VarianceFloor = acc.Value()
	rep.ExpectedSSE = rep.VarianceFloor + rep.DroppedMuSq()
	syn.Cost = rep.ExpectedSSE
	return syn, rep, nil
}

// ExpectedSSEOf returns the exact expected sum-squared error of an
// arbitrary synopsis over the source:
//
//	E[Σ_i (g_i − rec_i)²] = Σ_i Var[g_i] + Σ_i (E[g_i] − rec_i)²,
//
// valid for any model because the synopsis reconstruction is a fixed
// vector. Items beyond the source's domain (zero padding) contribute
// rec_i² each.
func ExpectedSSEOf(src pdata.Source, syn *Synopsis) float64 {
	mom := pdata.MomentsOf(src)
	rec := syn.Reconstruct()
	var acc numeric.Accumulator
	for i, r := range rec {
		if i < len(mom.Mean) {
			d := mom.Mean[i] - r
			acc.Add(mom.Var[i] + d*d)
		} else {
			acc.Add(r * r)
		}
	}
	return acc.Value()
}

// CoefficientStats returns the mean and variance of every normalized Haar
// coefficient of the source (the distribution the possible worlds induce
// on the coefficient vector, §4.1). Means come from the transform of the
// expected frequencies (linearity); variances from per-tuple or per-item
// independence:
//
//   - value pdf: Var[ĉ_i] = Σ_{k∈supp(i)} Var[g_k]/S_i (entries ±1/√S_i);
//   - basic/tuple pdf: ĉ_i = Σ_t Y_t with Y_t the tuple's signed basis
//     entry, so Var[ĉ_i] = Σ_t (E[Y_t²] − E[Y_t]²), accumulated in
//     O(m log n) over alternative→ancestor paths.
//
// As a Parseval check, Σ_i Var[ĉ_i] = Σ_k Var[g_k]; the tests verify this.
func CoefficientStats(src pdata.Source) (mu, sigma2 []float64) {
	expected := haar.Pad(src.ExpectedFreqs())
	n := len(expected)
	mu = haar.Normalize(haar.Forward(expected))
	sigma2 = make([]float64, n)

	switch s := src.(type) {
	case *pdata.ValuePDF:
		mom := pdata.MomentsOf(s)
		varPrefix := numeric.NewPrefix(haar.Pad(mom.Var))
		for i := 0; i < n; i++ {
			lo, hi := haar.Support(i, n)
			sigma2[i] = varPrefix.Range(lo, hi) / float64(haar.SupportSize(i, n))
		}
	case *pdata.Basic:
		coefficientStatsTuple(s.TuplePDF(), n, sigma2)
	case *pdata.TuplePDF:
		coefficientStatsTuple(s, n, sigma2)
	default:
		panic("wavelet: CoefficientStats: unknown source type")
	}
	return mu, sigma2
}

func coefficientStatsTuple(tp *pdata.TuplePDF, n int, sigma2 []float64) {
	type acc struct{ h, h2 float64 }
	for t := range tp.Tuples {
		perCoef := make(map[int]acc, 8)
		for _, a := range tp.Tuples[t].Alts {
			if a.Prob == 0 {
				continue
			}
			for _, i := range haar.Path(a.Item, n) {
				h := haar.Sign(i, a.Item, n) / math.Sqrt(float64(haar.SupportSize(i, n)))
				cur := perCoef[i]
				cur.h += h * a.Prob
				cur.h2 += h * h * a.Prob
				perCoef[i] = cur
			}
		}
		for i, cur := range perCoef {
			sigma2[i] += cur.h2 - cur.h*cur.h
		}
	}
}
