package wavelet

import (
	"math/rand"
	"reflect"
	"testing"

	"probsyn/internal/engine"
	"probsyn/internal/metric"
	"probsyn/internal/pdata"
)

func liveRandItem(rng *rand.Rand) pdata.ItemPDF {
	k := 1 + rng.Intn(3)
	entries := make([]pdata.FreqProb, 0, k)
	remaining := 1.0
	for j := 0; j < k; j++ {
		p := float64(1+rng.Intn(4)) * 0.125
		if p > remaining {
			break
		}
		remaining -= p
		entries = append(entries, pdata.FreqProb{Freq: float64(rng.Intn(6)), Prob: p})
	}
	return pdata.ItemPDF{Entries: entries}
}

func liveRandVP(rng *rand.Rand, n int) *pdata.ValuePDF {
	vp := &pdata.ValuePDF{N: n, Items: make([]pdata.ItemPDF, n)}
	for i := range vp.Items {
		vp.Items[i] = liveRandItem(rng)
	}
	return vp
}

// freshSweep builds the from-scratch frontier a live state must match.
func freshSweep(t *testing.T, vp *pdata.ValuePDF, family LiveFamily, k metric.Kind, p metric.Params, B, q int, pool *engine.Pool) *Sweep {
	t.Helper()
	var (
		sw  *Sweep
		err error
	)
	switch family {
	case LiveSSEFamily:
		sw, err = SweepSSE(vp, B)
	case LiveRestrictedFamily:
		if q > 0 {
			sw, err = SweepRestrictedApproxPool(vp, k, p, B, q, pool)
		} else {
			sw, err = SweepRestrictedPool(vp, k, p, B, pool)
		}
	default:
		sw, err = SweepUnrestrictedPool(vp, k, p, B, q, pool)
	}
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

func assertLiveMatchesSweep(t *testing.T, lv *Live, sw *Sweep, tag string) {
	t.Helper()
	if lv.Bmax() != sw.Bmax() {
		t.Fatalf("%s: Bmax %d vs fresh %d", tag, lv.Bmax(), sw.Bmax())
	}
	for b := 1; b <= lv.Bmax(); b++ {
		got, err := lv.Synopsis(b)
		if err != nil {
			t.Fatalf("%s: budget %d: %v", tag, b, err)
		}
		want, err := sw.Synopsis(b)
		if err != nil {
			t.Fatalf("%s: budget %d: %v", tag, b, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: budget %d: live synopsis diverges from fresh sweep\n got: %+v\nwant: %+v", tag, b, got, want)
		}
		if lc, sc := lv.Cost(b), sw.Cost(b); lc != sc {
			t.Fatalf("%s: budget %d: live cost %v vs fresh %v", tag, b, lc, sc)
		}
	}
}

// TestLiveWaveletMatchesFresh drives each family through a random
// mutation sequence — appends inside the padding, appends that regrow
// it, mean-changing and mean-preserving updates — asserting after every
// step that the live state extracts exactly what a fresh sweep over the
// mutated data extracts.
func TestLiveWaveletMatchesFresh(t *testing.T) {
	p := metric.Params{C: 0.5}
	cases := []struct {
		name   string
		family LiveFamily
		kind   metric.Kind
		q      int
	}{
		{"sse", LiveSSEFamily, metric.SSE, 0},
		{"restricted", LiveRestrictedFamily, metric.SAE, 0},
		{"restricted-max", LiveRestrictedFamily, metric.MAE, 0},
		// q=4 keeps the finest level genuinely quantized at n=16 (and
		// stays quantized after appends regrow the tree to n=32).
		{"restricted-approx", LiveRestrictedFamily, metric.SAE, 4},
		{"unrestricted", LiveUnrestrictedFamily, metric.SAE, 1},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 2} {
			rng := rand.New(rand.NewSource(13))
			vp := liveRandVP(rng, 13) // pads to 16, 3 free slots
			pool := engine.New(engine.Options{Workers: workers, Grain: 1})
			const B = 6
			lv, err := NewLive(vp, tc.family, tc.kind, p, B, tc.q, pool)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			cur := vp.Clone()
			assertLiveMatchesSweep(t, lv, freshSweep(t, cur, tc.family, tc.kind, p, B, tc.q, pool), tc.name+"/initial")
			for step := 0; step < 8; step++ {
				switch rng.Intn(3) {
				case 0: // append (crosses the padding boundary mid-sequence)
					items := []pdata.ItemPDF{liveRandItem(rng), liveRandItem(rng)}
					for _, it := range items {
						cur.Items = append(cur.Items, it.Clone())
					}
					cur.N = len(cur.Items)
					if err := lv.Append(items); err != nil {
						t.Fatalf("%s step %d append: %v", tc.name, step, err)
					}
				case 1: // mean-changing update
					i := rng.Intn(cur.N)
					it := liveRandItem(rng)
					cur.Items[i] = it.Clone()
					if err := lv.Update(i, it); err != nil {
						t.Fatalf("%s step %d update: %v", tc.name, step, err)
					}
				default: // mean-preserving update: same mean, different spread
					i := rng.Intn(cur.N)
					it := pdata.ItemPDF{Entries: []pdata.FreqProb{
						{Freq: 1, Prob: 0.25}, {Freq: 3, Prob: 0.25},
					}}
					if step%2 == 1 {
						it = pdata.ItemPDF{Entries: []pdata.FreqProb{{Freq: 2, Prob: 0.5}}}
					}
					cur.Items[i] = it.Clone()
					if err := lv.Update(i, it); err != nil {
						t.Fatalf("%s step %d update: %v", tc.name, step, err)
					}
				}
				sw := freshSweep(t, cur, tc.family, tc.kind, p, B, tc.q, pool)
				assertLiveMatchesSweep(t, lv, sw, tc.name)
			}
		}
	}
}

// TestLiveDirtyPathFastPath pins the headline mechanism: a
// mean-preserving correction must take the dirty-path repair (not a full
// resweep) and still extract byte-identical synopses.
func TestLiveDirtyPathFastPath(t *testing.T) {
	p := metric.Params{C: 0.5}
	rng := rand.New(rand.NewSource(5))
	vp := liveRandVP(rng, 16)
	// Give item 9 an exactly-representable mean so the correction below
	// preserves it bit-for-bit.
	vp.Items[9] = pdata.ItemPDF{Entries: []pdata.FreqProb{{Freq: 2, Prob: 0.5}}}
	lv, err := NewLive(vp, LiveRestrictedFamily, metric.SAE, p, 5, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// mean 1.0 either way: 0.5*2 == 0.25*1 + 0.25*3.
	corrected := pdata.ItemPDF{Entries: []pdata.FreqProb{{Freq: 1, Prob: 0.25}, {Freq: 3, Prob: 0.25}}}
	if err := lv.Update(9, corrected); err != nil {
		t.Fatal(err)
	}
	if got := lv.FastRepairs(); got != 1 {
		t.Fatalf("mean-preserving update took the slow path (FastRepairs = %d)", got)
	}
	cur := vp.Clone()
	cur.Items[9] = corrected.Clone()
	assertLiveMatchesSweep(t, lv, freshSweep(t, cur, LiveRestrictedFamily, metric.SAE, p, 5, 0, nil), "fast-path")

	// A mean-changing update must NOT claim the fast path.
	if err := lv.Update(3, pdata.ItemPDF{Entries: []pdata.FreqProb{{Freq: 5, Prob: 0.5}}}); err != nil {
		t.Fatal(err)
	}
	if got := lv.FastRepairs(); got != 1 {
		t.Fatalf("mean-changing update claimed the fast path (FastRepairs = %d)", got)
	}
}

// TestLiveQuantizedDirtyPathFastPath pins the quantized analogue: the
// retained grids depend only on strict-ancestor candidates, so a
// mean-preserving correction repairs the dirty path blocks on the
// existing grids — no re-bucketing, and still byte-identical to a fresh
// quantized sweep.
func TestLiveQuantizedDirtyPathFastPath(t *testing.T) {
	p := metric.Params{C: 0.5}
	rng := rand.New(rand.NewSource(5))
	vp := liveRandVP(rng, 16)
	vp.Items[9] = pdata.ItemPDF{Entries: []pdata.FreqProb{{Freq: 2, Prob: 0.5}}}
	const q = 4
	lv, err := NewLive(vp, LiveRestrictedFamily, metric.SAE, p, 5, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lv.ErrorBound() <= 0 {
		t.Fatalf("quantized live frontier reports bound %v, want > 0", lv.ErrorBound())
	}
	corrected := pdata.ItemPDF{Entries: []pdata.FreqProb{{Freq: 1, Prob: 0.25}, {Freq: 3, Prob: 0.25}}}
	if err := lv.Update(9, corrected); err != nil {
		t.Fatal(err)
	}
	if got := lv.FastRepairs(); got != 1 {
		t.Fatalf("mean-preserving update took the slow path (FastRepairs = %d)", got)
	}
	cur := vp.Clone()
	cur.Items[9] = corrected.Clone()
	assertLiveMatchesSweep(t, lv, freshSweep(t, cur, LiveRestrictedFamily, metric.SAE, p, 5, q, nil), "quantized-fast-path")
}

// TestLiveSmallDomains exercises the singleton and n==2 special cases
// through mutations.
func TestLiveSmallDomains(t *testing.T) {
	p := metric.Params{C: 0.5}
	for _, tc := range []struct {
		family LiveFamily
		kind   metric.Kind
		q      int
	}{
		{LiveSSEFamily, metric.SSE, 0},
		{LiveRestrictedFamily, metric.SAE, 0},
		{LiveUnrestrictedFamily, metric.SAE, 1},
	} {
		rng := rand.New(rand.NewSource(2))
		vp := liveRandVP(rng, 1)
		lv, err := NewLive(vp, tc.family, tc.kind, p, 4, tc.q, nil)
		if err != nil {
			t.Fatalf("family %d: %v", tc.family, err)
		}
		cur := vp.Clone()
		for step := 0; step < 4; step++ {
			it := liveRandItem(rng)
			if step%2 == 0 {
				cur.Items = append(cur.Items, it.Clone())
				cur.N = len(cur.Items)
				if err := lv.Append([]pdata.ItemPDF{it}); err != nil {
					t.Fatal(err)
				}
			} else {
				i := rng.Intn(cur.N)
				cur.Items[i] = it.Clone()
				if err := lv.Update(i, it); err != nil {
					t.Fatal(err)
				}
			}
			sw := freshSweep(t, cur, tc.family, tc.kind, p, 4, tc.q, nil)
			assertLiveMatchesSweep(t, lv, sw, "small")
		}
	}
}
