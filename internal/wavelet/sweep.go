package wavelet

import (
	"fmt"

	"probsyn/internal/engine"
	"probsyn/internal/haar"
	"probsyn/internal/metric"
	"probsyn/internal/numeric"
	"probsyn/internal/pdata"
)

// Sweep is a completed budget frontier: one forward DP (or one greedy
// ordering, for the SSE family) answering the optimal cost and synopsis
// for every coefficient budget 1 <= b <= Bmax. Extraction re-derives the
// budget-b backtrack from the kept level tables, performing exactly the
// operations an independent budget-b build would — so Synopsis(b) is
// bit-identical (coefficients, values, and Cost) to building at budget b
// directly, and a whole cost-vs-budget frontier (the paper's Figure 2/4
// x-axes) costs one build instead of Bmax.
//
// A Sweep retains the DP's per-level tables until it is garbage
// collected; extraction only reads them, so Synopsis may be called
// concurrently.
type Sweep struct {
	n     int
	bmax  int
	costs []float64 // costs[b-1]: optimal expected error at budget b
	at    func(b int) *Synopsis
	pool  *engine.Pool
	bound float64 // additive suboptimality bound; 0 for exact sweeps
}

// Bmax returns the largest budget the sweep covers (the build budget,
// clamped to the padded domain size).
func (s *Sweep) Bmax() int { return s.bmax }

// ErrorBound returns the additive suboptimality bound of a quantized
// sweep: every extracted synopsis's expected error (its Cost, evaluated
// exactly) is within ErrorBound of the exact optimum at that budget.
// Exact sweeps return 0.
func (s *Sweep) ErrorBound() float64 { return s.bound }

// Cost returns the optimal expected error at budget b (clamped to
// [1, Bmax]), without materializing the synopsis. A zero-budget sweep
// (Bmax 0, possible when the requested budget was 0) has one cost: the
// empty synopsis's.
func (s *Sweep) Cost(b int) float64 {
	if s.bmax == 0 {
		return s.at(0).Cost
	}
	if b > s.bmax {
		b = s.bmax
	}
	if b < 1 {
		b = 1
	}
	return s.costs[b-1]
}

// Synopsis extracts the optimal budget-b synopsis, 1 <= b <= Bmax.
func (s *Sweep) Synopsis(b int) (*Synopsis, error) {
	if b < 1 || b > s.bmax {
		return nil, fmt.Errorf("wavelet: sweep budget %d outside [1, %d]", b, s.bmax)
	}
	return s.at(b), nil
}

// Synopses extracts every budget 1..Bmax, dispatching the independent
// per-budget backtracks through the sweep's engine pool. Extraction
// slots are independent reads of the kept tables, so the result is
// bit-identical at any worker count.
func (s *Sweep) Synopses() []*Synopsis {
	out := make([]*Synopsis, s.bmax)
	s.pool.Dispatch(1, s.bmax+1, s.bmax*s.n, func(_, lo, hi int) {
		for b := lo; b < hi; b++ {
			out[b-1] = s.at(b)
		}
	})
	return out
}

// SweepRestricted is SweepRestrictedPool with a nil (serial) pool.
func SweepRestricted(src pdata.Source, kind metric.Kind, p metric.Params, B int) (*Sweep, error) {
	return SweepRestrictedPool(src, kind, p, B, nil)
}

// SweepRestrictedPool runs the restricted coefficient-tree DP (Theorem 8)
// once at budget B and returns the whole frontier: every budget b <= B is
// a backtrack away, bit-identical to BuildRestrictedPool at budget b.
func SweepRestrictedPool(src pdata.Source, kind metric.Kind, p metric.Params, B int, pool *engine.Pool) (*Sweep, error) {
	return sweepRestricted(src, kind, p, B, 0, pool)
}

// SweepRestrictedApprox is SweepRestrictedApproxPool with a nil pool.
func SweepRestrictedApprox(src pdata.Source, kind metric.Kind, p metric.Params, B, q int) (*Sweep, error) {
	return SweepRestrictedApproxPool(src, kind, p, B, q, nil)
}

// SweepRestrictedApproxPool runs the restricted DP with incoming values
// quantized onto per-node grids of q >= 2 points (§4.2's bound-and-
// quantize argument), capping the state space at O(n·q·B) so domains far
// beyond the exact DP's reach build in seconds. Every extracted synopsis
// carries its exactly-evaluated expected error as Cost, and ErrorBound
// bounds the gap to the exact optimum. Extraction at budget b <= B stays
// bit-identical to an independent quantized build at budget b (and at
// any worker count); q at least half the padded domain size degenerates
// to the exact DP.
func SweepRestrictedApproxPool(src pdata.Source, kind metric.Kind, p metric.Params, B, q int, pool *engine.Pool) (*Sweep, error) {
	if q < 2 {
		return nil, fmt.Errorf("wavelet: quantized restricted sweep needs q >= 2, got %d", q)
	}
	return sweepRestricted(src, kind, p, B, q, pool)
}

// sweepRestricted is the shared restricted-DP frontier: exact when q is
// 0, incoming-value quantized when q >= 2.
func sweepRestricted(src pdata.Source, kind metric.Kind, p metric.Params, B, q int, pool *engine.Pool) (*Sweep, error) {
	sw, _, err := sweepRestrictedOpt(src, kind, p, B, q, false, pool)
	return sw, err
}

// sweepRestrictedOpt is sweepRestricted with the sharded merge's two
// extras: forced pins the root coefficient retained at its expected
// value (one budget unit spent on c0, the rest optimized over the
// details — the per-shard sweeps of a sharded build, whose local c0
// must survive into the merged synopsis), and the PointErrors is
// returned so the sharded bound can price reconstruction slack without
// rebuilding it.
func sweepRestrictedOpt(src pdata.Source, kind metric.Kind, p metric.Params, B, q int, forced bool, pool *engine.Pool) (*Sweep, *PointErrors, error) {
	if B < 0 {
		return nil, nil, fmt.Errorf("wavelet: negative budget %d", B)
	}
	if forced && B < 1 {
		return nil, nil, fmt.Errorf("wavelet: forced-root sweep needs budget >= 1, got %d", B)
	}
	vp := padValuePDF(pdata.AsValuePDF(src))
	pe, err := NewPointErrors(vp, kind, p)
	if err != nil {
		return nil, nil, err
	}
	n := vp.N
	cvals := haar.Forward(vp.ExpectedFreqs())
	if B > n {
		B = n
	}
	if n == 1 {
		at := func(b int) *Synopsis { return restrictedSingleton(pe, cvals[0], b) }
		if forced {
			at = func(int) *Synopsis { return restrictedSingletonForced(pe, cvals[0]) }
		}
		return singletonSweep(B, at), pe, nil
	}
	// The restricted problem is the shared tree DP with a single
	// candidate per coefficient: its expected value.
	cands := make([][]float64, n)
	for j := range cands {
		cands[j] = cvals[j : j+1]
	}
	sw, err := dpSweep(n, B, cands, pe, kind.Cumulative(), q, forced, pool)
	if err != nil {
		return nil, nil, err
	}
	return sw, pe, nil
}

// SweepUnrestricted is SweepUnrestrictedPool with a nil (serial) pool.
func SweepUnrestricted(src pdata.Source, kind metric.Kind, p metric.Params, B, q int) (*Sweep, error) {
	return SweepUnrestrictedPool(src, kind, p, B, q, nil)
}

// SweepUnrestrictedPool runs the quantized unrestricted DP (§4.2 sketch)
// once at budget B and returns the whole frontier; every budget b <= B
// is bit-identical to BuildUnrestrictedPool at budget b and the same q.
func SweepUnrestrictedPool(src pdata.Source, kind metric.Kind, p metric.Params, B, q int, pool *engine.Pool) (*Sweep, error) {
	if B < 0 {
		return nil, fmt.Errorf("wavelet: negative budget %d", B)
	}
	if q < 0 {
		return nil, fmt.Errorf("wavelet: negative quantization %d", q)
	}
	vp := padValuePDF(pdata.AsValuePDF(src))
	pe, err := NewPointErrors(vp, kind, p)
	if err != nil {
		return nil, err
	}
	n := vp.N
	mu := haar.Forward(vp.ExpectedFreqs())
	if B > n {
		B = n
	}
	cands := candidateGrids(vp, mu, q)
	if n == 1 {
		return singletonSweep(B, func(b int) *Synopsis {
			return unrestrictedSingleton(pe, cands[0], b)
		}), nil
	}
	return dpSweep(n, B, cands, pe, kind.Cumulative(), 0, false, pool)
}

// SweepSSE is the frontier of the greedy SSE-optimal build (Theorem 7):
// the magnitude order of the expected normalized coefficients is computed
// once, and budget b keeps its first b entries — exactly the set (and the
// cost accounting) BuildSSE produces at budget b.
func SweepSSE(src pdata.Source, B int) (*Sweep, error) {
	if B < 0 {
		return nil, fmt.Errorf("wavelet: negative budget %d", B)
	}
	expected := haar.Pad(src.ExpectedFreqs())
	c := haar.Forward(expected)
	n := len(c)
	if B > n {
		B = n
	}
	// TopK's order is a deterministic total order (magnitude, then
	// index), so TopK(c, b) is the b-prefix of TopK(c, n) for every b.
	order := haar.TopK(c, n)
	totalMuSq := 0.0
	for i, v := range c {
		nv := v * haar.NormFactor(i, n)
		totalMuSq += nv * nv
	}
	mom := pdata.MomentsOf(src)
	var acc numeric.Accumulator
	for _, v := range mom.Var {
		acc.Add(v)
	}
	varianceFloor := acc.Value()
	at := func(b int) *Synopsis {
		syn := fromDense(c, order[:b])
		retained := 0.0
		for k, i := range syn.Indices {
			nv := syn.Values[k] * haar.NormFactor(i, n)
			retained += nv * nv
		}
		syn.Cost = varianceFloor + (totalMuSq - retained)
		return syn
	}
	costs := make([]float64, B)
	for b := 1; b <= B; b++ {
		costs[b-1] = at(b).Cost
	}
	return &Sweep{n: n, bmax: B, costs: costs, at: at, pool: engine.Serial()}, nil
}

// dpSweep runs the shared tree DP once and wraps its tables as a Sweep.
// In quantized mode the DP table's objective is only approximate, so
// extraction re-evaluates each synopsis exactly (its Cost is the true
// expected error — never below the exact optimum, since the synopsis is
// a feasible exact solution) and the sweep carries the DP's additive
// suboptimality bound.
func dpSweep(n, B int, cands [][]float64, pe *PointErrors, cumulative bool, quant int, forced bool, pool *engine.Pool) (*Sweep, error) {
	d, err := newTreeDP(n, B, cands, pe, cumulative, quant, pool)
	if err != nil {
		return nil, err
	}
	extract, costAt := d.extract, d.cost
	if forced {
		extract, costAt = d.extractForced, d.costForced
	}
	at := func(b int) *Synopsis {
		keep, best := extract(b)
		syn := synopsisFromChoices(n, keep)
		if d.quant > 0 {
			syn.Cost = pe.SynopsisError(syn)
		} else {
			syn.Cost = best
		}
		return syn
	}
	costs := make([]float64, B)
	for b := 1; b <= B; b++ {
		if d.quant > 0 {
			costs[b-1] = at(b).Cost
		} else {
			costs[b-1] = costAt(b)
		}
	}
	return &Sweep{
		n: n, bmax: B, costs: costs, pool: d.pool, at: at,
		bound: d.errorBound(),
	}, nil
}

// singletonSweep wraps the degenerate n == 1 domain, where budgets are 0
// or 1 and each family enumerates its candidates directly.
func singletonSweep(B int, at func(b int) *Synopsis) *Sweep {
	costs := make([]float64, B)
	for b := 1; b <= B; b++ {
		costs[b-1] = at(b).Cost
	}
	return &Sweep{n: 1, bmax: B, costs: costs, at: at, pool: engine.Serial()}
}
