package wavelet

import (
	"fmt"

	"probsyn/internal/engine"
	"probsyn/internal/haar"
	"probsyn/internal/metric"
	"probsyn/internal/numeric"
	"probsyn/internal/pdata"
)

// LiveFamily selects which wavelet construction a Live frontier maintains.
type LiveFamily int

// The three wavelet builds, mirroring the Sweep constructors.
const (
	// LiveSSEFamily maintains the greedy SSE-optimal frontier (Theorem 7,
	// SweepSSE): the expected coefficients, their magnitude order, and the
	// error accounting survive mutations, so an append or update patches
	// the O(log n) path coefficients, merges them back into the retained
	// total order, and re-derives the moments — no sort, no re-transform
	// of unchanged state.
	LiveSSEFamily LiveFamily = iota
	// LiveRestrictedFamily maintains the restricted coefficient-tree DP
	// (Theorem 8, SweepRestrictedPool) with its per-level state tables
	// retained for dirty-path repair.
	LiveRestrictedFamily
	// LiveUnrestrictedFamily maintains the quantized unrestricted DP
	// (SweepUnrestrictedPool) the same way.
	LiveUnrestrictedFamily
)

// Live is a wavelet budget frontier kept live against a mutable value-pdf
// source. It answers exactly what the corresponding Sweep answers —
// Bmax/Cost/Synopsis, each extraction bit-identical to an independent
// build at that budget — but retains the forward state (the DP's
// per-level tables, or the SSE family's ordered coefficients) so
// Append/Update can revalidate it without a from-scratch build.
//
// How much work a mutation saves is mutation-dependent:
//
//   - SSE family: every mutation is cheap — O(k log n) coefficient
//     patches plus an O(n) order merge, versus the fresh build's moment
//     pass and O(n log n) sort.
//   - DP families, mutations whose candidate-value changes stay on the
//     two finest levels of the dirty items' paths (mean-preserving
//     corrections — the expected frequencies, hence all expected
//     coefficients, unchanged): dirty-path repair recomputes only the
//     O(log n) path node blocks (treedp.go's repair) — orders of
//     magnitude below a full forward sweep.
//   - DP families, mean-changing mutations: every expected coefficient
//     on the path moves, which shifts incoming values across whole
//     subtrees, so the forward sweep re-runs over the patched point
//     errors and candidates (still on the retained layout). Appends that
//     outgrow the power-of-two padding rebuild everything, including the
//     deeper tree.
//
// Whatever path a mutation takes, the maintained state is bit-identical
// to a fresh build over the mutated data; the live property tests assert
// byte identity through the codec at every budget and worker count.
//
// A Live is not safe for concurrent use; callers serialize mutations
// against extraction (probsyn.BuildLive's adapter locks internally).
type Live struct {
	family LiveFamily
	kind   metric.Kind
	p      metric.Params
	q      int
	breq   int // requested budget, before domain clamping
	pool   *engine.Pool

	logical int             // unpadded domain size mutations address
	vp      *pdata.ValuePDF // padded mutable copy of the data
	n       int             // padded domain size (len of vp.Items)
	bmax    int             // min(breq, n)

	// DP families: the retained forward state.
	pe    *PointErrors
	cvals []float64 // expected coefficients (candidates / grid centers)
	cands [][]float64
	d     *treeDP // nil when n == 1 (singleton extraction)

	// SSE family: the retained greedy state.
	expected  []float64 // padded expected frequencies
	c         []float64 // haar.Forward(expected)
	order     []int     // full TopK order: |normalized| desc, index asc
	varArr    []float64 // Var[g_i] per logical item
	varFloor  float64   // compensated sum of varArr
	totalMuSq float64

	costs       []float64 // memoized Cost frontier; nil after a mutation
	fastRepairs int
}

// NewLive builds the initial frontier (performing exactly the work the
// corresponding Sweep constructor performs) and retains its state for
// maintenance. Mutations are defined over the value-pdf model, so the
// source must be a *pdata.ValuePDF — convert other models with
// pdata.AsValuePDF first if the induced-marginal semantics is acceptable.
// q is the unrestricted family's candidate quantization; for the
// restricted family it is the incoming-value grid size (0 = exact DP,
// q >= 2 = quantized approximate DP, see SweepRestrictedApproxPool) —
// repairs and resweeps then replay mutations on the same quantized
// grids, so the maintained state keeps matching a fresh quantized sweep
// bit for bit. Ignored by the SSE family.
func NewLive(src pdata.Source, family LiveFamily, kind metric.Kind, p metric.Params, B, q int, pool *engine.Pool) (*Live, error) {
	vp, ok := src.(*pdata.ValuePDF)
	if !ok {
		return nil, fmt.Errorf("wavelet: live maintenance is defined over the value-pdf model; got %T (convert with pdata.AsValuePDF)", src)
	}
	if B < 1 {
		return nil, fmt.Errorf("wavelet: live budget %d, want >= 1", B)
	}
	if family == LiveUnrestrictedFamily && q < 0 {
		return nil, fmt.Errorf("wavelet: negative quantization %d", q)
	}
	if family == LiveRestrictedFamily && q != 0 && q < 2 {
		return nil, fmt.Errorf("wavelet: quantized restricted maintenance needs q = 0 (exact) or q >= 2, got %d", q)
	}
	if err := vp.Validate(); err != nil {
		return nil, err
	}
	if pool == nil {
		pool = engine.Serial()
	}
	lv := &Live{
		family: family, kind: kind, p: p, q: q, breq: B, pool: pool,
		logical: vp.N,
	}
	lv.vp = padValuePDF(vp.Clone())
	lv.n = lv.vp.N
	if err := lv.rebuildAll(); err != nil {
		return nil, err
	}
	return lv, nil
}

// Bmax returns the largest budget the frontier covers; it can grow after
// an Append when the requested budget was clamped by the old domain.
func (lv *Live) Bmax() int { return lv.bmax }

// Domain returns the current logical (unpadded) domain size.
func (lv *Live) Domain() int { return lv.logical }

// FastRepairs returns how many mutations took the dirty-path repair fast
// path (DP families only) — tests and benchmarks assert the intended
// path actually ran.
func (lv *Live) FastRepairs() int { return lv.fastRepairs }

// Cost returns the optimal expected error at budget b (clamped to
// [1, Bmax]). The frontier is derived lazily from the maintained state
// and memoized until the next mutation.
func (lv *Live) Cost(b int) float64 {
	if b > lv.bmax {
		b = lv.bmax
	}
	if b < 1 {
		b = 1
	}
	if lv.costs == nil {
		costs := make([]float64, lv.bmax)
		for bb := 1; bb <= lv.bmax; bb++ {
			// The quantized DP's table objective is approximate, so its
			// frontier reports the extractions' exactly-evaluated costs
			// (matching the quantized Sweep's costs).
			if lv.family != LiveSSEFamily && lv.d != nil && lv.d.quant == 0 {
				costs[bb-1] = lv.d.cost(bb)
			} else {
				costs[bb-1] = lv.at(bb).Cost
			}
		}
		lv.costs = costs
	}
	return lv.costs[b-1]
}

// ErrorBound returns the additive suboptimality bound of the maintained
// frontier under the current data: 0 for exact families, the quantized
// restricted DP's bound otherwise (see Sweep.ErrorBound). Recomputed on
// demand — mutations move it.
func (lv *Live) ErrorBound() float64 {
	if lv.d != nil {
		return lv.d.errorBound()
	}
	return 0
}

// Synopsis extracts the optimal budget-b synopsis, 1 <= b <= Bmax,
// bit-identical to a fresh build over the current data.
func (lv *Live) Synopsis(b int) (*Synopsis, error) {
	if b < 1 || b > lv.bmax {
		return nil, fmt.Errorf("wavelet: live budget %d outside [1, %d]", b, lv.bmax)
	}
	return lv.at(b), nil
}

// Update replaces item i's frequency pdf and revalidates the frontier.
func (lv *Live) Update(i int, item pdata.ItemPDF) error {
	if i < 0 || i >= lv.logical {
		return fmt.Errorf("wavelet: update index %d outside domain [0, %d)", i, lv.logical)
	}
	if err := item.Validate(); err != nil {
		return fmt.Errorf("wavelet: update item %d: %w", i, err)
	}
	lv.vp.Items[i] = item.Clone()
	return lv.refresh([]int{i})
}

// Append extends the domain with the given item pdfs. While the new
// items fit the power-of-two padding they replace pad slots and are
// maintained like updates; once they outgrow it, the error tree deepens
// and the state is rebuilt over the repadded domain.
func (lv *Live) Append(items []pdata.ItemPDF) error {
	if len(items) == 0 {
		return nil
	}
	for k := range items {
		if err := items[k].Validate(); err != nil {
			return fmt.Errorf("wavelet: append item %d: %w", k, err)
		}
	}
	newLogical := lv.logical + len(items)
	if newLogical > lv.n {
		// Regrow: repad and rebuild — the tree reshapes.
		grown := &pdata.ValuePDF{N: newLogical, Items: make([]pdata.ItemPDF, 0, newLogical)}
		grown.Items = append(grown.Items, lv.vp.Items[:lv.logical]...)
		for _, it := range items {
			grown.Items = append(grown.Items, it.Clone())
		}
		lv.vp = padValuePDF(grown)
		lv.logical, lv.n = newLogical, lv.vp.N
		lv.costs = nil
		return lv.rebuildAll()
	}
	dirty := make([]int, len(items))
	for k, it := range items {
		dirty[k] = lv.logical + k
		lv.vp.Items[lv.logical+k] = it.Clone()
	}
	lv.logical = newLogical
	return lv.refresh(dirty)
}

// refresh revalidates the maintained state after the items listed in
// dirty had their pdfs replaced (the padded domain unchanged).
func (lv *Live) refresh(dirty []int) error {
	lv.costs = nil
	if lv.family == LiveSSEFamily {
		lv.refreshSSE(dirty)
		return nil
	}
	return lv.refreshDP(dirty)
}

// ---------------------------------------------------------------------------
// SSE family maintenance.

// refreshSSE patches the retained greedy state: dirty expected
// frequencies and variances, a full (O(n), allocation-only) re-transform,
// and a merge of the changed coefficients back into the retained order.
// The magnitude order is a strict total order (ties break by index), so
// the merged order is element-identical to a fresh TopK.
func (lv *Live) refreshSSE(dirty []int) {
	for _, i := range dirty {
		mean, sq := lv.vp.Items[i].Mean(), lv.vp.Items[i].MeanSq()
		lv.expected[i] = mean
		if i < len(lv.varArr) {
			lv.varArr[i] = sq - mean*mean
		} else {
			// Appends arrive in domain order, so the variance array
			// extends without gaps.
			lv.varArr = append(lv.varArr, sq-mean*mean)
		}
	}
	newC := haar.Forward(lv.expected)
	changed := make([]int, 0, 4*len(dirty))
	for i, v := range newC {
		if v != lv.c[i] {
			changed = append(changed, i)
		}
	}
	lv.c = newC
	if len(changed) > 0 {
		lv.order = mergeOrder(lv.order, lv.c, lv.n, changed)
	}
	lv.recomputeSSEMoments()
}

// recomputeSSEMoments re-derives the error accounting exactly as
// SweepSSE does: a compensated sum over the per-item variances in item
// order, and the plain coefficient-order sum of squared normalized
// expected coefficients.
func (lv *Live) recomputeSSEMoments() {
	var acc numeric.Accumulator
	for _, v := range lv.varArr {
		acc.Add(v)
	}
	lv.varFloor = acc.Value()
	total := 0.0
	for i, v := range lv.c {
		nv := v * haar.NormFactor(i, lv.n)
		total += nv * nv
	}
	lv.totalMuSq = total
}

// mergeOrder rebuilds the magnitude order after the listed coefficients
// changed value: the surviving entries keep their relative order (their
// keys are untouched), the changed ones are sorted among themselves and
// the two runs merge under the same (|normalized| desc, index asc)
// comparator TopK sorts by. Because that comparator is a strict total
// order, the result is the unique sorted sequence — element-identical to
// TopK(c, n) — in O(n + |changed| log |changed|).
func mergeOrder(old []int, c []float64, n int, changed []int) []int {
	inChanged := make(map[int]bool, len(changed))
	for _, i := range changed {
		inChanged[i] = true
	}
	kept := make([]int, 0, len(old))
	for _, i := range old {
		if !inChanged[i] {
			kept = append(kept, i)
		}
	}
	key := func(i int) float64 {
		v := c[i]
		if v < 0 {
			v = -v
		}
		return v * haar.NormFactor(i, n)
	}
	less := func(a, b int) bool {
		ka, kb := key(a), key(b)
		if ka != kb {
			return ka > kb
		}
		return a < b
	}
	sortInts(changed, less)
	out := make([]int, 0, n)
	ci := 0
	for _, i := range kept {
		for ci < len(changed) && less(changed[ci], i) {
			out = append(out, changed[ci])
			ci++
		}
		out = append(out, i)
	}
	out = append(out, changed[ci:]...)
	return out
}

// sortInts is an insertion sort under an arbitrary strict order — the
// changed set is O(log n) per mutated item, far below sort.Slice's
// overhead at that size.
func sortInts(xs []int, less func(a, b int) bool) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && less(xs[j], xs[j-1]); j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// ---------------------------------------------------------------------------
// DP family maintenance.

// refreshDP re-derives the point errors and candidate sets over the
// patched data (both are rebuilt wholesale — their cost is a vanishing
// fraction of the forward DP's), diffs the candidates, and picks the
// cheapest correct path: dirty-path repair when the changes are confined
// to the dirty items' finest path nodes, a full forward resweep on the
// retained layout otherwise, and a layout rebuild when candidate counts
// changed.
func (lv *Live) refreshDP(dirty []int) error {
	newPe, err := NewPointErrors(lv.vp, lv.kind, lv.p)
	if err != nil {
		return err
	}
	newCvals := haar.Forward(lv.vp.ExpectedFreqs())
	newCands := lv.candidates(newCvals)
	if lv.n == 1 {
		lv.pe, lv.cvals, lv.cands = newPe, newCvals, newCands
		return nil // singleton extraction reads pe/cands directly
	}
	if sameCandidateShape(lv.cands, newCands) {
		changed := changedCandidates(lv.cands, newCands)
		if lv.d.canRepair(dirty, changed) {
			lv.pe, lv.cvals, lv.cands = newPe, newCvals, newCands
			lv.d.pe, lv.d.cands = newPe, newCands
			lv.d.repair(dirty)
			lv.fastRepairs++
			return nil
		}
	}
	lv.pe, lv.cvals, lv.cands = newPe, newCvals, newCands
	return lv.rebuildDP()
}

// candidates builds the per-coefficient candidate lists for the DP
// families, exactly as the Sweep constructors do.
func (lv *Live) candidates(cvals []float64) [][]float64 {
	if lv.family == LiveUnrestrictedFamily {
		return candidateGrids(lv.vp, cvals, lv.q)
	}
	cands := make([][]float64, lv.n)
	for j := range cands {
		cands[j] = cvals[j : j+1]
	}
	return cands
}

func sameCandidateShape(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for j := range a {
		if len(a[j]) != len(b[j]) {
			return false
		}
	}
	return true
}

// changedCandidates returns the coefficients whose candidate values
// differ (shapes already known equal).
func changedCandidates(a, b [][]float64) []int {
	var out []int
	for j := range a {
		for k := range a[j] {
			if a[j][k] != b[j][k] {
				out = append(out, j)
				break
			}
		}
	}
	return out
}

// rebuildDP re-runs the forward sweep over the current pe/cands.
func (lv *Live) rebuildDP() error {
	quant := 0
	if lv.family == LiveRestrictedFamily {
		quant = lv.q
	}
	d, err := newTreeDP(lv.n, lv.bmax, lv.cands, lv.pe, lv.kind.Cumulative(), quant, lv.pool)
	if err != nil {
		return err
	}
	lv.d = d
	return nil
}

// rebuildAll reconstructs every retained structure from lv.vp — the
// initial build, and the regrow path when appends outgrow the padding.
func (lv *Live) rebuildAll() error {
	lv.bmax = lv.breq
	if lv.bmax > lv.n {
		lv.bmax = lv.n
	}
	lv.costs = nil
	if lv.family == LiveSSEFamily {
		lv.expected = lv.vp.ExpectedFreqs()
		lv.c = haar.Forward(lv.expected)
		lv.order = haar.TopK(lv.c, lv.n)
		lv.varArr = make([]float64, lv.logical)
		for i := 0; i < lv.logical; i++ {
			mean, sq := lv.vp.Items[i].Mean(), lv.vp.Items[i].MeanSq()
			lv.varArr[i] = sq - mean*mean
		}
		lv.recomputeSSEMoments()
		return nil
	}
	pe, err := NewPointErrors(lv.vp, lv.kind, lv.p)
	if err != nil {
		return err
	}
	lv.pe = pe
	lv.cvals = haar.Forward(lv.vp.ExpectedFreqs())
	lv.cands = lv.candidates(lv.cvals)
	if lv.n == 1 {
		lv.d = nil
		return nil
	}
	return lv.rebuildDP()
}

// at extracts the budget-b synopsis from the maintained state, mirroring
// the corresponding Sweep's extraction operation for operation.
func (lv *Live) at(b int) *Synopsis {
	switch {
	case lv.family == LiveSSEFamily:
		syn := fromDense(lv.c, lv.order[:b])
		retained := 0.0
		for k, i := range syn.Indices {
			nv := syn.Values[k] * haar.NormFactor(i, lv.n)
			retained += nv * nv
		}
		syn.Cost = lv.varFloor + (lv.totalMuSq - retained)
		return syn
	case lv.n == 1 && lv.family == LiveRestrictedFamily:
		return restrictedSingleton(lv.pe, lv.cvals[0], b)
	case lv.n == 1:
		return unrestrictedSingleton(lv.pe, lv.cands[0], b)
	default:
		keep, best := lv.d.extract(b)
		syn := synopsisFromChoices(lv.n, keep)
		if lv.d.quant > 0 {
			syn.Cost = lv.pe.SynopsisError(syn)
		} else {
			syn.Cost = best
		}
		return syn
	}
}
