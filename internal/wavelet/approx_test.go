package wavelet_test

// Quantized restricted DP tests: the approximate build's exactly-evaluated
// cost must dominate the exact optimum and stay within the surfaced
// additive bound, converge to the exact DP as the grid refines (and match
// it bit for bit once the grid is at least as fine as the exact state
// space), stay bit-identical across worker counts, and extract
// codec-byte-identical synopses from one sweep and from independent
// builds. The large-domain test pins the headline capability: domains
// where the exact DP overflows maxTreeStates build fine quantized, and
// the overflow error itself reports the grid size that would fit.

import (
	"bytes"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"probsyn/internal/metric"
	"probsyn/internal/ptest"
	"probsyn/internal/synopsis"
	"probsyn/internal/wavelet"
)

func TestRestrictedApproxCostVsExact(t *testing.T) {
	p := metric.Params{C: 0.5}
	for _, n := range []int{64, 256} {
		for _, kind := range []metric.Kind{metric.SAE, metric.SSEFixed, metric.MAE} {
			rng := rand.New(rand.NewSource(int64(n)))
			vp := ptest.RandomValuePDF(rng, n, 3)
			const B = 12
			exact, err := wavelet.SweepRestricted(vp, kind, p, B)
			if err != nil {
				t.Fatalf("n=%d %v exact: %v", n, kind, err)
			}
			prevBound := math.Inf(1)
			for _, q := range []int{2, 4, 8, 16, 32, n} {
				sw, err := wavelet.SweepRestrictedApprox(vp, kind, p, B, q)
				if err != nil {
					t.Fatalf("n=%d %v q=%d: %v", n, kind, q, err)
				}
				bound := sw.ErrorBound()
				if bound < 0 {
					t.Fatalf("n=%d %v q=%d: negative bound %v", n, kind, q, bound)
				}
				if bound > prevBound {
					t.Fatalf("n=%d %v q=%d: bound %v grew past coarser grid's %v", n, kind, q, bound, prevBound)
				}
				prevBound = bound
				for b := 1; b <= B; b++ {
					opt, got := exact.Cost(b), sw.Cost(b)
					if got < opt-1e-9*math.Abs(opt)-1e-12 {
						t.Fatalf("n=%d %v q=%d b=%d: quantized cost %v below exact optimum %v", n, kind, q, b, got, opt)
					}
					if got > opt+bound+1e-9*(math.Abs(opt)+bound)+1e-12 {
						t.Fatalf("n=%d %v q=%d b=%d: quantized cost %v exceeds optimum %v + bound %v", n, kind, q, b, got, opt, bound)
					}
				}
			}
			// A grid at least as fine as the exact state space (q >= n/2)
			// must degenerate to the exact DP: zero bound, bit-identical
			// synopses and costs.
			sw, err := wavelet.SweepRestrictedApprox(vp, kind, p, B, n)
			if err != nil {
				t.Fatal(err)
			}
			if sw.ErrorBound() != 0 {
				t.Fatalf("n=%d %v q=n: nonzero bound %v on degenerate-exact grid", n, kind, sw.ErrorBound())
			}
			for b := 1; b <= B; b++ {
				want, err := exact.Synopsis(b)
				if err != nil {
					t.Fatal(err)
				}
				got, err := sw.Synopsis(b)
				if err != nil {
					t.Fatal(err)
				}
				synopsesIdentical(t, "q=n", want, got, exact.Cost(b), sw.Cost(b))
			}
		}
	}
}

func TestRestrictedApproxWorkerDeterminism(t *testing.T) {
	p := metric.Params{C: 0.5}
	rng := rand.New(rand.NewSource(7))
	vp := ptest.RandomValuePDF(rng, 300, 3) // pads to 512
	const B, q = 10, 8
	serial, sc, err := wavelet.BuildRestrictedApprox(vp, metric.SAE, p, B, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, runtime.NumCPU()} {
		syn, c, err := wavelet.BuildRestrictedApproxPool(vp, metric.SAE, p, B, q, finePool(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		synopsesIdentical(t, "approx", serial, syn, sc, c)
	}
}

func TestRestrictedApproxSweepMatchesBuilds(t *testing.T) {
	p := metric.Params{C: 0.5}
	rng := rand.New(rand.NewSource(11))
	vp := ptest.RandomValuePDF(rng, 120, 3) // pads to 128
	const B = 9
	for _, q := range []int{4, 16} {
		sw, err := wavelet.SweepRestrictedApproxPool(vp, metric.SARE, p, B, q, finePool(2))
		if err != nil {
			t.Fatalf("q=%d: %v", q, err)
		}
		for b := 1; b <= sw.Bmax(); b++ {
			fromSweep, err := sw.Synopsis(b)
			if err != nil {
				t.Fatal(err)
			}
			built, cost, err := wavelet.BuildRestrictedApprox(vp, metric.SARE, p, b, q)
			if err != nil {
				t.Fatalf("q=%d b=%d: %v", q, b, err)
			}
			synopsesIdentical(t, "sweep-vs-build", built, fromSweep, cost, sw.Cost(b))
			sb, err := synopsis.Marshal(fromSweep)
			if err != nil {
				t.Fatal(err)
			}
			bb, err := synopsis.Marshal(built)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sb, bb) {
				t.Fatalf("q=%d b=%d: sweep extraction not codec-byte-identical to independent build", q, b)
			}
		}
	}
}

func TestRestrictedApproxLargeDomain(t *testing.T) {
	if testing.Short() {
		t.Skip("large-domain build")
	}
	p := metric.Params{C: 0.5}
	rng := rand.New(rand.NewSource(3))
	const n = 32768 // levels = 15: the exact DP needs 2^27 states at level 13
	vp := ptest.RandomValuePDF(rng, n, 2)
	_, _, err := wavelet.BuildRestricted(vp, metric.SAE, p, 8)
	if err == nil {
		t.Fatal("exact restricted DP unexpectedly fit n=32768")
	}
	if !strings.Contains(err.Error(), "q <= 8192") {
		t.Fatalf("overflow error does not name the grid size that fits: %v", err)
	}
	if !strings.Contains(err.Error(), "1.342e+08") {
		t.Fatalf("overflow error does not report the actual state demand: %v", err)
	}
	syn, cost, err := wavelet.BuildRestrictedApproxPool(vp, metric.SAE, p, 8, 16, finePool(0))
	if err != nil {
		t.Fatalf("quantized build at n=%d: %v", n, err)
	}
	if syn.N != n || len(syn.Indices) == 0 || math.IsNaN(cost) || math.IsInf(cost, 0) {
		t.Fatalf("quantized build at n=%d returned a degenerate synopsis (|coeffs|=%d, cost=%v)", n, len(syn.Indices), cost)
	}
}

func TestRestrictedApproxValidation(t *testing.T) {
	p := metric.Params{C: 0.5}
	rng := rand.New(rand.NewSource(9))
	vp := ptest.RandomValuePDF(rng, 16, 2)
	for _, q := range []int{-1, 0, 1} {
		if _, err := wavelet.SweepRestrictedApprox(vp, metric.SAE, p, 4, q); err == nil {
			t.Fatalf("q=%d accepted, want error", q)
		}
		if _, _, err := wavelet.BuildRestrictedApprox(vp, metric.SAE, p, 4, q); err == nil {
			t.Fatalf("q=%d accepted by build, want error", q)
		}
	}
}
