package wavelet

import (
	"fmt"
	"math"

	"probsyn/internal/haar"
	"probsyn/internal/metric"
	"probsyn/internal/pdata"
)

// BuildUnrestricted approximates the unrestricted thresholding problem of
// §4.2: retained coefficient values are chosen to optimize the target
// metric rather than pinned to their expected values. The paper defers
// this case, sketching the standard approach — "bound and quantize the
// range of possible coefficient values"; this implements that sketch:
//
//   - each coefficient's candidate set is a grid of 2q+1 values spanning
//     [μ_j − r_j, μ_j + r_j], where μ_j is the expected coefficient and
//     r_j a pessimistic range bound from the min/max possible frequencies
//     in its support (the paper's first suggested bounding option);
//   - the coefficient-tree DP then minimizes over candidate values as well
//     as retain/drop decisions and budget splits.
//
// The incoming-value state space grows as O((2q+2)^depth) per subtree
// instead of 2^depth, so this is exponentially more expensive than
// BuildRestricted in both q and log n — use it on small domains (the
// result is optimal over the quantized candidate sets). By construction
// its error is never worse than the restricted optimum, since μ_j is
// always a candidate; the tests verify both properties.
func BuildUnrestricted(src pdata.Source, kind metric.Kind, p metric.Params, B, q int) (*Synopsis, float64, error) {
	if B < 0 {
		return nil, 0, fmt.Errorf("wavelet: negative budget %d", B)
	}
	if q < 0 {
		return nil, 0, fmt.Errorf("wavelet: negative quantization %d", q)
	}
	vp := padValuePDF(pdata.AsValuePDF(src))
	pe, err := NewPointErrors(vp, kind, p)
	if err != nil {
		return nil, 0, err
	}
	n := vp.N
	mu := haar.Forward(vp.ExpectedFreqs())
	if B > n {
		B = n
	}

	// Candidate values per coefficient: expected value plus a symmetric
	// quantized grid over the pessimistic range.
	cands := candidateGrids(vp, mu, q)

	d := &unrestrictedDP{
		n: n, B: B, cands: cands, pe: pe,
		cumulative: kind.Cumulative(),
		memo:       make(map[string][]float64),
	}
	if n == 1 {
		syn := &Synopsis{N: 1}
		best := pe.Err(0, 0)
		bestV := math.NaN()
		if B >= 1 {
			for _, v := range cands[0] {
				if e := pe.Err(0, v); e < best {
					best, bestV = e, v
				}
			}
		}
		if !math.IsNaN(bestV) {
			syn.Indices, syn.Values = []int{0}, []float64{bestV}
		}
		syn.Cost = best
		return syn, best, nil
	}

	type choice struct {
		idx int
		val float64
	}
	var keep []choice
	// Root: try dropping c0 and every candidate value for it.
	noC0 := d.solve(1, "", 0)
	best := noC0[B]
	bestC0 := math.NaN()
	if B >= 1 {
		for ci, v := range cands[0] {
			res := d.solve(1, fmt.Sprintf("r%d.", ci), v)
			if res[B-1] < best {
				best, bestC0 = res[B-1], v
			}
		}
	}
	if !math.IsNaN(bestC0) {
		keep = append(keep, choice{0, bestC0})
		ci := candIndex(cands[0], bestC0)
		d.backtrack(1, fmt.Sprintf("r%d.", ci), bestC0, B-1, func(j int, v float64) {
			keep = append(keep, choice{j, v})
		})
	} else {
		d.backtrack(1, "", 0, B, func(j int, v float64) {
			keep = append(keep, choice{j, v})
		})
	}
	idx := make([]int, len(keep))
	for k, c := range keep {
		idx[k] = c.idx
	}
	syn := fromDense(make([]float64, n), idx)
	for k := range syn.Indices {
		for _, c := range keep {
			if c.idx == syn.Indices[k] {
				syn.Values[k] = c.val
			}
		}
	}
	syn.Cost = best
	return syn, best, nil
}

// candidateGrids builds each coefficient's candidate value list: μ first
// (so the restricted solution stays reachable), then 2q grid points over
// the pessimistic range derived from min/max possible frequencies.
func candidateGrids(vp *pdata.ValuePDF, mu []float64, q int) [][]float64 {
	n := vp.N
	minF := make([]float64, n)
	maxF := make([]float64, n)
	for i := 0; i < n; i++ {
		lo, hi := math.Inf(1), 0.0
		if vp.Items[i].ZeroProb() > 0 {
			lo = 0
		}
		for _, e := range vp.Items[i].Entries {
			if e.Prob <= 0 {
				continue
			}
			lo = math.Min(lo, e.Freq)
			hi = math.Max(hi, e.Freq)
		}
		if math.IsInf(lo, 1) {
			lo = 0
		}
		minF[i], maxF[i] = lo, hi
	}
	// Coefficient j = (avg of left half - avg of right half)/2; a
	// pessimistic bound uses extreme frequencies on each side.
	cands := make([][]float64, n)
	for j := 0; j < n; j++ {
		lo, hi := haar.Support(j, n)
		fmin, fmax := math.Inf(1), math.Inf(-1)
		for i := lo; i <= hi; i++ {
			fmin = math.Min(fmin, minF[i])
			fmax = math.Max(fmax, maxF[i])
		}
		var cLo, cHi float64
		if j == 0 {
			cLo, cHi = fmin, fmax // the overall average lies within [fmin, fmax]
		} else {
			half := (fmax - fmin) / 2
			cLo, cHi = -half, half
		}
		list := []float64{mu[j]}
		for g := 0; g < 2*q; g++ {
			v := cLo + (cHi-cLo)*float64(g)/math.Max(1, float64(2*q-1))
			if v != mu[j] {
				list = append(list, v)
			}
		}
		cands[j] = list
	}
	return cands
}

func candIndex(cands []float64, v float64) int {
	for i, c := range cands {
		if c == v {
			return i
		}
	}
	return 0
}

type unrestrictedDP struct {
	n          int
	B          int
	cands      [][]float64
	pe         *PointErrors
	cumulative bool
	memo       map[string][]float64
}

func (d *unrestrictedDP) combine(a, b float64) float64 {
	if d.cumulative {
		return a + b
	}
	return math.Max(a, b)
}

// solve returns res[b] = minimal subtree error of node j with at most b
// retained coefficients, given incoming value v; path is a string key
// encoding the ancestor decisions that produced v.
func (d *unrestrictedDP) solve(j int, path string, v float64) []float64 {
	key := fmt.Sprintf("%d|%s", j, path)
	if r, ok := d.memo[key]; ok {
		return r
	}
	res := make([]float64, d.B+1)
	left, right, isLeaf := haar.Children(j, d.n)
	if isLeaf {
		res[0] = d.combine(d.pe.Err(left, v), d.pe.Err(right, v))
		if d.B >= 1 {
			best := res[0]
			for _, vj := range d.cands[j] {
				if r := d.combine(d.pe.Err(left, v+vj), d.pe.Err(right, v-vj)); r < best {
					best = r
				}
			}
			for b := 1; b <= d.B; b++ {
				res[b] = best
			}
		}
	} else {
		lnr := d.solve(left, path+"n.", v)
		rnr := d.solve(right, path+"n.", v)
		for b := 0; b <= d.B; b++ {
			best := math.Inf(1)
			for bl := 0; bl <= b; bl++ {
				if c := d.combine(lnr[bl], rnr[b-bl]); c < best {
					best = c
				}
			}
			res[b] = best
		}
		for ci, vj := range d.cands[j] {
			childPath := fmt.Sprintf("%sr%d.", path, ci)
			lr := d.solve(left, childPath, v+vj)
			rr := d.solve(right, childPath, v-vj)
			for b := 1; b <= d.B; b++ {
				for bl := 0; bl <= b-1; bl++ {
					if c := d.combine(lr[bl], rr[b-1-bl]); c < res[b] {
						res[b] = c
					}
				}
			}
		}
	}
	d.memo[key] = res
	return res
}

// backtrack re-derives argmin decisions, reporting retained (index, value)
// pairs through emit.
func (d *unrestrictedDP) backtrack(j int, path string, v float64, b int, emit func(int, float64)) {
	res := d.solve(j, path, v)
	target := res[b]
	left, right, isLeaf := haar.Children(j, d.n)
	if isLeaf {
		notRetained := d.combine(d.pe.Err(left, v), d.pe.Err(right, v))
		if b >= 1 && notRetained > target {
			for _, vj := range d.cands[j] {
				if d.combine(d.pe.Err(left, v+vj), d.pe.Err(right, v-vj)) <= target {
					emit(j, vj)
					return
				}
			}
		}
		return
	}
	lnr := d.solve(left, path+"n.", v)
	rnr := d.solve(right, path+"n.", v)
	for bl := 0; bl <= b; bl++ {
		if d.combine(lnr[bl], rnr[b-bl]) <= target {
			d.backtrack(left, path+"n.", v, bl, emit)
			d.backtrack(right, path+"n.", v, b-bl, emit)
			return
		}
	}
	for ci, vj := range d.cands[j] {
		childPath := fmt.Sprintf("%sr%d.", path, ci)
		lr := d.solve(left, childPath, v+vj)
		rr := d.solve(right, childPath, v-vj)
		for bl := 0; bl <= b-1; bl++ {
			if d.combine(lr[bl], rr[b-1-bl]) <= target {
				emit(j, vj)
				d.backtrack(left, childPath, v+vj, bl, emit)
				d.backtrack(right, childPath, v-vj, b-1-bl, emit)
				return
			}
		}
	}
}
