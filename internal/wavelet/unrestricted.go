package wavelet

import (
	"math"

	"probsyn/internal/engine"
	"probsyn/internal/haar"
	"probsyn/internal/metric"
	"probsyn/internal/pdata"
)

// BuildUnrestricted approximates the unrestricted thresholding problem of
// §4.2: retained coefficient values are chosen to optimize the target
// metric rather than pinned to their expected values. The paper defers
// this case, sketching the standard approach — "bound and quantize the
// range of possible coefficient values"; this implements that sketch:
//
//   - each coefficient's candidate set is a grid of 2q+1 values spanning
//     [μ_j − r_j, μ_j + r_j], where μ_j is the expected coefficient and
//     r_j a pessimistic range bound from the min/max possible frequencies
//     in its support (the paper's first suggested bounding option);
//   - the coefficient-tree DP then minimizes over candidate values as well
//     as retain/drop decisions and budget splits.
//
// The ancestor-decision state space grows as the product of candidate-set
// sizes along each root-to-leaf path — O((2q+2)^depth) instead of the
// restricted DP's 2^depth — so this is exponentially more expensive than
// BuildRestricted in both q and log n. Use it on small domains: the
// result is optimal over the quantized candidate sets, and combinations
// whose state space would exhaust memory fail fast with an error. By
// construction its error is never worse than the restricted optimum,
// since μ_j is always a candidate; the tests verify both properties.
// BuildUnrestricted is single-threaded shorthand for
// BuildUnrestrictedPool with a nil pool.
func BuildUnrestricted(src pdata.Source, kind metric.Kind, p metric.Params, B, q int) (*Synopsis, float64, error) {
	return BuildUnrestrictedPool(src, kind, p, B, q, nil)
}

// BuildUnrestrictedWorkers is BuildUnrestricted with the DP's level
// sweeps spread across `workers` goroutines (workers <= 0 means one per
// CPU) at the engine's default grain.
func BuildUnrestrictedWorkers(src pdata.Source, kind metric.Kind, p metric.Params, B, q, workers int) (*Synopsis, float64, error) {
	return BuildUnrestrictedPool(src, kind, p, B, q, engine.New(engine.Options{Workers: workers}))
}

// BuildUnrestrictedPool is BuildUnrestricted scheduled on an explicit
// engine pool (nil means serial); like the restricted build, the result
// is bit-identical at any worker count.
func BuildUnrestrictedPool(src pdata.Source, kind metric.Kind, p metric.Params, B, q int, pool *engine.Pool) (*Synopsis, float64, error) {
	sw, err := SweepUnrestrictedPool(src, kind, p, B, q, pool)
	if err != nil {
		return nil, 0, err
	}
	syn := sw.at(min(B, sw.bmax))
	return syn, syn.Cost, nil
}

// unrestrictedSingleton solves the n == 1 domain at budget b: retain the
// best candidate value only when strictly better than dropping.
func unrestrictedSingleton(pe *PointErrors, cands []float64, b int) *Synopsis {
	syn := &Synopsis{N: 1}
	best := pe.Err(0, 0)
	bestV := math.NaN()
	if b >= 1 {
		for _, v := range cands {
			if e := pe.Err(0, v); e < best {
				best, bestV = e, v
			}
		}
	}
	if !math.IsNaN(bestV) {
		syn.Indices, syn.Values = []int{0}, []float64{bestV}
	}
	syn.Cost = best
	return syn
}

// candidateGrids builds each coefficient's candidate value list: μ first
// (so the restricted solution stays reachable), then 2q grid points over
// the pessimistic range derived from min/max possible frequencies.
func candidateGrids(vp *pdata.ValuePDF, mu []float64, q int) [][]float64 {
	n := vp.N
	minF := make([]float64, n)
	maxF := make([]float64, n)
	for i := 0; i < n; i++ {
		lo, hi := math.Inf(1), 0.0
		if vp.Items[i].ZeroProb() > 0 {
			lo = 0
		}
		for _, e := range vp.Items[i].Entries {
			if e.Prob <= 0 {
				continue
			}
			lo = math.Min(lo, e.Freq)
			hi = math.Max(hi, e.Freq)
		}
		if math.IsInf(lo, 1) {
			lo = 0
		}
		minF[i], maxF[i] = lo, hi
	}
	// Coefficient j = (avg of left half - avg of right half)/2; a
	// pessimistic bound uses extreme frequencies on each side.
	cands := make([][]float64, n)
	for j := 0; j < n; j++ {
		lo, hi := haar.Support(j, n)
		fmin, fmax := math.Inf(1), math.Inf(-1)
		for i := lo; i <= hi; i++ {
			fmin = math.Min(fmin, minF[i])
			fmax = math.Max(fmax, maxF[i])
		}
		var cLo, cHi float64
		if j == 0 {
			cLo, cHi = fmin, fmax // the overall average lies within [fmin, fmax]
		} else {
			half := (fmax - fmin) / 2
			cLo, cHi = -half, half
		}
		list := []float64{mu[j]}
		for g := 0; g < 2*q; g++ {
			v := cLo + (cHi-cLo)*float64(g)/math.Max(1, float64(2*q-1))
			if v != mu[j] {
				list = append(list, v)
			}
		}
		cands[j] = list
	}
	return cands
}
