package wavelet

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"probsyn/internal/engine"
	"probsyn/internal/haar"
)

// This file implements the coefficient-tree dynamic program shared by the
// restricted (Theorem 8) and unrestricted (§4.2 sketch) thresholding
// problems as a bottom-up, level-by-level sweep over the Haar error tree.
//
// A DP state is (node j, ancestor decisions): every subset of j's
// ancestors that is retained — each at one of its candidate values —
// determines the "incoming value" v that the ancestors contribute to j's
// support, and the table OPTW[j, state][b] holds the minimal expected
// subtree error with at most b coefficients retained below (and at) j.
// States of one level depend only on the completed level below, so each
// level is a flat array of independent slots dispatched through the
// engine pool; the parallel schedule is bit-identical to the serial one
// at any worker count because no cross-worker reduction exists — every
// slot is computed by one worker in the serial operation order.
//
// Layout. Level l holds detail nodes [2^l, 2^{l+1}); a node whose parent
// block has S states and whose parent branches br ways (drop + one branch
// per candidate value) has S·br states, stored contiguously with the
// parent state as the high digits (child state = parent state · br +
// decision). Budget axes are capped at the subtree coefficient count —
// entries beyond the cap would only repeat the saturated value, so reads
// clamp instead (res[min(b, cap)]). The finest detail level (whose
// children are data items) is never materialized: its two-entry tables
// are recomputed inline from PointErrors both by its parents' sweep and
// by the backtrack, which re-derives every argmin decision from the kept
// level tables.
//
// Quantized mode (restricted DP only). Exact ancestor-decision state
// counts double per level — 2^(l+1) states per node at level l — which is
// what makes the restricted DP O(n²B²). With quant = q > 0, any level
// whose per-node exact count would exceed q instead keeps q states per
// node: a uniform grid of q incoming values spanning the node's analytic
// value bounds (the paper's §4.2 "bound and quantize" argument). A
// transition into a quantized level snaps the exact child value v±w to
// the nearest grid point; everything else — decision order, tie-breaks,
// the budget convolution — is unchanged, so quantized results stay
// bit-identical at any worker count and across sweep extractions for the
// same reason exact ones do. The DP's internal objective is then only
// approximate; extraction re-evaluates the chosen synopsis exactly
// (PointErrors.SynopsisError) and errorBound() bounds the gap to the
// exact optimum.

// maxTreeStates bounds one level's ancestor-decision state count. The
// restricted DP stays quadratic (2^depth states over 2^depth nodes at the
// finest kept level), but the unrestricted DP grows as the product of
// candidate-set sizes along the path, so runaway (n, q) combinations fail
// fast with an error instead of exhausting memory.
const maxTreeStates = 1 << 26

// coefChoice is one retained coefficient: its index and stored value.
type coefChoice struct {
	idx int
	val float64
}

type treeDP struct {
	n          int // padded domain size, power of two, >= 2
	levels     int // log2 n: detail levels of the error tree
	B          int // coefficient budget ("at most B"), already clamped to n
	quant      int // incoming-value grid size per node; 0 = exact
	cands      [][]float64
	pe         *PointErrors
	cumulative bool
	pool       *engine.Pool

	// Per-level tables, built bottom-up and kept for the backtrack; only
	// levels 0..levels-2 are materialized (see the layout note above).
	res  [][]float64 // res[l]: flat [state][0..bcap[l]] blocks
	offs [][]int     // offs[l][i]: first state of node 2^l+i; last entry = level total
	bcap []int       // bcap[l] = min(B, subtree coefficient count)

	// Quantized mode only (quant > 0): each state's incoming value, and
	// the per-node analytic value bounds and grid steps the snapped
	// transitions bucket against. Exact mode keeps none of this, so its
	// memory profile is unchanged.
	vals  [][]float64 // vals[l][state]: incoming value (grid or exact)
	blo   [][]float64 // blo[l][i], bhi[l][i]: incoming-value bounds of node 2^l+i
	bhi   [][]float64
	gstep [][]float64 // gstep[l][i]: grid step on quantized levels, else 0
}

// newTreeDP executes the shared DP's forward level sweeps through the
// pool and returns the solved table set. cands[j] lists the candidate
// retained values of coefficient j (the restricted problem passes exactly
// its expected value); cands[0] is the overall average c0. The kept level
// tables answer extract(b) for every budget b <= B: an entry at budget
// index b' is computed only from child entries at budgets <= b', so the
// prefix of each table up to b is identical to the table a budget-b DP
// would have built — one forward run serves the whole budget frontier.
//
// quant > 0 selects quantized mode (restricted candidate shape only —
// exactly one candidate per coefficient): per-node incoming-value rows
// are capped at quant grid states. A grid at least as fine as the
// largest exact level changes nothing, so quant >= 2^(levels-1) is
// normalized to exact mode and yields bit-identical results.
func newTreeDP(n, B int, cands [][]float64, pe *PointErrors, cumulative bool, quant int, pool *engine.Pool) (*treeDP, error) {
	if pool == nil {
		pool = engine.Serial()
	}
	d := &treeDP{
		n: n, levels: bits.Len(uint(n)) - 1, B: B,
		cands: cands, pe: pe, cumulative: cumulative, pool: pool,
	}
	if quant > 0 {
		if quant < 2 {
			return nil, fmt.Errorf("wavelet: incoming-value quantization needs q >= 2, got %d", quant)
		}
		for _, cs := range cands {
			if len(cs) != 1 {
				return nil, fmt.Errorf("wavelet: quantized incoming values require the restricted candidate shape (one candidate per coefficient)")
			}
		}
		if quant >= 1<<(d.levels-1) {
			quant = 0
		}
	}
	d.quant = quant
	if d.levels == 1 {
		return d, nil // n == 2: extract enumerates the two nodes directly
	}
	if err := d.layout(); err != nil {
		return nil, err
	}
	d.res = make([][]float64, d.levels-1)
	if d.quant > 0 {
		d.buildGrids()
		d.solveLevel(d.levels-2, nil)
	} else {
		d.solveLevel(d.levels-2, d.incomingValues())
	}
	for l := d.levels - 3; l >= 0; l-- {
		d.solveLevel(l, nil)
	}
	return d, nil
}

func (d *treeDP) combine(a, b float64) float64 {
	if d.cumulative {
		return a + b
	}
	return math.Max(a, b)
}

// br returns node j's branch count: drop, or retain at one candidate.
func (d *treeDP) br(j int) int { return 1 + len(d.cands[j]) }

// lq reports whether level l's per-node states sit on a quantized grid:
// its exact ancestor-decision count 2^(l+1) would exceed the grid size.
func (d *treeDP) lq(l int) bool { return d.quant > 0 && 1<<(l+1) > d.quant }

// layout computes the per-level state offsets and budget caps, rejecting
// state spaces beyond maxTreeStates. In quantized mode per-node counts
// are capped at quant.
func (d *treeDP) layout() error {
	L := d.levels
	d.offs = make([][]int, L-1)
	d.bcap = make([]int, L-1)
	counts := []int{d.br(0)} // level 0: node 1, one state per c0 decision
	for l := 0; l <= L-2; l++ {
		d.bcap[l] = min(d.B, (1<<(L-l))-1)
		offs := make([]int, len(counts)+1)
		total := 0
		for i, c := range counts {
			offs[i] = total
			total += c
			if total > maxTreeStates {
				return d.stateOverflowErr(l, levelTotal(counts))
			}
		}
		offs[len(counts)] = total
		d.offs[l] = offs
		if l == L-2 {
			break
		}
		next := make([]int, 2*len(counts))
		for i, c := range counts {
			b := d.br((1 << l) + i)
			if c > maxTreeStates/b {
				need := 0.0
				for i2, c2 := range counts {
					need += 2 * float64(c2) * float64(d.br((1<<l)+i2))
				}
				return d.stateOverflowErr(l+1, need)
			}
			cb := c * b
			if d.quant > 0 && cb > d.quant {
				cb = d.quant
			}
			next[2*i] = cb
			next[2*i+1] = cb
		}
		counts = next
	}
	return nil
}

// levelTotal sums per-node state counts in float64, so an overflowing
// demand can still be reported exactly as computed.
func levelTotal(counts []int) float64 {
	t := 0.0
	for _, c := range counts {
		t += float64(c)
	}
	return t
}

// stateOverflowErr builds the maxTreeStates diagnostic: the level that
// overflowed, the state count it actually needs, and the largest
// quantization that would fit. The finest kept level L-2 has 2^(L-2)
// nodes, so a quantized restricted DP holds at most 2^(L-2)·q states per
// level; the unrestricted DP's per-node branch count is at most 2q+2
// (drop + mean + 2q grid candidates), giving ~2^(L-2)·(2q+2)^(L-1)
// states at the finest kept level.
func (d *treeDP) stateOverflowErr(l int, need float64) error {
	msg := fmt.Sprintf("wavelet: coefficient-tree DP needs %.4g states at level %d, over the %d cap", need, l, maxTreeStates)
	restricted := true
	for _, cs := range d.cands {
		if len(cs) != 1 {
			restricted = false
			break
		}
	}
	if restricted {
		qfit := 0
		if s := d.levels - 2; s >= 0 && s < 62 {
			qfit = maxTreeStates >> s
		}
		switch {
		case qfit >= 2 && d.quant > 0:
			return fmt.Errorf("%s; reduce the quantization to q <= %d", msg, qfit)
		case qfit >= 2:
			return fmt.Errorf("%s; a quantized build with q <= %d fits", msg, qfit)
		default:
			return fmt.Errorf("%s; the domain is too large for any quantization", msg)
		}
	}
	if d.levels >= 2 {
		bstar := math.Pow(float64(maxTreeStates)/math.Pow(2, float64(d.levels-2)), 1/float64(d.levels-1))
		if q := int((bstar - 2) / 2); q >= 1 {
			return fmt.Errorf("%s; reduce the candidate quantization to q <= %d", msg, q)
		}
	}
	return fmt.Errorf("%s; reduce the domain", msg)
}

// incomingValues returns, for every state of the last internal level, the
// reconstruction value the ancestors contribute to that node's support —
// the incoming value v of the paper's OPTW[j, b, v] state. Built top-down
// level by level; intermediate levels are discarded (the backtrack
// re-derives v incrementally while descending).
func (d *treeDP) incomingValues() []float64 {
	L := d.levels
	cur := make([]float64, d.offs[0][1])
	for c, w := range d.cands[0] {
		cur[c+1] = w
	}
	for l := 0; l < L-2; l++ {
		next := make([]float64, d.offs[l+1][1<<(l+1)])
		first := 1 << l
		for i := 0; i < first; i++ {
			j := first + i
			b := d.br(j)
			base := d.offs[l][i]
			cnt := d.offs[l][i+1] - base
			lbase := d.offs[l+1][2*i]
			rbase := d.offs[l+1][2*i+1]
			for s := 0; s < cnt; s++ {
				v := cur[base+s]
				next[lbase+s*b] = v
				next[rbase+s*b] = v
				for dd := 1; dd < b; dd++ {
					w := d.cands[j][dd-1]
					next[lbase+s*b+dd] = v + w
					next[rbase+s*b+dd] = v - w
				}
			}
		}
		cur = next
	}
	return cur
}

// buildGrids materializes, for every kept level, each state's incoming
// value, plus the per-node analytic value bounds and the grid steps the
// quantized transitions snap against. Bounds accumulate top-down — a
// child of node j with candidate w widens its parent's interval by w's
// contribution on that side — so every reachable incoming value, exact
// or already snapped, stays inside them. Exact (non-quantized) levels
// enumerate ancestor decisions with the same v±w recurrence
// incomingValues uses; a quantized level instead lays quant evenly
// spaced grid points per node across that node's bounds.
func (d *treeDP) buildGrids() {
	L := d.levels
	d.vals = make([][]float64, L-1)
	d.blo = make([][]float64, L-1)
	d.bhi = make([][]float64, L-1)
	d.gstep = make([][]float64, L-1)
	for l := 0; l <= L-2; l++ {
		nn := 1 << l
		d.blo[l] = make([]float64, nn)
		d.bhi[l] = make([]float64, nn)
		d.gstep[l] = make([]float64, nn)
		d.vals[l] = make([]float64, d.offs[l][nn])
	}
	w0 := d.cands[0][0]
	d.blo[0][0] = math.Min(0, w0)
	d.bhi[0][0] = math.Max(0, w0)
	for l := 0; l <= L-2; l++ {
		for i := 0; i < 1<<l; i++ {
			base := d.offs[l][i]
			cnt := d.offs[l][i+1] - base
			switch {
			case d.lq(l):
				lo := d.blo[l][i]
				step := (d.bhi[l][i] - lo) / float64(d.quant-1)
				d.gstep[l][i] = step
				for k := 0; k < cnt; k++ {
					d.vals[l][base+k] = lo + float64(k)*step
				}
			case l == 0:
				d.vals[0][1] = w0 // state 0 drops c0: incoming value 0
			default:
				// Exact level: the parent level is exact too
				// (quantization only deepens), so enumerate its states
				// against the parent node's single candidate.
				pi := i >> 1
				pj := (1 << (l - 1)) + pi
				w := d.cands[pj][0]
				if i&1 == 1 {
					w = -w
				}
				pbase := d.offs[l-1][pi]
				pcnt := d.offs[l-1][pi+1] - pbase
				for s := 0; s < pcnt; s++ {
					v := d.vals[l-1][pbase+s]
					d.vals[l][base+2*s] = v
					d.vals[l][base+2*s+1] = v + w
				}
			}
		}
		if l == L-2 {
			break
		}
		for i := 0; i < 1<<l; i++ {
			w := d.cands[(1<<l)+i][0]
			lo, hi := d.blo[l][i], d.bhi[l][i]
			d.blo[l+1][2*i] = lo + math.Min(0, w)
			d.bhi[l+1][2*i] = hi + math.Max(0, w)
			d.blo[l+1][2*i+1] = lo - math.Max(0, w)
			d.bhi[l+1][2*i+1] = hi - math.Min(0, w)
		}
	}
}

// snap buckets incoming value v onto the level-l grid of the node with
// local index i: the index of the nearest of the quant evenly spaced
// points spanning the node's bounds. Pure float arithmetic on (v, the
// node's fixed bounds) — independent of worker count and call site, so
// forward sweeps, repairs, and backtracks bucket identically.
func (d *treeDP) snap(l, i int, v float64) int {
	step := d.gstep[l][i]
	if step == 0 {
		return 0
	}
	k := int(math.Round((v - d.blo[l][i]) / step))
	if k < 0 {
		return 0
	}
	if k >= d.quant {
		return d.quant - 1
	}
	return k
}

// leafTables fills out (length min(B,1)+1) with the budget table of the
// finest-level detail node j at incoming value v: out[0] drops the
// coefficient, out[1] (when the budget allows one) may retain the best
// candidate — "at most" semantics, so it is never worse than dropping.
func (d *treeDP) leafTables(j int, v float64, out []float64) {
	li, ri, _ := haar.Children(j, d.n)
	drop := d.combine(d.pe.Err(li, v), d.pe.Err(ri, v))
	out[0] = drop
	if len(out) > 1 {
		best := drop
		for _, w := range d.cands[j] {
			if r := d.combine(d.pe.Err(li, v+w), d.pe.Err(ri, v-w)); r < best {
				best = r
			}
		}
		out[1] = best
	}
}

// solveLevel computes level l's tables from the completed level below,
// dispatching the flattened (node, state) space through the pool. vals
// carries the incoming values when l is the last internal level, whose
// leaf children are evaluated inline.
func (d *treeDP) solveLevel(l int, vals []float64) {
	offs := d.offs[l]
	total := offs[1<<l]
	entries := d.bcap[l] + 1
	d.res[l] = make([]float64, total*entries)
	centries := min(d.B, 1) + 1
	if l != d.levels-2 {
		centries = d.bcap[l+1] + 1
	}
	// Dispatch (not MapChunks): result slots are derived from the state
	// range, so the pool may run this static or dynamic. Unrestricted
	// levels are ragged — per-node branch counts differ, so equal state
	// ranges carry unequal work — and a dynamic pool's finer chunks let
	// idle workers steal them with the same bit-identical result.
	d.pool.Dispatch(0, total, total*entries*centries, func(_, lo, hi int) {
		d.solveStates(l, lo, hi, vals, 0)
	})
}

// solveStates computes the level-l table entries of states [lo, hi) from
// the completed level below, in the serial operation order. vals holds
// the incoming values of the covered states when l is the last internal
// level, indexed vals[s-voff] (the full-level array for the forward
// sweep, a single node's block for a repair); in quantized mode every
// level's incoming values are retained in d.vals instead and the vals
// parameter is ignored. Every state is an independent slot, so any
// partition of a level into solveStates calls — the pool's chunks, a
// repair's dirty blocks — produces bit-identical tables.
func (d *treeDP) solveStates(l, lo, hi int, vals []float64, voff int) {
	offs := d.offs[l]
	first := 1 << l
	entries := d.bcap[l] + 1
	fused := l == d.levels-2
	var coffs []int
	ccap := min(d.B, 1)
	if !fused {
		coffs = d.offs[l+1]
		ccap = d.bcap[l+1]
	}
	centries := ccap + 1
	var lbuf, rbuf []float64
	if fused {
		lbuf = make([]float64, centries)
		rbuf = make([]float64, centries)
	}
	qmode := d.quant > 0
	qchild := !fused && d.lq(l+1)
	i := sort.SearchInts(offs, lo+1) - 1
	for s := lo; s < hi; i++ {
		j := first + i
		end := min(hi, offs[i+1])
		br := d.br(j)
		for ; s < end; s++ {
			local := s - offs[i]
			var v float64
			if qmode {
				v = d.vals[l][s]
			} else if fused {
				v = vals[s-voff]
			}
			out := d.res[l][s*entries : (s+1)*entries]
			for k := range out {
				out[k] = math.Inf(1)
			}
			for dd := 0; dd < br; dd++ {
				var w float64
				if dd > 0 {
					w = d.cands[j][dd-1]
				}
				var lt, rt []float64
				if fused {
					d.leafTables(2*j, v+w, lbuf)
					d.leafTables(2*j+1, v-w, rbuf)
					lt, rt = lbuf, rbuf
				} else {
					var cl, cr int
					if qchild {
						// Quantized child level: bucket the exact child
						// values onto the children's grids.
						cl = coffs[2*i] + d.snap(l+1, 2*i, v+w)
						cr = coffs[2*i+1] + d.snap(l+1, 2*i+1, v-w)
					} else {
						cl = coffs[2*i] + local*br + dd
						cr = coffs[2*i+1] + local*br + dd
					}
					lt = d.res[l+1][cl*centries : (cl+1)*centries]
					rt = d.res[l+1][cr*centries : (cr+1)*centries]
				}
				shift := 0
				if dd > 0 {
					shift = 1 // retaining j spends one coefficient
				}
				for bb := shift; bb < entries; bb++ {
					budget := bb - shift
					best := out[bb]
					for bl := 0; bl <= budget; bl++ {
						if c := d.combine(lt[min(bl, ccap)], rt[min(budget-bl, ccap)]); c < best {
							best = c
						}
					}
					out[bb] = best
				}
			}
		}
	}
}

// extract re-derives the optimal retained set and cost at budget b
// (clamped to [0, B]) from the kept tables: the root scan and backtrack
// perform exactly the operations a budget-b DP's finish would, so the
// extracted solution is bit-identical to an independent budget-b build.
// It only reads the tables — concurrent extractions at different budgets
// are safe.
func (d *treeDP) extract(b int) ([]coefChoice, float64) {
	if b > d.B {
		b = d.B
	}
	if b < 0 {
		b = 0
	}
	if d.levels == 1 {
		return d.extractRootLeaf(b)
	}
	bestD, best := d.rootBest(b)
	var keep []coefChoice
	if bestD > 0 {
		w := d.cands[0][bestD-1]
		keep = append(keep, coefChoice{0, w})
		d.walk(0, 1, bestD, w, b-1, &keep)
	} else {
		d.walk(0, 1, 0, 0, b, &keep)
	}
	return keep, best
}

// cost returns only the optimal expected error at budget b (no
// backtrack) — the cheap half of extract, for frontier cost curves.
func (d *treeDP) cost(b int) float64 {
	if b > d.B {
		b = d.B
	}
	if b < 0 {
		b = 0
	}
	if d.levels == 1 {
		_, c := d.extractRootLeaf(b)
		return c
	}
	_, best := d.rootBest(b)
	return best
}

// rootBest scans the root's c0 decisions at budget b — drop first, then
// candidates in order, with strict <, matching the forward tie-break —
// and returns the winning decision and its cost.
func (d *treeDP) rootBest(b int) (int, float64) {
	entries := d.bcap[0] + 1
	block := func(s int) []float64 { return d.res[0][s*entries : (s+1)*entries] }
	best := block(0)[min(b, d.bcap[0])]
	bestD := 0
	if b >= 1 {
		for c := range d.cands[0] {
			if v := block(c + 1)[min(b-1, d.bcap[0])]; v < best {
				best, bestD = v, c+1
			}
		}
	}
	return bestD, best
}

// walk re-derives the argmin decisions of node j (level l, state local,
// incoming value v, budget b), appending retained coefficients to keep.
// Decisions are scanned in the forward order — drop with the smallest
// left budget first, then candidates — with <=, so ties resolve
// deterministically and independently of the worker count.
func (d *treeDP) walk(l, j, local int, v float64, b int, keep *[]coefChoice) {
	if l == d.levels-1 {
		d.walkLeaf(j, v, b, keep)
		return
	}
	offs := d.offs[l]
	i := j - 1<<l
	entries := d.bcap[l] + 1
	flat := offs[i] + local
	out := d.res[l][flat*entries : (flat+1)*entries]
	tgt := out[min(b, d.bcap[l])]
	br := d.br(j)
	fused := l == d.levels-2
	ccap := min(d.B, 1)
	centries := 0
	if !fused {
		ccap = d.bcap[l+1]
		centries = ccap + 1
	}
	var lbuf, rbuf []float64
	if fused {
		lbuf = make([]float64, ccap+1)
		rbuf = make([]float64, ccap+1)
	}
	// resolve maps decision dd to the two children's local states and
	// incoming values. On a quantized child level the exact child value
	// v±w is bucketed to the child's grid and replaced by the grid value
	// — exactly the forward sweep's transition — so the descent keeps
	// reproducing the forward argmin comparisons bit for bit.
	resolve := func(dd int) (locL, locR int, vl, vr float64) {
		var w float64
		if dd > 0 {
			w = d.cands[j][dd-1]
		}
		vl, vr = v+w, v-w
		if fused {
			return 0, 0, vl, vr
		}
		if d.lq(l + 1) {
			locL = d.snap(l+1, 2*i, vl)
			locR = d.snap(l+1, 2*i+1, vr)
			vl = d.vals[l+1][d.offs[l+1][2*i]+locL]
			vr = d.vals[l+1][d.offs[l+1][2*i+1]+locR]
			return locL, locR, vl, vr
		}
		locL = local*br + dd
		return locL, locL, vl, vr
	}
	childTables := func(locL, locR int, vl, vr float64) (lt, rt []float64) {
		if fused {
			d.leafTables(2*j, vl, lbuf)
			d.leafTables(2*j+1, vr, rbuf)
			return lbuf, rbuf
		}
		cl := d.offs[l+1][2*i] + locL
		cr := d.offs[l+1][2*i+1] + locR
		return d.res[l+1][cl*centries : (cl+1)*centries],
			d.res[l+1][cr*centries : (cr+1)*centries]
	}
	locL, locR, vl, vr := resolve(0)
	lt, rt := childTables(locL, locR, vl, vr)
	for bl := 0; bl <= b; bl++ {
		if d.combine(lt[min(bl, ccap)], rt[min(b-bl, ccap)]) <= tgt {
			d.walk(l+1, 2*j, locL, vl, bl, keep)
			d.walk(l+1, 2*j+1, locR, vr, b-bl, keep)
			return
		}
	}
	if b >= 1 {
		for c, w := range d.cands[j] {
			locL, locR, vl, vr := resolve(c + 1)
			lt, rt := childTables(locL, locR, vl, vr)
			for bl := 0; bl <= b-1; bl++ {
				if d.combine(lt[min(bl, ccap)], rt[min(b-1-bl, ccap)]) <= tgt {
					*keep = append(*keep, coefChoice{j, w})
					d.walk(l+1, 2*j, locL, vl, bl, keep)
					d.walk(l+1, 2*j+1, locR, vr, b-1-bl, keep)
					return
				}
			}
		}
	}
	// Floating-point slack: fall back to the best drop split.
	locL, locR, vl, vr = resolve(0)
	lt, rt = childTables(locL, locR, vl, vr)
	bestBl, bestC := 0, math.Inf(1)
	for bl := 0; bl <= b; bl++ {
		if c := d.combine(lt[min(bl, ccap)], rt[min(b-bl, ccap)]); c < bestC {
			bestC, bestBl = c, bl
		}
	}
	d.walk(l+1, 2*j, locL, vl, bestBl, keep)
	d.walk(l+1, 2*j+1, locR, vr, b-bestBl, keep)
}

// walkLeaf re-derives a finest-level node's decision: retain only when
// strictly better than dropping (ties prefer the smaller synopsis), at
// the first candidate achieving the minimum.
func (d *treeDP) walkLeaf(j int, v float64, b int, keep *[]coefChoice) {
	if b < 1 || len(d.cands[j]) == 0 {
		return
	}
	li, ri, _ := haar.Children(j, d.n)
	drop := d.combine(d.pe.Err(li, v), d.pe.Err(ri, v))
	best := drop
	for _, w := range d.cands[j] {
		if r := d.combine(d.pe.Err(li, v+w), d.pe.Err(ri, v-w)); r < best {
			best = r
		}
	}
	if drop <= best {
		return
	}
	for _, w := range d.cands[j] {
		if d.combine(d.pe.Err(li, v+w), d.pe.Err(ri, v-w)) <= best {
			*keep = append(*keep, coefChoice{j, w})
			return
		}
	}
}

// extractRootLeaf handles n == 2, where the single detail node is itself
// a finest-level node: enumerate the c0 decisions directly at budget b.
func (d *treeDP) extractRootLeaf(b int) ([]coefChoice, float64) {
	tbl := make([]float64, min(b, 1)+1)
	best := math.Inf(1)
	bestD := 0
	for dd := 0; dd <= len(d.cands[0]); dd++ {
		budget, v := b, 0.0
		if dd > 0 {
			if b < 1 {
				break
			}
			budget, v = b-1, d.cands[0][dd-1]
		}
		d.leafTables(1, v, tbl)
		if c := tbl[min(budget, min(b, 1))]; c < best {
			best, bestD = c, dd
		}
	}
	var keep []coefChoice
	v, budget := 0.0, b
	if bestD > 0 {
		v, budget = d.cands[0][bestD-1], b-1
		keep = append(keep, coefChoice{0, v})
	}
	d.walkLeaf(1, v, budget, &keep)
	return keep, best
}

// ---------------------------------------------------------------------------
// Forced-root extraction: the sharded merge's per-shard sweeps.
//
// A sharded restricted build pins every shard's local c0 (the shard
// average) so that the merged synopsis reconstructs each shard exactly
// as the shard's local solution does once the global top tree is
// retained in full. The forced variants re-derive the optimum over
// solutions that RETAIN the root coefficient — same kept tables, same
// forward comparisons, just with the root's drop decision excluded — so
// a forced extraction at budget b spends one coefficient on c0 and
// distributes b-1 over the details, bit-identically to a DP that never
// had the drop option.

// extractForced is extract restricted to root-retaining solutions;
// b (clamped to [1, B]) includes the forced root coefficient.
func (d *treeDP) extractForced(b int) ([]coefChoice, float64) {
	if b > d.B {
		b = d.B
	}
	if b < 1 {
		b = 1
	}
	if d.levels == 1 {
		return d.extractRootLeafForced(b)
	}
	bestD, best := d.rootBestForced(b)
	w := d.cands[0][bestD-1]
	keep := []coefChoice{{0, w}}
	d.walk(0, 1, bestD, w, b-1, &keep)
	return keep, best
}

// costForced is cost restricted to root-retaining solutions.
func (d *treeDP) costForced(b int) float64 {
	if b > d.B {
		b = d.B
	}
	if b < 1 {
		b = 1
	}
	if d.levels == 1 {
		_, c := d.extractRootLeafForced(b)
		return c
	}
	_, best := d.rootBestForced(b)
	return best
}

// rootBestForced scans only the root's retain decisions, in candidate
// order with strict <, matching rootBest's tie-break among them.
func (d *treeDP) rootBestForced(b int) (int, float64) {
	entries := d.bcap[0] + 1
	block := func(s int) []float64 { return d.res[0][s*entries : (s+1)*entries] }
	best := block(1)[min(b-1, d.bcap[0])]
	bestD := 1
	for c := 1; c < len(d.cands[0]); c++ {
		if v := block(c + 1)[min(b-1, d.bcap[0])]; v < best {
			best, bestD = v, c+1
		}
	}
	return bestD, best
}

// extractRootLeafForced is extractRootLeaf with the root's drop decision
// excluded (n == 2, b >= 1).
func (d *treeDP) extractRootLeafForced(b int) ([]coefChoice, float64) {
	tbl := make([]float64, min(b-1, 1)+1)
	best := math.Inf(1)
	bestD := 1
	for dd := 1; dd <= len(d.cands[0]); dd++ {
		d.leafTables(1, d.cands[0][dd-1], tbl)
		if c := tbl[min(b-1, 1)]; c < best {
			best, bestD = c, dd
		}
	}
	v := d.cands[0][bestD-1]
	keep := []coefChoice{{0, v}}
	d.walkLeaf(1, v, b-1, &keep)
	return keep, best
}

// ---------------------------------------------------------------------------
// Dirty-path repair: incremental maintenance of the kept level tables.
//
// A state block's entries depend on (a) the point errors of the items in
// its subtree, (b) the candidate values of the node itself and of the
// finest-level nodes it evaluates inline, and (c) its states' incoming
// values — sums of *ancestor* candidate values. So a mutation of item i
// whose effect on the candidate sets is confined to i's two finest path
// nodes (in particular: a correction that leaves every expected frequency
// — and hence every expected coefficient — unchanged, the mean-preserving
// case) invalidates exactly the blocks of the O(log n) nodes on i's
// root-to-leaf path: every other block's inputs are value-identical, and
// the dirty blocks' incoming-value rows recompute from clean ancestor
// candidates. repair re-runs those blocks through the same solveStates
// code the forward sweep uses, bottom-up, so the patched tables are
// bit-identical to a from-scratch sweep over the mutated data. Mutations
// that change candidates higher in the tree shift the incoming values of
// entire subtrees and need a full forward resweep (wavelet.Live decides
// which path applies; see canRepair).

// pathLocal returns the local (within-level) index of the level-l
// ancestor node of leaf item it.
func (d *treeDP) pathLocal(l, it int) int { return it >> (d.levels - l) }

// canRepair reports whether the blocks invalidated by mutating
// dirtyItems, given the set of coefficients whose candidate lists changed
// value (same lengths — a length change reshapes the layout and always
// forces a rebuild), are exactly the dirty items' path blocks. That holds
// when every changed coefficient lives at the two finest levels of a
// dirty item's path: a finest-level (leaf) node's candidates are only
// read inline by its parent's block and by the backtrack, and a
// last-internal-level node's candidates only shape its own block's
// decisions — neither reaches any other block's incoming values.
func (d *treeDP) canRepair(dirtyItems []int, changed []int) bool {
	if d.levels < 2 {
		return true // n == 2: no tables are materialized at all
	}
	L := d.levels
	onPath := func(l, j int) bool {
		for _, it := range dirtyItems {
			if (1<<l)+d.pathLocal(l, it) == j {
				return true
			}
		}
		return false
	}
	for _, j := range changed {
		if j == 0 {
			return false // c0 feeds every incoming value
		}
		switch l := bits.Len(uint(j)) - 1; {
		case l == L-1:
			if !onPath(L-2, j/2) {
				return false
			}
		case l == L-2:
			if !onPath(L-2, j) {
				return false
			}
		default:
			return false // higher-level candidates shift whole subtrees
		}
	}
	return true
}

// repair recomputes the state blocks of the dirty items' path nodes,
// bottom-up: the last internal level's blocks first (with their
// incoming-value rows re-derived from clean ancestor candidates), then
// each ancestor level's blocks from the freshly patched level below.
// The caller must have established canRepair and already swapped the
// mutated pe/cands into d.
func (d *treeDP) repair(dirtyItems []int) {
	if d.levels < 2 {
		return // n == 2: extraction reads pe/cands directly
	}
	L := d.levels
	locals := uniqueLocals(dirtyItems, func(it int) int { return d.pathLocal(L-2, it) })
	for _, i := range locals {
		// Quantized mode re-reads the retained d.vals grids directly:
		// repairable mutations only change candidates at the two finest
		// levels, and every grid (and exact enumeration) on the kept
		// levels depends only on strict-ancestor candidates above them.
		var vals []float64
		voff := 0
		if d.quant == 0 {
			vals = d.valsForBlock(i)
			voff = d.offs[L-2][i]
		}
		d.solveStates(L-2, d.offs[L-2][i], d.offs[L-2][i+1], vals, voff)
	}
	for l := L - 3; l >= 0; l-- {
		locals = uniqueLocals(locals, func(child int) int { return child >> 1 })
		for _, i := range locals {
			d.solveStates(l, d.offs[l][i], d.offs[l][i+1], nil, 0)
		}
	}
}

// uniqueLocals maps xs through f and returns the sorted distinct results.
func uniqueLocals(xs []int, f func(int) int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, f(x))
	}
	sort.Ints(out)
	w := 0
	for _, v := range out {
		if w == 0 || out[w-1] != v {
			out[w] = v
			w++
		}
	}
	return out[:w]
}

// valsForBlock re-derives the incoming values of every state of the
// last-internal-level node with local index i, performing the same
// top-down v±w accumulation incomingValues does along this node's
// ancestor chain — so each value is bit-identical to the corresponding
// entry of the forward sweep's full-level array.
func (d *treeDP) valsForBlock(i int) []float64 {
	L := d.levels
	j := (1 << (L - 2)) + i
	cur := make([]float64, d.br(0))
	for c, w := range d.cands[0] {
		cur[c+1] = w
	}
	for l := 0; l < L-2; l++ {
		a := j >> (L - 2 - l)     // ancestor at level l
		left := j>>(L-3-l) == 2*a // which child the path descends to
		b := d.br(a)
		next := make([]float64, len(cur)*b)
		for s, v := range cur {
			next[s*b] = v
			for dd := 1; dd < b; dd++ {
				w := d.cands[a][dd-1]
				if left {
					next[s*b+dd] = v + w
				} else {
					next[s*b+dd] = v - w
				}
			}
		}
		cur = next
	}
	return cur
}

// errorBound bounds the quantized DP's additive suboptimality: the true
// expected error of any synopsis it extracts is within the returned
// bound of the exact restricted optimum (0 in exact mode). The argument
// is §4.2's bound-and-quantize one, applied twice. Each item's
// reconstruction value drifts from its exact counterpart by at most
// Δ_i = Σ half-grid-steps along its path's quantized levels, and the
// per-item error function is Lipschitz on the reachable value interval,
// so (1) replaying the exact optimum through the snapped DP shows
// table ≤ OPT + E, and (2) re-evaluating the extracted synopsis exactly
// shows true ≤ table + E — hence true ≤ OPT + 2E, with E the Σ (or max,
// for maximum metrics) of the per-item Lipschitz·Δ_i terms.
func (d *treeDP) errorBound() float64 {
	if d.quant == 0 || d.levels < 2 {
		return 0
	}
	L := d.levels
	total, worst := 0.0, 0.0
	for i := 0; i < d.n; i++ {
		delta := 0.0
		for l := 0; l <= L-2; l++ {
			if d.lq(l) {
				delta += d.gstep[l][d.pathLocal(l, i)] / 2
			}
		}
		if delta == 0 {
			continue
		}
		// The item's reachable reconstruction values: its L-2 ancestor's
		// bounds extended by the two finest decisions and the drift.
		i2 := d.pathLocal(L-2, i)
		ext := math.Abs(d.cands[(1<<(L-2))+i2][0]) +
			math.Abs(d.cands[(1<<(L-1))+i/2][0]) + delta
		lo := d.blo[L-2][i2] - ext
		hi := d.bhi[L-2][i2] + ext
		e := d.pe.errSlack(i, lo, hi, delta)
		total += e
		if e > worst {
			worst = e
		}
	}
	if d.cumulative {
		return 2 * total
	}
	return 2 * worst
}

// synopsisFromChoices assembles a sparse synopsis from retained
// (index, value) choices.
func synopsisFromChoices(n int, keep []coefChoice) *Synopsis {
	sort.Slice(keep, func(a, b int) bool { return keep[a].idx < keep[b].idx })
	s := &Synopsis{N: n, Indices: make([]int, len(keep)), Values: make([]float64, len(keep))}
	for k, c := range keep {
		s.Indices[k] = c.idx
		s.Values[k] = c.val
	}
	return s
}
