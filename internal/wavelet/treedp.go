package wavelet

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"probsyn/internal/engine"
	"probsyn/internal/haar"
)

// This file implements the coefficient-tree dynamic program shared by the
// restricted (Theorem 8) and unrestricted (§4.2 sketch) thresholding
// problems as a bottom-up, level-by-level sweep over the Haar error tree.
//
// A DP state is (node j, ancestor decisions): every subset of j's
// ancestors that is retained — each at one of its candidate values —
// determines the "incoming value" v that the ancestors contribute to j's
// support, and the table OPTW[j, state][b] holds the minimal expected
// subtree error with at most b coefficients retained below (and at) j.
// States of one level depend only on the completed level below, so each
// level is a flat array of independent slots dispatched through the
// engine pool; the parallel schedule is bit-identical to the serial one
// at any worker count because no cross-worker reduction exists — every
// slot is computed by one worker in the serial operation order.
//
// Layout. Level l holds detail nodes [2^l, 2^{l+1}); a node whose parent
// block has S states and whose parent branches br ways (drop + one branch
// per candidate value) has S·br states, stored contiguously with the
// parent state as the high digits (child state = parent state · br +
// decision). Budget axes are capped at the subtree coefficient count —
// entries beyond the cap would only repeat the saturated value, so reads
// clamp instead (res[min(b, cap)]). The finest detail level (whose
// children are data items) is never materialized: its two-entry tables
// are recomputed inline from PointErrors both by its parents' sweep and
// by the backtrack, which re-derives every argmin decision from the kept
// level tables.

// maxTreeStates bounds one level's ancestor-decision state count. The
// restricted DP stays quadratic (2^depth states over 2^depth nodes at the
// finest kept level), but the unrestricted DP grows as the product of
// candidate-set sizes along the path, so runaway (n, q) combinations fail
// fast with an error instead of exhausting memory.
const maxTreeStates = 1 << 26

// coefChoice is one retained coefficient: its index and stored value.
type coefChoice struct {
	idx int
	val float64
}

type treeDP struct {
	n          int // padded domain size, power of two, >= 2
	levels     int // log2 n: detail levels of the error tree
	B          int // coefficient budget ("at most B"), already clamped to n
	cands      [][]float64
	pe         *PointErrors
	cumulative bool
	pool       *engine.Pool

	// Per-level tables, built bottom-up and kept for the backtrack; only
	// levels 0..levels-2 are materialized (see the layout note above).
	res  [][]float64 // res[l]: flat [state][0..bcap[l]] blocks
	offs [][]int     // offs[l][i]: first state of node 2^l+i; last entry = level total
	bcap []int       // bcap[l] = min(B, subtree coefficient count)
}

// newTreeDP executes the shared DP's forward level sweeps through the
// pool and returns the solved table set. cands[j] lists the candidate
// retained values of coefficient j (the restricted problem passes exactly
// its expected value); cands[0] is the overall average c0. The kept level
// tables answer extract(b) for every budget b <= B: an entry at budget
// index b' is computed only from child entries at budgets <= b', so the
// prefix of each table up to b is identical to the table a budget-b DP
// would have built — one forward run serves the whole budget frontier.
func newTreeDP(n, B int, cands [][]float64, pe *PointErrors, cumulative bool, pool *engine.Pool) (*treeDP, error) {
	if pool == nil {
		pool = engine.Serial()
	}
	d := &treeDP{
		n: n, levels: bits.Len(uint(n)) - 1, B: B,
		cands: cands, pe: pe, cumulative: cumulative, pool: pool,
	}
	if d.levels == 1 {
		return d, nil // n == 2: extract enumerates the two nodes directly
	}
	if err := d.layout(); err != nil {
		return nil, err
	}
	vals := d.incomingValues()
	d.res = make([][]float64, d.levels-1)
	d.solveLevel(d.levels-2, vals)
	for l := d.levels - 3; l >= 0; l-- {
		d.solveLevel(l, nil)
	}
	return d, nil
}

func (d *treeDP) combine(a, b float64) float64 {
	if d.cumulative {
		return a + b
	}
	return math.Max(a, b)
}

// br returns node j's branch count: drop, or retain at one candidate.
func (d *treeDP) br(j int) int { return 1 + len(d.cands[j]) }

// layout computes the per-level state offsets and budget caps, rejecting
// state spaces beyond maxTreeStates.
func (d *treeDP) layout() error {
	L := d.levels
	d.offs = make([][]int, L-1)
	d.bcap = make([]int, L-1)
	counts := []int{d.br(0)} // level 0: node 1, one state per c0 decision
	for l := 0; l <= L-2; l++ {
		d.bcap[l] = min(d.B, (1<<(L-l))-1)
		offs := make([]int, len(counts)+1)
		total := 0
		for i, c := range counts {
			offs[i] = total
			total += c
			if total > maxTreeStates {
				return fmt.Errorf("wavelet: coefficient-tree DP needs more than %d states at level %d; reduce the domain or the quantization", maxTreeStates, l)
			}
		}
		offs[len(counts)] = total
		d.offs[l] = offs
		if l == L-2 {
			break
		}
		next := make([]int, 2*len(counts))
		for i, c := range counts {
			b := d.br((1 << l) + i)
			if c > maxTreeStates/b {
				return fmt.Errorf("wavelet: coefficient-tree DP needs more than %d states at level %d; reduce the domain or the quantization", maxTreeStates, l+1)
			}
			next[2*i] = c * b
			next[2*i+1] = c * b
		}
		counts = next
	}
	return nil
}

// incomingValues returns, for every state of the last internal level, the
// reconstruction value the ancestors contribute to that node's support —
// the incoming value v of the paper's OPTW[j, b, v] state. Built top-down
// level by level; intermediate levels are discarded (the backtrack
// re-derives v incrementally while descending).
func (d *treeDP) incomingValues() []float64 {
	L := d.levels
	cur := make([]float64, d.offs[0][1])
	for c, w := range d.cands[0] {
		cur[c+1] = w
	}
	for l := 0; l < L-2; l++ {
		next := make([]float64, d.offs[l+1][1<<(l+1)])
		first := 1 << l
		for i := 0; i < first; i++ {
			j := first + i
			b := d.br(j)
			base := d.offs[l][i]
			cnt := d.offs[l][i+1] - base
			lbase := d.offs[l+1][2*i]
			rbase := d.offs[l+1][2*i+1]
			for s := 0; s < cnt; s++ {
				v := cur[base+s]
				next[lbase+s*b] = v
				next[rbase+s*b] = v
				for dd := 1; dd < b; dd++ {
					w := d.cands[j][dd-1]
					next[lbase+s*b+dd] = v + w
					next[rbase+s*b+dd] = v - w
				}
			}
		}
		cur = next
	}
	return cur
}

// leafTables fills out (length min(B,1)+1) with the budget table of the
// finest-level detail node j at incoming value v: out[0] drops the
// coefficient, out[1] (when the budget allows one) may retain the best
// candidate — "at most" semantics, so it is never worse than dropping.
func (d *treeDP) leafTables(j int, v float64, out []float64) {
	li, ri, _ := haar.Children(j, d.n)
	drop := d.combine(d.pe.Err(li, v), d.pe.Err(ri, v))
	out[0] = drop
	if len(out) > 1 {
		best := drop
		for _, w := range d.cands[j] {
			if r := d.combine(d.pe.Err(li, v+w), d.pe.Err(ri, v-w)); r < best {
				best = r
			}
		}
		out[1] = best
	}
}

// solveLevel computes level l's tables from the completed level below,
// dispatching the flattened (node, state) space through the pool. vals
// carries the incoming values when l is the last internal level, whose
// leaf children are evaluated inline.
func (d *treeDP) solveLevel(l int, vals []float64) {
	offs := d.offs[l]
	total := offs[1<<l]
	entries := d.bcap[l] + 1
	d.res[l] = make([]float64, total*entries)
	centries := min(d.B, 1) + 1
	if l != d.levels-2 {
		centries = d.bcap[l+1] + 1
	}
	// Dispatch (not MapChunks): result slots are derived from the state
	// range, so the pool may run this static or dynamic. Unrestricted
	// levels are ragged — per-node branch counts differ, so equal state
	// ranges carry unequal work — and a dynamic pool's finer chunks let
	// idle workers steal them with the same bit-identical result.
	d.pool.Dispatch(0, total, total*entries*centries, func(_, lo, hi int) {
		d.solveStates(l, lo, hi, vals, 0)
	})
}

// solveStates computes the level-l table entries of states [lo, hi) from
// the completed level below, in the serial operation order. vals holds
// the incoming values of the covered states when l is the last internal
// level, indexed vals[s-voff] (the full-level array for the forward
// sweep, a single node's block for a repair). Every state is an
// independent slot, so any partition of a level into solveStates calls —
// the pool's chunks, a repair's dirty blocks — produces bit-identical
// tables.
func (d *treeDP) solveStates(l, lo, hi int, vals []float64, voff int) {
	offs := d.offs[l]
	first := 1 << l
	entries := d.bcap[l] + 1
	fused := l == d.levels-2
	var coffs []int
	ccap := min(d.B, 1)
	if !fused {
		coffs = d.offs[l+1]
		ccap = d.bcap[l+1]
	}
	centries := ccap + 1
	var lbuf, rbuf []float64
	if fused {
		lbuf = make([]float64, centries)
		rbuf = make([]float64, centries)
	}
	i := sort.SearchInts(offs, lo+1) - 1
	for s := lo; s < hi; i++ {
		j := first + i
		end := min(hi, offs[i+1])
		br := d.br(j)
		for ; s < end; s++ {
			local := s - offs[i]
			out := d.res[l][s*entries : (s+1)*entries]
			for k := range out {
				out[k] = math.Inf(1)
			}
			for dd := 0; dd < br; dd++ {
				var lt, rt []float64
				if fused {
					v := vals[s-voff]
					w := 0.0
					if dd > 0 {
						w = d.cands[j][dd-1]
					}
					d.leafTables(2*j, v+w, lbuf)
					d.leafTables(2*j+1, v-w, rbuf)
					lt, rt = lbuf, rbuf
				} else {
					cl := coffs[2*i] + local*br + dd
					cr := coffs[2*i+1] + local*br + dd
					lt = d.res[l+1][cl*centries : (cl+1)*centries]
					rt = d.res[l+1][cr*centries : (cr+1)*centries]
				}
				shift := 0
				if dd > 0 {
					shift = 1 // retaining j spends one coefficient
				}
				for bb := shift; bb < entries; bb++ {
					budget := bb - shift
					best := out[bb]
					for bl := 0; bl <= budget; bl++ {
						if c := d.combine(lt[min(bl, ccap)], rt[min(budget-bl, ccap)]); c < best {
							best = c
						}
					}
					out[bb] = best
				}
			}
		}
	}
}

// extract re-derives the optimal retained set and cost at budget b
// (clamped to [0, B]) from the kept tables: the root scan and backtrack
// perform exactly the operations a budget-b DP's finish would, so the
// extracted solution is bit-identical to an independent budget-b build.
// It only reads the tables — concurrent extractions at different budgets
// are safe.
func (d *treeDP) extract(b int) ([]coefChoice, float64) {
	if b > d.B {
		b = d.B
	}
	if b < 0 {
		b = 0
	}
	if d.levels == 1 {
		return d.extractRootLeaf(b)
	}
	bestD, best := d.rootBest(b)
	var keep []coefChoice
	if bestD > 0 {
		w := d.cands[0][bestD-1]
		keep = append(keep, coefChoice{0, w})
		d.walk(0, 1, bestD, w, b-1, &keep)
	} else {
		d.walk(0, 1, 0, 0, b, &keep)
	}
	return keep, best
}

// cost returns only the optimal expected error at budget b (no
// backtrack) — the cheap half of extract, for frontier cost curves.
func (d *treeDP) cost(b int) float64 {
	if b > d.B {
		b = d.B
	}
	if b < 0 {
		b = 0
	}
	if d.levels == 1 {
		_, c := d.extractRootLeaf(b)
		return c
	}
	_, best := d.rootBest(b)
	return best
}

// rootBest scans the root's c0 decisions at budget b — drop first, then
// candidates in order, with strict <, matching the forward tie-break —
// and returns the winning decision and its cost.
func (d *treeDP) rootBest(b int) (int, float64) {
	entries := d.bcap[0] + 1
	block := func(s int) []float64 { return d.res[0][s*entries : (s+1)*entries] }
	best := block(0)[min(b, d.bcap[0])]
	bestD := 0
	if b >= 1 {
		for c := range d.cands[0] {
			if v := block(c + 1)[min(b-1, d.bcap[0])]; v < best {
				best, bestD = v, c+1
			}
		}
	}
	return bestD, best
}

// walk re-derives the argmin decisions of node j (level l, state local,
// incoming value v, budget b), appending retained coefficients to keep.
// Decisions are scanned in the forward order — drop with the smallest
// left budget first, then candidates — with <=, so ties resolve
// deterministically and independently of the worker count.
func (d *treeDP) walk(l, j, local int, v float64, b int, keep *[]coefChoice) {
	if l == d.levels-1 {
		d.walkLeaf(j, v, b, keep)
		return
	}
	offs := d.offs[l]
	i := j - 1<<l
	entries := d.bcap[l] + 1
	flat := offs[i] + local
	out := d.res[l][flat*entries : (flat+1)*entries]
	tgt := out[min(b, d.bcap[l])]
	br := d.br(j)
	fused := l == d.levels-2
	ccap := min(d.B, 1)
	centries := 0
	if !fused {
		ccap = d.bcap[l+1]
		centries = ccap + 1
	}
	var lbuf, rbuf []float64
	if fused {
		lbuf = make([]float64, ccap+1)
		rbuf = make([]float64, ccap+1)
	}
	childTables := func(dd int, vl, vr float64) (lt, rt []float64) {
		if fused {
			d.leafTables(2*j, vl, lbuf)
			d.leafTables(2*j+1, vr, rbuf)
			return lbuf, rbuf
		}
		cl := d.offs[l+1][2*i] + local*br + dd
		cr := d.offs[l+1][2*i+1] + local*br + dd
		return d.res[l+1][cl*centries : (cl+1)*centries],
			d.res[l+1][cr*centries : (cr+1)*centries]
	}
	lt, rt := childTables(0, v, v)
	for bl := 0; bl <= b; bl++ {
		if d.combine(lt[min(bl, ccap)], rt[min(b-bl, ccap)]) <= tgt {
			d.walk(l+1, 2*j, local*br, v, bl, keep)
			d.walk(l+1, 2*j+1, local*br, v, b-bl, keep)
			return
		}
	}
	if b >= 1 {
		for c, w := range d.cands[j] {
			lt, rt := childTables(c+1, v+w, v-w)
			for bl := 0; bl <= b-1; bl++ {
				if d.combine(lt[min(bl, ccap)], rt[min(b-1-bl, ccap)]) <= tgt {
					*keep = append(*keep, coefChoice{j, w})
					d.walk(l+1, 2*j, local*br+c+1, v+w, bl, keep)
					d.walk(l+1, 2*j+1, local*br+c+1, v-w, b-1-bl, keep)
					return
				}
			}
		}
	}
	// Floating-point slack: fall back to the best drop split.
	lt, rt = childTables(0, v, v)
	bestBl, bestC := 0, math.Inf(1)
	for bl := 0; bl <= b; bl++ {
		if c := d.combine(lt[min(bl, ccap)], rt[min(b-bl, ccap)]); c < bestC {
			bestC, bestBl = c, bl
		}
	}
	d.walk(l+1, 2*j, local*br, v, bestBl, keep)
	d.walk(l+1, 2*j+1, local*br, v, b-bestBl, keep)
}

// walkLeaf re-derives a finest-level node's decision: retain only when
// strictly better than dropping (ties prefer the smaller synopsis), at
// the first candidate achieving the minimum.
func (d *treeDP) walkLeaf(j int, v float64, b int, keep *[]coefChoice) {
	if b < 1 || len(d.cands[j]) == 0 {
		return
	}
	li, ri, _ := haar.Children(j, d.n)
	drop := d.combine(d.pe.Err(li, v), d.pe.Err(ri, v))
	best := drop
	for _, w := range d.cands[j] {
		if r := d.combine(d.pe.Err(li, v+w), d.pe.Err(ri, v-w)); r < best {
			best = r
		}
	}
	if drop <= best {
		return
	}
	for _, w := range d.cands[j] {
		if d.combine(d.pe.Err(li, v+w), d.pe.Err(ri, v-w)) <= best {
			*keep = append(*keep, coefChoice{j, w})
			return
		}
	}
}

// extractRootLeaf handles n == 2, where the single detail node is itself
// a finest-level node: enumerate the c0 decisions directly at budget b.
func (d *treeDP) extractRootLeaf(b int) ([]coefChoice, float64) {
	tbl := make([]float64, min(b, 1)+1)
	best := math.Inf(1)
	bestD := 0
	for dd := 0; dd <= len(d.cands[0]); dd++ {
		budget, v := b, 0.0
		if dd > 0 {
			if b < 1 {
				break
			}
			budget, v = b-1, d.cands[0][dd-1]
		}
		d.leafTables(1, v, tbl)
		if c := tbl[min(budget, min(b, 1))]; c < best {
			best, bestD = c, dd
		}
	}
	var keep []coefChoice
	v, budget := 0.0, b
	if bestD > 0 {
		v, budget = d.cands[0][bestD-1], b-1
		keep = append(keep, coefChoice{0, v})
	}
	d.walkLeaf(1, v, budget, &keep)
	return keep, best
}

// ---------------------------------------------------------------------------
// Dirty-path repair: incremental maintenance of the kept level tables.
//
// A state block's entries depend on (a) the point errors of the items in
// its subtree, (b) the candidate values of the node itself and of the
// finest-level nodes it evaluates inline, and (c) its states' incoming
// values — sums of *ancestor* candidate values. So a mutation of item i
// whose effect on the candidate sets is confined to i's two finest path
// nodes (in particular: a correction that leaves every expected frequency
// — and hence every expected coefficient — unchanged, the mean-preserving
// case) invalidates exactly the blocks of the O(log n) nodes on i's
// root-to-leaf path: every other block's inputs are value-identical, and
// the dirty blocks' incoming-value rows recompute from clean ancestor
// candidates. repair re-runs those blocks through the same solveStates
// code the forward sweep uses, bottom-up, so the patched tables are
// bit-identical to a from-scratch sweep over the mutated data. Mutations
// that change candidates higher in the tree shift the incoming values of
// entire subtrees and need a full forward resweep (wavelet.Live decides
// which path applies; see canRepair).

// pathLocal returns the local (within-level) index of the level-l
// ancestor node of leaf item it.
func (d *treeDP) pathLocal(l, it int) int { return it >> (d.levels - l) }

// canRepair reports whether the blocks invalidated by mutating
// dirtyItems, given the set of coefficients whose candidate lists changed
// value (same lengths — a length change reshapes the layout and always
// forces a rebuild), are exactly the dirty items' path blocks. That holds
// when every changed coefficient lives at the two finest levels of a
// dirty item's path: a finest-level (leaf) node's candidates are only
// read inline by its parent's block and by the backtrack, and a
// last-internal-level node's candidates only shape its own block's
// decisions — neither reaches any other block's incoming values.
func (d *treeDP) canRepair(dirtyItems []int, changed []int) bool {
	if d.levels < 2 {
		return true // n == 2: no tables are materialized at all
	}
	L := d.levels
	onPath := func(l, j int) bool {
		for _, it := range dirtyItems {
			if (1<<l)+d.pathLocal(l, it) == j {
				return true
			}
		}
		return false
	}
	for _, j := range changed {
		if j == 0 {
			return false // c0 feeds every incoming value
		}
		switch l := bits.Len(uint(j)) - 1; {
		case l == L-1:
			if !onPath(L-2, j/2) {
				return false
			}
		case l == L-2:
			if !onPath(L-2, j) {
				return false
			}
		default:
			return false // higher-level candidates shift whole subtrees
		}
	}
	return true
}

// repair recomputes the state blocks of the dirty items' path nodes,
// bottom-up: the last internal level's blocks first (with their
// incoming-value rows re-derived from clean ancestor candidates), then
// each ancestor level's blocks from the freshly patched level below.
// The caller must have established canRepair and already swapped the
// mutated pe/cands into d.
func (d *treeDP) repair(dirtyItems []int) {
	if d.levels < 2 {
		return // n == 2: extraction reads pe/cands directly
	}
	L := d.levels
	locals := uniqueLocals(dirtyItems, func(it int) int { return d.pathLocal(L-2, it) })
	for _, i := range locals {
		vals := d.valsForBlock(i)
		d.solveStates(L-2, d.offs[L-2][i], d.offs[L-2][i+1], vals, d.offs[L-2][i])
	}
	for l := L - 3; l >= 0; l-- {
		locals = uniqueLocals(locals, func(child int) int { return child >> 1 })
		for _, i := range locals {
			d.solveStates(l, d.offs[l][i], d.offs[l][i+1], nil, 0)
		}
	}
}

// uniqueLocals maps xs through f and returns the sorted distinct results.
func uniqueLocals(xs []int, f func(int) int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, f(x))
	}
	sort.Ints(out)
	w := 0
	for _, v := range out {
		if w == 0 || out[w-1] != v {
			out[w] = v
			w++
		}
	}
	return out[:w]
}

// valsForBlock re-derives the incoming values of every state of the
// last-internal-level node with local index i, performing the same
// top-down v±w accumulation incomingValues does along this node's
// ancestor chain — so each value is bit-identical to the corresponding
// entry of the forward sweep's full-level array.
func (d *treeDP) valsForBlock(i int) []float64 {
	L := d.levels
	j := (1 << (L - 2)) + i
	cur := make([]float64, d.br(0))
	for c, w := range d.cands[0] {
		cur[c+1] = w
	}
	for l := 0; l < L-2; l++ {
		a := j >> (L - 2 - l)     // ancestor at level l
		left := j>>(L-3-l) == 2*a // which child the path descends to
		b := d.br(a)
		next := make([]float64, len(cur)*b)
		for s, v := range cur {
			next[s*b] = v
			for dd := 1; dd < b; dd++ {
				w := d.cands[a][dd-1]
				if left {
					next[s*b+dd] = v + w
				} else {
					next[s*b+dd] = v - w
				}
			}
		}
		cur = next
	}
	return cur
}

// synopsisFromChoices assembles a sparse synopsis from retained
// (index, value) choices.
func synopsisFromChoices(n int, keep []coefChoice) *Synopsis {
	sort.Slice(keep, func(a, b int) bool { return keep[a].idx < keep[b].idx })
	s := &Synopsis{N: n, Indices: make([]int, len(keep)), Values: make([]float64, len(keep))}
	for k, c := range keep {
		s.Indices[k] = c.idx
		s.Values[k] = c.val
	}
	return s
}
