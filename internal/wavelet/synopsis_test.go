package wavelet_test

import (
	"math"
	"math/rand"
	"testing"

	"probsyn/internal/haar"
	"probsyn/internal/metric"
	"probsyn/internal/pdata"
	"probsyn/internal/ptest"
	"probsyn/internal/wavelet"
)

func TestSynopsisValidate(t *testing.T) {
	good := &wavelet.Synopsis{N: 8, Indices: []int{0, 3}, Values: []float64{1, 2}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*wavelet.Synopsis{
		{N: 6, Indices: []int{0}, Values: []float64{1}},       // non-pow2 domain
		{N: 8, Indices: []int{0, 0}, Values: []float64{1, 2}}, // duplicate
		{N: 8, Indices: []int{3, 1}, Values: []float64{1, 2}}, // unsorted
		{N: 8, Indices: []int{9}, Values: []float64{1}},       // out of range
		{N: 8, Indices: []int{1}, Values: []float64{1, 2}},    // length mismatch
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid synopsis accepted", i)
		}
	}
}

func TestSynopsisEstimateMatchesReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	data := make([]float64, 16)
	for i := range data {
		data[i] = rng.NormFloat64() * 10
	}
	c := haar.Forward(data)
	syn := &wavelet.Synopsis{N: 16, Indices: []int{0, 1, 5, 9, 15}, Values: nil}
	for _, idx := range syn.Indices {
		syn.Values = append(syn.Values, c[idx])
	}
	rec := syn.Reconstruct()
	for i := 0; i < 16; i++ {
		if got := syn.Estimate(i); math.Abs(got-rec[i]) > 1e-10 {
			t.Fatalf("Estimate(%d) = %v, Reconstruct = %v", i, got, rec[i])
		}
	}
}

func TestSynopsisRangeSum(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	data := make([]float64, 8)
	for i := range data {
		data[i] = rng.Float64() * 5
	}
	c := haar.Forward(data)
	syn := &wavelet.Synopsis{N: 8, Indices: []int{0, 1, 2, 6}, Values: nil}
	for _, idx := range syn.Indices {
		syn.Values = append(syn.Values, c[idx])
	}
	rec := syn.Reconstruct()
	for lo := 0; lo < 8; lo++ {
		for hi := lo; hi < 8; hi++ {
			want := 0.0
			for i := lo; i <= hi; i++ {
				want += rec[i]
			}
			if got := syn.RangeSum(lo, hi); math.Abs(got-want) > 1e-10 {
				t.Fatalf("RangeSum(%d,%d) = %v, want %v", lo, hi, got, want)
			}
		}
	}
	if got := syn.RangeSum(-5, 100); math.Abs(got-syn.RangeSum(0, 7)) > 1e-12 {
		t.Fatalf("clamped RangeSum = %v", got)
	}
}

func TestFullSynopsisReconstructsExactly(t *testing.T) {
	data := []float64{2, 2, 0, 2, 3, 5, 4, 4}
	c := haar.Forward(data)
	idx := make([]int, len(c))
	for i := range idx {
		idx[i] = i
	}
	syn := &wavelet.Synopsis{N: 8, Indices: idx, Values: c}
	rec := syn.Reconstruct()
	for i := range data {
		if math.Abs(rec[i]-data[i]) > 1e-12 {
			t.Fatalf("rec[%d] = %v, want %v", i, rec[i], data[i])
		}
	}
}

// --- SSE-optimal synopses (Theorem 7) ---------------------------------------

func TestBuildSSEReportConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 10; trial++ {
		for _, src := range []pdata.Source{
			ptest.RandomValuePDF(rng, 8, 3),
			ptest.RandomTuplePDF(rng, 8, 5, 3),
			ptest.RandomBasic(rng, 8, 6),
		} {
			for _, B := range []int{0, 1, 3, 8} {
				syn, rep, err := wavelet.BuildSSE(src, B)
				if err != nil {
					t.Fatal(err)
				}
				if err := syn.Validate(); err != nil {
					t.Fatal(err)
				}
				if syn.B() != B {
					t.Fatalf("retained %d coefficients, want %d", syn.B(), B)
				}
				direct := wavelet.ExpectedSSEOf(src, syn)
				if math.Abs(rep.ExpectedSSE-direct) > 1e-8*(1+direct) {
					t.Fatalf("%T B=%d: report SSE %v, direct %v", src, B, rep.ExpectedSSE, direct)
				}
				if rep.ErrorPercent() < -1e-9 || rep.ErrorPercent() > 100+1e-9 {
					t.Fatalf("error percent %v outside [0,100]", rep.ErrorPercent())
				}
			}
		}
	}
}

func TestBuildSSEAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 10; trial++ {
		src := ptest.RandomTuplePDF(rng, 4, 4, 2)
		syn, rep, err := wavelet.BuildSSE(src, 2)
		if err != nil {
			t.Fatal(err)
		}
		rec := syn.Reconstruct()
		want := 0.0
		src.EnumerateWorlds(func(freqs []float64, prob float64) bool {
			for i := range freqs {
				d := freqs[i] - rec[i]
				want += prob * d * d
			}
			return true
		})
		if math.Abs(rep.ExpectedSSE-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: report %v, enumeration %v", trial, rep.ExpectedSSE, want)
		}
	}
}

// Theorem 7 optimality: no other same-size subset of expected-value
// coefficients achieves lower expected SSE.
func TestBuildSSEOptimalAmongSubsets(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	for trial := 0; trial < 8; trial++ {
		src := ptest.RandomValuePDF(rng, 8, 3)
		expected := src.ExpectedFreqs()
		c := haar.Forward(expected)
		B := 3
		syn, _, err := wavelet.BuildSSE(src, B)
		if err != nil {
			t.Fatal(err)
		}
		best := wavelet.ExpectedSSEOf(src, syn)
		for mask := 0; mask < 1<<8; mask++ {
			if popcount(mask) != B {
				continue
			}
			var idx []int
			var vals []float64
			for i := 0; i < 8; i++ {
				if mask&(1<<i) != 0 {
					idx = append(idx, i)
					vals = append(vals, c[i])
				}
			}
			alt := wavelet.ExpectedSSEOf(src, &wavelet.Synopsis{N: 8, Indices: idx, Values: vals})
			if alt < best-1e-9 {
				t.Fatalf("trial %d: subset %b (SSE %v) beats TopK (SSE %v)", trial, mask, alt, best)
			}
		}
	}
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		c += x & 1
		x >>= 1
	}
	return c
}

func TestBuildSSEDeterministicReduction(t *testing.T) {
	data := []float64{2, 2, 0, 2, 3, 5, 4, 4}
	src := pdata.Deterministic(data)
	syn, rep, err := wavelet.BuildSSE(src, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.VarianceFloor > 1e-12 {
		t.Fatalf("deterministic variance floor %v, want 0", rep.VarianceFloor)
	}
	if rep.ExpectedSSE > 1e-9 {
		t.Fatalf("full synopsis SSE %v, want 0", rep.ExpectedSSE)
	}
	rec := syn.Reconstruct()
	for i := range data {
		if math.Abs(rec[i]-data[i]) > 1e-10 {
			t.Fatalf("rec[%d] = %v, want %v", i, rec[i], data[i])
		}
	}
}

func TestBuildSSEPadsNonPow2(t *testing.T) {
	src := pdata.Deterministic([]float64{1, 2, 3, 4, 5})
	syn, _, err := wavelet.BuildSSE(src, 3)
	if err != nil {
		t.Fatal(err)
	}
	if syn.N != 8 {
		t.Fatalf("padded domain %d, want 8", syn.N)
	}
}

func TestBuildSSERejectsNegativeBudget(t *testing.T) {
	if _, _, err := wavelet.BuildSSE(pdata.Deterministic([]float64{1}), -1); err == nil {
		t.Fatal("negative budget accepted")
	}
}

// --- coefficient statistics ---------------------------------------------------

func TestCoefficientStatsParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for trial := 0; trial < 10; trial++ {
		for _, src := range []pdata.Source{
			ptest.RandomValuePDF(rng, 8, 3),
			ptest.RandomTuplePDF(rng, 8, 5, 3),
			ptest.RandomBasic(rng, 8, 6),
		} {
			_, sigma2 := wavelet.CoefficientStats(src)
			mom := pdata.MomentsOf(src)
			wantTotal := 0.0
			for _, v := range mom.Var {
				wantTotal += v
			}
			gotTotal := 0.0
			for _, v := range sigma2 {
				gotTotal += v
			}
			if math.Abs(gotTotal-wantTotal) > 1e-9*(1+wantTotal) {
				t.Fatalf("%T: Σ Var[c_i] = %v, Σ Var[g_i] = %v", src, gotTotal, wantTotal)
			}
		}
	}
}

func TestCoefficientStatsAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 10; trial++ {
		for _, src := range []pdata.Source{
			ptest.RandomValuePDF(rng, 4, 2),
			ptest.RandomTuplePDF(rng, 4, 3, 2),
		} {
			mu, sigma2 := wavelet.CoefficientStats(src)
			n := len(mu)
			wantMu := make([]float64, n)
			wantSq := make([]float64, n)
			src.EnumerateWorlds(func(freqs []float64, prob float64) bool {
				nc := haar.ForwardNormalized(haar.Pad(append([]float64(nil), freqs...)))
				for i := range nc {
					wantMu[i] += prob * nc[i]
					wantSq[i] += prob * nc[i] * nc[i]
				}
				return true
			})
			for i := 0; i < n; i++ {
				if math.Abs(mu[i]-wantMu[i]) > 1e-9 {
					t.Fatalf("%T: mu[%d] = %v, enum %v", src, i, mu[i], wantMu[i])
				}
				wantVar := wantSq[i] - wantMu[i]*wantMu[i]
				if math.Abs(sigma2[i]-wantVar) > 1e-9 {
					t.Fatalf("%T: sigma2[%d] = %v, enum %v", src, i, sigma2[i], wantVar)
				}
			}
		}
	}
}

// --- point errors and the restricted DP (Theorem 8) --------------------------

func TestPointErrorsAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(68))
	p := metric.Params{C: 0.5}
	kinds := []metric.Kind{metric.SSEFixed, metric.SSRE, metric.SAE, metric.SARE, metric.MAE, metric.MARE}
	for trial := 0; trial < 8; trial++ {
		vp := ptest.RandomValuePDF(rng, 4, 3)
		for _, k := range kinds {
			pe, err := wavelet.NewPointErrors(vp, k, p)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range []float64{0, 0.5, 1, 1.7, 3, -0.4} {
				want := ptest.PerItemExpectedErrors(vp, k, p, v)
				for i := 0; i < 4; i++ {
					if got := pe.Err(i, v); math.Abs(got-want[i]) > 1e-9 {
						t.Fatalf("%v trial %d: Err(%d, %v) = %v, enum %v", k, trial, i, v, got, want[i])
					}
				}
			}
		}
	}
}

func TestPointErrorsRejectsSSE(t *testing.T) {
	vp := pdata.Deterministic([]float64{1, 2})
	if _, err := wavelet.NewPointErrors(vp, metric.SSE, metric.Params{}); err == nil {
		t.Fatal("PointErrors accepted the clairvoyant SSE metric")
	}
}

func TestBuildRestrictedMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(69))
	p := metric.Params{C: 0.5}
	kinds := []metric.Kind{metric.SSEFixed, metric.SAE, metric.SARE, metric.MAE}
	for trial := 0; trial < 6; trial++ {
		src := ptest.RandomValuePDF(rng, 8, 3)
		c := haar.Forward(src.ExpectedFreqs())
		for _, k := range kinds {
			pe, err := wavelet.NewPointErrors(src, k, p)
			if err != nil {
				t.Fatal(err)
			}
			for B := 0; B <= 3; B++ {
				syn, got, err := wavelet.BuildRestricted(src, k, p, B)
				if err != nil {
					t.Fatal(err)
				}
				if syn.B() > B {
					t.Fatalf("%v B=%d: retained %d coefficients", k, B, syn.B())
				}
				if direct := pe.SynopsisError(syn); math.Abs(direct-got) > 1e-8*(1+got) {
					t.Fatalf("%v B=%d: DP reports %v but synopsis evaluates to %v", k, B, got, direct)
				}
				// brute force over all subsets of size <= B
				best := math.Inf(1)
				for mask := 0; mask < 1<<8; mask++ {
					if popcount(mask) > B {
						continue
					}
					var idx []int
					var vals []float64
					for i := 0; i < 8; i++ {
						if mask&(1<<i) != 0 {
							idx = append(idx, i)
							vals = append(vals, c[i])
						}
					}
					alt := pe.SynopsisError(&wavelet.Synopsis{N: 8, Indices: idx, Values: vals})
					if alt < best {
						best = alt
					}
				}
				if math.Abs(got-best) > 1e-8*(1+best) {
					t.Fatalf("%v trial %d B=%d: DP %v, brute force %v", k, trial, B, got, best)
				}
			}
		}
	}
}

// For the fixed-representative squared error, the restricted DP must agree
// with the greedy TopK selection of Theorem 7 (both are optimal).
func TestBuildRestrictedSSEFixedMatchesGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	for trial := 0; trial < 8; trial++ {
		src := ptest.RandomValuePDF(rng, 8, 3)
		for B := 0; B <= 8; B++ {
			_, rep, err := wavelet.BuildSSE(src, B)
			if err != nil {
				t.Fatal(err)
			}
			_, dp, err := wavelet.BuildRestricted(src, metric.SSEFixed, metric.Params{}, B)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(dp-rep.ExpectedSSE) > 1e-8*(1+dp) {
				t.Fatalf("trial %d B=%d: restricted DP %v, greedy %v", trial, B, dp, rep.ExpectedSSE)
			}
		}
	}
}

func TestBuildRestrictedMonotoneInBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	src := ptest.RandomValuePDF(rng, 8, 3)
	p := metric.Params{C: 0.5}
	prev := math.Inf(1)
	for B := 0; B <= 8; B++ {
		_, got, err := wavelet.BuildRestricted(src, metric.SAE, p, B)
		if err != nil {
			t.Fatal(err)
		}
		if got > prev+1e-9 {
			t.Fatalf("B=%d: error %v above B=%d error %v", B, got, B-1, prev)
		}
		prev = got
	}
}

func TestBuildRestrictedTinyDomain(t *testing.T) {
	src := pdata.Deterministic([]float64{3})
	syn, got, err := wavelet.BuildRestricted(src, metric.SAE, metric.Params{C: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got > 1e-12 || syn.B() != 1 {
		t.Fatalf("n=1 with budget: error %v, B %d", got, syn.B())
	}
	_, got0, err := wavelet.BuildRestricted(src, metric.SAE, metric.Params{C: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got0-3) > 1e-12 {
		t.Fatalf("n=1 without budget: error %v, want 3", got0)
	}
}

func TestBuildRestrictedRejectsNegativeBudget(t *testing.T) {
	if _, _, err := wavelet.BuildRestricted(pdata.Deterministic([]float64{1}), metric.SAE, metric.Params{}, -1); err == nil {
		t.Fatal("negative budget accepted")
	}
}
