package wavelet

import (
	"fmt"
	"math"
	"sort"

	"probsyn/internal/engine"
	"probsyn/internal/haar"
	"probsyn/internal/metric"
	"probsyn/internal/numeric"
	"probsyn/internal/pdata"
	"probsyn/internal/shard"
)

// ShardedResult is a domain-sharded wavelet build: the padded domain is
// split into k equal contiguous shards, each shard's Haar subtree is
// solved independently, and the per-shard solutions are merged into one
// global synopsis. The per-shard solutions survive as Pieces — shard s's
// local synopsis over its own width-(N/k) domain, which reconstructs the
// merged synopsis's restriction to shard s exactly (the cluster serves
// range queries from pieces without ever assembling Merged).
type ShardedResult struct {
	Merged *Synopsis
	Pieces []*Synopsis
	// Bound is the additive suboptimality of Merged.Cost against the
	// unsharded optimum at the same budget: 0 for the SSE family (the
	// merge is exact), and for the DP families the budget-allocation gap
	// plus the forced-top-tree reconstruction slack (plus the per-shard
	// quantization bound when q > 0).
	Bound float64
}

// checkShards validates a k-way split of the padded domain n: shard
// subtrees must tile the Haar tree, so k must be a power of two no
// larger than n.
func checkShards(n, k int) error {
	if k < 2 {
		return fmt.Errorf("wavelet: sharded build needs k >= 2 shards, got %d", k)
	}
	if !haar.IsPow2(k) {
		return fmt.Errorf("wavelet: shard count %d not a power of two", k)
	}
	if k > n {
		return fmt.Errorf("wavelet: %d shards over padded domain %d (need k <= n)", k, n)
	}
	return nil
}

// globalIndex maps shard s's local detail coefficient i (level l within
// the width-w=N/k shard subtree) to its global Haar-tree index: the
// shard subtrees are the k subtrees rooted one level below the top
// tree, so local level l lands at global level log2(k)+l and shard s's
// block at that level starts at (k+s)·2^l. The map is monotone in i for
// fixed s, and preserves support size — so |c|·NormFactor keys, and
// with them TopK's total order, are bit-identical local vs global.
func globalIndex(i, s, k int) int {
	l := haar.Level(i)
	return (k+s)<<l + (i - 1<<l)
}

// localOf inverts globalIndex: the owning shard and local index of a
// global detail coefficient g >= k.
func localOf(g, k int) (s, i int) {
	l := haar.Level(g) - haar.Level(k)
	off := g - k<<l
	return off >> l, 1<<l + off&(1<<l-1)
}

// BuildShardedSSE is the domain-sharded BuildSSE: per-shard Haar
// transforms and candidate selections run concurrently (conc bounds the
// fan), and the merge is EXACT — element-identical to the unsharded
// build, Cost included.
//
// Why exact: the first log2(w) halving passes of the global transform
// act independently inside each width-w shard, so a shard-local Forward
// produces bit-identical detail coefficients, and the remaining passes
// are exactly Forward over the k shard averages (the top tree). TopK's
// comparator is a strict total order (|c|·NormFactor desc, index asc)
// preserved by the index map, so each shard's locally-ordered top
// min(B, w-1) details are a superset of its contribution to the global
// top B; merging that candidate union with the k top-tree coefficients
// under the same comparator selects exactly TopK's first B.
func BuildShardedSSE(src pdata.Source, B, k int, conc int) (*ShardedResult, *SSEReport, error) {
	if B < 0 {
		return nil, nil, fmt.Errorf("wavelet: negative budget %d", B)
	}
	expected := haar.Pad(src.ExpectedFreqs())
	N := len(expected)
	if err := checkShards(N, k); err != nil {
		return nil, nil, err
	}
	if B > N {
		B = N
	}
	w := N / k
	take := min(B, w-1)
	dense := make([]float64, N)
	avgs := make([]float64, k)
	sels := make([][]int, k)
	_ = engine.Fan(k, conc, func(s int) error {
		sc := haar.Forward(expected[s*w : (s+1)*w])
		avgs[s] = sc[0]
		// Scatter the details into their (disjoint) global slots and
		// select the shard's top candidates with cached keys — the only
		// sqrt per coefficient happens once, outside the comparator.
		keys := make([]float64, w)
		idx := make([]int, 0, w-1)
		for i := 1; i < w; i++ {
			dense[globalIndex(i, s, k)] = sc[i]
			keys[i] = math.Abs(sc[i]) * haar.NormFactor(i, w)
			idx = append(idx, i)
		}
		sort.Slice(idx, func(a, b int) bool {
			ka, kb := keys[idx[a]], keys[idx[b]]
			if ka != kb {
				return ka > kb
			}
			return idx[a] < idx[b]
		})
		sels[s] = idx[:take]
		return nil
	})
	top := haar.Forward(avgs)
	copy(dense[:k], top)

	// Candidate union: the whole top tree plus each shard's top-take
	// details, ranked under TopK's exact comparator.
	cand := make([]int, 0, k+k*take)
	for g := 0; g < k; g++ {
		cand = append(cand, g)
	}
	for s := 0; s < k; s++ {
		for _, i := range sels[s] {
			cand = append(cand, globalIndex(i, s, k))
		}
	}
	key := func(g int) float64 { return math.Abs(dense[g]) * haar.NormFactor(g, N) }
	sort.Slice(cand, func(a, b int) bool {
		ka, kb := key(cand[a]), key(cand[b])
		if ka != kb {
			return ka > kb
		}
		return cand[a] < cand[b]
	})
	syn := fromDense(dense, cand[:B])

	// Replay BuildSSE's accounting over the (identical) dense transform
	// so the report and Cost stay bit-identical too.
	rep := &SSEReport{}
	for i, v := range dense {
		nv := v * haar.NormFactor(i, N)
		rep.TotalMuSq += nv * nv
	}
	for j, i := range syn.Indices {
		nv := syn.Values[j] * haar.NormFactor(i, N)
		rep.RetainedMuSq += nv * nv
	}
	mom := pdata.MomentsOf(src)
	var acc numeric.Accumulator
	for _, v := range mom.Var {
		acc.Add(v)
	}
	rep.VarianceFloor = acc.Value()
	rep.ExpectedSSE = rep.VarianceFloor + rep.DroppedMuSq()
	syn.Cost = rep.ExpectedSSE

	return &ShardedResult{
		Merged: syn,
		Pieces: ssePieces(syn, k, w),
	}, rep, nil
}

// ssePieces projects a merged SSE synopsis onto each shard: retained
// details map back to local indices, and the retained top-tree
// coefficients collapse into the shard's constant offset (every
// top-tree support half spans whole shards), carried as local c0.
func ssePieces(syn *Synopsis, k, w int) []*Synopsis {
	N := syn.N
	pieces := make([]*Synopsis, k)
	locIdx := make([][]int, k)
	locVal := make([][]float64, k)
	for j, g := range syn.Indices {
		if g < k {
			continue
		}
		s, i := localOf(g, k)
		locIdx[s] = append(locIdx[s], i)
		locVal[s] = append(locVal[s], syn.Values[j])
	}
	for s := 0; s < k; s++ {
		delta := 0.0
		for _, g := range haar.Path(s*w, N) {
			if g >= k {
				continue
			}
			if j := sort.SearchInts(syn.Indices, g); j < len(syn.Indices) && syn.Indices[j] == g {
				delta += haar.Sign(g, s*w, N) * syn.Values[j]
			}
		}
		pieces[s] = &Synopsis{
			N:       w,
			Indices: append([]int{0}, locIdx[s]...),
			Values:  append([]float64{delta}, locVal[s]...),
		}
	}
	return pieces
}

// BuildShardedRestricted is the domain-sharded restricted DP (exact
// when q == 0, incoming-value quantized when q >= 2): each shard runs a
// forced-root restricted sweep over its own subdomain (its local c0 —
// the shard average — pinned retained, so the local solution composes
// with the top tree), and an exact budget-allocation DP over the k
// frontiers splits the global budget B.
//
// The merged synopsis retains the full k-coefficient top tree at its
// expected values (restricted-legal: they are exactly the global
// expected coefficients, by linearity of the transform over shard
// averages) plus every piece's details — Σ_s b_s terms for per-shard
// budgets summing to B, since each piece's forced c0 trades 1:1 for its
// top-tree slot. Merged.Cost is the allocation DP's exact combination
// of per-shard costs, and the returned Bound certifies
// Merged.Cost <= OPT + Bound against the unsharded optimum.
func BuildShardedRestricted(src pdata.Source, kind metric.Kind, p metric.Params, B, k, q int, pool *engine.Pool, conc int) (*ShardedResult, error) {
	if B < 0 {
		return nil, fmt.Errorf("wavelet: negative budget %d", B)
	}
	vp := padValuePDF(pdata.AsValuePDF(src))
	N := vp.N
	if err := checkShards(N, k); err != nil {
		return nil, err
	}
	if B > N {
		B = N
	}
	if B < k {
		return nil, fmt.Errorf("wavelet: sharded restricted build needs budget >= k=%d (one coefficient per shard), got %d", k, B)
	}
	w := N / k
	// Shard s can usefully hold up to min(B+1, w) terms: B+1 because at
	// the bound's reference total B+k the other k-1 shards keep one term
	// each; w because that is its whole subdomain.
	caps := make([]int, k)
	for s := range caps {
		caps[s] = min(B+1, w)
	}
	sweeps := make([]*Sweep, k)
	pes := make([]*PointErrors, k)
	err := engine.Fan(k, conc, func(s int) error {
		svp := &pdata.ValuePDF{N: w, Items: vp.Items[s*w : (s+1)*w]}
		sw, pe, err := sweepRestrictedOpt(svp, kind, p, caps[s], q, true, pool)
		if err != nil {
			return err
		}
		sweeps[s], pes[s] = sw, pe
		return nil
	})
	if err != nil {
		return nil, err
	}
	cum := kind.Cumulative()
	alloc, err := shard.Allocate(B+k, caps, cum, func(s, b int) float64 { return sweeps[s].Cost(b) })
	if err != nil {
		return nil, err
	}
	split := alloc.Split(B)
	pieces := make([]*Synopsis, k)
	for s, b := range split {
		syn, err := sweeps[s].Synopsis(b)
		if err != nil {
			return nil, err
		}
		pieces[s] = syn
	}

	// Merge: full top tree + re-indexed piece details, sorted globally.
	avgs := make([]float64, k)
	for s, piece := range pieces {
		avgs[s] = piece.Values[0] // forced local c0 = shard average
	}
	top := haar.Forward(avgs)
	type cv struct {
		g int
		v float64
	}
	coefs := make([]cv, 0, k+B)
	for g := 0; g < k; g++ {
		coefs = append(coefs, cv{g, top[g]})
	}
	for s, piece := range pieces {
		for j := 1; j < len(piece.Indices); j++ {
			coefs = append(coefs, cv{globalIndex(piece.Indices[j], s, k), piece.Values[j]})
		}
	}
	sort.Slice(coefs, func(a, b int) bool { return coefs[a].g < coefs[b].g })
	merged := &Synopsis{
		N:       N,
		Indices: make([]int, len(coefs)),
		Values:  make([]float64, len(coefs)),
		Cost:    alloc.Cost(B),
	}
	for j, c := range coefs {
		merged.Indices[j] = c.g
		merged.Values[j] = c.v
	}

	// Additive bound against the unsharded restricted optimum OPT.
	// Take the optimum's solution S*, add the full top tree: that is a
	// forced per-shard solution with at most B+k terms, so the alloc
	// table at total B+k is <= err(S*∪top) (+ the per-shard quantized
	// slack when q > 0), and err(S*∪top) <= OPT + pen, where pen prices
	// the reconstruction drift from retaining top-tree coefficients S*
	// dropped. Hence Cost = Ã(B) <= OPT + (Ã(B)-Ã(B+k)) + pen + quant.
	bound := math.Max(0, alloc.Cost(B)-alloc.Cost(B+k))
	if q > 0 {
		qt := 0.0
		for _, sw := range sweeps {
			if cum {
				qt += sw.ErrorBound()
			} else {
				qt = math.Max(qt, sw.ErrorBound())
			}
		}
		bound += qt
	}
	bound += forcedTopPenalty(vp, kind, pes, k, cum)

	return &ShardedResult{Merged: merged, Pieces: pieces, Bound: bound}, nil
}

// forcedTopPenalty bounds how much expected error retaining the full
// top tree can add over any restricted solution. All restricted
// solutions reconstruct each item as a subset sum of its ancestors'
// expected contributions, so per item the reconstruction lives in the
// interval [Σ negative contribs, Σ positive contribs]; within a shard
// the top-tree ancestors are shared, so the drift from toggling any
// top-tree subset is at most δ̂_s = max(Σ positive, -Σ negative) over
// the shard's top-tree path contributions. The per-item error function
// is Lipschitz on the reachable interval (errSlack), and the penalties
// combine like the metric.
func forcedTopPenalty(vp *pdata.ValuePDF, kind metric.Kind, pes []*PointErrors, k int, cum bool) float64 {
	N := vp.N
	w := N / k
	cg := haar.Forward(vp.ExpectedFreqs())
	squared := kind == metric.SSEFixed || kind == metric.SSRE
	var acc numeric.Accumulator
	worst := 0.0
	for s := 0; s < k; s++ {
		var pos, neg float64
		for _, g := range haar.Path(s*w, N) {
			if g >= k {
				continue
			}
			c := haar.Sign(g, s*w, N) * cg[g]
			if c > 0 {
				pos += c
			} else {
				neg += c
			}
		}
		dhat := math.Max(pos, -neg)
		if dhat == 0 {
			continue
		}
		for i := s * w; i < (s+1)*w; i++ {
			var lo, hi float64
			if squared {
				// The absolute family's slack is interval-independent;
				// only the squared family needs the reachable interval.
				for _, g := range haar.Path(i, N) {
					c := haar.Sign(g, i, N) * cg[g]
					if c > 0 {
						hi += c
					} else {
						lo += c
					}
				}
			}
			e := pes[s].errSlack(i-s*w, lo, hi, dhat)
			if cum {
				acc.Add(e)
			} else if e > worst {
				worst = e
			}
		}
	}
	if cum {
		return acc.Value()
	}
	return worst
}
