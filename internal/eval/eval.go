// Package eval reproduces the paper's experimental methodology (§5): it
// builds synopses with the probabilistic algorithms and with the two naive
// heuristics — optimizing the expected frequencies, and optimizing one
// sampled possible world — prices every result under the probabilistic
// error objective, and normalizes costs to the paper's error-percentage
// scale (0% = the n-bucket minimum achievable error, 100% = the 1-bucket
// maximum; note that unlike deterministic data, a B=n histogram still has
// non-zero absolute error, §5.1).
package eval

import (
	"fmt"
	"math/rand"

	"probsyn/internal/catalog"
	"probsyn/internal/engine"
	"probsyn/internal/hist"
	"probsyn/internal/metric"
	"probsyn/internal/pdata"
)

// Method identifies how a synopsis was constructed (§2.3, §5).
type Method int

// The paper's three competitors.
const (
	// Probabilistic is the paper's method: optimize the expected error
	// objective directly over the probabilistic input.
	Probabilistic Method = iota
	// Expectation builds the synopsis of the deterministic expected
	// frequencies E[g_i].
	Expectation
	// SampledWorld samples one possible world and builds its optimal
	// deterministic synopsis.
	SampledWorld
)

// String names the method as in the paper's figure legends.
func (m Method) String() string {
	switch m {
	case Probabilistic:
		return "Probabilistic"
	case Expectation:
		return "Expectation"
	case SampledWorld:
		return "Sampled World"
	default:
		return fmt.Sprintf("eval.Method(%d)", int(m))
	}
}

// HistPoint is one (budget, cost) sample of a series.
type HistPoint struct {
	B        int
	Cost     float64 // absolute expected error under the probabilistic metric
	ErrorPct float64 // normalized to [minCost(n buckets), maxCost(1 bucket)]
}

// HistSeries is one plotted line: a method (and sample index, for
// SampledWorld repetitions) across budgets.
type HistSeries struct {
	Method Method
	Sample int // 0 except for repeated SampledWorld draws
	Points []HistPoint
}

// HistogramExperiment reproduces one panel of Figure 2 (or its analogue on
// another metric/dataset).
type HistogramExperiment struct {
	Source  pdata.Source
	Metric  metric.Kind
	Params  metric.Params
	Budgets []int // ascending bucket budgets to report
	Samples int   // number of SampledWorld repetitions (the paper plots 3)
	Rng     *rand.Rand
	// Parallelism is the DP worker count (0 or 1: single-threaded,
	// < 0: one worker per CPU). The DP schedule is deterministic, so the
	// reported series are identical at any setting.
	Parallelism int
	// Pool, when non-nil, schedules every DP in the experiment on this
	// shared engine pool instead of a per-call one (Parallelism is then
	// ignored) — the same process-wide pool discipline the serving layer
	// uses. Results are bit-identical either way.
	Pool *engine.Pool
	// Catalog, when non-nil, receives the probabilistic method's built
	// histogram for every budget under Dataset's name — the same entries
	// (and, after Catalog.SaveAll, the same files) psynd serves, so an
	// experiment run doubles as offline catalog construction.
	Catalog *catalog.Catalog
	// Dataset names the source in catalog keys; required with Catalog.
	Dataset string
}

// pool resolves the experiment's scheduling choice.
func (e *HistogramExperiment) pool() *engine.Pool {
	if e.Pool != nil {
		return e.Pool
	}
	return engine.New(engine.Options{Workers: e.workers()})
}

// Run executes the experiment and returns one series per method (plus one
// per extra sampled world).
func (e *HistogramExperiment) Run() ([]HistSeries, error) {
	if len(e.Budgets) == 0 {
		return nil, fmt.Errorf("eval: no budgets")
	}
	bmax := 0
	for _, b := range e.Budgets {
		if b <= 0 {
			return nil, fmt.Errorf("eval: budget %d, want >= 1", b)
		}
		if b > bmax {
			bmax = b
		}
	}
	probOracle, err := hist.NewOracle(e.Source, e.Metric, e.Params)
	if err != nil {
		return nil, err
	}
	tab, err := hist.RunDPPool(probOracle, bmax, e.pool())
	if err != nil {
		return nil, err
	}
	if e.Catalog != nil {
		if err := e.catalogSynopses(tab); err != nil {
			return nil, err
		}
	}
	lo := minAchievableCost(probOracle)
	hi := tab.Cost(1)
	pct := func(c float64) float64 {
		if hi-lo <= 0 {
			return 0
		}
		p := 100 * (c - lo) / (hi - lo)
		if p < 0 {
			p = 0 // differenced costs can land an ulp below the floor
		}
		return p
	}

	var out []HistSeries
	probSeries := HistSeries{Method: Probabilistic}
	for _, b := range e.Budgets {
		c := tab.Cost(b)
		probSeries.Points = append(probSeries.Points, HistPoint{B: b, Cost: c, ErrorPct: pct(c)})
	}
	out = append(out, probSeries)

	expSeries, err := e.heuristicSeries(probOracle, pct, pdata.Deterministic(e.Source.ExpectedFreqs()), Expectation, 0, bmax)
	if err != nil {
		return nil, err
	}
	out = append(out, expSeries)

	samples := e.Samples
	if samples <= 0 {
		samples = 1
	}
	rng := e.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	freqs := make([]float64, e.Source.Domain())
	for s := 0; s < samples; s++ {
		e.Source.SampleInto(rng, freqs)
		world := pdata.Deterministic(freqs)
		ss, err := e.heuristicSeries(probOracle, pct, world, SampledWorld, s, bmax)
		if err != nil {
			return nil, err
		}
		out = append(out, ss)
	}
	return out, nil
}

// workers maps the Parallelism field to the DP engine's convention.
func (e *HistogramExperiment) workers() int {
	switch {
	case e.Parallelism < 0:
		return 0 // one per CPU
	case e.Parallelism == 0:
		return 1
	default:
		return e.Parallelism
	}
}

// catalogSynopses registers the probabilistic method's optimal histogram
// for every budget in the experiment's catalog: the budget sweep already
// paid for the whole DP table, so materializing each histogram is a
// backtrack away, and the entries are exactly what the serving layer
// answers estimates from.
func (e *HistogramExperiment) catalogSynopses(tab *hist.DPTable) error {
	for _, b := range e.Budgets {
		key, err := catalog.NewKey(e.Dataset, catalog.FamilyHistogram, e.Metric.String(), b, e.Params.C)
		if err != nil {
			return err
		}
		h, err := tab.Histogram(b)
		if err != nil {
			return err
		}
		if _, _, err := e.Catalog.Put(key, h); err != nil {
			return err
		}
	}
	return nil
}

// heuristicSeries optimizes the deterministic stand-in under the same
// metric, then re-prices each bucketing under the probabilistic oracle
// (representatives re-optimized per bucket, matching the paper's
// shared-code evaluation).
func (e *HistogramExperiment) heuristicSeries(probOracle hist.Oracle, pct func(float64) float64,
	det *pdata.ValuePDF, m Method, sample, bmax int) (HistSeries, error) {

	detOracle, err := hist.NewOracle(det, e.Metric, e.Params)
	if err != nil {
		return HistSeries{}, err
	}
	detTab, err := hist.RunDPPool(detOracle, bmax, e.pool())
	if err != nil {
		return HistSeries{}, err
	}
	s := HistSeries{Method: m, Sample: sample}
	for _, b := range e.Budgets {
		h, err := hist.FromBoundaries(probOracle, detTab.Boundaries(b))
		if err != nil {
			return HistSeries{}, err
		}
		s.Points = append(s.Points, HistPoint{B: b, Cost: h.Cost, ErrorPct: pct(h.Cost)})
	}
	return s, nil
}

// minAchievableCost prices the n-bucket histogram: every item its own
// bucket — the floor any method can reach under the metric (non-zero on
// uncertain data, §5.1).
func minAchievableCost(o hist.Oracle) float64 {
	n := o.N()
	total := 0.0
	for i := 0; i < n; i++ {
		c, _ := o.Cost(i, i)
		if o.Combine() == hist.Sum {
			total += c
		} else if c > total {
			total = c
		}
	}
	return total
}

// EvaluateAt prices an existing histogram — its bucketing AND its stored
// representatives — under a per-item-decomposable metric, using the
// marginal value pdf of the source. (For the clairvoyant SSE objective the
// cost is representative-free; use the oracle's bucket costs instead.)
func EvaluateAt(src pdata.Source, k metric.Kind, p metric.Params, h *hist.Histogram) (float64, error) {
	if k == metric.SSE {
		return 0, fmt.Errorf("eval: EvaluateAt is representative-based; SSE (Eq. 5) is not")
	}
	vp := pdata.AsValuePDF(src)
	if vp.N != h.N {
		return 0, fmt.Errorf("eval: histogram domain %d != source domain %d", h.N, vp.N)
	}
	total := 0.0
	for _, b := range h.Buckets {
		for i := b.Start; i <= b.End; i++ {
			e := expectedPointError(&vp.Items[i], k, p, b.Rep)
			if k.Cumulative() {
				total += e
			} else if e > total {
				total = e
			}
		}
	}
	return total, nil
}

// expectedPointError computes E[err(g, v)] directly from one item pdf.
func expectedPointError(ip *pdata.ItemPDF, k metric.Kind, p metric.Params, v float64) float64 {
	total := ip.ZeroProb() * k.PointError(0, v, p)
	for _, e := range ip.Entries {
		if e.Freq == 0 {
			continue
		}
		total += e.Prob * k.PointError(e.Freq, v, p)
	}
	return total
}
