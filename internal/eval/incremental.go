package eval

import (
	"fmt"
	"runtime"
	"time"

	"probsyn/internal/engine"
	"probsyn/internal/hist"
	"probsyn/internal/metric"
	"probsyn/internal/pdata"
	"probsyn/internal/wavelet"
)

// IncrementalPoint is one measured incremental-vs-rebuild comparison:
// the average wall time of one live mutation (plus the revalidated
// frontier it leaves behind) against one from-scratch budget sweep over
// the same final data.
type IncrementalPoint struct {
	Family             string  `json:"family"` // "histogram", "wavelet-sse", "wavelet-restricted"
	Op                 string  `json:"op"`     // "append" or "update"
	Mutations          int     `json:"mutations"`
	IncrementalSeconds float64 `json:"incremental_seconds"` // average per mutation
	RebuildSeconds     float64 `json:"rebuild_seconds"`     // one fresh sweep over the final data
	Speedup            float64 `json:"speedup"`
}

// IncrementalExperiment measures what retained DP state buys: it drives
// each family's live frontier through a run of appends and in-place
// updates and prices them against from-scratch sweeps (the experiments
// CLI's `incremental` mode prints the series).
//
// The mutation mix mirrors the serving story the maintenance layer is
// built for, and each family is exercised where its incremental path
// applies: histogram updates land near the domain tail (cost is
// proportional to the columns right of the update — an update at item 0
// is a full re-DP), and the restricted-wavelet updates are
// mean-preserving corrections (the dirty-path fast path; mean-changing
// updates re-run the forward sweep and save little). The appended
// domains stay inside the wavelet padding until the batches outgrow it.
type IncrementalExperiment struct {
	Source *pdata.ValuePDF
	Metric metric.Kind // histogram + restricted wavelet metric (the SSE wavelet family ignores it)
	Params metric.Params
	B      int
	// Batch is the appended-items batch size per append mutation.
	Batch int
	// Mutations is how many timed mutations each point averages over.
	Mutations int
	// Pool, when non-nil, schedules every DP on this shared engine pool.
	Pool *engine.Pool
}

// Run executes the experiment: {histogram, wavelet-sse,
// wavelet-restricted} × {append, update}.
func (e *IncrementalExperiment) Run() ([]IncrementalPoint, error) {
	if e.B < 1 {
		return nil, fmt.Errorf("eval: incremental B %d, want >= 1", e.B)
	}
	batch := e.Batch
	if batch < 1 {
		batch = 1
	}
	muts := e.Mutations
	if muts < 1 {
		muts = 4
	}
	var out []IncrementalPoint
	for _, family := range []string{"histogram", "wavelet-sse", "wavelet-restricted"} {
		for _, op := range []string{"append", "update"} {
			pt, err := e.measure(family, op, batch, muts)
			if err != nil {
				return nil, err
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// appendBatch fabricates the items one append mutation adds.
func appendBatch(k, seed int) []pdata.ItemPDF {
	items := make([]pdata.ItemPDF, k)
	for j := range items {
		items[j] = pdata.ItemPDF{Entries: []pdata.FreqProb{
			{Freq: float64(1 + (seed+j)%4), Prob: 0.5},
			{Freq: float64((seed + j) % 3), Prob: 0.25},
		}}
	}
	return items
}

// meanOneA and meanOneB are exactly-mean-1 pdfs (0.5·2 == 0.25·1+0.25·3),
// so alternating between them is a mean-preserving correction.
var (
	meanOneA = pdata.ItemPDF{Entries: []pdata.FreqProb{{Freq: 2, Prob: 0.5}}}
	meanOneB = pdata.ItemPDF{Entries: []pdata.FreqProb{{Freq: 1, Prob: 0.25}, {Freq: 3, Prob: 0.25}}}
)

func (e *IncrementalExperiment) measure(family, op string, batch, muts int) (IncrementalPoint, error) {
	pt := IncrementalPoint{Family: family, Op: op, Mutations: muts}
	data := e.Source.Clone()

	type liveFrontier interface {
		Append(items []pdata.ItemPDF) error
		Update(i int, item pdata.ItemPDF) error
	}
	var (
		live    liveFrontier
		rebuild func(vp *pdata.ValuePDF) error
		err     error
	)
	switch family {
	case "histogram":
		mk := func(v *pdata.ValuePDF) (hist.Oracle, error) { return hist.NewOracle(v, e.Metric, e.Params) }
		live, err = hist.NewLiveDP(data, mk, e.B, e.Pool)
		rebuild = func(vp *pdata.ValuePDF) error {
			o, err := mk(vp)
			if err != nil {
				return err
			}
			_, err = hist.RunDPPool(o, e.B, e.Pool)
			return err
		}
	case "wavelet-sse":
		live, err = wavelet.NewLive(data, wavelet.LiveSSEFamily, metric.SSE, e.Params, e.B, 0, e.Pool)
		rebuild = func(vp *pdata.ValuePDF) error {
			_, err := wavelet.SweepSSE(vp, e.B)
			return err
		}
	default:
		live, err = wavelet.NewLive(data, wavelet.LiveRestrictedFamily, e.Metric, e.Params, e.B, 0, e.Pool)
		rebuild = func(vp *pdata.ValuePDF) error {
			_, err := wavelet.SweepRestrictedPool(vp, e.Metric, e.Params, e.B, e.Pool)
			return err
		}
	}
	if err != nil {
		return pt, err
	}

	// The update positions: near the tail for the histogram (the workload
	// the bounded re-DP is built for), mid-domain for the wavelets.
	updateAt := data.N / 2
	if family == "histogram" {
		updateAt = data.N - max(1, data.N/16)
	}
	if family == "wavelet-restricted" && op == "update" {
		// Untimed setup: pin the item to an exactly-representable mean so
		// the timed corrections below are mean-preserving (fast path).
		if err := live.Update(updateAt, meanOneA); err != nil {
			return pt, err
		}
		data.Items[updateAt] = meanOneA.Clone()
	}

	// Settle the heap between timed sections: the retained tables of the
	// previous family's live state are garbage by now, and collecting
	// them mid-measurement would bill one side arbitrarily.
	runtime.GC()
	start := time.Now()
	for m := 0; m < muts; m++ {
		if op == "append" {
			items := appendBatch(batch, m)
			if err := live.Append(items); err != nil {
				return pt, err
			}
			for _, it := range items {
				data.Items = append(data.Items, it.Clone())
			}
			data.N = len(data.Items)
		} else {
			it := meanOneB
			if m%2 == 1 {
				it = meanOneA
			}
			if err := live.Update(updateAt, it); err != nil {
				return pt, err
			}
			data.Items[updateAt] = it.Clone()
		}
	}
	pt.IncrementalSeconds = time.Since(start).Seconds() / float64(muts)

	runtime.GC()
	start = time.Now()
	if err := rebuild(data); err != nil {
		return pt, err
	}
	pt.RebuildSeconds = time.Since(start).Seconds()
	if pt.IncrementalSeconds > 0 {
		pt.Speedup = pt.RebuildSeconds / pt.IncrementalSeconds
	}
	return pt, nil
}
