package eval

import (
	"math/rand"
	"testing"

	"probsyn/internal/gen"
	"probsyn/internal/metric"
)

// TestIncrementalExperiment smoke-runs the incremental harness at a toy
// size: every family × op must produce a point with positive timings.
func TestIncrementalExperiment(t *testing.T) {
	src := gen.SensorGrid(rand.New(rand.NewSource(1)), gen.DefaultSensor(56))
	exp := &IncrementalExperiment{
		Source: src, Metric: metric.SAE, Params: metric.Params{C: 0.5},
		B: 4, Batch: 2, Mutations: 2,
	}
	points, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("%d points, want 6", len(points))
	}
	seen := map[string]bool{}
	for _, pt := range points {
		seen[pt.Family+"/"+pt.Op] = true
		if pt.IncrementalSeconds <= 0 || pt.RebuildSeconds <= 0 {
			t.Fatalf("%s/%s: non-positive timings %+v", pt.Family, pt.Op, pt)
		}
	}
	for _, want := range []string{"histogram/append", "histogram/update", "wavelet-sse/append", "wavelet-sse/update", "wavelet-restricted/append", "wavelet-restricted/update"} {
		if !seen[want] {
			t.Fatalf("missing point %s", want)
		}
	}
	if _, err := (&IncrementalExperiment{Source: src}).Run(); err == nil {
		t.Fatal("B=0 accepted")
	}
}
