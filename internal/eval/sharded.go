package eval

import (
	"fmt"
	"time"

	"probsyn"
	"probsyn/internal/engine"
	"probsyn/internal/metric"
	"probsyn/internal/pdata"
)

// ShardedPoint is one shard count of the sharded-build frontier: how
// long the k-way build took end to end (per-shard builds plus the
// merge), the exact combined cost of the merged synopsis, and the
// additive suboptimality certificate it carries. Bound is 0 at k = 1
// (the unsharded build IS the optimum) and for the SSE wavelet family,
// whose sharded merge is exact at every k.
type ShardedPoint struct {
	K       int     `json:"k"`
	Seconds float64 `json:"seconds"`
	Cost    float64 `json:"cost"`
	Bound   float64 `json:"bound"`
}

// ShardedExperiment sweeps BuildSharded over shard counts: one build
// per k, each reporting wall time, true cost, and the certified bound —
// the cost-vs-parallelism frontier a caller consults before picking a
// shard count (or a cluster size). The k = 1 row is the unsharded
// baseline, so the table reads directly as "what does sharding cost in
// quality, and what does it buy in time".
type ShardedExperiment struct {
	Source pdata.Source
	Metric metric.Kind
	Params metric.Params
	B      int
	// Ks are the shard counts to sweep, each >= 1; include 1 for the
	// unsharded baseline row.
	Ks []int
	// Wavelet selects the wavelet families (required for Quantize).
	Wavelet bool
	// Quantize, when >= 2, uses the quantized restricted wavelet DP
	// per shard (the only wavelet DP that reaches large domains).
	Quantize int
	// Pool, when non-nil, schedules every per-shard build on this
	// shared engine pool, one admission token per shard.
	Pool *engine.Pool
}

// Run executes the experiment: one sharded build per shard count.
func (e *ShardedExperiment) Run() ([]ShardedPoint, error) {
	if e.B < 1 {
		return nil, fmt.Errorf("eval: sharded frontier budget %d, want >= 1", e.B)
	}
	if len(e.Ks) == 0 {
		return nil, fmt.Errorf("eval: sharded frontier needs at least one shard count")
	}
	var opts []probsyn.BuildOption
	opts = append(opts, probsyn.WithParams(e.Params))
	if e.Pool != nil {
		opts = append(opts, probsyn.WithPool(e.Pool))
	}
	if e.Wavelet {
		opts = append(opts, probsyn.WithWavelet())
	}
	if e.Quantize >= 2 {
		opts = append(opts, probsyn.WithQuantize(e.Quantize))
	}
	var out []ShardedPoint
	for _, k := range e.Ks {
		start := time.Now()
		res, err := probsyn.BuildSharded(e.Source, e.Metric, e.B, k, opts...)
		if err != nil {
			return nil, fmt.Errorf("eval: k=%d: %w", k, err)
		}
		out = append(out, ShardedPoint{
			K: k, Seconds: time.Since(start).Seconds(),
			Cost: res.Synopsis.ErrorCost(), Bound: res.Bound,
		})
	}
	return out, nil
}
