package eval

import (
	"fmt"
	"math/rand"

	"probsyn/internal/hist"
	"probsyn/internal/metric"
	"probsyn/internal/numeric"
	"probsyn/internal/pdata"
)

// MonteCarloHistogramError estimates, by sampling possible worlds, the
// expected error of a fixed histogram:
//
//   - cumulative metrics: E_W[Σ_i err(g_i, ĝ_i)] — matches the analytic
//     objective and serves as an end-to-end statistical cross-check;
//   - max metrics: E_W[max_i err(g_i, ĝ_i)] — the paper's footnote-1
//     alternative formulation ("expectation of the maximum error", left as
//     future work there; we provide the estimator, since no closed form is
//     known). Note max_i E[err] <= E[max_i err] by Jensen/monotonicity, so
//     this estimate upper-bounds the MAE/MARE objective our DP minimizes.
func MonteCarloHistogramError(src pdata.Source, h *hist.Histogram, k metric.Kind,
	p metric.Params, samples int, rng *rand.Rand) (float64, error) {

	if samples <= 0 {
		return 0, fmt.Errorf("eval: samples %d, want >= 1", samples)
	}
	if src.Domain() != h.N {
		return 0, fmt.Errorf("eval: histogram domain %d != source domain %d", h.N, src.Domain())
	}
	reps := make([]float64, h.N)
	for _, b := range h.Buckets {
		for i := b.Start; i <= b.End; i++ {
			reps[i] = b.Rep
		}
	}
	freqs := make([]float64, h.N)
	var acc numeric.Accumulator
	for s := 0; s < samples; s++ {
		src.SampleInto(rng, freqs)
		if k.Cumulative() {
			world := 0.0
			for i := range freqs {
				world += k.PointError(freqs[i], reps[i], p)
			}
			acc.Add(world)
		} else {
			worst := 0.0
			for i := range freqs {
				if e := k.PointError(freqs[i], reps[i], p); e > worst {
					worst = e
				}
			}
			acc.Add(worst)
		}
	}
	return acc.Value() / float64(samples), nil
}
