package eval_test

import (
	"testing"

	"probsyn/internal/eval"
	"probsyn/internal/hist"
	"probsyn/internal/metric"
)

// TestShardedExperimentHistogramFrontier pins the frontier's semantics:
// the k=1 row is the unsharded optimum with a zero bound, and every
// sharded row's cost stays within its own certified bound of that
// optimum.
func TestShardedExperimentHistogramFrontier(t *testing.T) {
	src := smallLinkage(t, 96)
	exp := &eval.ShardedExperiment{
		Source: src, Metric: metric.SSE, B: 6, Ks: []int{1, 2, 4},
	}
	points, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points, want 3", len(points))
	}
	oracle, err := hist.NewOracle(src, metric.SSE, metric.Params{})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := hist.Optimal(oracle, 6)
	if err != nil {
		t.Fatal(err)
	}
	base := points[0]
	if base.K != 1 || base.Bound != 0 {
		t.Fatalf("k=1 row: K=%d Bound=%g, want the zero-bound unsharded baseline", base.K, base.Bound)
	}
	if base.Cost != opt.ErrorCost() {
		t.Fatalf("k=1 cost %g != unsharded optimum %g", base.Cost, opt.ErrorCost())
	}
	for _, p := range points {
		if p.Cost < base.Cost-1e-9 {
			t.Errorf("k=%d cost %g beats the unsharded optimum %g", p.K, p.Cost, base.Cost)
		}
		if p.Cost > base.Cost+p.Bound+1e-9 {
			t.Errorf("k=%d cost %g exceeds optimum %g + bound %g", p.K, p.Cost, base.Cost, p.Bound)
		}
		if p.Seconds <= 0 {
			t.Errorf("k=%d reported non-positive wall time %g", p.K, p.Seconds)
		}
	}
}

// TestShardedExperimentWaveletSSEExact pins that the SSE wavelet rows
// certify exactness: the merge is bit-identical to the unsharded build,
// so every k reports the same cost with a zero bound.
func TestShardedExperimentWaveletSSEExact(t *testing.T) {
	src := smallLinkage(t, 64)
	exp := &eval.ShardedExperiment{
		Source: src, Metric: metric.SSE, B: 8, Ks: []int{1, 2, 4}, Wavelet: true,
	}
	points, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Bound != 0 {
			t.Errorf("k=%d: SSE wavelet merge reported bound %g, want 0 (exact)", p.K, p.Bound)
		}
		if p.Cost != points[0].Cost {
			t.Errorf("k=%d cost %g != k=1 cost %g (exact merge must agree)", p.K, p.Cost, points[0].Cost)
		}
	}
}

// TestShardedExperimentValidates pins the argument errors.
func TestShardedExperimentValidates(t *testing.T) {
	src := smallLinkage(t, 32)
	if _, err := (&eval.ShardedExperiment{Source: src, Metric: metric.SSE, B: 0, Ks: []int{1}}).Run(); err == nil {
		t.Error("B=0 accepted")
	}
	if _, err := (&eval.ShardedExperiment{Source: src, Metric: metric.SSE, B: 4}).Run(); err == nil {
		t.Error("empty Ks accepted")
	}
}
