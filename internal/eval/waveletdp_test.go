package eval

import (
	"math/rand"
	"runtime"
	"testing"

	"probsyn/internal/metric"
	"probsyn/internal/ptest"
	"probsyn/internal/wavelet"
)

func TestWaveletDPExperimentCostsMatchSerialBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	src := ptest.RandomValuePDF(rng, 16, 3)
	budgets := []int{1, 4, 8}
	exp := &WaveletDPExperiment{
		Source: src, Metric: metric.SAE, Params: metric.Params{C: 0.5},
		Budgets: budgets, Parallelism: runtime.NumCPU(),
	}
	points, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(budgets) {
		t.Fatalf("%d points, want %d", len(points), len(budgets))
	}
	prev := 0.0
	for i, pt := range points {
		if pt.B != budgets[i] {
			t.Fatalf("point %d has B=%d, want %d", i, pt.B, budgets[i])
		}
		_, want, err := wavelet.BuildRestricted(src, metric.SAE, metric.Params{C: 0.5}, pt.B)
		if err != nil {
			t.Fatal(err)
		}
		if pt.Cost != want {
			t.Fatalf("B=%d: parallel experiment cost %v, serial build %v (not bit-identical)", pt.B, pt.Cost, want)
		}
		if i > 0 && pt.Cost > prev {
			t.Fatalf("cost not monotone in budget: %v after %v", pt.Cost, prev)
		}
		prev = pt.Cost
		if pt.Terms > pt.B {
			t.Fatalf("B=%d retained %d terms", pt.B, pt.Terms)
		}
	}
}

func TestWaveletDPExperimentNoBudgets(t *testing.T) {
	exp := &WaveletDPExperiment{}
	if _, err := exp.Run(); err == nil {
		t.Fatal("empty budget sweep accepted")
	}
}
