package eval_test

import (
	"math"
	"math/rand"
	"testing"

	"probsyn/internal/catalog"
	"probsyn/internal/engine"
	"probsyn/internal/eval"
	"probsyn/internal/gen"
	"probsyn/internal/hist"
	"probsyn/internal/metric"
	"probsyn/internal/pdata"
	"probsyn/internal/ptest"
)

func smallLinkage(t *testing.T, n int) *pdata.Basic {
	t.Helper()
	return gen.MystiQLinkage(rand.New(rand.NewSource(11)), gen.DefaultMystiQ(n))
}

func findSeries(ss []eval.HistSeries, m eval.Method) *eval.HistSeries {
	for i := range ss {
		if ss[i].Method == m {
			return &ss[i]
		}
	}
	return nil
}

func TestHistogramExperimentOrdering(t *testing.T) {
	src := smallLinkage(t, 120)
	for _, k := range []metric.Kind{metric.SSE, metric.SSRE, metric.SAE, metric.SARE} {
		exp := &eval.HistogramExperiment{
			Source: src, Metric: k, Params: metric.Params{C: 0.5},
			Budgets: []int{1, 2, 5, 10, 25, 60}, Samples: 2,
			Rng: rand.New(rand.NewSource(3)),
		}
		series, err := exp.Run()
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if len(series) != 4 { // prob + expectation + 2 sampled
			t.Fatalf("%v: %d series, want 4", k, len(series))
		}
		prob := findSeries(series, eval.Probabilistic)
		for _, s := range series {
			for j, pt := range s.Points {
				// The probabilistic method is optimal: no other method may
				// beat it at the same budget.
				if pt.Cost < prob.Points[j].Cost-1e-9*(1+pt.Cost) {
					t.Fatalf("%v: %v beats Probabilistic at B=%d (%v < %v)",
						k, s.Method, pt.B, pt.Cost, prob.Points[j].Cost)
				}
				if pt.ErrorPct < -1e-6 || pt.ErrorPct > 100+1e-6 {
					t.Fatalf("%v: %v error%% %v outside [0,100] at B=%d", k, s.Method, pt.ErrorPct, pt.B)
				}
			}
		}
		// Probabilistic cost must be non-increasing in B, ending below start.
		pts := prob.Points
		for j := 1; j < len(pts); j++ {
			if pts[j].Cost > pts[j-1].Cost+1e-9 {
				t.Fatalf("%v: probabilistic cost increased at B=%d", k, pts[j].B)
			}
		}
		if pts[0].ErrorPct < 99.9 {
			t.Fatalf("%v: B=1 error%% = %v, want 100", k, pts[0].ErrorPct)
		}
	}
}

// An experiment run on a shared engine pool must report identical series
// to the per-call default, and when given a catalog it must stash the
// probabilistic histogram for every budget with the costs the series
// reports — the entries the serving layer answers from.
func TestHistogramExperimentSharedPoolAndCatalog(t *testing.T) {
	src := smallLinkage(t, 120)
	budgets := []int{1, 2, 5, 10}
	base := &eval.HistogramExperiment{
		Source: src, Metric: metric.SAE, Params: metric.Params{C: 0.5},
		Budgets: budgets, Samples: 1, Rng: rand.New(rand.NewSource(3)),
	}
	want, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	cat := catalog.New()
	pooled := &eval.HistogramExperiment{
		Source: src, Metric: metric.SAE, Params: metric.Params{C: 0.5},
		Budgets: budgets, Samples: 1, Rng: rand.New(rand.NewSource(3)),
		Pool:    engine.New(engine.Options{Workers: 4, Grain: 1}),
		Catalog: cat, Dataset: "linkage",
	}
	got, err := pooled.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for j := range want[i].Points {
			if got[i].Points[j] != want[i].Points[j] {
				t.Fatalf("series %d point %d: pooled %+v != per-call %+v", i, j, got[i].Points[j], want[i].Points[j])
			}
		}
	}
	if cat.Len() != len(budgets) {
		t.Fatalf("catalog has %d entries, want %d", cat.Len(), len(budgets))
	}
	prob := findSeries(want, eval.Probabilistic)
	for j, b := range budgets {
		key, err := catalog.NewKey("linkage", catalog.FamilyHistogram, "SAE", b, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		e, ok := cat.Get(key)
		if !ok {
			t.Fatalf("catalog missing %v", key)
		}
		if e.Synopsis.ErrorCost() != prob.Points[j].Cost {
			t.Fatalf("B=%d: cataloged cost %v != series cost %v", b, e.Synopsis.ErrorCost(), prob.Points[j].Cost)
		}
	}
}

func TestHistogramExperimentAllMethodsAgreeAtBEqualOne(t *testing.T) {
	// With a single bucket there is only one bucketing, so every method's
	// repriced cost coincides.
	src := smallLinkage(t, 60)
	exp := &eval.HistogramExperiment{
		Source: src, Metric: metric.SSE, Params: metric.Params{},
		Budgets: []int{1}, Samples: 1, Rng: rand.New(rand.NewSource(5)),
	}
	series, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	base := series[0].Points[0].Cost
	for _, s := range series {
		if math.Abs(s.Points[0].Cost-base) > 1e-9*(1+base) {
			t.Fatalf("%v: B=1 cost %v != %v", s.Method, s.Points[0].Cost, base)
		}
	}
}

func TestHistogramExperimentMaxMetric(t *testing.T) {
	src := smallLinkage(t, 40)
	exp := &eval.HistogramExperiment{
		Source: src, Metric: metric.MAE, Params: metric.Params{C: 0.5},
		Budgets: []int{1, 3, 8}, Samples: 1, Rng: rand.New(rand.NewSource(7)),
	}
	series, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	prob := findSeries(series, eval.Probabilistic)
	for _, s := range series {
		for j, pt := range s.Points {
			if pt.Cost < prob.Points[j].Cost-1e-9 {
				t.Fatalf("%v beats probabilistic under MAE", s.Method)
			}
		}
	}
}

func TestHistogramExperimentArgumentErrors(t *testing.T) {
	src := smallLinkage(t, 20)
	if _, err := (&eval.HistogramExperiment{Source: src, Metric: metric.SSE}).Run(); err == nil {
		t.Error("no budgets accepted")
	}
	bad := &eval.HistogramExperiment{Source: src, Metric: metric.SSE, Budgets: []int{0}}
	if _, err := bad.Run(); err == nil {
		t.Error("budget 0 accepted")
	}
}

func TestEvaluateAtMatchesOracleOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	src := ptest.RandomValuePDF(rng, 8, 3)
	p := metric.Params{C: 0.5}
	for _, k := range []metric.Kind{metric.SSEFixed, metric.SSRE, metric.SAE, metric.SARE, metric.MAE, metric.MARE} {
		o, err := hist.NewOracle(src, k, p)
		if err != nil {
			t.Fatal(err)
		}
		h, err := hist.Optimal(o, 3)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eval.EvaluateAt(src, k, p, h)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-h.Cost) > 1e-9*(1+h.Cost) {
			t.Fatalf("%v: EvaluateAt = %v, oracle cost %v", k, got, h.Cost)
		}
	}
}

func TestEvaluateAtPenalizesWorseReps(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	src := ptest.RandomValuePDF(rng, 8, 3)
	p := metric.Params{C: 0.5}
	o, err := hist.NewOracle(src, metric.SAE, p)
	if err != nil {
		t.Fatal(err)
	}
	h, err := hist.Optimal(o, 3)
	if err != nil {
		t.Fatal(err)
	}
	perturbed := *h
	perturbed.Buckets = append([]hist.Bucket(nil), h.Buckets...)
	for i := range perturbed.Buckets {
		perturbed.Buckets[i].Rep += 1.5
	}
	base, _ := eval.EvaluateAt(src, metric.SAE, p, h)
	worse, err := eval.EvaluateAt(src, metric.SAE, p, &perturbed)
	if err != nil {
		t.Fatal(err)
	}
	if worse < base-1e-12 {
		t.Fatalf("perturbed reps evaluate better: %v < %v", worse, base)
	}
}

func TestEvaluateAtRejectsSSEAndMismatch(t *testing.T) {
	src := pdata.Deterministic([]float64{1, 2})
	h := &hist.Histogram{N: 2, Buckets: []hist.Bucket{{Start: 0, End: 1, Rep: 1.5}}}
	if _, err := eval.EvaluateAt(src, metric.SSE, metric.Params{}, h); err == nil {
		t.Error("EvaluateAt accepted clairvoyant SSE")
	}
	small := &hist.Histogram{N: 1, Buckets: []hist.Bucket{{Start: 0, End: 0, Rep: 1}}}
	if _, err := eval.EvaluateAt(src, metric.SAE, metric.Params{}, small); err == nil {
		t.Error("EvaluateAt accepted domain mismatch")
	}
}

func TestMethodString(t *testing.T) {
	if eval.Probabilistic.String() != "Probabilistic" ||
		eval.Expectation.String() != "Expectation" ||
		eval.SampledWorld.String() != "Sampled World" {
		t.Error("method names diverge from the paper's legends")
	}
}

// --- wavelet experiment -------------------------------------------------------

func TestWaveletExperimentOrdering(t *testing.T) {
	src := smallLinkage(t, 200)
	exp := &eval.WaveletExperiment{
		Source:  src,
		Budgets: []int{1, 2, 4, 8, 16, 64, 256},
		Samples: 2,
		Rng:     rand.New(rand.NewSource(9)),
	}
	series, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("%d series, want 3", len(series))
	}
	prob := series[0]
	if prob.Method != eval.Probabilistic {
		t.Fatal("first series should be probabilistic")
	}
	for _, s := range series {
		for j := range s.Points {
			pt := s.Points[j]
			if pt.ErrorPct < -1e-9 || pt.ErrorPct > 100+1e-9 {
				t.Fatalf("%v: error%% %v outside range", s.Method, pt.ErrorPct)
			}
			// Probabilistic retains the maximal mu² mass at every budget.
			if pt.ErrorPct < prob.Points[j].ErrorPct-1e-9 {
				t.Fatalf("%v beats probabilistic at B=%d", s.Method, pt.B)
			}
			if j > 0 && pt.ErrorPct > s.Points[j-1].ErrorPct+1e-9 {
				t.Fatalf("%v: error%% increased with budget at B=%d", s.Method, pt.B)
			}
		}
	}
	// Full budget: probabilistic error must reach 0.
	last := prob.Points[len(prob.Points)-1]
	if last.B >= 256 && last.ErrorPct > 1e-9 {
		t.Fatalf("full-budget probabilistic error%% = %v", last.ErrorPct)
	}
}

func TestWaveletExperimentNoBudgets(t *testing.T) {
	src := smallLinkage(t, 16)
	if _, err := (&eval.WaveletExperiment{Source: src}).Run(); err == nil {
		t.Error("no budgets accepted")
	}
}

// --- Monte Carlo --------------------------------------------------------------

func TestMonteCarloMatchesAnalyticCumulative(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	src := ptest.RandomValuePDF(rng, 10, 3)
	p := metric.Params{C: 0.5}
	o, err := hist.NewOracle(src, metric.SAE, p)
	if err != nil {
		t.Fatal(err)
	}
	h, err := hist.Optimal(o, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eval.MonteCarloHistogramError(src, h, metric.SAE, p, 200000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-h.Cost) > 0.05*(1+h.Cost) {
		t.Fatalf("Monte Carlo %v vs analytic %v", got, h.Cost)
	}
}

// E[max_i err] >= max_i E[err]: the footnote-1 objective dominates ours.
func TestMonteCarloExpectedMaxDominatesMaxExpected(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	src := ptest.RandomValuePDF(rng, 10, 3)
	p := metric.Params{C: 0.5}
	o, err := hist.NewOracle(src, metric.MAE, p)
	if err != nil {
		t.Fatal(err)
	}
	h, err := hist.Optimal(o, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eval.MonteCarloHistogramError(src, h, metric.MAE, p, 100000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got < h.Cost-0.02*(1+h.Cost) {
		t.Fatalf("E[max] = %v below max E = %v", got, h.Cost)
	}
}

func TestMonteCarloArgumentErrors(t *testing.T) {
	src := pdata.Deterministic([]float64{1, 2})
	h := &hist.Histogram{N: 2, Buckets: []hist.Bucket{{Start: 0, End: 1, Rep: 1}}}
	rng := rand.New(rand.NewSource(1))
	if _, err := eval.MonteCarloHistogramError(src, h, metric.SAE, metric.Params{}, 0, rng); err == nil {
		t.Error("0 samples accepted")
	}
	tiny := &hist.Histogram{N: 1, Buckets: []hist.Bucket{{Start: 0, End: 0, Rep: 1}}}
	if _, err := eval.MonteCarloHistogramError(src, tiny, metric.SAE, metric.Params{}, 10, rng); err == nil {
		t.Error("domain mismatch accepted")
	}
}
