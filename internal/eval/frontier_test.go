package eval

import (
	"math/rand"
	"testing"

	"probsyn/internal/catalog"
	"probsyn/internal/engine"
	"probsyn/internal/hist"
	"probsyn/internal/metric"
	"probsyn/internal/ptest"
	"probsyn/internal/wavelet"
)

// The frontier experiment's series must match per-budget independent
// builds exactly, be non-increasing in budget, and stash servable
// catalog entries for the two server families.
func TestFrontierExperimentMatchesIndependentBuilds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := ptest.RandomValuePDF(rng, 32, 3)
	cat := catalog.New()
	exp := &FrontierExperiment{
		Source: src, Metric: metric.SAE, Params: metric.Params{C: 0.5},
		Bmax: 8, Quantize: 1,
		Pool:    engine.New(engine.Options{Workers: 2, Grain: 1}),
		Catalog: cat, Dataset: "t",
	}
	series, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("got %d series, want histogram + wavelet + unrestricted", len(series))
	}
	for _, s := range series {
		if len(s.Points) != exp.Bmax {
			t.Fatalf("%s: %d points, want %d", s.Family, len(s.Points), exp.Bmax)
		}
		for i, pt := range s.Points {
			if pt.B != i+1 {
				t.Fatalf("%s: point %d has budget %d", s.Family, i, pt.B)
			}
			if i > 0 && pt.Cost > s.Points[i-1].Cost {
				t.Fatalf("%s: cost increases at budget %d: %v > %v", s.Family, pt.B, pt.Cost, s.Points[i-1].Cost)
			}
		}
	}
	// Spot-check costs against independent builds.
	o, err := hist.NewOracle(src, metric.SAE, metric.Params{C: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []int{1, 4, 8} {
		h, err := hist.Optimal(o, b)
		if err != nil {
			t.Fatal(err)
		}
		if got := series[0].Points[b-1].Cost; got != h.Cost {
			t.Fatalf("histogram frontier cost(%d) = %v, independent build %v", b, got, h.Cost)
		}
		_, wc, err := wavelet.BuildRestricted(src, metric.SAE, metric.Params{C: 0.5}, b)
		if err != nil {
			t.Fatal(err)
		}
		if got := series[1].Points[b-1].Cost; got != wc {
			t.Fatalf("wavelet frontier cost(%d) = %v, independent build %v", b, got, wc)
		}
	}
	// The catalog holds histogram + restricted wavelet entries for every
	// budget (unrestricted synopses are not servable under the same key).
	if want := 2 * exp.Bmax; cat.Len() != want {
		t.Fatalf("catalog has %d entries, want %d", cat.Len(), want)
	}
}

func TestFrontierExperimentValidatesBmax(t *testing.T) {
	exp := &FrontierExperiment{
		Source: ptest.RandomValuePDF(rand.New(rand.NewSource(1)), 8, 2),
		Metric: metric.SAE, Params: metric.Params{C: 0.5},
	}
	if _, err := exp.Run(); err == nil {
		t.Fatal("Bmax 0 accepted")
	}
}
