package eval

import (
	"fmt"
	"time"

	"probsyn/internal/catalog"
	"probsyn/internal/engine"
	"probsyn/internal/hist"
	"probsyn/internal/metric"
	"probsyn/internal/pdata"
	"probsyn/internal/synopsis"
	"probsyn/internal/wavelet"
)

// FrontierPoint is one (budget, cost) sample of a swept frontier.
type FrontierPoint struct {
	B     int     `json:"budget"`
	Terms int     `json:"terms"`
	Cost  float64 `json:"cost"`
}

// FrontierSeries is one family's whole cost-vs-budget frontier, with the
// wall time of the single DP run that produced it. The histogram series
// also carries the DP's work counters (see hist.DPStats) so the pruned
// DP's output-sensitivity is observable next to the timing; wavelet
// sweeps have no split scans and leave it nil.
type FrontierSeries struct {
	Family       string          `json:"family"` // "histogram", "wavelet", "wavelet-unrestricted"
	SweepSeconds float64         `json:"sweep_seconds"`
	DPStats      *hist.DPStats   `json:"dp_stats,omitempty"`
	Points       []FrontierPoint `json:"points"`
}

// FrontierExperiment produces Figure-2/Figure-4-style cost-vs-budget
// frontiers the cheap way: one DP run per family serves every budget up
// to Bmax, instead of one build per plotted point. The histogram series
// reads the DP table's budget levels; the wavelet series extracts each
// budget from the coefficient-tree sweep; with Quantize >= 0 an
// unrestricted series (quantized candidate values) rides along.
type FrontierExperiment struct {
	Source pdata.Source
	Metric metric.Kind
	Params metric.Params
	Bmax   int
	// Quantize, when >= 0, adds the unrestricted wavelet DP's frontier
	// at this quantization; < 0 skips it (the state space is exponential
	// in q and log n).
	Quantize int
	// Pool, when non-nil, schedules every DP on this shared engine pool,
	// matching the serving layer's one-pool-per-process discipline.
	Pool *engine.Pool
	// Catalog, when non-nil, receives the histogram and restricted
	// wavelet synopsis for every budget under Dataset's name — the same
	// entries (and bytes) a psynd /v1/sweep registers. Unrestricted
	// synopses are not cataloged: they are not byte-interchangeable with
	// the restricted builds the server runs under the same key.
	Catalog *catalog.Catalog
	// Dataset names the source in catalog keys; required with Catalog.
	Dataset string
}

// Run executes the experiment: one histogram DP, one restricted wavelet
// sweep, and optionally one unrestricted sweep.
func (e *FrontierExperiment) Run() ([]FrontierSeries, error) {
	if e.Bmax < 1 {
		return nil, fmt.Errorf("eval: frontier Bmax %d, want >= 1", e.Bmax)
	}
	var out []FrontierSeries

	o, err := hist.NewOracle(e.Source, e.Metric, e.Params)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	tab, err := hist.RunDPPool(o, e.Bmax, e.Pool)
	if err != nil {
		return nil, err
	}
	stats := tab.Stats()
	hs := FrontierSeries{Family: catalog.FamilyHistogram, SweepSeconds: time.Since(start).Seconds(), DPStats: &stats}
	for b := 1; b <= tab.Bmax(); b++ {
		h, err := tab.Histogram(b)
		if err != nil {
			return nil, err
		}
		hs.Points = append(hs.Points, FrontierPoint{B: b, Terms: h.Terms(), Cost: tab.Cost(b)})
		if err := e.stash(catalog.FamilyHistogram, b, h); err != nil {
			return nil, err
		}
	}
	out = append(out, hs)

	start = time.Now()
	sw, err := wavelet.SweepRestrictedPool(e.Source, e.Metric, e.Params, e.Bmax, e.Pool)
	if err != nil {
		return nil, err
	}
	ws := FrontierSeries{Family: catalog.FamilyWavelet, SweepSeconds: time.Since(start).Seconds()}
	for b := 1; b <= sw.Bmax(); b++ {
		syn, err := sw.Synopsis(b)
		if err != nil {
			return nil, err
		}
		ws.Points = append(ws.Points, FrontierPoint{B: b, Terms: syn.Terms(), Cost: sw.Cost(b)})
		if err := e.stash(catalog.FamilyWavelet, b, syn); err != nil {
			return nil, err
		}
	}
	out = append(out, ws)

	if e.Quantize >= 0 {
		start = time.Now()
		usw, err := wavelet.SweepUnrestrictedPool(e.Source, e.Metric, e.Params, e.Bmax, e.Quantize, e.Pool)
		if err != nil {
			return nil, err
		}
		us := FrontierSeries{Family: "wavelet-unrestricted", SweepSeconds: time.Since(start).Seconds()}
		for b := 1; b <= usw.Bmax(); b++ {
			syn, err := usw.Synopsis(b)
			if err != nil {
				return nil, err
			}
			us.Points = append(us.Points, FrontierPoint{B: b, Terms: syn.Terms(), Cost: usw.Cost(b)})
		}
		out = append(out, us)
	}
	return out, nil
}

// stash registers a swept synopsis in the experiment's catalog, when one
// is configured.
func (e *FrontierExperiment) stash(family string, b int, syn synopsis.Synopsis) error {
	if e.Catalog == nil {
		return nil
	}
	key, err := catalog.NewKey(e.Dataset, family, e.Metric.String(), b, e.Params.C)
	if err != nil {
		return err
	}
	_, _, err = e.Catalog.Put(key, syn)
	return err
}
