package eval

import (
	"fmt"
	"time"

	"probsyn/internal/engine"
	"probsyn/internal/metric"
	"probsyn/internal/pdata"
	"probsyn/internal/wavelet"
)

// ApproxFrontierPoint is one grid size of the quality-vs-speed frontier:
// how long the quantized restricted wavelet DP took, the true
// (exactly-evaluated) cost of the synopsis it extracted, and the §4.2
// additive suboptimality bound it certifies.
type ApproxFrontierPoint struct {
	Q       int     `json:"q"`
	Seconds float64 `json:"seconds"`
	Cost    float64 `json:"cost"`
	Bound   float64 `json:"bound"`
}

// ApproxFrontierResult pairs the q-sweep with the exact restricted DP
// baseline, when one was run (ExactSeconds > 0): the cost every quantized
// point converges to as q grows.
type ApproxFrontierResult struct {
	ExactSeconds float64               `json:"exact_seconds,omitempty"`
	ExactCost    float64               `json:"exact_cost,omitempty"`
	Points       []ApproxFrontierPoint `json:"points"`
}

// ApproxFrontierExperiment sweeps the quantized restricted wavelet DP's
// accuracy knob: one build per grid size q, each reporting wall time,
// true cost, and the additive error bound — the quality-vs-speed frontier
// a caller consults before picking q for a domain the exact DP cannot
// reach. With Exact set, the exact restricted DP runs first as the
// baseline (only feasible on small domains; the quantized builds exist
// precisely because the exact state space is O(n²B²)).
type ApproxFrontierExperiment struct {
	Source pdata.Source
	Metric metric.Kind
	Params metric.Params
	B      int
	// Qs are the grid sizes to sweep, each >= 2.
	Qs []int
	// Exact adds the exact restricted DP baseline.
	Exact bool
	// Pool, when non-nil, schedules every DP on this shared engine pool.
	Pool *engine.Pool
}

// Run executes the experiment: the optional exact baseline, then one
// quantized build per grid size.
func (e *ApproxFrontierExperiment) Run() (*ApproxFrontierResult, error) {
	if e.B < 1 {
		return nil, fmt.Errorf("eval: approx frontier budget %d, want >= 1", e.B)
	}
	if len(e.Qs) == 0 {
		return nil, fmt.Errorf("eval: approx frontier needs at least one grid size")
	}
	out := &ApproxFrontierResult{}
	if e.Exact {
		start := time.Now()
		_, cost, err := wavelet.BuildRestrictedPool(e.Source, e.Metric, e.Params, e.B, e.Pool)
		if err != nil {
			return nil, fmt.Errorf("eval: exact baseline: %w", err)
		}
		out.ExactSeconds = time.Since(start).Seconds()
		out.ExactCost = cost
	}
	for _, q := range e.Qs {
		start := time.Now()
		sw, err := wavelet.SweepRestrictedApproxPool(e.Source, e.Metric, e.Params, e.B, q, e.Pool)
		if err != nil {
			return nil, fmt.Errorf("eval: q=%d: %w", q, err)
		}
		secs := time.Since(start).Seconds()
		b := e.B
		if bm := sw.Bmax(); b > bm {
			b = bm
		}
		out.Points = append(out.Points, ApproxFrontierPoint{
			Q: q, Seconds: secs, Cost: sw.Cost(b), Bound: sw.ErrorBound(),
		})
	}
	return out, nil
}
