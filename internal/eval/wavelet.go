package eval

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"probsyn/internal/catalog"
	"probsyn/internal/engine"
	"probsyn/internal/haar"
	"probsyn/internal/metric"
	"probsyn/internal/pdata"
	"probsyn/internal/wavelet"
)

// WaveletPoint is one (budget, error%) sample of a wavelet series.
type WaveletPoint struct {
	B        int
	ErrorPct float64
}

// WaveletSeries is one plotted line of Figure 4.
type WaveletSeries struct {
	Method Method
	Sample int
	Points []WaveletPoint
}

// WaveletExperiment reproduces a panel of Figure 4: expected-SSE wavelet
// synopses, Probabilistic versus Sampled World, with the error measured as
// the percentage of Σ μ_ci² NOT captured by the retained coefficient set
// (§5.2; the paper's analysis shows this is exactly the reducible part of
// the expected SSE). The Expectation heuristic coincides with the
// probabilistic method here (Theorem 7), which is why the paper plots only
// two lines.
type WaveletExperiment struct {
	Source  pdata.Source
	Budgets []int
	Samples int
	Rng     *rand.Rand
}

// Run executes the experiment.
func (e *WaveletExperiment) Run() ([]WaveletSeries, error) {
	if len(e.Budgets) == 0 {
		return nil, fmt.Errorf("eval: no budgets")
	}
	mu := haar.Normalize(haar.Forward(haar.Pad(e.Source.ExpectedFreqs())))
	n := len(mu)
	muSq := make([]float64, n)
	total := 0.0
	for i, v := range mu {
		muSq[i] = v * v
		total += muSq[i]
	}
	pct := func(retained float64) float64 {
		if total == 0 {
			return 0
		}
		p := 100 * (total - retained) / total
		if p < 0 {
			p = 0
		}
		return p
	}

	var out []WaveletSeries
	// Probabilistic: retain by |mu| — the optimal order.
	probOrder := orderByMagnitude(mu)
	out = append(out, seriesFromOrder(Probabilistic, 0, e.Budgets, probOrder, muSq, pct))

	samples := e.Samples
	if samples <= 0 {
		samples = 1
	}
	rng := e.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	freqs := make([]float64, e.Source.Domain())
	for s := 0; s < samples; s++ {
		e.Source.SampleInto(rng, freqs)
		nc := haar.Normalize(haar.Forward(haar.Pad(append([]float64(nil), freqs...))))
		order := orderByMagnitude(nc)
		out = append(out, seriesFromOrder(SampledWorld, s, e.Budgets, order, muSq, pct))
	}
	return out, nil
}

// WaveletDPPoint is one (budget, wall time, error) sample of the
// restricted wavelet DP.
type WaveletDPPoint struct {
	B       int
	Seconds float64
	Cost    float64
	Terms   int
}

// WaveletDPExperiment measures the restricted coefficient-tree DP
// (Theorem 8) across a budget sweep — the wavelet sibling of the Figure 3
// histogram-DP timings. Parallelism is the engine worker count threaded
// into the DP's level sweeps; like HistogramExperiment, the zero value
// means serial and a negative value means one worker per CPU. The
// synopsis, and therefore Cost, is bit-identical at any setting, so the
// series isolates pure scheduling speedup.
type WaveletDPExperiment struct {
	Source      pdata.Source
	Metric      metric.Kind
	Params      metric.Params
	Budgets     []int
	Parallelism int
	// Pool, when non-nil, schedules every build on this shared engine
	// pool (Parallelism is then ignored), matching the serving layer's
	// one-pool-per-process discipline.
	Pool *engine.Pool
	// Catalog, when non-nil, receives each built wavelet synopsis keyed
	// under Dataset — the same entries psynd serves.
	Catalog *catalog.Catalog
	// Dataset names the source in catalog keys; required with Catalog.
	Dataset string
}

// Run executes the experiment.
func (e *WaveletDPExperiment) Run() ([]WaveletDPPoint, error) {
	if len(e.Budgets) == 0 {
		return nil, fmt.Errorf("eval: no budgets")
	}
	pool := e.Pool
	if pool == nil {
		workers := e.Parallelism
		if workers == 0 {
			workers = 1
		}
		pool = engine.New(engine.Options{Workers: workers})
	}
	out := make([]WaveletDPPoint, 0, len(e.Budgets))
	for _, B := range e.Budgets {
		start := time.Now()
		syn, cost, err := wavelet.BuildRestrictedPool(e.Source, e.Metric, e.Params, B, pool)
		if err != nil {
			return nil, err
		}
		out = append(out, WaveletDPPoint{
			B: B, Seconds: time.Since(start).Seconds(), Cost: cost, Terms: syn.B(),
		})
		if e.Catalog != nil {
			key, err := catalog.NewKey(e.Dataset, catalog.FamilyWavelet, e.Metric.String(), B, e.Params.C)
			if err != nil {
				return nil, err
			}
			if _, _, err := e.Catalog.Put(key, syn); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

func orderByMagnitude(c []float64) []int {
	idx := make([]int, len(c))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ma, mb := math.Abs(c[idx[a]]), math.Abs(c[idx[b]])
		if ma != mb {
			return ma > mb
		}
		return idx[a] < idx[b]
	})
	return idx
}

func seriesFromOrder(m Method, sample int, budgets []int, order []int, muSq []float64, pct func(float64) float64) WaveletSeries {
	// prefix[k] = mu² mass captured by the first k coefficients of order.
	prefix := make([]float64, len(order)+1)
	for k, i := range order {
		prefix[k+1] = prefix[k] + muSq[i]
	}
	s := WaveletSeries{Method: m, Sample: sample}
	for _, b := range budgets {
		k := b
		if k > len(order) {
			k = len(order)
		}
		s.Points = append(s.Points, WaveletPoint{B: b, ErrorPct: pct(prefix[k])})
	}
	return s
}
