package synopsis

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
)

// The binary envelope (version 1), little-endian throughout:
//
//	magic   [4]byte  "PSYN"
//	version uint8    1
//	namelen uint8    length of the type name
//	name    []byte   codec type name
//	paylen  uint32   payload length in bytes
//	payload []byte   codec-specific body
//	crc     uint32   IEEE CRC-32 of the payload
//
// The checksum makes truncation and bit-rot loud instead of letting a
// mangled synopsis serve wrong estimates.
const (
	binaryVersion = 1
	jsonVersion   = 1
	jsonFormat    = "probsyn-synopsis"
)

var binaryMagic = [4]byte{'P', 'S', 'Y', 'N'}

// Marshal serializes a synopsis in the versioned binary envelope.
// Underlier facades (flat-catalog entries) are resolved to the concrete
// synopsis first, so a facade marshals byte-identically to the value it
// stands for.
func Marshal(s Synopsis) ([]byte, error) {
	s, err := Resolve(s)
	if err != nil {
		return nil, err
	}
	c, err := codecFor(s)
	if err != nil {
		return nil, err
	}
	payload, err := c.EncodeBinary(s)
	if err != nil {
		return nil, err
	}
	if len(c.Name) > 255 {
		return nil, fmt.Errorf("synopsis: type name %q too long", c.Name)
	}
	buf := make([]byte, 0, 4+1+1+len(c.Name)+4+len(payload)+4)
	buf = append(buf, binaryMagic[:]...)
	buf = append(buf, binaryVersion, byte(len(c.Name)))
	buf = append(buf, c.Name...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return buf, nil
}

// Unmarshal deserializes a synopsis from either envelope, sniffing the
// format: binary input starts with the "PSYN" magic, JSON with '{'.
func Unmarshal(data []byte) (Synopsis, error) {
	if len(data) >= 4 && bytes.Equal(data[:4], binaryMagic[:]) {
		return unmarshalBinary(data)
	}
	if trimmed := bytes.TrimLeft(data, " \t\r\n"); len(trimmed) > 0 && trimmed[0] == '{' {
		return UnmarshalJSON(data)
	}
	return nil, fmt.Errorf("synopsis: unrecognized envelope (want %q magic or JSON object)", binaryMagic)
}

func unmarshalBinary(data []byte) (Synopsis, error) {
	if len(data) < 6 {
		return nil, fmt.Errorf("synopsis: truncated header (%d bytes)", len(data))
	}
	if data[4] != binaryVersion {
		return nil, fmt.Errorf("synopsis: unsupported binary version %d (have %d)", data[4], binaryVersion)
	}
	nameLen := int(data[5])
	rest := data[6:]
	if len(rest) < nameLen+4 {
		return nil, fmt.Errorf("synopsis: truncated type name")
	}
	name := string(rest[:nameLen])
	rest = rest[nameLen:]
	payLen := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	if len(rest) < payLen+4 {
		return nil, fmt.Errorf("synopsis: truncated payload (want %d bytes, have %d)", payLen+4, len(rest))
	}
	payload := rest[:payLen]
	want := binary.LittleEndian.Uint32(rest[payLen:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("synopsis: payload checksum mismatch (corrupt input)")
	}
	c, err := codecByName(name)
	if err != nil {
		return nil, err
	}
	return c.DecodeBinary(payload)
}

// jsonEnvelope is the self-describing JSON wire format.
type jsonEnvelope struct {
	Format   string          `json:"format"`
	Version  int             `json:"version"`
	Type     string          `json:"type"`
	Synopsis json.RawMessage `json:"synopsis"`
}

// MarshalJSON serializes a synopsis in the versioned JSON envelope,
// resolving Underlier facades like Marshal.
func MarshalJSON(s Synopsis) ([]byte, error) {
	s, err := Resolve(s)
	if err != nil {
		return nil, err
	}
	c, err := codecFor(s)
	if err != nil {
		return nil, err
	}
	body, err := c.EncodeJSON(s)
	if err != nil {
		return nil, err
	}
	return json.Marshal(jsonEnvelope{
		Format:   jsonFormat,
		Version:  jsonVersion,
		Type:     c.Name,
		Synopsis: body,
	})
}

// UnmarshalJSON deserializes a synopsis from the JSON envelope.
func UnmarshalJSON(data []byte) (Synopsis, error) {
	var env jsonEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("synopsis: bad JSON envelope: %w", err)
	}
	if env.Format != jsonFormat {
		return nil, fmt.Errorf("synopsis: JSON format %q, want %q", env.Format, jsonFormat)
	}
	if env.Version != jsonVersion {
		return nil, fmt.Errorf("synopsis: unsupported JSON version %d (have %d)", env.Version, jsonVersion)
	}
	if len(env.Synopsis) == 0 {
		return nil, fmt.Errorf("synopsis: JSON envelope has no synopsis body")
	}
	c, err := codecByName(env.Type)
	if err != nil {
		return nil, err
	}
	return c.DecodeJSON(env.Synopsis)
}

// binWriter accumulates the fixed-width little-endian primitives the
// family payloads are built from.
type binWriter struct{ buf []byte }

func (w *binWriter) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *binWriter) f64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}

// binReader is the matching cursor; the first failed read poisons it so
// payload decoders can check err once at the end.
type binReader struct {
	buf []byte
	err error
}

func (r *binReader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 4 {
		r.err = fmt.Errorf("synopsis: truncated payload")
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf)
	r.buf = r.buf[4:]
	return v
}

func (r *binReader) f64() float64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 8 {
		r.err = fmt.Errorf("synopsis: truncated payload")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf))
	r.buf = r.buf[8:]
	return v
}

func (r *binReader) finish() error {
	if r.err != nil {
		return r.err
	}
	if len(r.buf) != 0 {
		return fmt.Errorf("synopsis: %d trailing payload bytes", len(r.buf))
	}
	return nil
}
