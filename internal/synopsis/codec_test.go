package synopsis

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"probsyn/internal/hist"
	"probsyn/internal/metric"
	"probsyn/internal/ptest"
	"probsyn/internal/wavelet"
)

// randomSynopses builds a mixed bag of real synopses — histograms under
// several metrics and wavelets from both builders — over random sources.
func randomSynopses(t *testing.T, rng *rand.Rand) []Synopsis {
	t.Helper()
	var out []Synopsis
	for trial := 0; trial < 6; trial++ {
		n := 4 + rng.Intn(24)
		src := ptest.RandomValuePDF(rng, n, 3)
		for _, k := range []metric.Kind{metric.SSE, metric.SSRE, metric.SAE, metric.MAE} {
			o, err := hist.NewOracle(src, k, metric.Params{C: 0.5})
			if err != nil {
				t.Fatal(err)
			}
			h, err := hist.Optimal(o, 1+rng.Intn(n))
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, h)
		}
		syn, _, err := wavelet.BuildSSE(src, 1+rng.Intn(8))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, syn)
		rsyn, _, err := wavelet.BuildRestricted(src, metric.SAE, metric.Params{C: 0.5}, 3)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rsyn)
	}
	return out
}

// domainOf returns the queryable domain of a synopsis for estimate sweeps.
func domainOf(s Synopsis) int {
	switch v := s.(type) {
	case *hist.Histogram:
		return v.N
	case *wavelet.Synopsis:
		return v.N
	}
	return 0
}

// checkSame verifies the decoded synopsis answers every point and range
// query exactly like the original (codecs preserve float64 bits, so exact
// equality is the contract, not a tolerance).
func checkSame(t *testing.T, orig, back Synopsis, codec string) {
	t.Helper()
	if orig.Terms() != back.Terms() {
		t.Fatalf("%s: terms %d != %d", codec, back.Terms(), orig.Terms())
	}
	if orig.ErrorCost() != back.ErrorCost() {
		t.Fatalf("%s: error cost %v != %v", codec, back.ErrorCost(), orig.ErrorCost())
	}
	n := domainOf(orig)
	for i := 0; i < n; i++ {
		if a, b := orig.Estimate(i), back.Estimate(i); a != b {
			t.Fatalf("%s: Estimate(%d) %v != %v", codec, i, b, a)
		}
	}
	for _, q := range [][2]int{{0, n - 1}, {0, 0}, {n / 2, n - 1}, {-3, 2 * n}} {
		if a, b := orig.RangeSum(q[0], q[1]), back.RangeSum(q[0], q[1]); a != b {
			t.Fatalf("%s: RangeSum(%d,%d) %v != %v", codec, q[0], q[1], b, a)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for _, s := range randomSynopses(t, rng) {
		blob, err := Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Unmarshal(blob)
		if err != nil {
			t.Fatalf("%T: %v", s, err)
		}
		if ot, bt := typeName(t, s), typeName(t, back); ot != bt {
			t.Fatalf("round-trip changed type %s -> %s", ot, bt)
		}
		checkSame(t, s, back, "binary")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for _, s := range randomSynopses(t, rng) {
		blob, err := MarshalJSON(s)
		if err != nil {
			t.Fatal(err)
		}
		// Through the explicit JSON entry point...
		back, err := UnmarshalJSON(blob)
		if err != nil {
			t.Fatalf("%T: %v", s, err)
		}
		checkSame(t, s, back, "json")
		// ...and through the sniffing entry point.
		back2, err := Unmarshal(blob)
		if err != nil {
			t.Fatalf("%T via sniff: %v", s, err)
		}
		checkSame(t, s, back2, "json-sniffed")
	}
}

func typeName(t *testing.T, s Synopsis) string {
	t.Helper()
	c, err := codecFor(s)
	if err != nil {
		t.Fatal(err)
	}
	return c.Name
}

func buildOneOfEach(t testing.TB) (h *hist.Histogram, w *wavelet.Synopsis) {
	t.Helper()
	rng := rand.New(rand.NewSource(93))
	src := ptest.RandomValuePDF(rng, 16, 3)
	o := hist.NewSSEValue(src)
	var err error
	h, err = hist.Optimal(o, 4)
	if err != nil {
		t.Fatal(err)
	}
	w, _, err = wavelet.BuildSSE(src, 5)
	if err != nil {
		t.Fatal(err)
	}
	return h, w
}

func TestUnmarshalRejectsCorruptBinary(t *testing.T) {
	h, w := buildOneOfEach(t)
	for name, s := range map[string]Synopsis{"histogram": h, "wavelet": w} {
		blob, err := Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			// Truncation at every prefix length must error, never panic.
			for cut := 0; cut < len(blob); cut++ {
				if _, err := Unmarshal(blob[:cut]); err == nil {
					t.Fatalf("truncation to %d bytes accepted", cut)
				}
			}
			// Any single flipped payload byte must fail the checksum.
			for i := 10; i < len(blob)-4; i += 7 {
				bad := append([]byte(nil), blob...)
				bad[i] ^= 0x40
				if _, err := Unmarshal(bad); err == nil {
					t.Fatalf("bit flip at %d accepted", i)
				}
			}
			// Unknown version.
			bad := append([]byte(nil), blob...)
			bad[4] = 99
			if _, err := Unmarshal(bad); err == nil || !strings.Contains(err.Error(), "version") {
				t.Fatalf("bad version: err = %v", err)
			}
			// Unknown type name (re-sign the payload so only the name is bad).
			if _, err := Unmarshal(forgeName(blob, "histogrm")); err == nil || !strings.Contains(err.Error(), "unknown synopsis type") {
				t.Fatalf("unknown type: err = %v", err)
			}
			// Unrecognized envelope entirely.
			if _, err := Unmarshal([]byte("BOGUS_FORMAT")); err == nil {
				t.Fatal("bogus envelope accepted")
			}
			if _, err := Unmarshal(nil); err == nil {
				t.Fatal("empty input accepted")
			}
		})
	}
}

// forgeName rewrites the envelope's type name, keeping everything else.
func forgeName(blob []byte, name string) []byte {
	nameLen := int(blob[5])
	out := append([]byte(nil), blob[:5]...)
	out = append(out, byte(len(name)))
	out = append(out, name...)
	out = append(out, blob[6+nameLen:]...)
	return out
}

func TestUnmarshalRejectsCorruptJSON(t *testing.T) {
	h, _ := buildOneOfEach(t)
	blob, err := MarshalJSON(h)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"not json":        []byte("{nope"),
		"wrong format":    []byte(`{"format":"other","version":1,"type":"histogram","synopsis":{}}`),
		"wrong version":   []byte(`{"format":"probsyn-synopsis","version":9,"type":"histogram","synopsis":{}}`),
		"unknown type":    []byte(`{"format":"probsyn-synopsis","version":1,"type":"nope","synopsis":{}}`),
		"missing body":    []byte(`{"format":"probsyn-synopsis","version":1,"type":"histogram"}`),
		"invalid body":    []byte(`{"format":"probsyn-synopsis","version":1,"type":"histogram","synopsis":{"N":3,"Buckets":[{"Start":1,"End":2}]}}`),
		"body wrong type": bytes.Replace(blob, []byte(`"type":"histogram"`), []byte(`"type":"wavelet"`), 1),
	}
	for name, data := range cases {
		if _, err := UnmarshalJSON(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// Decoded binary histograms must also re-validate: a structurally broken
// payload with a correct checksum is still rejected.
func TestBinaryDecodeValidates(t *testing.T) {
	h, _ := buildOneOfEach(t)
	h2 := &hist.Histogram{N: h.N, Buckets: append([]hist.Bucket(nil), h.Buckets...), Cost: h.Cost}
	h2.Buckets[0].Start = 1 // breaks the partition invariant
	payload, err := encodeHistogramBinary(h2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeHistogramBinary(payload); err == nil {
		t.Fatal("invalid histogram payload accepted")
	}
	w := &wavelet.Synopsis{N: 3, Indices: []int{0}, Values: []float64{1}} // N not a power of two
	payload, err = encodeWaveletBinary(w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeWaveletBinary(payload); err == nil {
		t.Fatal("invalid wavelet payload accepted")
	}
}

func TestRegisteredNames(t *testing.T) {
	names := Registered()
	want := map[string]bool{"histogram": false, "wavelet": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("codec %q not registered (have %v)", n, names)
		}
	}
}
