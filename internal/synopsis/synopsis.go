// Package synopsis defines the shared surface of every B-term synopsis the
// system builds — histograms and wavelets are two instances of the same
// idea (a compact summary minimizing expected error over possible worlds,
// §1 of Cormode & Garofalakis) — together with a versioned binary and JSON
// codec so synopses can be stored, shipped, and served independently of
// the data they summarize.
//
// Concrete synopsis families register a Codec (one per wire-format type
// name) at init time; Marshal picks the codec whose Match accepts the
// value, Unmarshal dispatches on the type name recorded in the envelope.
package synopsis

import (
	"fmt"
	"sort"
	"sync"
)

// Synopsis is the common query surface of a built synopsis: point and
// range estimation over the item domain, plus the two pieces of build
// metadata every family shares — its size in terms and the expected error
// it was priced at.
type Synopsis interface {
	// Estimate returns the synopsis's approximation of item i's frequency.
	Estimate(i int) float64
	// RangeSum estimates the total frequency over the inclusive item
	// range [lo, hi] (out-of-domain ends are clamped).
	RangeSum(lo, hi int) float64
	// Terms returns the synopsis size in terms (buckets or retained
	// coefficients).
	Terms() int
	// ErrorCost returns the expected error recorded when the synopsis was
	// built: the DP objective value for histograms, the expected SSE or
	// restricted-DP error for wavelets.
	ErrorCost() float64
	// Domain returns the queryable item-domain size n: Estimate is
	// meaningful for i in [0, n). (For wavelets n is the padded
	// power-of-two domain.) Servers use it to reject out-of-domain
	// queries instead of fabricating an answer.
	Domain() int
}

// Underlier is implemented by synopsis facades that stand in for a
// concrete family value without being one — the flat catalog's
// mmap-backed entries (internal/catalog) answer queries from file-viewed
// arrays but are not *hist.Histogram or *wavelet.Synopsis, so the codec
// could not match them. Underlying materializes the concrete synopsis
// the facade represents (possibly lazily, possibly failing on a corrupt
// backing file); Marshal, MarshalJSON, and TypeName resolve through it,
// so a facade round-trips the codec byte-identically to the value it
// stands for.
type Underlier interface {
	Underlying() (Synopsis, error)
}

// Resolve unwraps Underlier facades (recursively, defensively bounded)
// to the concrete synopsis the codec registry can match.
func Resolve(s Synopsis) (Synopsis, error) {
	for depth := 0; depth < 8; depth++ {
		u, ok := s.(Underlier)
		if !ok {
			return s, nil
		}
		inner, err := u.Underlying()
		if err != nil {
			return nil, err
		}
		s = inner
	}
	return nil, fmt.Errorf("synopsis: Underlying chain too deep (cycle?)")
}

// Codec serializes one synopsis family. Name is the wire-format type name
// (stable across releases; it is written into both envelopes). Match
// reports whether the codec handles a given value; the Encode/Decode pairs
// convert to and from the family's payload bytes (binary) or JSON value.
type Codec struct {
	Name         string
	Match        func(Synopsis) bool
	EncodeBinary func(Synopsis) ([]byte, error)
	DecodeBinary func([]byte) (Synopsis, error)
	EncodeJSON   func(Synopsis) ([]byte, error)
	DecodeJSON   func([]byte) (Synopsis, error)
}

var (
	regMu    sync.RWMutex
	registry = make(map[string]Codec)
	regOrder []string
)

// Register installs a codec under its type name. It panics on a duplicate
// or incomplete codec — registration happens at init time, so a bad codec
// is a programming error, not a runtime condition.
func Register(c Codec) {
	if c.Name == "" || c.Match == nil || c.EncodeBinary == nil || c.DecodeBinary == nil ||
		c.EncodeJSON == nil || c.DecodeJSON == nil {
		panic(fmt.Sprintf("synopsis: incomplete codec %q", c.Name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[c.Name]; dup {
		panic(fmt.Sprintf("synopsis: duplicate codec %q", c.Name))
	}
	registry[c.Name] = c
	regOrder = append(regOrder, c.Name)
}

// Registered returns the registered type names, sorted.
func Registered() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := append([]string(nil), regOrder...)
	sort.Strings(out)
	return out
}

// TypeName returns the wire-format type name of the codec that handles
// s — the name the envelopes record, which the catalog layer reuses as
// the synopsis family name.
func TypeName(s Synopsis) (string, error) {
	c, err := codecFor(s)
	if err != nil {
		return "", err
	}
	return c.Name, nil
}

// codecFor returns the first registered codec (in registration order)
// whose Match accepts s, resolving Underlier facades first.
func codecFor(s Synopsis) (Codec, error) {
	s, err := Resolve(s)
	if err != nil {
		return Codec{}, err
	}
	regMu.RLock()
	defer regMu.RUnlock()
	for _, name := range regOrder {
		if c := registry[name]; c.Match(s) {
			return c, nil
		}
	}
	return Codec{}, fmt.Errorf("synopsis: no codec registered for %T", s)
}

// codecByName returns the codec registered under name.
func codecByName(name string) (Codec, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	c, ok := registry[name]
	if !ok {
		return Codec{}, fmt.Errorf("synopsis: unknown synopsis type %q", name)
	}
	return c, nil
}
