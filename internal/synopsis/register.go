package synopsis

import (
	"bytes"
	"encoding/json"
	"fmt"

	"probsyn/internal/hist"
	"probsyn/internal/wavelet"
)

// strictUnmarshal decodes JSON rejecting unknown fields, so a body of one
// family cannot silently decode as an empty synopsis of another.
func strictUnmarshal(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// Wire-format type names. These are persistence format, not Go identifiers:
// never change them for existing families, only add new ones.
const (
	histogramType = "histogram"
	waveletType   = "wavelet"
)

func init() {
	Register(Codec{
		Name:         histogramType,
		Match:        func(s Synopsis) bool { _, ok := s.(*hist.Histogram); return ok },
		EncodeBinary: encodeHistogramBinary,
		DecodeBinary: decodeHistogramBinary,
		EncodeJSON:   encodeHistogramJSON,
		DecodeJSON:   decodeHistogramJSON,
	})
	Register(Codec{
		Name:         waveletType,
		Match:        func(s Synopsis) bool { _, ok := s.(*wavelet.Synopsis); return ok },
		EncodeBinary: encodeWaveletBinary,
		DecodeBinary: decodeWaveletBinary,
		EncodeJSON:   encodeWaveletJSON,
		DecodeJSON:   decodeWaveletJSON,
	})
}

// Histogram payload (binary v1): u32 N, u32 buckets, then per bucket
// u32 start, u32 end, f64 rep, f64 cost, then f64 total cost.
const histBucketBytes = 4 + 4 + 8 + 8

func encodeHistogramBinary(s Synopsis) ([]byte, error) {
	h := s.(*hist.Histogram)
	var w binWriter
	w.u32(uint32(h.N))
	w.u32(uint32(len(h.Buckets)))
	for _, b := range h.Buckets {
		w.u32(uint32(b.Start))
		w.u32(uint32(b.End))
		w.f64(b.Rep)
		w.f64(b.Cost)
	}
	w.f64(h.Cost)
	return w.buf, nil
}

func decodeHistogramBinary(payload []byte) (Synopsis, error) {
	r := &binReader{buf: payload}
	n := int(r.u32())
	nb := int(r.u32())
	if r.err == nil && len(r.buf) != nb*histBucketBytes+8 {
		return nil, fmt.Errorf("synopsis: histogram payload length %d does not match %d buckets", len(payload), nb)
	}
	h := &hist.Histogram{N: n, Buckets: make([]hist.Bucket, nb)}
	for k := range h.Buckets {
		h.Buckets[k] = hist.Bucket{
			Start: int(r.u32()),
			End:   int(r.u32()),
			Rep:   r.f64(),
			Cost:  r.f64(),
		}
	}
	h.Cost = r.f64()
	if err := r.finish(); err != nil {
		return nil, err
	}
	if err := h.Validate(); err != nil {
		return nil, fmt.Errorf("synopsis: decoded histogram invalid: %w", err)
	}
	return h, nil
}

func encodeHistogramJSON(s Synopsis) ([]byte, error) {
	return json.Marshal(s.(*hist.Histogram))
}

func decodeHistogramJSON(body []byte) (Synopsis, error) {
	h := new(hist.Histogram)
	if err := strictUnmarshal(body, h); err != nil {
		return nil, fmt.Errorf("synopsis: bad histogram body: %w", err)
	}
	if err := h.Validate(); err != nil {
		return nil, fmt.Errorf("synopsis: decoded histogram invalid: %w", err)
	}
	return h, nil
}

// Wavelet payload (binary v1): u32 N, u32 terms, then per term u32 index,
// f64 value, then f64 cost.
const waveletTermBytes = 4 + 8

func encodeWaveletBinary(s Synopsis) ([]byte, error) {
	syn := s.(*wavelet.Synopsis)
	var w binWriter
	w.u32(uint32(syn.N))
	w.u32(uint32(len(syn.Indices)))
	for k, idx := range syn.Indices {
		w.u32(uint32(idx))
		w.f64(syn.Values[k])
	}
	w.f64(syn.Cost)
	return w.buf, nil
}

func decodeWaveletBinary(payload []byte) (Synopsis, error) {
	r := &binReader{buf: payload}
	n := int(r.u32())
	terms := int(r.u32())
	if r.err == nil && len(r.buf) != terms*waveletTermBytes+8 {
		return nil, fmt.Errorf("synopsis: wavelet payload length %d does not match %d terms", len(payload), terms)
	}
	syn := &wavelet.Synopsis{
		N:       n,
		Indices: make([]int, terms),
		Values:  make([]float64, terms),
	}
	for k := 0; k < terms; k++ {
		syn.Indices[k] = int(r.u32())
		syn.Values[k] = r.f64()
	}
	syn.Cost = r.f64()
	if err := r.finish(); err != nil {
		return nil, err
	}
	if err := syn.Validate(); err != nil {
		return nil, fmt.Errorf("synopsis: decoded wavelet synopsis invalid: %w", err)
	}
	return syn, nil
}

func encodeWaveletJSON(s Synopsis) ([]byte, error) {
	return json.Marshal(s.(*wavelet.Synopsis))
}

func decodeWaveletJSON(body []byte) (Synopsis, error) {
	syn := new(wavelet.Synopsis)
	if err := strictUnmarshal(body, syn); err != nil {
		return nil, fmt.Errorf("synopsis: bad wavelet body: %w", err)
	}
	if err := syn.Validate(); err != nil {
		return nil, fmt.Errorf("synopsis: decoded wavelet synopsis invalid: %w", err)
	}
	return syn, nil
}
