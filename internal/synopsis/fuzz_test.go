package synopsis

import (
	"testing"
)

// FuzzUnmarshalSynopsis hammers the envelope decoder with arbitrary
// bytes: the server feeds it untrusted catalog files and request
// payloads, so whatever arrives it must either return an error or a
// structurally valid synopsis — never panic, never accept a corrupted
// payload whose queries then misbehave. Seeds cover both valid
// envelopes and the corrupt-envelope cases the unit tests enumerate
// (truncations, bit flips, forged type names, bogus formats).
func FuzzUnmarshalSynopsis(f *testing.F) {
	h, w := buildOneOfEach(f)
	for _, s := range []Synopsis{h, w} {
		blob, err := Marshal(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
		// Truncation, payload corruption, forged type name.
		f.Add(blob[:len(blob)/2])
		flipped := append([]byte(nil), blob...)
		flipped[len(flipped)/2] ^= 0x40
		f.Add(flipped)
		f.Add(forgeName(blob, "histogrm"))
		jblob, err := MarshalJSON(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(jblob)
	}
	f.Add([]byte(nil))
	f.Add([]byte("BOGUS_FORMAT"))
	f.Add([]byte("PSYN"))
	f.Add([]byte(`{"format":"probsyn-synopsis","version":1,"type":"histogram","synopsis":{}}`))
	f.Add([]byte(`{"format":"probsyn-synopsis","version":1,"type":"wavelet","synopsis":{"N":3,"Indices":[0],"Values":[1]}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Unmarshal(data)
		if err != nil {
			if s != nil {
				t.Fatalf("error %v alongside non-nil synopsis %T", err, s)
			}
			return
		}
		if s == nil {
			t.Fatal("nil synopsis with nil error")
		}
		// A decode that succeeded must have re-validated its structural
		// invariants: the full query surface is exercisable without
		// panicking, and re-marshaling round-trips.
		terms := s.Terms()
		if terms < 0 {
			t.Fatalf("negative Terms %d", terms)
		}
		_ = s.ErrorCost()
		n := domainOf(s)
		for _, i := range []int{0, 1, n / 2, n - 1} {
			_ = s.Estimate(i)
		}
		_ = s.RangeSum(0, n-1)
		_ = s.RangeSum(-5, 3*n+1) // out-of-domain ends clamp
		blob, err := Marshal(s)
		if err != nil {
			t.Fatalf("re-marshal of decoded synopsis failed: %v", err)
		}
		back, err := Unmarshal(blob)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.Terms() != terms {
			t.Fatalf("round trip changed terms %d -> %d", terms, back.Terms())
		}
	})
}
