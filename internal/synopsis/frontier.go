package synopsis

// Frontier is a whole cost-vs-budget curve from one build: the optimal
// expected error and a synopsis extractor for every budget 1 <= b <= Bmax.
// Both synopsis families produce one from a single dynamic-program run —
// the histogram DP table already holds every budget level, and the
// wavelet coefficient-tree DP's per-node state covers all budgets up to
// its build budget — so the budget sweeps of the paper's Figure 2 and
// Figure 4 cost one build instead of Bmax.
//
// The extraction contract is determinism end to end: Synopsis(b) is
// bit-identical (and therefore codec-byte-identical) to an independent
// build at budget b with the same configuration, so a swept synopsis and
// a single-budget build of the same key are interchangeable replicas.
type Frontier interface {
	// Bmax returns the largest budget the frontier covers. It can be
	// smaller than the budget the frontier was requested at: budgets are
	// clamped to the (padded) domain size, beyond which every synopsis
	// repeats the Bmax one.
	Bmax() int
	// Cost returns the optimal expected error at budget b, clamped to
	// [1, Bmax]. Costs are non-increasing in b ("at most b terms").
	Cost(b int) float64
	// Synopsis extracts the optimal budget-b synopsis, 1 <= b <= Bmax;
	// budgets outside that range are an error.
	Synopsis(b int) (Synopsis, error)
}
