package synopsis

import "probsyn/internal/pdata"

// Maintainer is a live Frontier: a budget frontier whose underlying
// dynamic-program state is retained after the build so the synopsis can
// absorb data mutations without recomputing from scratch. Mutations are
// defined over the value-pdf model — the one model in which "item i's
// frequency distribution" is a first-class, independently replaceable
// object — so Append extends the ordered domain with new item pdfs and
// Update replaces one item's pdf in place.
//
// The maintenance contract extends the Frontier determinism contract:
// after any sequence of Append/Update calls, Synopsis(b) is bit-identical
// (and therefore codec-byte-identical) to a fresh frontier built over the
// mutated data with the same configuration, at every budget and every
// worker count. How much work a mutation saves is family- and
// mutation-dependent (see internal/hist and internal/wavelet); what it
// returns is not.
//
// A Maintainer is not safe for concurrent mutation; callers serialize
// Append/Update against each other and against extraction (the serving
// layer holds a per-dataset lock, the probsyn adapters an internal one).
type Maintainer interface {
	Frontier
	// Domain returns the current logical domain size n (items 0..n-1).
	// Wavelet synopses still pad to a power of two internally; Domain is
	// the unpadded size mutations are addressed against.
	Domain() int
	// Append extends the domain with the given item pdfs: item Domain()
	// gets items[0], and so on. The frontier then answers for the grown
	// domain; Bmax may grow if the build budget was clamped by the old
	// domain size.
	Append(items []pdata.ItemPDF) error
	// Update replaces item i's frequency pdf, 0 <= i < Domain().
	Update(i int, item pdata.ItemPDF) error
}
