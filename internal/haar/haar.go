// Package haar implements the one-dimensional Haar Discrete Wavelet
// Transform and the error-tree structure used by wavelet synopses (§2.2,
// Fig. 1 of the paper).
//
// Conventions. Input length n must be a power of two (Pad helps otherwise).
// The coefficient array c has the classic layout:
//
//	c[0]          overall average
//	c[1]          coarsest detail (support = whole domain)
//	c[i], i >= 1  detail at level l = floor(log2 i), support size n/2^l,
//	              support = [(i-2^l) * n/2^l, (i-2^l+1) * n/2^l)
//
// A detail contributes +c[i] to leaves in the left half of its support and
// -c[i] to the right half. The orthonormal (Parseval) scaling multiplies
// c[i] by sqrt(supportSize(i)) — equivalently the paper's "normalize level
// l by sqrt(2^l)" up to its level numbering — so that the sum of squares of
// normalized coefficients equals the sum of squares of the data.
package haar

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Pow2Ceil returns the smallest power of two >= n (n must be positive).
func Pow2Ceil(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// Pad returns data extended with zeros to the next power-of-two length.
// If the length is already a power of two the input is returned unchanged.
func Pad(data []float64) []float64 {
	n := Pow2Ceil(len(data))
	if n == len(data) {
		return data
	}
	out := make([]float64, n)
	copy(out, data)
	return out
}

func checkPow2(n int) {
	if !IsPow2(n) {
		panic(fmt.Sprintf("haar: length %d is not a power of two", n))
	}
}

// Forward computes the unnormalized Haar DWT of data.
func Forward(data []float64) []float64 {
	n := len(data)
	checkPow2(n)
	c := make([]float64, n)
	cur := append([]float64(nil), data...)
	next := make([]float64, n/2)
	for length := n; length > 1; length /= 2 {
		half := length / 2
		for k := 0; k < half; k++ {
			next[k] = (cur[2*k] + cur[2*k+1]) / 2
			c[half+k] = (cur[2*k] - cur[2*k+1]) / 2
		}
		cur, next = next[:half], cur
	}
	c[0] = cur[0]
	return c
}

// Inverse reconstructs the data from unnormalized coefficients.
func Inverse(c []float64) []float64 {
	n := len(c)
	checkPow2(n)
	cur := []float64{c[0]}
	for length := 1; length < n; length *= 2 {
		next := make([]float64, 2*length)
		for k := 0; k < length; k++ {
			next[2*k] = cur[k] + c[length+k]
			next[2*k+1] = cur[k] - c[length+k]
		}
		cur = next
	}
	return cur
}

// Level returns the resolution level of coefficient i: 0 for both the
// average c[0] and the coarsest detail c[1] context (log2 of its index) —
// concretely, floor(log2 i) for i >= 1, and 0 for i == 0.
func Level(i int) int {
	if i <= 0 {
		return 0
	}
	return bits.Len(uint(i)) - 1
}

// SupportSize returns the number of leaves coefficient i influences,
// within a domain of n leaves.
func SupportSize(i, n int) int {
	if i == 0 {
		return n
	}
	return n >> Level(i)
}

// Support returns the inclusive leaf range [lo, hi] that coefficient i
// influences.
func Support(i, n int) (lo, hi int) {
	if i == 0 {
		return 0, n - 1
	}
	size := SupportSize(i, n)
	l := Level(i)
	lo = (i - (1 << l)) * size
	return lo, lo + size - 1
}

// Sign returns the sign (+1/-1) with which coefficient i contributes to
// leaf k, or 0 if k is outside i's support. The average c[0] contributes +1
// everywhere.
func Sign(i, k, n int) float64 {
	lo, hi := Support(i, n)
	if k < lo || k > hi {
		return 0
	}
	if i == 0 {
		return 1
	}
	if k < lo+SupportSize(i, n)/2 {
		return 1
	}
	return -1
}

// NormFactor returns the orthonormal scaling of coefficient i:
// sqrt(SupportSize(i, n)).
func NormFactor(i, n int) float64 { return math.Sqrt(float64(SupportSize(i, n))) }

// Normalize returns the orthonormal version of unnormalized coefficients.
func Normalize(c []float64) []float64 {
	n := len(c)
	checkPow2(n)
	out := make([]float64, n)
	for i := range c {
		out[i] = c[i] * NormFactor(i, n)
	}
	return out
}

// Denormalize inverts Normalize.
func Denormalize(c []float64) []float64 {
	n := len(c)
	checkPow2(n)
	out := make([]float64, n)
	for i := range c {
		out[i] = c[i] / NormFactor(i, n)
	}
	return out
}

// ForwardNormalized computes the orthonormal Haar DWT.
func ForwardNormalized(data []float64) []float64 { return Normalize(Forward(data)) }

// InverseNormalized reconstructs data from orthonormal coefficients.
func InverseNormalized(c []float64) []float64 { return Inverse(Denormalize(c)) }

// Path returns the coefficient indices whose supports contain leaf k
// (the root average, then details from coarsest to finest). Its length is
// log2(n)+1.
func Path(k, n int) []int {
	checkPow2(n)
	out := make([]int, 0, bits.Len(uint(n)))
	out = append(out, 0)
	i := 1
	for i < n {
		out = append(out, i)
		size := SupportSize(i, n)
		lo, _ := Support(i, n)
		if k < lo+size/2 {
			i = 2 * i
		} else {
			i = 2*i + 1
		}
	}
	return out
}

// ReconstructPoint evaluates leaf k from unnormalized coefficients in
// O(log n), summing signed ancestors along the path.
func ReconstructPoint(c []float64, k int) float64 {
	n := len(c)
	v := 0.0
	for _, i := range Path(k, n) {
		v += Sign(i, k, n) * c[i]
	}
	return v
}

// TopK returns the indices of the k coefficients with the largest absolute
// normalized value, in decreasing order of |normalized value| (ties broken
// by index for determinism). The input c is unnormalized.
func TopK(c []float64, k int) []int {
	n := len(c)
	checkPow2(n)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	key := func(i int) float64 { return math.Abs(c[i]) * NormFactor(i, n) }
	sort.Slice(idx, func(a, b int) bool {
		ka, kb := key(idx[a]), key(idx[b])
		if ka != kb {
			return ka > kb
		}
		return idx[a] < idx[b]
	})
	if k > n {
		k = n
	}
	if k < 0 {
		k = 0
	}
	return idx[:k]
}

// Children returns the child coefficient indices of internal node i in the
// error tree, and leaf=false; or, for the last internal level (i >= n/2),
// the two leaf indices with leaf=true. Node 0's only child is node 1: by
// convention Children(0) returns (1, 1, false) and callers treat the root
// specially.
func Children(i, n int) (left, right int, leaf bool) {
	if i == 0 {
		return 1, 1, false
	}
	if 2*i >= n {
		return 2*i - n, 2*i + 1 - n, true
	}
	return 2 * i, 2*i + 1, false
}
