package haar

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Figure 1 of the paper: A = [2,2,0,2,3,5,4,4] has unnormalized
// coefficients [11/4, -5/4, 1/2, 0, 0, -1, -1, 0].
func TestFigure1Golden(t *testing.T) {
	a := []float64{2, 2, 0, 2, 3, 5, 4, 4}
	c := Forward(a)
	want := []float64{11.0 / 4, -5.0 / 4, 0.5, 0, 0, -1, -1, 0}
	for i := range want {
		if math.Abs(c[i]-want[i]) > 1e-12 {
			t.Errorf("c[%d] = %v, want %v", i, c[i], want[i])
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	a := []float64{2, 2, 0, 2, 3, 5, 4, 4}
	got := Inverse(Forward(a))
	for i := range a {
		if math.Abs(got[i]-a[i]) > 1e-12 {
			t.Errorf("roundtrip[%d] = %v, want %v", i, got[i], a[i])
		}
	}
}

func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		a := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64() * 10
		}
		nc := ForwardNormalized(a)
		sumA, sumC := 0.0, 0.0
		for i := range a {
			sumA += a[i] * a[i]
			sumC += nc[i] * nc[i]
		}
		if math.Abs(sumA-sumC) > 1e-8*math.Max(1, sumA) {
			t.Errorf("n=%d: energy %v (data) vs %v (normalized coeffs)", n, sumA, sumC)
		}
	}
}

func TestNormalizeRoundTrip(t *testing.T) {
	a := []float64{1, -3, 2, 7}
	c := Forward(a)
	back := Denormalize(Normalize(c))
	for i := range c {
		if math.Abs(back[i]-c[i]) > 1e-12 {
			t.Errorf("denorm(norm)[%d] = %v, want %v", i, back[i], c[i])
		}
	}
	inv := InverseNormalized(ForwardNormalized(a))
	for i := range a {
		if math.Abs(inv[i]-a[i]) > 1e-12 {
			t.Errorf("normalized roundtrip[%d] = %v, want %v", i, inv[i], a[i])
		}
	}
}

func TestQuickRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(7))
		a := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64() * 100
		}
		got := Inverse(Forward(a))
		for i := range a {
			if math.Abs(got[i]-a[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLevelSupport(t *testing.T) {
	n := 8
	cases := []struct {
		i, level, size, lo, hi int
	}{
		{0, 0, 8, 0, 7},
		{1, 0, 8, 0, 7},
		{2, 1, 4, 0, 3},
		{3, 1, 4, 4, 7},
		{4, 2, 2, 0, 1},
		{7, 2, 2, 6, 7},
	}
	for _, c := range cases {
		if got := Level(c.i); got != c.level {
			t.Errorf("Level(%d) = %d, want %d", c.i, got, c.level)
		}
		if got := SupportSize(c.i, n); got != c.size {
			t.Errorf("SupportSize(%d) = %d, want %d", c.i, got, c.size)
		}
		lo, hi := Support(c.i, n)
		if lo != c.lo || hi != c.hi {
			t.Errorf("Support(%d) = [%d,%d], want [%d,%d]", c.i, lo, hi, c.lo, c.hi)
		}
	}
}

func TestSign(t *testing.T) {
	n := 8
	// c[1] is + on leaves 0..3, - on 4..7.
	for k := 0; k < 4; k++ {
		if Sign(1, k, n) != 1 {
			t.Errorf("Sign(1,%d) should be +1", k)
		}
	}
	for k := 4; k < 8; k++ {
		if Sign(1, k, n) != -1 {
			t.Errorf("Sign(1,%d) should be -1", k)
		}
	}
	if Sign(4, 5, n) != 0 {
		t.Error("Sign outside support should be 0")
	}
	if Sign(0, 6, n) != 1 {
		t.Error("average contributes +1 everywhere")
	}
}

func TestReconstructPointMatchesInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{2, 8, 32} {
		a := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		c := Forward(a)
		full := Inverse(c)
		for k := 0; k < n; k++ {
			if got := ReconstructPoint(c, k); math.Abs(got-full[k]) > 1e-10 {
				t.Errorf("n=%d: ReconstructPoint(%d) = %v, want %v", n, k, got, full[k])
			}
		}
	}
}

func TestPath(t *testing.T) {
	p := Path(5, 8)
	want := []int{0, 1, 3, 6} // leaf 5: root avg, c1, right child c3, then c6 (leaves 4,5)
	if len(p) != len(want) {
		t.Fatalf("Path(5,8) = %v, want %v", p, want)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("Path(5,8) = %v, want %v", p, want)
		}
	}
}

func TestTopK(t *testing.T) {
	a := []float64{2, 2, 0, 2, 3, 5, 4, 4}
	c := Forward(a)
	top := TopK(c, 3)
	// Normalized magnitudes: c0: 2.75*sqrt8≈7.78, c1: 1.25*sqrt8≈3.54,
	// c5,c6: 1*sqrt2≈1.41, c2: .5*2=1. So top3 = [0,1,5].
	want := []int{0, 1, 5}
	for i := range want {
		if top[i] != want[i] {
			t.Fatalf("TopK = %v, want %v", top, want)
		}
	}
	if got := len(TopK(c, 100)); got != 8 {
		t.Errorf("TopK capped length = %d, want 8", got)
	}
	if got := len(TopK(c, -1)); got != 0 {
		t.Errorf("TopK(-1) length = %d, want 0", got)
	}
}

// Keeping the TopK normalized coefficients and zeroing the rest must give
// the minimum SSE among all same-size coefficient subsets (Parseval).
func TestTopKIsSSEOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 8
	a := make([]float64, n)
	for i := range a {
		a[i] = rng.NormFloat64() * 5
	}
	c := Forward(a)
	B := 3
	sseOf := func(keep map[int]bool) float64 {
		kc := make([]float64, n)
		for i := range kc {
			if keep[i] {
				kc[i] = c[i]
			}
		}
		rec := Inverse(kc)
		s := 0.0
		for i := range a {
			d := a[i] - rec[i]
			s += d * d
		}
		return s
	}
	topSet := make(map[int]bool)
	for _, i := range TopK(c, B) {
		topSet[i] = true
	}
	topSSE := sseOf(topSet)
	// brute force all C(8,3) subsets
	for mask := 0; mask < 1<<n; mask++ {
		if popcount(mask) != B {
			continue
		}
		keep := make(map[int]bool)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				keep[i] = true
			}
		}
		if s := sseOf(keep); s < topSSE-1e-9 {
			t.Fatalf("subset %b has SSE %v < TopK SSE %v", mask, s, topSSE)
		}
	}
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		c += x & 1
		x >>= 1
	}
	return c
}

func TestChildren(t *testing.T) {
	n := 8
	if l, r, leaf := Children(1, n); l != 2 || r != 3 || leaf {
		t.Errorf("Children(1) = (%d,%d,%v)", l, r, leaf)
	}
	if l, r, leaf := Children(4, n); l != 0 || r != 1 || !leaf {
		t.Errorf("Children(4) = (%d,%d,%v), want leaves 0,1", l, r, leaf)
	}
	if l, r, leaf := Children(7, n); l != 6 || r != 7 || !leaf {
		t.Errorf("Children(7) = (%d,%d,%v), want leaves 6,7", l, r, leaf)
	}
	if l, _, leaf := Children(0, n); l != 1 || leaf {
		t.Errorf("Children(0) should point at node 1")
	}
}

func TestPadAndPow2(t *testing.T) {
	if !IsPow2(1) || !IsPow2(64) || IsPow2(0) || IsPow2(12) {
		t.Error("IsPow2 misbehaves")
	}
	if Pow2Ceil(1) != 1 || Pow2Ceil(5) != 8 || Pow2Ceil(8) != 8 {
		t.Error("Pow2Ceil misbehaves")
	}
	in := []float64{1, 2, 3}
	out := Pad(in)
	if len(out) != 4 || out[3] != 0 || out[0] != 1 {
		t.Errorf("Pad = %v", out)
	}
	same := []float64{1, 2}
	if got := Pad(same); &got[0] != &same[0] {
		t.Error("Pad should return input unchanged for power-of-two length")
	}
}

func TestForwardPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Forward should panic on non-power-of-two input")
		}
	}()
	Forward(make([]float64, 3))
}
