// Package ptest provides shared test fixtures for the synopsis packages:
// small random instances of every probabilistic data model, and exact
// expected-error computation by exhaustive possible-world enumeration.
// It is imported only from _test files.
package ptest

import (
	"math"
	"math/rand"

	"probsyn/internal/metric"
	"probsyn/internal/pdata"
)

// RandomBasic returns a basic-model instance with m tuples over [0, n).
func RandomBasic(rng *rand.Rand, n, m int) *pdata.Basic {
	b := &pdata.Basic{N: n, Tuples: make([]pdata.BasicTuple, m)}
	for k := range b.Tuples {
		b.Tuples[k] = pdata.BasicTuple{Item: rng.Intn(n), Prob: rng.Float64()}
	}
	return b
}

// RandomTuplePDF returns a tuple-pdf instance with the given number of
// tuples, each holding 1..maxAlts alternatives with total mass < 1.
func RandomTuplePDF(rng *rand.Rand, n, tuples, maxAlts int) *pdata.TuplePDF {
	tp := &pdata.TuplePDF{N: n, Tuples: make([]pdata.Tuple, tuples)}
	for k := range tp.Tuples {
		alts := 1 + rng.Intn(maxAlts)
		t := pdata.Tuple{Alts: make([]pdata.Alternative, alts)}
		remaining := rng.Float64()
		for a := 0; a < alts; a++ {
			p := remaining / float64(alts-a)
			if a < alts-1 {
				p = remaining * rng.Float64()
			}
			t.Alts[a] = pdata.Alternative{Item: rng.Intn(n), Prob: p}
			remaining -= p
		}
		tp.Tuples[k] = t
	}
	return tp
}

// RandomValuePDF returns a value-pdf instance with up to maxVals explicit
// integer frequency values per item (frequencies in 0..3).
func RandomValuePDF(rng *rand.Rand, n, maxVals int) *pdata.ValuePDF {
	vp := &pdata.ValuePDF{N: n, Items: make([]pdata.ItemPDF, n)}
	for i := range vp.Items {
		vals := rng.Intn(maxVals + 1)
		remaining := rng.Float64()
		entries := make([]pdata.FreqProb, 0, vals)
		for v := 0; v < vals; v++ {
			p := remaining * rng.Float64()
			remaining -= p
			entries = append(entries, pdata.FreqProb{Freq: float64(rng.Intn(4)), Prob: p})
		}
		vp.Items[i] = pdata.ItemPDF{Entries: entries}
	}
	return vp
}

// RandomFractionalValuePDF is RandomValuePDF with non-integer frequencies,
// exercising the value pdf model's fractional-frequency capability.
func RandomFractionalValuePDF(rng *rand.Rand, n, maxVals int) *pdata.ValuePDF {
	vp := &pdata.ValuePDF{N: n, Items: make([]pdata.ItemPDF, n)}
	for i := range vp.Items {
		vals := 1 + rng.Intn(maxVals)
		remaining := rng.Float64()
		entries := make([]pdata.FreqProb, 0, vals)
		for v := 0; v < vals; v++ {
			p := remaining * rng.Float64()
			remaining -= p
			freq := math.Round(rng.Float64()*40) / 8 // quarter-steps, repeats likely
			entries = append(entries, pdata.FreqProb{Freq: freq, Prob: p})
		}
		vp.Items[i] = pdata.ItemPDF{Entries: entries}
	}
	return vp
}

// ExactBucketCost computes, by exhaustive enumeration, the expected bucket
// cost E_W[Σ_{i∈[s,e]} err(g_i, rep)] for cumulative metrics, or
// max_{i∈[s,e]} E_W[err(g_i, rep)] for maximum metrics.
func ExactBucketCost(src pdata.Source, k metric.Kind, p metric.Params, s, e int, rep float64) float64 {
	perItem := PerItemExpectedErrors(src, k, p, rep)
	if k.Cumulative() {
		total := 0.0
		for i := s; i <= e; i++ {
			total += perItem[i]
		}
		return total
	}
	worst := 0.0
	for i := s; i <= e; i++ {
		if perItem[i] > worst {
			worst = perItem[i]
		}
	}
	return worst
}

// PerItemExpectedErrors returns E_W[err(g_i, rep)] for every item, by
// exhaustive enumeration.
func PerItemExpectedErrors(src pdata.Source, k metric.Kind, p metric.Params, rep float64) []float64 {
	n := src.Domain()
	out := make([]float64, n)
	src.EnumerateWorlds(func(freqs []float64, prob float64) bool {
		for i := 0; i < n; i++ {
			out[i] += prob * k.PointError(freqs[i], rep, p)
		}
		return true
	})
	return out
}

// ExactClairvoyantSSE computes, by enumeration, the paper's Eq. (5) bucket
// cost: E_W[Σ_{i∈[s,e]}(g_i − mean_W)^2] where mean_W is the per-world
// bucket mean.
func ExactClairvoyantSSE(src pdata.Source, s, e int) float64 {
	nb := float64(e - s + 1)
	total := 0.0
	src.EnumerateWorlds(func(freqs []float64, prob float64) bool {
		sum := 0.0
		for i := s; i <= e; i++ {
			sum += freqs[i]
		}
		mean := sum / nb
		for i := s; i <= e; i++ {
			d := freqs[i] - mean
			total += prob * d * d
		}
		return true
	})
	return total
}
