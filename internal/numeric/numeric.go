// Package numeric provides small, numerically careful building blocks used
// throughout the library: compensated (Kahan–Neumaier) summation, prefix-sum
// tables built with compensated accumulation, and search helpers over
// discrete convex/unimodal sequences.
//
// The histogram oracles difference large prefix sums to obtain per-bucket
// quantities; compensated accumulation keeps the absolute error of each
// prefix entry near one ulp of the running sum, which in turn keeps bucket
// costs stable even for n ~ 10^5 items with widely varying magnitudes.
package numeric

import "math"

// Sum returns the Kahan–Neumaier compensated sum of xs.
func Sum(xs []float64) float64 {
	var a Accumulator
	for _, x := range xs {
		a.Add(x)
	}
	return a.Value()
}

// Accumulator is a running Kahan–Neumaier compensated sum.
// The zero value is an empty sum.
type Accumulator struct {
	sum  float64
	comp float64 // running compensation for lost low-order bits
}

// Add adds x to the accumulator.
func (a *Accumulator) Add(x float64) {
	t := a.sum + x
	if math.Abs(a.sum) >= math.Abs(x) {
		a.comp += (a.sum - t) + x
	} else {
		a.comp += (x - t) + a.sum
	}
	a.sum = t
}

// Value returns the current compensated sum.
func (a *Accumulator) Value() float64 { return a.sum + a.comp }

// Reset clears the accumulator to the empty sum.
func (a *Accumulator) Reset() { a.sum, a.comp = 0, 0 }

// PrefixSums returns p with len(xs)+1 entries such that
// p[k] = xs[0] + ... + xs[k-1], each computed with compensated accumulation.
// p[0] == 0. Range sums are p[e+1]-p[s] for the inclusive range [s,e].
func PrefixSums(xs []float64) []float64 {
	p := make([]float64, len(xs)+1)
	var a Accumulator
	for i, x := range xs {
		a.Add(x)
		p[i+1] = a.Value()
	}
	return p
}

// Prefix is a prefix-sum table over an n-item array supporting O(1)
// inclusive range sums.
type Prefix struct{ p []float64 }

// NewPrefix builds a prefix table over xs.
func NewPrefix(xs []float64) Prefix { return Prefix{p: PrefixSums(xs)} }

// Range returns xs[s] + ... + xs[e] (inclusive). Range(s, s-1) == 0.
func (pp Prefix) Range(s, e int) float64 {
	if e < s {
		return 0
	}
	return pp.p[e+1] - pp.p[s]
}

// Upto returns xs[0] + ... + xs[e]; Upto(-1) == 0.
func (pp Prefix) Upto(e int) float64 { return pp.p[e+1] }

// Len returns the number of underlying items.
func (pp Prefix) Len() int { return len(pp.p) - 1 }

// MinConvexGrid minimizes f over the integer grid [lo, hi] (inclusive),
// assuming the difference sequence f(k+1)-f(k) is non-decreasing in k
// (discrete convexity). It returns the minimizing index and value using
// O(log(hi-lo)) evaluations via binary search on the sign of the forward
// difference. Ties resolve to the smallest index, which a plateau-afflicted
// ternary search would not guarantee.
func MinConvexGrid(lo, hi int, f func(int) float64) (int, float64) {
	if lo >= hi {
		return lo, f(lo)
	}
	// Invariant: the first k with f(k+1)-f(k) >= 0 is in [lo, hi];
	// that k is a global minimizer.
	l, r := lo, hi
	for l < r {
		mid := l + (r-l)/2
		if f(mid+1)-f(mid) >= 0 {
			r = mid
		} else {
			l = mid + 1
		}
	}
	return l, f(l)
}

// MinUnimodalGrid minimizes f over [lo, hi] for strictly unimodal f
// (decreasing then increasing, no interior plateaus) via ternary search.
// It is retained for completeness and for cost functions that are unimodal
// but not convex; callers with convex costs should prefer MinConvexGrid.
func MinUnimodalGrid(lo, hi int, f func(int) float64) (int, float64) {
	l, r := lo, hi
	for r-l > 2 {
		m1 := l + (r-l)/3
		m2 := r - (r-l)/3
		if f(m1) <= f(m2) {
			r = m2 - 1
		} else {
			l = m1 + 1
		}
	}
	bestK, bestV := l, f(l)
	for k := l + 1; k <= r; k++ {
		if v := f(k); v < bestV {
			bestK, bestV = k, v
		}
	}
	return bestK, bestV
}

// SearchFloats returns the smallest index i in [0, len(v)) with v[i] >= x,
// or len(v) if none; v must be sorted ascending. Equivalent to
// sort.SearchFloat64s but kept here so hot paths avoid the closure-based
// sort.Search.
func SearchFloats(v []float64, x float64) int {
	lo, hi := 0, len(v)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// AlmostEqual reports whether a and b agree to within tol absolutely or
// relatively (whichever is looser). Useful for cost comparisons where both
// operands were assembled from differenced prefix sums.
func AlmostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	return d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// Clamp returns x clamped to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
