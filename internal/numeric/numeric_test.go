package numeric

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSumEmpty(t *testing.T) {
	if got := Sum(nil); got != 0 {
		t.Fatalf("Sum(nil) = %v, want 0", got)
	}
}

func TestSumSingle(t *testing.T) {
	if got := Sum([]float64{3.25}); got != 3.25 {
		t.Fatalf("Sum = %v, want 3.25", got)
	}
}

// Kahan-Neumaier must recover the classic catastrophic-cancellation case
// where plain left-to-right summation loses the small term entirely.
func TestSumAdversarial(t *testing.T) {
	xs := []float64{1e16, 1, -1e16}
	if got := Sum(xs); got != 1 {
		t.Fatalf("compensated Sum = %v, want 1", got)
	}
	naive := 0.0
	for _, x := range xs {
		naive += x
	}
	if naive == 1 {
		t.Skip("platform summed naively without error; adversarial case vacuous")
	}
}

func TestSumNeumaierClassic(t *testing.T) {
	// Neumaier's example: [1, 1e100, 1, -1e100] sums to 2.
	xs := []float64{1, 1e100, 1, -1e100}
	if got := Sum(xs); got != 2 {
		t.Fatalf("Sum = %v, want 2", got)
	}
}

func TestAccumulatorReset(t *testing.T) {
	var a Accumulator
	a.Add(5)
	a.Reset()
	a.Add(2)
	if got := a.Value(); got != 2 {
		t.Fatalf("after Reset, Value = %v, want 2", got)
	}
}

func TestSumMatchesBigAccumulation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 10000)
	exact := 0.0 // accumulate in descending magnitude order for reference
	for i := range xs {
		xs[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(12)))
	}
	sorted := append([]float64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return math.Abs(sorted[i]) > math.Abs(sorted[j]) })
	var a Accumulator
	for _, x := range sorted {
		a.Add(x)
	}
	exact = a.Value()
	if got := Sum(xs); !AlmostEqual(got, exact, 1e-9) {
		t.Fatalf("Sum = %v, reference = %v", got, exact)
	}
}

func TestPrefixSumsBasics(t *testing.T) {
	p := PrefixSums([]float64{1, 2, 3})
	want := []float64{0, 1, 3, 6}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("p[%d] = %v, want %v", i, p[i], want[i])
		}
	}
}

func TestPrefixRange(t *testing.T) {
	pp := NewPrefix([]float64{2, 4, 8, 16})
	cases := []struct {
		s, e int
		want float64
	}{
		{0, 3, 30}, {0, 0, 2}, {1, 2, 12}, {3, 3, 16}, {2, 1, 0},
	}
	for _, c := range cases {
		if got := pp.Range(c.s, c.e); got != c.want {
			t.Errorf("Range(%d,%d) = %v, want %v", c.s, c.e, got, c.want)
		}
	}
	if pp.Len() != 4 {
		t.Errorf("Len = %d, want 4", pp.Len())
	}
	if pp.Upto(-1) != 0 || pp.Upto(2) != 14 {
		t.Errorf("Upto wrong: %v %v", pp.Upto(-1), pp.Upto(2))
	}
}

func TestPrefixRangeMatchesDirectSum(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 100
	}
	pp := NewPrefix(xs)
	for trial := 0; trial < 200; trial++ {
		s := rng.Intn(len(xs))
		e := s + rng.Intn(len(xs)-s)
		var a Accumulator
		for i := s; i <= e; i++ {
			a.Add(xs[i])
		}
		if got, want := pp.Range(s, e), a.Value(); !AlmostEqual(got, want, 1e-9) {
			t.Fatalf("Range(%d,%d) = %v, want %v", s, e, got, want)
		}
	}
}

func TestMinConvexGridQuadratic(t *testing.T) {
	f := func(k int) float64 { x := float64(k) - 7.3; return x * x }
	k, v := MinConvexGrid(0, 100, f)
	if k != 7 {
		t.Fatalf("argmin = %d, want 7", k)
	}
	if v != f(7) {
		t.Fatalf("min = %v, want %v", v, f(7))
	}
}

func TestMinConvexGridPlateau(t *testing.T) {
	// Flat valley: ternary search can stall on plateaus, the convex-grid
	// binary search must return the leftmost minimizer.
	f := func(k int) float64 {
		switch {
		case k < 3:
			return float64(3 - k)
		case k <= 6:
			return 0
		default:
			return float64(k - 6)
		}
	}
	k, v := MinConvexGrid(0, 20, f)
	if k != 3 || v != 0 {
		t.Fatalf("got (%d,%v), want leftmost minimizer (3,0)", k, v)
	}
}

func TestMinConvexGridEdges(t *testing.T) {
	inc := func(k int) float64 { return float64(k) }
	if k, _ := MinConvexGrid(2, 9, inc); k != 2 {
		t.Errorf("increasing: argmin %d, want 2", k)
	}
	dec := func(k int) float64 { return float64(-k) }
	if k, _ := MinConvexGrid(2, 9, dec); k != 9 {
		t.Errorf("decreasing: argmin %d, want 9", k)
	}
	if k, v := MinConvexGrid(5, 5, inc); k != 5 || v != 5 {
		t.Errorf("degenerate: got (%d,%v)", k, v)
	}
}

func TestMinUnimodalGrid(t *testing.T) {
	f := func(k int) float64 { x := float64(k) - 41.0; return math.Abs(x) + 0.5*x*x }
	k, _ := MinUnimodalGrid(0, 100, f)
	if k != 41 {
		t.Fatalf("argmin = %d, want 41", k)
	}
}

func TestMinConvexGridRandomQuadratics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		center := rng.Float64()*50 - 10
		a := rng.Float64() + 0.1
		f := func(k int) float64 { x := float64(k) - center; return a * x * x }
		k, _ := MinConvexGrid(0, 60, f)
		// brute force
		bestK, bestV := 0, f(0)
		for i := 1; i <= 60; i++ {
			if v := f(i); v < bestV {
				bestK, bestV = i, v
			}
		}
		if f(k) != bestV {
			t.Fatalf("trial %d: argmin %d (%v) vs brute %d (%v)", trial, k, f(k), bestK, bestV)
		}
	}
}

func TestSearchFloats(t *testing.T) {
	v := []float64{1, 3, 3, 5, 9}
	cases := []struct {
		x    float64
		want int
	}{{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 3}, {9, 4}, {10, 5}}
	for _, c := range cases {
		if got := SearchFloats(v, c.x); got != c.want {
			t.Errorf("SearchFloats(%v) = %d, want %d", c.x, got, c.want)
		}
	}
	if got := SearchFloats(nil, 1); got != 0 {
		t.Errorf("SearchFloats(nil) = %d, want 0", got)
	}
}

func TestSearchFloatsMatchesSortPackage(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	v := make([]float64, 100)
	for i := range v {
		v[i] = math.Floor(rng.Float64() * 50)
	}
	sort.Float64s(v)
	for trial := 0; trial < 300; trial++ {
		x := rng.Float64() * 55
		if got, want := SearchFloats(v, x), sort.SearchFloat64s(v, x); got != want {
			t.Fatalf("SearchFloats(%v) = %d, want %d", x, got, want)
		}
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1, 1, 0) {
		t.Error("identical values must be equal")
	}
	if !AlmostEqual(1e12, 1e12+1, 1e-9) {
		t.Error("relative tolerance should accept 1 part in 1e12")
	}
	if AlmostEqual(1, 2, 1e-9) {
		t.Error("1 and 2 must differ")
	}
	if !AlmostEqual(0, 1e-15, 1e-12) {
		t.Error("absolute tolerance should accept tiny difference near zero")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp misbehaves")
	}
}

// Property: prefix range sums equal compensated direct sums.
func TestQuickPrefixConsistency(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// keep magnitudes sane so the reference is well-defined
			xs = append(xs, math.Mod(x, 1e6))
		}
		pp := NewPrefix(xs)
		whole := Sum(xs)
		return AlmostEqual(pp.Range(0, len(xs)-1), whole, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
