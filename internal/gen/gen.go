// Package gen generates probabilistic datasets shaped like the paper's two
// evaluation workloads (§5) plus generic synthetic distributions. The real
// inputs — the MystiQ movie-linkage data and the MayBMS/TPC-H lineitem
// data — are not redistributable; these generators match their published
// summary statistics and model semantics (see DESIGN.md, "Data-availability
// substitutions"). All generators are deterministic given the *rand.Rand.
package gen

import (
	"math"
	"math/rand"

	"probsyn/internal/pdata"
)

// MystiQConfig parameterizes the movie-linkage-shaped generator.
type MystiQConfig struct {
	// N is the number of distinct items (the paper uses subsets of 27,700,
	// with n = 10^4 in Figure 2 and n = 2^15 in Figure 4).
	N int
	// TuplesPerItem is the mean number of candidate-match tuples per item
	// (the paper's dataset has 127,000 / 27,700 ≈ 4.6).
	TuplesPerItem float64
	// MaxTuplesPerItem caps the per-item tuple count (0 means 4x the mean).
	MaxTuplesPerItem int
}

// DefaultMystiQ mirrors the published dataset's summary statistics at a
// configurable domain size.
func DefaultMystiQ(n int) MystiQConfig {
	return MystiQConfig{N: n, TuplesPerItem: 4.6}
}

// MystiQLinkage generates a basic-model relation shaped like record-linkage
// output: each item has a heavy-tailed number of candidate-match tuples
// whose probabilities decay with rank (the best match is confident, the
// tail is noise), and match counts drift smoothly along the domain so that
// neighbouring items behave similarly — the structure histograms exploit.
func MystiQLinkage(rng *rand.Rand, cfg MystiQConfig) *pdata.Basic {
	n := cfg.N
	maxT := cfg.MaxTuplesPerItem
	if maxT <= 0 {
		maxT = int(6*cfg.TuplesPerItem) + 1
	}
	b := &pdata.Basic{N: n}
	// Smooth domain modulation: superposed waves plus a few step changes,
	// so expected frequencies have both gradual and abrupt structure.
	// Per-item noise is kept small — linkage output for neighbouring
	// entities is similar — which is what lets histograms compress the
	// relation, as on the paper's real data (§5.1, Figure 2: the optimal
	// method approaches the minimum achievable error by B ≈ n/16).
	steps := makeSteps(rng, n, 8)
	for i := 0; i < n; i++ {
		x := float64(i) / float64(n)
		mod := 0.6 + 0.4*math.Sin(2*math.Pi*x*2) +
			0.25*math.Sin(2*math.Pi*x*5) + steps[i]
		if mod < 0.05 {
			mod = 0.05
		}
		// Squaring makes popularity heavy-tailed: hot regions collect many
		// candidate matches (as popular movies do), so cross-item structure
		// grows quadratically while per-item variance grows linearly.
		mod = mod * mod
		mean := cfg.TuplesPerItem * mod
		// Rank-decaying confidences: linkage produces mostly confident
		// leading matches (p near 1, hence low per-tuple variance p(1-p))
		// trailing off linearly into noise candidates. Match quality u
		// drifts smoothly along the domain with light per-item jitter, and
		// the fractional part of the candidate count becomes one weak
		// trailing candidate, so expected frequency varies smoothly instead
		// of jumping by whole tuples.
		k := int(mean)
		frac := mean - float64(k)
		if k > maxT {
			k, frac = maxT, 0
		}
		u := 0.85 + 0.1*math.Sin(2*math.Pi*x*3) + 0.06*(rng.Float64()-0.5)
		conf := func(r float64) float64 {
			p := u * (1 - 0.06*r)
			if p > 0.98 {
				p = 0.98
			} else if p < 0.05 {
				p = 0.05
			}
			return p
		}
		for r := 0; r < k; r++ {
			b.Tuples = append(b.Tuples, pdata.BasicTuple{Item: i, Prob: conf(float64(r))})
		}
		if frac > 1e-9 {
			if p := frac * conf(float64(k)); p > 0.005 {
				b.Tuples = append(b.Tuples, pdata.BasicTuple{Item: i, Prob: p})
			}
		}
	}
	return b
}

// TPCHConfig parameterizes the MayBMS/TPC-H-shaped tuple pdf generator.
type TPCHConfig struct {
	// N is the partkey domain size.
	N int
	// M is the number of uncertain lineitem tuples.
	M int
	// Alternatives is the number of equiprobable partkey alternatives per
	// tuple (MayBMS's repair-key produces uniform alternative sets).
	Alternatives int
	// ZipfS is the skew of partkey popularity (1.1 is a mild TPC-H-like
	// skew; must be > 1 for rand.Zipf).
	ZipfS float64
	// Spread is the maximum distance between a tuple's alternatives along
	// the domain; 0 means unbounded (alternatives anywhere). Small spreads
	// produce boundary-straddling tuples concentrated near their seed —
	// the regime where the closed-form SSE cost deviates (DESIGN.md #3).
	Spread int
}

// DefaultTPCH gives a mild-skew configuration with unbounded spread.
func DefaultTPCH(n, m int) TPCHConfig {
	return TPCHConfig{N: n, M: m, Alternatives: 4, ZipfS: 1.1}
}

// TPCHLineitem generates a tuple pdf relation: M uncertain tuples, each a
// uniform pdf over Alternatives distinct partkeys. Partkey popularity
// mixes a broad near-uniform base (TPC-H lineitem references parts almost
// uniformly) with a Zipf hotspot component, scattered over the domain, so
// the expected frequencies carry energy across many scales rather than
// collapsing into a handful of wavelet coefficients.
func TPCHLineitem(rng *rand.Rand, cfg TPCHConfig) *pdata.TuplePDF {
	n := cfg.N
	alts := cfg.Alternatives
	if alts < 1 {
		alts = 1
	}
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(n-1))
	scatter := rng.Perm(n) // decouple Zipf rank from domain position
	smooth := makeSteps(rng, n, 16)
	draw := func() int {
		if rng.Float64() < 0.7 {
			// near-uniform base, modulated by a piecewise level so the
			// domain has regions of higher and lower traffic
			for {
				i := rng.Intn(n)
				if rng.Float64() < 0.25+0.75*smooth[i] {
					return i
				}
			}
		}
		return scatter[int(zipf.Uint64())]
	}
	tp := &pdata.TuplePDF{N: n, Tuples: make([]pdata.Tuple, cfg.M)}
	for t := 0; t < cfg.M; t++ {
		seed := draw()
		seen := make(map[int]bool, alts)
		tuple := pdata.Tuple{Alts: make([]pdata.Alternative, 0, alts)}
		p := 1.0 / float64(alts)
		for len(tuple.Alts) < alts {
			var item int
			if cfg.Spread > 0 {
				item = seed + rng.Intn(2*cfg.Spread+1) - cfg.Spread
				if item < 0 {
					item = -item
				}
				if item >= n {
					item = 2*(n-1) - item
				}
			} else {
				item = draw()
			}
			if seen[item] {
				// Resample; with tiny domains fall back to a linear probe.
				item = (item + 1) % n
				if seen[item] {
					continue
				}
			}
			seen[item] = true
			tuple.Alts = append(tuple.Alts, pdata.Alternative{Item: item, Prob: p})
		}
		tp.Tuples[t] = tuple
	}
	return tp
}

// SensorConfig parameterizes the value-pdf sensor-grid generator.
type SensorConfig struct {
	// N is the number of sensors (domain items).
	N int
	// Levels is the number of discrete frequency values per sensor pdf.
	Levels int
	// MaxValue scales the underlying signal.
	MaxValue float64
	// Noise is the relative dispersion of each sensor's reading pdf.
	Noise float64
}

// DefaultSensor returns a moderate configuration.
func DefaultSensor(n int) SensorConfig {
	return SensorConfig{N: n, Levels: 5, MaxValue: 20, Noise: 0.25}
}

// SensorGrid generates a value pdf relation modelling noisy sensor
// readings: each item's frequency pdf is a discretized bell around a
// smooth, piecewise-shifted signal — the motivating workload for the value
// pdf model (§2.1).
func SensorGrid(rng *rand.Rand, cfg SensorConfig) *pdata.ValuePDF {
	n := cfg.N
	vp := &pdata.ValuePDF{N: n, Items: make([]pdata.ItemPDF, n)}
	steps := makeSteps(rng, n, 6)
	for i := 0; i < n; i++ {
		signal := cfg.MaxValue * (0.5 + 0.3*math.Sin(2*math.Pi*float64(i)/float64(n)*5) + 0.5*steps[i])
		if signal < 0 {
			signal = 0
		}
		spread := cfg.Noise*signal + 0.5
		entries := make([]pdata.FreqProb, 0, cfg.Levels)
		totalW := 0.0
		weights := make([]float64, cfg.Levels)
		values := make([]float64, cfg.Levels)
		for l := 0; l < cfg.Levels; l++ {
			off := (float64(l) - float64(cfg.Levels-1)/2) * spread / float64(cfg.Levels)
			v := signal + off
			if v < 0 {
				v = 0
			}
			values[l] = math.Round(v*4) / 4 // quarter-step grid keeps |V| modest
			w := math.Exp(-0.5 * (off / (spread/2 + 1e-9)) * (off / (spread/2 + 1e-9)))
			weights[l] = w
			totalW += w
		}
		// Leave a little mass for "sensor dropped the reading" (freq 0).
		keep := 0.9 + 0.1*rng.Float64()
		for l := 0; l < cfg.Levels; l++ {
			entries = append(entries, pdata.FreqProb{Freq: values[l], Prob: keep * weights[l] / totalW})
		}
		vp.Items[i] = pdata.ItemPDF{Entries: entries}
	}
	return vp
}

// makeSteps returns a piecewise-constant random step signal in [0, 1]
// with the given number of plateaus.
func makeSteps(rng *rand.Rand, n, pieces int) []float64 {
	out := make([]float64, n)
	if pieces < 1 {
		pieces = 1
	}
	bounds := make([]int, pieces+1)
	bounds[pieces] = n
	for k := 1; k < pieces; k++ {
		bounds[k] = rng.Intn(n)
	}
	sortInts(bounds)
	for k := 0; k < pieces; k++ {
		level := rng.Float64()
		for i := bounds[k]; i < bounds[k+1]; i++ {
			out[i] = level
		}
	}
	return out
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// poisson samples a Poisson variate by inversion (suitable for small
// means, as here).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 { // guard against pathological means
			return k
		}
	}
}
