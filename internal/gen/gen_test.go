package gen

import (
	"math"
	"math/rand"
	"testing"
)

func TestMystiQLinkageShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultMystiQ(2000)
	b := MystiQLinkage(rng, cfg)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.N != 2000 {
		t.Fatalf("N = %d", b.N)
	}
	perItem := float64(len(b.Tuples)) / float64(b.N)
	// Mean tuples per item should land near the configured 4.6; the
	// squared heavy-tail modulation averages to ~1.5x the nominal mean.
	if perItem < 2.5 || perItem > 9.0 {
		t.Fatalf("tuples per item = %v, want within [2.5, 9]", perItem)
	}
	// probabilities must be rank-decaying per item: first tuple of an item
	// has the largest probability.
	last := -1
	var prev float64
	for _, tp := range b.Tuples {
		if tp.Item != last {
			last, prev = tp.Item, tp.Prob
			continue
		}
		if tp.Prob > prev+1e-12 {
			t.Fatalf("item %d: probabilities not rank-decaying (%v after %v)", tp.Item, tp.Prob, prev)
		}
		prev = tp.Prob
	}
}

func TestMystiQDeterministicWithSeed(t *testing.T) {
	a := MystiQLinkage(rand.New(rand.NewSource(7)), DefaultMystiQ(500))
	b := MystiQLinkage(rand.New(rand.NewSource(7)), DefaultMystiQ(500))
	if len(a.Tuples) != len(b.Tuples) {
		t.Fatalf("tuple counts differ: %d vs %d", len(a.Tuples), len(b.Tuples))
	}
	for i := range a.Tuples {
		if a.Tuples[i] != b.Tuples[i] {
			t.Fatalf("tuple %d differs", i)
		}
	}
}

func TestTPCHLineitemShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := DefaultTPCH(1000, 3000)
	tp := TPCHLineitem(rng, cfg)
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tp.Tuples) != 3000 {
		t.Fatalf("tuples = %d", len(tp.Tuples))
	}
	for k := range tp.Tuples {
		alts := tp.Tuples[k].Alts
		if len(alts) != cfg.Alternatives {
			t.Fatalf("tuple %d has %d alternatives, want %d", k, len(alts), cfg.Alternatives)
		}
		seen := map[int]bool{}
		for _, a := range alts {
			if math.Abs(a.Prob-0.25) > 1e-12 {
				t.Fatalf("alternative probability %v, want 0.25", a.Prob)
			}
			if seen[a.Item] {
				t.Fatalf("tuple %d repeats item %d", k, a.Item)
			}
			seen[a.Item] = true
		}
	}
	// Popularity skew: hotspot partkeys must carry far more expected mass
	// than the typical partkey (the Zipf component of the mix).
	e := tp.ExpectedFreqs()
	maxE, total := 0.0, 0.0
	for _, v := range e {
		total += v
		if v > maxE {
			maxE = v
		}
	}
	mean := total / float64(len(e))
	if maxE < 5*mean {
		t.Fatalf("max expected mass %v vs mean %v: no hotspot skew", maxE, mean)
	}
}

func TestTPCHSpreadBoundsAlternatives(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := TPCHConfig{N: 1000, M: 500, Alternatives: 3, ZipfS: 1.2, Spread: 10}
	tp := TPCHLineitem(rng, cfg)
	for k := range tp.Tuples {
		lo, hi, ok := tp.Tuples[k].Span()
		if !ok {
			t.Fatalf("tuple %d empty", k)
		}
		if hi-lo > 4*cfg.Spread { // reflection at edges can double the window
			t.Fatalf("tuple %d spans [%d,%d], exceeds spread bound", k, lo, hi)
		}
	}
}

func TestSensorGridShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := DefaultSensor(800)
	vp := SensorGrid(rng, cfg)
	if err := vp.Validate(); err != nil {
		t.Fatal(err)
	}
	if vp.N != 800 {
		t.Fatalf("N = %d", vp.N)
	}
	nonZeroItems := 0
	for i := range vp.Items {
		if len(vp.Items[i].Entries) != cfg.Levels {
			t.Fatalf("item %d has %d levels, want %d", i, len(vp.Items[i].Entries), cfg.Levels)
		}
		if vp.Items[i].Mean() > 0 {
			nonZeroItems++
		}
		// some uncertainty must remain (this is the point of the model)
		if z := vp.Items[i].ZeroProb(); z < 0 || z > 0.2 {
			t.Fatalf("item %d zero mass %v outside [0, 0.2]", i, z)
		}
	}
	if nonZeroItems < 700 {
		t.Fatalf("only %d items carry signal", nonZeroItems)
	}
}

func TestSensorGridSmoothness(t *testing.T) {
	// Neighbouring items should usually have close means: count large jumps.
	rng := rand.New(rand.NewSource(5))
	vp := SensorGrid(rng, DefaultSensor(1000))
	e := vp.ExpectedFreqs()
	jumps := 0
	for i := 1; i < len(e); i++ {
		if math.Abs(e[i]-e[i-1]) > 3 {
			jumps++
		}
	}
	if jumps > 25 {
		t.Fatalf("%d large jumps; the signal should be piecewise smooth", jumps)
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const mean, samples = 4.6, 50000
	sum := 0
	for i := 0; i < samples; i++ {
		sum += poisson(rng, mean)
	}
	got := float64(sum) / samples
	if math.Abs(got-mean) > 0.1 {
		t.Fatalf("poisson sample mean %v, want ≈ %v", got, mean)
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Fatal("non-positive mean must give 0")
	}
}

func TestMakeSteps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := makeSteps(rng, 100, 5)
	if len(s) != 100 {
		t.Fatalf("len = %d", len(s))
	}
	distinct := map[float64]bool{}
	for _, v := range s {
		if v < 0 || v > 1 {
			t.Fatalf("step level %v outside [0,1]", v)
		}
		distinct[v] = true
	}
	if len(distinct) < 2 {
		t.Fatal("steps degenerate to a constant")
	}
}
