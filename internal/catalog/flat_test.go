package catalog

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"probsyn/internal/hist"
	"probsyn/internal/query"
	"probsyn/internal/synopsis"
	"probsyn/internal/wavelet"
)

// randHistogram assembles a random but valid histogram directly (no DP
// build): a random contiguous bucket partition of [0, n) with random
// representatives and costs. Hand assembly keeps the property tests
// fast and the coverage independent of what the builders happen to
// produce.
func randHistogram(rng *rand.Rand, n int) *hist.Histogram {
	b := 1 + rng.Intn(min(n, 12))
	cuts := map[int]bool{}
	for len(cuts) < b-1 {
		cuts[1+rng.Intn(n-1)] = true
	}
	starts := []int{0}
	for i := 1; i < n; i++ {
		if cuts[i] {
			starts = append(starts, i)
		}
	}
	h := &hist.Histogram{N: n}
	for k, s := range starts {
		end := n - 1
		if k+1 < len(starts) {
			end = starts[k+1] - 1
		}
		cost := rng.Float64() * 10
		h.Cost += cost
		h.Buckets = append(h.Buckets, hist.Bucket{Start: s, End: end, Rep: rng.NormFloat64(), Cost: cost})
	}
	return h
}

// randWavelet assembles a random but valid wavelet synopsis over a
// power-of-two domain: a random ascending subset of coefficient
// indices (sometimes including the root, index 0) with random values.
func randWavelet(rng *rand.Rand, n int) *wavelet.Synopsis {
	terms := 1 + rng.Intn(min(n, 10))
	idx := map[int]bool{}
	if rng.Intn(2) == 0 {
		idx[0] = true // root
	}
	for len(idx) < terms {
		idx[rng.Intn(n)] = true
	}
	s := &wavelet.Synopsis{N: n, Cost: rng.Float64() * 10}
	for i := 0; i < n; i++ {
		if idx[i] {
			s.Indices = append(s.Indices, i)
			s.Values = append(s.Values, rng.NormFloat64())
		}
	}
	return s
}

// randCatalog fills a catalog with count random entries alternating
// between the families (wavelet domains drawn from pows, which may
// exceed the dense-table limit to cover both lookup paths).
func randCatalog(t *testing.T, rng *rand.Rand, count int, pows []int) *Catalog {
	t.Helper()
	c := New()
	for i := 0; i < count; i++ {
		var (
			syn synopsis.Synopsis
			fam string
		)
		if i%2 == 0 {
			syn = randHistogram(rng, 2+rng.Intn(64))
			fam = FamilyHistogram
		} else {
			syn = randWavelet(rng, pows[rng.Intn(len(pows))])
			fam = FamilyWavelet
		}
		key, err := NewKey(fmt.Sprintf("ds%03d", i), fam, "SSE", 1+i, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Put(key, syn); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// sameBits fails the test unless the two queriers answer
// Float64bits-identically on a point and range sample over the domain.
func sameBits(t *testing.T, key Key, n int, got, want query.Querier, rng *rand.Rand) {
	t.Helper()
	points := n
	if points > 256 {
		points = 256
	}
	for s := 0; s < points; s++ {
		i := s
		if n > 256 {
			i = rng.Intn(n)
		}
		g, w := got.Estimate(i), want.Estimate(i)
		if math.Float64bits(g) != math.Float64bits(w) {
			t.Fatalf("%v: Estimate(%d) = %v (bits %x), compiled %v (bits %x)",
				key, i, g, math.Float64bits(g), w, math.Float64bits(w))
		}
	}
	for s := 0; s < 64; s++ {
		lo, hi := rng.Intn(n), rng.Intn(n)
		if lo > hi {
			lo, hi = hi, lo
		}
		g, w := got.RangeSum(lo, hi), want.RangeSum(lo, hi)
		if math.Float64bits(g) != math.Float64bits(w) {
			t.Fatalf("%v: RangeSum(%d, %d) = %v (bits %x), compiled %v (bits %x)",
				key, lo, hi, g, math.Float64bits(g), w, math.Float64bits(w))
		}
	}
}

// TestFlatRoundTripBitIdentical is the acceptance property: over random
// synopses of both families (wavelet domains straddling the dense-table
// limit), a packed-then-mapped catalog answers every query with the
// exact float64 bits the compiled path produces.
func TestFlatRoundTripBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pows := []int{2, 8, 64, 1024, query.WaveletDenseLimit, 2 * query.WaveletDenseLimit}
	src := randCatalog(t, rng, 40, pows)
	dir := t.TempDir()
	if _, err := Pack(FlatPath(dir), src.List()); err != nil {
		t.Fatal(err)
	}

	f, err := OpenFlat(FlatPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	c := New()
	if got := c.AttachFlat(f, t.Logf); got != src.Len() {
		t.Fatalf("attached %d entries, packed %d", got, src.Len())
	}
	for _, want := range src.List() {
		e, ok := c.Get(want.Key)
		if !ok {
			t.Fatalf("flat catalog lost %v", want.Key)
		}
		n := want.Synopsis.Domain()
		if e.Synopsis.Domain() != n || e.Synopsis.Terms() != want.Synopsis.Terms() {
			t.Fatalf("%v: metadata mismatch", want.Key)
		}
		if math.Float64bits(e.Synopsis.ErrorCost()) != math.Float64bits(want.Synopsis.ErrorCost()) {
			t.Fatalf("%v: ErrorCost mismatch", want.Key)
		}
		if e.Bytes != want.Bytes {
			t.Fatalf("%v: Bytes = %d, want %d", want.Key, e.Bytes, want.Bytes)
		}
		sameBits(t, want.Key, n, e.Querier, want.Querier, rng)
		// The synopsis facade must answer identically too (it routes
		// through the same querier).
		if math.Float64bits(e.Synopsis.Estimate(0)) != math.Float64bits(want.Synopsis.Estimate(0)) {
			t.Fatalf("%v: facade Estimate differs", want.Key)
		}
	}
}

// TestFlatCodecInterop: a flat-backed entry must round-trip the codec
// byte-identically to the synopsis it stands for — Marshal resolves the
// facade to a lazily materialized concrete synopsis.
func TestFlatCodecInterop(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := randCatalog(t, rng, 8, []int{16, 64})
	dir := t.TempDir()
	if _, err := Pack(FlatPath(dir), src.List()); err != nil {
		t.Fatal(err)
	}
	f, err := OpenFlat(FlatPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	c := New()
	c.AttachFlat(f, nil)
	for _, want := range src.List() {
		wantBlob, err := synopsis.Marshal(want.Synopsis)
		if err != nil {
			t.Fatal(err)
		}
		e, _ := c.Get(want.Key)
		gotBlob, err := synopsis.Marshal(e.Synopsis)
		if err != nil {
			t.Fatalf("%v: marshal through facade: %v", want.Key, err)
		}
		if !bytes.Equal(gotBlob, wantBlob) {
			t.Fatalf("%v: facade envelope differs from the original", want.Key)
		}
	}
}

// TestFlatPackDeterministic: packing the same logical catalog must be
// byte-identical regardless of entry order — the offline psyn -pack and
// the server's background re-pack are interchangeable.
func TestFlatPackDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	src := randCatalog(t, rng, 12, []int{32})
	entries := src.List()
	a, err := PackBytes(entries)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := append([]*Entry(nil), entries...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	b, err := PackBytes(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("pack order leaked into the file bytes")
	}
	// Re-packing a flat-attached catalog (what the server's background
	// re-pack does after a flat boot) must also be byte-identical.
	dir := t.TempDir()
	if err := WriteBlob(FlatPath(dir), a); err != nil {
		t.Fatal(err)
	}
	f, err := OpenFlat(FlatPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	c := New()
	c.AttachFlat(f, nil)
	again, err := PackBytes(c.List())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, a) {
		t.Fatal("re-pack of a flat-attached catalog differs from the original pack")
	}
}

// TestBootDirFlat: BootDir attaches the flat file and codec-loads only
// what it does not cover.
func TestBootDirFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	src := randCatalog(t, rng, 10, []int{64})
	dir := t.TempDir()
	if _, err := src.SaveAll(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := Pack(FlatPath(dir), src.List()); err != nil {
		t.Fatal(err)
	}
	// One extra synopsis persisted after the pack: the flat file does
	// not cover it, so the codec path must pick it up.
	extraKey, err := NewKey("late-arrival", FamilyHistogram, "SSE", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	extra := randHistogram(rng, 32)
	blob, err := synopsis.Marshal(extra)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBlob(filepath.Join(dir, extraKey.Filename()), blob); err != nil {
		t.Fatal(err)
	}

	c := New()
	f, flatN, codecN, err := BootDir(c, dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if f == nil {
		t.Fatal("BootDir did not use the flat file")
	}
	defer f.Close()
	if flatN != src.Len() || codecN != 1 {
		t.Fatalf("flatN = %d codecN = %d, want %d and 1", flatN, codecN, src.Len())
	}
	if _, ok := c.Get(extraKey); !ok {
		t.Fatal("codec-path entry missing after flat boot")
	}
	for _, want := range src.List() {
		e, ok := c.Get(want.Key)
		if !ok {
			t.Fatalf("%v missing after flat boot", want.Key)
		}
		sameBits(t, want.Key, want.Synopsis.Domain(), e.Querier, want.Querier, rng)
	}
}

// rewriteHeader recomputes the header CRC after a test mutates header
// bytes, so the mutation under test is the only validation failure.
func rewriteHeader(data []byte) {
	binary.LittleEndian.PutUint32(data[60:], crc32.ChecksumIEEE(data[:60]))
}

// TestBootDirVersionNewer is the boot-ordering regression test: a flat
// file stamped with a future format version must be skipped with a
// warning and the catalog loaded through .psyn decode instead.
func TestBootDirVersionNewer(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	src := randCatalog(t, rng, 6, []int{32})
	dir := t.TempDir()
	if _, err := src.SaveAll(dir); err != nil {
		t.Fatal(err)
	}
	data, err := PackBytes(src.List())
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(data[8:], flatVersion+1)
	rewriteHeader(data)
	if err := WriteBlob(FlatPath(dir), data); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFlat(FlatPath(dir)); err == nil {
		t.Fatal("OpenFlat accepted a future version")
	} else if !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version rejected with %v, want a version error", err)
	}

	var warned []string
	c := New()
	f, flatN, codecN, err := BootDir(c, dir, func(format string, args ...any) {
		warned = append(warned, fmt.Sprintf(format, args...))
	})
	if err != nil {
		t.Fatal(err)
	}
	if f != nil {
		t.Fatal("BootDir kept a future-version flat file open")
	}
	if flatN != 0 || codecN != src.Len() {
		t.Fatalf("flatN = %d codecN = %d, want 0 and %d (codec fallback)", flatN, codecN, src.Len())
	}
	if len(warned) == 0 {
		t.Fatal("future-version fallback produced no warning")
	}
	for _, want := range src.List() {
		if _, ok := c.Get(want.Key); !ok {
			t.Fatalf("%v missing after codec fallback", want.Key)
		}
	}
}

// TestBootDirNoFlatFile: the common case (no flat file at all) loads
// through the codec path with no warning.
func TestBootDirNoFlatFile(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	src := randCatalog(t, rng, 4, []int{16})
	dir := t.TempDir()
	if _, err := src.SaveAll(dir); err != nil {
		t.Fatal(err)
	}
	var warned int
	c := New()
	f, flatN, codecN, err := BootDir(c, dir, func(string, ...any) { warned++ })
	if err != nil {
		t.Fatal(err)
	}
	if f != nil || flatN != 0 || codecN != src.Len() || warned != 0 {
		t.Fatalf("f=%v flatN=%d codecN=%d warned=%d, want nil/0/%d/0", f, flatN, codecN, warned, src.Len())
	}
}

// TestFlatCorruptBlockWithdrawn: a bit flip in an entry's data block
// passes the open-time checks (header and index are intact) but must be
// caught by the entry's lazy CRC at first Get — the entry is withdrawn,
// never served.
func TestFlatCorruptBlockWithdrawn(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	src := randCatalog(t, rng, 4, []int{32})
	data, err := PackBytes(src.List())
	if err != nil {
		t.Fatal(err)
	}
	dataOff := binary.LittleEndian.Uint64(data[40:])
	data[dataOff+3] ^= 0x40 // flip a bit in the first entry's block
	dir := t.TempDir()
	if err := WriteBlob(FlatPath(dir), data); err != nil {
		t.Fatal(err)
	}
	f, err := OpenFlat(FlatPath(dir))
	if err != nil {
		t.Fatalf("open rejected a file whose damage is block-local: %v", err)
	}
	defer f.Close()
	var warned int
	c := New()
	c.AttachFlat(f, func(string, ...any) { warned++ })
	victim := f.Keys()[0]
	if _, ok := c.Get(victim); ok {
		t.Fatal("corrupt entry served")
	}
	if warned == 0 {
		t.Fatal("withdrawal produced no warning")
	}
	if _, ok := c.Get(victim); ok {
		t.Fatal("withdrawn entry came back")
	}
	// The other entries are intact and must still serve.
	for _, k := range f.Keys()[1:] {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("intact entry %v withdrawn", k)
		}
	}
}

// TestOpenFlatRejectsDamage: header- and index-level damage must fail
// at open, before anything is attached.
func TestOpenFlatRejectsDamage(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	src := randCatalog(t, rng, 3, []int{16})
	good, err := PackBytes(src.List())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func([]byte) []byte{
		"truncated mid-data":  func(b []byte) []byte { return b[:len(b)-64] },
		"truncated to header": func(b []byte) []byte { return b[:flatPage] },
		"empty":               func(b []byte) []byte { return nil },
		"bad magic":           func(b []byte) []byte { b[0] ^= 0xff; return b },
		"header bit flip":     func(b []byte) []byte { b[21] ^= 0x01; return b },
		"index bit flip":      func(b []byte) []byte { b[flatPage+2] ^= 0x10; return b },
		"entry count lies": func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[20:], 99)
			rewriteHeader(b)
			return b
		},
		"file size lies": func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[48:], uint64(len(b))+flatPage)
			rewriteHeader(b)
			return b
		},
	}
	dir := t.TempDir()
	for name, mutate := range cases {
		data := mutate(append([]byte(nil), good...))
		path := FlatPath(dir)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if f, err := OpenFlat(path); err == nil {
			f.Close()
			t.Errorf("%s: OpenFlat accepted the file", name)
		}
	}
}
