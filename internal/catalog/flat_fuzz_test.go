package catalog

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"probsyn/internal/synopsis"
)

// FuzzOpenFlat feeds arbitrary bytes through the whole flat-catalog
// read path: open, attach, fetch (which runs the lazy block checks),
// query, and codec materialization. Truncated, bit-flipped, or
// misaligned files must produce errors or withdrawn entries — never a
// crash, and never a served entry whose arrays violate the querier
// invariants (the shape checks in ensure are exactly what makes the
// query calls below safe to run on whatever survives).
func FuzzOpenFlat(f *testing.F) {
	// Seed with a genuine flat file and targeted damage to it, so the
	// fuzzer starts at the format's interesting surface instead of
	// rediscovering the magic number.
	rng := rand.New(rand.NewSource(41))
	c := New()
	for i := 0; i < 4; i++ {
		var (
			syn synopsis.Synopsis
			fam string
		)
		if i%2 == 0 {
			syn = randHistogram(rng, 8+i)
			fam = FamilyHistogram
		} else {
			syn = randWavelet(rng, 16)
			fam = FamilyWavelet
		}
		key, err := NewKey(fmt.Sprintf("fz%d", i), fam, "SSE", 1+i, 0)
		if err != nil {
			f.Fatal(err)
		}
		if _, _, err := c.Put(key, syn); err != nil {
			f.Fatal(err)
		}
	}
	good, err := PackBytes(c.List())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:flatPage])
	f.Add(good[:len(good)-32])
	flipped := append([]byte(nil), good...)
	flipped[flatPage+7] ^= 0x20
	f.Add(flipped)
	shifted := append([]byte(nil), good...)
	dataOff := binary.LittleEndian.Uint64(good[40:])
	shifted[dataOff+1] ^= 0x08
	f.Add(shifted)
	f.Add([]byte(flatMagic))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, FlatName)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		fl, err := OpenFlat(path)
		if err != nil {
			return // rejection is the expected outcome for damage
		}
		defer fl.Close()
		cat := New()
		cat.AttachFlat(fl, nil)
		for _, k := range fl.Keys() {
			e, ok := cat.Get(k)
			if !ok {
				continue // withdrawn by the lazy checks: correct
			}
			// Whatever Get vouches for must be queryable and
			// codec-roundtrippable without panicking.
			n := e.Synopsis.Domain()
			_ = e.Querier.Estimate(0)
			_ = e.Querier.Estimate(n - 1)
			_ = e.Querier.RangeSum(0, n-1)
			_ = e.Synopsis.Terms()
			_ = e.Synopsis.ErrorCost()
			if _, err := synopsis.Marshal(e.Synopsis); err != nil {
				t.Fatalf("entry %v passed Get but fails to marshal: %v", k, err)
			}
		}
	})
}
