// Flat catalog: a single mmap-friendly file holding every compiled
// querier's arrays, so a replica restart is an open + header validation
// instead of decoding and recompiling every synopsis.
//
// The codec path (.psyn envelope files) stores synopses; serving them
// requires decoding each envelope and compiling a querier per entry —
// work that scales with catalog size and stands between a rebooted
// replica and its first answered query. The flat format stores what the
// compile step produces: the histogram start/end/rep/prefix arrays and
// the wavelet coefficient/index/position tables, page-aligned and
// little-endian, exactly as the queriers hold them in memory. OpenFlat
// maps the file, validates the fixed-offset header and the index
// section, and builds queriers whose slices alias the mapping —
// answers are bit-identical to compiled queriers because they ARE the
// compiled querier types over the same float64 bits.
//
// Layout (version 1, little-endian, fixed 4096-byte pages):
//
//	page 0    header, 64 bytes used, zero-padded to the page:
//	          [0]  magic   "PSYNFLAT" (8 bytes)
//	          [8]  version u32 (1)
//	          [12] probe   u32 (0x01020304; corruption tripwire)
//	          [16] page    u32 (4096)
//	          [20] entries u32
//	          [24] indexOff u64 (4096)
//	          [32] indexLen u64
//	          [40] dataOff  u64 (indexOff+indexLen rounded up to a page)
//	          [48] fileSize u64
//	          [56] indexCRC u32 (IEEE CRC-32 of the index section)
//	          [60] headerCRC u32 (IEEE CRC-32 of header bytes [0,60))
//	index     one variable-length record per entry, tightly packed:
//	          u32 keyLen | key (the entry's Filename() encoding) |
//	          u32 family (0 histogram, 1 wavelet) | u64 n | u64 terms |
//	          f64 errorCost | u64 envelopeBytes | u64 blockOff |
//	          u64 blockLen | u32 blockCRC |
//	          wavelet only: u32 hasRoot | f64 root
//	data      per-entry blocks, each starting on a page boundary,
//	          arrays 8-byte aligned, ascending blockOff:
//	          histogram (B = terms): starts i64[B] | ends i64[B] |
//	            reps f64[B] | costs f64[B] | prefix f64[B]
//	          wavelet (D = terms - hasRoot): indices i64[D] |
//	            values f64[D] | pos i32[n] zero-padded to 8 bytes
//	            (present exactly when n <= query.WaveletDenseLimit)
//
// Alignment and endianness contract: the file is little-endian and its
// integer arrays are 64-bit, viewed in place via unsafe slice casts —
// OpenFlat therefore requires a 64-bit little-endian host (every other
// platform gets ErrFlatUnsupported and the caller falls back to the
// codec path). Page-aligned blocks on a page-aligned mapping make every
// array naturally aligned.
//
// Integrity: the header and index checksums are validated at open (the
// index is small); each entry's data block carries its own CRC,
// validated lazily the first time the entry is fetched from the catalog
// (Catalog.Get), together with shape invariants (bucket partition
// contiguity, coefficient index order, position-table consistency) —
// a corrupt entry is withdrawn and answers not_found rather than
// serving wrong data, and an intact entry pays the check exactly once.
//
// Invalidation: the flat file is a snapshot of a catalog directory. The
// server removes it BEFORE the first republication (build, sweep,
// mutation, accepted piece) that would make it stale and re-packs in
// the background once the catalog settles, so at boot a flat file that
// exists is never staler than the .psyn files beside it; keys the flat
// file does not cover load through the codec path (BootDir).
package catalog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"probsyn/internal/hist"
	"probsyn/internal/query"
	"probsyn/internal/synopsis"
	"probsyn/internal/wavelet"
)

// FlatName is the conventional flat catalog filename inside a catalog
// directory — shared by psynd's boot path, its background re-packer,
// and the offline psyn -pack, so they all find each other's output.
const FlatName = "catalog.flat"

// FlatPath returns the flat catalog path for a catalog directory.
func FlatPath(dir string) string { return filepath.Join(dir, FlatName) }

// Typed open failures the boot path distinguishes: a flat file written
// by a newer binary (skip it, warn, fall back to the codec path — never
// guess at a format from the future) and a host this format cannot be
// mapped on (32-bit or big-endian; same fallback).
var (
	ErrFlatVersion     = errors.New("catalog: flat catalog version is newer than this binary supports")
	ErrFlatUnsupported = errors.New("catalog: flat catalogs require a 64-bit little-endian host")
)

const (
	flatMagic     = "PSYNFLAT"
	flatVersion   = 1
	flatProbe     = 0x01020304
	flatPage      = 4096
	flatHeaderLen = 64

	flatFamilyHistogram = 0
	flatFamilyWavelet   = 1

	// Hard caps keeping a corrupt or hostile index from driving huge
	// allocations before its CRC-passing-but-nonsensical content is
	// rejected field by field.
	maxFlatEntries = 1 << 20
	maxFlatKeyLen  = 1 << 10
	maxFlatDomain  = 1 << 32
)

// hostFlatCapable reports whether this process can view flat files in
// place: int64 arrays are cast to []int and float64 arrays are read
// through native byte order, so the host must be 64-bit little-endian.
func hostFlatCapable() bool {
	probe := []byte{0x34, 0x12}
	return strconv.IntSize == 64 && binary.NativeEndian.Uint16(probe) == 0x1234
}

// flatRec is one parsed index record.
type flatRec struct {
	key      Key
	name     string // the key's Filename(), as the index recorded it
	family   uint32
	n        int
	terms    int
	cost     float64
	envBytes int
	blockOff uint64
	blockLen uint64
	blockCRC uint32
	hasRoot  bool
	root     float64
}

// Flat is an open flat catalog: the mapping plus one ready-to-attach
// entry per index record. Entries hold slices aliasing the mapping, so
// Close must not be called while any attached entry may still be
// queried; a server keeps the mapping for the life of the process.
type Flat struct {
	path    string
	data    []byte
	unmap   func() error
	entries []*Entry

	closeOnce sync.Once
	closeErr  error
}

// Len returns the number of entries in the flat catalog.
func (f *Flat) Len() int { return len(f.entries) }

// Keys returns the entry keys in file order (which Pack makes the
// catalog's sorted key order).
func (f *Flat) Keys() []Key {
	out := make([]Key, len(f.entries))
	for i, e := range f.entries {
		out[i] = e.Key
	}
	return out
}

// Close unmaps the file. Every querier the flat catalog produced
// aliases the mapping — Close only after the attached entries are
// unreachable (tests; a serving process simply never closes).
func (f *Flat) Close() error {
	f.closeOnce.Do(func() {
		if f.unmap != nil {
			f.closeErr = f.unmap()
		}
	})
	return f.closeErr
}

// flatLazy is the deferred per-entry work of a flat-backed entry: the
// data-block CRC and shape validation on first catalog fetch, and the
// concrete synopsis materialization on first codec use. Both memoize.
type flatLazy struct {
	f     *Flat
	rec   flatRec
	warnf func(format string, args ...any)

	once sync.Once
	err  error

	matOnce sync.Once
	mat     synopsis.Synopsis
	matErr  error
}

// ensure validates the entry's data block once: CRC first (bit flips
// and truncation are loud), then the shape invariants the queriers'
// query-time arithmetic relies on to stay crash-free.
func (l *flatLazy) ensure() error {
	l.once.Do(func() {
		block := l.f.data[l.rec.blockOff : l.rec.blockOff+l.rec.blockLen]
		if got := crc32.ChecksumIEEE(block); got != l.rec.blockCRC {
			l.err = fmt.Errorf("catalog: flat entry %v: data checksum mismatch (corrupt block)", l.rec.key)
			return
		}
		l.err = l.validateShape()
	})
	return l.err
}

// validateShape checks the invariants that make the viewed arrays safe
// and meaningful to query — the same invariants the codec decoders
// enforce via Validate on the concrete types.
func (l *flatLazy) validateShape() error {
	rec := &l.rec
	switch rec.family {
	case flatFamilyHistogram:
		starts, ends, _, _, _ := l.f.histViews(rec)
		if starts[0] != 0 {
			return fmt.Errorf("catalog: flat entry %v: first bucket starts at %d, want 0", rec.key, starts[0])
		}
		for k := range starts {
			if starts[k] > ends[k] {
				return fmt.Errorf("catalog: flat entry %v: bucket %d start %d > end %d", rec.key, k, starts[k], ends[k])
			}
			if k > 0 && starts[k] != ends[k-1]+1 {
				return fmt.Errorf("catalog: flat entry %v: bucket %d starts at %d, want %d", rec.key, k, starts[k], ends[k-1]+1)
			}
		}
		if last := ends[len(ends)-1]; last != rec.n-1 {
			return fmt.Errorf("catalog: flat entry %v: last bucket ends at %d, want %d", rec.key, last, rec.n-1)
		}
	case flatFamilyWavelet:
		indices, _, pos := l.f.waveletViews(rec)
		for k, idx := range indices {
			// Detail coefficients only: the root (index 0) lives in the
			// index record, so every stored index is in [1, n).
			if idx < 1 || idx >= rec.n {
				return fmt.Errorf("catalog: flat entry %v: coefficient index %d outside [1, %d)", rec.key, idx, rec.n)
			}
			if k > 0 && idx <= indices[k-1] {
				return fmt.Errorf("catalog: flat entry %v: coefficient indices not strictly ascending at %d", rec.key, k)
			}
		}
		if pos != nil {
			// The dense table must be exactly the inverse of the index
			// list: wrong positions would serve other coefficients'
			// values (or crash); checked once, O(n).
			for i, p := range pos {
				if p == -1 {
					continue
				}
				if int(p) < 0 || int(p) >= len(indices) || indices[p] != i {
					return fmt.Errorf("catalog: flat entry %v: position table disagrees with indices at %d", rec.key, i)
				}
			}
			for k, idx := range indices {
				if pos[idx] != int32(k) {
					return fmt.Errorf("catalog: flat entry %v: position table misses index %d", rec.key, idx)
				}
			}
		}
	}
	return nil
}

// flatSyn is the synopsis facade of a flat-backed entry: metadata from
// the index record, queries through the view querier (bit-identical to
// the concrete synopsis's methods by the compiled-path property), and
// Underlying materializing the concrete synopsis for the codec.
type flatSyn struct {
	q     query.Querier
	n     int
	terms int
	cost  float64
	lazy  *flatLazy
}

func (s *flatSyn) Estimate(i int) float64      { return s.q.Estimate(i) }
func (s *flatSyn) RangeSum(lo, hi int) float64 { return s.q.RangeSum(lo, hi) }
func (s *flatSyn) Terms() int                  { return s.terms }
func (s *flatSyn) ErrorCost() float64          { return s.cost }
func (s *flatSyn) Domain() int                 { return s.n }
func (s *flatSyn) Underlying() (synopsis.Synopsis, error) {
	l := s.lazy
	l.matOnce.Do(func() {
		if err := l.ensure(); err != nil {
			l.matErr = err
			return
		}
		l.mat, l.matErr = l.f.materialize(&l.rec)
	})
	return l.mat, l.matErr
}

// materialize copies a validated entry's arrays into the concrete
// synopsis type, so the codec (and anything else wanting the real
// struct) sees exactly what decoding the entry's .psyn envelope yields.
func (f *Flat) materialize(rec *flatRec) (synopsis.Synopsis, error) {
	switch rec.family {
	case flatFamilyHistogram:
		starts, ends, reps, costs, _ := f.histViews(rec)
		h := &hist.Histogram{N: rec.n, Cost: rec.cost, Buckets: make([]hist.Bucket, len(starts))}
		for k := range h.Buckets {
			h.Buckets[k] = hist.Bucket{Start: starts[k], End: ends[k], Rep: reps[k], Cost: costs[k]}
		}
		if err := h.Validate(); err != nil {
			return nil, fmt.Errorf("catalog: flat entry %v: %w", rec.key, err)
		}
		return h, nil
	case flatFamilyWavelet:
		indices, values, _ := f.waveletViews(rec)
		s := &wavelet.Synopsis{N: rec.n, Cost: rec.cost}
		s.Indices = make([]int, 0, rec.terms)
		s.Values = make([]float64, 0, rec.terms)
		if rec.hasRoot {
			// Index 0 sorts first, so prepending the root keeps the
			// ascending order the synopsis type requires.
			s.Indices = append(s.Indices, 0)
			s.Values = append(s.Values, rec.root)
		}
		s.Indices = append(s.Indices, indices...)
		s.Values = append(s.Values, values...)
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("catalog: flat entry %v: %w", rec.key, err)
		}
		return s, nil
	}
	return nil, fmt.Errorf("catalog: flat entry %v: unknown family %d", rec.key, rec.family)
}

// histViews returns the five histogram arrays viewed in place.
func (f *Flat) histViews(rec *flatRec) (starts, ends []int, reps, costs, prefix []float64) {
	b := uint64(rec.terms)
	off := rec.blockOff
	starts = viewInts(f.data, off, b)
	ends = viewInts(f.data, off+8*b, b)
	reps = viewF64s(f.data, off+16*b, b)
	costs = viewF64s(f.data, off+24*b, b)
	prefix = viewF64s(f.data, off+32*b, b)
	return
}

// waveletViews returns the detail coefficient arrays (and the dense
// position table when the domain carries one) viewed in place.
func (f *Flat) waveletViews(rec *flatRec) (indices []int, values []float64, pos []int32) {
	d := uint64(rec.terms)
	if rec.hasRoot {
		d--
	}
	off := rec.blockOff
	indices = viewInts(f.data, off, d)
	values = viewF64s(f.data, off+8*d, d)
	if rec.n <= query.WaveletDenseLimit {
		pos = viewI32s(f.data, off+16*d, uint64(rec.n))
	}
	return
}

// histBlockLen and waveletBlockLen are the data-block sizes the layout
// prescribes; OpenFlat rejects records whose recorded length disagrees.
func histBlockLen(b uint64) uint64 { return 40 * b }

func waveletBlockLen(details, n uint64) uint64 {
	l := 16 * details
	if n <= query.WaveletDenseLimit {
		l += align8(4 * n)
	}
	return l
}

func align8(v uint64) uint64    { return (v + 7) &^ 7 }
func alignPage(v uint64) uint64 { return (v + flatPage - 1) &^ (flatPage - 1) }

// ---- packing ----

// Pack serializes the entries into the flat catalog format and writes
// the file atomically (temp + rename). Entries are sorted by key first,
// so packing the same logical catalog produces byte-identical files
// wherever it runs — the server's background re-pack and the offline
// psyn -pack are interchangeable. It returns the number of entries
// packed.
func Pack(path string, entries []*Entry) (int, error) {
	data, err := PackBytes(entries)
	if err != nil {
		return 0, err
	}
	if err := WriteBlob(path, data); err != nil {
		return 0, err
	}
	return len(entries), nil
}

// PackBytes serializes the entries into flat catalog bytes. Every entry
// must carry a compiled querier of a known family (which every catalog
// entry does — flat-backed entries included, since their view queriers
// are the same types).
func PackBytes(entries []*Entry) ([]byte, error) {
	sorted := append([]*Entry(nil), entries...)
	sort.Slice(sorted, func(a, b int) bool { return keyLess(sorted[a].Key, sorted[b].Key) })

	type packed struct {
		index []byte // record bytes, blockOff patched in pass 2
		block []byte
	}
	var (
		packs    []packed
		indexLen uint64
	)
	for _, e := range sorted {
		p, err := packEntry(e)
		if err != nil {
			return nil, err
		}
		packs = append(packs, p)
		indexLen += uint64(len(p.index))
	}
	dataOff := alignPage(flatPage + indexLen)

	// Assign page-aligned block offsets, then patch each record's
	// blockOff field (it was left zero at a fixed position from the
	// record's end — see packEntry).
	off := dataOff
	var fileSize uint64 = dataOff
	for i := range packs {
		p := &packs[i]
		patchBlockOff(p.index, off)
		end := off + uint64(len(p.block))
		fileSize = alignPage(end)
		off = fileSize
	}
	out := make([]byte, fileSize)
	// Index section.
	cursor := uint64(flatPage)
	for _, p := range packs {
		copy(out[cursor:], p.index)
		cursor += uint64(len(p.index))
	}
	indexCRC := crc32.ChecksumIEEE(out[flatPage : flatPage+indexLen])
	// Data blocks (offsets recorded in the patched records).
	off = dataOff
	for i := range packs {
		copy(out[off:], packs[i].block)
		off = alignPage(off + uint64(len(packs[i].block)))
	}
	// Header.
	h := out[:flatHeaderLen]
	copy(h[0:8], flatMagic)
	binary.LittleEndian.PutUint32(h[8:], flatVersion)
	binary.LittleEndian.PutUint32(h[12:], flatProbe)
	binary.LittleEndian.PutUint32(h[16:], flatPage)
	binary.LittleEndian.PutUint32(h[20:], uint32(len(packs)))
	binary.LittleEndian.PutUint64(h[24:], flatPage)
	binary.LittleEndian.PutUint64(h[32:], indexLen)
	binary.LittleEndian.PutUint64(h[40:], dataOff)
	binary.LittleEndian.PutUint64(h[48:], fileSize)
	binary.LittleEndian.PutUint32(h[56:], indexCRC)
	binary.LittleEndian.PutUint32(h[60:], crc32.ChecksumIEEE(h[:60]))
	return out, nil
}

// packEntry serializes one entry's index record (blockOff zeroed, to be
// patched once the layout is known) and data block.
func packEntry(e *Entry) (struct {
	index []byte
	block []byte
}, error) {
	var out struct {
		index []byte
		block []byte
	}
	syn, err := synopsis.Resolve(e.Synopsis)
	if err != nil {
		return out, fmt.Errorf("catalog: pack %v: %w", e.Key, err)
	}
	var (
		family  uint32
		n       int
		terms   int
		cost    float64
		hasRoot bool
		root    float64
		block   []byte
	)
	switch q := e.Querier.(type) {
	case *query.HistogramQuerier:
		h, ok := syn.(*hist.Histogram)
		if !ok {
			return out, fmt.Errorf("catalog: pack %v: histogram querier over %T synopsis", e.Key, syn)
		}
		var starts, ends []int
		var reps, prefix []float64
		n, starts, ends, reps, prefix = q.Arrays()
		if n != h.N || len(starts) != len(h.Buckets) {
			return out, fmt.Errorf("catalog: pack %v: querier and synopsis disagree", e.Key)
		}
		family, terms, cost = flatFamilyHistogram, len(starts), h.Cost
		block = make([]byte, 0, histBlockLen(uint64(terms)))
		for _, v := range starts {
			block = binary.LittleEndian.AppendUint64(block, uint64(v))
		}
		for _, v := range ends {
			block = binary.LittleEndian.AppendUint64(block, uint64(v))
		}
		block = appendF64s(block, reps)
		for _, b := range h.Buckets {
			block = binary.LittleEndian.AppendUint64(block, math.Float64bits(b.Cost))
		}
		block = appendF64s(block, prefix)
	case *query.WaveletQuerier:
		w, ok := syn.(*wavelet.Synopsis)
		if !ok {
			return out, fmt.Errorf("catalog: pack %v: wavelet querier over %T synopsis", e.Key, syn)
		}
		var indices []int
		var values []float64
		var pos []int32
		n, root, hasRoot, indices, values, pos = q.Arrays()
		details := len(indices)
		terms = details
		if hasRoot {
			terms++
		}
		if n != w.N || terms != len(w.Indices) {
			return out, fmt.Errorf("catalog: pack %v: querier and synopsis disagree", e.Key)
		}
		family, cost = flatFamilyWavelet, w.Cost
		block = make([]byte, 0, waveletBlockLen(uint64(details), uint64(n)))
		for _, v := range indices {
			block = binary.LittleEndian.AppendUint64(block, uint64(v))
		}
		block = appendF64s(block, values)
		if n <= query.WaveletDenseLimit {
			if len(pos) != n {
				return out, fmt.Errorf("catalog: pack %v: querier has no dense position table", e.Key)
			}
			for _, p := range pos {
				block = binary.LittleEndian.AppendUint32(block, uint32(p))
			}
			for pad := align8(4*uint64(n)) - 4*uint64(n); pad > 0; pad-- {
				block = append(block, 0)
			}
		}
	default:
		return out, fmt.Errorf("catalog: pack %v: unpackable querier %T", e.Key, e.Querier)
	}
	key := e.Key.Filename()
	if len(key) > maxFlatKeyLen {
		return out, fmt.Errorf("catalog: pack %v: key filename longer than %d", e.Key, maxFlatKeyLen)
	}

	idx := make([]byte, 0, 72+len(key))
	idx = binary.LittleEndian.AppendUint32(idx, uint32(len(key)))
	idx = append(idx, key...)
	idx = binary.LittleEndian.AppendUint32(idx, family)
	idx = binary.LittleEndian.AppendUint64(idx, uint64(n))
	idx = binary.LittleEndian.AppendUint64(idx, uint64(terms))
	idx = binary.LittleEndian.AppendUint64(idx, math.Float64bits(cost))
	idx = binary.LittleEndian.AppendUint64(idx, uint64(e.Bytes))
	idx = binary.LittleEndian.AppendUint64(idx, 0) // blockOff, patched later
	idx = binary.LittleEndian.AppendUint64(idx, uint64(len(block)))
	idx = binary.LittleEndian.AppendUint32(idx, crc32.ChecksumIEEE(block))
	if family == flatFamilyWavelet {
		hr := uint32(0)
		if hasRoot {
			hr = 1
		}
		idx = binary.LittleEndian.AppendUint32(idx, hr)
		idx = binary.LittleEndian.AppendUint64(idx, math.Float64bits(root))
	}
	out.index, out.block = idx, block
	return out, nil
}

// blockOff sits at a fixed distance from the record's END (the tail
// fields after it are fixed-width per family), so the patcher need not
// re-parse the variable-length head.
func blockOffTailOffset(index []byte) int {
	// tail after blockOff: u64 blockLen + u32 blockCRC [+ u32 hasRoot + f64 root]
	family := binary.LittleEndian.Uint32(index[4+binary.LittleEndian.Uint32(index):])
	tail := 8 + 4
	if family == flatFamilyWavelet {
		tail += 4 + 8
	}
	return len(index) - tail - 8
}

func patchBlockOff(index []byte, off uint64) {
	binary.LittleEndian.PutUint64(index[blockOffTailOffset(index):], off)
}

func appendF64s(b []byte, vs []float64) []byte {
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

// ---- opening ----

// OpenFlat maps a flat catalog file and parses and validates its header
// and index, returning entries ready to attach to a Catalog. The data
// section is not read yet: each entry validates its own block (CRC and
// shape) on first fetch. Files from a newer format version fail with
// ErrFlatVersion; hosts that cannot view the format fail with
// ErrFlatUnsupported — both errors the boot path treats as "use the
// codec path", not as corruption.
func OpenFlat(path string) (*Flat, error) {
	if !hostFlatCapable() {
		return nil, ErrFlatUnsupported
	}
	fd, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fd.Close()
	st, err := fd.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < flatPage {
		return nil, fmt.Errorf("catalog: flat file %s: %d bytes, shorter than one page", path, size)
	}
	data, unmap, err := mapFile(fd, size)
	if err != nil {
		return nil, fmt.Errorf("catalog: flat file %s: %w", path, err)
	}
	if err := checkViewable(data); err != nil {
		unmap()
		return nil, fmt.Errorf("catalog: flat file %s: %w", path, err)
	}
	f := &Flat{path: path, data: data, unmap: unmap}
	if err := f.parse(); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

func (f *Flat) parse() error {
	data := f.data
	if len(data) >= 8 && string(data[:8]) != flatMagic {
		return fmt.Errorf("catalog: %s is not a flat catalog (bad magic)", f.path)
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != flatVersion {
		if v > flatVersion {
			return fmt.Errorf("%w: file version %d, binary supports %d", ErrFlatVersion, v, flatVersion)
		}
		return fmt.Errorf("catalog: flat file %s: unsupported version %d", f.path, v)
	}
	if got := binary.LittleEndian.Uint32(data[60:]); got != crc32.ChecksumIEEE(data[:60]) {
		return fmt.Errorf("catalog: flat file %s: header checksum mismatch", f.path)
	}
	if p := binary.LittleEndian.Uint32(data[12:]); p != flatProbe {
		return fmt.Errorf("catalog: flat file %s: bad endianness probe %#x", f.path, p)
	}
	if p := binary.LittleEndian.Uint32(data[16:]); p != flatPage {
		return fmt.Errorf("catalog: flat file %s: page size %d, want %d", f.path, p, flatPage)
	}
	count := binary.LittleEndian.Uint32(data[20:])
	indexOff := binary.LittleEndian.Uint64(data[24:])
	indexLen := binary.LittleEndian.Uint64(data[32:])
	dataOff := binary.LittleEndian.Uint64(data[40:])
	fileSize := binary.LittleEndian.Uint64(data[48:])
	if count > maxFlatEntries {
		return fmt.Errorf("catalog: flat file %s: %d entries exceeds the %d cap", f.path, count, maxFlatEntries)
	}
	if fileSize != uint64(len(data)) {
		return fmt.Errorf("catalog: flat file %s: header says %d bytes, file has %d (truncated?)", f.path, fileSize, len(data))
	}
	if indexOff != flatPage || indexLen > fileSize-indexOff || dataOff != alignPage(indexOff+indexLen) || dataOff > fileSize {
		return fmt.Errorf("catalog: flat file %s: inconsistent section offsets", f.path)
	}
	index := data[indexOff : indexOff+indexLen]
	if got := binary.LittleEndian.Uint32(data[56:]); got != crc32.ChecksumIEEE(index) {
		return fmt.Errorf("catalog: flat file %s: index checksum mismatch", f.path)
	}

	seen := make(map[Key]bool, count)
	r := flatReader{buf: index}
	nextBlock := dataOff
	for i := uint32(0); i < count; i++ {
		rec, err := f.parseRecord(&r, seen, nextBlock, fileSize)
		if err != nil {
			return err
		}
		nextBlock = alignPage(rec.blockOff + rec.blockLen)
		entry, err := f.buildEntry(rec)
		if err != nil {
			return err
		}
		f.entries = append(f.entries, entry)
	}
	if len(r.buf) != 0 {
		return fmt.Errorf("catalog: flat file %s: %d trailing index bytes", f.path, len(r.buf))
	}
	return nil
}

// parseRecord reads and validates one index record. Blocks must appear
// in file order, page-aligned, non-overlapping, inside the data section.
func (f *Flat) parseRecord(r *flatReader, seen map[Key]bool, minBlock, fileSize uint64) (flatRec, error) {
	var rec flatRec
	bad := func(format string, args ...any) (flatRec, error) {
		return rec, fmt.Errorf("catalog: flat file %s: %s", f.path, fmt.Sprintf(format, args...))
	}
	keyLen := r.u32()
	if r.err == nil && keyLen > maxFlatKeyLen {
		return bad("index key length %d exceeds the %d cap", keyLen, maxFlatKeyLen)
	}
	keyBytes := r.bytes(int(keyLen))
	rec.family = r.u32()
	n := r.u64()
	terms := r.u64()
	rec.cost = r.f64()
	env := r.u64()
	rec.blockOff = r.u64()
	rec.blockLen = r.u64()
	rec.blockCRC = r.u32()
	if r.err == nil && rec.family == flatFamilyWavelet {
		rec.hasRoot = r.u32() != 0
		rec.root = r.f64()
	}
	if r.err != nil {
		return bad("truncated index record: %v", r.err)
	}
	name := string(keyBytes)
	key, err := ParseFilename(name)
	if err != nil {
		return bad("index record key: %v", err)
	}
	if seen[key] {
		return bad("duplicate entry %v", key)
	}
	seen[key] = true
	rec.key, rec.name = key, name
	if n < 1 || n > maxFlatDomain || terms > n || env > fileSize {
		return bad("entry %v: implausible dimensions (n=%d terms=%d)", key, n, terms)
	}
	rec.n, rec.terms, rec.envBytes = int(n), int(terms), int(env)
	var wantLen uint64
	switch rec.family {
	case flatFamilyHistogram:
		if key.Family != FamilyHistogram {
			return bad("entry %v: family code %d disagrees with key", key, rec.family)
		}
		if terms < 1 {
			return bad("entry %v: histogram with no buckets", key)
		}
		wantLen = histBlockLen(terms)
	case flatFamilyWavelet:
		if key.Family != FamilyWavelet {
			return bad("entry %v: family code %d disagrees with key", key, rec.family)
		}
		if n&(n-1) != 0 {
			return bad("entry %v: wavelet domain %d not a power of two", key, n)
		}
		if rec.hasRoot && terms < 1 {
			return bad("entry %v: root recorded but zero terms", key)
		}
		details := terms
		if rec.hasRoot {
			details--
		}
		wantLen = waveletBlockLen(details, n)
	default:
		return bad("entry %v: unknown family code %d", key, rec.family)
	}
	if rec.blockLen != wantLen {
		return bad("entry %v: block length %d, layout prescribes %d", key, rec.blockLen, wantLen)
	}
	if rec.blockOff%flatPage != 0 || rec.blockOff < minBlock || rec.blockOff > fileSize || rec.blockLen > fileSize-rec.blockOff {
		return bad("entry %v: block [%d, +%d) outside the data section", key, rec.blockOff, rec.blockLen)
	}
	return rec, nil
}

// buildEntry constructs the catalog entry for a parsed record: the view
// querier over the mapped arrays (shape-safe by the offset checks; the
// content checks run lazily in ensure) and the synopsis facade.
func (f *Flat) buildEntry(rec flatRec) (*Entry, error) {
	lazy := &flatLazy{f: f, rec: rec}
	var q query.Querier
	var err error
	switch rec.family {
	case flatFamilyHistogram:
		starts, ends, reps, _, prefix := f.histViews(&lazy.rec)
		q, err = query.NewHistogramView(rec.n, starts, ends, reps, prefix)
	case flatFamilyWavelet:
		indices, values, pos := f.waveletViews(&lazy.rec)
		q, err = query.NewWaveletView(rec.n, rec.root, rec.hasRoot, indices, values, pos)
	}
	if err != nil {
		return nil, fmt.Errorf("catalog: flat file %s: entry %v: %w", f.path, rec.key, err)
	}
	syn := &flatSyn{q: q, n: rec.n, terms: rec.terms, cost: rec.cost, lazy: lazy}
	return &Entry{Key: rec.key, Synopsis: syn, Bytes: rec.envBytes, Querier: q, lazy: lazy}, nil
}

// AttachFlat registers every flat entry in the catalog (replacing any
// existing entries under the same keys) and returns how many were
// attached. warnf, when non-nil, receives a line per entry later found
// corrupt at fetch time (the entry is withdrawn, not served).
func (c *Catalog) AttachFlat(f *Flat, warnf func(format string, args ...any)) int {
	c.mu.Lock()
	for _, e := range f.entries {
		e.lazy.warnf = warnf
		c.entries[e.Key] = e
	}
	c.mu.Unlock()
	return len(f.entries)
}

// BootDir is the catalog boot path shared by psynd and tests: if dir
// holds a readable flat catalog, attach it and codec-load only the
// .psyn files it does not cover; otherwise (no flat file, a newer
// format version, an unsupported host, or any validation failure) warn
// when warranted and codec-load everything. The returned Flat is nil
// when the codec path loaded everything; callers keep it open for the
// life of the catalog.
func BootDir(c *Catalog, dir string, warnf func(format string, args ...any)) (f *Flat, flatN, codecN int, err error) {
	if warnf == nil {
		warnf = func(string, ...any) {}
	}
	path := FlatPath(dir)
	f, ferr := OpenFlat(path)
	if ferr != nil {
		if !os.IsNotExist(ferr) {
			warnf("flat catalog %s unusable (%v); falling back to .psyn decode", path, ferr)
		}
		n, err := c.LoadDir(dir)
		return nil, 0, n, err
	}
	flatN = c.AttachFlat(f, warnf)
	covered := make(map[string]bool, flatN)
	for _, e := range f.entries {
		covered[e.lazy.rec.name] = true
	}
	codecN, err = c.LoadDirFunc(dir, func(name string) bool { return covered[name] })
	if err != nil {
		return f, flatN, codecN, err
	}
	return f, flatN, codecN, nil
}

// flatReader is a bounds-checked little-endian cursor over the index
// section (same poisoning discipline as the codec's binReader).
type flatReader struct {
	buf []byte
	err error
}

func (r *flatReader) u32() uint32 {
	if r.err == nil && len(r.buf) < 4 {
		r.err = fmt.Errorf("truncated")
	}
	if r.err != nil {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf)
	r.buf = r.buf[4:]
	return v
}

func (r *flatReader) u64() uint64 {
	if r.err == nil && len(r.buf) < 8 {
		r.err = fmt.Errorf("truncated")
	}
	if r.err != nil {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v
}

func (r *flatReader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *flatReader) bytes(n int) []byte {
	if r.err == nil && (n < 0 || len(r.buf) < n) {
		r.err = fmt.Errorf("truncated")
	}
	if r.err != nil {
		return nil
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}
