//go:build !unix

package catalog

import (
	"fmt"
	"io"
	"os"
	"unsafe"
)

// mapFile on platforms without syscall.Mmap reads the whole file into
// an 8-byte-aligned buffer (allocated as []uint64 so the alignment the
// in-place array views require holds by construction). Slower than a
// real mapping but behaviorally identical; the flat boot path still
// skips all decoding and recompilation.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size <= 0 || size != int64(int(size)) {
		return nil, nil, fmt.Errorf("unmappable size %d", size)
	}
	words := make([]uint64, (size+7)/8)
	buf := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), len(words)*8)[:size]
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, nil, err
	}
	return buf, func() error { return nil }, nil
}
