package catalog

import (
	"fmt"
	"unsafe"
)

// In-place array views over the flat catalog mapping. These are the
// point of the format: a querier's arrays are the file's bytes, so boot
// cost is independent of catalog size. Safety rests on invariants
// enforced before any view is taken — OpenFlat refuses non-64-bit or
// big-endian hosts (hostFlatCapable), checks the mapping's base
// alignment, and bounds- and alignment-checks every block offset
// against the file before buildEntry slices into it.

// checkViewable verifies the mapping base is 8-byte aligned (true for
// real mmap and for the []uint64-backed fallback; checked anyway so a
// violation is a clean error, not a misaligned load on some future
// platform).
func checkViewable(data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("empty mapping")
	}
	if uintptr(unsafe.Pointer(&data[0]))%8 != 0 {
		return fmt.Errorf("mapping base not 8-byte aligned")
	}
	return nil
}

// viewInts views count little-endian int64s at off as []int (the host
// is 64-bit by the open-time guard). off must be 8-aligned and in
// bounds — the index parser guarantees both.
func viewInts(data []byte, off, count uint64) []int {
	if count == 0 {
		return nil
	}
	return unsafe.Slice((*int)(unsafe.Pointer(&data[off])), count)
}

// viewF64s views count float64s at off.
func viewF64s(data []byte, off, count uint64) []float64 {
	if count == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&data[off])), count)
}

// viewI32s views count int32s at off (4-byte alignment suffices; every
// flat offset handed here is 8-aligned anyway).
func viewI32s(data []byte, off, count uint64) []int32 {
	if count == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&data[off])), count)
}
