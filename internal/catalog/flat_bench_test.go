package catalog

import (
	"fmt"
	"math/rand"
	"testing"

	"probsyn/internal/hist"
	"probsyn/internal/synopsis"
	"probsyn/internal/wavelet"
)

// benchCatalogDir materializes a 64-entry catalog directory — .psyn
// envelopes plus the packed flat file — shared by the two boot
// benchmarks so they measure the same logical catalog. The synopses are
// serving-sized (kilobucket histograms, kiloterm wavelets with dense
// lookup tables): the codec path's decode-and-recompile cost scales
// with these sizes while the flat path's attach cost does not, which is
// the scaling the format exists to fix.
func benchCatalogDir(b *testing.B) string {
	b.Helper()
	rng := rand.New(rand.NewSource(51))
	c := New()
	for i := 0; i < 64; i++ {
		var (
			syn synopsis.Synopsis
			fam string
		)
		if i%2 == 0 {
			h := randHistogramB(rng, 8192)
			syn, fam = h, FamilyHistogram
		} else {
			w := randWaveletB(rng, 16384)
			syn, fam = w, FamilyWavelet
		}
		key, err := NewKey(fmt.Sprintf("bench%03d", i), fam, "SSE", 1+i, 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := c.Put(key, syn); err != nil {
			b.Fatal(err)
		}
	}
	dir := b.TempDir()
	if _, err := c.SaveAll(dir); err != nil {
		b.Fatal(err)
	}
	if _, err := Pack(FlatPath(dir), c.List()); err != nil {
		b.Fatal(err)
	}
	return dir
}

// firstQuery performs the boot's first read — a Get (paying any lazy
// validation) and an estimate — so both benchmarks measure
// time-to-first-answer, not time-to-attach.
func firstQuery(b *testing.B, c *Catalog) {
	b.Helper()
	key, err := NewKey("bench000", FamilyHistogram, "SSE", 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	e, ok := c.Get(key)
	if !ok {
		b.Fatal("boot lost the probe entry")
	}
	if v := e.Querier.Estimate(7); v != v {
		b.Fatal("NaN estimate")
	}
}

// BenchmarkCatalogBootFlat measures a replica restart over the flat
// file: open + header/index validation + attach + first query. The
// acceptance bar (ISSUE 9, gated in CI against BENCH_PR9.json) is >=20x
// faster than BenchmarkCatalogBootCodec on this same 64-entry catalog.
func BenchmarkCatalogBootFlat(b *testing.B) {
	dir := benchCatalogDir(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := New()
		f, flatN, _, err := BootDir(c, dir, nil)
		if err != nil {
			b.Fatal(err)
		}
		if f == nil || flatN != 64 {
			b.Fatalf("flat boot fell back (flatN = %d)", flatN)
		}
		firstQuery(b, c)
		f.Close()
	}
}

// BenchmarkCatalogBootCodec measures the same restart through the codec
// path: decode every envelope, recompile every querier, first query.
func BenchmarkCatalogBootCodec(b *testing.B) {
	dir := benchCatalogDir(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := New()
		n, err := c.LoadDir(dir)
		if err != nil {
			b.Fatal(err)
		}
		if n != 64 {
			b.Fatalf("loaded %d entries, want 64", n)
		}
		firstQuery(b, c)
	}
}

// Benchmark-sized random synopses: serving-sized, so the codec path has
// its real work to do (a 1024-bucket histogram and a 2048-term wavelet
// over a 16K domain are plausible served sizes under the heavy-traffic
// north star).
func randHistogramB(rng *rand.Rand, n int) *hist.Histogram {
	h := &hist.Histogram{N: n}
	b := 1024
	width := n / b
	for k := 0; k < b; k++ {
		end := (k+1)*width - 1
		if k == b-1 {
			end = n - 1
		}
		cost := rng.Float64()
		h.Buckets = append(h.Buckets, hist.Bucket{Start: k * width, End: end, Rep: rng.NormFloat64(), Cost: cost})
		h.Cost += cost
	}
	return h
}

func randWaveletB(rng *rand.Rand, n int) *wavelet.Synopsis {
	w := &wavelet.Synopsis{N: n, Cost: rng.Float64()}
	for i := 0; i < n; i += 8 {
		w.Indices = append(w.Indices, i)
		w.Values = append(w.Values, rng.NormFloat64())
	}
	return w
}
