// Package catalog is the serving layer's synopsis registry: an in-memory,
// read-mostly map from (dataset, family, metric, budget) to a built
// synopsis, with a disk format that is nothing but the existing versioned
// synopsis envelope under a key-encoding filename. A long-lived server
// loads a catalog directory at startup, answers estimates from memory
// under an RWMutex, and persists each newly built synopsis back to the
// directory; offline tools (cmd/psyn, the eval harness) write the same
// files, so a synopsis built anywhere is servable everywhere — and since
// the engine's builds are deterministic, replicas that build the same key
// produce byte-identical catalog files.
package catalog

import (
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"probsyn/internal/metric"
	"probsyn/internal/query"
	"probsyn/internal/synopsis"
)

// The two synopsis families, as catalog key vocabulary. These match the
// codec type names registered by internal/synopsis.
const (
	FamilyHistogram = "histogram"
	FamilyWavelet   = "wavelet"
)

// Key identifies one synopsis in the catalog: which dataset it
// summarizes, which family it is, which error metric (with its sanity
// constant, for relative-error metrics) it was optimized for, and its
// term budget.
type Key struct {
	Dataset string `json:"dataset"`
	Family  string `json:"family"`
	Metric  string `json:"metric"`
	Budget  int    `json:"budget"`
	// C is the relative-error sanity constant the synopsis was built
	// with; always 0 for metrics that do not use it, so equal builds
	// compare equal. Synopses for the same metric under different C
	// optimize different objectives and must not be served
	// interchangeably.
	C float64 `json:"c,omitempty"`
	// Q is the approximate restricted wavelet DP's incoming-value grid
	// size (0 = exact build). Exact and quantized builds of the same
	// (dataset, metric, budget) are different synopses — the quantized
	// one carries bounded suboptimality — so they catalog under distinct
	// keys and coexist.
	Q int `json:"q,omitempty"`
	// Shard/Shards identify one piece of a k-way sharded build: this
	// entry is shard Shard (0-based) of Shards, covering the global items
	// [Shard*n/Shards, (Shard+1)*n/Shards) over its own local domain.
	// Shards == 0 (the zero value) is an ordinary unsharded synopsis;
	// pieces and the merged whole catalog under distinct keys and
	// coexist. Budget stays the global budget B the sharded build split,
	// so a cluster node can locate every sibling piece from any one key.
	Shard  int `json:"shard,omitempty"`
	Shards int `json:"shards,omitempty"`
}

// NewKey canonicalizes and validates the fields of a key: the metric is
// round-tripped through metric.Parse so "SSE-fixed" and friends are
// spelled exactly one way, c is zeroed for metrics that ignore it, the
// family must be a known one, and dataset must be non-empty.
func NewKey(dataset, family, metricName string, budget int, c float64) (Key, error) {
	if dataset == "" {
		return Key{}, fmt.Errorf("catalog: empty dataset name")
	}
	if family != FamilyHistogram && family != FamilyWavelet {
		return Key{}, fmt.Errorf("catalog: unknown family %q (want %q or %q)", family, FamilyHistogram, FamilyWavelet)
	}
	k, err := metric.Parse(metricName)
	if err != nil {
		return Key{}, fmt.Errorf("catalog: %w", err)
	}
	if budget < 1 {
		return Key{}, fmt.Errorf("catalog: budget %d, want >= 1", budget)
	}
	if !k.Relative() {
		c = 0
	} else if c <= 0 {
		return Key{}, fmt.Errorf("catalog: metric %v needs a sanity constant c > 0, got %g", k, c)
	}
	return Key{Dataset: dataset, Family: family, Metric: k.String(), Budget: budget, C: c}, nil
}

// NewKeyQ is NewKey for quantized builds: q is the approximate restricted
// wavelet DP's grid size. q == 0 is an exact build (identical to NewKey);
// otherwise q must be >= 2, the family must be wavelet, and the metric
// must be one the restricted DP prices (not plain SSE, whose greedy build
// is already exact), mirroring probsyn.WithQuantize's validation so an
// unkeyable build is rejected at the key, before any work runs.
func NewKeyQ(dataset, family, metricName string, budget int, c float64, q int) (Key, error) {
	key, err := NewKey(dataset, family, metricName, budget, c)
	if err != nil || q == 0 {
		return key, err
	}
	if q < 2 {
		return Key{}, fmt.Errorf("catalog: quantization q = %d, want 0 (exact) or >= 2", q)
	}
	if family != FamilyWavelet {
		return Key{}, fmt.Errorf("catalog: incoming-value quantization is a wavelet option, not a %s one", family)
	}
	if key.Metric == metric.SSE.String() {
		return Key{}, fmt.Errorf("catalog: the SSE wavelet build is greedy-exact; quantization applies to the restricted DP metrics")
	}
	key.Q = q
	return key, nil
}

// Piece returns the catalog key of shard s of a k-way sharded build of
// this key's synopsis. The receiver must be a whole-synopsis key; the
// shard index must be in range.
func (k Key) Piece(s, shards int) (Key, error) {
	if k.Shards != 0 {
		return Key{}, fmt.Errorf("catalog: %v is already a shard piece", k)
	}
	if shards < 2 {
		return Key{}, fmt.Errorf("catalog: shard count %d, want >= 2", shards)
	}
	if s < 0 || s >= shards {
		return Key{}, fmt.Errorf("catalog: shard index %d outside [0, %d)", s, shards)
	}
	k.Shard, k.Shards = s, shards
	return k, nil
}

// Whole inverts Piece: the key of the merged synopsis a piece belongs to.
func (k Key) Whole() Key {
	k.Shard, k.Shards = 0, 0
	return k
}

// String renders the key in its canonical human-readable form.
func (k Key) String() string {
	m := k.Metric
	if k.C != 0 {
		m += fmt.Sprintf("(c=%g)", k.C)
	}
	if k.Q != 0 {
		m += fmt.Sprintf("(q=%d)", k.Q)
	}
	s := fmt.Sprintf("%s/%s/%s/%d", k.Dataset, k.Family, m, k.Budget)
	if k.Shards != 0 {
		s += fmt.Sprintf("#s%dof%d", k.Shard, k.Shards)
	}
	return s
}

// Filename encodes the key as a catalog filename:
// <dataset>--<family>--<metric>[--c<C>][--q<Q>][--s<i>of<k>]--b<budget>.psyn,
// with the dataset percent-escaped so arbitrary names cannot collide
// with the separators or escape the directory. The c segment appears
// exactly for relative-error metrics, so builds under different sanity
// constants land in different files; the q segment appears exactly for
// quantized builds, so an approximate synopsis can never shadow the
// exact one; the s segment appears exactly for shard pieces, so a
// piece can never shadow the whole.
func (k Key) Filename() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s--%s--%s", url.PathEscape(k.Dataset), k.Family, k.Metric)
	if k.C != 0 {
		fmt.Fprintf(&sb, "--c%g", k.C)
	}
	if k.Q != 0 {
		fmt.Fprintf(&sb, "--q%d", k.Q)
	}
	if k.Shards != 0 {
		fmt.Fprintf(&sb, "--s%dof%d", k.Shard, k.Shards)
	}
	fmt.Fprintf(&sb, "--b%d.psyn", k.Budget)
	return sb.String()
}

// ParseFilename inverts Filename. Files that do not follow the encoding
// (or fail key validation) are rejected, so a catalog directory can hold
// unrelated files without confusing a load.
func ParseFilename(name string) (Key, error) {
	base, ok := strings.CutSuffix(name, ".psyn")
	if !ok {
		return Key{}, fmt.Errorf("catalog: %q is not a catalog file (want .psyn)", name)
	}
	// Family, metric, the optional c and q, and budget never contain the
	// separator, so they are the trailing segments; anything before them
	// (an escaped dataset name may itself contain "--") rejoins into the
	// dataset.
	parts := strings.Split(base, "--")
	if len(parts) < 4 || !strings.HasPrefix(parts[len(parts)-1], "b") {
		return Key{}, fmt.Errorf("catalog: filename %q does not encode a key", name)
	}
	budget, err := strconv.Atoi(parts[len(parts)-1][1:])
	if err != nil {
		return Key{}, fmt.Errorf("catalog: filename %q: bad budget: %w", name, err)
	}
	tail := 2 // trailing segments after family: metric [c] [q] [s] budget
	shard, shards := 0, 0
	if seg := parts[len(parts)-tail]; strings.HasPrefix(seg, "s") && strings.Contains(seg, "of") {
		i, n, _ := strings.Cut(seg[1:], "of")
		if shard, err = strconv.Atoi(i); err != nil {
			return Key{}, fmt.Errorf("catalog: filename %q: bad shard segment: %w", name, err)
		}
		if shards, err = strconv.Atoi(n); err != nil {
			return Key{}, fmt.Errorf("catalog: filename %q: bad shard segment: %w", name, err)
		}
		tail++
	}
	q := 0
	if seg := parts[len(parts)-tail]; strings.HasPrefix(seg, "q") {
		if q, err = strconv.Atoi(seg[1:]); err != nil {
			return Key{}, fmt.Errorf("catalog: filename %q: bad quantization: %w", name, err)
		}
		tail++
	}
	c := 0.0
	if seg := parts[len(parts)-tail]; strings.HasPrefix(seg, "c") {
		if c, err = strconv.ParseFloat(seg[1:], 64); err != nil {
			return Key{}, fmt.Errorf("catalog: filename %q: bad sanity constant: %w", name, err)
		}
		tail++
	}
	if len(parts) < tail+2 {
		return Key{}, fmt.Errorf("catalog: filename %q does not encode a key", name)
	}
	dataset, err := url.PathUnescape(strings.Join(parts[:len(parts)-tail-1], "--"))
	if err != nil {
		return Key{}, fmt.Errorf("catalog: filename %q: %w", name, err)
	}
	key, err := NewKeyQ(dataset, parts[len(parts)-tail-1], parts[len(parts)-tail], budget, c, q)
	if err != nil {
		return Key{}, err
	}
	if shard != 0 || shards != 0 {
		if key, err = key.Piece(shard, shards); err != nil {
			return Key{}, err
		}
	}
	// A c segment on a non-relative metric (or a missing one on a
	// relative metric), or c, q and s segments out of order, is not a
	// name Filename produces; reject it so the round trip stays
	// injective.
	if key.Filename() != name {
		return Key{}, fmt.Errorf("catalog: filename %q does not round-trip its key %v", name, key)
	}
	return key, nil
}

// Entry is one cataloged synopsis with its serialized size (the bytes the
// envelope occupies on disk and on replication wires) and its compiled
// querier — the O(log)-time zero-allocation read path every query answers
// through.
type Entry struct {
	Key      Key
	Synopsis synopsis.Synopsis
	Bytes    int
	// Querier is compiled from Synopsis once, at publish time, and is
	// bit-identical to the synopsis's own Estimate/RangeSum. It is never
	// invalidated in place: a republish (a live mutation, a rebuilt
	// budget) installs a whole new Entry, querier included, so a reader
	// holding this entry always has the querier matching this synopsis.
	Querier query.Querier
	// lazy, when non-nil, is the entry's flat-catalog backing: its data
	// block's checksum and shape validation are deferred to the first
	// Get, so attaching a large flat catalog costs nothing per entry
	// until the entry is actually served. Codec-loaded entries have nil
	// lazy (their envelope CRC was checked at decode time).
	lazy *flatLazy
}

// verify runs the entry's deferred validation, if any (memoized).
func (e *Entry) verify() error {
	if e.lazy == nil {
		return nil
	}
	return e.lazy.ensure()
}

// Catalog is the in-memory registry. Reads (Get, List, Len) take the
// read lock so estimate traffic scales across cores; Put takes the write
// lock only for the map insert — synopsis construction and serialization
// happen outside it.
type Catalog struct {
	mu      sync.RWMutex
	entries map[Key]*Entry
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{entries: make(map[Key]*Entry)}
}

// Put registers a synopsis under the key, replacing any previous entry
// (rebuilds of the same key are idempotent by determinism, so replacing
// is safe). It serializes once to record the entry's size and returns
// the entry; the encoded bytes are returned alongside so callers
// persisting to disk do not marshal twice.
func (c *Catalog) Put(key Key, syn synopsis.Synopsis) (*Entry, []byte, error) {
	blob, err := synopsis.Marshal(syn)
	if err != nil {
		return nil, nil, err
	}
	return c.PutEncoded(key, syn, blob), blob, nil
}

// PutEncoded is Put for callers that already hold the synopsis's
// envelope bytes (a loaded catalog file, a just-persisted build): the
// entry records the blob's size without re-marshaling, and the blob is
// not retained — the catalog keeps only the decoded synopsis.
func (c *Catalog) PutEncoded(key Key, syn synopsis.Synopsis, blob []byte) *Entry {
	e := &Entry{Key: key, Synopsis: syn, Bytes: len(blob), Querier: query.Compile(syn)}
	c.mu.Lock()
	c.entries[key] = e
	c.mu.Unlock()
	return e
}

// Delete removes the key's entry, if present. The serving layer uses it
// to withdraw entries it can no longer vouch for (a mutation that failed
// after its dataset was persisted): a not_found answer that triggers a
// rebuild over the current data beats silently serving a stale synopsis.
func (c *Catalog) Delete(key Key) {
	c.mu.Lock()
	delete(c.entries, key)
	c.mu.Unlock()
}

// Get returns the entry for the key, if present. A flat-backed entry
// pays its deferred block validation here, on first fetch; one that
// fails (a corrupt data block) is withdrawn and reported not-found —
// not_found triggers a rebuild over the current data, which beats
// serving wrong estimates from a damaged file.
func (c *Catalog) Get(key Key) (*Entry, bool) {
	c.mu.RLock()
	e, ok := c.entries[key]
	c.mu.RUnlock()
	if !ok {
		return nil, false
	}
	if err := e.verify(); err != nil {
		if w := e.lazy.warnf; w != nil {
			w("withdrawing flat catalog entry %v: %v", key, err)
		}
		// Withdraw only if the map still holds this exact entry — a
		// concurrent republish may have already replaced it with a
		// healthy one.
		c.mu.Lock()
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		c.mu.Unlock()
		return nil, false
	}
	return e, true
}

// Len returns the number of cataloged synopses.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}

// List returns the entries sorted by key, for stable listings.
func (c *Catalog) List() []*Entry {
	c.mu.RLock()
	out := make([]*Entry, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, e)
	}
	c.mu.RUnlock()
	sort.Slice(out, func(a, b int) bool { return keyLess(out[a].Key, out[b].Key) })
	return out
}

// keyLess is the catalog's one key ordering: List sorts by it and Pack
// lays flat files out in it, which is what makes packing deterministic —
// the same logical catalog serializes byte-identically wherever it is
// packed.
func keyLess(ka, kb Key) bool {
	if ka.Dataset != kb.Dataset {
		return ka.Dataset < kb.Dataset
	}
	if ka.Family != kb.Family {
		return ka.Family < kb.Family
	}
	if ka.Metric != kb.Metric {
		return ka.Metric < kb.Metric
	}
	if ka.C != kb.C {
		return ka.C < kb.C
	}
	if ka.Q != kb.Q {
		return ka.Q < kb.Q
	}
	if ka.Shards != kb.Shards {
		return ka.Shards < kb.Shards
	}
	if ka.Shard != kb.Shard {
		return ka.Shard < kb.Shard
	}
	return ka.Budget < kb.Budget
}

// Save persists the entry's synopsis into dir under its key-encoded
// filename and returns the path written. It re-marshals the synopsis —
// deliberately: entries do not retain their envelope bytes, because a
// long-lived serving catalog holding both the decoded synopsis and its
// serialized copy would double steady-state memory, and Save runs only
// on the offline SaveAll path where one extra marshal is cheap. The
// write is atomic (WriteBlob), so a crash mid-save cannot leave a
// truncated catalog file behind a valid name.
func (c *Catalog) Save(dir string, e *Entry) (string, error) {
	blob, err := synopsis.Marshal(e.Synopsis)
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, e.Key.Filename())
	if err := WriteBlob(path, blob); err != nil {
		return "", err
	}
	return path, nil
}

// WriteBlob writes an already-encoded envelope to path atomically: into
// a temp file in the same directory, then rename. LoadDir fails loudly
// on a corrupt catalog file, so persistence must never expose a
// partially written one — a crash leaves at worst a stray .tmp, which
// LoadDir skips.
func WriteBlob(path string, blob []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(blob); err == nil {
		err = tmp.Close()
	} else {
		tmp.Close()
	}
	if err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// SaveAll persists every entry into dir (created if missing), returning
// how many files were written.
func (c *Catalog) SaveAll(dir string) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	n := 0
	for _, e := range c.List() {
		if _, err := c.Save(dir, e); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// LoadDir loads every key-encoded synopsis file in dir into the catalog
// through the envelope decoder, returning how many entries were loaded.
// Files that are not catalog files are skipped; a catalog file whose
// payload fails to decode (or whose envelope type disagrees with the
// family its name claims) is an error — a corrupt catalog must fail
// loudly at startup, not serve wrong estimates.
func (c *Catalog) LoadDir(dir string) (int, error) {
	return c.LoadDirFunc(dir, nil)
}

// LoadDirFunc is LoadDir with a skip predicate over raw filenames:
// files it accepts are not loaded (or even key-parsed — the flat boot
// path skips every file the attached flat catalog already covers, by
// the name string the flat index recorded, so a covered file costs a
// map probe instead of a parse).
func (c *Catalog) LoadDirFunc(dir string, skip func(name string) bool) (int, error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		if skip != nil && skip(de.Name()) {
			continue
		}
		key, err := ParseFilename(de.Name())
		if err != nil {
			continue // not a catalog file
		}
		blob, err := os.ReadFile(filepath.Join(dir, de.Name()))
		if err != nil {
			return n, fmt.Errorf("catalog: %s: %w", de.Name(), err)
		}
		syn, err := synopsis.Unmarshal(blob)
		if err != nil {
			return n, fmt.Errorf("catalog: %s: %w", de.Name(), err)
		}
		if fam := familyOf(syn); fam != key.Family {
			return n, fmt.Errorf("catalog: %s: envelope holds a %s, filename claims %s", de.Name(), fam, key.Family)
		}
		c.PutEncoded(key, syn, blob)
		n++
	}
	return n, nil
}

// familyOf maps a decoded synopsis to its catalog family via the codec
// registry's type names (which double as family names).
func familyOf(s synopsis.Synopsis) string {
	name, err := synopsis.TypeName(s)
	if err != nil {
		return ""
	}
	return name
}

// GroupKeys partitions keys (typically one dataset's catalog listing)
// into per-frontier groups — equal (Dataset, Family, Metric, C) — in
// first-appearance order, keys keeping their input order within each
// group. Every budget in one group is served by one retained frontier,
// so this grouping is the unit of live revalidation: the server's
// mutation path and psyn -append share it rather than each re-deriving
// what "one frontier's worth of keys" means.
func GroupKeys(keys []Key) [][]Key {
	idx := make(map[Key]int, len(keys))
	var groups [][]Key
	for _, k := range keys {
		gk := k
		gk.Budget = 0
		g, ok := idx[gk]
		if !ok {
			g = len(groups)
			idx[gk] = g
			groups = append(groups, nil)
		}
		groups[g] = append(groups[g], k)
	}
	return groups
}

// ExtractBudget extracts the budget-b synopsis from a frontier, with
// over-domain budgets clamped to the frontier's Bmax — the
// repeat-the-clamped-max behavior every publisher (server sweeps and
// mutations, offline revalidation) shares with single builds.
func ExtractBudget(fr synopsis.Frontier, b int) (synopsis.Synopsis, error) {
	if bm := fr.Bmax(); b > bm {
		b = bm
	}
	return fr.Synopsis(b)
}

// WriteFile serializes a synopsis to path through the versioned codec:
// the JSON envelope when the path ends in .json, the binary envelope
// otherwise. It returns the byte count written. This is the one save
// path shared by cmd/psyn, the eval harness, and the server's catalog
// persistence.
func WriteFile(path string, syn synopsis.Synopsis) (int, error) {
	var (
		data []byte
		err  error
	)
	if strings.HasSuffix(path, ".json") {
		data, err = synopsis.MarshalJSON(syn)
	} else {
		data, err = synopsis.Marshal(syn)
	}
	if err != nil {
		return 0, err
	}
	if err := WriteBlob(path, data); err != nil {
		return 0, err
	}
	return len(data), nil
}

// ReadFile loads a synopsis from path through the envelope-sniffing
// decoder — the matching load path.
func ReadFile(path string) (synopsis.Synopsis, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return synopsis.Unmarshal(data)
}
