//go:build unix

package catalog

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only. The returned cleanup unmaps.
// mmap hands back page-aligned memory, which is what lets the flat
// catalog's page-aligned arrays be viewed in place.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size <= 0 || size != int64(int(size)) {
		return nil, nil, fmt.Errorf("unmappable size %d", size)
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("mmap: %w", err)
	}
	return b, func() error { return syscall.Munmap(b) }, nil
}
