package catalog

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"probsyn/internal/hist"
	"probsyn/internal/metric"
	"probsyn/internal/ptest"
	"probsyn/internal/query"
	"probsyn/internal/synopsis"
	"probsyn/internal/wavelet"
)

func buildPair(t *testing.T) (*hist.Histogram, *wavelet.Synopsis) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	src := ptest.RandomValuePDF(rng, 16, 3)
	o := hist.NewSSEValue(src)
	h, err := hist.Optimal(o, 4)
	if err != nil {
		t.Fatal(err)
	}
	w, _, err := wavelet.BuildSSE(src, 5)
	if err != nil {
		t.Fatal(err)
	}
	return h, w
}

func TestNewKeyCanonicalizesAndValidates(t *testing.T) {
	k, err := NewKey("web-logs", FamilyHistogram, "SSE-fixed", 8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if k.Metric != metric.SSEFixed.String() {
		t.Fatalf("metric canonicalized to %q", k.Metric)
	}
	if k.C != 0 {
		t.Fatalf("C = %g for a non-relative metric, want 0", k.C)
	}
	rel, err := NewKey("d", FamilyHistogram, "SSRE", 8, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if rel.C != 0.5 {
		t.Fatalf("C = %g for SSRE, want 0.5", rel.C)
	}
	bad := []struct {
		dataset, family, metric string
		budget                  int
		c                       float64
	}{
		{"", FamilyHistogram, "SSE", 8, 0},
		{"d", "sketch", "SSE", 8, 0},
		{"d", FamilyHistogram, "XXX", 8, 0},
		{"d", FamilyHistogram, "SSE", 0, 0},
		{"d", FamilyHistogram, "SSRE", 8, 0}, // relative metric needs c > 0
	}
	for _, b := range bad {
		if _, err := NewKey(b.dataset, b.family, b.metric, b.budget, b.c); err == nil {
			t.Errorf("NewKey(%q, %q, %q, %d, %g) accepted", b.dataset, b.family, b.metric, b.budget, b.c)
		}
	}
}

func TestNewKeyQValidates(t *testing.T) {
	k, err := NewKeyQ("d", FamilyWavelet, "SAE", 8, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if k.Q != 16 {
		t.Fatalf("Q = %d, want 16", k.Q)
	}
	exact, err := NewKeyQ("d", FamilyWavelet, "SAE", 8, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want, _ := NewKey("d", FamilyWavelet, "SAE", 8, 0); exact != want {
		t.Fatalf("q=0 key %+v != NewKey %+v", exact, want)
	}
	bad := []struct {
		family, metric string
		c              float64
		q              int
	}{
		{FamilyWavelet, "SAE", 0, 1},   // q must be 0 or >= 2
		{FamilyWavelet, "SAE", 0, -3},  // negative q
		{FamilyHistogram, "SAE", 0, 4}, // quantization is wavelet-only
		{FamilyWavelet, "SSE", 0, 4},   // SSE wavelet build is greedy-exact
		{FamilyWavelet, "bogus", 0, 4}, // NewKey validation still applies
		{FamilyWavelet, "SSRE", 0, 4},  // relative metric still needs c
	}
	for _, b := range bad {
		if _, err := NewKeyQ("d", b.family, b.metric, 8, b.c, b.q); err == nil {
			t.Errorf("NewKeyQ(%q, %q, c=%g, q=%d) accepted", b.family, b.metric, b.c, b.q)
		}
	}
	// SSE-fixed is a restricted-DP metric and must key fine.
	if _, err := NewKeyQ("d", FamilyWavelet, "SSE-fixed", 8, 0, 4); err != nil {
		t.Fatalf("SSE-fixed with q: %v", err)
	}
}

func TestFilenameRoundTrip(t *testing.T) {
	keys := []Key{
		{Dataset: "data", Family: FamilyHistogram, Metric: "SSE", Budget: 8},
		{Dataset: "weird--name/v2", Family: FamilyWavelet, Metric: "SSE-fixed", Budget: 100},
		{Dataset: "dots.and spaces", Family: FamilyHistogram, Metric: "MARE", Budget: 1, C: 0.5},
		{Dataset: "d", Family: FamilyWavelet, Metric: "SSRE", Budget: 3, C: 1.25},
		{Dataset: "big--domain", Family: FamilyWavelet, Metric: "SAE", Budget: 32, Q: 64},
		{Dataset: "d", Family: FamilyWavelet, Metric: "SARE", Budget: 5, C: 0.5, Q: 16},
	}
	for _, k := range keys {
		canon, err := NewKeyQ(k.Dataset, k.Family, k.Metric, k.Budget, k.C, k.Q)
		if err != nil {
			t.Fatal(err)
		}
		name := canon.Filename()
		if filepath.Base(name) != name {
			t.Fatalf("filename %q escapes the directory", name)
		}
		back, err := ParseFilename(name)
		if err != nil {
			t.Fatalf("ParseFilename(%q): %v", name, err)
		}
		if back != canon {
			t.Fatalf("round trip %+v -> %q -> %+v", canon, name, back)
		}
	}
	for _, bad := range []string{
		"x.syn", "a--b.psyn", "a--b--c--8.psyn", "a--histogram--SSE--bx.psyn",
		"a--histogram--SSRE--b2.psyn",         // relative metric without its c segment
		"a--histogram--SSE--c0.5--b2.psyn",    // c segment on a metric that ignores it
		"a--histogram--SAE--q4--b2.psyn",      // q segment on a histogram key
		"a--wavelet--SSE--q4--b2.psyn",        // q segment on the greedy-exact SSE build
		"a--wavelet--SAE--q1--b2.psyn",        // q below the minimum grid size
		"a--wavelet--SAE--qx--b2.psyn",        // malformed q
		"a--wavelet--SARE--q4--c0.5--b2.psyn", // c and q out of canonical order
	} {
		if _, err := ParseFilename(bad); err == nil {
			t.Errorf("ParseFilename(%q) accepted", bad)
		}
	}
}

func TestShardKeyRoundTrip(t *testing.T) {
	whole, err := NewKeyQ("cluster--data", FamilyWavelet, "SAE", 12, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		piece, err := whole.Piece(s, 4)
		if err != nil {
			t.Fatal(err)
		}
		if piece.Whole() != whole {
			t.Fatalf("Whole(%+v) = %+v, want %+v", piece, piece.Whole(), whole)
		}
		name := piece.Filename()
		back, err := ParseFilename(name)
		if err != nil {
			t.Fatalf("ParseFilename(%q): %v", name, err)
		}
		if back != piece {
			t.Fatalf("round trip %+v -> %q -> %+v", piece, name, back)
		}
		if back == whole {
			t.Fatalf("piece key %q collides with whole key", name)
		}
	}
	// Piece keys of a histogram build with all optional segments.
	hk, err := NewKey("d", FamilyHistogram, "MARE", 6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	hp, err := hk.Piece(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if back, err := ParseFilename(hp.Filename()); err != nil || back != hp {
		t.Fatalf("round trip %+v -> %q -> %+v (%v)", hp, hp.Filename(), back, err)
	}
	// Invalid piece constructions.
	if _, err := whole.Piece(0, 1); err == nil {
		t.Fatal("k = 1 piece accepted")
	}
	if _, err := whole.Piece(4, 4); err == nil {
		t.Fatal("out-of-range shard index accepted")
	}
	if _, err := whole.Piece(-1, 4); err == nil {
		t.Fatal("negative shard index accepted")
	}
	p, _ := whole.Piece(0, 4)
	if _, err := p.Piece(0, 2); err == nil {
		t.Fatal("piece of a piece accepted")
	}
	// Malformed or misordered shard filename segments.
	for _, bad := range []string{
		"a--histogram--SSE--sof2--b4.psyn",         // missing shard index
		"a--histogram--SSE--s1of--b4.psyn",         // missing shard count
		"a--histogram--SSE--s1of0--b4.psyn",        // zero shard count
		"a--histogram--SSE--s2of2--b4.psyn",        // index out of range
		"a--histogram--SSE--s0of0--b4.psyn",        // degenerate zero segment
		"a--wavelet--SAE--s1of2--q4--b4.psyn",      // s before q
		"a--histogram--MARE--s1of2--c0.5--b4.psyn", // s before c
	} {
		if _, err := ParseFilename(bad); err == nil {
			t.Errorf("ParseFilename(%q) accepted", bad)
		}
	}
	// The injectivity tail guard: a shard segment must not be mistaken
	// for part of a dataset name, nor vice versa.
	ds, err := NewKey("x--s1of2", FamilyHistogram, "SSE", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if back, err := ParseFilename(ds.Filename()); err != nil || back != ds {
		t.Fatalf("dataset containing a shard-like segment: %q -> %+v (%v)", ds.Filename(), back, err)
	}
}

func TestCatalogPutGetList(t *testing.T) {
	h, w := buildPair(t)
	c := New()
	kh := Key{Dataset: "d", Family: FamilyHistogram, Metric: "SSE", Budget: 4}
	kw := Key{Dataset: "d", Family: FamilyWavelet, Metric: "SSE", Budget: 5}
	if _, _, err := c.Put(kh, h); err != nil {
		t.Fatal(err)
	}
	e, blob, err := c.Put(kw, w)
	if err != nil {
		t.Fatal(err)
	}
	if e.Bytes != len(blob) || e.Bytes == 0 {
		t.Fatalf("entry bytes %d, blob %d", e.Bytes, len(blob))
	}
	if got, ok := c.Get(kw); !ok || got.Synopsis != synopsis.Synopsis(w) {
		t.Fatalf("Get(%v) = %v, %v", kw, got, ok)
	}
	if _, ok := c.Get(Key{Dataset: "other", Family: FamilyHistogram, Metric: "SSE", Budget: 4}); ok {
		t.Fatal("Get on absent key succeeded")
	}
	list := c.List()
	if len(list) != 2 || c.Len() != 2 {
		t.Fatalf("List len %d, Len %d, want 2", len(list), c.Len())
	}
	if list[0].Key != kh || list[1].Key != kw {
		t.Fatalf("List order %v, %v", list[0].Key, list[1].Key)
	}
}

// Saving a catalog and loading it back must round-trip every entry with
// exact query equality (the envelope preserves float64 bits).
func TestCatalogDiskRoundTrip(t *testing.T) {
	h, w := buildPair(t)
	dir := t.TempDir()
	c := New()
	kh := Key{Dataset: "d", Family: FamilyHistogram, Metric: "SAE", Budget: 4}
	kw := Key{Dataset: "d", Family: FamilyWavelet, Metric: "SSE", Budget: 5}
	for k, s := range map[Key]synopsis.Synopsis{kh: h, kw: w} {
		if _, _, err := c.Put(k, s); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := c.SaveAll(dir); err != nil || n != 2 {
		t.Fatalf("SaveAll = %d, %v", n, err)
	}
	// Unrelated files are skipped on load.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	back := New()
	if n, err := back.LoadDir(dir); err != nil || n != 2 {
		t.Fatalf("LoadDir = %d, %v", n, err)
	}
	for _, k := range []Key{kh, kw} {
		orig, _ := c.Get(k)
		got, ok := back.Get(k)
		if !ok {
			t.Fatalf("loaded catalog missing %v", k)
		}
		if got.Synopsis.Terms() != orig.Synopsis.Terms() || got.Synopsis.ErrorCost() != orig.Synopsis.ErrorCost() {
			t.Fatalf("%v: loaded (%d terms, cost %v) != saved (%d terms, cost %v)", k,
				got.Synopsis.Terms(), got.Synopsis.ErrorCost(), orig.Synopsis.Terms(), orig.Synopsis.ErrorCost())
		}
		for i := 0; i < 16; i++ {
			if a, b := got.Synopsis.Estimate(i), orig.Synopsis.Estimate(i); a != b {
				t.Fatalf("%v: Estimate(%d) %v != %v", k, i, a, b)
			}
		}
	}
}

// A catalog file whose envelope family disagrees with its filename must
// fail the load, as must a corrupt payload.
func TestLoadDirRejectsMismatchedAndCorrupt(t *testing.T) {
	h, _ := buildPair(t)
	blob, err := synopsis.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	lying := Key{Dataset: "d", Family: FamilyWavelet, Metric: "SSE", Budget: 4}
	if err := os.WriteFile(filepath.Join(dir, lying.Filename()), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New().LoadDir(dir); err == nil {
		t.Fatal("family-mismatched catalog file loaded")
	}
	dir2 := t.TempDir()
	honest := Key{Dataset: "d", Family: FamilyHistogram, Metric: "SSE", Budget: 4}
	bad := append([]byte(nil), blob...)
	bad[len(bad)/2] ^= 0x40
	if err := os.WriteFile(filepath.Join(dir2, honest.Filename()), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New().LoadDir(dir2); err == nil {
		t.Fatal("corrupt catalog file loaded")
	}
}

// Concurrent reads and writes must be safe (run under -race).
func TestCatalogConcurrentAccess(t *testing.T) {
	h, w := buildPair(t)
	c := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			k := Key{Dataset: "d", Family: FamilyHistogram, Metric: "SSE", Budget: 1 + g%4}
			for i := 0; i < 50; i++ {
				if g%2 == 0 {
					var s synopsis.Synopsis = h
					if i%2 == 0 {
						s = w
					}
					if _, _, err := c.Put(k, s); err != nil {
						t.Error(err)
						return
					}
				} else {
					if e, ok := c.Get(k); ok {
						_ = e.Synopsis.Terms()
					}
					_ = c.List()
					_ = c.Len()
				}
			}
		}(g)
	}
	wg.Wait()
}

// WriteFile/ReadFile are the shared offline save/load path: .json gets
// the JSON envelope, everything else the binary one, and both reload.
func TestWriteReadFileEnvelopes(t *testing.T) {
	h, _ := buildPair(t)
	dir := t.TempDir()
	for _, name := range []string{"h.syn", "h.json"} {
		path := filepath.Join(dir, name)
		n, err := WriteFile(path, h)
		if err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != n {
			t.Fatalf("%s: WriteFile reported %d bytes, file has %d", name, n, len(data))
		}
		isJSON := data[0] == '{'
		if wantJSON := name == "h.json"; isJSON != wantJSON {
			t.Fatalf("%s: json envelope = %v, want %v", name, isJSON, wantJSON)
		}
		back, err := ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if back.Terms() != h.Terms() || back.ErrorCost() != h.ErrorCost() {
			t.Fatalf("%s: reload mismatch", name)
		}
	}
}

// Every publish — Put, PutEncoded, a LoadDir — must install a compiled
// querier answering bit-identically to the entry's synopsis, so the
// serving read path never has to fall back to the uncompiled methods.
func TestEntriesCarryCompiledQueriers(t *testing.T) {
	h, w := buildPair(t)
	dir := t.TempDir()
	c := New()
	kh := Key{Dataset: "d", Family: FamilyHistogram, Metric: "SSE", Budget: 4}
	kw := Key{Dataset: "d", Family: FamilyWavelet, Metric: "SSE", Budget: 5}
	if _, _, err := c.Put(kh, h); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Put(kw, w); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SaveAll(dir); err != nil {
		t.Fatal(err)
	}
	loaded := New()
	if _, err := loaded.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	for _, cat := range []*Catalog{c, loaded} {
		for _, e := range cat.List() {
			if e.Querier == nil {
				t.Fatalf("%v: entry published without a querier", e.Key)
			}
			if _, ok := e.Querier.(*query.HistogramQuerier); e.Key.Family == FamilyHistogram && !ok {
				t.Fatalf("%v: querier is %T, want compiled histogram querier", e.Key, e.Querier)
			}
			if _, ok := e.Querier.(*query.WaveletQuerier); e.Key.Family == FamilyWavelet && !ok {
				t.Fatalf("%v: querier is %T, want compiled wavelet querier", e.Key, e.Querier)
			}
			n := e.Synopsis.Domain()
			for i := 0; i < n; i++ {
				if got, want := e.Querier.Estimate(i), e.Synopsis.Estimate(i); got != want {
					t.Fatalf("%v: querier Estimate(%d) = %v, synopsis %v", e.Key, i, got, want)
				}
			}
			if got, want := e.Querier.RangeSum(0, n-1), e.Synopsis.RangeSum(0, n-1); got != want {
				t.Fatalf("%v: querier RangeSum = %v, synopsis %v", e.Key, got, want)
			}
		}
	}
}
