// Package cluster is the serving layer's placement and forwarding
// substrate: a consistent-hash ring over a static peer list, and a
// small HTTP client for peer-to-peer forwarding with per-peer
// connection reuse, timeouts, and one retry.
//
// Placement is coordination-free: every node runs the same ring over
// the same -peers list, so any node resolves any key to the same owner
// without gossip or a coordinator. Datasets (and their builds) place by
// dataset name; the pieces of a sharded build place by piece filename,
// spreading one dataset's shards across the ring so scatter/gather
// range queries fan out to many nodes.
package cluster

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"
)

// DefaultVnodes is the virtual-node count per peer: enough that a
// handful of peers split keyspace within a few percent of evenly, small
// enough that ring construction and lookup stay trivial.
const DefaultVnodes = 64

// Ring is an immutable consistent-hash ring over a peer list. Keys hash
// onto a 64-bit circle populated with vnodes virtual points per peer;
// Owner walks clockwise to the first point. Adding or removing one peer
// moves only ~1/len(peers) of the keyspace, so a cluster restarted with
// one peer more keeps most placements.
type Ring struct {
	peers  []string
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	peer int
}

// NewRing builds a ring over the peer addresses. Peers must be
// non-empty and distinct; vnodes <= 0 means DefaultVnodes.
func NewRing(peers []string, vnodes int) (*Ring, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := make(map[string]bool, len(peers))
	r := &Ring{peers: append([]string(nil), peers...)}
	for i, p := range peers {
		if p == "" {
			return nil, fmt.Errorf("cluster: empty peer address at index %d", i)
		}
		if seen[p] {
			return nil, fmt.Errorf("cluster: duplicate peer %q", p)
		}
		seen[p] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash64(fmt.Sprintf("%s#%d", p, v)), i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash ties (vanishingly rare) break by peer index so every node
		// sorts identically whatever its sort's tie behavior.
		return r.points[a].peer < r.points[b].peer
	})
	return r, nil
}

// Owner returns the peer owning the key: the first ring point at or
// clockwise after the key's hash.
func (r *Ring) Owner(key string) string {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.peers[r.points[i].peer]
}

// Peers returns the ring's peer list, in construction order.
func (r *Ring) Peers() []string { return r.peers }

func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = io.WriteString(h, s)
	return h.Sum64()
}

// Client is the peer-to-peer forwarding client. One Client serves every
// peer: the underlying transport keeps idle connections per host, so
// repeated forwards to the same peer reuse a connection instead of
// re-dialing, and every request carries the configured timeout.
type Client struct {
	http *http.Client
}

// DefaultTimeout bounds one forwarded request end to end. Forwarded
// builds can run a real DP on the owner, so this is generous; queries
// finish in microseconds of server time.
const DefaultTimeout = 120 * time.Second

// NewClient returns a forwarding client; timeout <= 0 means
// DefaultTimeout.
func NewClient(timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	return &Client{http: &http.Client{
		Timeout: timeout,
		Transport: &http.Transport{
			MaxIdleConnsPerHost: 8,
			IdleConnTimeout:     90 * time.Second,
		},
	}}
}

// Do sends one request to a peer — method, path with query ("/v1/build"
// or "/v1/rangesum?..."), optional body — and returns the response
// status and body. A request that fails at the transport layer (the
// peer restarting, a stale pooled connection) is retried once against a
// freshly resolved connection; HTTP-level errors (4xx/5xx) are returned
// to the caller untouched, status and body intact, so a forwarding
// server can relay them verbatim.
func (c *Client) Do(peer, method, path string, body []byte, contentType string) (int, []byte, error) {
	status, resp, err := c.do(peer, method, path, body, contentType)
	if err != nil {
		status, resp, err = c.do(peer, method, path, body, contentType)
	}
	if err != nil {
		return 0, nil, fmt.Errorf("cluster: %s %s%s: %w", method, peer, path, err)
	}
	return status, resp, nil
}

func (c *Client) do(peer, method, path string, body []byte, contentType string) (int, []byte, error) {
	req, err := http.NewRequest(method, PeerURL(peer)+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, data, nil
}

// PeerURL normalizes a peer address to a base URL: "host:port" gains
// the http scheme, a full URL passes through with any trailing slash
// trimmed.
func PeerURL(peer string) string {
	if !strings.Contains(peer, "://") {
		peer = "http://" + peer
	}
	return strings.TrimSuffix(peer, "/")
}
