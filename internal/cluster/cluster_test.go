package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

func TestRingDeterministicAndComplete(t *testing.T) {
	peers := []string{"a:1", "b:2", "c:3"}
	r1, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	hit := make(map[string]int)
	for i := 0; i < 3000; i++ {
		key := fmt.Sprintf("ds/dataset-%d", i)
		o := r1.Owner(key)
		if o2 := r2.Owner(key); o2 != o {
			t.Fatalf("rings disagree on %q: %q vs %q", key, o, o2)
		}
		hit[o]++
	}
	for _, p := range peers {
		if hit[p] == 0 {
			t.Fatalf("peer %q owns nothing of 3000 keys: %v", p, hit)
		}
		if hit[p] < 300 {
			t.Fatalf("peer %q owns only %d of 3000 keys — badly unbalanced: %v", p, hit[p], hit)
		}
	}
}

func TestRingStabilityUnderPeerAddition(t *testing.T) {
	r3, _ := NewRing([]string{"a:1", "b:2", "c:3"}, 0)
	r4, _ := NewRing([]string{"a:1", "b:2", "c:3", "d:4"}, 0)
	moved := 0
	const n = 3000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		if r3.Owner(key) != r4.Owner(key) {
			moved++
		}
	}
	// Consistent hashing moves ~1/4 of keys when a 4th peer joins; a
	// modulo placement would move ~3/4. Allow slack for vnode variance.
	if moved > n/2 {
		t.Fatalf("%d of %d keys moved on peer addition — placement is not consistent", moved, n)
	}
}

func TestRingRejectsBadPeerLists(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty peer list accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Fatal("duplicate peer accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty peer address accepted")
	}
}

func TestClientForwardsAndRelaysStatus(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if r.URL.Path == "/v1/teapot" {
			w.WriteHeader(http.StatusTeapot)
			fmt.Fprint(w, `{"error":{"code":"teapot"}}`)
			return
		}
		body := make([]byte, 64)
		n, _ := r.Body.Read(body)
		fmt.Fprintf(w, "echo:%s", body[:n])
	}))
	defer srv.Close()
	peer := strings.TrimPrefix(srv.URL, "http://")
	c := NewClient(0)
	status, resp, err := c.Do(peer, http.MethodPost, "/v1/echo", []byte("hi"), "application/json")
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK || string(resp) != "echo:hi" {
		t.Fatalf("got %d %q", status, resp)
	}
	// HTTP-level errors relay without retrying.
	before := calls.Load()
	status, resp, err = c.Do(peer, http.MethodGet, "/v1/teapot", nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusTeapot || !strings.Contains(string(resp), "teapot") {
		t.Fatalf("got %d %q", status, resp)
	}
	if calls.Load() != before+1 {
		t.Fatalf("HTTP error retried: %d calls", calls.Load()-before)
	}
	// Transport-level failures surface as errors after the one retry.
	if _, _, err := c.Do("127.0.0.1:1", http.MethodGet, "/v1/x", nil, ""); err == nil {
		t.Fatal("dead peer did not error")
	}
}

func TestPeerURL(t *testing.T) {
	for in, want := range map[string]string{
		"localhost:8080":         "http://localhost:8080",
		"http://h:1/":            "http://h:1",
		"https://secure.example": "https://secure.example",
	} {
		if got := PeerURL(in); got != want {
			t.Fatalf("PeerURL(%q) = %q, want %q", in, got, want)
		}
	}
}
