package minimax

import (
	"math"
	"math/rand"
	"testing"
)

// gridMin brute-forces the minimum over a fine grid (reference value).
func gridMin(lines []Line, lo, hi float64) (float64, float64) {
	const steps = 20000
	bestX, bestY := lo, Eval(lines, lo)
	for k := 1; k <= steps; k++ {
		x := lo + (hi-lo)*float64(k)/steps
		if y := Eval(lines, x); y < bestY {
			bestX, bestY = x, y
		}
	}
	return bestX, bestY
}

func TestSingleLine(t *testing.T) {
	// Increasing line: min at lo.
	x, y := MinimizeMax([]Line{{A: 2, B: 1}}, -1, 3)
	if x != -1 || y != -1 {
		t.Fatalf("got (%v,%v), want (-1,-1)", x, y)
	}
	// Decreasing line: min at hi.
	x, y = MinimizeMax([]Line{{A: -2, B: 1}}, -1, 3)
	if x != 3 || y != -5 {
		t.Fatalf("got (%v,%v), want (3,-5)", x, y)
	}
	// Flat line.
	_, y = MinimizeMax([]Line{{A: 0, B: 4}}, 0, 1)
	if y != 4 {
		t.Fatalf("flat line min %v, want 4", y)
	}
}

func TestVee(t *testing.T) {
	// |x| as max(x, -x): min 0 at x=0.
	x, y := MinimizeMax([]Line{{A: 1, B: 0}, {A: -1, B: 0}}, -5, 5)
	if math.Abs(x) > 1e-12 || math.Abs(y) > 1e-12 {
		t.Fatalf("got (%v,%v), want (0,0)", x, y)
	}
	// Clamped: interval excludes the vertex.
	x, y = MinimizeMax([]Line{{A: 1, B: 0}, {A: -1, B: 0}}, 2, 5)
	if x != 2 || y != 2 {
		t.Fatalf("clamped got (%v,%v), want (2,2)", x, y)
	}
}

func TestParallelLines(t *testing.T) {
	// Two parallel lines: only the higher matters.
	x, y := MinimizeMax([]Line{{A: -1, B: 0}, {A: -1, B: 5}, {A: 1, B: 5}}, -10, 10)
	if math.Abs(x-0) > 1e-12 || math.Abs(y-5) > 1e-12 {
		t.Fatalf("got (%v,%v), want (0,5)", x, y)
	}
}

func TestDominatedLineIgnored(t *testing.T) {
	// Middle line strictly below the envelope everywhere in range.
	lines := []Line{{A: -1, B: 0}, {A: 0, B: -100}, {A: 1, B: 0}}
	x, y := MinimizeMax(lines, -5, 5)
	if math.Abs(x) > 1e-12 || math.Abs(y) > 1e-12 {
		t.Fatalf("got (%v,%v), want (0,0)", x, y)
	}
}

func TestNoLines(t *testing.T) {
	x, y := MinimizeMax(nil, 1, 2)
	if x != 1 || !math.IsInf(y, -1) {
		t.Fatalf("got (%v,%v), want (1,-Inf)", x, y)
	}
}

func TestReversedInterval(t *testing.T) {
	x, _ := MinimizeMax([]Line{{A: 1, B: 0}}, 5, 2)
	if x != 2 {
		t.Fatalf("reversed interval: x = %v, want 2", x)
	}
}

func TestEvalEmpty(t *testing.T) {
	if !math.IsInf(Eval(nil, 0), -1) {
		t.Fatal("Eval(nil) should be -Inf")
	}
}

func TestRandomAgainstGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(20)
		lines := make([]Line, k)
		for i := range lines {
			lines[i] = Line{A: rng.NormFloat64() * 3, B: rng.NormFloat64() * 5}
		}
		lo := rng.Float64()*4 - 2
		hi := lo + rng.Float64()*6
		_, y := MinimizeMax(lines, lo, hi)
		_, yGrid := gridMin(lines, lo, hi)
		// The exact solver must be no worse than the grid and very close
		// below it (the grid overshoots the true min slightly).
		if y > yGrid+1e-9 {
			t.Fatalf("trial %d: exact %v above grid reference %v", trial, y, yGrid)
		}
		if yGrid-y > 1e-3*(1+math.Abs(yGrid)) {
			t.Fatalf("trial %d: exact %v implausibly below grid %v", trial, y, yGrid)
		}
	}
}

func TestMinimizerIsFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		lines := make([]Line, 1+rng.Intn(10))
		for i := range lines {
			lines[i] = Line{A: rng.NormFloat64(), B: rng.NormFloat64()}
		}
		lo, hi := -1.5, 2.5
		x, y := MinimizeMax(lines, lo, hi)
		if x < lo-1e-12 || x > hi+1e-12 {
			t.Fatalf("x = %v outside [%v,%v]", x, lo, hi)
		}
		if got := Eval(lines, x); math.Abs(got-y) > 1e-9 {
			t.Fatalf("reported y=%v but Eval(x)=%v", y, got)
		}
	}
}
