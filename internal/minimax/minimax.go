// Package minimax solves the one-dimensional problem
//
//	minimize over x in [lo, hi] of  max_i (A_i x + B_i),
//
// the inner optimization of the MAE/MARE histogram oracles (§3.6): inside a
// bracket between consecutive frequency values, each item's expected
// absolute error is linear in the representative b̂, and the bucket cost is
// the upper envelope of those lines.
//
// The envelope of k lines is convex piecewise linear; we build it with the
// classic slope-sorted hull construction in O(k log k) and read the
// minimizer off the breakpoint where the envelope slope changes sign.
package minimax

import (
	"math"
	"sort"
)

// Line is y = A*x + B.
type Line struct {
	A, B float64
}

// Eval returns max_i lines[i] at x, or -Inf for an empty set.
func Eval(lines []Line, x float64) float64 {
	best := math.Inf(-1)
	for _, l := range lines {
		if v := l.A*x + l.B; v > best {
			best = v
		}
	}
	return best
}

// MinimizeMax returns (x*, f(x*)) minimizing f(x) = max_i (A_i x + B_i)
// over [lo, hi]. It requires lo <= hi and at least one line; otherwise it
// returns (lo, -Inf) for no lines, and swaps a reversed interval.
func MinimizeMax(lines []Line, lo, hi float64) (float64, float64) {
	if lo > hi {
		lo, hi = hi, lo
	}
	if len(lines) == 0 {
		return lo, math.Inf(-1)
	}
	env := envelope(lines)
	// Envelope slopes strictly increase left to right. The unconstrained
	// minimizer is the breakpoint where slope crosses zero.
	switch {
	case env[0].A >= 0: // entirely non-decreasing
		return lo, Eval(lines, lo)
	case env[len(env)-1].A <= 0: // entirely non-increasing
		return hi, Eval(lines, hi)
	}
	// Find first envelope line with non-negative slope; the minimizer is
	// where it meets the previous (negative-slope) line.
	k := sort.Search(len(env), func(i int) bool { return env[i].A >= 0 })
	x := intersect(env[k-1], env[k])
	if x < lo {
		x = lo
	} else if x > hi {
		x = hi
	}
	return x, Eval(lines, x)
}

// intersect returns the x where two non-parallel lines meet.
func intersect(l1, l2 Line) float64 { return (l2.B - l1.B) / (l1.A - l2.A) }

// envelope returns the subset of lines forming the upper envelope, sorted
// by strictly increasing slope.
func envelope(lines []Line) []Line {
	ls := append([]Line(nil), lines...)
	sort.Slice(ls, func(a, b int) bool {
		if ls[a].A != ls[b].A {
			return ls[a].A < ls[b].A
		}
		return ls[a].B < ls[b].B
	})
	// Drop duplicate slopes, keeping the largest intercept (last after sort).
	dedup := ls[:0]
	for i, l := range ls {
		if i+1 < len(ls) && ls[i+1].A == l.A {
			continue
		}
		dedup = append(dedup, l)
	}
	ls = dedup
	if len(ls) <= 2 {
		return ls
	}
	hull := make([]Line, 0, len(ls))
	for _, l := range ls {
		for len(hull) >= 2 {
			// hull[len-1] is unnecessary if l overtakes hull[len-2] no later
			// than hull[len-1] does.
			a, b := hull[len(hull)-2], hull[len(hull)-1]
			if intersect(a, l) <= intersect(a, b) {
				hull = hull[:len(hull)-1]
			} else {
				break
			}
		}
		// A new line never removes the need for itself; with only one line
		// on the hull it always joins.
		hull = append(hull, l)
	}
	return hull
}
