// Cluster mode: several psynd processes with the same -peers list form
// a scatter/gather cluster with no coordinator. Placement is pure
// function of the shared peer list (internal/cluster's consistent-hash
// ring), so every node routes identically without talking to anyone:
//
//   - A dataset has one owning node (ring key "ds/<dataset>"). Build
//     requests forward to the owner, which runs the sharded build and
//     answers gathered queries for the dataset's sharded keys.
//   - A sharded build's pieces spread over the ring independently (ring
//     key "piece/<piece filename>"): the owner builds all k pieces,
//     pushes each to its owning peer via POST /v1/accept
//     (persist-before-publish on the receiving side), and publishes the
//     merged whole under the piece-less key only after every piece
//     landed — the cluster-wide analogue of the single-node
//     persist-before-publish discipline.
//   - A gathered GET /v1/rangesum?...&shards=k splits the range at the
//     build's shard boundaries, answers each subrange from the piece's
//     querier, and sums the partials; estimates route to the single
//     owning piece. Remote pieces are fetched once (GET /v1/blob),
//     compiled, and cached on the coordinating owner — synopses are
//     tiny, so steady-state gathered reads are purely local and the
//     scatter happens at build time (piece distribution) and on first
//     touch, not per query. Batch /v1/query resolves sharded keys
//     through the same compiled pieces.
//
// A node outside a cluster (empty peer list, or a single-entry one) is
// just an ordinary psynd; all of the handlers below still work against
// locally built pieces, which is what the single-node tests exercise.
package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/url"
	"path/filepath"
	"strconv"
	"strings"

	"probsyn"
	"probsyn/internal/catalog"
	"probsyn/internal/cluster"
	"probsyn/internal/engine"
	"probsyn/internal/query"
)

// clustered reports whether this server is one node of a multi-node
// cluster. A single-entry peer list is legal config but routes nothing.
func (s *Server) clustered() bool {
	return s.ring != nil && len(s.cfg.Peers) > 1
}

// datasetOwner is the node that builds (and coordinates gathers for)
// the dataset's synopses.
func (s *Server) datasetOwner(dataset string) string {
	return s.ring.Owner("ds/" + dataset)
}

// pieceOwner is the node that serves one piece of a sharded build.
// Pieces place by filename, independently of their dataset, so a
// dataset's k pieces spread over the whole ring.
func (s *Server) pieceOwner(filename string) string {
	return s.ring.Owner("piece/" + filename)
}

// forward relays a request to a peer and writes the peer's response
// back verbatim — the peer's typed errors are this API's typed errors.
// Only a transport-level failure (peer unreachable after the client's
// retry) is translated, into 502 peer_unavailable.
func (s *Server) forward(w http.ResponseWriter, peer, method, pathAndQuery string, body []byte, contentType string) {
	status, resp, err := s.remote.Do(peer, method, pathAndQuery, body, contentType)
	if err != nil {
		writeError(w, http.StatusBadGateway, CodePeerUnavailable, "peer %s: %v", peer, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(resp)
}

// ---- the sharded build path ----

// buildSharded is the sharded twin of build: one probsyn.BuildSharded
// over the shared pool (one admission token per shard), then the k
// pieces are distributed to their owning nodes and the merged whole is
// published under the ordinary piece-less key — pieces first, merged
// last, so a key whose whole is cataloged always has every piece
// servable somewhere. Sharded builds are never short-circuited by an
// existing catalog entry: the whole may be local while a remote piece
// was lost, and rebuilding is deterministic and idempotent.
func (s *Server) buildSharded(key catalog.Key, k int) error {
	lock := s.datasetLock(key.Dataset)
	lock.RLock()
	defer lock.RUnlock()
	src, err := s.dataset(key.Dataset)
	if err != nil {
		return err
	}
	m, err := probsyn.ParseMetric(key.Metric)
	if err != nil {
		return err
	}
	opts := []probsyn.BuildOption{
		probsyn.WithPool(s.cfg.Pool),
		probsyn.WithParams(probsyn.Params{C: key.C}),
	}
	if key.Family == catalog.FamilyWavelet {
		opts = append(opts, probsyn.WithWavelet())
		if key.Q > 0 {
			opts = append(opts, probsyn.WithQuantize(key.Q))
		}
	}
	res, err := probsyn.BuildSharded(src, m, key.Budget, k, opts...)
	if err != nil {
		return fmt.Errorf("sharded build %s (%d shards): %w", key, k, err)
	}
	// Whatever happens below, compiled remote pieces of this key are
	// stale the moment redistribution starts; dropping them again on the
	// way out covers a fetch that raced a partially distributed build.
	s.dropCachedPieces(key, k)
	defer s.dropCachedPieces(key, k)
	for i, piece := range res.Pieces {
		pk, err := key.Piece(i, k)
		if err != nil {
			return err
		}
		blob, err := probsyn.MarshalSynopsis(piece)
		if err != nil {
			return err
		}
		if err := s.placePiece(pk, piece, blob); err != nil {
			return err
		}
	}
	blob, err := probsyn.MarshalSynopsis(res.Synopsis)
	if err != nil {
		return err
	}
	if s.cfg.CatalogDir != "" {
		if err := catalog.WriteBlob(filepath.Join(s.cfg.CatalogDir, key.Filename()), blob); err != nil {
			return fmt.Errorf("persist %s: %w", key, err)
		}
	}
	s.cfg.Catalog.PutEncoded(key, res.Synopsis, blob)
	s.logf("sharded build %s: %d shards, cost %.6g, suboptimality bound %.6g",
		key, k, res.Synopsis.ErrorCost(), res.Bound)
	return nil
}

// placePiece installs one piece at its owning node: locally with the
// usual persist-before-publish, or pushed to the owning peer, whose
// /v1/accept applies the same discipline before acknowledging.
func (s *Server) placePiece(pk catalog.Key, syn probsyn.Synopsis, blob []byte) error {
	if s.clustered() {
		if owner := s.pieceOwner(pk.Filename()); owner != s.cfg.Self {
			status, resp, err := s.remote.Do(owner, http.MethodPost,
				"/v1/accept?name="+url.QueryEscape(pk.Filename()), blob, "application/octet-stream")
			if err != nil {
				return fmt.Errorf("place piece %s on %s: %w", pk, owner, err)
			}
			if status != http.StatusOK {
				return fmt.Errorf("place piece %s on %s: %s", pk, owner, strings.TrimSpace(string(resp)))
			}
			return nil
		}
	}
	if s.cfg.CatalogDir != "" {
		if err := catalog.WriteBlob(filepath.Join(s.cfg.CatalogDir, pk.Filename()), blob); err != nil {
			return fmt.Errorf("persist %s: %w", pk, err)
		}
	}
	s.cfg.Catalog.PutEncoded(pk, syn, blob)
	return nil
}

// maxAcceptBody bounds a pushed piece envelope. Synopses are tiny (B
// coefficients or buckets), but a piece of a very fine sweep could run
// to megabytes; 64 MiB is far above anything real without letting a
// hostile peer buffer unbounded memory.
const maxAcceptBody = 1 << 26

// handleAccept ingests a piece pushed by the building node: validate
// the name, decode the envelope, persist, then publish. The piece
// becomes servable only once it is durably on disk — acknowledging
// earlier would let the builder publish a merged whole whose piece
// vanishes on this node's restart.
func (s *Server) handleAccept(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	pk, err := catalog.ParseFilename(name)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "bad piece name %q: %v", name, err)
		return
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, maxAcceptBody)); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "bad piece body: %v", err)
		return
	}
	blob := bytes.Clone(buf.Bytes())
	syn, err := probsyn.UnmarshalSynopsis(blob)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "piece %s: %v", pk, err)
		return
	}
	// The envelope carries its own type; a histogram pushed under a
	// wavelet name would serve wrong answers forever.
	family := catalog.FamilyHistogram
	if _, ok := syn.(*probsyn.WaveletSynopsis); ok {
		family = catalog.FamilyWavelet
	}
	if family != pk.Family {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			"piece %s: envelope holds a %s synopsis", pk, family)
		return
	}
	// Accepts change the catalog outside the job queue, so they carry
	// their own flat-file invalidation window.
	if s.flat != nil {
		s.flat.JobStart()
		defer s.flat.JobEnd()
	}
	if s.cfg.CatalogDir != "" {
		if err := catalog.WriteBlob(filepath.Join(s.cfg.CatalogDir, pk.Filename()), blob); err != nil {
			writeError(w, http.StatusInternalServerError, CodeBuildFailed, "persist %s: %v", pk, err)
			return
		}
	}
	s.cfg.Catalog.PutEncoded(pk, syn, blob)
	writeJSON(w, http.StatusOK, BuildResponse{Key: pk, Status: "built"})
}

// handleBlob serves a cataloged synopsis's envelope bytes — the batch
// endpoint of a gathering node fetches remote pieces through it, once
// per key per batch, and compiles them locally. The catalog retains
// only decoded synopses, so the envelope is re-marshaled here; the
// codec is deterministic, so the bytes equal what was persisted.
func (s *Server) handleBlob(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	key, err := catalog.ParseFilename(name)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "bad synopsis name %q: %v", name, err)
		return
	}
	entry, ok := s.cfg.Catalog.Get(key)
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, "no synopsis for %s", key)
		return
	}
	blob, err := probsyn.MarshalSynopsis(entry.Synopsis)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeBuildFailed, "encode %s: %v", key, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(blob)
}

// ---- gathered reads ----

// shardParams extracts the sharded-query parameters: &shards=k selects
// a k-way sharded build, and &shard=s (only meaningful with shards)
// addresses one piece in its local coordinates — the form a gathering
// coordinator sends to piece owners.
func shardParams(r *http.Request) (shard, shards int, hasShard bool, err error) {
	q := r.URL.Query()
	if raw := q.Get("shards"); raw != "" {
		if shards, err = strconv.Atoi(raw); err != nil || shards < 0 {
			return 0, 0, false, fmt.Errorf("bad shards %q", raw)
		}
	}
	if raw := q.Get("shard"); raw != "" {
		if shard, err = strconv.Atoi(raw); err != nil {
			return 0, 0, false, fmt.Errorf("bad shard %q", raw)
		}
		if shards < 2 {
			return 0, 0, false, fmt.Errorf("shard=%d needs shards >= 2", shard)
		}
		hasShard = true
	}
	return shard, shards, hasShard, nil
}

// parseKey resolves the key query parameters without requiring a
// catalog entry — the sharded read paths address keys whose whole lives
// on another node. Same canonicalization as lookup.
func (s *Server) parseKey(w http.ResponseWriter, r *http.Request) (catalog.Key, bool) {
	q := r.URL.Query()
	budget, err := strconv.Atoi(q.Get("budget"))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "bad budget %q", q.Get("budget"))
		return catalog.Key{}, false
	}
	c := s.cfg.C
	if raw := q.Get("c"); raw != "" {
		if c, err = strconv.ParseFloat(raw, 64); err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "bad c %q", raw)
			return catalog.Key{}, false
		}
	}
	quant := 0
	if raw := q.Get("q"); raw != "" {
		if quant, err = strconv.Atoi(raw); err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "bad q %q", raw)
			return catalog.Key{}, false
		}
	}
	key, err := catalog.NewKeyQ(q.Get("dataset"), q.Get("family"), q.Get("metric"), budget, c, quant)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return catalog.Key{}, false
	}
	return key, true
}

// shardedBounds recomputes the build's global shard boundaries from the
// dataset — the same probsyn.ShardBounds the build used, so gathered
// coordinates always agree with how the pieces were cut.
func (s *Server) shardedBounds(key catalog.Key, k int) ([]int, error) {
	src, err := s.dataset(key.Dataset)
	if err != nil {
		return nil, err
	}
	return probsyn.ShardBounds(src.Domain(), k, key.Family == catalog.FamilyWavelet), nil
}

// handleShardedRangeSum answers GET /v1/rangesum for a sharded key:
// the &shard=s form answers from the local piece; otherwise this node
// coordinates (forwarding to the dataset owner first when it is not
// us), splitting the range at the shard boundaries and summing the
// piece owners' partials, fanned out concurrently.
func (s *Server) handleShardedRangeSum(w http.ResponseWriter, r *http.Request, shard, shards int, hasShard bool) {
	key, ok := s.parseKey(w, r)
	if !ok {
		return
	}
	lo, err := intParam(r, "lo")
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	hi, err := intParam(r, "hi")
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	if lo > hi {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "empty range [%d, %d]", lo, hi)
		return
	}
	if hasShard {
		pk, err := key.Piece(shard, shards)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
			return
		}
		entry, ok := s.cfg.Catalog.Get(pk)
		if !ok {
			writeError(w, http.StatusNotFound, CodeNotFound, "no synopsis for %s", pk)
			return
		}
		n := entry.Synopsis.Domain()
		if hi < 0 || lo >= n {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "range [%d, %d] outside domain [0, %d)", lo, hi, n)
			return
		}
		lo, hi = max(lo, 0), min(hi, n-1)
		writeJSON(w, http.StatusOK, RangeSumResponse{Key: pk, Lo: lo, Hi: hi, Sum: entry.Querier.RangeSum(lo, hi)})
		return
	}
	if s.clustered() {
		if owner := s.datasetOwner(key.Dataset); owner != s.cfg.Self {
			s.forward(w, owner, http.MethodGet, r.URL.RequestURI(), nil, "")
			return
		}
	}
	bounds, err := s.shardedBounds(key, shards)
	if err != nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "%v", err)
		return
	}
	n := bounds[shards]
	if hi < 0 || lo >= n {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "range [%d, %d] outside domain [0, %d)", lo, hi, n)
		return
	}
	lo, hi = max(lo, 0), min(hi, n-1)
	// The shards whose span [bounds[i], bounds[i+1]) meets [lo, hi].
	type part struct{ shard, llo, lhi int }
	var parts []part
	for i := 0; i < shards; i++ {
		if bounds[i] > hi || bounds[i+1]-1 < lo {
			continue
		}
		parts = append(parts, part{i, max(lo, bounds[i]) - bounds[i], min(hi, bounds[i+1]-1) - bounds[i]})
	}
	sums := make([]float64, len(parts))
	err = engine.Fan(len(parts), len(parts), func(i int) error {
		v, err := s.pieceRangeSum(key, parts[i].shard, shards, parts[i].llo, parts[i].lhi)
		if err != nil {
			return err
		}
		sums[i] = v
		return nil
	})
	if err != nil {
		writeError(w, http.StatusBadGateway, CodePeerUnavailable, "%v", err)
		return
	}
	sum := 0.0
	for _, v := range sums {
		sum += v
	}
	writeJSON(w, http.StatusOK, RangeSumResponse{Key: key, Lo: lo, Hi: hi, Sum: sum})
}

// handleShardedEstimate answers GET /v1/estimate for a sharded key: an
// estimate touches exactly one piece, so there is no gather — just a
// route to the piece that owns item i.
func (s *Server) handleShardedEstimate(w http.ResponseWriter, r *http.Request, shard, shards int, hasShard bool) {
	key, ok := s.parseKey(w, r)
	if !ok {
		return
	}
	i, err := intParam(r, "i")
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	if hasShard {
		pk, err := key.Piece(shard, shards)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
			return
		}
		entry, ok := s.cfg.Catalog.Get(pk)
		if !ok {
			writeError(w, http.StatusNotFound, CodeNotFound, "no synopsis for %s", pk)
			return
		}
		if n := entry.Synopsis.Domain(); i < 0 || i >= n {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "item %d outside domain [0, %d)", i, n)
			return
		}
		writeJSON(w, http.StatusOK, EstimateResponse{Key: pk, I: i, Estimate: entry.Querier.Estimate(i)})
		return
	}
	if s.clustered() {
		if owner := s.datasetOwner(key.Dataset); owner != s.cfg.Self {
			s.forward(w, owner, http.MethodGet, r.URL.RequestURI(), nil, "")
			return
		}
	}
	bounds, err := s.shardedBounds(key, shards)
	if err != nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "%v", err)
		return
	}
	n := bounds[shards]
	if i < 0 || i >= n {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "item %d outside domain [0, %d)", i, n)
		return
	}
	owning := 0
	for bounds[owning+1] <= i {
		owning++
	}
	v, err := s.pieceEstimate(key, owning, shards, i-bounds[owning])
	if err != nil {
		writeError(w, http.StatusBadGateway, CodePeerUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, EstimateResponse{Key: key, I: i, Estimate: v})
}

// cachedPiece is one compiled remote piece: the querier and its local
// domain size, everything a gather needs to answer without the peer.
type cachedPiece struct {
	querier query.Querier
	domain  int
}

// pieceRangeSum answers one shard's subrange, from the local catalog
// when the piece is here, from the (fetch-once) compiled remote piece
// otherwise.
func (s *Server) pieceRangeSum(key catalog.Key, shard, shards, llo, lhi int) (float64, error) {
	q, n, err := s.pieceQuerier(key, shard, shards)
	if err != nil {
		return 0, err
	}
	llo, lhi = max(llo, 0), min(lhi, n-1)
	if llo > lhi {
		return 0, nil
	}
	return q.RangeSum(llo, lhi), nil
}

// pieceEstimate answers one piece-local estimate, local or remote like
// pieceRangeSum.
func (s *Server) pieceEstimate(key catalog.Key, shard, shards, i int) (float64, error) {
	q, n, err := s.pieceQuerier(key, shard, shards)
	if err != nil {
		return 0, err
	}
	if i < 0 || i >= n {
		return 0, fmt.Errorf("item %d outside piece %d/%d domain [0, %d)", i, shard, shards, n)
	}
	return q.Estimate(i), nil
}

// pieceQuerier resolves one piece to a compiled querier and its local
// domain: the local catalog when the piece lives here, the remote-piece
// cache (filled by a one-time GET /v1/blob to the owner) otherwise.
func (s *Server) pieceQuerier(key catalog.Key, shard, shards int) (query.Querier, int, error) {
	pk, err := key.Piece(shard, shards)
	if err != nil {
		return nil, 0, err
	}
	if entry, ok := s.cfg.Catalog.Get(pk); ok {
		return entry.Querier, entry.Synopsis.Domain(), nil
	}
	cp, _, err := s.remotePiece(pk)
	if err != nil {
		return nil, 0, err
	}
	return cp.querier, cp.domain, nil
}

// remotePiece returns the compiled querier for a piece that lives on a
// peer, fetching its envelope once and caching the result when this
// node owns the piece's dataset (the owner coordinates every gather and
// every rebuild of the dataset, so its cache is invalidated by its own
// buildSharded; other nodes — the batch path can gather anywhere — skip
// the cache and stay fetch-per-use, trading a round trip for never
// serving a piece a rebuild they cannot observe made stale). The
// returned code distinguishes a missing piece (CodeNotFound) from an
// unreachable or misbehaving peer (CodePeerUnavailable).
func (s *Server) remotePiece(pk catalog.Key) (cachedPiece, string, error) {
	if !s.clustered() {
		return cachedPiece{}, CodeNotFound, fmt.Errorf("no synopsis for %s (build it first)", pk)
	}
	owner := s.pieceOwner(pk.Filename())
	if owner == s.cfg.Self {
		return cachedPiece{}, CodeNotFound, fmt.Errorf("no synopsis for %s (build it first)", pk)
	}
	cacheable := s.datasetOwner(pk.Dataset) == s.cfg.Self
	if cacheable {
		s.pieceMu.RLock()
		cp, ok := s.pieceCache[pk]
		s.pieceMu.RUnlock()
		if ok {
			return cp, "", nil
		}
	}
	status, resp, err := s.remote.Do(owner, http.MethodGet, "/v1/blob?name="+url.QueryEscape(pk.Filename()), nil, "")
	if err != nil {
		return cachedPiece{}, CodePeerUnavailable, fmt.Errorf("piece %s on %s: %w", pk, owner, err)
	}
	if status != http.StatusOK {
		return cachedPiece{}, CodeNotFound, fmt.Errorf("piece %s on %s: %s", pk, owner, strings.TrimSpace(string(resp)))
	}
	syn, err := probsyn.UnmarshalSynopsis(resp)
	if err != nil {
		return cachedPiece{}, CodePeerUnavailable, fmt.Errorf("piece %s on %s: %v", pk, owner, err)
	}
	cp := cachedPiece{querier: query.Compile(syn), domain: syn.Domain()}
	if cacheable {
		s.pieceMu.Lock()
		s.pieceCache[pk] = cp
		s.pieceMu.Unlock()
	}
	return cp, "", nil
}

// dropCachedPieces forgets the compiled remote pieces of one sharded
// build — called by the owner around redistribution, the only event
// that changes a piece's content under an unchanged key.
func (s *Server) dropCachedPieces(key catalog.Key, k int) {
	s.pieceMu.Lock()
	defer s.pieceMu.Unlock()
	for i := 0; i < k; i++ {
		if pk, err := key.Piece(i, k); err == nil {
			delete(s.pieceCache, pk)
		}
	}
}

// resolveShardedKey assembles the batch evaluator's querier for a
// sharded key: every piece is taken from the local catalog or from the
// compiled remote pieces (fetched once via GET /v1/blob), then composed
// into a query.ShardedQuerier — so a batch of thousands of ops costs at
// most k-1 piece fetches, not one network call per op, and on the
// dataset owner usually none at all (the fetches are cached).
func (s *Server) resolveShardedKey(key catalog.Key, shards int) (query.Querier, int, *query.OpError) {
	pieces := make([]query.Querier, shards)
	bounds := make([]int, shards+1)
	for i := 0; i < shards; i++ {
		pk, err := key.Piece(i, shards)
		if err != nil {
			return nil, 0, &query.OpError{Code: CodeBadRequest, Message: err.Error()}
		}
		if entry, ok := s.cfg.Catalog.Get(pk); ok {
			pieces[i] = entry.Querier
			bounds[i+1] = bounds[i] + entry.Synopsis.Domain()
			continue
		}
		cp, code, err := s.remotePiece(pk)
		if err != nil {
			return nil, 0, &query.OpError{Code: code, Message: err.Error()}
		}
		pieces[i] = cp.querier
		bounds[i+1] = bounds[i] + cp.domain
	}
	sq, err := query.NewSharded(pieces, bounds)
	if err != nil {
		return nil, 0, &query.OpError{Code: CodeBadRequest, Message: err.Error()}
	}
	return sq, sq.Domain(), nil
}

// newClusterState validates the peer configuration and returns the ring
// and forwarding client, or nils for a non-clustered server.
func newClusterState(cfg *Config) (*cluster.Ring, *cluster.Client, error) {
	if len(cfg.Peers) == 0 {
		if cfg.Self != "" {
			return nil, nil, fmt.Errorf("server: -self %q set without a peer list", cfg.Self)
		}
		return nil, nil, nil
	}
	found := false
	for _, p := range cfg.Peers {
		if p == cfg.Self {
			found = true
			break
		}
	}
	if !found {
		return nil, nil, fmt.Errorf("server: self %q is not in the peer list %v", cfg.Self, cfg.Peers)
	}
	ring, err := cluster.NewRing(cfg.Peers, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("server: %w", err)
	}
	return ring, cluster.NewClient(0), nil
}
