package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"probsyn"
	"probsyn/internal/catalog"
	"probsyn/internal/engine"
	"probsyn/internal/gen"
	"probsyn/internal/query"
)

// postQuery posts a batch to /v1/query and decodes whichever envelope
// came back.
func postQuery(t *testing.T, ts *httptest.Server, req query.BatchRequest) (*http.Response, query.BatchResponse, ErrorBody) {
	t.Helper()
	resp, raw := postJSON(t, ts.URL+"/v1/query", req)
	var ok query.BatchResponse
	var bad ErrorBody
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, &ok); err != nil {
			t.Fatal(err)
		}
	} else if err := json.Unmarshal(raw, &bad); err != nil {
		t.Fatal(err)
	}
	return resp, ok, bad
}

// TestQueryBatchMatchesSingleEndpoints: a heterogeneous batch over both
// families answers every op with exactly the value the single GET
// endpoints serve, per-op errors carry the same stable codes, and one
// failed op fails neither the batch nor its neighbors.
func TestQueryBatchMatchesSingleEndpoints(t *testing.T) {
	_, ts, _ := newFixture(t, Config{C: 0.5})
	for _, b := range []BuildRequest{
		{Dataset: "ds", Family: "histogram", Metric: "SSE", Budget: 4, Wait: true},
		{Dataset: "ds", Family: "wavelet", Metric: "SSE", Budget: 6, Wait: true},
		{Dataset: "ds", Family: "histogram", Metric: "SSRE", Budget: 3, Wait: true}, // served under the -c default
	} {
		if resp, _, bad := postBuild(t, ts, b); resp.StatusCode != http.StatusOK {
			t.Fatalf("build %+v: %d %v", b, resp.StatusCode, bad)
		}
	}
	kh := query.BatchKey{Dataset: "ds", Family: "histogram", Metric: "SSE", Budget: 4}
	kw := query.BatchKey{Dataset: "ds", Family: "wavelet", Metric: "SSE", Budget: 6}
	kr := query.BatchKey{Dataset: "ds", Family: "histogram", Metric: "SSRE", Budget: 3} // C omitted: server default applies
	req := query.BatchRequest{Ops: []query.Op{
		{BatchKey: kh, Op: query.OpEstimate, I: 0},
		{BatchKey: kh, Op: query.OpEstimate, I: 17},
		{BatchKey: kw, Op: query.OpEstimate, I: 17},
		{BatchKey: kr, Op: query.OpEstimate, I: 5},
		{BatchKey: kh, Op: query.OpRangeSum, Lo: 3, Hi: 40},
		{BatchKey: kw, Op: query.OpRangeSum, Lo: 3, Hi: 40},
		{BatchKey: kw, Op: query.OpRangeSum, Lo: -5, Hi: 1 << 20}, // clamps, like the GET endpoint
		{BatchKey: query.BatchKey{Dataset: "ds", Family: "histogram", Metric: "SSE", Budget: 99}, Op: query.OpEstimate, I: 0},
		{BatchKey: kh, Op: query.OpEstimate, I: -1},
		{BatchKey: kh, Op: "median", I: 1},
	}}
	resp, got, bad := postQuery(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %v", resp.StatusCode, bad)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q", ct)
	}
	if len(got.Results) != len(req.Ops) {
		t.Fatalf("%d results for %d ops", len(got.Results), len(req.Ops))
	}
	single := func(op query.Op) float64 {
		t.Helper()
		base := fmt.Sprintf("%s/v1/%s?dataset=%s&family=%s&metric=%s&budget=%d",
			ts.URL, op.Op, op.Dataset, op.Family, op.Metric, op.Budget)
		if op.Op == query.OpEstimate {
			var er EstimateResponse
			if resp := getJSON(t, fmt.Sprintf("%s&i=%d", base, op.I), &er); resp.StatusCode != http.StatusOK {
				t.Fatalf("single %v: %d", op, resp.StatusCode)
			}
			return er.Estimate
		}
		var rr RangeSumResponse
		if resp := getJSON(t, fmt.Sprintf("%s&lo=%d&hi=%d", base, op.Lo, op.Hi), &rr); resp.StatusCode != http.StatusOK {
			t.Fatalf("single %v: %d", op, resp.StatusCode)
		}
		return rr.Sum
	}
	for i := 0; i < 7; i++ {
		r := got.Results[i]
		if r.Err != nil {
			t.Fatalf("op %d failed: %+v", i, r.Err)
		}
		if want := single(req.Ops[i]); math.Float64bits(r.Value) != math.Float64bits(want) {
			t.Fatalf("op %d: batch %v, single endpoint %v", i, r.Value, want)
		}
	}
	for i, wantCode := range map[int]string{7: CodeNotFound, 8: CodeBadRequest, 9: CodeBadRequest} {
		if r := got.Results[i]; r.Err == nil || r.Err.Code != wantCode {
			t.Fatalf("op %d: %+v, want %s", i, r, wantCode)
		}
	}
}

// TestQueryBatchRejectsBadBodies: only a malformed or empty batch fails
// the whole request, with the typed error envelope.
func TestQueryBatchRejectsBadBodies(t *testing.T) {
	_, ts, _ := newFixture(t, Config{C: 0.5})
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var bad ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&bad); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest || bad.Error.Code != CodeBadRequest {
		t.Fatalf("malformed body: %d %v", resp.StatusCode, bad)
	}
	if resp, _, bad := postQuery(t, ts, query.BatchRequest{}); resp.StatusCode != http.StatusBadRequest || bad.Error.Code != CodeBadRequest {
		t.Fatalf("empty batch: %d %v", resp.StatusCode, bad)
	}
}

// TestConcurrentQueryDuringMutation races /v1/query batches against
// /v1/append and /v1/update republication (run under -race). Two
// invariants: mid-mutation batches always answer from a coherent
// published entry (never a partial republish), and the instant a
// wait:true mutation returns, batches serve the new synopsis —
// bit-identical to an offline rebuild over the mutated dataset, i.e. no
// stale compiled querier survives a publish.
func TestConcurrentQueryDuringMutation(t *testing.T) {
	_, ts, vp := newValueFixture(t, Config{C: 0.5})
	for _, b := range []BuildRequest{
		{Dataset: "vds", Family: "histogram", Metric: "SSE", Budget: 3, Wait: true},
		{Dataset: "vds", Family: "wavelet", Metric: "SAE", Budget: 3, Wait: true},
	} {
		if resp, _, bad := postBuild(t, ts, b); resp.StatusCode != http.StatusOK {
			t.Fatalf("build %+v: %d %v", b, resp.StatusCode, bad)
		}
	}
	kh := query.BatchKey{Dataset: "vds", Family: "histogram", Metric: "SSE", Budget: 3}
	kw := query.BatchKey{Dataset: "vds", Family: "wavelet", Metric: "SAE", Budget: 3}
	hammer := query.BatchRequest{Ops: []query.Op{
		{BatchKey: kh, Op: query.OpEstimate, I: 2},
		{BatchKey: kw, Op: query.OpEstimate, I: 2},
		{BatchKey: kh, Op: query.OpRangeSum, Lo: 0, Hi: 10},
		{BatchKey: kw, Op: query.OpRangeSum, Lo: 0, Hi: 10},
	}}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, err := json.Marshal(hammer)
			if err != nil {
				t.Error(err)
				return
			}
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				var got query.BatchResponse
				err = json.NewDecoder(resp.Body).Decode(&got)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode != http.StatusOK || len(got.Results) != len(hammer.Ops) {
					t.Errorf("hammer batch: %d, %d results", resp.StatusCode, len(got.Results))
					return
				}
				for i, r := range got.Results {
					// Entries are replaced, never withdrawn, by a mutation
					// republish: every op must keep answering.
					if r.Err != nil {
						t.Errorf("hammer op %d failed mid-mutation: %+v", i, r.Err)
						return
					}
				}
			}
		}()
	}

	want := vp.Clone()
	mutate := func(step int) {
		t.Helper()
		if step%2 == 0 {
			item := ItemPDFWire{Entries: []FreqProbWire{{Freq: float64(step + 1), Prob: 0.5}}}
			if resp, _, bad := postMutate(t, ts, "/v1/append", MutateRequest{Dataset: "vds", Items: []ItemPDFWire{item}, Wait: true}); resp.StatusCode != http.StatusOK {
				t.Fatalf("append %d: %d %v", step, resp.StatusCode, bad)
			}
			want.Items = append(want.Items, item.toPDF())
			want.N = len(want.Items)
			return
		}
		item := ItemPDFWire{Entries: []FreqProbWire{{Freq: float64(step), Prob: 0.25}, {Freq: 1, Prob: 0.5}}}
		if resp, _, bad := postMutate(t, ts, "/v1/update", MutateRequest{Dataset: "vds", I: step, Item: &item, Wait: true}); resp.StatusCode != http.StatusOK {
			t.Fatalf("update %d: %d %v", step, resp.StatusCode, bad)
		}
		want.Items[step] = item.toPDF()
	}
	for step := 0; step < 6; step++ {
		mutate(step)
		// The mutation has returned: served answers must already be the
		// republished synopsis. Rebuild offline and compare bit for bit.
		resp, got, bad := postQuery(t, ts, hammer)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-mutation query: %d %v", resp.StatusCode, bad)
		}
		for i, op := range hammer.Ops {
			m, err := probsyn.ParseMetric(op.Metric)
			if err != nil {
				t.Fatal(err)
			}
			opts := []probsyn.BuildOption{probsyn.WithParams(probsyn.Params{C: 0.5})}
			if op.Family == catalog.FamilyWavelet {
				opts = append(opts, probsyn.WithWavelet())
			}
			syn, err := probsyn.Build(want, m, op.Budget, opts...)
			if err != nil {
				t.Fatal(err)
			}
			ref := query.Compile(syn)
			wantV := ref.Estimate(op.I)
			if op.Op == query.OpRangeSum {
				n := syn.Domain()
				wantV = ref.RangeSum(max(op.Lo, 0), min(op.Hi, n-1))
			}
			if r := got.Results[i]; r.Err != nil || math.Float64bits(r.Value) != math.Float64bits(wantV) {
				t.Fatalf("step %d op %d: served %+v, offline rebuild %v — stale querier after publish", step, i, r, wantV)
			}
		}
	}
	close(done)
	wg.Wait()
}

// newBenchServer stands up a server over the standard fixture dataset
// with a histogram and a wavelet synopsis already built, for the serve
// benchmarks.
func newBenchServer(b *testing.B) (*Server, *httptest.Server) {
	b.Helper()
	dataDir := b.TempDir()
	src := gen.MystiQLinkage(rand.New(rand.NewSource(7)), gen.DefaultMystiQ(64))
	f, err := os.Create(filepath.Join(dataDir, "ds.pd"))
	if err != nil {
		b.Fatal(err)
	}
	if err := probsyn.WriteDataset(f, src); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	s, err := New(Config{
		DataDir: dataDir, CatalogDir: b.TempDir(),
		Catalog: catalog.New(), Pool: engine.New(engine.Options{Workers: 2}), C: 0.5,
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	for _, fam := range []string{"histogram", "wavelet"} {
		key, err := catalog.NewKey("ds", fam, "SSE", 8, 0)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.build(key); err != nil {
			b.Fatal(err)
		}
	}
	b.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			b.Error(err)
		}
	})
	return s, ts
}

// BenchmarkServeQueryBatch measures the full HTTP round trip of a
// 100-op mixed batch against a running server — the end-to-end number
// scripts/loadbench.sh reproduces over a real socket.
func BenchmarkServeQueryBatch(b *testing.B) {
	s, ts := newBenchServer(b)
	defer ts.Close()
	kh := query.BatchKey{Dataset: "ds", Family: "histogram", Metric: "SSE", Budget: 8}
	kw := query.BatchKey{Dataset: "ds", Family: "wavelet", Metric: "SSE", Budget: 8}
	var req query.BatchRequest
	for i := 0; i < 100; i++ {
		k := kh
		if i%2 == 1 {
			k = kw
		}
		if i%4 < 2 {
			req.Ops = append(req.Ops, query.Op{BatchKey: k, Op: query.OpEstimate, I: i % 60})
		} else {
			req.Ops = append(req.Ops, query.Op{BatchKey: k, Op: query.OpRangeSum, Lo: i % 30, Hi: 30 + i%30})
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	_ = s
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var got query.BatchResponse
		err = json.NewDecoder(resp.Body).Decode(&got)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		if len(got.Results) != len(req.Ops) {
			b.Fatalf("%d results", len(got.Results))
		}
	}
}
