package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"probsyn"
	"probsyn/internal/catalog"
	"probsyn/internal/engine"
	"probsyn/internal/gen"
	"probsyn/internal/synopsis"
)

// newFixture writes a small dataset under a data dir and returns a
// running server (with catalog persistence), its HTTP test wrapper, and
// the parsed source for offline reference builds.
func newFixture(t *testing.T, cfg Config) (*Server, *httptest.Server, probsyn.Source) {
	t.Helper()
	dataDir := t.TempDir()
	src := gen.MystiQLinkage(rand.New(rand.NewSource(7)), gen.DefaultMystiQ(64))
	f, err := os.Create(filepath.Join(dataDir, "ds.pd"))
	if err != nil {
		t.Fatal(err)
	}
	if err := probsyn.WriteDataset(f, src); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	cfg.DataDir = dataDir
	if cfg.Catalog == nil {
		cfg.Catalog = catalog.New()
	}
	if cfg.Pool == nil {
		cfg.Pool = engine.New(engine.Options{Workers: 2})
	}
	if cfg.CatalogDir == "" {
		cfg.CatalogDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Error(err)
		}
	})
	return s, ts, src
}

func postBuild(t *testing.T, ts *httptest.Server, req BuildRequest) (*http.Response, BuildResponse, ErrorBody) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/build", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ok BuildResponse
	var bad ErrorBody
	var raw json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, &ok); err != nil {
			t.Fatal(err)
		}
	} else if err := json.Unmarshal(raw, &bad); err != nil {
		t.Fatal(err)
	}
	return resp, ok, bad
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
	return resp
}

// The acceptance round trip: the server builds both families through the
// shared pool and serves estimates exactly equal to offline Build
// results, and the persisted catalog file is byte-identical to the
// offline envelope (replica byte-interchangeability).
func TestServerRoundTripMatchesOfflineBuilds(t *testing.T) {
	catDir := t.TempDir()
	s, ts, src := newFixture(t, Config{CatalogDir: catDir, C: 0.5})
	cases := []struct {
		family, metric string
		budget         int
		offline        []probsyn.BuildOption
	}{
		{catalog.FamilyHistogram, "SSE", 8, nil},
		{catalog.FamilyWavelet, "SAE", 8, []probsyn.BuildOption{probsyn.WithWavelet()}},
	}
	for _, tc := range cases {
		resp, ok, bad := postBuild(t, ts, BuildRequest{Dataset: "ds", Family: tc.family, Metric: tc.metric, Budget: tc.budget, Wait: true})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s build: status %d, error %+v", tc.family, resp.StatusCode, bad)
		}
		if ok.Status != "built" {
			t.Fatalf("%s build status %q, want built", tc.family, ok.Status)
		}

		opts := append([]probsyn.BuildOption{probsyn.WithParams(probsyn.Params{C: 0.5})}, tc.offline...)
		m, err := probsyn.ParseMetric(tc.metric)
		if err != nil {
			t.Fatal(err)
		}
		want, err := probsyn.Build(src, m, tc.budget, opts...)
		if err != nil {
			t.Fatal(err)
		}
		base := fmt.Sprintf("%s/v1/estimate?dataset=ds&family=%s&metric=%s&budget=%d", ts.URL, tc.family, tc.metric, tc.budget)
		for i := 0; i < src.Domain(); i += 7 {
			var er EstimateResponse
			if resp := getJSON(t, fmt.Sprintf("%s&i=%d", base, i), &er); resp.StatusCode != http.StatusOK {
				t.Fatalf("estimate status %d", resp.StatusCode)
			}
			if er.Estimate != want.Estimate(i) {
				t.Fatalf("%s: served Estimate(%d) = %v, offline %v", tc.family, i, er.Estimate, want.Estimate(i))
			}
		}
		var rr RangeSumResponse
		rurl := fmt.Sprintf("%s/v1/rangesum?dataset=ds&family=%s&metric=%s&budget=%d&lo=3&hi=40", ts.URL, tc.family, tc.metric, tc.budget)
		if resp := getJSON(t, rurl, &rr); resp.StatusCode != http.StatusOK {
			t.Fatalf("rangesum status %d", resp.StatusCode)
		}
		if want := want.RangeSum(3, 40); rr.Sum != want {
			t.Fatalf("%s: served RangeSum = %v, offline %v", tc.family, rr.Sum, want)
		}
		// A partially out-of-domain range is clamped AND echoed clamped,
		// so the response never claims coverage beyond the domain.
		curl := fmt.Sprintf("%s/v1/rangesum?dataset=ds&family=%s&metric=%s&budget=%d&lo=-7&hi=1000000", ts.URL, tc.family, tc.metric, tc.budget)
		var rc RangeSumResponse
		if resp := getJSON(t, curl, &rc); resp.StatusCode != http.StatusOK {
			t.Fatalf("clamped rangesum status %d", resp.StatusCode)
		}
		if n := want.Domain(); rc.Lo != 0 || rc.Hi != n-1 {
			t.Fatalf("%s: clamped range echoed as [%d, %d], want [0, %d]", tc.family, rc.Lo, rc.Hi, n-1)
		}

		// The persisted catalog file must be byte-identical to the
		// offline envelope of the same synopsis.
		key, err := catalog.NewKey("ds", tc.family, tc.metric, tc.budget, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		onDisk, err := os.ReadFile(filepath.Join(catDir, key.Filename()))
		if err != nil {
			t.Fatal(err)
		}
		offline, err := synopsis.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(onDisk, offline) {
			t.Fatalf("%s: persisted envelope differs from offline bytes (%d vs %d bytes)", tc.family, len(onDisk), len(offline))
		}
	}

	// Listing reports both synopses.
	var list ListResponse
	if resp := getJSON(t, ts.URL+"/v1/synopses", &list); resp.StatusCode != http.StatusOK {
		t.Fatalf("synopses status %d", resp.StatusCode)
	}
	if len(list.Synopses) != 2 {
		t.Fatalf("listed %d synopses, want 2", len(list.Synopses))
	}
	for _, info := range list.Synopses {
		if info.Terms <= 0 || info.Bytes <= 0 {
			t.Fatalf("listing entry %+v not populated", info)
		}
	}

	// A rebuild of an existing key answers "ready" without re-queueing.
	resp, ok, _ := postBuild(t, ts, BuildRequest{Dataset: "ds", Family: catalog.FamilyHistogram, Metric: "SSE", Budget: 8})
	if resp.StatusCode != http.StatusOK || ok.Status != "ready" {
		t.Fatalf("rebuild: status %d %q, want 200 ready", resp.StatusCode, ok.Status)
	}
	_ = s
}

// Concurrent build requests must be admission-controlled by the shared
// pool: with MaxBuilds=2, the pool's high-water mark of in-flight builds
// never exceeds 2 even with more queue workers and many requests.
func TestConcurrentBuildsBoundedByAdmissionControl(t *testing.T) {
	pool := engine.New(engine.Options{Workers: 2, MaxBuilds: 2})
	_, ts, _ := newFixture(t, Config{Pool: pool, BuildWorkers: 4, QueueDepth: 32, C: 0.5})
	var wg sync.WaitGroup
	for b := 2; b <= 9; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			resp, ok, bad := postBuild(t, ts, BuildRequest{Dataset: "ds", Family: catalog.FamilyHistogram, Metric: "SSRE", Budget: b, Wait: true})
			if resp.StatusCode != http.StatusOK || ok.Status != "built" {
				t.Errorf("budget %d: status %d %+v", b, resp.StatusCode, bad)
			}
		}(b)
	}
	wg.Wait()
	if peak := pool.PeakInFlight(); peak < 1 || peak > 2 {
		t.Fatalf("peak in-flight builds %d, want in [1, 2]", peak)
	}
	if pool.InFlight() != 0 {
		t.Fatalf("in-flight builds %d after completion", pool.InFlight())
	}
}

// The build queue is a bounded FIFO: when the one worker is blocked on
// admission and the queue is at depth, the next build is rejected with
// queue_full — requests do not pile up unboundedly.
func TestBuildQueueBounded(t *testing.T) {
	pool := engine.New(engine.Options{Workers: 1, MaxBuilds: 1})
	_, ts, _ := newFixture(t, Config{Pool: pool, BuildWorkers: 1, QueueDepth: 1, C: 0.5})

	// Hold the only build token: the worker's first job blocks inside
	// probsyn.Build waiting for admission.
	release, err := pool.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	req := func(b int) BuildRequest {
		return BuildRequest{Dataset: "ds", Family: catalog.FamilyHistogram, Metric: "SSE", Budget: b}
	}
	if resp, ok, _ := postBuild(t, ts, req(2)); resp.StatusCode != http.StatusAccepted || ok.Status != "queued" {
		t.Fatalf("first build: status %d %q", resp.StatusCode, ok.Status)
	}
	// Wait for the worker to dequeue job 1 (blocked on the token), then
	// fill the queue with job 2; job 3 must be rejected.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, _, bad := postBuild(t, ts, req(3))
		if resp.StatusCode == http.StatusAccepted {
			break // job 2 fit: job 1 has been dequeued by the worker
		}
		if bad.Error.Code != CodeQueueFull {
			t.Fatalf("unexpected error %+v", bad)
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never dequeued the first job")
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, _, bad := postBuild(t, ts, req(4))
	if resp.StatusCode != http.StatusServiceUnavailable || bad.Error.Code != CodeQueueFull {
		t.Fatalf("overflow build: status %d, error %+v, want queue_full", resp.StatusCode, bad)
	}
	release() // unblock; Cleanup's Shutdown drains jobs 1 and 2
}

// Relative-error synopses are keyed by their sanity constant: a build
// with an explicit c lands under that c, is served only when the lookup
// carries the same c (explicitly or via the server default), and a
// different c is a distinct synopsis — never served interchangeably.
func TestRelativeMetricKeyedBySanityConstant(t *testing.T) {
	cat := catalog.New()
	_, ts, src := newFixture(t, Config{Catalog: cat, C: 0.5})
	for _, c := range []float64{0.5, 1.0} {
		resp, ok, bad := postBuild(t, ts, BuildRequest{Dataset: "ds", Family: catalog.FamilyHistogram, Metric: "SSRE", Budget: 4, C: c, Wait: true})
		if resp.StatusCode != http.StatusOK || ok.Status != "built" {
			t.Fatalf("c=%g build: status %d %+v", c, resp.StatusCode, bad)
		}
		if ok.Key.C != c {
			t.Fatalf("c=%g build keyed at C=%g", c, ok.Key.C)
		}
	}
	if cat.Len() != 2 {
		t.Fatalf("catalog has %d entries, want one per sanity constant", cat.Len())
	}
	estimate := func(query string) (int, float64) {
		t.Helper()
		var er EstimateResponse
		resp := getJSON(t, ts.URL+"/v1/estimate?dataset=ds&family=histogram&metric=SSRE&budget=4&i=2"+query, &er)
		return resp.StatusCode, er.Estimate
	}
	sDefault, eDefault := estimate("") // server default c=0.5
	s05, e05 := estimate("&c=0.5")
	s10, e10 := estimate("&c=1.0")
	if sDefault != http.StatusOK || s05 != http.StatusOK || s10 != http.StatusOK {
		t.Fatalf("estimate statuses %d/%d/%d, want all 200", sDefault, s05, s10)
	}
	if eDefault != e05 {
		t.Fatalf("default-c estimate %v != explicit c=0.5 estimate %v", eDefault, e05)
	}
	for _, c := range []float64{0.5, 1.0} {
		want, err := probsyn.Build(src, probsyn.SSRE, 4, probsyn.WithParams(probsyn.Params{C: c}))
		if err != nil {
			t.Fatal(err)
		}
		got := e05
		if c == 1.0 {
			got = e10
		}
		if got != want.Estimate(2) {
			t.Fatalf("c=%g: served %v, offline %v", c, got, want.Estimate(2))
		}
	}
	if status, _ := estimate("&c=2.0"); status != http.StatusNotFound {
		t.Fatalf("estimate under unbuilt c returned %d, want 404", status)
	}
}

// Re-POSTing an uncataloged key while its build is queued or running
// must attach to the in-flight job, not enqueue duplicate DPs: with a
// depth-1 queue every re-POST still answers "queued", and exactly one
// catalog entry results.
func TestDuplicateBuildRequestsCoalesce(t *testing.T) {
	pool := engine.New(engine.Options{Workers: 1, MaxBuilds: 1})
	cat := catalog.New()
	_, ts, _ := newFixture(t, Config{Pool: pool, Catalog: cat, BuildWorkers: 1, QueueDepth: 1, C: 0.5})
	release, err := pool.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	req := BuildRequest{Dataset: "ds", Family: catalog.FamilyHistogram, Metric: "SSE", Budget: 5}
	for k := 0; k < 5; k++ {
		resp, ok, bad := postBuild(t, ts, req)
		if resp.StatusCode != http.StatusAccepted || ok.Status != "queued" {
			t.Fatalf("re-POST %d: status %d %q (error %+v), want 202 queued", k, resp.StatusCode, ok.Status, bad)
		}
	}
	release()
	req.Wait = true
	if resp, _, bad := postBuild(t, ts, req); resp.StatusCode != http.StatusOK {
		t.Fatalf("final wait build: status %d, error %+v", resp.StatusCode, bad)
	}
	if cat.Len() != 1 {
		t.Fatalf("catalog has %d entries after duplicate requests, want 1", cat.Len())
	}
}

// Shutdown stops ingest with a typed error but drains already-queued
// builds to completion.
func TestShutdownDrainsQueue(t *testing.T) {
	cat := catalog.New()
	s, ts, _ := newFixture(t, Config{Catalog: cat, C: 0.5})
	if resp, _, _ := postBuild(t, ts, BuildRequest{Dataset: "ds", Family: catalog.FamilyWavelet, Metric: "SSE", Budget: 4}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("enqueue: status %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	key, err := catalog.NewKey("ds", catalog.FamilyWavelet, "SSE", 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cat.Get(key); !ok {
		t.Fatal("queued build was not drained before shutdown returned")
	}
	resp, _, bad := postBuild(t, ts, BuildRequest{Dataset: "ds", Family: catalog.FamilyHistogram, Metric: "SSE", Budget: 4})
	if resp.StatusCode != http.StatusServiceUnavailable || bad.Error.Code != CodeShuttingDown {
		t.Fatalf("post-shutdown build: status %d, error %+v", resp.StatusCode, bad)
	}
	// Estimates keep answering after ingest closes.
	var er EstimateResponse
	if resp := getJSON(t, ts.URL+"/v1/estimate?dataset=ds&family=wavelet&metric=SSE&budget=4&i=1", &er); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-shutdown estimate: status %d", resp.StatusCode)
	}
}

func TestTypedErrors(t *testing.T) {
	_, ts, _ := newFixture(t, Config{C: 0.5})
	cases := []struct {
		name   string
		do     func() (*http.Response, ErrorBody)
		status int
		code   string
	}{
		{"estimate before build", func() (*http.Response, ErrorBody) {
			var bad ErrorBody
			resp := getJSON(t, ts.URL+"/v1/estimate?dataset=ds&family=histogram&metric=SSE&budget=8&i=0", &bad)
			return resp, bad
		}, http.StatusNotFound, CodeNotFound},
		{"unknown metric", func() (*http.Response, ErrorBody) {
			resp, _, bad := postBuild(t, ts, BuildRequest{Dataset: "ds", Family: "histogram", Metric: "XXX", Budget: 8})
			return resp, bad
		}, http.StatusBadRequest, CodeBadRequest},
		{"unknown family", func() (*http.Response, ErrorBody) {
			resp, _, bad := postBuild(t, ts, BuildRequest{Dataset: "ds", Family: "sketch", Metric: "SSE", Budget: 8})
			return resp, bad
		}, http.StatusBadRequest, CodeBadRequest},
		{"missing dataset", func() (*http.Response, ErrorBody) {
			resp, _, bad := postBuild(t, ts, BuildRequest{Dataset: "nope", Family: "histogram", Metric: "SSE", Budget: 8})
			return resp, bad
		}, http.StatusNotFound, CodeNotFound},
		{"path traversal", func() (*http.Response, ErrorBody) {
			resp, _, bad := postBuild(t, ts, BuildRequest{Dataset: "../ds", Family: "histogram", Metric: "SSE", Budget: 8})
			return resp, bad
		}, http.StatusBadRequest, CodeBadRequest},
		{"bad body", func() (*http.Response, ErrorBody) {
			resp, err := http.Post(ts.URL+"/v1/build", "application/json", bytes.NewReader([]byte("{nope")))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var bad ErrorBody
			if err := json.NewDecoder(resp.Body).Decode(&bad); err != nil {
				t.Fatal(err)
			}
			return resp, bad
		}, http.StatusBadRequest, CodeBadRequest},
		{"oversized body", func() (*http.Response, ErrorBody) {
			huge := append([]byte(`{"dataset":"`), bytes.Repeat([]byte("x"), maxBuildBody)...)
			huge = append(huge, []byte(`","family":"histogram","metric":"SSE","budget":8}`)...)
			resp, err := http.Post(ts.URL+"/v1/build", "application/json", bytes.NewReader(huge))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var bad ErrorBody
			if err := json.NewDecoder(resp.Body).Decode(&bad); err != nil {
				t.Fatal(err)
			}
			return resp, bad
		}, http.StatusBadRequest, CodeBadRequest},
		{"out-of-domain estimate", func() (*http.Response, ErrorBody) {
			if resp, _, _ := postBuild(t, ts, BuildRequest{Dataset: "ds", Family: "histogram", Metric: "SSE", Budget: 3, Wait: true}); resp.StatusCode != http.StatusOK {
				t.Fatal("setup build failed")
			}
			var bad ErrorBody
			resp := getJSON(t, ts.URL+"/v1/estimate?dataset=ds&family=histogram&metric=SSE&budget=3&i=100000", &bad)
			return resp, bad
		}, http.StatusBadRequest, CodeBadRequest},
		{"out-of-domain range", func() (*http.Response, ErrorBody) {
			if resp, _, _ := postBuild(t, ts, BuildRequest{Dataset: "ds", Family: "histogram", Metric: "SSE", Budget: 3, Wait: true}); resp.StatusCode != http.StatusOK {
				t.Fatal("setup build failed")
			}
			var bad ErrorBody
			resp := getJSON(t, ts.URL+"/v1/rangesum?dataset=ds&family=histogram&metric=SSE&budget=3&lo=100000&hi=100005", &bad)
			return resp, bad
		}, http.StatusBadRequest, CodeBadRequest},
		{"bad range", func() (*http.Response, ErrorBody) {
			// Need an entry for the range check to be reached.
			if resp, _, _ := postBuild(t, ts, BuildRequest{Dataset: "ds", Family: "histogram", Metric: "SSE", Budget: 2, Wait: true}); resp.StatusCode != http.StatusOK {
				t.Fatal("setup build failed")
			}
			var bad ErrorBody
			resp := getJSON(t, ts.URL+"/v1/rangesum?dataset=ds&family=histogram&metric=SSE&budget=2&lo=9&hi=3", &bad)
			return resp, bad
		}, http.StatusBadRequest, CodeBadRequest},
	}
	for _, tc := range cases {
		resp, bad := tc.do()
		if resp.StatusCode != tc.status || bad.Error.Code != tc.code {
			t.Errorf("%s: status %d code %q, want %d %q (%s)", tc.name, resp.StatusCode, bad.Error.Code, tc.status, tc.code, bad.Error.Message)
		}
	}
}

func TestNewValidatesConfig(t *testing.T) {
	cat, pool := catalog.New(), engine.Serial()
	bad := []Config{
		{Catalog: nil, Pool: pool, DataDir: "x"},
		{Catalog: cat, Pool: nil, DataDir: "x"},
		{Catalog: cat, Pool: pool, DataDir: ""},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

// postSweep POSTs to /v1/sweep with the same body shape as a build.
func postSweep(t *testing.T, ts *httptest.Server, req BuildRequest) (*http.Response, BuildResponse, ErrorBody) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ok BuildResponse
	var bad ErrorBody
	var raw json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, &ok); err != nil {
			t.Fatal(err)
		}
	} else if err := json.Unmarshal(raw, &bad); err != nil {
		t.Fatal(err)
	}
	return resp, ok, bad
}

// One POST /v1/sweep must catalog the synopsis for every budget 1..B of
// the key, each byte-identical — in memory and on disk — to an offline
// single-budget build, for both families; a re-POST answers "ready".
func TestSweepCatalogsEveryBudgetByteIdentical(t *testing.T) {
	catDir := t.TempDir()
	cat := catalog.New()
	_, ts, src := newFixture(t, Config{CatalogDir: catDir, Catalog: cat, C: 0.5})
	const B = 6
	cases := []struct {
		family, metric string
		offline        []probsyn.BuildOption
	}{
		{catalog.FamilyHistogram, "SSE", nil},
		{catalog.FamilyWavelet, "SAE", []probsyn.BuildOption{probsyn.WithWavelet()}},
	}
	for _, tc := range cases {
		resp, ok, bad := postSweep(t, ts, BuildRequest{
			Dataset: "ds", Family: tc.family, Metric: tc.metric, Budget: B, Wait: true,
		})
		if resp.StatusCode != http.StatusOK || ok.Status != "built" {
			t.Fatalf("%s sweep: status %d %q (error %+v)", tc.family, resp.StatusCode, ok.Status, bad)
		}
		if ok.Budgets != B {
			t.Fatalf("%s sweep: budgets %d, want %d", tc.family, ok.Budgets, B)
		}
		for b := 1; b <= B; b++ {
			key, err := catalog.NewKey("ds", tc.family, tc.metric, b, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			entry, found := cat.Get(key)
			if !found {
				t.Fatalf("%s sweep: budget %d not cataloged", tc.family, b)
			}
			want, err := probsyn.Build(src, mustMetric(t, tc.metric), b, tc.offline...)
			if err != nil {
				t.Fatal(err)
			}
			wantBytes, err := probsyn.MarshalSynopsis(want)
			if err != nil {
				t.Fatal(err)
			}
			gotBytes, err := synopsis.Marshal(entry.Synopsis)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotBytes, wantBytes) {
				t.Fatalf("%s sweep: budget %d synopsis differs from single offline build", tc.family, b)
			}
			disk, err := os.ReadFile(filepath.Join(catDir, key.Filename()))
			if err != nil {
				t.Fatalf("%s sweep: budget %d not persisted: %v", tc.family, b, err)
			}
			if !bytes.Equal(disk, wantBytes) {
				t.Fatalf("%s sweep: budget %d catalog file differs from single offline build", tc.family, b)
			}
		}
		// All budgets present now: a repeat answers ready without building.
		resp, ok, bad = postSweep(t, ts, BuildRequest{Dataset: "ds", Family: tc.family, Metric: tc.metric, Budget: B})
		if resp.StatusCode != http.StatusOK || ok.Status != "ready" {
			t.Fatalf("%s re-sweep: status %d %q (error %+v), want 200 ready", tc.family, resp.StatusCode, ok.Status, bad)
		}
	}
}

func mustMetric(t *testing.T, name string) probsyn.Metric {
	t.Helper()
	m, err := probsyn.ParseMetric(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// A sweep whose budget exceeds the domain still catalogs every requested
// budget; the over-domain budgets repeat the clamped frontier maximum,
// exactly as single builds at those budgets would.
func TestSweepBudgetsBeyondDomainClamp(t *testing.T) {
	cat := catalog.New()
	_, ts, src := newFixture(t, Config{Catalog: cat, C: 0.5})
	n := src.Domain()
	B := n + 3
	resp, _, bad := postSweep(t, ts, BuildRequest{
		Dataset: "ds", Family: catalog.FamilyHistogram, Metric: "SSE", Budget: B, Wait: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: status %d, error %+v", resp.StatusCode, bad)
	}
	for _, b := range []int{n, n + 1, B} {
		key, err := catalog.NewKey("ds", catalog.FamilyHistogram, "SSE", b, 0)
		if err != nil {
			t.Fatal(err)
		}
		entry, found := cat.Get(key)
		if !found {
			t.Fatalf("budget %d missing from swept catalog", b)
		}
		if got := entry.Synopsis.Terms(); got != n {
			t.Fatalf("budget %d has %d terms, want the domain-clamped %d", b, got, n)
		}
	}
}

// Sweep budgets are bounded per request: a sweep registers one catalog
// entry per budget, so an astronomically large budget field must be
// rejected up front instead of grinding the server.
func TestSweepBudgetBounded(t *testing.T) {
	_, ts, _ := newFixture(t, Config{C: 0.5})
	resp, _, bad := postSweep(t, ts, BuildRequest{
		Dataset: "ds", Family: catalog.FamilyHistogram, Metric: "SSE", Budget: maxSweepBudget + 1,
	})
	if resp.StatusCode != http.StatusBadRequest || bad.Error.Code != CodeBadRequest {
		t.Fatalf("oversized sweep: status %d, error %+v, want 400 bad_request", resp.StatusCode, bad)
	}
}

// Sweeps dedupe with sweeps: re-POSTing a queued sweep attaches to the
// in-flight job instead of enqueueing another frontier build.
func TestDuplicateSweepRequestsCoalesce(t *testing.T) {
	pool := engine.New(engine.Options{Workers: 1, MaxBuilds: 1})
	cat := catalog.New()
	_, ts, _ := newFixture(t, Config{Pool: pool, Catalog: cat, BuildWorkers: 1, QueueDepth: 1, C: 0.5})
	release, err := pool.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	req := BuildRequest{Dataset: "ds", Family: catalog.FamilyHistogram, Metric: "SSE", Budget: 4}
	for k := 0; k < 5; k++ {
		resp, ok, bad := postSweep(t, ts, req)
		if resp.StatusCode != http.StatusAccepted || ok.Status != "queued" {
			t.Fatalf("re-POST %d: status %d %q (error %+v), want 202 queued", k, resp.StatusCode, ok.Status, bad)
		}
	}
	release()
	req.Wait = true
	if resp, _, bad := postSweep(t, ts, req); resp.StatusCode != http.StatusOK {
		t.Fatalf("final wait sweep: status %d, error %+v", resp.StatusCode, bad)
	}
	if cat.Len() != req.Budget {
		t.Fatalf("catalog has %d entries after duplicate sweeps, want %d", cat.Len(), req.Budget)
	}
}
