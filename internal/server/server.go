// Package server is the probsyn serving layer: an HTTP surface over the
// synopsis catalog and the shared build pool. The paper's economics —
// one expensive DP build amortized over many cheap point/range estimates
// — is exactly a long-lived process, so the server keeps every built
// synopsis in an in-memory catalog (read-mostly, answering estimates
// under a read lock) and accepts build requests onto a bounded FIFO
// queue drained by a fixed set of workers. The workers all build through
// one process-wide engine.Pool whose MaxBuilds admission cap bounds how
// many DPs run at once, however many requests arrive; everything else
// waits in the queue. Builds are deterministic, so two replicas serving
// the same catalog key answer byte-identically.
//
// Endpoints (all JSON):
//
//	POST /v1/build     {dataset, family, metric, budget, wait?} — enqueue
//	                   a build; with wait=true the response reports the
//	                   completed build (or its error).
//	POST /v1/sweep     same body — enqueue a budget sweep: one DP run
//	                   under one admission token builds and catalogs the
//	                   synopsis for every budget 1..budget, each
//	                   byte-identical to a single build of that budget.
//	POST /v1/append    {dataset, items, wait?} — enqueue a dataset
//	                   mutation: the items extend the (value-pdf)
//	                   dataset, and every cataloged budget of every key
//	                   of that dataset is revalidated incrementally from
//	                   retained live DP state and atomically republished
//	                   (dataset persisted first, then each budget
//	                   persist-before-publish).
//	POST /v1/update    {dataset, i, item, wait?} — same, replacing item
//	                   i's frequency pdf in place.
//	GET  /v1/estimate  ?dataset=&family=&metric=&budget=&i=     — point
//	                   estimate from the catalog.
//	GET  /v1/rangesum  ?dataset=&family=&metric=&budget=&lo=&hi= — range
//	                   estimate from the catalog.
//	POST /v1/query     {ops: [{dataset, family, metric, budget, c?, op,
//	                   i?, lo?, hi?}, ...]} — a batch of heterogeneous
//	                   estimate/rangesum operations against one or many
//	                   keys, answered in request order with per-op
//	                   errors; one round trip amortizes parsing and key
//	                   resolution across the whole batch.
//	GET  /v1/synopses  — list catalog entries.
//	POST /v1/accept    ?name= (body: envelope bytes) — ingest one piece
//	                   of a sharded build pushed by the building node
//	                   (cluster internal; persist-before-publish).
//	GET  /v1/blob      ?name= — a cataloged synopsis's envelope bytes,
//	                   fetched by gathering nodes to compile remote
//	                   pieces locally.
//
// Sharded builds and cluster mode: a build request with shards >= 2
// partitions the domain, builds the shards in parallel over the pool
// (probsyn.BuildSharded), and publishes the merged synopsis under the
// ordinary key plus k piece entries under shard-suffixed keys. With a
// peer list configured (Config.Peers/Self), the server is one node of
// a scatter/gather cluster: builds forward to the dataset's owning
// node, pieces spread over the consistent-hash ring, and the single
// GET endpoints accept &shards=k (gather across pieces) and &shard=s
// (answer one piece locally) — see cluster.go for the full protocol.
//
// All queries — the single GET endpoints and batches alike — answer
// through the entry's compiled querier (internal/query), built once at
// publish time: O(log) time and zero allocation per operation,
// bit-identical to the synopsis's own methods.
//
// Mutations are serialized per dataset (builds of a dataset share a read
// lock, mutations take the write lock), so a build admitted before an
// append can never overwrite the republished catalog with a stale
// synopsis, and two mutations cannot interleave their live-state
// updates. Because live maintenance and from-scratch builds are
// bit-identical by construction, a republished entry is byte-for-byte
// what a fresh build over the mutated dataset would persist.
//
// Errors are typed: {"error": {"code", "message"}} with codes
// bad_request, not_found, queue_full, build_failed, shutting_down,
// peer_unavailable.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"probsyn"
	"probsyn/internal/catalog"
	"probsyn/internal/cluster"
	"probsyn/internal/engine"
	"probsyn/internal/pdata"
	"probsyn/internal/query"
)

// Config assembles a Server. Catalog and Pool are shared, process-wide
// state: psynd creates one of each and hands them to the server, the
// offline tools read and write the same catalog files.
type Config struct {
	// DataDir holds the buildable datasets: dataset name "x" resolves to
	// DataDir/x.pd in the probsyn text format.
	DataDir string
	// CatalogDir, when non-empty, is where newly built synopses are
	// persisted (and typically where the catalog was preloaded from).
	CatalogDir string
	// Catalog is the in-memory synopsis registry estimates answer from.
	Catalog *catalog.Catalog
	// Pool is the process-wide build pool; its MaxBuilds cap is the
	// admission control on concurrent build DPs.
	Pool *engine.Pool
	// QueueDepth bounds the build FIFO; <= 0 means DefaultQueueDepth.
	// A full queue rejects new builds with queue_full instead of letting
	// requests pile up unboundedly.
	QueueDepth int
	// BuildWorkers is how many goroutines drain the queue; <= 0 means
	// DefaultBuildWorkers. Workers beyond the pool's MaxBuilds cap wait
	// for build tokens inside probsyn.Build.
	BuildWorkers int
	// C is the sanity constant handed to relative-error metric builds.
	C float64
	// FlatPath, when non-empty, is the flat mmap catalog file this
	// server maintains (conventionally catalog.FlatPath(CatalogDir)):
	// removed before any job that changes the catalog, re-packed in the
	// background once the server is quiescent, and packed once more on
	// graceful shutdown — so a replica boot always finds either a flat
	// file exactly matching the .psyn directory or no flat file at all.
	FlatPath string
	// MaxLiveStates caps how many live frontiers (retained DP state for
	// incremental mutation maintenance) the server keeps; <= 0 means
	// DefaultMaxLiveStates. Beyond the cap the least-recently-mutated
	// frontier is dropped — a later mutation of its dataset rebuilds it
	// from the persisted source, trading one build for bounded memory.
	MaxLiveStates int
	// Peers, when non-empty, makes this server one node of a
	// scatter/gather cluster: the full static peer address list, in the
	// SAME order and spelling on every node — placement is a pure
	// function of this list, so any disagreement splits the ring.
	Peers []string
	// Self is this node's own entry in Peers (required when Peers is
	// set): how the node recognizes which datasets and pieces it owns.
	Self string
	// Logf, when non-nil, receives operational log lines (failed builds
	// especially — an async wait:false build has no response to carry
	// its error, so the log is where it surfaces). Nil means the
	// standard library logger.
	Logf func(format string, args ...any)
}

// Queue and worker defaults for the zero Config.
const (
	DefaultQueueDepth    = 64
	DefaultBuildWorkers  = 2
	DefaultMaxLiveStates = 32
)

// Server owns the build queue and the HTTP handlers.
type Server struct {
	cfg   Config
	queue chan *buildJob

	// mutQueue carries dataset mutations, drained by exactly ONE
	// goroutine: appends are order-sensitive ("item Domain() gets
	// items[0]"), and a shared multi-worker queue would let two workers
	// race on the per-dataset write lock and apply queued mutations out
	// of POST order. One drainer preserves FIFO; builds keep their own
	// multi-worker queue.
	mutQueue chan *buildJob

	// closing gates enqueues: Shutdown takes the write lock to set
	// closed and close the queue, enqueues hold the read lock — so no
	// send can race the close.
	closingMu sync.RWMutex
	closed    bool
	workers   sync.WaitGroup

	// Cluster state, nil outside cluster mode: the consistent-hash ring
	// every node derives identically from cfg.Peers, and the reused
	// HTTP client forwarded requests and piece pushes go through.
	ring   *cluster.Ring
	remote *cluster.Client

	// pieceCache holds compiled queriers for REMOTE pieces of datasets
	// this node owns: synopses are tiny (B terms), so the owning
	// coordinator fetches each piece's envelope once (GET /v1/blob) and
	// answers every later gathered read locally instead of paying a
	// peer round trip per request. Only the dataset owner populates it
	// — all sharded rebuilds of a dataset run on its owner, which drops
	// the stale entries after redistributing (see buildSharded) — so
	// the cache can never outlive the build it was compiled from.
	pieceMu    sync.RWMutex
	pieceCache map[catalog.Key]cachedPiece

	// flat maintains the flat mmap catalog file (nil when Config.
	// FlatPath is empty): invalidation before catalog-changing jobs,
	// background re-pack at quiescence, final pack at shutdown.
	flat *flatKeeper

	// read-mostly cache of parsed datasets.
	dsMu     sync.RWMutex
	datasets map[string]probsyn.Source

	// pending dedupes builds: one job per key from enqueue until its
	// build finishes, so re-POSTing an uncataloged key (a wait:false
	// client polling for completion) attaches to the in-flight job
	// instead of multiplying expensive duplicate DPs. Sweeps dedupe
	// separately from single builds of the same key — a plain build in
	// flight does not produce the sweep's lower budgets. Mutations are
	// never deduped (each one is distinct work) but coalesce with
	// in-flight builds through the catalog: a queued build whose key a
	// mutation already republished finds the entry and skips its DP.
	pendingMu sync.Mutex
	pending   map[jobKey]*buildJob

	// Per-dataset coherence locks: builds hold the read side, mutations
	// the write side, so a stale pre-mutation build can never land after
	// a mutation's republish.
	dlMu    sync.Mutex
	dsLocks map[string]*sync.RWMutex

	// lives retains the per-(dataset, family, metric, c) maintainable
	// frontiers mutations revalidate incrementally, bounded at
	// cfg.MaxLiveStates with least-recently-mutated eviction. breq is
	// the budget the live state was requested at: a catalog that has
	// since gained higher budgets forces a rebuild at the larger
	// request.
	livesMu   sync.Mutex
	lives     map[liveKey]*liveState
	liveClock int64
}

// jobKey identifies a deduplicatable unit of build work. shards > 1
// dedupes sharded builds separately from plain builds of the same key:
// they produce different catalog footprints (pieces).
type jobKey struct {
	catalog.Key
	sweep  bool
	shards int
}

// liveKey identifies one maintainable frontier: every cataloged budget
// of the tuple shares one retained DP state. q distinguishes quantized
// (approximate restricted wavelet) frontiers from exact ones — they
// retain different DP state and must never serve each other's keys.
type liveKey struct {
	dataset, family, metric string
	c                       float64
	q                       int
}

// liveState is a retained live frontier plus the budget it was requested
// at (Bmax() may be smaller — domain clamping) and its LRU stamp.
type liveState struct {
	m     probsyn.Maintainer
	breq  int
	stamp int64
}

// jobKind discriminates queued work.
type jobKind int

const (
	jobBuild jobKind = iota
	jobSweep
	jobMutate
)

// buildJob is one queued build, budget sweep, or dataset mutation; err
// (and the mutation results) are valid once done is closed.
type buildJob struct {
	kind   jobKind
	key    catalog.Key // build/sweep
	shards int         // > 1 selects the sharded build path
	mut    *mutation   // mutate
	done   chan struct{}
	err    error

	// mutation results, reported on wait:true responses.
	domain      int
	republished int
}

// mutation is one parsed dataset mutation: an append batch, or an
// in-place item update when update is non-nil.
type mutation struct {
	dataset string
	items   []pdata.ItemPDF // append batch
	updateI int
	update  *pdata.ItemPDF
}

// New validates the config and returns a server with its queue workers
// running.
func New(cfg Config) (*Server, error) {
	if cfg.Catalog == nil {
		return nil, fmt.Errorf("server: nil catalog")
	}
	if cfg.Pool == nil {
		return nil, fmt.Errorf("server: nil pool")
	}
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("server: no data directory")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.BuildWorkers <= 0 {
		cfg.BuildWorkers = DefaultBuildWorkers
	}
	if cfg.MaxLiveStates <= 0 {
		cfg.MaxLiveStates = DefaultMaxLiveStates
	}
	ring, remote, err := newClusterState(&cfg)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ring:       ring,
		remote:     remote,
		cfg:        cfg,
		queue:      make(chan *buildJob, cfg.QueueDepth),
		mutQueue:   make(chan *buildJob, cfg.QueueDepth),
		datasets:   make(map[string]probsyn.Source),
		pending:    make(map[jobKey]*buildJob),
		pieceCache: make(map[catalog.Key]cachedPiece),
		dsLocks:    make(map[string]*sync.RWMutex),
		lives:      make(map[liveKey]*liveState),
	}
	if cfg.FlatPath != "" {
		s.flat = newFlatKeeper(cfg.FlatPath, cfg.Catalog, s.logf)
	}
	for w := 0; w < cfg.BuildWorkers; w++ {
		s.workers.Add(1)
		go func() {
			defer s.workers.Done()
			for job := range s.queue {
				s.runJob(job)
			}
		}()
	}
	// The single mutation drainer (see the mutQueue field comment).
	s.workers.Add(1)
	go func() {
		defer s.workers.Done()
		for job := range s.mutQueue {
			s.runJob(job)
		}
	}()
	return s, nil
}

// runJob executes one queued job and completes it. Every job may change
// the catalog (persist, publish, withdraw), so the flat catalog file is
// invalidated before the job runs and re-packed once the server
// quiesces after it.
func (s *Server) runJob(job *buildJob) {
	if s.flat != nil {
		s.flat.JobStart()
		defer s.flat.JobEnd()
	}
	switch job.kind {
	case jobSweep:
		job.err = s.buildSweep(job.key)
	case jobMutate:
		job.domain, job.republished, job.err = s.mutate(job.mut)
	default:
		if job.shards > 1 {
			job.err = s.buildSharded(job.key, job.shards)
		} else {
			job.err = s.build(job.key)
		}
	}
	if job.err != nil {
		// Surface every failure here: an async (wait:false) client has
		// no response carrying the error.
		if job.kind == jobMutate {
			s.logf("mutation of %s failed: %v", job.mut.dataset, job.err)
		} else {
			s.logf("build %s failed: %v", job.key, job.err)
		}
	}
	// Unregister before completing: a request arriving after the delete
	// sees the catalog entry (success) or starts a fresh job (failure);
	// one arriving before it waits on done and reads err. (Mutations are
	// never registered.)
	if job.kind != jobMutate {
		s.pendingMu.Lock()
		delete(s.pending, jobKey{job.key, job.kind == jobSweep, job.shards})
		s.pendingMu.Unlock()
	}
	close(job.done)
}

// datasetLock returns the dataset's coherence lock, creating it on first
// use. Builds hold the read side for their whole build-persist-publish
// span; mutations hold the write side across dataset persist, live
// revalidation, and republish.
func (s *Server) datasetLock(name string) *sync.RWMutex {
	s.dlMu.Lock()
	defer s.dlMu.Unlock()
	l, ok := s.dsLocks[name]
	if !ok {
		l = &sync.RWMutex{}
		s.dsLocks[name] = l
	}
	return l
}

// Shutdown stops admitting new builds, lets the workers drain every job
// already queued, and returns when they have finished (or ctx expires).
// Estimate reads keep working throughout — only build ingest closes.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closingMu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
		close(s.mutQueue)
	}
	s.closingMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		// Every queued job has drained: pack the flat catalog one final
		// time so the next boot maps it instead of re-decoding.
		if s.flat != nil {
			s.flat.Close()
		}
		return nil
	case <-ctx.Done():
		// Jobs may still be running; a final pack here could race them.
		// The flat file was already invalidated by any active job, so
		// the next boot correctly falls back to the .psyn directory.
		return fmt.Errorf("server: shutdown: %w", ctx.Err())
	}
}

// Handler returns the server's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/build", s.handleBuild)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/append", s.handleAppend)
	mux.HandleFunc("POST /v1/update", s.handleUpdate)
	mux.HandleFunc("GET /v1/estimate", s.handleEstimate)
	mux.HandleFunc("GET /v1/rangesum", s.handleRangeSum)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("GET /v1/synopses", s.handleSynopses)
	mux.HandleFunc("POST /v1/accept", s.handleAccept)
	mux.HandleFunc("GET /v1/blob", s.handleBlob)
	return mux
}

// ---- wire types ----

// BuildRequest is the POST /v1/build body.
type BuildRequest struct {
	Dataset string `json:"dataset"`
	Family  string `json:"family"`
	Metric  string `json:"metric"`
	Budget  int    `json:"budget"`
	// C is the sanity constant for relative-error metrics; 0 means the
	// server's -c default. Ignored (zeroed in the key) for metrics that
	// do not use it.
	C float64 `json:"c,omitempty"`
	// Quantize > 0 requests the approximate restricted wavelet DP on
	// grids of that many points (>= 2): domains far beyond the exact
	// DP's reach build in seconds, at a bounded additive cost penalty.
	// The grid size is part of the catalog key, so exact and quantized
	// synopses of the same dataset/metric/budget coexist.
	Quantize int `json:"quantize,omitempty"`
	// Shards >= 2 requests a sharded build: the domain splits into that
	// many contiguous ranges built in parallel over the pool and merged
	// (probsyn.BuildSharded); the merged synopsis publishes under the
	// ordinary key and the k pieces under shard-suffixed keys. 0 or 1
	// is an ordinary unsharded build.
	Shards int `json:"shards,omitempty"`
	// Wait makes the request synchronous: the response arrives after the
	// queued build completes (or fails).
	Wait bool `json:"wait,omitempty"`
}

// BuildResponse reports where the requested synopsis — or, for sweeps,
// the requested budget frontier — stands.
type BuildResponse struct {
	Key    catalog.Key `json:"key"`
	Status string      `json:"status"` // "ready", "queued", or "built"
	// Budgets is how many per-budget synopses the request covers: 0 for
	// single builds, the swept budget count (1..key.budget) for sweeps.
	Budgets int `json:"budgets,omitempty"`
}

// FreqProbWire is one (frequency, probability) entry of a mutation's
// item pdf, as JSON.
type FreqProbWire struct {
	Freq float64 `json:"freq"`
	Prob float64 `json:"prob"`
}

// ItemPDFWire is one item's frequency pdf, as JSON. An empty entry list
// means the item's frequency is surely zero.
type ItemPDFWire struct {
	Entries []FreqProbWire `json:"entries"`
}

func (w ItemPDFWire) toPDF() pdata.ItemPDF {
	entries := make([]pdata.FreqProb, len(w.Entries))
	for k, e := range w.Entries {
		entries[k] = pdata.FreqProb{Freq: e.Freq, Prob: e.Prob}
	}
	return pdata.ItemPDF{Entries: entries}
}

// MutateRequest is the POST /v1/append and /v1/update body. Append uses
// Items (the pdfs extending the domain in order); update uses I and
// Item. Mutations are defined over the value-pdf model: the dataset file
// must be a value-model dataset.
type MutateRequest struct {
	Dataset string        `json:"dataset"`
	Items   []ItemPDFWire `json:"items,omitempty"` // append
	I       int           `json:"i,omitempty"`     // update
	Item    *ItemPDFWire  `json:"item,omitempty"`  // update
	// Wait makes the request synchronous: the response arrives after the
	// dataset is persisted and every cataloged budget republished.
	Wait bool `json:"wait,omitempty"`
}

// MutateResponse reports where a mutation stands. Domain and Republished
// are meaningful on wait:true responses ("applied").
type MutateResponse struct {
	Dataset     string `json:"dataset"`
	Status      string `json:"status"` // "queued" or "applied"
	Domain      int    `json:"domain,omitempty"`
	Republished int    `json:"republished,omitempty"`
}

// EstimateResponse answers /v1/estimate.
type EstimateResponse struct {
	Key      catalog.Key `json:"key"`
	I        int         `json:"i"`
	Estimate float64     `json:"estimate"`
}

// RangeSumResponse answers /v1/rangesum.
type RangeSumResponse struct {
	Key catalog.Key `json:"key"`
	Lo  int         `json:"lo"`
	Hi  int         `json:"hi"`
	Sum float64     `json:"sum"`
}

// SynopsisInfo is one /v1/synopses listing row.
type SynopsisInfo struct {
	Key       catalog.Key `json:"key"`
	Domain    int         `json:"domain"`
	Terms     int         `json:"terms"`
	ErrorCost float64     `json:"error_cost"`
	Bytes     int         `json:"bytes"`
}

// ListResponse answers /v1/synopses.
type ListResponse struct {
	Synopses []SynopsisInfo `json:"synopses"`
}

// ErrorBody is the typed error envelope every non-2xx response carries.
type ErrorBody struct {
	Error APIError `json:"error"`
}

// APIError is a machine-readable error: a stable code plus a message.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// The error codes.
const (
	CodeBadRequest      = "bad_request"
	CodeNotFound        = "not_found"
	CodeQueueFull       = "queue_full"
	CodeBuildFailed     = "build_failed"
	CodeShuttingDown    = "shutting_down"
	CodePeerUnavailable = "peer_unavailable"
)

// ---- handlers ----

// maxBuildBody bounds the POST /v1/build body: a valid request is a few
// hundred bytes, so anything larger is hostile or broken and must not
// buffer into memory.
const maxBuildBody = 1 << 16

// maxSweepBudget bounds POST /v1/sweep: a sweep registers one catalog
// entry (and one file) per budget, so unlike a single build its cost
// scales with the budget field itself. 8192 comfortably covers the
// paper's largest frontier (5000 coefficients, Figure 4a at full scale)
// while keeping the worst-case request to thousands of entries, not
// billions.
const maxSweepBudget = 1 << 13

func (s *Server) handleBuild(w http.ResponseWriter, r *http.Request) {
	s.handleBuildLike(w, r, false)
}

// handleSweep enqueues a budget sweep: one frontier build that catalogs
// the synopsis for every budget 1..budget of the requested key, each
// byte-identical to a single /v1/build of that budget.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.handleBuildLike(w, r, true)
}

func (s *Server) handleBuildLike(w http.ResponseWriter, r *http.Request, sweep bool) {
	var req BuildRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBuildBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "bad build request body: %v", err)
		return
	}
	c := req.C
	if c == 0 {
		c = s.cfg.C // the server's default sanity constant
	}
	key, err := catalog.NewKeyQ(req.Dataset, req.Family, req.Metric, req.Budget, c, req.Quantize)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	if err := validDatasetName(key.Dataset); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	shards := req.Shards
	if shards < 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "negative shard count %d", shards)
		return
	}
	if shards == 1 {
		shards = 0 // one shard IS the unsharded build
	}
	if sweep && shards > 1 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "sweeps cannot be sharded")
		return
	}
	// Cluster routing happens before any dataset access: every dataset
	// has one owning node and only that node is required to hold the
	// dataset file, so a request landing anywhere forwards whole.
	if s.clustered() {
		if owner := s.datasetOwner(key.Dataset); owner != s.cfg.Self {
			body, err := json.Marshal(req)
			if err != nil {
				writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
				return
			}
			s.forward(w, owner, http.MethodPost, r.URL.Path, body, "application/json")
			return
		}
	}
	budgets := 0
	if sweep {
		if key.Budget > maxSweepBudget {
			writeError(w, http.StatusBadRequest, CodeBadRequest,
				"sweep budget %d exceeds the per-request limit %d", key.Budget, maxSweepBudget)
			return
		}
		budgets = key.Budget
	}
	// Sharded builds never short-circuit on the cataloged whole: the
	// pieces live on other nodes and cannot be checked locally, and a
	// rebuild is deterministic and idempotent.
	if shards <= 1 && s.ready(key, sweep) {
		writeJSON(w, http.StatusOK, BuildResponse{Key: key, Status: "ready", Budgets: budgets})
		return
	}
	if _, err := os.Stat(s.datasetPath(key.Dataset)); err != nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "dataset %q not found", key.Dataset)
		return
	}
	// Claim the key: if a job for it is already queued or building,
	// attach to that one instead of enqueueing a duplicate DP. The
	// enqueue happens under pendingMu, and the job is published only
	// once it is actually queued — so a job found in pending is always
	// one a worker will complete, and a failed enqueue is visible to
	// nobody.
	jk := jobKey{key, sweep, shards}
	kind := jobBuild
	if sweep {
		kind = jobSweep
	}
	s.pendingMu.Lock()
	job, inflight := s.pending[jk]
	if !inflight {
		job = &buildJob{kind: kind, key: key, shards: shards, done: make(chan struct{})}
		if code, err := s.enqueue(job); err != nil {
			s.pendingMu.Unlock()
			writeError(w, http.StatusServiceUnavailable, code, "%v", err)
			return
		}
		s.pending[jk] = job
	}
	s.pendingMu.Unlock()
	if !req.Wait {
		writeJSON(w, http.StatusAccepted, BuildResponse{Key: key, Status: "queued", Budgets: budgets})
		return
	}
	select {
	case <-job.done:
	case <-r.Context().Done():
		// The client went away; the queued build still completes and
		// lands in the catalog for the next request.
		return
	}
	if job.err != nil {
		writeError(w, http.StatusInternalServerError, CodeBuildFailed, "%v", job.err)
		return
	}
	writeJSON(w, http.StatusOK, BuildResponse{Key: key, Status: "built", Budgets: budgets})
}

// ready reports whether the catalog already answers the request: the key
// itself for single builds, every budget 1..key.Budget for sweeps.
func (s *Server) ready(key catalog.Key, sweep bool) bool {
	if !sweep {
		_, ok := s.cfg.Catalog.Get(key)
		return ok
	}
	for b := 1; b <= key.Budget; b++ {
		bkey := key
		bkey.Budget = b
		if _, ok := s.cfg.Catalog.Get(bkey); !ok {
			return false
		}
	}
	return true
}

// enqueue appends the job to its bounded FIFO (builds and mutations
// queue separately; mutations drain on one goroutine to preserve POST
// order), reporting queue_full when the queue is at depth and
// shutting_down once Shutdown has begun.
func (s *Server) enqueue(job *buildJob) (code string, err error) {
	s.closingMu.RLock()
	defer s.closingMu.RUnlock()
	if s.closed {
		return CodeShuttingDown, fmt.Errorf("server is shutting down")
	}
	q, name := s.queue, "build"
	if job.kind == jobMutate {
		q, name = s.mutQueue, "mutation"
	}
	select {
	case q <- job:
		return "", nil
	default:
		return CodeQueueFull, fmt.Errorf("%s queue full (%d pending)", name, cap(q))
	}
}

// maxMutateBody bounds mutation bodies: append batches carry item pdfs,
// so they are larger than build requests but still nowhere near this.
const maxMutateBody = 1 << 22

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	s.handleMutate(w, r, false)
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	s.handleMutate(w, r, true)
}

// handleMutate validates and enqueues a dataset mutation. Validation
// that needs no dataset state (pdf sanity, name shape) happens here so
// bad requests fail fast with 400; the domain bound is re-checked at
// apply time, when mutations queued ahead of this one have landed.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request, update bool) {
	var req MutateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxMutateBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "bad mutation request body: %v", err)
		return
	}
	if req.Dataset == "" {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "empty dataset name")
		return
	}
	if err := validDatasetName(req.Dataset); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	if _, err := os.Stat(s.datasetPath(req.Dataset)); err != nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "dataset %q not found", req.Dataset)
		return
	}
	src, err := s.dataset(req.Dataset)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	if _, ok := src.(*pdata.ValuePDF); !ok {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			"mutations are defined over the value-pdf model; dataset %q uses another model", req.Dataset)
		return
	}
	mut := &mutation{dataset: req.Dataset}
	if update {
		if req.Item == nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "update needs an item pdf")
			return
		}
		it := req.Item.toPDF()
		if err := it.Validate(); err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
			return
		}
		if req.I < 0 {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "negative item index %d", req.I)
			return
		}
		mut.updateI, mut.update = req.I, &it
	} else {
		if len(req.Items) == 0 {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "append needs at least one item pdf")
			return
		}
		mut.items = make([]pdata.ItemPDF, len(req.Items))
		for k, iw := range req.Items {
			mut.items[k] = iw.toPDF()
			if err := mut.items[k].Validate(); err != nil {
				writeError(w, http.StatusBadRequest, CodeBadRequest, "item %d: %v", k, err)
				return
			}
		}
	}
	job := &buildJob{kind: jobMutate, mut: mut, done: make(chan struct{})}
	if code, err := s.enqueue(job); err != nil {
		writeError(w, http.StatusServiceUnavailable, code, "%v", err)
		return
	}
	if !req.Wait {
		writeJSON(w, http.StatusAccepted, MutateResponse{Dataset: req.Dataset, Status: "queued"})
		return
	}
	select {
	case <-job.done:
	case <-r.Context().Done():
		return // the queued mutation still applies and republishes
	}
	if job.err != nil {
		writeError(w, http.StatusInternalServerError, CodeBuildFailed, "%v", job.err)
		return
	}
	writeJSON(w, http.StatusOK, MutateResponse{
		Dataset: req.Dataset, Status: "applied",
		Domain: job.domain, Republished: job.republished,
	})
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	shard, shards, hasShard, err := shardParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	if shards >= 2 {
		s.handleShardedEstimate(w, r, shard, shards, hasShard)
		return
	}
	key, entry, ok := s.lookup(w, r)
	if !ok {
		return
	}
	i, err := intParam(r, "i")
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	if n := entry.Synopsis.Domain(); i < 0 || i >= n {
		// Out-of-domain estimates would fabricate a confident answer (an
		// edge bucket's representative, a wavelet zero); reject instead.
		writeError(w, http.StatusBadRequest, CodeBadRequest, "item %d outside domain [0, %d)", i, n)
		return
	}
	writeJSON(w, http.StatusOK, EstimateResponse{Key: key, I: i, Estimate: entry.Querier.Estimate(i)})
}

func (s *Server) handleRangeSum(w http.ResponseWriter, r *http.Request) {
	shard, shards, hasShard, err := shardParams(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	if shards >= 2 {
		s.handleShardedRangeSum(w, r, shard, shards, hasShard)
		return
	}
	key, entry, ok := s.lookup(w, r)
	if !ok {
		return
	}
	lo, err := intParam(r, "lo")
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	hi, err := intParam(r, "hi")
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	if lo > hi {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "empty range [%d, %d]", lo, hi)
		return
	}
	n := entry.Synopsis.Domain()
	if hi < 0 || lo >= n {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "range [%d, %d] outside domain [0, %d)", lo, hi, n)
		return
	}
	// Clamp here and echo the clamped bounds, so the response never
	// claims a sum over more domain than the synopsis covers.
	lo, hi = max(lo, 0), min(hi, n-1)
	writeJSON(w, http.StatusOK, RangeSumResponse{Key: key, Lo: lo, Hi: hi, Sum: entry.Querier.RangeSum(lo, hi)})
}

// maxQueryBody bounds the POST /v1/query body: MaxBatchOps small ops fit
// comfortably in 1 MiB, and anything larger should be split into several
// batches rather than buffered whole.
const maxQueryBody = 1 << 20

// queryScratch is the pooled per-request state of the batch endpoint:
// the decoded request, the response with its retained results slice, and
// the buffer the response is serialized into. Pooling keeps the handler's
// steady-state allocation per batch near zero — the querier calls
// themselves allocate nothing.
type queryScratch struct {
	req  query.BatchRequest
	resp query.BatchResponse
	buf  bytes.Buffer
}

var queryPool = sync.Pool{New: func() any { return new(queryScratch) }}

// handleQuery answers a batch of estimate/rangesum operations in one
// round trip. Operations fail individually (per-op errors with the same
// stable codes as the single endpoints); only a malformed or oversized
// body fails the request. The response bytes are query.EncodeResponse's
// canonical serialization — byte-identical to psyn -query over the same
// catalog.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	sc := queryPool.Get().(*queryScratch)
	defer queryPool.Put(sc)
	sc.resp.Results = sc.resp.Results[:0]
	sc.buf.Reset()
	if _, err := sc.buf.ReadFrom(http.MaxBytesReader(w, r.Body, maxQueryBody)); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "bad query body: %v", err)
		return
	}
	// query.DecodeBatch, not encoding/json: the fast scanner decodes a
	// canonical batch an order of magnitude cheaper than reflection, and
	// it zeroes the pooled ops so nothing leaks between requests.
	if err := query.DecodeBatch(sc.buf.Bytes(), &sc.req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "bad query body: %v", err)
		return
	}
	if err := sc.req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	query.EvalBatch(&sc.req, s.resolveBatchKey, &sc.resp)
	sc.buf.Reset()
	_ = query.EncodeResponse(&sc.buf, &sc.resp)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(sc.buf.Bytes())
}

// resolveBatchKey is the batch evaluator's key resolver: the same
// canonicalization and defaulting as the single endpoints' lookup (an
// omitted c means the server's -c default for relative-error metrics),
// one catalog read per distinct key per batch.
func (s *Server) resolveBatchKey(bk query.BatchKey) (query.Querier, int, *query.OpError) {
	c := bk.C
	if c == 0 {
		c = s.cfg.C
	}
	key, err := catalog.NewKeyQ(bk.Dataset, bk.Family, bk.Metric, bk.Budget, c, bk.Q)
	if err != nil {
		return nil, 0, &query.OpError{Code: CodeBadRequest, Message: err.Error()}
	}
	if bk.Shards >= 2 {
		// A sharded key answers through a composite querier over its
		// pieces, remote ones fetched once per batch.
		return s.resolveShardedKey(key, bk.Shards)
	}
	entry, ok := s.cfg.Catalog.Get(key)
	if !ok {
		return nil, 0, &query.OpError{Code: CodeNotFound, Message: fmt.Sprintf("no synopsis for %s (build it first)", key)}
	}
	return entry.Querier, entry.Synopsis.Domain(), nil
}

func (s *Server) handleSynopses(w http.ResponseWriter, r *http.Request) {
	entries := s.cfg.Catalog.List()
	resp := ListResponse{Synopses: make([]SynopsisInfo, 0, len(entries))}
	for _, e := range entries {
		resp.Synopses = append(resp.Synopses, SynopsisInfo{
			Key: e.Key, Domain: e.Synopsis.Domain(), Terms: e.Synopsis.Terms(),
			ErrorCost: e.Synopsis.ErrorCost(), Bytes: e.Bytes,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// lookup resolves the key query parameters to a catalog entry, writing
// the typed error itself when it cannot.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (catalog.Key, *catalog.Entry, bool) {
	q := r.URL.Query()
	budget, err := strconv.Atoi(q.Get("budget"))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "bad budget %q", q.Get("budget"))
		return catalog.Key{}, nil, false
	}
	c := s.cfg.C // optional &c= overrides the server default, as in builds
	if raw := q.Get("c"); raw != "" {
		if c, err = strconv.ParseFloat(raw, 64); err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "bad c %q", raw)
			return catalog.Key{}, nil, false
		}
	}
	quant := 0 // optional &q= selects a quantized build's entry
	if raw := q.Get("q"); raw != "" {
		if quant, err = strconv.Atoi(raw); err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "bad q %q", raw)
			return catalog.Key{}, nil, false
		}
	}
	key, err := catalog.NewKeyQ(q.Get("dataset"), q.Get("family"), q.Get("metric"), budget, c, quant)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return catalog.Key{}, nil, false
	}
	entry, ok := s.cfg.Catalog.Get(key)
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, "no synopsis for %s (build it first)", key)
		return catalog.Key{}, nil, false
	}
	return key, entry, true
}

// ---- the build path ----

// build constructs the synopsis for a key on the shared pool, registers
// it in the catalog, and persists it when a catalog directory is
// configured. This is the serving twin of an offline cmd/psyn build:
// both run probsyn.Build and both write the same envelope bytes.
func (s *Server) build(key catalog.Key) error {
	lock := s.datasetLock(key.Dataset)
	lock.RLock()
	defer lock.RUnlock()
	if _, ok := s.cfg.Catalog.Get(key); ok {
		return nil // built (or loaded, or republished by a mutation) since this job was queued
	}
	src, err := s.dataset(key.Dataset)
	if err != nil {
		return err
	}
	m, err := probsyn.ParseMetric(key.Metric)
	if err != nil {
		return err
	}
	// key.C is the constant the build was requested at (> 0 exactly for
	// relative-error metrics; Params.C is unused otherwise).
	opts := []probsyn.BuildOption{
		probsyn.WithPool(s.cfg.Pool),
		probsyn.WithParams(probsyn.Params{C: key.C}),
	}
	if key.Family == catalog.FamilyWavelet {
		opts = append(opts, probsyn.WithWavelet())
		if key.Q > 0 {
			opts = append(opts, probsyn.WithQuantize(key.Q))
		}
	}
	syn, err := probsyn.Build(src, m, key.Budget, opts...)
	if err != nil {
		return fmt.Errorf("build %s: %w", key, err)
	}
	blob, err := probsyn.MarshalSynopsis(syn)
	if err != nil {
		return err
	}
	// Persist before publishing: a build is observable (ready, servable)
	// only once it is durably on disk, so a failed persist is reported
	// as build_failed with nothing half-done — no window where a key
	// serves estimates and then vanishes, and retries are not
	// short-circuited by a catalog entry that never hit disk. The write
	// is atomic (temp + rename): LoadDir fails loudly on corrupt files,
	// so a crash mid-persist must not block the next startup either.
	if s.cfg.CatalogDir != "" {
		if err := catalog.WriteBlob(filepath.Join(s.cfg.CatalogDir, key.Filename()), blob); err != nil {
			return fmt.Errorf("persist %s: %w", key, err)
		}
	}
	s.cfg.Catalog.PutEncoded(key, syn, blob)
	return nil
}

// buildSweep is the frontier twin of build: one probsyn.BuildSweep —
// one DP run under one pool admission token — then every budget
// 1..key.Budget is extracted, persisted, and registered exactly as a
// single build of that budget would be. Budgets beyond the frontier's
// clamped Bmax (a budget larger than the domain) repeat the Bmax
// synopsis, matching what a single build at that budget returns.
func (s *Server) buildSweep(key catalog.Key) error {
	lock := s.datasetLock(key.Dataset)
	lock.RLock()
	defer lock.RUnlock()
	if s.ready(key, true) {
		return nil // swept (or loaded) since this job was queued
	}
	src, err := s.dataset(key.Dataset)
	if err != nil {
		return err
	}
	m, err := probsyn.ParseMetric(key.Metric)
	if err != nil {
		return err
	}
	opts := []probsyn.BuildOption{
		probsyn.WithPool(s.cfg.Pool),
		probsyn.WithParams(probsyn.Params{C: key.C}),
	}
	if key.Family == catalog.FamilyWavelet {
		opts = append(opts, probsyn.WithWavelet())
		if key.Q > 0 {
			opts = append(opts, probsyn.WithQuantize(key.Q))
		}
	}
	fr, err := probsyn.BuildSweep(src, m, key.Budget, opts...)
	if err != nil {
		return fmt.Errorf("sweep %s: %w", key, err)
	}
	for b := 1; b <= key.Budget; b++ {
		syn, err := catalog.ExtractBudget(fr, b)
		if err != nil {
			return fmt.Errorf("sweep %s: budget %d: %w", key, b, err)
		}
		blob, err := probsyn.MarshalSynopsis(syn)
		if err != nil {
			return err
		}
		bkey := key
		bkey.Budget = b
		// Same persist-before-publish discipline as build: each budget
		// becomes servable only once it is durably on disk.
		if s.cfg.CatalogDir != "" {
			if err := catalog.WriteBlob(filepath.Join(s.cfg.CatalogDir, bkey.Filename()), blob); err != nil {
				return fmt.Errorf("persist %s: %w", bkey, err)
			}
		}
		s.cfg.Catalog.PutEncoded(bkey, syn, blob)
	}
	return nil
}

// ---- the mutation path ----

// datasetKeys lists the dataset's cataloged keys. Catalog.List is
// key-sorted, so budgets arrive ascending and the derived grouping is
// deterministic.
func (s *Server) datasetKeys(dataset string) []catalog.Key {
	var keys []catalog.Key
	for _, e := range s.cfg.Catalog.List() {
		if e.Key.Dataset == dataset {
			keys = append(keys, e.Key)
		}
	}
	return keys
}

// mutate applies one dataset mutation under the dataset's write lock:
// persist the mutated dataset (atomic rename — after a restart, a
// from-scratch rebuild must reproduce exactly what is republished now),
// swap the in-memory source, then revalidate every cataloged budget of
// the dataset through its retained live frontier and republish each one
// persist-before-publish. Because live maintenance is bit-identical to a
// fresh build, every republished file is byte-for-byte what an offline
// rebuild over the mutated dataset would write.
//
// If anything fails after the dataset swap, every catalog entry not yet
// republished is withdrawn (memory and disk): the old synopses describe
// data that no longer exists, and a cataloged entry short-circuits
// /v1/build — withdrawing turns the failure into not_found answers and
// fresh rebuilds over the mutated data instead of silently stale
// estimates.
func (s *Server) mutate(mu *mutation) (domain, republished int, err error) {
	lock := s.datasetLock(mu.dataset)
	lock.Lock()
	defer lock.Unlock()
	src, err := s.dataset(mu.dataset)
	if err != nil {
		return 0, 0, err
	}
	vp, ok := src.(*pdata.ValuePDF)
	if !ok {
		return 0, 0, fmt.Errorf("dataset %q is not a value-pdf dataset", mu.dataset)
	}
	next := vp.Clone()
	if mu.update != nil {
		if mu.updateI >= next.N {
			return 0, 0, fmt.Errorf("update index %d outside domain [0, %d)", mu.updateI, next.N)
		}
		next.Items[mu.updateI] = mu.update.Clone()
	} else {
		for _, it := range mu.items {
			next.Items = append(next.Items, it.Clone())
		}
		next.N = len(next.Items)
	}
	var buf bytes.Buffer
	if err := probsyn.WriteDataset(&buf, next); err != nil {
		return 0, 0, err
	}
	if err := catalog.WriteBlob(s.datasetPath(mu.dataset), buf.Bytes()); err != nil {
		return 0, 0, fmt.Errorf("persist dataset %q: %w", mu.dataset, err)
	}
	s.dsMu.Lock()
	s.datasets[mu.dataset] = next
	s.dsMu.Unlock()

	keys := s.datasetKeys(mu.dataset)
	republish := func() error {
		for _, group := range catalog.GroupKeys(keys[republished:]) {
			lk := liveKey{dataset: mu.dataset, family: group[0].Family, metric: group[0].Metric, c: group[0].C, q: group[0].Q}
			gmax := 0
			for _, k := range group {
				if k.Budget > gmax {
					gmax = k.Budget
				}
			}
			ls, fresh, err := s.liveFor(lk, gmax, next)
			if err != nil {
				return fmt.Errorf("live frontier for %s/%s: %w", lk.family, lk.metric, err)
			}
			if !fresh {
				// The retained state holds the pre-mutation data; absorb
				// the mutation incrementally. A fresh frontier was built
				// from the already-mutated source and needs nothing.
				if mu.update != nil {
					err = ls.m.Update(mu.updateI, *mu.update)
				} else {
					err = ls.m.Append(mu.items)
				}
				if err != nil {
					// The live state may be mid-mutation; drop it so the
					// next mutation rebuilds from the persisted source.
					s.livesMu.Lock()
					delete(s.lives, lk)
					s.livesMu.Unlock()
					return fmt.Errorf("maintain %s/%s: %w", lk.family, lk.metric, err)
				}
			}
			for _, key := range group {
				syn, err := catalog.ExtractBudget(ls.m, key.Budget)
				if err != nil {
					return err
				}
				blob, err := probsyn.MarshalSynopsis(syn)
				if err != nil {
					return err
				}
				// Same persist-before-publish discipline as builds and sweeps.
				if s.cfg.CatalogDir != "" {
					if err := catalog.WriteBlob(filepath.Join(s.cfg.CatalogDir, key.Filename()), blob); err != nil {
						return fmt.Errorf("persist %s: %w", key, err)
					}
				}
				s.cfg.Catalog.PutEncoded(key, syn, blob)
				republished++
			}
		}
		return nil
	}
	if err := republish(); err != nil {
		// keys[:republished] were fully republished before the failure
		// (groups process their keys in order); withdraw the rest.
		for _, key := range keys[republished:] {
			s.cfg.Catalog.Delete(key)
			if s.cfg.CatalogDir != "" {
				if rmErr := os.Remove(filepath.Join(s.cfg.CatalogDir, key.Filename())); rmErr != nil && !os.IsNotExist(rmErr) {
					s.logf("withdraw %s: %v", key, rmErr)
				}
			}
		}
		return next.N, republished, fmt.Errorf("%w (withdrew %d stale catalog entries; rebuild them over the mutated dataset)", err, len(keys)-republished)
	}
	return next.N, republished, nil
}

// liveFor returns the retained live frontier for the key, building one
// over data (already mutated) when none exists or the cataloged budgets
// outgrew the retained request. fresh reports which case applied. The
// retained set is bounded at cfg.MaxLiveStates; inserting beyond it
// evicts the least-recently-mutated frontier.
func (s *Server) liveFor(lk liveKey, gmax int, data *pdata.ValuePDF) (ls *liveState, fresh bool, err error) {
	s.livesMu.Lock()
	ls = s.lives[lk]
	if ls != nil && ls.breq >= gmax {
		s.liveClock++
		ls.stamp = s.liveClock
		s.livesMu.Unlock()
		return ls, false, nil
	}
	s.livesMu.Unlock()
	m, err := probsyn.ParseMetric(lk.metric)
	if err != nil {
		return nil, false, err
	}
	opts := []probsyn.BuildOption{
		probsyn.WithPool(s.cfg.Pool),
		probsyn.WithParams(probsyn.Params{C: lk.c}),
	}
	if lk.family == catalog.FamilyWavelet {
		opts = append(opts, probsyn.WithWavelet())
		if lk.q > 0 {
			opts = append(opts, probsyn.WithQuantize(lk.q))
		}
	}
	live, err := probsyn.BuildLive(data, m, gmax, opts...)
	if err != nil {
		return nil, false, err
	}
	s.livesMu.Lock()
	s.liveClock++
	ls = &liveState{m: live, breq: gmax, stamp: s.liveClock}
	s.lives[lk] = ls
	for len(s.lives) > s.cfg.MaxLiveStates {
		var oldest liveKey
		first := true
		for k, v := range s.lives {
			if k == lk {
				continue // never evict the entry we are about to use
			}
			if first || v.stamp < s.lives[oldest].stamp {
				oldest, first = k, false
			}
		}
		if first {
			break
		}
		delete(s.lives, oldest)
	}
	s.livesMu.Unlock()
	return ls, true, nil
}

// dataset returns the parsed source for a dataset name, reading and
// caching it on first use.
func (s *Server) dataset(name string) (probsyn.Source, error) {
	s.dsMu.RLock()
	src, ok := s.datasets[name]
	s.dsMu.RUnlock()
	if ok {
		return src, nil
	}
	f, err := os.Open(s.datasetPath(name))
	if err != nil {
		return nil, fmt.Errorf("dataset %q: %w", name, err)
	}
	defer f.Close()
	src, err = probsyn.ReadDataset(f)
	if err != nil {
		return nil, fmt.Errorf("dataset %q: %w", name, err)
	}
	s.dsMu.Lock()
	if prev, ok := s.datasets[name]; ok {
		src = prev // another worker parsed it first; keep one copy
	} else {
		s.datasets[name] = src
	}
	s.dsMu.Unlock()
	return src, nil
}

func (s *Server) datasetPath(name string) string {
	return filepath.Join(s.cfg.DataDir, name+".pd")
}

// validDatasetName rejects names that could resolve outside the data
// directory: the dataset is a filename stem, never a path.
func validDatasetName(name string) error {
	if strings.ContainsAny(name, "/\\") || name == "." || name == ".." || strings.HasPrefix(name, "..") {
		return fmt.Errorf("invalid dataset name %q", name)
	}
	return nil
}

// logf routes operational log lines to the configured sink.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// intParam parses a required integer query parameter.
func intParam(r *http.Request, name string) (int, error) {
	raw := r.URL.Query().Get(name)
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad %s %q", name, raw)
	}
	return v, nil
}

// ---- JSON plumbing ----

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, ErrorBody{Error: APIError{Code: code, Message: fmt.Sprintf(format, args...)}})
}
