package server

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"probsyn/internal/catalog"
	"probsyn/internal/hist"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// The keeper's core discipline, exercised directly: JobStart removes the
// flat file before work, JobEnd re-packs at quiescence with bytes equal
// to a fresh PackBytes of the catalog, and Close runs a final
// synchronous pack.
func TestFlatKeeperLifecycle(t *testing.T) {
	cat := catalog.New()
	key, err := catalog.NewKey("ds", catalog.FamilyHistogram, "SSE", 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	h := &hist.Histogram{N: 4, Buckets: []hist.Bucket{{Start: 0, End: 3, Rep: 1}}}
	if _, _, err := cat.Put(key, h); err != nil {
		t.Fatal(err)
	}
	path := catalog.FlatPath(t.TempDir())
	if _, err := catalog.Pack(path, cat.List()); err != nil {
		t.Fatal(err)
	}

	fk := newFlatKeeper(path, cat, t.Logf)
	fk.JobStart()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("flat file still present during an active job (stat err = %v)", err)
	}
	fk.JobEnd()
	waitFor(t, "quiescent re-pack", func() bool {
		_, err := os.Stat(path)
		return err == nil
	})
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want, err := catalog.PackBytes(cat.List())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("re-packed flat file differs from a fresh pack of the catalog")
	}

	// A job that mutates the catalog: after Close, the final pack must
	// reflect the mutation, not the earlier snapshot.
	fk.JobStart()
	key2, err := catalog.NewKey("ds", catalog.FamilyHistogram, "SSE", 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	h2 := &hist.Histogram{N: 4, Buckets: []hist.Bucket{
		{Start: 0, End: 1, Rep: 1}, {Start: 2, End: 3, Rep: 2},
	}}
	if _, _, err := cat.Put(key2, h2); err != nil {
		t.Fatal(err)
	}
	fk.JobEnd()
	fk.Close()
	f, err := catalog.OpenFlat(path)
	if err != nil {
		t.Fatalf("final pack unreadable: %v", err)
	}
	defer f.Close()
	if f.Len() != 2 {
		t.Fatalf("final pack has %d entries, want 2", f.Len())
	}
}

// The server wiring end to end: a waited build invalidates the flat
// file, and the background keeper re-packs it once the queue is
// quiescent, covering the new entry.
func TestServerFlatRepackAfterBuild(t *testing.T) {
	catDir := t.TempDir()
	path := catalog.FlatPath(catDir)
	_, ts, _ := newFixture(t, Config{CatalogDir: catDir, FlatPath: path})

	resp, ok, bad := postBuild(t, ts, BuildRequest{
		Dataset: "ds", Family: "histogram", Metric: "SSE", Budget: 4, Wait: true,
	})
	if resp.StatusCode != 200 {
		t.Fatalf("build: status %d (%+v)", resp.StatusCode, bad)
	}
	if ok.Status != "built" {
		t.Fatalf("build status %q, want built", ok.Status)
	}

	waitFor(t, "post-build re-pack", func() bool {
		_, err := os.Stat(path)
		return err == nil
	})
	f, err := catalog.OpenFlat(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Len() != 1 {
		t.Fatalf("re-packed flat file has %d entries, want 1", f.Len())
	}
	// The persisted envelope beside it is what the flat file packs, so a
	// replica booting this directory gets both paths in agreement.
	des, err := os.ReadDir(catDir)
	if err != nil {
		t.Fatal(err)
	}
	psyn := 0
	for _, de := range des {
		if filepath.Ext(de.Name()) == ".psyn" {
			psyn++
		}
	}
	if psyn != 1 {
		t.Fatalf("catalog dir holds %d .psyn envelopes, want 1", psyn)
	}
}
