package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"probsyn"
	"probsyn/internal/catalog"
	"probsyn/internal/engine"
	"probsyn/internal/pdata"
	"probsyn/internal/query"
)

// valueDataset builds the deterministic value-pdf dataset the mutation
// tests run against (mutations are defined over the value-pdf model).
func valueDataset(n int) *pdata.ValuePDF {
	vp := &pdata.ValuePDF{N: n, Items: make([]pdata.ItemPDF, n)}
	for i := 0; i < n; i++ {
		vp.Items[i] = pdata.ItemPDF{Entries: []pdata.FreqProb{
			{Freq: float64(i % 5), Prob: 0.5},
			{Freq: float64(2 + i%3), Prob: 0.25},
		}}
	}
	return vp
}

// newValueFixture is newFixture over a value-model dataset.
func newValueFixture(t *testing.T, cfg Config) (*Server, *httptest.Server, *pdata.ValuePDF) {
	t.Helper()
	dataDir := t.TempDir()
	vp := valueDataset(24)
	f, err := os.Create(filepath.Join(dataDir, "vds.pd"))
	if err != nil {
		t.Fatal(err)
	}
	if err := probsyn.WriteDataset(f, vp); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	cfg.DataDir = dataDir
	if cfg.Catalog == nil {
		cfg.Catalog = catalog.New()
	}
	if cfg.Pool == nil {
		cfg.Pool = engine.New(engine.Options{Workers: 2})
	}
	if cfg.CatalogDir == "" {
		cfg.CatalogDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Error(err)
		}
	})
	return s, ts, vp
}

func postJSON(t *testing.T, url string, req any) (*http.Response, json.RawMessage) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func postMutate(t *testing.T, ts *httptest.Server, path string, req MutateRequest) (*http.Response, MutateResponse, ErrorBody) {
	t.Helper()
	resp, raw := postJSON(t, ts.URL+path, req)
	var ok MutateResponse
	var bad ErrorBody
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, &ok); err != nil {
			t.Fatal(err)
		}
	} else if err := json.Unmarshal(raw, &bad); err != nil {
		t.Fatal(err)
	}
	return resp, ok, bad
}

// assertCatalogMatchesOfflineRebuild re-derives every cataloged key of
// the dataset with a fresh offline BuildSweep over `want` and compares
// the persisted catalog files byte for byte.
func assertCatalogMatchesOfflineRebuild(t *testing.T, catDir string, want *pdata.ValuePDF, dataset string, c float64) {
	t.Helper()
	des, err := os.ReadDir(catDir)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	sweeps := map[liveKey]probsyn.Frontier{}
	maxBudget := map[liveKey]int{}
	var keys []catalog.Key
	for _, de := range des {
		key, err := catalog.ParseFilename(de.Name())
		if err != nil || key.Dataset != dataset {
			continue
		}
		keys = append(keys, key)
		lk := liveKey{dataset: dataset, family: key.Family, metric: key.Metric, c: key.C, q: key.Q}
		if key.Budget > maxBudget[lk] {
			maxBudget[lk] = key.Budget
		}
	}
	for _, key := range keys {
		lk := liveKey{dataset: dataset, family: key.Family, metric: key.Metric, c: key.C, q: key.Q}
		fr, ok := sweeps[lk]
		if !ok {
			m, err := probsyn.ParseMetric(key.Metric)
			if err != nil {
				t.Fatal(err)
			}
			opts := []probsyn.BuildOption{probsyn.WithParams(probsyn.Params{C: key.C})}
			if key.Family == catalog.FamilyWavelet {
				opts = append(opts, probsyn.WithWavelet())
				if key.Q > 0 {
					opts = append(opts, probsyn.WithQuantize(key.Q))
				}
			}
			if fr, err = probsyn.BuildSweep(want, m, maxBudget[lk], opts...); err != nil {
				t.Fatal(err)
			}
			sweeps[lk] = fr
		}
		eb := key.Budget
		if eb > fr.Bmax() {
			eb = fr.Bmax()
		}
		syn, err := fr.Synopsis(eb)
		if err != nil {
			t.Fatal(err)
		}
		wantBlob, err := probsyn.MarshalSynopsis(syn)
		if err != nil {
			t.Fatal(err)
		}
		gotBlob, err := os.ReadFile(filepath.Join(catDir, key.Filename()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotBlob, wantBlob) {
			t.Fatalf("catalog file %s differs from offline rebuild over mutated data", key.Filename())
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no catalog files checked")
	}
}

// TestAppendRevalidatesCatalog is the serving acceptance path: catalog a
// histogram sweep and a wavelet build, append items over HTTP, and
// verify (1) the response reports the grown domain and every cataloged
// budget republished, (2) each persisted catalog file is byte-identical
// to an offline rebuild over the mutated dataset, (3) the dataset file
// itself was atomically rewritten, and (4) estimates serve the new
// domain. A second mutation exercises the retained-live (incremental)
// path end to end.
func TestAppendRevalidatesCatalog(t *testing.T) {
	catDir := t.TempDir()
	_, ts, vp := newValueFixture(t, Config{CatalogDir: catDir, C: 0.5})

	if resp, _, bad := postSweep(t, ts, BuildRequest{Dataset: "vds", Family: "histogram", Metric: "SSE", Budget: 4, Wait: true}); resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d %v", resp.StatusCode, bad)
	}
	if resp, _, bad := postBuild(t, ts, BuildRequest{Dataset: "vds", Family: "wavelet", Metric: "SAE", Budget: 3, Wait: true}); resp.StatusCode != http.StatusOK {
		t.Fatalf("wavelet build: %d %v", resp.StatusCode, bad)
	}

	newItems := []ItemPDFWire{
		{Entries: []FreqProbWire{{Freq: 4, Prob: 0.5}}},
		{Entries: []FreqProbWire{{Freq: 1, Prob: 0.25}, {Freq: 2, Prob: 0.25}}},
	}
	resp, ok, bad := postMutate(t, ts, "/v1/append", MutateRequest{Dataset: "vds", Items: newItems, Wait: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append: %d %v", resp.StatusCode, bad)
	}
	if ok.Status != "applied" || ok.Domain != vp.N+2 {
		t.Fatalf("append response: %+v", ok)
	}
	if ok.Republished != 5 { // 4 swept histogram budgets + 1 wavelet build
		t.Fatalf("republished %d entries, want 5", ok.Republished)
	}

	want := vp.Clone()
	for _, iw := range newItems {
		want.Items = append(want.Items, iw.toPDF())
	}
	want.N = len(want.Items)
	assertCatalogMatchesOfflineRebuild(t, catDir, want, "vds", 0.5)

	// Estimates now serve the grown domain.
	var est EstimateResponse
	url := fmt.Sprintf("%s/v1/estimate?dataset=vds&family=histogram&metric=SSE&budget=4&i=%d", ts.URL, vp.N+1)
	if resp := getJSON(t, url, &est); resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate on appended item: %d", resp.StatusCode)
	}

	// Second mutation: the retained live frontier absorbs it.
	resp, ok, bad = postMutate(t, ts, "/v1/update", MutateRequest{
		Dataset: "vds", I: 3,
		Item: &ItemPDFWire{Entries: []FreqProbWire{{Freq: 1, Prob: 0.25}, {Freq: 3, Prob: 0.25}}},
		Wait: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: %d %v", resp.StatusCode, bad)
	}
	if ok.Republished != 5 {
		t.Fatalf("update republished %d, want 5", ok.Republished)
	}
	want.Items[3] = pdata.ItemPDF{Entries: []pdata.FreqProb{{Freq: 1, Prob: 0.25}, {Freq: 3, Prob: 0.25}}}
	assertCatalogMatchesOfflineRebuild(t, catDir, want, "vds", 0.5)
}

// TestQuantizedEntriesCoexistAndRevalidate: a quantized (approximate
// restricted DP) wavelet build catalogs under its own key next to the
// exact build of the same dataset/metric/budget, serves through the
// lookup and batch paths when the querier says q, persists byte-identical
// to the offline quantized build, and revalidates through its own
// retained quantized live frontier on mutation.
func TestQuantizedEntriesCoexistAndRevalidate(t *testing.T) {
	catDir := t.TempDir()
	_, ts, vp := newValueFixture(t, Config{CatalogDir: catDir, C: 0.5})
	const q = 4

	if resp, _, bad := postBuild(t, ts, BuildRequest{Dataset: "vds", Family: "wavelet", Metric: "SAE", Budget: 4, Wait: true}); resp.StatusCode != http.StatusOK {
		t.Fatalf("exact build: %d %v", resp.StatusCode, bad)
	}
	if resp, _, bad := postBuild(t, ts, BuildRequest{Dataset: "vds", Family: "wavelet", Metric: "SAE", Budget: 4, Quantize: q, Wait: true}); resp.StatusCode != http.StatusOK {
		t.Fatalf("quantized build: %d %v", resp.StatusCode, bad)
	}

	// Both entries coexist, and the quantized catalog file is
	// byte-identical to the offline quantized build.
	exact, err := probsyn.Build(vp, probsyn.SAE, 4, probsyn.WithWavelet(), probsyn.WithParams(probsyn.Params{C: 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	approx, err := probsyn.Build(vp, probsyn.SAE, 4, probsyn.WithWavelet(), probsyn.WithQuantize(q), probsyn.WithParams(probsyn.Params{C: 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	qkey, err := catalog.NewKeyQ("vds", catalog.FamilyWavelet, "SAE", 4, 0, q)
	if err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(filepath.Join(catDir, qkey.Filename()))
	if err != nil {
		t.Fatal(err)
	}
	wantBlob, err := probsyn.MarshalSynopsis(approx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, wantBlob) {
		t.Fatal("persisted quantized envelope differs from the offline quantized build")
	}

	// The lookup path routes on &q=: without it the exact synopsis
	// answers, with it the quantized one.
	for i := 0; i < vp.N; i += 5 {
		var er EstimateResponse
		base := fmt.Sprintf("%s/v1/estimate?dataset=vds&family=wavelet&metric=SAE&budget=4&i=%d", ts.URL, i)
		if resp := getJSON(t, base, &er); resp.StatusCode != http.StatusOK {
			t.Fatalf("exact estimate: %d", resp.StatusCode)
		}
		if er.Estimate != exact.Estimate(i) {
			t.Fatalf("exact Estimate(%d) = %v, offline %v", i, er.Estimate, exact.Estimate(i))
		}
		if resp := getJSON(t, base+fmt.Sprintf("&q=%d", q), &er); resp.StatusCode != http.StatusOK {
			t.Fatalf("quantized estimate: %d", resp.StatusCode)
		}
		if er.Estimate != approx.Estimate(i) {
			t.Fatalf("quantized Estimate(%d) = %v, offline %v", i, er.Estimate, approx.Estimate(i))
		}
	}

	// The batch path routes on the op's q member the same way.
	resp, got, bad := postQuery(t, ts, query.BatchRequest{Ops: []query.Op{
		{BatchKey: query.BatchKey{Dataset: "vds", Family: "wavelet", Metric: "SAE", Budget: 4}, Op: query.OpEstimate, I: 7},
		{BatchKey: query.BatchKey{Dataset: "vds", Family: "wavelet", Metric: "SAE", Budget: 4, Q: q}, Op: query.OpEstimate, I: 7},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %v", resp.StatusCode, bad)
	}
	if got.Results[0].Value != exact.Estimate(7) || got.Results[1].Value != approx.Estimate(7) {
		t.Fatalf("batch routed wrong entries: %v / %v, want %v / %v",
			got.Results[0].Value, got.Results[1].Value, exact.Estimate(7), approx.Estimate(7))
	}

	// Unkeyable quantized requests are rejected before any work runs.
	for _, req := range []BuildRequest{
		{Dataset: "vds", Family: "histogram", Metric: "SSE", Budget: 4, Quantize: q},
		{Dataset: "vds", Family: "wavelet", Metric: "SSE", Budget: 4, Quantize: q},
		{Dataset: "vds", Family: "wavelet", Metric: "SAE", Budget: 4, Quantize: 1},
	} {
		if resp, _, _ := postBuild(t, ts, req); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("build %+v: status %d, want 400", req, resp.StatusCode)
		}
	}

	// A mutation republishes both entries — the quantized one through its
	// own quantized live frontier, byte-identical to an offline quantized
	// rebuild over the mutated data.
	item := ItemPDFWire{Entries: []FreqProbWire{{Freq: 3, Prob: 0.5}}}
	mresp, ok, mbad := postMutate(t, ts, "/v1/append", MutateRequest{Dataset: "vds", Items: []ItemPDFWire{item}, Wait: true})
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("append: %d %v", mresp.StatusCode, mbad)
	}
	if ok.Republished != 2 {
		t.Fatalf("republished %d entries, want 2", ok.Republished)
	}
	want := vp.Clone()
	want.Items = append(want.Items, item.toPDF())
	want.N = len(want.Items)
	assertCatalogMatchesOfflineRebuild(t, catDir, want, "vds", 0.5)
}

// TestMutateDatasetFilePersisted: the on-disk dataset is atomically
// rewritten before any republish, so a restarted server rebuilds exactly
// what was served.
func TestMutateDatasetFilePersisted(t *testing.T) {
	s, ts, vp := newValueFixture(t, Config{C: 0.5})
	item := ItemPDFWire{Entries: []FreqProbWire{{Freq: 3, Prob: 0.5}}}
	if resp, _, bad := postMutate(t, ts, "/v1/append", MutateRequest{Dataset: "vds", Items: []ItemPDFWire{item}, Wait: true}); resp.StatusCode != http.StatusOK {
		t.Fatalf("append: %d %v", resp.StatusCode, bad)
	}
	f, err := os.Open(s.datasetPath("vds"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	src, err := probsyn.ReadDataset(f)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := src.(*pdata.ValuePDF)
	if !ok {
		t.Fatalf("persisted dataset is %T", src)
	}
	if got.N != vp.N+1 {
		t.Fatalf("persisted domain %d, want %d", got.N, vp.N+1)
	}
	if len(got.Items[vp.N].Entries) != 1 || got.Items[vp.N].Entries[0].Freq != 3 {
		t.Fatalf("persisted appended item: %+v", got.Items[vp.N])
	}
}

// TestMutateValidation covers the typed-error surface of the mutation
// endpoints.
func TestMutateValidation(t *testing.T) {
	_, ts, _ := newValueFixture(t, Config{C: 0.5})
	item := &ItemPDFWire{Entries: []FreqProbWire{{Freq: 1, Prob: 0.5}}}

	cases := []struct {
		name, path string
		req        MutateRequest
		status     int
		code       string
	}{
		{"missing dataset", "/v1/append", MutateRequest{Dataset: "nope", Items: []ItemPDFWire{*item}}, http.StatusNotFound, CodeNotFound},
		{"empty dataset", "/v1/append", MutateRequest{Items: []ItemPDFWire{*item}}, http.StatusBadRequest, CodeBadRequest},
		{"no items", "/v1/append", MutateRequest{Dataset: "vds"}, http.StatusBadRequest, CodeBadRequest},
		{"bad pdf", "/v1/append", MutateRequest{Dataset: "vds", Items: []ItemPDFWire{{Entries: []FreqProbWire{{Freq: 1, Prob: 1.5}}}}}, http.StatusBadRequest, CodeBadRequest},
		{"no item", "/v1/update", MutateRequest{Dataset: "vds", I: 0}, http.StatusBadRequest, CodeBadRequest},
		{"negative index", "/v1/update", MutateRequest{Dataset: "vds", I: -1, Item: item}, http.StatusBadRequest, CodeBadRequest},
		{"path escape", "/v1/append", MutateRequest{Dataset: "../x", Items: []ItemPDFWire{*item}}, http.StatusBadRequest, CodeBadRequest},
		{"out-of-domain update", "/v1/update", MutateRequest{Dataset: "vds", I: 10000, Item: item, Wait: true}, http.StatusInternalServerError, CodeBuildFailed},
	}
	for _, tc := range cases {
		resp, _, bad := postMutate(t, ts, tc.path, tc.req)
		if resp.StatusCode != tc.status || bad.Error.Code != tc.code {
			t.Errorf("%s: got %d/%q, want %d/%q (%s)", tc.name, resp.StatusCode, bad.Error.Code, tc.status, tc.code, bad.Error.Message)
		}
	}
}

// TestMutateRejectsNonValueModel: mutation of a basic-model dataset is a
// clean 400, not a worker-side failure.
func TestMutateRejectsNonValueModel(t *testing.T) {
	_, ts, _ := newFixture(t, Config{C: 0.5}) // MystiQ basic-model dataset "ds"
	item := ItemPDFWire{Entries: []FreqProbWire{{Freq: 1, Prob: 0.5}}}
	resp, _, bad := postMutate(t, ts, "/v1/append", MutateRequest{Dataset: "ds", Items: []ItemPDFWire{item}, Wait: true})
	if resp.StatusCode != http.StatusBadRequest || bad.Error.Code != CodeBadRequest {
		t.Fatalf("got %d/%q, want 400/bad_request", resp.StatusCode, bad.Error.Code)
	}
}

// TestMutationsApplyInPostOrder: mutations drain on a single goroutine,
// so async appends land in POST order — append semantics ("item
// Domain() gets items[0]") make that order load-bearing.
func TestMutationsApplyInPostOrder(t *testing.T) {
	s, ts, vp := newValueFixture(t, Config{C: 0.5, BuildWorkers: 4})
	for k := 0; k < 3; k++ {
		item := ItemPDFWire{Entries: []FreqProbWire{{Freq: float64(10 + k), Prob: 0.5}}}
		wait := k == 2 // the last append synchronizes the whole sequence
		resp, _, bad := postMutate(t, ts, "/v1/append", MutateRequest{Dataset: "vds", Items: []ItemPDFWire{item}, Wait: wait})
		if resp.StatusCode >= 300 {
			t.Fatalf("append %d: %d %v", k, resp.StatusCode, bad)
		}
	}
	f, err := os.Open(s.datasetPath("vds"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	src, err := probsyn.ReadDataset(f)
	if err != nil {
		t.Fatal(err)
	}
	got := src.(*pdata.ValuePDF)
	if got.N != vp.N+3 {
		t.Fatalf("domain %d, want %d", got.N, vp.N+3)
	}
	for k := 0; k < 3; k++ {
		if f := got.Items[vp.N+k].Entries[0].Freq; f != float64(10+k) {
			t.Fatalf("appended item %d has freq %v, want %d (out-of-order apply)", k, f, 10+k)
		}
	}
}

// TestMutateFailureWithdrawsStaleEntries: when a mutation fails after
// the dataset was persisted, the not-yet-republished catalog entries
// are withdrawn — a cataloged entry would short-circuit /v1/build, so
// withdrawal is what turns the failure into not_found + rebuild instead
// of silently stale estimates.
func TestMutateFailureWithdrawsStaleEntries(t *testing.T) {
	dir := t.TempDir()
	// CatalogDir is a FILE: dataset persistence (DataDir) succeeds, but
	// republish's WriteBlob into it must fail.
	notADir := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(notADir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, ts, vp := newValueFixture(t, Config{C: 0.5, CatalogDir: notADir})

	// Seed the in-memory catalog directly (persistence is broken by
	// construction, so we cannot build through the API).
	syn, err := probsyn.Build(vp, probsyn.SSE, 3)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := probsyn.MarshalSynopsis(syn)
	if err != nil {
		t.Fatal(err)
	}
	key, err := catalog.NewKey("vds", catalog.FamilyHistogram, "SSE", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	cat := s.cfg.Catalog
	cat.PutEncoded(key, syn, blob)

	item := ItemPDFWire{Entries: []FreqProbWire{{Freq: 2, Prob: 0.5}}}
	resp, _, bad := postMutate(t, ts, "/v1/append", MutateRequest{Dataset: "vds", Items: []ItemPDFWire{item}, Wait: true})
	if resp.StatusCode != http.StatusInternalServerError || bad.Error.Code != CodeBuildFailed {
		t.Fatalf("got %d/%q, want 500/build_failed", resp.StatusCode, bad.Error.Code)
	}
	if !strings.Contains(bad.Error.Message, "withdrew 1 stale catalog entries") {
		t.Fatalf("error message does not report the withdrawal: %s", bad.Error.Message)
	}
	if _, ok := cat.Get(key); ok {
		t.Fatal("stale catalog entry survived a failed mutation")
	}
	// And the served surface agrees: the key is gone, not stale.
	var eb ErrorBody
	url := ts.URL + "/v1/estimate?dataset=vds&family=histogram&metric=SSE&budget=3&i=1"
	if resp := getJSON(t, url, &eb); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("estimate after failed mutation: %d, want 404", resp.StatusCode)
	}
}

// TestLiveStateEviction: the retained live frontiers are bounded; the
// least-recently-mutated one is evicted and a later mutation of its
// dataset simply rebuilds from the persisted source.
func TestLiveStateEviction(t *testing.T) {
	s, ts, _ := newValueFixture(t, Config{C: 0.5, MaxLiveStates: 1})
	if resp, _, bad := postSweep(t, ts, BuildRequest{Dataset: "vds", Family: "histogram", Metric: "SSE", Budget: 2, Wait: true}); resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d %v", resp.StatusCode, bad)
	}
	if resp, _, bad := postBuild(t, ts, BuildRequest{Dataset: "vds", Family: "wavelet", Metric: "SSE", Budget: 2, Wait: true}); resp.StatusCode != http.StatusOK {
		t.Fatalf("build: %d %v", resp.StatusCode, bad)
	}
	item := ItemPDFWire{Entries: []FreqProbWire{{Freq: 1, Prob: 0.5}}}
	// Two frontier groups (histogram + wavelet) under a cap of one: each
	// mutation rebuilds at least one, the catalog still revalidates fully.
	for k := 0; k < 2; k++ {
		resp, ok, bad := postMutate(t, ts, "/v1/append", MutateRequest{Dataset: "vds", Items: []ItemPDFWire{item}, Wait: true})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("append %d: %d %v", k, resp.StatusCode, bad)
		}
		if ok.Republished != 3 {
			t.Fatalf("append %d republished %d, want 3", k, ok.Republished)
		}
	}
	s.livesMu.Lock()
	n := len(s.lives)
	s.livesMu.Unlock()
	if n != 1 {
		t.Fatalf("%d retained live states, want 1 (cap)", n)
	}
}
