package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"probsyn"
	"probsyn/internal/catalog"
	"probsyn/internal/engine"
	"probsyn/internal/gen"
	"probsyn/internal/query"
)

func relClose(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// A single node accepts sharded builds too: the merged whole and every
// piece land in its own catalog, and the gathered read paths answer
// from the local pieces — the degenerate one-node cluster.
func TestShardedBuildSingleNode(t *testing.T) {
	s, ts, src := newFixture(t, Config{C: 0.5})
	const k = 4
	for _, tc := range []struct {
		family, metric string
	}{
		{catalog.FamilyHistogram, "SSE"},
		{catalog.FamilyWavelet, "SAE"},
	} {
		resp, ok, bad := postBuild(t, ts, BuildRequest{
			Dataset: "ds", Family: tc.family, Metric: tc.metric, Budget: 8, Shards: k, Wait: true,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s sharded build: status %d, error %+v", tc.family, resp.StatusCode, bad)
		}
		if ok.Status != "built" {
			t.Fatalf("%s sharded build status %q", tc.family, ok.Status)
		}
		key, err := catalog.NewKey("ds", tc.family, tc.metric, 8, 0)
		if err != nil {
			t.Fatal(err)
		}
		whole, okc := s.cfg.Catalog.Get(key)
		if !okc {
			t.Fatalf("%s: merged whole not cataloged", tc.family)
		}
		for i := 0; i < k; i++ {
			pk, err := key.Piece(i, k)
			if err != nil {
				t.Fatal(err)
			}
			if _, okc := s.cfg.Catalog.Get(pk); !okc {
				t.Fatalf("%s: piece %s not cataloged", tc.family, pk)
			}
		}
		// Gathered range sums agree with the merged synopsis (up to FP
		// association: the gather sums per-shard partials).
		n := whole.Synopsis.Domain()
		for _, r := range [][2]int{{0, n - 1}, {5, 40}, {17, 17}, {0, 15}, {30, 50}} {
			var rr RangeSumResponse
			url := fmt.Sprintf("%s/v1/rangesum?dataset=ds&family=%s&metric=%s&budget=8&shards=%d&lo=%d&hi=%d",
				ts.URL, tc.family, tc.metric, k, r[0], r[1])
			if resp := getJSON(t, url, &rr); resp.StatusCode != http.StatusOK {
				t.Fatalf("%s gathered rangesum status %d", tc.family, resp.StatusCode)
			}
			want := whole.Querier.RangeSum(r[0], r[1])
			if !relClose(rr.Sum, want, 1e-9) {
				t.Fatalf("%s gathered rangesum [%d,%d] = %v, merged says %v", tc.family, r[0], r[1], rr.Sum, want)
			}
		}
		// Estimates route to one piece and are bit-equal to the composite.
		for _, i := range []int{0, 13, 16, 47, n - 1} {
			var er EstimateResponse
			url := fmt.Sprintf("%s/v1/estimate?dataset=ds&family=%s&metric=%s&budget=8&shards=%d&i=%d",
				ts.URL, tc.family, tc.metric, k, i)
			if resp := getJSON(t, url, &er); resp.StatusCode != http.StatusOK {
				t.Fatalf("%s sharded estimate status %d", tc.family, resp.StatusCode)
			}
			// Locate the owning piece and compare exactly.
			bounds := probsyn.ShardBounds(src.Domain(), k, tc.family == catalog.FamilyWavelet)
			sh := 0
			for bounds[sh+1] <= i {
				sh++
			}
			pk, _ := key.Piece(sh, k)
			pe, _ := s.cfg.Catalog.Get(pk)
			if want := pe.Querier.Estimate(i - bounds[sh]); er.Estimate != want {
				t.Fatalf("%s sharded estimate(%d) = %v, piece says %v", tc.family, i, er.Estimate, want)
			}
		}
		// The batch endpoint answers the same ops through the composite
		// querier, bit-equal to the gathered GETs (same summation order).
		breq := query.BatchRequest{Ops: []query.Op{
			{BatchKey: query.BatchKey{Dataset: "ds", Family: tc.family, Metric: tc.metric, Budget: 8, Shards: k}, Op: query.OpRangeSum, Lo: 5, Hi: 40},
			{BatchKey: query.BatchKey{Dataset: "ds", Family: tc.family, Metric: tc.metric, Budget: 8, Shards: k}, Op: query.OpEstimate, I: 13},
		}}
		body, _ := json.Marshal(breq)
		resp2, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var bresp query.BatchResponse
		if err := json.NewDecoder(resp2.Body).Decode(&bresp); err != nil {
			t.Fatal(err)
		}
		resp2.Body.Close()
		if len(bresp.Results) != 2 || bresp.Results[0].Err != nil || bresp.Results[1].Err != nil {
			t.Fatalf("%s batch results %+v", tc.family, bresp.Results)
		}
		var rr RangeSumResponse
		getJSON(t, fmt.Sprintf("%s/v1/rangesum?dataset=ds&family=%s&metric=%s&budget=8&shards=%d&lo=5&hi=40",
			ts.URL, tc.family, tc.metric, k), &rr)
		if bresp.Results[0].Value != rr.Sum {
			t.Fatalf("%s batch rangesum %v != gathered %v", tc.family, bresp.Results[0].Value, rr.Sum)
		}
	}
}

func TestShardedBuildRejections(t *testing.T) {
	_, ts, _ := newFixture(t, Config{})
	for name, req := range map[string]BuildRequest{
		"negative shards": {Dataset: "ds", Family: "histogram", Metric: "SSE", Budget: 4, Shards: -2},
	} {
		resp, _, bad := postBuild(t, ts, req)
		if resp.StatusCode != http.StatusBadRequest || bad.Error.Code != CodeBadRequest {
			t.Fatalf("%s: status %d, error %+v", name, resp.StatusCode, bad)
		}
	}
	// Sweeps cannot shard.
	body, _ := json.Marshal(BuildRequest{Dataset: "ds", Family: "histogram", Metric: "SSE", Budget: 4, Shards: 2})
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("sharded sweep: status %d", resp.StatusCode)
	}
	// A shard-addressed read needs the shard count.
	var eb ErrorBody
	if resp := getJSON(t, ts.URL+"/v1/rangesum?dataset=ds&family=histogram&metric=SSE&budget=4&shard=1&lo=0&hi=3", &eb); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("shard without shards: status %d", resp.StatusCode)
	}
}

// clusterNode is one of the two fixture servers of the cluster test.
type clusterNode struct {
	s    *Server
	ts   *httptest.Server
	addr string
}

// newCluster starts n servers on pre-bound listeners so every node
// knows the full peer list before it starts, writes the dataset to
// every node's data dir (only the owner strictly needs it), and
// returns the nodes.
func newCluster(t *testing.T, n int, src probsyn.Source) []*clusterNode {
	t.Helper()
	listeners := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		peers[i] = l.Addr().String()
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		dataDir := t.TempDir()
		f, err := os.Create(filepath.Join(dataDir, "ds.pd"))
		if err != nil {
			t.Fatal(err)
		}
		if err := probsyn.WriteDataset(f, src); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{
			DataDir:    dataDir,
			CatalogDir: t.TempDir(),
			Catalog:    catalog.New(),
			Pool:       engine.New(engine.Options{Workers: 2}),
			Peers:      peers,
			Self:       peers[i],
			C:          0.5,
			Logf:       t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := &httptest.Server{Listener: listeners[i], Config: &http.Server{Handler: s.Handler()}}
		ts.Start()
		nodes[i] = &clusterNode{s: s, ts: ts, addr: peers[i]}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			if err := nd.s.Shutdown(ctx); err != nil {
				t.Error(err)
			}
			cancel()
		}
	})
	return nodes
}

// The two-node acceptance path: a sharded build POSTed to either node
// forwards to the dataset's owner, pieces spread over the ring via
// /v1/accept, and gathered reads sent to either node answer correctly
// (forwarding to the owner, fanning out to piece owners).
func TestClusterTwoNodeShardedBuildAndGather(t *testing.T) {
	src := gen.MystiQLinkage(rand.New(rand.NewSource(7)), gen.DefaultMystiQ(64))
	nodes := newCluster(t, 2, src)
	const k = 4
	key, err := catalog.NewKey("ds", catalog.FamilyHistogram, "SSE", 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	owner := nodes[0].s.datasetOwner("ds")
	if o2 := nodes[1].s.datasetOwner("ds"); o2 != owner {
		t.Fatalf("nodes disagree on the dataset owner: %q vs %q", owner, o2)
	}
	nonOwner := nodes[0]
	ownerNode := nodes[1]
	if owner == nodes[0].addr {
		nonOwner, ownerNode = nodes[1], nodes[0]
	}
	// Build through the NON-owner: the request must forward.
	resp, ok, bad := postBuild(t, nonOwner.ts, BuildRequest{
		Dataset: "ds", Family: catalog.FamilyHistogram, Metric: "SSE", Budget: 8, Shards: k, Wait: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded sharded build: status %d, error %+v", resp.StatusCode, bad)
	}
	if ok.Status != "built" {
		t.Fatalf("forwarded sharded build status %q", ok.Status)
	}
	// The merged whole lives on the owner, and only there.
	if _, okc := ownerNode.s.cfg.Catalog.Get(key); !okc {
		t.Fatal("merged whole missing from the owner's catalog")
	}
	if _, okc := nonOwner.s.cfg.Catalog.Get(key); okc {
		t.Fatal("merged whole leaked into the non-owner's catalog")
	}
	// Every piece is cataloged at exactly the node the ring assigns.
	for i := 0; i < k; i++ {
		pk, err := key.Piece(i, k)
		if err != nil {
			t.Fatal(err)
		}
		want := nodes[0].s.pieceOwner(pk.Filename())
		for _, nd := range nodes {
			_, has := nd.s.cfg.Catalog.Get(pk)
			if has != (nd.addr == want) {
				t.Fatalf("piece %s: cataloged=%v on %s, owner is %s", pk, has, nd.addr, want)
			}
		}
	}
	// Offline reference: the same deterministic sharded build.
	ref, err := probsyn.BuildSharded(src, probsyn.SSE, 8, k)
	if err != nil {
		t.Fatal(err)
	}
	// Gathered reads through EITHER node agree with the reference
	// pieces (builds are bit-identical, gather sums in shard order).
	bounds := ref.Bounds
	for _, nd := range nodes {
		for _, r := range [][2]int{{0, 63}, {5, 40}, {17, 17}, {30, 50}} {
			want := 0.0
			for sh := 0; sh < k; sh++ {
				if bounds[sh] > r[1] || bounds[sh+1]-1 < r[0] {
					continue
				}
				llo, lhi := max(r[0], bounds[sh])-bounds[sh], min(r[1], bounds[sh+1]-1)-bounds[sh]
				want += ref.Pieces[sh].RangeSum(llo, lhi)
			}
			var rr RangeSumResponse
			url := fmt.Sprintf("%s/v1/rangesum?dataset=ds&family=histogram&metric=SSE&budget=8&shards=%d&lo=%d&hi=%d",
				nd.ts.URL, k, r[0], r[1])
			if resp := getJSON(t, url, &rr); resp.StatusCode != http.StatusOK {
				t.Fatalf("gathered rangesum via %s: status %d", nd.addr, resp.StatusCode)
			}
			if rr.Sum != want {
				t.Fatalf("gathered rangesum [%d,%d] via %s = %v, want %v", r[0], r[1], nd.addr, rr.Sum, want)
			}
		}
		for _, i := range []int{0, 13, 16, 47, 63} {
			sh := 0
			for bounds[sh+1] <= i {
				sh++
			}
			want := ref.Pieces[sh].Estimate(i - bounds[sh])
			var er EstimateResponse
			url := fmt.Sprintf("%s/v1/estimate?dataset=ds&family=histogram&metric=SSE&budget=8&shards=%d&i=%d",
				nd.ts.URL, k, i)
			if resp := getJSON(t, url, &er); resp.StatusCode != http.StatusOK {
				t.Fatalf("sharded estimate via %s: status %d", nd.addr, resp.StatusCode)
			}
			if er.Estimate != want {
				t.Fatalf("sharded estimate(%d) via %s = %v, want %v", i, nd.addr, er.Estimate, want)
			}
		}
		// The batch endpoint on this node assembles the composite
		// querier, fetching any remote piece over /v1/blob.
		breq := query.BatchRequest{Ops: []query.Op{
			{BatchKey: query.BatchKey{Dataset: "ds", Family: "histogram", Metric: "SSE", Budget: 8, Shards: k}, Op: query.OpRangeSum, Lo: 5, Hi: 40},
		}}
		body, _ := json.Marshal(breq)
		resp2, err := http.Post(nd.ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var bresp query.BatchResponse
		if err := json.NewDecoder(resp2.Body).Decode(&bresp); err != nil {
			t.Fatal(err)
		}
		resp2.Body.Close()
		if len(bresp.Results) != 1 || bresp.Results[0].Err != nil {
			t.Fatalf("batch via %s: %+v", nd.addr, bresp.Results)
		}
		want := 0.0
		for sh := 0; sh < k; sh++ {
			llo, lhi := max(5, bounds[sh])-bounds[sh], min(40, bounds[sh+1]-1)-bounds[sh]
			if bounds[sh] > 40 || bounds[sh+1]-1 < 5 {
				continue
			}
			want += ref.Pieces[sh].RangeSum(llo, lhi)
		}
		if bresp.Results[0].Value != want {
			t.Fatalf("batch rangesum via %s = %v, want %v", nd.addr, bresp.Results[0].Value, want)
		}
	}
	// Peer-down: kill the owner, then a build for a dataset it owns must
	// fail fast with peer_unavailable at the surviving node.
	ownerNode.ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := ownerNode.s.Shutdown(ctx); err != nil {
		t.Error(err)
	}
	cancel()
	// Find a dataset name the dead node owns (the ring is deterministic,
	// so probe until one maps there).
	name := ""
	for i := 0; i < 64; i++ {
		cand := fmt.Sprintf("gone-%d", i)
		if nonOwner.s.datasetOwner(cand) == ownerNode.addr {
			name = cand
			break
		}
	}
	if name == "" {
		t.Fatal("no probe dataset mapped to the dead peer")
	}
	resp3, _, bad3 := postBuild(t, nonOwner.ts, BuildRequest{Dataset: name, Family: "histogram", Metric: "SSE", Budget: 4, Wait: true})
	if resp3.StatusCode != http.StatusBadGateway || bad3.Error.Code != CodePeerUnavailable {
		t.Fatalf("build for a dead peer's dataset: status %d, error %+v", resp3.StatusCode, bad3)
	}
}

// The owner caches compiled remote pieces after the first gather, so
// steady-state gathered reads are purely local: once warmed, they keep
// answering (bit-identically) after every peer is gone.
func TestClusterGatherCachesRemotePieces(t *testing.T) {
	src := gen.MystiQLinkage(rand.New(rand.NewSource(7)), gen.DefaultMystiQ(64))
	nodes := newCluster(t, 2, src)
	const k = 4
	key, err := catalog.NewKey("ds", catalog.FamilyHistogram, "SSE", 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	owner := nodes[0].s.datasetOwner("ds")
	ownerNode, peerNode := nodes[1], nodes[0]
	if owner == nodes[0].addr {
		ownerNode, peerNode = nodes[0], nodes[1]
	}
	resp, ok, bad := postBuild(t, ownerNode.ts, BuildRequest{
		Dataset: "ds", Family: catalog.FamilyHistogram, Metric: "SSE", Budget: 8, Shards: k, Wait: true,
	})
	if resp.StatusCode != http.StatusOK || ok.Status != "built" {
		t.Fatalf("sharded build: status %d, error %+v", resp.StatusCode, bad)
	}
	remotePieces := 0
	for i := 0; i < k; i++ {
		pk, err := key.Piece(i, k)
		if err != nil {
			t.Fatal(err)
		}
		if ownerNode.s.pieceOwner(pk.Filename()) != ownerNode.addr {
			remotePieces++
		}
	}
	if remotePieces == 0 {
		t.Skip("ring placed every piece on the dataset owner; nothing remote to cache")
	}
	// Warm the cache with one full-domain gather through the owner.
	var warm RangeSumResponse
	url := fmt.Sprintf("%s/v1/rangesum?dataset=ds&family=histogram&metric=SSE&budget=8&shards=%d&lo=0&hi=63", ownerNode.ts.URL, k)
	if resp := getJSON(t, url, &warm); resp.StatusCode != http.StatusOK {
		t.Fatalf("warming gather: status %d", resp.StatusCode)
	}
	ownerNode.s.pieceMu.RLock()
	cached := len(ownerNode.s.pieceCache)
	ownerNode.s.pieceMu.RUnlock()
	if cached != remotePieces {
		t.Fatalf("owner cached %d pieces, want the %d remote ones", cached, remotePieces)
	}
	// Kill the piece-holding peer; warmed gathers must keep answering.
	peerNode.ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := peerNode.s.Shutdown(ctx); err != nil {
		t.Error(err)
	}
	cancel()
	var after RangeSumResponse
	if resp := getJSON(t, url, &after); resp.StatusCode != http.StatusOK {
		t.Fatalf("gather after peer death: status %d", resp.StatusCode)
	}
	if after.Sum != warm.Sum {
		t.Fatalf("gather after peer death = %v, warmed answer was %v", after.Sum, warm.Sum)
	}
	// A rebuild on the owner drops the cache: with the peer dead, piece
	// redistribution must now fail rather than serve stale caches.
	resp2, _, _ := postBuild(t, ownerNode.ts, BuildRequest{
		Dataset: "ds", Family: catalog.FamilyHistogram, Metric: "SSE", Budget: 8, Shards: k, Wait: true,
	})
	if resp2.StatusCode == http.StatusOK {
		t.Fatal("sharded rebuild succeeded with the piece owner dead")
	}
	ownerNode.s.pieceMu.RLock()
	left := len(ownerNode.s.pieceCache)
	ownerNode.s.pieceMu.RUnlock()
	if left != 0 {
		t.Fatalf("failed rebuild left %d cached pieces, want 0", left)
	}
}

func TestClusterConfigValidation(t *testing.T) {
	base := Config{
		DataDir: t.TempDir(), Catalog: catalog.New(), Pool: engine.New(engine.Options{Workers: 1}),
	}
	cfg := base
	cfg.Peers = []string{"a:1", "b:2"}
	cfg.Self = "c:3"
	if _, err := New(cfg); err == nil {
		t.Fatal("self outside the peer list accepted")
	}
	cfg = base
	cfg.Self = "a:1"
	if _, err := New(cfg); err == nil {
		t.Fatal("self without peers accepted")
	}
	cfg = base
	cfg.Peers = []string{"a:1", "a:1"}
	cfg.Self = "a:1"
	if _, err := New(cfg); err == nil {
		t.Fatal("duplicate peers accepted")
	}
}
