package server

import (
	"os"
	"sync"

	"probsyn/internal/catalog"
)

// flatKeeper maintains the catalog directory's flat mmap file (see
// internal/catalog: the format replicas boot from in milliseconds)
// against live catalog changes. The discipline is remove-then-repack:
//
//   - JobStart runs before any work that may persist or withdraw
//     catalog entries (builds, sweeps, mutations, accepted cluster
//     pieces) and REMOVES the flat file first — so at every instant,
//     a flat file that exists on disk describes exactly the .psyn
//     files beside it. A crash mid-job boots from the .psyn directory
//     alone; nothing can serve a stale flat snapshot.
//   - JobEnd marks the work finished; once no work is active, the
//     background packer re-packs the whole catalog and writes the file
//     atomically. Packs racing a new job are discarded (generation
//     check) — the new job's end will kick another pack.
//
// Removal and the repack write both happen under the keeper's lock, so
// a repack can never resurrect a file a just-started job removed.
type flatKeeper struct {
	path string
	cat  *catalog.Catalog
	logf func(format string, args ...any)

	mu     sync.Mutex
	active int    // jobs between JobStart and JobEnd
	gen    uint64 // bumped by every JobStart; stamps pack snapshots

	kick chan struct{} // coalesced repack signal
	stop chan struct{}
	done chan struct{}
}

func newFlatKeeper(path string, cat *catalog.Catalog, logf func(format string, args ...any)) *flatKeeper {
	fk := &flatKeeper{
		path: path,
		cat:  cat,
		logf: logf,
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go fk.loop()
	return fk
}

// JobStart invalidates the flat file before catalog-changing work
// begins. Idempotent and cheap (one unlink); called once per job.
func (fk *flatKeeper) JobStart() {
	fk.mu.Lock()
	fk.gen++
	fk.active++
	if err := os.Remove(fk.path); err != nil && !os.IsNotExist(err) {
		fk.logf("flat catalog: invalidate %s: %v", fk.path, err)
	}
	fk.mu.Unlock()
}

// JobEnd marks the job finished and, when it was the last active one,
// kicks the background repack.
func (fk *flatKeeper) JobEnd() {
	fk.mu.Lock()
	fk.active--
	idle := fk.active == 0
	fk.mu.Unlock()
	if idle {
		select {
		case fk.kick <- struct{}{}:
		default:
		}
	}
}

func (fk *flatKeeper) loop() {
	defer close(fk.done)
	for {
		select {
		case <-fk.stop:
			return
		case <-fk.kick:
			fk.packOnce()
		}
	}
}

// packOnce re-packs the catalog if the server is quiescent. The
// expensive serialization runs outside the lock; the write (and its
// staleness check) runs inside it, so the file on disk is always either
// absent or a pack of a catalog no job has touched since.
func (fk *flatKeeper) packOnce() {
	fk.mu.Lock()
	if fk.active != 0 {
		fk.mu.Unlock()
		return // the active job's end re-kicks
	}
	gen0 := fk.gen
	fk.mu.Unlock()

	data, err := catalog.PackBytes(fk.cat.List())
	if err != nil {
		fk.logf("flat catalog: pack: %v", err)
		return
	}

	fk.mu.Lock()
	defer fk.mu.Unlock()
	if fk.active != 0 || fk.gen != gen0 {
		return // a job started mid-pack; the snapshot is stale
	}
	if err := catalog.WriteBlob(fk.path, data); err != nil {
		fk.logf("flat catalog: write %s: %v", fk.path, err)
	}
}

// Close stops the background packer and runs one final synchronous
// pack — the shutdown path, after every queued job has drained, so the
// next boot finds a flat file covering everything this process built.
func (fk *flatKeeper) Close() {
	close(fk.stop)
	<-fk.done
	fk.packOnce()
}
