package hist

import (
	"fmt"

	"probsyn/internal/numeric"
)

// EquiDepth builds the B-bucket equi-depth histogram over expected
// frequencies: bucket boundaries are placed at the B-quantiles of the
// expected cumulative frequency mass. Prior work (§1.1) showed that
// quantiles over probabilistic data reduce to quantiles over items
// weighted by expected frequency; this realizes that reduction. Bucket
// representatives and costs come from the supplied oracle, so the result
// is directly comparable to Optimal under the same metric.
func EquiDepth(expected []float64, o Oracle, B int) (*Histogram, error) {
	n := len(expected)
	if n == 0 || n != o.N() {
		return nil, fmt.Errorf("hist: EquiDepth: %d expected frequencies for domain %d", n, o.N())
	}
	if B <= 0 {
		return nil, fmt.Errorf("hist: bucket budget %d, want >= 1", B)
	}
	if B > n {
		B = n
	}
	prefix := numeric.PrefixSums(expected)
	total := prefix[n]
	starts := make([]int, 0, B)
	starts = append(starts, 0)
	for k := 1; k < B; k++ {
		target := total * float64(k) / float64(B)
		// first index whose cumulative mass strictly exceeds the target
		s := numeric.SearchFloats(prefix[1:], target)
		for prefix[s+1] <= target && s < n-1 {
			s++
		}
		if s <= starts[len(starts)-1] {
			s = starts[len(starts)-1] + 1
		}
		if s >= n {
			break
		}
		starts = append(starts, s)
	}
	return FromBoundaries(o, starts)
}
