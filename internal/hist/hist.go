// Package hist builds optimal and near-optimal B-bucket histogram synopses
// over probabilistic data (§3 of Cormode & Garofalakis). Bucket-cost
// oracles — one per error objective — reduce each metric to O(1) or
// O(polylog) bucket-cost evaluations over precomputed arrays; a shared
// dynamic program (Eq. 2) then finds the optimal bucketing, and a
// Guha–Koudas–Shim-style approximation (§3.5) trades a (1+eps) factor for
// a much smaller search.
package hist

import (
	"fmt"
	"sort"
)

// Bucket is one histogram bucket: the inclusive item range [Start, End],
// the representative value every enclosed frequency is approximated by,
// and the bucket's expected error contribution under the oracle's metric.
type Bucket struct {
	Start, End int
	Rep        float64
	Cost       float64
}

// Width returns the number of items the bucket spans.
func (b Bucket) Width() int { return b.End - b.Start + 1 }

// Histogram is a B-bucket partition of the domain [0, N).
type Histogram struct {
	N       int
	Buckets []Bucket
	// Cost is the histogram's total expected error: the sum of bucket
	// costs for cumulative metrics, their maximum for max-error metrics.
	Cost float64
}

// B returns the number of buckets.
func (h *Histogram) B() int { return len(h.Buckets) }

// Terms returns the synopsis size in terms (buckets), implementing the
// shared synopsis interface (internal/synopsis).
func (h *Histogram) Terms() int { return len(h.Buckets) }

// ErrorCost returns the histogram's expected error under the metric it was
// built for, implementing the shared synopsis interface.
func (h *Histogram) ErrorCost() float64 { return h.Cost }

// Domain returns the item-domain size the histogram summarizes.
func (h *Histogram) Domain() int { return h.N }

// Estimate returns the histogram's approximation ĝ_i of item i's frequency.
// Out-of-domain items are clamped explicitly to the nearest edge (i < 0
// answers bucket 0's representative, i >= N the last bucket's): the
// histogram has no information outside [0, N), so the edge bucket is the
// least-wrong constant answer. Callers that must not fabricate an answer
// for out-of-domain items — the serving layer's reject-out-of-domain
// contract — validate i against Domain() before calling.
func (h *Histogram) Estimate(i int) float64 {
	if i < 0 {
		i = 0
	}
	if i >= h.N {
		i = h.N - 1
	}
	k := sort.Search(len(h.Buckets), func(k int) bool { return h.Buckets[k].End >= i })
	if k == len(h.Buckets) {
		k = len(h.Buckets) - 1 // unreachable on a Validate()-clean histogram
	}
	return h.Buckets[k].Rep
}

// RangeSum estimates the expected total frequency over the inclusive item
// range [lo, hi] (each item approximated by its bucket representative) —
// the quantity probabilistic range-count queries need. Out-of-domain ends
// clamp; an empty range sums to zero.
//
// The sum is computed as the prefix difference P(hi) - P(lo-1), where
// P(i) accumulates whole buckets left to right and finishes with the
// partial bucket containing i. The compiled querier (internal/query)
// evaluates exactly this decomposition from a precomputed prefix array,
// so compiled and uncompiled answers are bit-identical by construction —
// keep the two in lockstep.
func (h *Histogram) RangeSum(lo, hi int) float64 {
	if lo < 0 {
		lo = 0
	}
	if hi >= h.N {
		hi = h.N - 1
	}
	if hi < lo {
		return 0
	}
	if lo == 0 {
		return h.prefixTo(hi)
	}
	return h.prefixTo(hi) - h.prefixTo(lo-1)
}

// prefixTo returns P(i): the estimated total frequency over [0, i],
// accumulating full buckets left to right and ending with the partial
// bucket containing i. The accumulation order is the contract shared with
// the compiled querier's prefix array (see RangeSum).
func (h *Histogram) prefixTo(i int) float64 {
	total := 0.0
	for _, b := range h.Buckets {
		if i > b.End {
			total += float64(b.Width()) * b.Rep
			continue
		}
		total += float64(i-b.Start+1) * b.Rep
		break
	}
	return total
}

// Validate checks that the buckets are a contiguous partition of [0, N).
func (h *Histogram) Validate() error {
	if h.N <= 0 {
		return fmt.Errorf("hist: histogram over empty domain")
	}
	if len(h.Buckets) == 0 {
		return fmt.Errorf("hist: histogram with no buckets")
	}
	if h.Buckets[0].Start != 0 {
		return fmt.Errorf("hist: first bucket starts at %d, want 0", h.Buckets[0].Start)
	}
	for k := 0; k < len(h.Buckets); k++ {
		b := h.Buckets[k]
		if b.Start > b.End {
			return fmt.Errorf("hist: bucket %d has start %d > end %d", k, b.Start, b.End)
		}
		if k > 0 && b.Start != h.Buckets[k-1].End+1 {
			return fmt.Errorf("hist: bucket %d starts at %d, want %d", k, b.Start, h.Buckets[k-1].End+1)
		}
	}
	if last := h.Buckets[len(h.Buckets)-1].End; last != h.N-1 {
		return fmt.Errorf("hist: last bucket ends at %d, want %d", last, h.N-1)
	}
	return nil
}

// Boundaries returns the bucket start positions (a convenient compact
// encoding: boundaries[0] == 0 always).
func (h *Histogram) Boundaries() []int {
	out := make([]int, len(h.Buckets))
	for k, b := range h.Buckets {
		out[k] = b.Start
	}
	return out
}

// FromBoundaries assembles a histogram with the given bucket start
// positions (ascending, starting at 0) over [0, n), using the oracle to
// fill each bucket's optimal representative and cost.
func FromBoundaries(o Oracle, starts []int) (*Histogram, error) {
	n := o.N()
	if len(starts) == 0 || starts[0] != 0 {
		return nil, fmt.Errorf("hist: boundaries must begin with 0")
	}
	h := &Histogram{N: n, Buckets: make([]Bucket, 0, len(starts))}
	for k := range starts {
		end := n - 1
		if k+1 < len(starts) {
			end = starts[k+1] - 1
		}
		if starts[k] > end {
			return nil, fmt.Errorf("hist: boundary %d produces empty bucket", starts[k])
		}
		cost, rep := o.Cost(starts[k], end)
		h.Buckets = append(h.Buckets, Bucket{Start: starts[k], End: end, Rep: rep, Cost: cost})
	}
	h.Cost = combineAll(o.Combine(), h.Buckets)
	return h, h.Validate()
}

func combineAll(c Combine, buckets []Bucket) float64 {
	total := 0.0
	for i, b := range buckets {
		if c == Sum {
			total += b.Cost
		} else if i == 0 || b.Cost > total {
			total = b.Cost
		}
	}
	return total
}
