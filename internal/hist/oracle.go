package hist

// Combine is how per-bucket errors aggregate into the histogram objective:
// Sum for the cumulative metrics (SSE, SSRE, SAE, SARE), Max for the
// maximum-error metrics (MAE, MARE). The DP recurrence (Eq. 2) is identical
// up to this choice of h(x,y).
type Combine int

// The two aggregation rules of §2.2.
const (
	Sum Combine = iota
	Max
)

// Oracle prices single buckets under one error objective: Cost returns the
// minimal expected bucket error for the inclusive item range [s, e] together
// with the representative value achieving it. Implementations precompute
// prefix structures so Cost runs in O(1) or O(polylog) time (§3).
//
// Cost must be safe for concurrent calls: RunDPWorkers and
// ApproximateWorkers issue them from multiple goroutines. Every oracle in
// this package satisfies this by construction — Cost only reads arrays
// frozen at construction time. (SweepOracle.CostsForEnd may keep mutable
// sweep state; it is always invoked from a single goroutine.)
//
// Cost must be non-negative, exactly, in floats — not just in exact
// arithmetic. Every error metric is a non-negative expectation, but
// differenced prefix sums can cancel below zero by ULPs, so
// implementations clamp at 0 (every oracle in this package does). The
// pruned DP depends on it: skipping a candidate because one side of
// h(prev[i], cost) already reaches the incumbent is only sound when the
// other side cannot be negative.
type Oracle interface {
	// N returns the domain size.
	N() int
	// Combine returns the aggregation rule of the oracle's metric.
	Combine() Combine
	// Cost returns (min expected bucket error, optimal representative)
	// for the bucket spanning items s..e, 0 <= s <= e < N().
	Cost(s, e int) (cost, rep float64)
}

// SweepOracle is an optional fast path used by the exact DP: fill the costs
// of every bucket ending at e in one pass. The tuple-pdf SSE oracle uses it
// to stay exact without per-bucket straddle queries (DESIGN.md finding 3).
type SweepOracle interface {
	Oracle
	// CostsForEnd writes, for each s in [0, e], the cost and optimal
	// representative of bucket [s, e] into costs[s] and reps[s].
	// Both slices have length >= e+1.
	CostsForEnd(e int, costs, reps []float64)
}

// costsForEnd dispatches to the sweep fast path when available.
func costsForEnd(o Oracle, e int, costs, reps []float64) {
	if so, ok := o.(SweepOracle); ok {
		so.CostsForEnd(e, costs, reps)
		return
	}
	for s := 0; s <= e; s++ {
		costs[s], reps[s] = o.Cost(s, e)
	}
}
