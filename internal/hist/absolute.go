package hist

import (
	"fmt"

	"probsyn/internal/metric"
	"probsyn/internal/numeric"
	"probsyn/internal/pdata"
)

// WeightedAbs is the shared oracle for the weighted-absolute-error metrics
// SAE and SARE (§3.3–3.4, Theorems 3–4). With per-item, per-value weights
// w_{i,j} = Pr[g_i = v_j]·mw(v_j) (mw = 1 for SAE, 1/max(c,v) for SARE),
// the bucket cost at representative t is
//
//	Σ_{i∈b} Σ_j w_{i,j}·|v_j − t|
//	  = t·(2·W≤(t) − W) − 2·S≤(t) + S,
//
// where W≤/S≤ cumulate weights and weight·value up to t and W/S are their
// totals. The optimum lies at some v_ℓ ∈ V (the paper's argument: the cost
// is piecewise linear in t with breakpoints at V, and the successive
// grid differences change sign once), found by binary search on the sign
// of the forward difference (DESIGN.md finding 4). Precomputation stores,
// for every ℓ, item-prefix sums of W≤ and S≤: O(|V|·n) space, O(log|V|)
// per bucket query.
type WeightedAbs struct {
	kind metric.Kind
	n    int
	vs   pdata.ValueSet
	// pw[ℓ*(n+1)+i+1] = Σ_{i'<=i} W≤(i', ℓ); ps likewise for S≤.
	pw, ps []float64
	// tw, ts: item-prefix sums of the per-item totals.
	tw, ts numeric.Prefix
}

// NewWeightedAbs builds the oracle from a dense pmf table; kind must be
// metric.SAE or metric.SARE.
func NewWeightedAbs(tab *pdata.PMFTable, kind metric.Kind, p metric.Params) (*WeightedAbs, error) {
	if kind != metric.SAE && kind != metric.SARE {
		return nil, fmt.Errorf("hist: WeightedAbs supports SAE/SARE, got %v", kind)
	}
	n, k := tab.N(), tab.VS.Len()
	o := &WeightedAbs{
		kind: kind,
		n:    n,
		vs:   tab.VS,
		pw:   make([]float64, k*(n+1)),
		ps:   make([]float64, k*(n+1)),
	}
	totW := make([]float64, n)
	totS := make([]float64, n)
	mw := make([]float64, k)
	for j := 0; j < k; j++ {
		mw[j] = kind.Weight(tab.VS.Values[j], p)
	}
	for i := 0; i < n; i++ {
		var cw, cs float64
		for j := 0; j < k; j++ {
			w := tab.P[i][j] * mw[j]
			cw += w
			cs += w * tab.VS.Values[j]
			base := j * (n + 1)
			o.pw[base+i+1] = o.pw[base+i] + cw
			o.ps[base+i+1] = o.ps[base+i] + cs
		}
		totW[i], totS[i] = cw, cs
	}
	o.tw = numeric.NewPrefix(totW)
	o.ts = numeric.NewPrefix(totS)
	return o, nil
}

// N returns the domain size.
func (o *WeightedAbs) N() int { return o.n }

// Combine returns Sum.
func (o *WeightedAbs) Combine() Combine { return Sum }

// Kind returns the metric (SAE or SARE) the oracle prices.
func (o *WeightedAbs) Kind() metric.Kind { return o.kind }

// CostAt prices bucket [s, e] with the representative pinned to V[ℓ].
func (o *WeightedAbs) CostAt(l, s, e int) float64 {
	base := l * (o.n + 1)
	wle := o.pw[base+e+1] - o.pw[base+s]
	sle := o.ps[base+e+1] - o.ps[base+s]
	v := o.vs.Values[l]
	cost := v*(2*wle-o.tw.Range(s, e)) + o.ts.Range(s, e) - 2*sle
	if cost < 0 {
		cost = 0
	}
	return cost
}

// Cost prices bucket [s, e], optimizing the representative over V.
func (o *WeightedAbs) Cost(s, e int) (float64, float64) {
	l, c := numeric.MinConvexGrid(0, o.vs.Len()-1, func(l int) float64 {
		return o.CostAt(l, s, e)
	})
	return c, o.vs.Values[l]
}
