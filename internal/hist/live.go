package hist

import (
	"fmt"

	"probsyn/internal/engine"
	"probsyn/internal/pdata"
)

// LiveDP is a histogram DP table kept live against a mutable value-pdf
// source: the completed opt/choice levels survive the build, and a data
// mutation recomputes only the columns it can have changed.
//
// The DP of Eq. (2) fills column e (one entry per budget level) from
// bucket costs within [0, e] and from columns left of e, so:
//
//   - Append(items) extends the domain by k items and runs exactly the k
//     new suffix columns — O(k·n·B) split reductions instead of the full
//     O(n²·B) — after rebuilding the bucket-cost oracle over the grown
//     data (O(oracle precompute), dominated by the DP at any real size);
//   - Update(i, item) patches item i's pdf and re-runs the columns
//     e >= i: buckets wholly left of i are priced identically by the
//     rebuilt oracle (prefix structures agree bit-for-bit up to the first
//     changed item), so those columns are already correct. The cost is
//     proportional to the domain right of the update — cheap for the
//     hot-tail corrections a serving system absorbs, a full re-DP in the
//     worst case (i = 0).
//
// Determinism: every preserved column holds exactly the values a fresh
// DP over the mutated data would compute, and recomputed columns run the
// same engine schedule — so the maintained table, and every budget's
// extracted histogram, is bit-identical to a from-scratch build at any
// worker count. The live property tests assert this through the codec.
type LiveDP struct {
	vp         *pdata.ValuePDF
	makeOracle func(*pdata.ValuePDF) (Oracle, error)
	breq       int
	pool       *engine.Pool
	tab        *DPTable
}

// NewLiveDP builds the full DP once (exactly as RunDPPool would) and
// retains the state needed to maintain it. makeOracle rebuilds the
// bucket-cost oracle after each mutation; it must be deterministic in its
// input (every oracle in this package is). The source is deep-copied.
func NewLiveDP(vp *pdata.ValuePDF, makeOracle func(*pdata.ValuePDF) (Oracle, error), B int, pool *engine.Pool) (*LiveDP, error) {
	if err := vp.Validate(); err != nil {
		return nil, err
	}
	l := &LiveDP{vp: vp.Clone(), makeOracle: makeOracle, breq: B, pool: pool}
	o, err := makeOracle(l.vp)
	if err != nil {
		return nil, err
	}
	l.tab, err = RunDPPool(o, B, pool)
	if err != nil {
		return nil, err
	}
	return l, nil
}

// Table exposes the maintained DP table; it is revalidated in place by
// Append/Update, so callers must not retain it across mutations.
func (l *LiveDP) Table() *DPTable { return l.tab }

// Domain returns the current domain size.
func (l *LiveDP) Domain() int { return l.vp.N }

// Append extends the domain with the given item pdfs and extends the DP
// by the new suffix columns.
func (l *LiveDP) Append(items []pdata.ItemPDF) error {
	if len(items) == 0 {
		return nil
	}
	for k := range items {
		if err := items[k].Validate(); err != nil {
			return fmt.Errorf("hist: append item %d: %w", k, err)
		}
	}
	from := l.vp.N
	for _, it := range items {
		l.vp.Items = append(l.vp.Items, it.Clone())
	}
	l.vp.N = len(l.vp.Items)
	return l.redo(from)
}

// Update replaces item i's pdf and re-runs the DP columns from i.
func (l *LiveDP) Update(i int, item pdata.ItemPDF) error {
	if i < 0 || i >= l.vp.N {
		return fmt.Errorf("hist: update index %d outside domain [0, %d)", i, l.vp.N)
	}
	if err := item.Validate(); err != nil {
		return fmt.Errorf("hist: update item %d: %w", i, err)
	}
	l.vp.Items[i] = item.Clone()
	return l.redo(i)
}

// redo rebuilds the oracle over the mutated source and resumes the DP at
// the first possibly-dirty column.
func (l *LiveDP) redo(from int) error {
	o, err := l.makeOracle(l.vp)
	if err != nil {
		return err
	}
	return l.tab.resume(o, from, l.breq, l.pool)
}
