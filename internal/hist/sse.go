package hist

import (
	"sort"

	"probsyn/internal/intervals"
	"probsyn/internal/numeric"
	"probsyn/internal/pdata"
)

// The SSE family (§3.1). The paper's objective, Eq. (5), prices a bucket at
//
//	SSE(b) = Σ_{i∈b} E[g_i²] − (1/n_b)·E[(Σ_{i∈b} g_i)²],
//
// the expected within-world deviation from the per-world bucket mean. The
// fixed-representative variant prices it at Σ E[g_i²] − (Σ E[g_i])²/n_b,
// the error a stored single representative actually achieves (DESIGN.md
// finding 1). Both decompose over precomputed prefix arrays.

// SSEValue is the Eq. (5) oracle for the value pdf model, where items are
// independent so E[(Σg)²] = (ΣE[g])² + ΣVar[g] splits item by item.
// Cost queries are O(1) after O(m+n) precomputation (Theorem 1).
type SSEValue struct {
	meanSq numeric.Prefix // Σ E[g²]
	mean   numeric.Prefix // Σ E[g]
	vr     numeric.Prefix // Σ Var[g]
}

// NewSSEValue builds the oracle from a value pdf.
func NewSSEValue(vp *pdata.ValuePDF) *SSEValue {
	mom := pdata.MomentsOf(vp)
	return &SSEValue{
		meanSq: numeric.NewPrefix(mom.MeanSq),
		mean:   numeric.NewPrefix(mom.Mean),
		vr:     numeric.NewPrefix(mom.Var),
	}
}

// N returns the domain size.
func (o *SSEValue) N() int { return o.mean.Len() }

// Combine returns Sum: SSE is cumulative.
func (o *SSEValue) Combine() Combine { return Sum }

// Cost implements Eq. (5) for bucket [s, e].
func (o *SSEValue) Cost(s, e int) (float64, float64) {
	nb := float64(e - s + 1)
	sum := o.mean.Range(s, e)
	cost := o.meanSq.Range(s, e) - (sum*sum+o.vr.Range(s, e))/nb
	if cost < 0 {
		cost = 0 // differenced prefixes can go an ulp negative
	}
	return cost, sum / nb
}

// SSEFixed is the fixed-representative SSE oracle, valid for any source
// because its cost uses only per-item marginal moments:
// cost = Σ E[g²] − (Σ E[g])²/n_b, minimized by b̂ = mean of expected
// frequencies. Under this objective the optimal bucketing coincides with
// the V-optimal histogram of the expected frequencies (finding 1), which
// the tests verify.
type SSEFixed struct {
	meanSq numeric.Prefix
	mean   numeric.Prefix
}

// NewSSEFixed builds the oracle from any probabilistic source.
func NewSSEFixed(src pdata.Source) *SSEFixed {
	mom := pdata.MomentsOf(src)
	return &SSEFixed{meanSq: numeric.NewPrefix(mom.MeanSq), mean: numeric.NewPrefix(mom.Mean)}
}

// N returns the domain size.
func (o *SSEFixed) N() int { return o.mean.Len() }

// Combine returns Sum.
func (o *SSEFixed) Combine() Combine { return Sum }

// Cost prices bucket [s, e] against its optimal fixed representative.
func (o *SSEFixed) Cost(s, e int) (float64, float64) {
	nb := float64(e - s + 1)
	sum := o.mean.Range(s, e)
	cost := o.meanSq.Range(s, e) - sum*sum/nb
	if cost < 0 {
		cost = 0
	}
	return cost, sum / nb
}

// SSETuple is the Eq. (5) oracle for the tuple pdf model, where items in
// one bucket are correlated through shared tuples:
//
//	Var[Σ_{i∈b} g_i] = Σ_t P_t(1−P_t),  P_t = Pr[s ≤ t ≤ e].
//
// Σ_t P_t comes from the prefix array B[e] = Σ_t Pr[t ≤ e]. Σ_t P_t² would
// be C[e]−C[s−1] with C[e] = Σ_t Pr[t ≤ e]² — but only when no tuple's
// alternatives straddle the boundary s−1 (always true in the basic model).
// The general exact correction subtracts 2·F_t(s−1)·(F_t(e)−F_t(s−1)) for
// each straddling tuple t, located by an interval-tree stab at s−1
// (random-access Cost), or is maintained incrementally during a
// start-sweep for each bucket end (CostsForEnd, used by the DP: total
// O(nm + Bn²), matching Theorem 1's asymptotics).
type SSETuple struct {
	n      int
	meanSq numeric.Prefix
	cumB   []float64 // cumB[e] = Σ_t Pr[t <= e], index shifted by 1
	cumC   []float64 // cumC[e] = Σ_t Pr[t <= e]^2, index shifted by 1

	// closedForm skips the straddle correction, reproducing the paper's
	// printed formula; kept as a documented fast approximation / ablation.
	closedForm bool

	// exact random-access machinery
	tree     *intervals.Tree
	tupItems [][]int     // per tuple: sorted distinct items
	tupCum   [][]float64 // per tuple: cumulative probability at tupItems

	// sweep machinery
	altTuple [][]int32   // per item: tuple indices with an alternative here
	altProb  [][]float64 // per item: matching probabilities
	curP     []float64   // scratch: P_t(s,e) for touched tuples
	touched  []int32
}

// NewSSETuple builds the exact oracle for a tuple pdf.
func NewSSETuple(tp *pdata.TuplePDF) *SSETuple {
	return newSSETuple(tp, false)
}

// NewSSETupleClosedForm builds the oracle using the paper's closed form
// without the straddle correction. It is exact exactly when no tuple's
// alternatives straddle a queried bucket boundary (e.g. the basic model)
// and an approximation otherwise; see DESIGN.md finding 3.
func NewSSETupleClosedForm(tp *pdata.TuplePDF) *SSETuple {
	return newSSETuple(tp, true)
}

func newSSETuple(tp *pdata.TuplePDF, closedForm bool) *SSETuple {
	n := tp.N
	mom := pdata.MomentsOf(tp)
	o := &SSETuple{
		n:          n,
		meanSq:     numeric.NewPrefix(mom.MeanSq),
		closedForm: closedForm,
		cumB:       make([]float64, n+1),
		cumC:       make([]float64, n+1),
		altTuple:   make([][]int32, n),
		altProb:    make([][]float64, n),
		curP:       make([]float64, len(tp.Tuples)),
		touched:    make([]int32, 0, 64),
	}

	// Per-item alternative lists (sweep) and per-tuple sorted CDFs (stab).
	o.tupItems = make([][]int, len(tp.Tuples))
	o.tupCum = make([][]float64, len(tp.Tuples))
	ivs := make([]intervals.Interval, 0, len(tp.Tuples))
	for t := range tp.Tuples {
		alts := tp.Tuples[t].Alts
		if len(alts) == 0 {
			continue
		}
		merged := make(map[int]float64, len(alts))
		for _, a := range alts {
			if a.Prob != 0 {
				merged[a.Item] += a.Prob
				o.altTuple[a.Item] = append(o.altTuple[a.Item], int32(t))
				o.altProb[a.Item] = append(o.altProb[a.Item], a.Prob)
			}
		}
		items := make([]int, 0, len(merged))
		for it := range merged {
			items = append(items, it)
		}
		sort.Ints(items)
		cum := make([]float64, len(items))
		acc := 0.0
		for k, it := range items {
			acc += merged[it]
			cum[k] = acc
		}
		o.tupItems[t], o.tupCum[t] = items, cum
		if len(items) > 1 {
			// The tuple can straddle boundaries a in [first, last-1].
			ivs = append(ivs, intervals.Interval{Lo: items[0], Hi: items[len(items)-1] - 1, ID: t})
		}
	}
	o.tree = intervals.New(ivs)

	// cumB via per-item expected mass; cumC by walking items left to right
	// updating each tuple's running CDF when it gains mass.
	var accB, accC numeric.Accumulator
	runF := make([]float64, len(tp.Tuples))
	for i := 0; i < n; i++ {
		for k, t := range o.altTuple[i] {
			p := o.altProb[i][k]
			f := runF[t]
			accC.Add((f+p)*(f+p) - f*f)
			runF[t] = f + p
			accB.Add(p)
		}
		o.cumB[i+1] = accB.Value()
		o.cumC[i+1] = accC.Value()
	}
	return o
}

// N returns the domain size.
func (o *SSETuple) N() int { return o.n }

// Combine returns Sum.
func (o *SSETuple) Combine() Combine { return Sum }

// tupleCDF returns F_t(x) = Pr[t <= x] by binary search over the tuple's
// distinct items.
func (o *SSETuple) tupleCDF(t, x int) float64 {
	items := o.tupItems[t]
	k := sort.SearchInts(items, x+1) // first item > x
	if k == 0 {
		return 0
	}
	return o.tupCum[t][k-1]
}

// Cost prices bucket [s, e] in O(log m + k·log ℓ) where k is the number of
// tuples straddling the boundary s-1.
func (o *SSETuple) Cost(s, e int) (float64, float64) {
	nb := float64(e - s + 1)
	esum := o.cumB[e+1] - o.cumB[s]
	sumP2 := o.cumC[e+1] - o.cumC[s]
	if s > 0 && !o.closedForm {
		corr := 0.0
		o.tree.Stab(s-1, func(iv intervals.Interval) bool {
			fa := o.tupleCDF(iv.ID, s-1)
			fb := o.tupleCDF(iv.ID, e)
			corr += fa * (fb - fa)
			return true
		})
		sumP2 -= 2 * corr
	}
	variance := esum - sumP2
	cost := o.meanSq.Range(s, e) - (esum*esum+variance)/nb
	if cost < 0 {
		cost = 0
	}
	return cost, esum / nb
}

// CostsForEnd fills the exact cost of every bucket [s, e] for fixed e by
// sweeping s downward while maintaining Σ_t P_t(1−P_t) incrementally;
// each alternative at items <= e is touched once, so the whole DP costs
// O(nm) for the variance terms.
func (o *SSETuple) CostsForEnd(e int, costs, reps []float64) {
	if o.closedForm {
		// The closed form is already O(1) per query; no sweep needed.
		for s := 0; s <= e; s++ {
			costs[s], reps[s] = o.Cost(s, e)
		}
		return
	}
	varSum := 0.0
	o.touched = o.touched[:0]
	for s := e; s >= 0; s-- {
		for k, t := range o.altTuple[s] {
			p := o.altProb[s][k]
			cur := o.curP[t]
			if cur == 0 {
				o.touched = append(o.touched, t)
			}
			varSum += (cur+p)*(1-cur-p) - cur*(1-cur)
			o.curP[t] = cur + p
		}
		nb := float64(e - s + 1)
		esum := o.cumB[e+1] - o.cumB[s]
		cost := o.meanSq.Range(s, e) - (esum*esum+varSum)/nb
		if cost < 0 {
			cost = 0
		}
		costs[s], reps[s] = cost, esum/nb
	}
	for _, t := range o.touched {
		o.curP[t] = 0
	}
}
