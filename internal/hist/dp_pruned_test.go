package hist

// Property tests for the monotonicity-pruned split reduction: the pruned
// DP must produce math.Float64bits-identical opt/choice tables to the
// dense reference (forced via DenseDPEnv) for every oracle family, both
// combine rules, and every worker count — and the DPStats accounting must
// balance exactly (every candidate is either scanned or pruned). Run
// under -race this also exercises the pruned chunked dispatch.

import (
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"probsyn/internal/engine"
	"probsyn/internal/metric"
	"probsyn/internal/pdata"
)

// denseReference builds the dense (unpruned, eagerly filled) DP table by
// flipping the CI escape hatch for the duration of one build.
func denseReference(t *testing.T, o Oracle, B int, pool *engine.Pool) *DPTable {
	t.Helper()
	t.Setenv(DenseDPEnv, "1")
	defer os.Unsetenv(DenseDPEnv)
	tab, err := RunDPPool(o, B, pool)
	if err != nil {
		t.Fatalf("dense reference: %v", err)
	}
	return tab
}

// splitCandidates is the exact number of split candidates a full DP over
// (n, B) reduces: level b at end e scans i in [b-1, e).
func splitCandidates(n, B int) int64 {
	var total int64
	for e := 0; e < n; e++ {
		top := B
		if e+1 < top {
			top = e + 1
		}
		for b := 1; b < top; b++ {
			total += int64(e - b + 1)
		}
	}
	return total
}

func checkStatsBalance(t *testing.T, tag string, tab *DPTable) {
	t.Helper()
	st := tab.Stats()
	if got, want := st.CandidatesScanned+st.CandidatesPruned, splitCandidates(tab.n, tab.bmax); got != want {
		t.Fatalf("%s: scanned %d + pruned %d = %d candidates, want %d",
			tag, st.CandidatesScanned, st.CandidatesPruned, got, want)
	}
	if st.CostEvals <= 0 {
		t.Fatalf("%s: no cost evaluations recorded", tag)
	}
}

// TestPrunedDPBitIdentical: pruned vs dense across all oracle families ×
// {Sum, Max} × workers {1, 2, NumCPU}, over all three data models.
func TestPrunedDPBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	const n, B = 96, 9
	for srcName, src := range parallelSources(rng, n) {
		for _, k := range []metric.Kind{metric.SSE, metric.SSEFixed, metric.SSRE,
			metric.SAE, metric.SARE, metric.MAE, metric.MARE} {
			o, err := NewOracle(src, k, metric.Params{C: 0.5})
			if err != nil {
				t.Fatalf("%s/%v: %v", srcName, k, err)
			}
			dense := denseReference(t, o, B, nil)
			if ds := dense.Stats(); ds.CandidatesPruned != 0 {
				t.Fatalf("%s/%v: dense reference pruned %d candidates", srcName, k, ds.CandidatesPruned)
			}
			checkStatsBalance(t, srcName+"/dense", dense)
			for _, w := range []int{1, 2, runtime.NumCPU()} {
				pruned, err := RunDPPool(o, B, finePool(w))
				if err != nil {
					t.Fatalf("%s/%v workers=%d: %v", srcName, k, w, err)
				}
				tablesIdentical(t, dense, pruned)
				checkStatsBalance(t, srcName+"/pruned", pruned)
			}
		}
	}
}

// TestPrunedDPAdversarial drives the two extremes: a single spike in a
// flat domain, where zero-cost prefixes let the incumbent stop fire
// almost immediately (pruning must engage, pinned via DPStats), and an
// exponentially growing ramp, where the argmin sits at the far right of
// every scan so the monotone stop almost never helps — both must stay
// bit-identical to the dense reference.
func TestPrunedDPAdversarial(t *testing.T) {
	const n, B = 256, 12
	spike := make([]float64, n)
	spike[n/2] = 1000 // one spike in a flat domain
	equal := make([]float64, n)
	for i := range equal {
		equal[i] = 1 // all-equal: every candidate ties, argmin must stay leftmost
	}
	ramp := make([]float64, n)
	for i := range ramp {
		ramp[i] = math.Pow(1.2, float64(i))
	}
	cases := []struct {
		name       string
		data       []float64
		minPrunedF float64 // lower bound on the pruned fraction, engaged case
	}{
		{"spike", spike, 0.5},
		{"equal", equal, 0.5},
		{"ramp", ramp, 0},
	}
	for _, tc := range cases {
		src := pdata.Deterministic(tc.data)
		for _, k := range []metric.Kind{metric.SSE, metric.SSRE, metric.MAE} {
			o, err := NewOracle(src, k, metric.Params{C: 0.5})
			if err != nil {
				t.Fatalf("%s/%v: %v", tc.name, k, err)
			}
			dense := denseReference(t, o, B, nil)
			for _, w := range []int{1, runtime.NumCPU()} {
				pruned, err := RunDPPool(o, B, finePool(w))
				if err != nil {
					t.Fatalf("%s/%v workers=%d: %v", tc.name, k, w, err)
				}
				tablesIdentical(t, dense, pruned)
				checkStatsBalance(t, tc.name, pruned)
			}
			// Pin engagement on the serial schedule (chunk-local incumbents
			// make parallel stats schedule-dependent).
			serial, err := RunDP(o, B)
			if err != nil {
				t.Fatal(err)
			}
			st := serial.Stats()
			frac := float64(st.CandidatesPruned) / float64(st.CandidatesScanned+st.CandidatesPruned)
			if frac < tc.minPrunedF {
				t.Fatalf("%s/%v: pruned fraction %.3f, want >= %.2f", tc.name, k, frac, tc.minPrunedF)
			}
			t.Logf("%s/%v: scanned %d, pruned %d (%.1f%%), cost evals %d",
				tc.name, k, st.CandidatesScanned, st.CandidatesPruned, 100*frac, st.CostEvals)
		}
	}
}

// TestPrunedDPLazyEvalsBounded: the bounded lazy fill prices each end's
// costs once, up to the furthest surviving candidate — never once per
// level like a naive lazy scan would (a Θ(B) blowup), and never past the
// dense Θ(n²/2) fill by more than the per-level seed re-pricings. On
// structured data the split scans themselves must be almost entirely
// pruned: that Θ(n²·B) term, not the fill, is the dense path's dominant
// cost.
func TestPrunedDPLazyEvalsBounded(t *testing.T) {
	const n, B = 512, 16
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(i / 64) // 8 flat segments
	}
	o := NewSSEValue(pdata.Deterministic(data))
	dense := denseReference(t, o, B, nil)
	pruned, err := RunDP(o, B)
	if err != nil {
		t.Fatal(err)
	}
	tablesIdentical(t, dense, pruned)
	dEvals, pEvals := dense.Stats().CostEvals, pruned.Stats().CostEvals
	if slack := int64(B * n); pEvals > dEvals+slack {
		t.Fatalf("lazy path made %d cost evals, dense fill %d — fill is not bounded (max slack %d)", pEvals, dEvals, slack)
	}
	st := pruned.Stats()
	frac := float64(st.CandidatesPruned) / float64(st.CandidatesScanned+st.CandidatesPruned)
	if frac < 0.9 {
		t.Fatalf("scan pruning fraction %.3f, want >= 0.90 on segmented data", frac)
	}
	t.Logf("cost evals: dense %d, pruned %d; scans pruned %.1f%%", dEvals, pEvals, 100*frac)
}

// TestOptimalErrorMatchesTableCost: the rolling two-row DP must agree
// with the full table to the bit, for every oracle family (including the
// SweepOracle fallback) and a budget clamped by the domain.
func TestOptimalErrorMatchesTableCost(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for srcName, src := range parallelSources(rng, 60) {
		for _, k := range []metric.Kind{metric.SSE, metric.SSEFixed, metric.SSRE,
			metric.SAE, metric.SARE, metric.MAE, metric.MARE} {
			o, err := NewOracle(src, k, metric.Params{C: 0.5})
			if err != nil {
				t.Fatalf("%s/%v: %v", srcName, k, err)
			}
			for _, B := range []int{1, 2, 7, 61} {
				tab, err := RunDP(o, B)
				if err != nil {
					t.Fatalf("%s/%v B=%d: %v", srcName, k, B, err)
				}
				got, err := OptimalError(o, B)
				if err != nil {
					t.Fatalf("%s/%v B=%d: %v", srcName, k, B, err)
				}
				if math.Float64bits(got) != math.Float64bits(tab.Cost(B)) {
					t.Fatalf("%s/%v B=%d: OptimalError %v, table cost %v (not bit-identical)",
						srcName, k, B, got, tab.Cost(B))
				}
			}
		}
	}
}

// TestLiveDPPrunedMatchesDenseFresh extends the live coverage: a mutated
// pruned live table must be bit-identical to a fresh *dense* build over
// the final data — guarding the resume-from-column interaction (stale
// back-pointer seeds, clamped monotone certificates).
func TestLiveDPPrunedMatchesDenseFresh(t *testing.T) {
	for _, k := range []metric.Kind{metric.SSE, metric.SAE, metric.MARE} {
		rng := rand.New(rand.NewSource(17))
		vp := liveRandVP(rng, 23)
		p := metric.Params{C: 0.5}
		mk := func(v *pdata.ValuePDF) (Oracle, error) { return NewOracle(v, k, p) }
		pool := engine.New(engine.Options{Workers: 3, Grain: 1})
		const B = 6
		live, err := NewLiveDP(vp, mk, B, pool)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		cur := vp.Clone()
		for step := 0; step < 8; step++ {
			if rng.Intn(2) == 0 {
				items := []pdata.ItemPDF{liveRandItem(rng), liveRandItem(rng)}
				for _, it := range items {
					cur.Items = append(cur.Items, it.Clone())
				}
				cur.N = len(cur.Items)
				if err := live.Append(items); err != nil {
					t.Fatalf("%v step %d append: %v", k, step, err)
				}
			} else {
				i := rng.Intn(cur.N)
				it := liveRandItem(rng)
				cur.Items[i] = it.Clone()
				if err := live.Update(i, it); err != nil {
					t.Fatalf("%v step %d update: %v", k, step, err)
				}
			}
			o, err := mk(cur)
			if err != nil {
				t.Fatal(err)
			}
			dense := denseReference(t, o, B, nil)
			tablesIdentical(t, dense, live.Table())
		}
	}
}
