package hist

import (
	"fmt"

	"probsyn/internal/engine"
	"probsyn/internal/shard"
)

// ShardedResult is a domain-sharded histogram build: contiguous shards
// of the domain solved by independent DPs, recombined by an exact
// budget-allocation DP over the per-shard frontiers. Pieces[s] is shard
// s's local histogram over its own [0, n_s) domain; Merged is the same
// bucketing re-anchored to global item coordinates.
type ShardedResult struct {
	Merged *Histogram
	Pieces []*Histogram
	// Bound is the additive suboptimality of Merged.Cost against the
	// unsharded optimum at the same budget. It is exact slack-free
	// accounting: any unsharded B-bucket histogram splits at the k-1
	// interior shard boundaries into a valid sharded solution of at most
	// B+k-1 buckets without cost increase (a sub-bucket re-optimizes its
	// representative over fewer items), so the sharded frontier at
	// budget B+k-1 already lower-bounds OPT and
	// Bound = max(0, A(B) - A(B+k-1)).
	Bound float64
	// Stats is the DP work summed over all shard tables (see DPStats).
	Stats DPStats
}

// BuildSharded builds one histogram per shard concurrently (conc bounds
// the fan; each shard's DP additionally parallelizes over pool) and
// merges them under the global bucket budget B. The caller supplies one
// bucket-cost oracle per shard — each over its shard's subdomain only —
// and the global boundaries bounds (len(oracles)+1 entries, as returned
// by shard.Bounds). Shard counts need not be powers of two and shards
// need not be equal; every shard must get at least one bucket, so
// B >= len(oracles).
func BuildSharded(oracles []Oracle, bounds []int, B int, pool *engine.Pool, conc int) (*ShardedResult, error) {
	k := len(oracles)
	if k < 2 {
		return nil, fmt.Errorf("hist: sharded build needs k >= 2 shards, got %d", k)
	}
	if len(bounds) != k+1 {
		return nil, fmt.Errorf("hist: %d boundaries for %d shards, want %d", len(bounds), k, k+1)
	}
	if B < k {
		return nil, fmt.Errorf("hist: sharded build needs budget >= k=%d (one bucket per shard), got %d", k, B)
	}
	comb := oracles[0].Combine()
	for s, o := range oracles {
		if got := o.N(); got != bounds[s+1]-bounds[s] {
			return nil, fmt.Errorf("hist: shard %d oracle spans %d items, boundaries say %d", s, got, bounds[s+1]-bounds[s])
		}
		if o.Combine() != comb {
			return nil, fmt.Errorf("hist: shard %d oracle disagrees on the aggregation rule", s)
		}
	}
	// Shard s can usefully hold up to min(B, n_s) buckets: B because at
	// the bound's reference total B+k-1 the other shards keep one bucket
	// each, n_s because buckets cannot outnumber items.
	caps := make([]int, k)
	for s := range caps {
		caps[s] = min(B, oracles[s].N())
	}
	tables := make([]*DPTable, k)
	err := engine.Fan(k, conc, func(s int) error {
		t, err := RunDPPool(oracles[s], caps[s], pool)
		if err != nil {
			return fmt.Errorf("hist: shard %d: %w", s, err)
		}
		tables[s] = t
		return nil
	})
	if err != nil {
		return nil, err
	}
	var stats DPStats
	for _, t := range tables {
		stats.Add(t.Stats())
	}
	alloc, err := shard.Allocate(B+k-1, caps, comb == Sum, func(s, b int) float64 { return tables[s].Cost(b) })
	if err != nil {
		return nil, err
	}
	split := alloc.Split(B)
	pieces := make([]*Histogram, k)
	for s, b := range split {
		h, err := tables[s].Histogram(b)
		if err != nil {
			return nil, fmt.Errorf("hist: shard %d at %d buckets: %w", s, b, err)
		}
		pieces[s] = h
	}
	merged := &Histogram{N: bounds[k], Cost: alloc.Cost(B)}
	for s, h := range pieces {
		off := bounds[s]
		for _, b := range h.Buckets {
			merged.Buckets = append(merged.Buckets, Bucket{
				Start: b.Start + off, End: b.End + off, Rep: b.Rep, Cost: b.Cost,
			})
		}
	}
	if err := merged.Validate(); err != nil {
		return nil, err
	}
	bound := alloc.Cost(B) - alloc.Cost(B+k-1)
	if bound < 0 {
		bound = 0
	}
	return &ShardedResult{Merged: merged, Pieces: pieces, Bound: bound, Stats: stats}, nil
}
