package hist

import (
	"fmt"

	"probsyn/internal/metric"
	"probsyn/internal/minimax"
	"probsyn/internal/numeric"
	"probsyn/internal/pdata"
)

// MaxAbs is the oracle for the maximum-error metrics MAE and MARE (§3.6,
// Theorem 6): the bucket cost is max_{i∈b} f_i(b̂) where
// f_i(t) = Σ_j w_{i,j}|v_j − t| is each item's expected (weighted) absolute
// error — convex piecewise linear with breakpoints at V. The upper envelope
// of convex functions is convex, so:
//
//  1. a binary search over V brackets the minimizer between consecutive
//     frequency values (O(n_b·log²|V|) evaluations), and
//  2. within a bracket every f_i is linear, so the min-max is a
//     minimize-max-of-lines problem solved exactly by internal/minimax
//     (O(n_b·log n_b)) — the paper's "divide-and-conquer over convex hulls".
//
// Unlike the cumulative metrics the optimal b̂ may fall strictly between
// two values of V.
type MaxAbs struct {
	kind metric.Kind
	n    int
	vs   pdata.ValueSet
	// itemW[i*k+j] = Σ_{j'<=j} w_{i,j'}; itemS likewise for w·v.
	itemW, itemS []float64
	totW, totS   []float64
}

// NewMaxAbs builds the oracle from a dense pmf table; kind must be
// metric.MAE or metric.MARE.
func NewMaxAbs(tab *pdata.PMFTable, kind metric.Kind, p metric.Params) (*MaxAbs, error) {
	if kind != metric.MAE && kind != metric.MARE {
		return nil, fmt.Errorf("hist: MaxAbs supports MAE/MARE, got %v", kind)
	}
	n, k := tab.N(), tab.VS.Len()
	o := &MaxAbs{
		kind:  kind,
		n:     n,
		vs:    tab.VS,
		itemW: make([]float64, n*k),
		itemS: make([]float64, n*k),
		totW:  make([]float64, n),
		totS:  make([]float64, n),
	}
	mw := make([]float64, k)
	for j := 0; j < k; j++ {
		mw[j] = kind.Weight(tab.VS.Values[j], p)
	}
	for i := 0; i < n; i++ {
		var cw, cs float64
		for j := 0; j < k; j++ {
			w := tab.P[i][j] * mw[j]
			cw += w
			cs += w * tab.VS.Values[j]
			o.itemW[i*k+j] = cw
			o.itemS[i*k+j] = cs
		}
		o.totW[i], o.totS[i] = cw, cs
	}
	return o, nil
}

// N returns the domain size.
func (o *MaxAbs) N() int { return o.n }

// Combine returns Max.
func (o *MaxAbs) Combine() Combine { return Max }

// Kind returns the metric (MAE or MARE) the oracle prices.
func (o *MaxAbs) Kind() metric.Kind { return o.kind }

// lineFor returns item i's error as a line a·t+b valid on the segment
// [V[l], V[l+1]].
func (o *MaxAbs) lineFor(i, l int) minimax.Line {
	k := o.vs.Len()
	return minimax.Line{
		A: 2*o.itemW[i*k+l] - o.totW[i],
		B: o.totS[i] - 2*o.itemS[i*k+l],
	}
}

// itemErrAt evaluates f_i at V[l].
func (o *MaxAbs) itemErrAt(i, l int) float64 {
	ln := o.lineFor(i, l)
	return ln.A*o.vs.Values[l] + ln.B
}

// CostAt prices bucket [s, e] with the representative pinned to V[l].
func (o *MaxAbs) CostAt(l, s, e int) float64 {
	worst := 0.0
	for i := s; i <= e; i++ {
		if v := o.itemErrAt(i, l); v > worst {
			worst = v
		}
	}
	return worst
}

// Cost prices bucket [s, e]; the representative may be fractional.
func (o *MaxAbs) Cost(s, e int) (float64, float64) {
	k := o.vs.Len()
	lStar, best := numeric.MinConvexGrid(0, k-1, func(l int) float64 {
		return o.CostAt(l, s, e)
	})
	bestRep := o.vs.Values[lStar]
	// Refine into the two segments adjacent to the grid minimizer: the
	// continuous minimizer of a convex envelope lies within one step of
	// the leftmost grid argmin.
	lines := make([]minimax.Line, 0, e-s+1)
	for _, seg := range [2]int{lStar - 1, lStar} {
		if seg < 0 || seg+1 >= k {
			continue
		}
		lines = lines[:0]
		for i := s; i <= e; i++ {
			lines = append(lines, o.lineFor(i, seg))
		}
		x, y := minimax.MinimizeMax(lines, o.vs.Values[seg], o.vs.Values[seg+1])
		if y < best {
			best, bestRep = y, x
		}
	}
	if best < 0 {
		best = 0
	}
	return best, bestRep
}
