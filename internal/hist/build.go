package hist

import (
	"fmt"

	"probsyn/internal/metric"
	"probsyn/internal/pdata"
)

// NewOracle wires a probabilistic source to the bucket-cost oracle for the
// requested metric, routing each model to the algorithm the paper gives
// for it:
//
//   - SSE: value pdf uses the independent-item decomposition; tuple pdf
//     (and the basic model, as its special case) uses the exact
//     correlated-bucket oracle.
//   - SSEFixed: per-item moments, any model.
//   - SSRE, SAE, SARE, MAE, MARE: per-item-decomposable costs; tuple pdf
//     and basic inputs are converted to the induced value pdf first (§2.1).
func NewOracle(src pdata.Source, k metric.Kind, p metric.Params) (Oracle, error) {
	switch k {
	case metric.SSE:
		switch s := src.(type) {
		case *pdata.ValuePDF:
			return NewSSEValue(s), nil
		case *pdata.TuplePDF:
			return NewSSETuple(s), nil
		case *pdata.Basic:
			return NewSSETuple(s.TuplePDF()), nil
		default:
			return nil, fmt.Errorf("hist: SSE oracle: unsupported source %T", src)
		}
	case metric.SSEFixed:
		return NewSSEFixed(src), nil
	case metric.SSRE:
		return NewSSRE(pdata.AsValuePDF(src), p), nil
	case metric.SAE, metric.SARE:
		tab, err := pmfTable(src)
		if err != nil {
			return nil, err
		}
		return NewWeightedAbs(tab, k, p)
	case metric.MAE, metric.MARE:
		tab, err := pmfTable(src)
		if err != nil {
			return nil, err
		}
		return NewMaxAbs(tab, k, p)
	default:
		return nil, fmt.Errorf("hist: no oracle for metric %v", k)
	}
}

func pmfTable(src pdata.Source) (*pdata.PMFTable, error) {
	vp := pdata.AsValuePDF(src)
	return pdata.NewPMFTable(vp, pdata.Support(vp))
}

// Build is the one-call entry point: construct the metric's oracle and run
// the exact DP for a B-bucket histogram.
func Build(src pdata.Source, k metric.Kind, p metric.Params, B int) (*Histogram, error) {
	o, err := NewOracle(src, k, p)
	if err != nil {
		return nil, err
	}
	return Optimal(o, B)
}
