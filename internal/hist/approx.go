package hist

import (
	"fmt"
	"math"

	"probsyn/internal/engine"
)

// Approximate computes a (1+eps)-approximate B-bucket histogram for
// cumulative metrics, in the style of Guha, Koudas & Shim (§3.5,
// Theorem 5). Instead of minimizing over every split point i at every DP
// cell, each DP level is compressed to breakpoints where the level's error
// curve grows by a (1+delta) factor, delta = eps/(2B); within a value
// class only the right-most split point is kept (bucket costs are monotone
// under extension, so later split points dominate earlier equal-error
// ones). Each level then costs O(n·q) oracle calls with q the number of
// breakpoints — O((B/eps)·log(errRange)) — instead of O(n²).
//
// The returned histogram's cost is at most (1+delta)^B ≤ e^(eps/2) ≤
// (1+eps) times optimal for eps ≤ 1.
func Approximate(o Oracle, B int, eps float64) (*Histogram, error) {
	return ApproximateWorkers(o, B, eps, 1)
}

// ApproximateWorkers is Approximate with each DP level's end-point loop
// spread across `workers` goroutines (workers <= 0 means one per CPU). It
// is shorthand for ApproximatePool with a default-grain pool.
func ApproximateWorkers(o Oracle, B int, eps float64, workers int) (*Histogram, error) {
	return ApproximatePool(o, B, eps, engine.New(engine.Options{Workers: workers}))
}

// ApproximatePool is Approximate with each DP level's end-point loop
// dispatched through the engine pool (nil means serial). Levels are
// strictly synchronized — level b reads only the completed level b-1 and
// its breakpoint compression — and every cell is computed by the same
// sequence of floating-point operations as the serial run, so the result
// is bit-identical to a single-worker run. Oracle.Cost must be safe for
// concurrent calls.
func ApproximatePool(o Oracle, B int, eps float64, pool *engine.Pool) (*Histogram, error) {
	if o.Combine() != Sum {
		return nil, fmt.Errorf("hist: Approximate requires a cumulative metric")
	}
	n := o.N()
	if n <= 0 {
		return nil, fmt.Errorf("hist: empty domain")
	}
	if B <= 0 {
		return nil, fmt.Errorf("hist: bucket budget %d, want >= 1", B)
	}
	if eps <= 0 {
		return nil, fmt.Errorf("hist: eps %v, want > 0", eps)
	}
	if B > n {
		B = n
	}
	if pool == nil {
		pool = engine.Serial()
	}
	delta := eps / (2 * float64(B))

	apx := make([][]float64, B)
	choice := make([][]int32, B)
	for b := range apx {
		apx[b] = make([]float64, n)
		choice[b] = make([]int32, n)
	}
	levelEnds := func(b int, bps []int, lo, hi int) {
		for j := lo; j < hi; j++ {
			if j < b {
				// not enough items for b+1 buckets; keep a consistent value
				apx[b][j] = apx[b-1][j]
				if j > 0 {
					choice[b][j] = int32(j - 1)
				} else {
					choice[b][j] = -1
				}
				continue
			}
			best := math.Inf(1)
			bestI := int32(b - 1)
			for _, i := range bps {
				if i >= j {
					break
				}
				c, _ := o.Cost(i+1, j)
				if v := apx[b-1][i] + c; v < best {
					best, bestI = v, int32(i)
				}
			}
			// Always consider the immediately preceding split, which keeps
			// the recurrence well-defined even if compression dropped it.
			if i := j - 1; i >= b-1 {
				c, _ := o.Cost(j, j)
				if v := apx[b-1][i] + c; v < best {
					best, bestI = v, int32(i)
				}
			}
			apx[b][j] = best
			choice[b][j] = bestI
		}
	}
	for j := 0; j < n; j++ {
		apx[0][j], _ = o.Cost(0, j)
		choice[0][j] = -1
	}
	for b := 1; b < B; b++ {
		bps := compressBreakpoints(apx[b-1], b-1, delta)
		pool.MapChunks(0, n, n, func(_, lo, hi int) { levelEnds(b, bps, lo, hi) })
	}

	starts := make([]int, 0, B)
	b, j := B-1, n-1
	for b >= 0 {
		i := int(choice[b][j])
		starts = append(starts, i+1)
		j, b = i, b-1
	}
	for l, r := 0, len(starts)-1; l < r; l, r = l+1, r-1 {
		starts[l], starts[r] = starts[r], starts[l]
	}
	// Walking back can revisit split 0 when prefixes are shorter than the
	// level index; dedupe defensively.
	starts = dedupeAscending(starts)
	return FromBoundaries(o, starts)
}

// compressBreakpoints returns split positions i >= minIdx keeping, within
// each run of values in the same (1+delta) class, only the last position.
func compressBreakpoints(vals []float64, minIdx int, delta float64) []int {
	var bps []int
	anchor := math.Inf(-1)
	for j := minIdx; j < len(vals); j++ {
		v := vals[j]
		newClass := false
		switch {
		case math.IsInf(anchor, -1):
			newClass = true
		case anchor == 0:
			newClass = v > 0
		default:
			newClass = v > anchor*(1+delta)
		}
		if newClass {
			bps = append(bps, j)
			anchor = v
		} else {
			bps[len(bps)-1] = j
		}
	}
	return bps
}

func dedupeAscending(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x > out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
