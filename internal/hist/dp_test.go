package hist_test

import (
	"math"
	"math/rand"
	"testing"

	"probsyn/internal/hist"
	"probsyn/internal/metric"
	"probsyn/internal/pdata"
	"probsyn/internal/ptest"
)

// bruteForceOptimal enumerates every partition of [0,n) into exactly B
// contiguous buckets and returns the minimal combined cost.
func bruteForceOptimal(o hist.Oracle, B int) float64 {
	n := o.N()
	if B > n {
		B = n
	}
	best := math.Inf(1)
	var rec func(start, left int, acc float64)
	rec = func(start, left int, acc float64) {
		if left == 1 {
			c, _ := o.Cost(start, n-1)
			total := acc + c
			if o.Combine() == hist.Max {
				total = math.Max(acc, c)
			}
			if total < best {
				best = total
			}
			return
		}
		for end := start; end <= n-left; end++ {
			c, _ := o.Cost(start, end)
			next := acc + c
			if o.Combine() == hist.Max {
				next = math.Max(acc, c)
			}
			if next < best { // prune: costs are non-negative
				rec(end+1, left-1, next)
			}
		}
	}
	rec(0, B, 0)
	return best
}

func allOracles(t *testing.T, src pdata.Source) map[string]hist.Oracle {
	t.Helper()
	p := metric.Params{C: 0.5}
	out := make(map[string]hist.Oracle)
	for _, k := range []metric.Kind{metric.SSE, metric.SSEFixed, metric.SSRE,
		metric.SAE, metric.SARE, metric.MAE, metric.MARE} {
		o, err := hist.NewOracle(src, k, p)
		if err != nil {
			t.Fatalf("NewOracle(%v): %v", k, err)
		}
		out[k.String()] = o
	}
	return out
}

func TestOptimalMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 8; trial++ {
		for _, src := range []pdata.Source{
			ptest.RandomValuePDF(rng, 7, 3),
			ptest.RandomTuplePDF(rng, 7, 5, 3),
			ptest.RandomBasic(rng, 7, 6),
		} {
			for name, o := range allOracles(t, src) {
				for B := 1; B <= 4; B++ {
					h, err := hist.Optimal(o, B)
					if err != nil {
						t.Fatalf("%s B=%d: %v", name, B, err)
					}
					if err := h.Validate(); err != nil {
						t.Fatalf("%s B=%d: invalid histogram: %v", name, B, err)
					}
					if got := h.B(); got != B {
						t.Fatalf("%s B=%d: histogram has %d buckets", name, B, got)
					}
					want := bruteForceOptimal(o, B)
					if math.Abs(h.Cost-want) > 1e-8*(1+want) {
						t.Fatalf("%s trial %d B=%d: DP cost %v, brute force %v",
							name, trial, B, h.Cost, want)
					}
				}
			}
		}
	}
}

func TestOptimalCostMonotoneInB(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	src := ptest.RandomTuplePDF(rng, 10, 8, 3)
	for name, o := range allOracles(t, src) {
		prev := math.Inf(1)
		for B := 1; B <= 10; B++ {
			h, err := hist.Optimal(o, B)
			if err != nil {
				t.Fatal(err)
			}
			if h.Cost > prev+1e-9 {
				t.Fatalf("%s: cost increased from %v to %v at B=%d", name, prev, h.Cost, B)
			}
			prev = h.Cost
		}
	}
}

func TestOptimalBAtLeastN(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	src := ptest.RandomValuePDF(rng, 5, 2)
	o := hist.NewSSEValue(src)
	for _, B := range []int{5, 9} {
		h, err := hist.Optimal(o, B)
		if err != nil {
			t.Fatal(err)
		}
		if h.B() != 5 {
			t.Fatalf("B=%d: got %d buckets, want 5 (one per item)", B, h.B())
		}
		for k, b := range h.Buckets {
			if b.Start != k || b.End != k {
				t.Fatalf("bucket %d = [%d,%d], want singleton", k, b.Start, b.End)
			}
		}
	}
}

func TestOptimalArgumentErrors(t *testing.T) {
	src := pdata.Deterministic([]float64{1, 2})
	o := hist.NewSSEValue(src)
	if _, err := hist.Optimal(o, 0); err == nil {
		t.Error("B=0 accepted")
	}
	if _, err := hist.Optimal(o, -3); err == nil {
		t.Error("negative B accepted")
	}
}

// On deterministic data the probabilistic machinery must reduce exactly to
// the classic V-optimal histogram: zero error with B >= number of distinct
// runs.
func TestDeterministicReduction(t *testing.T) {
	freqs := []float64{5, 5, 5, 1, 1, 9, 9, 9}
	o := hist.NewSSEValue(pdata.Deterministic(freqs))
	h, err := hist.Optimal(o, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.Cost > 1e-12 {
		t.Fatalf("V-optimal on 3-run data with B=3: cost %v, want 0", h.Cost)
	}
	wantStarts := []int{0, 3, 5}
	for k, b := range h.Buckets {
		if b.Start != wantStarts[k] {
			t.Fatalf("bucket %d starts at %d, want %d", k, b.Start, wantStarts[k])
		}
	}
	if h.Buckets[0].Rep != 5 || h.Buckets[1].Rep != 1 || h.Buckets[2].Rep != 9 {
		t.Fatalf("representatives wrong: %+v", h.Buckets)
	}
}

func TestHistogramEstimateAndRangeSum(t *testing.T) {
	h := &hist.Histogram{N: 6, Buckets: []hist.Bucket{
		{Start: 0, End: 1, Rep: 2},
		{Start: 2, End: 4, Rep: 5},
		{Start: 5, End: 5, Rep: 1},
	}}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	wants := []float64{2, 2, 5, 5, 5, 1}
	for i, w := range wants {
		if got := h.Estimate(i); got != w {
			t.Errorf("Estimate(%d) = %v, want %v", i, got, w)
		}
	}
	if got := h.RangeSum(0, 5); got != 2*2+3*5+1 {
		t.Errorf("RangeSum full = %v, want 20", got)
	}
	if got := h.RangeSum(1, 2); got != 2+5 {
		t.Errorf("RangeSum(1,2) = %v, want 7", got)
	}
	if got := h.RangeSum(-3, 99); got != 20 {
		t.Errorf("RangeSum clamped = %v, want 20", got)
	}
	if got := h.RangeSum(4, 2); got != 0 {
		t.Errorf("RangeSum empty range = %v, want 0", got)
	}
	// Out-of-domain estimates clamp explicitly to the edge buckets — the
	// documented library behavior (the server rejects such queries before
	// they reach the synopsis).
	if got := h.Estimate(-7); got != 2 {
		t.Errorf("Estimate(-7) = %v, want bucket 0's rep 2", got)
	}
	if got := h.Estimate(99); got != 1 {
		t.Errorf("Estimate(99) = %v, want last bucket's rep 1", got)
	}
}

func TestHistogramValidateRejectsBadShapes(t *testing.T) {
	cases := []hist.Histogram{
		{N: 3, Buckets: nil},
		{N: 3, Buckets: []hist.Bucket{{Start: 1, End: 2}}},                     // gap at front
		{N: 3, Buckets: []hist.Bucket{{Start: 0, End: 0}, {Start: 2, End: 2}}}, // hole
		{N: 3, Buckets: []hist.Bucket{{Start: 0, End: 1}}},                     // short
		{N: 3, Buckets: []hist.Bucket{{Start: 0, End: 2}, {Start: 2, End: 2}}}, // overlap
		{N: 0, Buckets: []hist.Bucket{{Start: 0, End: 0}}},                     // empty domain
		{N: 3, Buckets: []hist.Bucket{{Start: 0, End: 2}, {Start: 3, End: 2}}}, // inverted
	}
	for i, h := range cases {
		if err := h.Validate(); err == nil {
			t.Errorf("case %d: invalid histogram accepted", i)
		}
	}
}

func TestFromBoundaries(t *testing.T) {
	src := pdata.Deterministic([]float64{1, 2, 3, 4})
	o := hist.NewSSEValue(src)
	h, err := hist.FromBoundaries(o, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if h.B() != 2 || h.Buckets[0].End != 1 || h.Buckets[1].End != 3 {
		t.Fatalf("unexpected buckets %+v", h.Buckets)
	}
	if _, err := hist.FromBoundaries(o, []int{1}); err == nil {
		t.Error("boundaries not starting at 0 accepted")
	}
	if _, err := hist.FromBoundaries(o, nil); err == nil {
		t.Error("empty boundaries accepted")
	}
}

func TestBucketWidth(t *testing.T) {
	if w := (hist.Bucket{Start: 2, End: 5}).Width(); w != 4 {
		t.Fatalf("Width = %d, want 4", w)
	}
}

// Boundaries() of an Optimal histogram must reproduce the same histogram
// when fed back through FromBoundaries.
func TestBoundariesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	src := ptest.RandomValuePDF(rng, 9, 3)
	o := hist.NewSSEValue(src)
	h, err := hist.Optimal(o, 4)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := hist.FromBoundaries(o, h.Boundaries())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.Cost-h2.Cost) > 1e-12 {
		t.Fatalf("roundtrip cost %v != %v", h2.Cost, h.Cost)
	}
}
