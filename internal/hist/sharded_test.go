package hist_test

// Sharded histogram builds: per-shard DPs recombined by the exact
// budget-allocation DP must cost at least the unsharded optimum, at
// most optimum + Bound, and be bit-identical at any fan concurrency.

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"probsyn/internal/engine"
	"probsyn/internal/hist"
	"probsyn/internal/metric"
	"probsyn/internal/pdata"
	"probsyn/internal/ptest"
	"probsyn/internal/shard"
)

func shardedOracles(t *testing.T, vp *pdata.ValuePDF, kind metric.Kind, p metric.Params, k int) ([]hist.Oracle, []int) {
	t.Helper()
	bounds := shard.Bounds(vp.N, k)
	oracles := make([]hist.Oracle, k)
	for s := 0; s < k; s++ {
		svp := &pdata.ValuePDF{N: bounds[s+1] - bounds[s], Items: vp.Items[bounds[s]:bounds[s+1]]}
		o, err := hist.NewOracle(svp, kind, p)
		if err != nil {
			t.Fatal(err)
		}
		oracles[s] = o
	}
	return oracles, bounds
}

func TestShardedHistWithinBoundOfOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	vp := ptest.RandomValuePDF(rng, 26, 3)
	p := metric.Params{C: 0.5}
	for _, kind := range []metric.Kind{metric.SSE, metric.SAE, metric.MAE} {
		full, err := hist.NewOracle(vp, kind, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{2, 3, 4} {
			for _, B := range []int{k, 6, 12} {
				oracles, bounds := shardedOracles(t, vp, kind, p, k)
				res, err := hist.BuildSharded(oracles, bounds, B, nil, 2)
				if err != nil {
					t.Fatalf("%v k=%d B=%d: %v", kind, k, B, err)
				}
				if err := res.Merged.Validate(); err != nil {
					t.Fatalf("%v k=%d B=%d: merged invalid: %v", kind, k, B, err)
				}
				if got := res.Merged.B(); got > B {
					t.Fatalf("%v k=%d B=%d: merged has %d buckets", kind, k, B, got)
				}
				opt, err := hist.Optimal(full, B)
				if err != nil {
					t.Fatal(err)
				}
				tol := 1e-9 * math.Max(1, opt.Cost)
				if res.Merged.Cost < opt.Cost-tol {
					t.Fatalf("%v k=%d B=%d: sharded cost %v below optimum %v", kind, k, B, res.Merged.Cost, opt.Cost)
				}
				if res.Merged.Cost > opt.Cost+res.Bound+tol {
					t.Fatalf("%v k=%d B=%d: sharded cost %v exceeds optimum %v + bound %v",
						kind, k, B, res.Merged.Cost, opt.Cost, res.Bound)
				}
				// The reported cost is the true combined cost of the
				// merged bucketing (up to summation association).
				var truth float64
				if full.Combine() == hist.Sum {
					for _, b := range res.Merged.Buckets {
						c, _ := full.Cost(b.Start, b.End)
						truth += c
					}
				} else {
					for _, b := range res.Merged.Buckets {
						if c, _ := full.Cost(b.Start, b.End); c > truth {
							truth = c
						}
					}
				}
				if math.Abs(truth-res.Merged.Cost) > 1e-9*math.Max(1, truth) {
					t.Fatalf("%v k=%d B=%d: merged cost %v but direct evaluation %v",
						kind, k, B, res.Merged.Cost, truth)
				}
			}
		}
	}
}

func TestShardedHistDeterministic(t *testing.T) {
	vp := ptest.RandomValuePDF(rand.New(rand.NewSource(67)), 40, 3)
	p := metric.Params{}
	oracles, bounds := shardedOracles(t, vp, metric.SSE, p, 4)
	base, err := hist.BuildSharded(oracles, bounds, 9, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, conc := range []int{2, 4} {
		for _, workers := range []int{1, runtime.NumCPU()} {
			pool := engine.New(engine.Options{Workers: workers, Grain: 1})
			res, err := hist.BuildSharded(oracles, bounds, 9, pool, conc)
			if err != nil {
				t.Fatal(err)
			}
			if res.Merged.Cost != base.Merged.Cost || res.Bound != base.Bound {
				t.Fatalf("conc=%d workers=%d: (cost, bound) = (%v, %v), want (%v, %v)",
					conc, workers, res.Merged.Cost, res.Bound, base.Merged.Cost, base.Bound)
			}
			if len(res.Merged.Buckets) != len(base.Merged.Buckets) {
				t.Fatalf("conc=%d: %d buckets, want %d", conc, len(res.Merged.Buckets), len(base.Merged.Buckets))
			}
			for i, b := range res.Merged.Buckets {
				if b != base.Merged.Buckets[i] {
					t.Fatalf("conc=%d: bucket %d = %+v, want %+v", conc, i, b, base.Merged.Buckets[i])
				}
			}
		}
	}
}

func TestShardedHistArgumentErrors(t *testing.T) {
	vp := ptest.RandomValuePDF(rand.New(rand.NewSource(5)), 12, 2)
	oracles, bounds := shardedOracles(t, vp, metric.SSE, metric.Params{}, 3)
	if _, err := hist.BuildSharded(oracles, bounds, 2, nil, 1); err == nil {
		t.Fatal("B < k accepted")
	}
	if _, err := hist.BuildSharded(oracles[:1], bounds[:2], 4, nil, 1); err == nil {
		t.Fatal("single shard accepted")
	}
	if _, err := hist.BuildSharded(oracles, bounds[:3], 4, nil, 1); err == nil {
		t.Fatal("mismatched boundary count accepted")
	}
	bad := append([]int(nil), bounds...)
	bad[1]++
	if _, err := hist.BuildSharded(oracles, bad, 4, nil, 1); err == nil {
		t.Fatal("oracle/boundary span mismatch accepted")
	}
}
