package hist

import (
	"math/rand"
	"reflect"
	"testing"

	"probsyn/internal/engine"
	"probsyn/internal/metric"
	"probsyn/internal/pdata"
)

func liveRandItem(rng *rand.Rand) pdata.ItemPDF {
	k := 1 + rng.Intn(3)
	entries := make([]pdata.FreqProb, 0, k)
	remaining := 1.0
	for j := 0; j < k; j++ {
		p := float64(1+rng.Intn(4)) * 0.125
		if p > remaining {
			break
		}
		remaining -= p
		entries = append(entries, pdata.FreqProb{Freq: float64(rng.Intn(6)), Prob: p})
	}
	return pdata.ItemPDF{Entries: entries}
}

func liveRandVP(rng *rand.Rand, n int) *pdata.ValuePDF {
	vp := &pdata.ValuePDF{N: n, Items: make([]pdata.ItemPDF, n)}
	for i := range vp.Items {
		vp.Items[i] = liveRandItem(rng)
	}
	return vp
}

// TestLiveDPMatchesFresh drives a live DP table through a random mutation
// sequence and checks, after every mutation, that the maintained table is
// deep-equal to a from-scratch DP over the mutated data — costs AND
// back-pointers, so extraction at any budget is forced identical too.
func TestLiveDPMatchesFresh(t *testing.T) {
	for _, k := range []metric.Kind{metric.SSE, metric.SAE, metric.MARE} {
		for _, workers := range []int{1, 3} {
			rng := rand.New(rand.NewSource(7))
			vp := liveRandVP(rng, 19)
			p := metric.Params{C: 0.5}
			mk := func(v *pdata.ValuePDF) (Oracle, error) { return NewOracle(v, k, p) }
			pool := engine.New(engine.Options{Workers: workers, Grain: 1})
			const B = 5
			live, err := NewLiveDP(vp, mk, B, pool)
			if err != nil {
				t.Fatalf("%v: %v", k, err)
			}
			cur := vp.Clone()
			for step := 0; step < 10; step++ {
				if rng.Intn(2) == 0 {
					items := []pdata.ItemPDF{liveRandItem(rng), liveRandItem(rng)}
					for _, it := range items {
						cur.Items = append(cur.Items, it.Clone())
					}
					cur.N = len(cur.Items)
					if err := live.Append(items); err != nil {
						t.Fatalf("%v step %d append: %v", k, step, err)
					}
				} else {
					i := rng.Intn(cur.N)
					it := liveRandItem(rng)
					cur.Items[i] = it.Clone()
					if err := live.Update(i, it); err != nil {
						t.Fatalf("%v step %d update: %v", k, step, err)
					}
				}
				o, err := mk(cur)
				if err != nil {
					t.Fatal(err)
				}
				fresh, err := RunDPPool(o, B, pool)
				if err != nil {
					t.Fatal(err)
				}
				got := live.Table()
				if got.Bmax() != fresh.Bmax() || got.n != fresh.n {
					t.Fatalf("%v step %d: shape (%d,%d) vs fresh (%d,%d)", k, step, got.Bmax(), got.n, fresh.Bmax(), fresh.n)
				}
				if !reflect.DeepEqual(got.opt, fresh.opt) {
					t.Fatalf("%v step %d: opt tables diverge", k, step)
				}
				if !reflect.DeepEqual(got.choice, fresh.choice) {
					t.Fatalf("%v step %d: choice tables diverge", k, step)
				}
				for b := 1; b <= got.Bmax(); b++ {
					gh, err := got.Histogram(b)
					if err != nil {
						t.Fatal(err)
					}
					fh, err := fresh.Histogram(b)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(gh, fh) {
						t.Fatalf("%v step %d: budget-%d histograms diverge", k, step, b)
					}
				}
			}
		}
	}
}

// TestLiveDPValidation covers the mutation guard rails.
func TestLiveDPValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vp := liveRandVP(rng, 8)
	mk := func(v *pdata.ValuePDF) (Oracle, error) { return NewOracle(v, metric.SSE, metric.Params{}) }
	live, err := NewLiveDP(vp, mk, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := live.Update(8, pdata.ItemPDF{}); err == nil {
		t.Fatal("out-of-domain update accepted")
	}
	bad := pdata.ItemPDF{Entries: []pdata.FreqProb{{Freq: 1, Prob: 1.5}}}
	if err := live.Update(0, bad); err == nil {
		t.Fatal("invalid pdf accepted by Update")
	}
	if err := live.Append([]pdata.ItemPDF{bad}); err == nil {
		t.Fatal("invalid pdf accepted by Append")
	}
	if err := live.Append(nil); err != nil {
		t.Fatalf("empty append: %v", err)
	}
	// A rejected mutation must leave the table untouched.
	if got := live.Domain(); got != 8 {
		t.Fatalf("domain %d after rejected mutations, want 8", got)
	}
}

// TestLiveDPBudgetUnclamps: a budget clamped by a small initial domain
// grows with the domain, exactly as a fresh DP over the grown data would.
func TestLiveDPBudgetUnclamps(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vp := liveRandVP(rng, 3)
	mk := func(v *pdata.ValuePDF) (Oracle, error) { return NewOracle(v, metric.SSE, metric.Params{}) }
	live, err := NewLiveDP(vp, mk, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := live.Table().Bmax(); got != 3 {
		t.Fatalf("initial Bmax %d, want 3 (clamped)", got)
	}
	cur := vp.Clone()
	items := []pdata.ItemPDF{liveRandItem(rng), liveRandItem(rng), liveRandItem(rng), liveRandItem(rng)}
	for _, it := range items {
		cur.Items = append(cur.Items, it.Clone())
	}
	cur.N = len(cur.Items)
	if err := live.Append(items); err != nil {
		t.Fatal(err)
	}
	if got := live.Table().Bmax(); got != 6 {
		t.Fatalf("post-append Bmax %d, want 6", got)
	}
	o, err := mk(cur)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := RunDP(o, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live.Table().opt, fresh.opt) {
		t.Fatal("unclamped tables diverge")
	}
}
