package hist_test

import (
	"math"
	"math/rand"
	"testing"

	"probsyn/internal/hist"
	"probsyn/internal/pdata"
	"probsyn/internal/ptest"
)

func TestEquiDepthBalancesExpectedMass(t *testing.T) {
	// Uniform expected mass: equi-depth must cut into equal-width buckets.
	freqs := make([]float64, 12)
	for i := range freqs {
		freqs[i] = 2
	}
	src := pdata.Deterministic(freqs)
	o := hist.NewSSEValue(src)
	h, err := hist.EquiDepth(src.ExpectedFreqs(), o, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.B() != 4 {
		t.Fatalf("buckets = %d, want 4", h.B())
	}
	for _, b := range h.Buckets {
		if b.Width() != 3 {
			t.Fatalf("bucket %+v width %d, want 3", b, b.Width())
		}
	}
}

func TestEquiDepthSkewedMass(t *testing.T) {
	// One heavy item: its bucket should be narrow.
	freqs := []float64{1, 1, 1, 1, 100, 1, 1, 1}
	src := pdata.Deterministic(freqs)
	o := hist.NewSSEValue(src)
	h, err := hist.EquiDepth(src.ExpectedFreqs(), o, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The heavy item must be separated from at least one of its flanks:
	// mass quantiles at 1/3 and 2/3 both land on item 4.
	found := false
	for _, b := range h.Buckets {
		if b.Start == 4 || b.End == 4 {
			if b.Width() <= 5 {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("heavy item not isolated: %+v", h.Buckets)
	}
}

func TestEquiDepthNeverBeatsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 10; trial++ {
		src := ptest.RandomValuePDF(rng, 10, 3)
		o := hist.NewSSEValue(src)
		for B := 1; B <= 5; B++ {
			opt, err := hist.Optimal(o, B)
			if err != nil {
				t.Fatal(err)
			}
			ed, err := hist.EquiDepth(src.ExpectedFreqs(), o, B)
			if err != nil {
				t.Fatal(err)
			}
			if ed.Cost < opt.Cost-1e-9 {
				t.Fatalf("trial %d B=%d: equi-depth %v beats optimal %v", trial, B, ed.Cost, opt.Cost)
			}
		}
	}
}

func TestEquiDepthArgumentErrors(t *testing.T) {
	src := pdata.Deterministic([]float64{1, 2})
	o := hist.NewSSEValue(src)
	if _, err := hist.EquiDepth([]float64{1}, o, 1); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := hist.EquiDepth([]float64{1, 2}, o, 0); err == nil {
		t.Error("B=0 accepted")
	}
}

func TestEquiDepthZeroMass(t *testing.T) {
	// All-zero expected mass: must still produce a valid partition.
	src := pdata.Deterministic(make([]float64, 6))
	o := hist.NewSSEValue(src)
	h, err := hist.EquiDepth(src.ExpectedFreqs(), o, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.Cost) > 1e-12 {
		t.Fatalf("zero data cost %v", h.Cost)
	}
}
