package hist_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"probsyn/internal/hist"
	"probsyn/internal/metric"
	"probsyn/internal/pdata"
	"probsyn/internal/ptest"
)

// Property (§3.5, condition 4): bucket costs are monotone under extension —
// the error of any interval is at least the error of any contained
// subinterval. The approximation algorithm's correctness depends on it.
func TestQuickOracleMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := ptest.RandomTuplePDF(rng, 8, 6, 3)
		p := metric.Params{C: 0.5}
		for _, k := range []metric.Kind{metric.SSE, metric.SSEFixed, metric.SSRE,
			metric.SAE, metric.SARE, metric.MAE, metric.MARE} {
			o, err := hist.NewOracle(src, k, p)
			if err != nil {
				return false
			}
			for s := 0; s < 8; s++ {
				for e := s; e < 8; e++ {
					outer, _ := o.Cost(s, e)
					for s2 := s; s2 <= e; s2++ {
						for e2 := s2; e2 <= e; e2++ {
							inner, _ := o.Cost(s2, e2)
							if inner > outer+1e-9*(1+outer) {
								t.Logf("%v: cost[%d,%d]=%v > cost[%d,%d]=%v", k, s2, e2, inner, s, e, outer)
								return false
							}
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the DP optimum is a lower bound on the cost of any random
// bucketing assembled from the same oracle.
func TestQuickDPLowerBoundsRandomBucketings(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := ptest.RandomValuePDF(rng, 10, 3)
		o := hist.NewSSEValue(src)
		B := 1 + rng.Intn(5)
		opt, err := hist.Optimal(o, B)
		if err != nil {
			return false
		}
		// random bucketing with exactly B buckets
		starts := []int{0}
		perm := rng.Perm(9)
		for _, x := range perm[:B-1] {
			starts = append(starts, x+1)
		}
		sortInts(starts)
		h, err := hist.FromBoundaries(o, starts)
		if err != nil {
			return false
		}
		return h.Cost >= opt.Cost-1e-9*(1+opt.Cost)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: oracle costs are invariant under representation of the same
// distribution — a basic model and its single-alternative tuple pdf price
// every bucket identically under every metric.
func TestQuickModelEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := ptest.RandomBasic(rng, 6, 7)
		tp := b.TuplePDF()
		p := metric.Params{C: 0.5}
		for _, k := range []metric.Kind{metric.SSE, metric.SSRE, metric.SAE, metric.MARE} {
			ob, err := hist.NewOracle(b, k, p)
			if err != nil {
				return false
			}
			ot, err := hist.NewOracle(tp, k, p)
			if err != nil {
				return false
			}
			for s := 0; s < 6; s++ {
				for e := s; e < 6; e++ {
					cb, _ := ob.Cost(s, e)
					ct, _ := ot.Cost(s, e)
					if diff := cb - ct; diff > 1e-9 || diff < -1e-9 {
						t.Logf("%v: basic %v vs tuple %v at [%d,%d]", k, cb, ct, s, e)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: singleton buckets cost zero under the clairvoyant SSE (Eq. 5)
// and equal the item's variance under fixed-representative SSE.
func TestQuickSingletonBucketCosts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := ptest.RandomValuePDF(rng, 6, 3)
		mom := pdata.MomentsOf(src)
		oE := hist.NewSSEValue(src)
		oF := hist.NewSSEFixed(src)
		for i := 0; i < 6; i++ {
			c, _ := oE.Cost(i, i)
			if c > 1e-12 {
				return false
			}
			cf, _ := oF.Cost(i, i)
			if d := cf - mom.Var[i]; d > 1e-9 || d < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
