package hist

import (
	"fmt"
	"math"

	"probsyn/internal/engine"
)

// Optimal computes the error-optimal B-bucket histogram for the oracle's
// metric by the dynamic program of Eq. (2):
//
//	OPT[j,b] = min_{i<j} h(OPT[i,b-1], BERR(i+1, j))
//
// with h = + for cumulative metrics and h = max for maximum-error metrics
// (the principle of optimality holds in both cases over probabilistic data,
// §3). Runtime is O(B n^2) bucket-cost evaluations on top of the oracle's
// precomputation; memory is O(B n) for backtracking.
//
// If B >= n the histogram degenerates to one bucket per item.
func Optimal(o Oracle, B int) (*Histogram, error) {
	return OptimalWorkers(o, B, 1)
}

// OptimalWorkers is Optimal with the DP run across a worker pool; see
// RunDPWorkers for the parallel contract.
func OptimalWorkers(o Oracle, B, workers int) (*Histogram, error) {
	return OptimalPool(o, B, engine.New(engine.Options{Workers: workers}))
}

// OptimalPool is Optimal scheduled on an explicit engine pool.
func OptimalPool(o Oracle, B int, pool *engine.Pool) (*Histogram, error) {
	t, err := RunDPPool(o, B, pool)
	if err != nil {
		return nil, err
	}
	return t.Histogram(B)
}

// DPTable holds a completed histogram dynamic program for every budget up
// to Bmax, so a whole budget sweep (as in the paper's Figure 2) costs one
// DP run instead of one per budget.
type DPTable struct {
	oracle Oracle
	n      int
	bmax   int
	opt    [][]float64
	choice [][]int32
}

// RunDP executes the dynamic program of Eq. (2) up to budget Bmax,
// single-threaded. It is shorthand for RunDPWorkers(o, Bmax, 1).
func RunDP(o Oracle, Bmax int) (*DPTable, error) {
	return RunDPWorkers(o, Bmax, 1)
}

// RunDPWorkers executes the dynamic program with the default engine grain
// and the given worker count (workers <= 0 means one per CPU). It is
// shorthand for RunDPPool(o, Bmax, engine.New(engine.Options{Workers:
// workers})); see RunDPPool for the parallel contract.
func RunDPWorkers(o Oracle, Bmax, workers int) (*DPTable, error) {
	return RunDPPool(o, Bmax, engine.New(engine.Options{Workers: workers}))
}

// RunDPPool executes the dynamic program of Eq. (2) up to budget Bmax with
// the per-end cost sweeps and the min-reduction over split points
// dispatched through the engine pool (nil means serial).
//
// The parallel schedule is deterministic: every floating-point operation is
// performed exactly as in the serial order, and chunk results are combined
// left to right with the same strict-< tie-breaking, so the resulting
// DPTable (costs and back-pointers) is bit-identical to a single-worker
// run. Oracle.Cost must be safe for concurrent calls (all oracles in this
// package are: Cost reads only precomputed arrays); SweepOracle sweeps are
// inherently sequential in the bucket start and stay on one goroutine.
func RunDPPool(o Oracle, Bmax int, pool *engine.Pool) (*DPTable, error) {
	n := o.N()
	if n <= 0 {
		return nil, fmt.Errorf("hist: empty domain")
	}
	if Bmax <= 0 {
		return nil, fmt.Errorf("hist: bucket budget %d, want >= 1", Bmax)
	}
	if Bmax > n {
		Bmax = n
	}
	t := &DPTable{oracle: o, n: n, bmax: Bmax}

	// opt[b][j]: optimal error of a (b+1)-bucket histogram over prefix
	// [0..j]; choice[b][j]: last bucket is [choice+1 .. j].
	t.opt = make([][]float64, Bmax)
	t.choice = make([][]int32, Bmax)
	for b := range t.opt {
		t.opt[b] = make([]float64, n)
		t.choice[b] = make([]int32, n)
	}
	t.runColumns(0, pool)
	return t, nil
}

// runColumns executes the DP for ends e in [from, t.n), reading (and for
// e >= from, writing) the table's opt/choice rows. Column e depends only
// on bucket costs within [0, e] and on opt values at ends < e, so a
// resumed run over a suffix of ends produces exactly the entries a full
// run over the same oracle would — the incremental-maintenance path
// (DPTable.resume) relies on this, and the live property tests verify it
// byte-for-byte through the codec.
func (t *DPTable) runColumns(from int, pool *engine.Pool) {
	if pool == nil {
		pool = engine.Serial()
	}
	o, n, Bmax := t.oracle, t.n, t.bmax
	costs := make([]float64, n)
	reps := make([]float64, n)
	sweeper, hasSweep := o.(SweepOracle)
	isSum := o.Combine() == Sum

	// partials[(b-1)*chunks + w] is chunk w's best candidate for level b at
	// the current end; reused across ends.
	partials := make([]engine.MinPartial, (Bmax-1)*pool.Workers())

	for e := from; e < n; e++ {
		if hasSweep {
			sweeper.CostsForEnd(e, costs, reps)
		} else {
			pool.MapChunks(0, e+1, e+1, func(_, lo, hi int) {
				for s := lo; s < hi; s++ {
					costs[s], reps[s] = o.Cost(s, e)
				}
			})
		}
		t.opt[0][e] = costs[0]
		t.choice[0][e] = -1
		top := Bmax
		if e+1 < top {
			top = e + 1
		}
		if top <= 1 {
			continue
		}
		if chunks := pool.Chunks((top - 1) * e); chunks > 1 {
			// Split the split-point range [0, e) into one contiguous chunk
			// per worker; each worker reduces its chunk for every level b.
			pool.MapChunks(0, e, (top-1)*e, func(w, lo, hi int) {
				for b := 1; b < top; b++ {
					from := lo
					if from < b-1 {
						from = b - 1
					}
					partials[(b-1)*chunks+w] = reduceSplits(t.opt[b-1], costs, from, hi, isSum)
				}
			})
			for b := 1; b < top; b++ {
				best := engine.CombineMin(partials[(b-1)*chunks : b*chunks])
				if best.Arg < 0 {
					best = engine.MinPartial{Value: math.Inf(1), Arg: int32(b - 1)}
				}
				t.opt[b][e] = best.Value
				t.choice[b][e] = best.Arg
			}
		} else {
			for b := 1; b < top; b++ {
				best := reduceSplits(t.opt[b-1], costs, b-1, e, isSum)
				if best.Arg < 0 {
					best = engine.MinPartial{Value: math.Inf(1), Arg: int32(b - 1)}
				}
				t.opt[b][e] = best.Value
				t.choice[b][e] = best.Arg
			}
		}
	}
}

// resume re-anchors the table on a new oracle over a same-or-larger
// domain and recomputes only the columns a mutation could have changed:
// everything from `from` rightward. breq is the budget the table was
// originally requested at — the effective Bmax re-clamps against the new
// domain, and if that changes the budget-level count, every column is
// recomputed (old levels would be missing or stale).
//
// Correctness requires the caller to guarantee that bucket costs wholly
// left of `from` are unchanged under the new oracle — true when the
// oracle is rebuilt from the same data with only items >= from mutated
// (prefix structures agree bit-for-bit left of the first change; oracles
// whose global value grid changed still price untouched buckets
// identically, because added grid points carry zero mass there).
func (t *DPTable) resume(o Oracle, from, breq int, pool *engine.Pool) error {
	n := o.N()
	if n < t.n {
		return fmt.Errorf("hist: resume cannot shrink the domain (%d -> %d)", t.n, n)
	}
	if from < 0 || from > t.n {
		return fmt.Errorf("hist: resume start %d outside [0, %d]", from, t.n)
	}
	if breq <= 0 {
		return fmt.Errorf("hist: bucket budget %d, want >= 1", breq)
	}
	bmax := breq
	if bmax > n {
		bmax = n
	}
	if bmax != t.bmax {
		from = 0 // budget levels appear (or vanish): no column survives
	}
	if bmax < t.bmax {
		t.opt = t.opt[:bmax]
		t.choice = t.choice[:bmax]
	}
	for b := t.bmax; b < bmax; b++ {
		t.opt = append(t.opt, make([]float64, n))
		t.choice = append(t.choice, make([]int32, n))
	}
	if n > t.n {
		for b := 0; b < len(t.opt); b++ {
			if len(t.opt[b]) < n {
				opt := make([]float64, n)
				copy(opt, t.opt[b])
				choice := make([]int32, n)
				copy(choice, t.choice[b])
				t.opt[b], t.choice[b] = opt, choice
			}
		}
	}
	t.oracle, t.n, t.bmax = o, n, bmax
	t.runColumns(from, pool)
	return nil
}

// reduceSplits scans split points i in [from, to), pricing prev[i] extended
// by a final bucket [i+1, e] whose cost is costs[i+1], and returns the
// minimum. Strict < keeps the smallest minimizing i, matching the serial
// DP's tie-breaking exactly.
func reduceSplits(prev, costs []float64, from, to int, isSum bool) engine.MinPartial {
	best := engine.EmptyMin()
	if isSum {
		for i := from; i < to; i++ {
			if v := prev[i] + costs[i+1]; v < best.Value {
				best = engine.MinPartial{Value: v, Arg: int32(i)}
			}
		}
	} else {
		for i := from; i < to; i++ {
			v := prev[i]
			if c := costs[i+1]; c > v {
				v = c
			}
			if v < best.Value {
				best = engine.MinPartial{Value: v, Arg: int32(i)}
			}
		}
	}
	return best
}

// Bmax returns the largest budget the table covers.
func (t *DPTable) Bmax() int { return t.bmax }

// Cost returns the optimal B-bucket error (B clamped to [1, Bmax]).
func (t *DPTable) Cost(B int) float64 {
	if B > t.bmax {
		B = t.bmax
	}
	return t.opt[B-1][t.n-1]
}

// Boundaries returns the optimal B-bucket start positions.
func (t *DPTable) Boundaries(B int) []int {
	if B > t.bmax {
		B = t.bmax
	}
	starts := make([]int, 0, B)
	b, j := B-1, t.n-1
	for b >= 0 {
		i := int(t.choice[b][j])
		starts = append(starts, i+1)
		j, b = i, b-1
	}
	for l, r := 0, len(starts)-1; l < r; l, r = l+1, r-1 {
		starts[l], starts[r] = starts[r], starts[l]
	}
	return starts
}

// Histogram materializes the optimal B-bucket histogram.
// A histogram may not benefit from all B buckets (zero-cost prefixes);
// it still contains exactly min(B, n) buckets as requested.
func (t *DPTable) Histogram(B int) (*Histogram, error) {
	return FromBoundaries(t.oracle, t.Boundaries(B))
}

// OptimalError returns only the optimal B-bucket error (no backtracking,
// O(n) memory per DP level). Used by tests and by error-normalization.
func OptimalError(o Oracle, B int) (float64, error) {
	h, err := Optimal(o, B)
	if err != nil {
		return 0, err
	}
	return h.Cost, nil
}
