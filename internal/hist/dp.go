package hist

import (
	"fmt"
	"math"
)

// Optimal computes the error-optimal B-bucket histogram for the oracle's
// metric by the dynamic program of Eq. (2):
//
//	OPT[j,b] = min_{i<j} h(OPT[i,b-1], BERR(i+1, j))
//
// with h = + for cumulative metrics and h = max for maximum-error metrics
// (the principle of optimality holds in both cases over probabilistic data,
// §3). Runtime is O(B n^2) bucket-cost evaluations on top of the oracle's
// precomputation; memory is O(B n) for backtracking.
//
// If B >= n the histogram degenerates to one bucket per item.
func Optimal(o Oracle, B int) (*Histogram, error) {
	t, err := RunDP(o, B)
	if err != nil {
		return nil, err
	}
	return t.Histogram(B)
}

// DPTable holds a completed histogram dynamic program for every budget up
// to Bmax, so a whole budget sweep (as in the paper's Figure 2) costs one
// DP run instead of one per budget.
type DPTable struct {
	oracle Oracle
	n      int
	bmax   int
	opt    [][]float64
	choice [][]int32
}

// RunDP executes the dynamic program of Eq. (2) up to budget Bmax.
func RunDP(o Oracle, Bmax int) (*DPTable, error) {
	n := o.N()
	if n <= 0 {
		return nil, fmt.Errorf("hist: empty domain")
	}
	if Bmax <= 0 {
		return nil, fmt.Errorf("hist: bucket budget %d, want >= 1", Bmax)
	}
	if Bmax > n {
		Bmax = n
	}
	t := &DPTable{oracle: o, n: n, bmax: Bmax}

	// opt[b][j]: optimal error of a (b+1)-bucket histogram over prefix
	// [0..j]; choice[b][j]: last bucket is [choice+1 .. j].
	t.opt = make([][]float64, Bmax)
	t.choice = make([][]int32, Bmax)
	for b := range t.opt {
		t.opt[b] = make([]float64, n)
		t.choice[b] = make([]int32, n)
	}
	costs := make([]float64, n)
	reps := make([]float64, n)

	for e := 0; e < n; e++ {
		costsForEnd(o, e, costs, reps)
		t.opt[0][e] = costs[0]
		t.choice[0][e] = -1
		top := Bmax
		if e+1 < top {
			top = e + 1
		}
		for b := 1; b < top; b++ {
			best := math.Inf(1)
			bestI := int32(b - 1)
			prev := t.opt[b-1]
			if o.Combine() == Sum {
				for i := b - 1; i < e; i++ {
					if v := prev[i] + costs[i+1]; v < best {
						best, bestI = v, int32(i)
					}
				}
			} else {
				for i := b - 1; i < e; i++ {
					v := prev[i]
					if c := costs[i+1]; c > v {
						v = c
					}
					if v < best {
						best, bestI = v, int32(i)
					}
				}
			}
			t.opt[b][e] = best
			t.choice[b][e] = bestI
		}
	}
	return t, nil
}

// Bmax returns the largest budget the table covers.
func (t *DPTable) Bmax() int { return t.bmax }

// Cost returns the optimal B-bucket error (B clamped to [1, Bmax]).
func (t *DPTable) Cost(B int) float64 {
	if B > t.bmax {
		B = t.bmax
	}
	return t.opt[B-1][t.n-1]
}

// Boundaries returns the optimal B-bucket start positions.
func (t *DPTable) Boundaries(B int) []int {
	if B > t.bmax {
		B = t.bmax
	}
	starts := make([]int, 0, B)
	b, j := B-1, t.n-1
	for b >= 0 {
		i := int(t.choice[b][j])
		starts = append(starts, i+1)
		j, b = i, b-1
	}
	for l, r := 0, len(starts)-1; l < r; l, r = l+1, r-1 {
		starts[l], starts[r] = starts[r], starts[l]
	}
	return starts
}

// Histogram materializes the optimal B-bucket histogram.
// A histogram may not benefit from all B buckets (zero-cost prefixes);
// it still contains exactly min(B, n) buckets as requested.
func (t *DPTable) Histogram(B int) (*Histogram, error) {
	return FromBoundaries(t.oracle, t.Boundaries(B))
}

// OptimalError returns only the optimal B-bucket error (no backtracking,
// O(n) memory per DP level). Used by tests and by error-normalization.
func OptimalError(o Oracle, B int) (float64, error) {
	h, err := Optimal(o, B)
	if err != nil {
		return 0, err
	}
	return h.Cost, nil
}
