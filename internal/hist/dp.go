package hist

import (
	"fmt"
	"math"
	"os"

	"probsyn/internal/engine"
)

// DPStats counts the work one DP performed, cumulatively across the
// initial build and every resume. The split reduction of Eq. (2) is
// monotonicity-pruned: a candidate is either scanned (its value was
// computed) or pruned (skipped because it provably cannot beat the
// incumbent under the DP's strict-< tie-break), so per reduction
// Scanned + Pruned equals the candidate count and the pruned share is
// the output-sensitivity win. CostEvals counts bucket-cost evaluations —
// oracle Cost calls plus sweep-fill entries. The dense path always pays
// Θ(n²) of them; the pruned path's bounded lazy fill stops each end at
// the furthest surviving candidate, so CostEvals never exceeds the dense
// count (beyond the per-level seed re-pricings) and drops when the
// certified cuts bite.
//
// The tables a DP produces are bit-identical at every worker count and
// whether or not pruning engages; the stats are not — chunk-local
// incumbents prune differently than a serial scan — so compare tables,
// not stats, for determinism.
type DPStats struct {
	CandidatesScanned int64
	CandidatesPruned  int64
	CostEvals         int64
}

// Add accumulates o into s.
func (s *DPStats) Add(o DPStats) {
	s.CandidatesScanned += o.CandidatesScanned
	s.CandidatesPruned += o.CandidatesPruned
	s.CostEvals += o.CostEvals
}

// DenseDPEnv is the environment variable that forces the dense reference
// DP: when set (to anything non-empty), runColumns performs the full
// O(n²·B) split scans and cost fills with no pruning. It exists so CI can
// build the same catalog twice — pruned and dense — and cmp the files
// byte-identical; it is a test hook, not a tuning knob.
const DenseDPEnv = "PROBSYN_DENSE_HIST_DP"

func denseForced() bool { return os.Getenv(DenseDPEnv) != "" }

// Optimal computes the error-optimal B-bucket histogram for the oracle's
// metric by the dynamic program of Eq. (2):
//
//	OPT[j,b] = min_{i<j} h(OPT[i,b-1], BERR(i+1, j))
//
// with h = + for cumulative metrics and h = max for maximum-error metrics
// (the principle of optimality holds in both cases over probabilistic data,
// §3). Runtime is O(B n^2) bucket-cost evaluations on top of the oracle's
// precomputation; memory is O(B n) for backtracking.
//
// If B >= n the histogram degenerates to one bucket per item.
func Optimal(o Oracle, B int) (*Histogram, error) {
	return OptimalWorkers(o, B, 1)
}

// OptimalWorkers is Optimal with the DP run across a worker pool; see
// RunDPWorkers for the parallel contract.
func OptimalWorkers(o Oracle, B, workers int) (*Histogram, error) {
	return OptimalPool(o, B, engine.New(engine.Options{Workers: workers}))
}

// OptimalPool is Optimal scheduled on an explicit engine pool.
func OptimalPool(o Oracle, B int, pool *engine.Pool) (*Histogram, error) {
	t, err := RunDPPool(o, B, pool)
	if err != nil {
		return nil, err
	}
	return t.Histogram(B)
}

// DPTable holds a completed histogram dynamic program for every budget up
// to Bmax, so a whole budget sweep (as in the paper's Figure 2) costs one
// DP run instead of one per budget.
type DPTable struct {
	oracle Oracle
	n      int
	bmax   int
	opt    [][]float64
	choice [][]int32
	// mono[b] certifies the monotone prefix of row b as written: opt[b] is
	// non-decreasing over [b, mono[b]) with opt[b][b] >= 0. The pruned
	// split reduction binary-searches rows only inside their certificate —
	// the mathematical lemma (a longer prefix never costs less) can wobble
	// by ULPs in floats, and an unchecked binary search could then skip
	// the true argmin and break bit-identity with the dense scan.
	mono  []int
	stats DPStats
}

// Stats returns the cumulative DP work counters (see DPStats).
func (t *DPTable) Stats() DPStats { return t.stats }

// setCell writes one DP cell and extends the row's monotone certificate
// when the new value keeps it valid. Row b's first meaningful cell is at
// end b (a (b+1)-bucket histogram needs b+1 items), which anchors the
// certificate with the non-negativity check the pruning rules need.
func (t *DPTable) setCell(b, e int, v float64, arg int32) {
	t.opt[b][e] = v
	t.choice[b][e] = arg
	switch {
	case e == b:
		if v >= 0 {
			t.mono[b] = e + 1
		}
	case t.mono[b] == e:
		if v >= t.opt[b][e-1] {
			t.mono[b] = e + 1
		}
	}
}

// RunDP executes the dynamic program of Eq. (2) up to budget Bmax,
// single-threaded. It is shorthand for RunDPWorkers(o, Bmax, 1).
func RunDP(o Oracle, Bmax int) (*DPTable, error) {
	return RunDPWorkers(o, Bmax, 1)
}

// RunDPWorkers executes the dynamic program with the default engine grain
// and the given worker count (workers <= 0 means one per CPU). It is
// shorthand for RunDPPool(o, Bmax, engine.New(engine.Options{Workers:
// workers})); see RunDPPool for the parallel contract.
func RunDPWorkers(o Oracle, Bmax, workers int) (*DPTable, error) {
	return RunDPPool(o, Bmax, engine.New(engine.Options{Workers: workers}))
}

// RunDPPool executes the dynamic program of Eq. (2) up to budget Bmax with
// the per-end cost sweeps and the min-reduction over split points
// dispatched through the engine pool (nil means serial).
//
// The parallel schedule is deterministic: every floating-point operation is
// performed exactly as in the serial order, and chunk results are combined
// left to right with the same strict-< tie-breaking, so the resulting
// DPTable (costs and back-pointers) is bit-identical to a single-worker
// run. Oracle.Cost must be safe for concurrent calls (all oracles in this
// package are: Cost reads only precomputed arrays); SweepOracle sweeps are
// inherently sequential in the bucket start and stay on one goroutine.
func RunDPPool(o Oracle, Bmax int, pool *engine.Pool) (*DPTable, error) {
	n := o.N()
	if n <= 0 {
		return nil, fmt.Errorf("hist: empty domain")
	}
	if Bmax <= 0 {
		return nil, fmt.Errorf("hist: bucket budget %d, want >= 1", Bmax)
	}
	if Bmax > n {
		Bmax = n
	}
	t := &DPTable{oracle: o, n: n, bmax: Bmax}

	// opt[b][j]: optimal error of a (b+1)-bucket histogram over prefix
	// [0..j]; choice[b][j]: last bucket is [choice+1 .. j].
	t.opt = make([][]float64, Bmax)
	t.choice = make([][]int32, Bmax)
	for b := range t.opt {
		t.opt[b] = make([]float64, n)
		t.choice[b] = make([]int32, n)
	}
	t.runColumns(0, pool)
	return t, nil
}

// runColumns executes the DP for ends e in [from, t.n), reading (and for
// e >= from, writing) the table's opt/choice rows. Column e depends only
// on bucket costs within [0, e] and on opt values at ends < e, so a
// resumed run over a suffix of ends produces exactly the entries a full
// run over the same oracle would — the incremental-maintenance path
// (DPTable.resume) relies on this, and the live property tests verify it
// byte-for-byte through the codec.
//
// The split reduction is monotonicity-pruned (see DESIGN.md "Pruned DP"):
// prev[i] is non-decreasing in i and the closing bucket's cost is
// non-increasing in i, so a certified upper bound on a level's minimum —
// the previous column's argmin re-priced at this end — cuts the candidate
// range by binary search on both sides, and a running incumbent stops the
// scan at the first prev[i] that can no longer beat it. Every skip is
// provably >= the incumbent (or strictly > the bound) under the DP's
// strict-< tie-break, so the tables are bit-identical to the dense
// reference at every worker count; DenseDPEnv forces that reference.
// Random-access oracles additionally price buckets lazily: the prev-side
// cuts are computed for every level before any cost evaluation, and only
// the prefix up to the furthest surviving candidate is materialized —
// never an unconditional costs[0..e] fill.
func (t *DPTable) runColumns(from int, pool *engine.Pool) {
	if pool == nil {
		pool = engine.Serial()
	}
	o, n, Bmax := t.oracle, t.n, t.bmax
	sweeper, hasSweep := o.(SweepOracle)
	isSum := o.Combine() == Sum
	dense := denseForced()

	// Monotone certificates: columns >= from are rewritten, so no
	// certificate may extend past from (entries left of from survive and
	// keep theirs).
	if cap(t.mono) >= Bmax {
		t.mono = t.mono[:Bmax]
	} else {
		m := make([]int, Bmax)
		copy(m, t.mono)
		t.mono = m
	}
	for b := range t.mono {
		if t.mono[b] > from {
			t.mono[b] = from
		}
	}

	costs := make([]float64, n)
	reps := make([]float64, n)
	// cmin[s] = min(costs[1..s]) is the exact prefix-min envelope of the
	// current end's filled costs: non-increasing by construction
	// regardless of any float wobble in costs itself, so binary-searching
	// it to skip the dominated low-i prefix is always sound.
	var cmin []float64
	if !dense {
		cmin = make([]float64, n)
	}
	// useed[b] is this end's certified upper bound on level b's minimum.
	useed := make([]float64, Bmax)

	// partials[(b-1)*chunks + w] is chunk w's best candidate for level b at
	// the current end; statw[w] is chunk w's work counters. Reused across
	// ends.
	partials := make([]engine.MinPartial, (Bmax-1)*pool.Workers())
	statw := make([]DPStats, pool.Workers())

	// lastScan is the number of candidates that survived pruning at the
	// previous end — the work estimate the fan-out decision is derived
	// from, so a heavily pruned scan does not fan out into pure
	// scheduling overhead. (The dense path keeps its exact (top-1)*e
	// estimate.)
	lastScan := 0

	for e := from; e < n; e++ {
		switch {
		case hasSweep:
			sweeper.CostsForEnd(e, costs, reps)
			t.stats.CostEvals += int64(e + 1)
			if !dense {
				cm := math.Inf(1)
				for s := 1; s <= e; s++ {
					if costs[s] < cm {
						cm = costs[s]
					}
					cmin[s] = cm
				}
			}
			t.setCell(0, e, costs[0], -1)
		case dense:
			pool.MapChunks(0, e+1, e+1, func(_, lo, hi int) {
				for s := lo; s < hi; s++ {
					costs[s], reps[s] = o.Cost(s, e)
				}
			})
			t.stats.CostEvals += int64(e + 1)
			t.setCell(0, e, costs[0], -1)
		default:
			// Lazy path: no fill — level 0 needs exactly one bucket cost.
			c0, _ := o.Cost(0, e)
			t.stats.CostEvals++
			t.setCell(0, e, c0, -1)
		}
		top := Bmax
		if e+1 < top {
			top = e + 1
		}
		if top <= 1 {
			continue
		}

		if dense {
			if chunks := pool.Chunks((top - 1) * e); chunks > 1 {
				// Split the split-point range [0, e) into one contiguous chunk
				// per worker; each worker reduces its chunk for every level b.
				pool.MapChunks(0, e, (top-1)*e, func(w, lo, hi int) {
					for b := 1; b < top; b++ {
						from := lo
						if from < b-1 {
							from = b - 1
						}
						partials[(b-1)*chunks+w] = reduceSplits(t.opt[b-1], costs, from, hi, isSum)
					}
				})
				for b := 1; b < top; b++ {
					best := engine.CombineMin(partials[(b-1)*chunks : b*chunks])
					if best.Arg < 0 {
						best = engine.MinPartial{Value: math.Inf(1), Arg: int32(b - 1)}
					}
					t.setCell(b, e, best.Value, best.Arg)
				}
			} else {
				for b := 1; b < top; b++ {
					best := reduceSplits(t.opt[b-1], costs, b-1, e, isSum)
					if best.Arg < 0 {
						best = engine.MinPartial{Value: math.Inf(1), Arg: int32(b - 1)}
					}
					t.setCell(b, e, best.Value, best.Arg)
				}
			}
			t.stats.CandidatesScanned += int64(top-1)*int64(e) - int64(top-1)*int64(top-2)/2
			continue
		}

		// Seed each level's upper bound with the previous column's argmin
		// re-priced at this end: any valid split index upper-bounds the
		// minimum, stale post-resume back-pointers included, and the
		// previous column's winner is usually within a hair of optimal.
		// Pruning against a seed is strict (> useed), so exact ties with
		// the bound — including the seed candidate itself — survive and
		// the argmin is untouched.
		for b := 1; b < top; b++ {
			u := math.Inf(1)
			if i0 := int(t.choice[b][e-1]); i0 >= b-1 && i0 < e {
				var c float64
				if hasSweep {
					c = costs[i0+1]
				} else {
					c, _ = o.Cost(i0+1, e)
					t.stats.CostEvals++
				}
				if isSum {
					u = t.opt[b-1][i0] + c
				} else if u = t.opt[b-1][i0]; c > u {
					u = c
				}
			}
			useed[b] = u
		}

		if !hasSweep {
			// Bounded lazy fill: the certified prev-side cut bounds every
			// level's scan reach before a single bucket is priced — level b
			// reads costs only up to CutGT(prev, ., useed[b]) — so only the
			// prefix costs[1..maxHi] is materialized (with its exact
			// envelope). maxHi is the furthest surviving candidate across
			// levels: when the cuts bite, whole-column pricing drops from
			// Θ(e) to that count; it never exceeds the dense fill.
			maxHi := 0
			for b := 1; b < top; b++ {
				hi := e
				if t.mono[b-1] >= e && !math.IsInf(useed[b], 1) {
					hi = engine.CutGT(t.opt[b-1], b-1, e, useed[b])
				}
				if hi > maxHi {
					maxHi = hi
				}
			}
			pool.MapChunks(1, maxHi+1, maxHi, func(_, lo, hi int) {
				for s := lo; s < hi; s++ {
					costs[s], reps[s] = o.Cost(s, e)
				}
			})
			t.stats.CostEvals += int64(maxHi)
			cm := math.Inf(1)
			for s := 1; s <= maxHi; s++ {
				if costs[s] < cm {
					cm = costs[s]
				}
				cmin[s] = cm
			}
		}

		scannedBefore := t.stats.CandidatesScanned
		if chunks := pool.Chunks(lastScan); chunks > 1 {
			for w := range statw[:chunks] {
				statw[w] = DPStats{}
			}
			pool.MapChunks(0, e, lastScan, func(w, lo, hi int) {
				st := &statw[w]
				for b := 1; b < top; b++ {
					from := lo
					if from < b-1 {
						from = b - 1
					}
					partials[(b-1)*chunks+w] = prunedScanDense(t.opt[b-1], costs, cmin, from, hi, isSum, useed[b], t.mono[b-1] >= e, st)
				}
			})
			for w := range statw[:chunks] {
				t.stats.Add(statw[w])
			}
			for b := 1; b < top; b++ {
				best := engine.CombineMin(partials[(b-1)*chunks : b*chunks])
				if best.Arg < 0 {
					best = engine.MinPartial{Value: math.Inf(1), Arg: int32(b - 1)}
				}
				t.setCell(b, e, best.Value, best.Arg)
			}
		} else {
			for b := 1; b < top; b++ {
				best := prunedScanDense(t.opt[b-1], costs, cmin, b-1, e, isSum, useed[b], t.mono[b-1] >= e, &t.stats)
				if best.Arg < 0 {
					best = engine.MinPartial{Value: math.Inf(1), Arg: int32(b - 1)}
				}
				t.setCell(b, e, best.Value, best.Arg)
			}
		}
		lastScan = int(t.stats.CandidatesScanned - scannedBefore)
	}
}

// prunedScanDense reduces split candidates i in [lo, hi) against a
// materialized costs row, bit-identically to reduceSplits over the same
// range. U is a certified upper bound on the level's minimum over the
// full range (+Inf when unknown): candidates with min(costs[1..i+1]) > U
// — a prefix, located by binary search on the exact envelope cmin — and,
// when the prev row's monotone certificate covers the range (monoOK),
// candidates with prev[i] > U — a suffix — cannot be the argmin under
// strict-< tie-breaking and are skipped wholesale. Inside the window a
// certified-monotone prev additionally stops the scan at the first
// prev[i] >= the running incumbent.
func prunedScanDense(prev, costs, cmin []float64, lo, hi int, isSum bool, U float64, monoOK bool, st *DPStats) engine.MinPartial {
	if lo >= hi {
		return engine.EmptyMin()
	}
	from, to := lo, hi
	if !math.IsInf(U, 1) {
		if monoOK {
			to = engine.CutGT(prev, lo, hi, U)
		}
		// First s in [lo+1, to] with cmin[s] <= U; candidate i = s-1. The
		// search is clamped to the prev-side cut: candidates past it are
		// pruned anyway, and under the bounded lazy fill the envelope is
		// only materialized that far.
		from = engine.CutLE(cmin, lo+1, to+1, U) - 1
	}
	var best engine.MinPartial
	i := from
	if monoOK {
		best = engine.EmptyMin()
		if isSum {
			for ; i < to; i++ {
				p := prev[i]
				if p >= best.Value {
					break
				}
				if v := p + costs[i+1]; v < best.Value {
					best = engine.MinPartial{Value: v, Arg: int32(i)}
				}
			}
		} else {
			for ; i < to; i++ {
				v := prev[i]
				if v >= best.Value {
					break
				}
				if c := costs[i+1]; c > v {
					v = c
				}
				if v < best.Value {
					best = engine.MinPartial{Value: v, Arg: int32(i)}
				}
			}
		}
	} else {
		best = reduceSplits(prev, costs, from, to, isSum)
		i = to
	}
	st.CandidatesScanned += int64(i - from)
	st.CandidatesPruned += int64((from - lo) + (hi - to) + (to - i))
	return best
}

// prunedScanLazy is a fully lazy variant of prunedScanDense: no costs
// row exists at all, so surviving candidates are priced by o.Cost on
// demand and the low-i envelope cut is unavailable — the prev-side cut,
// the incumbent stop, and per-candidate prev[i] > U skips (sound without
// any monotonicity: the candidate value is >= prev[i] > U >= the
// minimum) do the pruning. Each evaluation is counted in CostEvals.
// OptimalError's level-major rolling DP uses it: with no per-end reuse
// across levels there is nothing to materialize. runColumns instead
// bounds a shared per-end fill with the same prev-side cuts and scans it
// densely, so costs are priced once per end, not once per level.
func prunedScanLazy(o Oracle, prev []float64, lo, hi, e int, isSum bool, U float64, monoOK bool, st *DPStats) engine.MinPartial {
	if lo >= hi {
		return engine.EmptyMin()
	}
	to := hi
	if monoOK && !math.IsInf(U, 1) {
		to = engine.CutGT(prev, lo, hi, U)
	}
	best := engine.EmptyMin()
	var evals, skipped int64
	i := lo
	for ; i < to; i++ {
		p := prev[i]
		if monoOK && p >= best.Value {
			break
		}
		if p > U {
			skipped++
			continue
		}
		c, _ := o.Cost(i+1, e)
		evals++
		v := p
		if isSum {
			v = p + c
		} else if c > v {
			v = c
		}
		if v < best.Value {
			best = engine.MinPartial{Value: v, Arg: int32(i)}
		}
	}
	st.CostEvals += evals
	st.CandidatesScanned += evals
	st.CandidatesPruned += skipped + int64(to-i) + int64(hi-to)
	return best
}

// resume re-anchors the table on a new oracle over a same-or-larger
// domain and recomputes only the columns a mutation could have changed:
// everything from `from` rightward. breq is the budget the table was
// originally requested at — the effective Bmax re-clamps against the new
// domain, and if that changes the budget-level count, every column is
// recomputed (old levels would be missing or stale).
//
// Correctness requires the caller to guarantee that bucket costs wholly
// left of `from` are unchanged under the new oracle — true when the
// oracle is rebuilt from the same data with only items >= from mutated
// (prefix structures agree bit-for-bit left of the first change; oracles
// whose global value grid changed still price untouched buckets
// identically, because added grid points carry zero mass there).
func (t *DPTable) resume(o Oracle, from, breq int, pool *engine.Pool) error {
	n := o.N()
	if n < t.n {
		return fmt.Errorf("hist: resume cannot shrink the domain (%d -> %d)", t.n, n)
	}
	if from < 0 || from > t.n {
		return fmt.Errorf("hist: resume start %d outside [0, %d]", from, t.n)
	}
	if breq <= 0 {
		return fmt.Errorf("hist: bucket budget %d, want >= 1", breq)
	}
	bmax := breq
	if bmax > n {
		bmax = n
	}
	if bmax != t.bmax {
		from = 0 // budget levels appear (or vanish): no column survives
	}
	if bmax < t.bmax {
		t.opt = t.opt[:bmax]
		t.choice = t.choice[:bmax]
	}
	for b := t.bmax; b < bmax; b++ {
		t.opt = append(t.opt, make([]float64, n))
		t.choice = append(t.choice, make([]int32, n))
	}
	if n > t.n {
		for b := 0; b < len(t.opt); b++ {
			if len(t.opt[b]) < n {
				opt := make([]float64, n)
				copy(opt, t.opt[b])
				choice := make([]int32, n)
				copy(choice, t.choice[b])
				t.opt[b], t.choice[b] = opt, choice
			}
		}
	}
	t.oracle, t.n, t.bmax = o, n, bmax
	t.runColumns(from, pool)
	return nil
}

// reduceSplits scans split points i in [from, to), pricing prev[i] extended
// by a final bucket [i+1, e] whose cost is costs[i+1], and returns the
// minimum. Strict < keeps the smallest minimizing i, matching the serial
// DP's tie-breaking exactly.
func reduceSplits(prev, costs []float64, from, to int, isSum bool) engine.MinPartial {
	best := engine.EmptyMin()
	if isSum {
		for i := from; i < to; i++ {
			if v := prev[i] + costs[i+1]; v < best.Value {
				best = engine.MinPartial{Value: v, Arg: int32(i)}
			}
		}
	} else {
		for i := from; i < to; i++ {
			v := prev[i]
			if c := costs[i+1]; c > v {
				v = c
			}
			if v < best.Value {
				best = engine.MinPartial{Value: v, Arg: int32(i)}
			}
		}
	}
	return best
}

// Bmax returns the largest budget the table covers.
func (t *DPTable) Bmax() int { return t.bmax }

// Cost returns the optimal B-bucket error (B clamped to [1, Bmax]).
func (t *DPTable) Cost(B int) float64 {
	if B > t.bmax {
		B = t.bmax
	}
	return t.opt[B-1][t.n-1]
}

// Boundaries returns the optimal B-bucket start positions.
func (t *DPTable) Boundaries(B int) []int {
	if B > t.bmax {
		B = t.bmax
	}
	starts := make([]int, 0, B)
	b, j := B-1, t.n-1
	for b >= 0 {
		i := int(t.choice[b][j])
		starts = append(starts, i+1)
		j, b = i, b-1
	}
	for l, r := 0, len(starts)-1; l < r; l, r = l+1, r-1 {
		starts[l], starts[r] = starts[r], starts[l]
	}
	return starts
}

// Histogram materializes the optimal B-bucket histogram.
// A histogram may not benefit from all B buckets (zero-cost prefixes);
// it still contains exactly min(B, n) buckets as requested.
func (t *DPTable) Histogram(B int) (*Histogram, error) {
	return FromBoundaries(t.oracle, t.Boundaries(B))
}

// OptimalError returns only the optimal B-bucket error. For random-access
// oracles it runs a two-row rolling DP — no backtracking table, O(n)
// memory total — level-major over the budget, pricing buckets lazily
// through the same pruned scan as RunDPPool; every cell is the same
// min over the same candidates with the same float operations, so the
// result is math.Float64bits-identical to DPTable.Cost(B).
//
// SweepOracle implementations fill costs per end, which is column-major
// by nature: re-sweeping per level would cost O(B·n²) fills, so for
// those the full table is built instead (O(B·n) memory, as Optimal).
// Used by tests and by error-normalization.
func OptimalError(o Oracle, B int) (float64, error) {
	n := o.N()
	if n <= 0 {
		return 0, fmt.Errorf("hist: empty domain")
	}
	if B <= 0 {
		return 0, fmt.Errorf("hist: bucket budget %d, want >= 1", B)
	}
	if _, hasSweep := o.(SweepOracle); hasSweep || denseForced() {
		t, err := RunDP(o, B)
		if err != nil {
			return 0, err
		}
		return t.Cost(B), nil
	}
	if B > n {
		B = n
	}
	isSum := o.Combine() == Sum
	var st DPStats
	prev := make([]float64, n)
	cur := make([]float64, n)
	for e := 0; e < n; e++ {
		prev[e], _ = o.Cost(0, e)
	}
	for b := 1; b < B; b++ {
		// Certify prev over the indices this level reads, [b-1, n):
		// non-decreasing with a non-negative anchor, exactly the
		// per-write check runColumns maintains.
		monoOK := prev[b-1] >= 0
		for i := b; monoOK && i < n; i++ {
			monoOK = prev[i] >= prev[i-1]
		}
		lastArg := -1
		for e := b; e < n; e++ {
			u := math.Inf(1)
			if lastArg >= b-1 && lastArg < e {
				c, _ := o.Cost(lastArg+1, e)
				if isSum {
					u = prev[lastArg] + c
				} else if u = prev[lastArg]; c > u {
					u = c
				}
			}
			best := prunedScanLazy(o, prev, b-1, e, e, isSum, u, monoOK, &st)
			if best.Arg < 0 {
				best = engine.MinPartial{Value: math.Inf(1), Arg: int32(b - 1)}
			}
			cur[e] = best.Value
			lastArg = int(best.Arg)
		}
		prev, cur = cur, prev
	}
	return prev[n-1], nil
}
