package hist

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Optimal computes the error-optimal B-bucket histogram for the oracle's
// metric by the dynamic program of Eq. (2):
//
//	OPT[j,b] = min_{i<j} h(OPT[i,b-1], BERR(i+1, j))
//
// with h = + for cumulative metrics and h = max for maximum-error metrics
// (the principle of optimality holds in both cases over probabilistic data,
// §3). Runtime is O(B n^2) bucket-cost evaluations on top of the oracle's
// precomputation; memory is O(B n) for backtracking.
//
// If B >= n the histogram degenerates to one bucket per item.
func Optimal(o Oracle, B int) (*Histogram, error) {
	return OptimalWorkers(o, B, 1)
}

// OptimalWorkers is Optimal with the DP run across a worker pool; see
// RunDPWorkers for the parallel contract.
func OptimalWorkers(o Oracle, B, workers int) (*Histogram, error) {
	t, err := RunDPWorkers(o, B, workers)
	if err != nil {
		return nil, err
	}
	return t.Histogram(B)
}

// DPTable holds a completed histogram dynamic program for every budget up
// to Bmax, so a whole budget sweep (as in the paper's Figure 2) costs one
// DP run instead of one per budget.
type DPTable struct {
	oracle Oracle
	n      int
	bmax   int
	opt    [][]float64
	choice [][]int32
}

// parallelGrain is the minimum amount of per-end work (split-point
// candidates, or oracle sweep calls) below which the DP stays serial for
// that end: fanning goroutines out over tiny prefixes costs more than the
// loop itself. A variable so the determinism tests can lower it and drive
// small inputs through the parallel schedule.
var parallelGrain = 2048

// RunDP executes the dynamic program of Eq. (2) up to budget Bmax,
// single-threaded. It is shorthand for RunDPWorkers(o, Bmax, 1).
func RunDP(o Oracle, Bmax int) (*DPTable, error) {
	return RunDPWorkers(o, Bmax, 1)
}

// RunDPWorkers executes the dynamic program of Eq. (2) up to budget Bmax
// with the per-end cost sweeps and the min-reduction over split points
// spread across `workers` goroutines (workers <= 0 means runtime.NumCPU()).
//
// The parallel schedule is deterministic: every floating-point operation is
// performed exactly as in the serial order, and chunk results are combined
// left to right with the same strict-< tie-breaking, so the resulting
// DPTable (costs and back-pointers) is bit-identical to the workers == 1
// run. Oracle.Cost must be safe for concurrent calls (all oracles in this
// package are: Cost reads only precomputed arrays); SweepOracle sweeps are
// inherently sequential in the bucket start and stay on one goroutine.
func RunDPWorkers(o Oracle, Bmax, workers int) (*DPTable, error) {
	n := o.N()
	if n <= 0 {
		return nil, fmt.Errorf("hist: empty domain")
	}
	if Bmax <= 0 {
		return nil, fmt.Errorf("hist: bucket budget %d, want >= 1", Bmax)
	}
	if Bmax > n {
		Bmax = n
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	t := &DPTable{oracle: o, n: n, bmax: Bmax}

	// opt[b][j]: optimal error of a (b+1)-bucket histogram over prefix
	// [0..j]; choice[b][j]: last bucket is [choice+1 .. j].
	t.opt = make([][]float64, Bmax)
	t.choice = make([][]int32, Bmax)
	for b := range t.opt {
		t.opt[b] = make([]float64, n)
		t.choice[b] = make([]int32, n)
	}
	costs := make([]float64, n)
	reps := make([]float64, n)
	sweeper, hasSweep := o.(SweepOracle)
	isSum := o.Combine() == Sum

	// partial[(b-1)*workers + w] is worker w's best candidate for level b at
	// the current end; reused across ends.
	partials := make([]dpPartial, (Bmax-1)*workers)

	for e := 0; e < n; e++ {
		if hasSweep {
			sweeper.CostsForEnd(e, costs, reps)
		} else if workers > 1 && e+1 >= parallelGrain {
			parallelRanges(workers, 0, e+1, func(lo, hi int) {
				for s := lo; s < hi; s++ {
					costs[s], reps[s] = o.Cost(s, e)
				}
			})
		} else {
			for s := 0; s <= e; s++ {
				costs[s], reps[s] = o.Cost(s, e)
			}
		}
		t.opt[0][e] = costs[0]
		t.choice[0][e] = -1
		top := Bmax
		if e+1 < top {
			top = e + 1
		}
		if top <= 1 {
			continue
		}
		if workers > 1 && (top-1)*e >= parallelGrain {
			// Split the split-point range [0, e) into one contiguous chunk
			// per worker; each worker reduces its chunk for every level b.
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				lo, hi := chunkBounds(w, workers, 0, e)
				if lo >= hi {
					for b := 1; b < top; b++ {
						partials[(b-1)*workers+w] = dpPartial{best: math.Inf(1), bestI: -1}
					}
					continue
				}
				wg.Add(1)
				go func(w, lo, hi int) {
					defer wg.Done()
					for b := 1; b < top; b++ {
						from := lo
						if from < b-1 {
							from = b - 1
						}
						partials[(b-1)*workers+w] = reduceSplits(t.opt[b-1], costs, from, hi, isSum)
					}
				}(w, lo, hi)
			}
			wg.Wait()
			for b := 1; b < top; b++ {
				best := math.Inf(1)
				bestI := int32(b - 1)
				for w := 0; w < workers; w++ {
					if p := partials[(b-1)*workers+w]; p.bestI >= 0 && p.best < best {
						best, bestI = p.best, p.bestI
					}
				}
				t.opt[b][e] = best
				t.choice[b][e] = bestI
			}
		} else {
			for b := 1; b < top; b++ {
				p := reduceSplits(t.opt[b-1], costs, b-1, e, isSum)
				best, bestI := p.best, p.bestI
				if bestI < 0 {
					best, bestI = math.Inf(1), int32(b-1)
				}
				t.opt[b][e] = best
				t.choice[b][e] = bestI
			}
		}
	}
	return t, nil
}

// dpPartial is one worker's candidate for a DP cell: the minimal combined
// error over its chunk of split points and the split achieving it
// (bestI < 0 when the chunk was empty).
type dpPartial struct {
	best  float64
	bestI int32
}

// reduceSplits scans split points i in [from, to), pricing prev[i] extended
// by a final bucket [i+1, e] whose cost is costs[i+1], and returns the
// minimum. Strict < keeps the smallest minimizing i, matching the serial
// DP's tie-breaking exactly.
func reduceSplits(prev, costs []float64, from, to int, isSum bool) dpPartial {
	best := math.Inf(1)
	bestI := int32(-1)
	if isSum {
		for i := from; i < to; i++ {
			if v := prev[i] + costs[i+1]; v < best {
				best, bestI = v, int32(i)
			}
		}
	} else {
		for i := from; i < to; i++ {
			v := prev[i]
			if c := costs[i+1]; c > v {
				v = c
			}
			if v < best {
				best, bestI = v, int32(i)
			}
		}
	}
	return dpPartial{best: best, bestI: bestI}
}

// chunkBounds splits [lo, hi) into `parts` near-equal contiguous chunks and
// returns the w-th.
func chunkBounds(w, parts, lo, hi int) (int, int) {
	span := hi - lo
	return lo + w*span/parts, lo + (w+1)*span/parts
}

// parallelRanges runs fn over the `parts` chunks of [lo, hi) concurrently
// and waits for all of them.
func parallelRanges(parts, lo, hi int, fn func(lo, hi int)) {
	var wg sync.WaitGroup
	for w := 0; w < parts; w++ {
		clo, chi := chunkBounds(w, parts, lo, hi)
		if clo >= chi {
			continue
		}
		wg.Add(1)
		go func(clo, chi int) {
			defer wg.Done()
			fn(clo, chi)
		}(clo, chi)
	}
	wg.Wait()
}

// Bmax returns the largest budget the table covers.
func (t *DPTable) Bmax() int { return t.bmax }

// Cost returns the optimal B-bucket error (B clamped to [1, Bmax]).
func (t *DPTable) Cost(B int) float64 {
	if B > t.bmax {
		B = t.bmax
	}
	return t.opt[B-1][t.n-1]
}

// Boundaries returns the optimal B-bucket start positions.
func (t *DPTable) Boundaries(B int) []int {
	if B > t.bmax {
		B = t.bmax
	}
	starts := make([]int, 0, B)
	b, j := B-1, t.n-1
	for b >= 0 {
		i := int(t.choice[b][j])
		starts = append(starts, i+1)
		j, b = i, b-1
	}
	for l, r := 0, len(starts)-1; l < r; l, r = l+1, r-1 {
		starts[l], starts[r] = starts[r], starts[l]
	}
	return starts
}

// Histogram materializes the optimal B-bucket histogram.
// A histogram may not benefit from all B buckets (zero-cost prefixes);
// it still contains exactly min(B, n) buckets as requested.
func (t *DPTable) Histogram(B int) (*Histogram, error) {
	return FromBoundaries(t.oracle, t.Boundaries(B))
}

// OptimalError returns only the optimal B-bucket error (no backtracking,
// O(n) memory per DP level). Used by tests and by error-normalization.
func OptimalError(o Oracle, B int) (float64, error) {
	h, err := Optimal(o, B)
	if err != nil {
		return 0, err
	}
	return h.Cost, nil
}
