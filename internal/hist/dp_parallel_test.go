package hist

// White-box tests that the parallel DP schedule is bit-identical to the
// serial one: same opt values (exact float equality) and same
// back-pointers, for every oracle family, at parallelism 1, 2, and
// NumCPU. Run under -race this also exercises the worker pool for data
// races.

import (
	"math/rand"
	"runtime"
	"testing"

	"probsyn/internal/engine"
	"probsyn/internal/metric"
	"probsyn/internal/pdata"
	"probsyn/internal/ptest"
)

// tablesIdentical reports whether two DP tables are bit-identical,
// returning a description of the first mismatch.
func tablesIdentical(t *testing.T, a, b *DPTable) {
	t.Helper()
	if a.n != b.n || a.bmax != b.bmax {
		t.Fatalf("table shapes differ: (n=%d, bmax=%d) vs (n=%d, bmax=%d)", a.n, a.bmax, b.n, b.bmax)
	}
	for lvl := range a.opt {
		for j := range a.opt[lvl] {
			if a.opt[lvl][j] != b.opt[lvl][j] {
				t.Fatalf("opt[%d][%d]: serial %v, parallel %v (not bit-identical)",
					lvl, j, a.opt[lvl][j], b.opt[lvl][j])
			}
			if a.choice[lvl][j] != b.choice[lvl][j] {
				t.Fatalf("choice[%d][%d]: serial %d, parallel %d",
					lvl, j, a.choice[lvl][j], b.choice[lvl][j])
			}
		}
	}
}

func parallelSources(rng *rand.Rand, n int) map[string]pdata.Source {
	return map[string]pdata.Source{
		"value": ptest.RandomValuePDF(rng, n, 3),
		"tuple": ptest.RandomTuplePDF(rng, n, 2*n, 3),
		"basic": ptest.RandomBasic(rng, n, 2*n),
	}
}

// finePool returns a pool whose grain is low enough that small test
// inputs actually take the parallel code paths. Grain lives in
// engine.Options — not a package global — so this is safe under parallel
// test execution.
func finePool(workers int) *engine.Pool {
	return engine.New(engine.Options{Workers: workers, Grain: 8})
}

func TestRunDPWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	// With the grain lowered, ends both below and above the threshold run
	// within one table, covering the serial fallback and both parallel
	// phases (cost sweep and split-point reduction).
	const n, B = 96, 9
	workerCounts := []int{1, 2, runtime.NumCPU()}
	for srcName, src := range parallelSources(rng, n) {
		for _, k := range []metric.Kind{metric.SSE, metric.SSEFixed, metric.SSRE,
			metric.SAE, metric.SARE, metric.MAE, metric.MARE} {
			o, err := NewOracle(src, k, metric.Params{C: 0.5})
			if err != nil {
				t.Fatalf("%s/%v: %v", srcName, k, err)
			}
			serial, err := RunDPWorkers(o, B, 1)
			if err != nil {
				t.Fatalf("%s/%v serial: %v", srcName, k, err)
			}
			for _, w := range workerCounts {
				par, err := RunDPPool(o, B, finePool(w))
				if err != nil {
					t.Fatalf("%s/%v workers=%d: %v", srcName, k, w, err)
				}
				tablesIdentical(t, serial, par)
			}
		}
	}
}

// The grain threshold must not change results: force tiny inputs through
// the parallel path-selection logic at every worker count.
func TestRunDPWorkersTinyDomains(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for n := 1; n <= 6; n++ {
		src := ptest.RandomValuePDF(rng, n, 3)
		o := NewSSEValue(src)
		for B := 1; B <= n+1; B++ {
			serial, err := RunDPWorkers(o, B, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{2, runtime.NumCPU()} {
				par, err := RunDPPool(o, B, finePool(w))
				if err != nil {
					t.Fatal(err)
				}
				tablesIdentical(t, serial, par)
			}
		}
	}
}

// RunDPWorkers with workers <= 0 resolves to NumCPU and must agree too
// (at the default grain, and through a fine-grained pool).
func TestRunDPWorkersDefaultWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	src := ptest.RandomTuplePDF(rng, 64, 128, 3)
	o := NewSSETuple(src)
	serial, err := RunDPWorkers(o, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunDPWorkers(o, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	tablesIdentical(t, serial, par)
	par, err = RunDPPool(o, 7, finePool(0))
	if err != nil {
		t.Fatal(err)
	}
	tablesIdentical(t, serial, par)
}

func TestApproximateWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	src := ptest.RandomValuePDF(rng, 80, 3)
	o := NewSSEValue(src)
	for _, eps := range []float64{0.1, 0.5} {
		serial, err := ApproximateWorkers(o, 6, eps, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, runtime.NumCPU(), 0} {
			par, err := ApproximatePool(o, 6, eps, finePool(w))
			if err != nil {
				t.Fatal(err)
			}
			if serial.Cost != par.Cost {
				t.Fatalf("eps=%g workers=%d: cost %v != serial %v", eps, w, par.Cost, serial.Cost)
			}
			sb, pb := serial.Boundaries(), par.Boundaries()
			if len(sb) != len(pb) {
				t.Fatalf("eps=%g workers=%d: %d boundaries != %d", eps, w, len(pb), len(sb))
			}
			for i := range sb {
				if sb[i] != pb[i] {
					t.Fatalf("eps=%g workers=%d: boundary %d is %d, serial %d", eps, w, i, pb[i], sb[i])
				}
			}
		}
	}
}

// OptimalWorkers must agree with Optimal on the materialized histogram.
func TestOptimalWorkersMatchesOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	src := ptest.RandomBasic(rng, 48, 80)
	o, err := NewOracle(src, metric.SAE, metric.Params{C: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	h1, err := Optimal(o, 5)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := OptimalWorkers(o, 5, runtime.NumCPU())
	if err != nil {
		t.Fatal(err)
	}
	if h1.Cost != h2.Cost || h1.B() != h2.B() {
		t.Fatalf("parallel histogram (B=%d, cost=%v) != serial (B=%d, cost=%v)",
			h2.B(), h2.Cost, h1.B(), h1.Cost)
	}
	for k := range h1.Buckets {
		if h1.Buckets[k] != h2.Buckets[k] {
			t.Fatalf("bucket %d: %+v != %+v", k, h2.Buckets[k], h1.Buckets[k])
		}
	}
}
