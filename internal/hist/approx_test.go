package hist_test

import (
	"math/rand"
	"testing"

	"probsyn/internal/hist"
	"probsyn/internal/metric"
	"probsyn/internal/pdata"
	"probsyn/internal/ptest"
)

func TestApproximateWithinBound(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 10; trial++ {
		src := ptest.RandomTuplePDF(rng, 16, 14, 3)
		for _, k := range []metric.Kind{metric.SSE, metric.SSRE, metric.SAE} {
			o, err := hist.NewOracle(src, k, metric.Params{C: 0.5})
			if err != nil {
				t.Fatal(err)
			}
			for _, eps := range []float64{0.1, 0.5} {
				for B := 1; B <= 6; B++ {
					opt, err := hist.Optimal(o, B)
					if err != nil {
						t.Fatal(err)
					}
					apx, err := hist.Approximate(o, B, eps)
					if err != nil {
						t.Fatal(err)
					}
					if err := apx.Validate(); err != nil {
						t.Fatalf("%v B=%d: invalid approx histogram: %v", k, B, err)
					}
					if apx.Cost < opt.Cost-1e-9 {
						t.Fatalf("%v B=%d: approx %v below optimal %v", k, B, apx.Cost, opt.Cost)
					}
					if apx.Cost > (1+eps)*opt.Cost+1e-9 {
						t.Fatalf("%v trial %d B=%d eps=%v: approx %v exceeds bound over optimal %v",
							k, trial, B, eps, apx.Cost, opt.Cost)
					}
				}
			}
		}
	}
}

func TestApproximateUsesAtMostBBuckets(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	src := ptest.RandomValuePDF(rng, 12, 3)
	o := hist.NewSSEValue(src)
	apx, err := hist.Approximate(o, 5, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if apx.B() > 5 {
		t.Fatalf("approx used %d buckets, budget 5", apx.B())
	}
}

func TestApproximateArgumentErrors(t *testing.T) {
	src := pdata.Deterministic([]float64{1, 2, 3})
	o := hist.NewSSEValue(src)
	if _, err := hist.Approximate(o, 0, 0.1); err == nil {
		t.Error("B=0 accepted")
	}
	if _, err := hist.Approximate(o, 2, 0); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := hist.Approximate(o, 2, -1); err == nil {
		t.Error("negative eps accepted")
	}
}

func TestApproximateRejectsMaxMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	src := ptest.RandomValuePDF(rng, 6, 2)
	o, err := hist.NewOracle(src, metric.MAE, metric.Params{C: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hist.Approximate(o, 2, 0.1); err == nil {
		t.Error("Approximate accepted a max-error metric")
	}
}

// On deterministic runs the approximation must still find the zero-error
// bucketing (the zero-cost breakpoint class must be handled).
func TestApproximateZeroErrorPrefix(t *testing.T) {
	freqs := []float64{4, 4, 4, 4, 1, 1, 1, 1}
	o := hist.NewSSEValue(pdata.Deterministic(freqs))
	apx, err := hist.Approximate(o, 2, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if apx.Cost > 1e-12 {
		t.Fatalf("approx cost %v, want 0", apx.Cost)
	}
}
