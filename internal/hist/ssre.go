package hist

import (
	"probsyn/internal/metric"
	"probsyn/internal/numeric"
	"probsyn/internal/pdata"
)

// SSRE is the sum-squared-relative-error oracle (§3.2, Theorem 2). With
// w(v) = 1/max(c,|v|)², the bucket cost is a quadratic in the
// representative b̂ whose optimum and value come from three prefix arrays:
//
//	X[e] = Σ_{i<=e} Σ_j Pr[g_i=v_j]·v_j²·w(v_j)
//	Y[e] = Σ_{i<=e} Σ_j Pr[g_i=v_j]·v_j·w(v_j)
//	Z[e] = Σ_{i<=e} Σ_j Pr[g_i=v_j]·w(v_j)
//
// cost(s,e) = X − Y²/Z with b̂* = Y/Z (range forms). Implicit zero mass
// contributes w(0)·Pr[g_i=0] to Z only. Tuple pdf inputs go through the
// induced value pdf: the cost depends only on per-item marginals.
type SSRE struct {
	x, y, z numeric.Prefix
}

// NewSSRE builds the oracle for a value pdf under sanity constant p.C.
func NewSSRE(vp *pdata.ValuePDF, p metric.Params) *SSRE {
	n := vp.N
	xs := make([]float64, n)
	ys := make([]float64, n)
	zs := make([]float64, n)
	w0 := metric.SSRE.Weight(0, p)
	for i := 0; i < n; i++ {
		var xi, yi, zi float64
		for _, e := range vp.Items[i].Entries {
			if e.Freq == 0 {
				continue // folded into the zero mass below
			}
			w := metric.SSRE.Weight(e.Freq, p)
			pw := e.Prob * w
			xi += pw * e.Freq * e.Freq
			yi += pw * e.Freq
			zi += pw
		}
		zi += vp.Items[i].ZeroProb() * w0
		xs[i], ys[i], zs[i] = xi, yi, zi
	}
	return &SSRE{x: numeric.NewPrefix(xs), y: numeric.NewPrefix(ys), z: numeric.NewPrefix(zs)}
}

// N returns the domain size.
func (o *SSRE) N() int { return o.x.Len() }

// Combine returns Sum.
func (o *SSRE) Combine() Combine { return Sum }

// Cost prices bucket [s, e] in O(1).
func (o *SSRE) Cost(s, e int) (float64, float64) {
	z := o.z.Range(s, e)
	if z <= 0 {
		return 0, 0
	}
	y := o.y.Range(s, e)
	cost := o.x.Range(s, e) - y*y/z
	if cost < 0 {
		cost = 0
	}
	return cost, y / z
}
