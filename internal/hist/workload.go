package hist

import (
	"fmt"

	"probsyn/internal/numeric"
	"probsyn/internal/pdata"
)

// WorkloadSSE is a workload-weighted fixed-representative SSE oracle — the
// extension the paper's concluding remarks call for ("the error objective
// formulations... implicitly assume uniform workloads for point queries").
// Given non-negative per-item query weights w_i (e.g. point-query access
// frequencies), the bucket cost is
//
//	Σ_{i∈b} w_i·E[(g_i − b̂)²]
//	  = Σ w_i·E[g_i²] − (Σ w_i·E[g_i])² / Σ w_i   at the optimal
//	b̂* = Σ w_i·E[g_i] / Σ w_i  (the weight-weighted expected mean),
//
// still O(1) per bucket from three prefix arrays, so the same DP applies
// unchanged. Uniform weights reduce to SSEFixed.
type WorkloadSSE struct {
	wMeanSq numeric.Prefix // Σ w·E[g²]
	wMean   numeric.Prefix // Σ w·E[g]
	w       numeric.Prefix // Σ w
}

// NewWorkloadSSE builds the oracle; weights must be non-negative with
// length equal to the source's domain.
func NewWorkloadSSE(src pdata.Source, weights []float64) (*WorkloadSSE, error) {
	n := src.Domain()
	if len(weights) != n {
		return nil, fmt.Errorf("hist: %d weights for domain %d", len(weights), n)
	}
	mom := pdata.MomentsOf(src)
	wsq := make([]float64, n)
	wm := make([]float64, n)
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("hist: negative weight %v at item %d", w, i)
		}
		wsq[i] = w * mom.MeanSq[i]
		wm[i] = w * mom.Mean[i]
	}
	return &WorkloadSSE{
		wMeanSq: numeric.NewPrefix(wsq),
		wMean:   numeric.NewPrefix(wm),
		w:       numeric.NewPrefix(weights),
	}, nil
}

// N returns the domain size.
func (o *WorkloadSSE) N() int { return o.w.Len() }

// Combine returns Sum.
func (o *WorkloadSSE) Combine() Combine { return Sum }

// Cost prices bucket [s, e] in O(1).
func (o *WorkloadSSE) Cost(s, e int) (float64, float64) {
	w := o.w.Range(s, e)
	if w <= 0 {
		// Unqueried bucket: any representative works and costs nothing.
		return 0, 0
	}
	m := o.wMean.Range(s, e)
	cost := o.wMeanSq.Range(s, e) - m*m/w
	if cost < 0 {
		cost = 0
	}
	return cost, m / w
}
