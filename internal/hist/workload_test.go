package hist_test

import (
	"math"
	"math/rand"
	"testing"

	"probsyn/internal/hist"
	"probsyn/internal/metric"
	"probsyn/internal/pdata"
	"probsyn/internal/ptest"
)

// weightedExactCost computes Σ w_i·E[(g_i − rep)²] by enumeration.
func weightedExactCost(src pdata.Source, weights []float64, s, e int, rep float64) float64 {
	per := ptest.PerItemExpectedErrors(src, metric.SSEFixed, metric.Params{}, rep)
	total := 0.0
	for i := s; i <= e; i++ {
		total += weights[i] * per[i]
	}
	return total
}

func TestWorkloadSSEAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 15; trial++ {
		src := ptest.RandomTuplePDF(rng, 5, 4, 2)
		weights := make([]float64, 5)
		for i := range weights {
			weights[i] = rng.Float64() * 3
		}
		o, err := hist.NewWorkloadSSE(src, weights)
		if err != nil {
			t.Fatal(err)
		}
		allBuckets(5, func(s, e int) {
			cost, rep := o.Cost(s, e)
			want := weightedExactCost(src, weights, s, e, rep)
			if math.Abs(cost-want) > 1e-9 {
				t.Fatalf("trial %d [%d,%d]: cost %v, enum %v", trial, s, e, cost, want)
			}
			for _, d := range []float64{-0.1, 0.1} {
				if alt := weightedExactCost(src, weights, s, e, rep+d); alt < cost-1e-9 {
					t.Fatalf("trial %d [%d,%d]: rep %v suboptimal", trial, s, e, rep)
				}
			}
		})
	}
}

func TestWorkloadSSEUniformReducesToSSEFixed(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	src := ptest.RandomValuePDF(rng, 8, 3)
	uniform := make([]float64, 8)
	for i := range uniform {
		uniform[i] = 1
	}
	wo, err := hist.NewWorkloadSSE(src, uniform)
	if err != nil {
		t.Fatal(err)
	}
	fo := hist.NewSSEFixed(src)
	allBuckets(8, func(s, e int) {
		wc, wr := wo.Cost(s, e)
		fc, fr := fo.Cost(s, e)
		if math.Abs(wc-fc) > 1e-9 || math.Abs(wr-fr) > 1e-9 {
			t.Fatalf("[%d,%d]: workload (%v,%v) vs fixed (%v,%v)", s, e, wc, wr, fc, fr)
		}
	})
}

// Skewed workloads must reshape the bucketing: items the workload never
// queries should not consume boundary budget.
func TestWorkloadSSESkewReshapesBuckets(t *testing.T) {
	// Data with structure on both halves, workload that only queries the
	// left half.
	freqs := []float64{1, 9, 2, 8, 5, 5, 100, 100}
	src := pdata.Deterministic(freqs)
	weights := []float64{1, 1, 1, 1, 0, 0, 0, 0}
	o, err := hist.NewWorkloadSSE(src, weights)
	if err != nil {
		t.Fatal(err)
	}
	h, err := hist.Optimal(o, 4)
	if err != nil {
		t.Fatal(err)
	}
	// All split budget must land in the queried half: last bucket should
	// cover the whole unqueried right region at zero cost.
	if h.Cost > 1e-9 {
		t.Fatalf("4 buckets over 4 queried items should cost 0, got %v", h.Cost)
	}
	last := h.Buckets[len(h.Buckets)-1]
	if last.Start > 4 {
		t.Fatalf("boundary budget wasted on unqueried items: %+v", h.Buckets)
	}
}

func TestWorkloadSSEDPMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for trial := 0; trial < 8; trial++ {
		src := ptest.RandomValuePDF(rng, 7, 3)
		weights := make([]float64, 7)
		for i := range weights {
			weights[i] = rng.Float64() * 2
		}
		o, err := hist.NewWorkloadSSE(src, weights)
		if err != nil {
			t.Fatal(err)
		}
		for B := 1; B <= 3; B++ {
			h, err := hist.Optimal(o, B)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteForceOptimal(o, B)
			if math.Abs(h.Cost-want) > 1e-8*(1+want) {
				t.Fatalf("trial %d B=%d: DP %v, brute force %v", trial, B, h.Cost, want)
			}
		}
	}
}

func TestWorkloadSSEArgumentErrors(t *testing.T) {
	src := pdata.Deterministic([]float64{1, 2})
	if _, err := hist.NewWorkloadSSE(src, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := hist.NewWorkloadSSE(src, []float64{1, -1}); err == nil {
		t.Error("negative weight accepted")
	}
}
