package hist_test

import (
	"math"
	"math/rand"
	"testing"

	"probsyn/internal/hist"
	"probsyn/internal/metric"
	"probsyn/internal/pdata"
	"probsyn/internal/ptest"
)

const costTol = 1e-9

// allBuckets invokes f on every (s, e) bucket of a small domain.
func allBuckets(n int, f func(s, e int)) {
	for s := 0; s < n; s++ {
		for e := s; e < n; e++ {
			f(s, e)
		}
	}
}

// --- SSE (paper Eq. 5 objective) -------------------------------------------

func TestSSEValueOracleAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		vp := ptest.RandomValuePDF(rng, 5, 3)
		o := hist.NewSSEValue(vp)
		if o.N() != 5 || o.Combine() != hist.Sum {
			t.Fatal("oracle shape wrong")
		}
		allBuckets(5, func(s, e int) {
			got, _ := o.Cost(s, e)
			want := ptest.ExactClairvoyantSSE(vp, s, e)
			if math.Abs(got-want) > costTol {
				t.Fatalf("trial %d bucket[%d,%d]: cost %v, enum %v", trial, s, e, got, want)
			}
		})
	}
}

func TestSSEValueFractionalFrequencies(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	for trial := 0; trial < 10; trial++ {
		vp := ptest.RandomFractionalValuePDF(rng, 4, 3)
		o := hist.NewSSEValue(vp)
		allBuckets(4, func(s, e int) {
			got, _ := o.Cost(s, e)
			want := ptest.ExactClairvoyantSSE(vp, s, e)
			if math.Abs(got-want) > costTol {
				t.Fatalf("trial %d bucket[%d,%d]: cost %v, enum %v", trial, s, e, got, want)
			}
		})
	}
}

func TestSSETupleOracleAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 25; trial++ {
		tp := ptest.RandomTuplePDF(rng, 5, 4, 3) // multi-alternative: straddling likely
		o := hist.NewSSETuple(tp)
		allBuckets(5, func(s, e int) {
			got, _ := o.Cost(s, e)
			want := ptest.ExactClairvoyantSSE(tp, s, e)
			if math.Abs(got-want) > costTol {
				t.Fatalf("trial %d bucket[%d,%d]: cost %v, enum %v", trial, s, e, got, want)
			}
		})
	}
}

func TestSSETupleSweepMatchesRandomAccess(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 20; trial++ {
		tp := ptest.RandomTuplePDF(rng, 7, 6, 3)
		o := hist.NewSSETuple(tp)
		costs := make([]float64, 7)
		reps := make([]float64, 7)
		for e := 0; e < 7; e++ {
			o.CostsForEnd(e, costs, reps)
			for s := 0; s <= e; s++ {
				c, r := o.Cost(s, e)
				if math.Abs(c-costs[s]) > costTol || math.Abs(r-reps[s]) > costTol {
					t.Fatalf("trial %d [%d,%d]: sweep (%v,%v) vs random access (%v,%v)",
						trial, s, e, costs[s], reps[s], c, r)
				}
			}
		}
	}
}

// §3.1 worked example: bucket 1..3 of the Example 1 tuple pdf costs 29/36.
func TestSSETupleWorkedExample(t *testing.T) {
	tp := &pdata.TuplePDF{N: 3, Tuples: []pdata.Tuple{
		{Alts: []pdata.Alternative{{Item: 0, Prob: 0.5}, {Item: 1, Prob: 1.0 / 3}}},
		{Alts: []pdata.Alternative{{Item: 1, Prob: 0.25}, {Item: 2, Prob: 0.5}}},
	}}
	o := hist.NewSSETuple(tp)
	got, _ := o.Cost(0, 2)
	if math.Abs(got-29.0/36) > 1e-12 {
		t.Fatalf("bucket[0,2] cost = %v, want 29/36", got)
	}
}

// In the basic model no tuple straddles any boundary, so the paper's
// closed form is exact (DESIGN.md finding 3).
func TestSSETupleClosedFormExactForBasicModel(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		b := ptest.RandomBasic(rng, 5, 6)
		exact := hist.NewSSETuple(b.TuplePDF())
		closed := hist.NewSSETupleClosedForm(b.TuplePDF())
		allBuckets(5, func(s, e int) {
			ce, _ := exact.Cost(s, e)
			cc, _ := closed.Cost(s, e)
			if math.Abs(ce-cc) > costTol {
				t.Fatalf("trial %d [%d,%d]: exact %v vs closed form %v", trial, s, e, ce, cc)
			}
		})
	}
}

// With a tuple whose alternatives straddle a bucket boundary, the closed
// form deviates from the exact (enumeration-verified) cost.
func TestSSETupleClosedFormDeviatesOnStraddle(t *testing.T) {
	tp := &pdata.TuplePDF{N: 3, Tuples: []pdata.Tuple{
		{Alts: []pdata.Alternative{{Item: 0, Prob: 0.5}, {Item: 2, Prob: 0.5}}},
	}}
	exact := hist.NewSSETuple(tp)
	closed := hist.NewSSETupleClosedForm(tp)
	want := ptest.ExactClairvoyantSSE(tp, 1, 2)
	ce, _ := exact.Cost(1, 2)
	cc, _ := closed.Cost(1, 2)
	if math.Abs(ce-want) > costTol {
		t.Fatalf("exact oracle %v disagrees with enumeration %v", ce, want)
	}
	if math.Abs(cc-want) < 1e-6 {
		t.Fatalf("closed form %v unexpectedly matches enumeration %v on straddling input", cc, want)
	}
}

// --- SSE with a fixed representative ----------------------------------------

func TestSSEFixedAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	sources := func() []pdata.Source {
		return []pdata.Source{
			ptest.RandomValuePDF(rng, 4, 3),
			ptest.RandomTuplePDF(rng, 4, 4, 2),
			ptest.RandomBasic(rng, 4, 5),
		}
	}
	for trial := 0; trial < 10; trial++ {
		for _, src := range sources() {
			o := hist.NewSSEFixed(src)
			allBuckets(4, func(s, e int) {
				cost, rep := o.Cost(s, e)
				want := ptest.ExactBucketCost(src, metric.SSEFixed, metric.Params{}, s, e, rep)
				if math.Abs(cost-want) > costTol {
					t.Fatalf("%T [%d,%d]: cost %v, enum-at-rep %v", src, s, e, cost, want)
				}
				// rep must be optimal: nudging it must not decrease the cost
				for _, d := range []float64{-0.1, 0.1} {
					alt := ptest.ExactBucketCost(src, metric.SSEFixed, metric.Params{}, s, e, rep+d)
					if alt < cost-costTol {
						t.Fatalf("%T [%d,%d]: rep %v suboptimal (%v beats %v)", src, s, e, rep, alt, cost)
					}
				}
			})
		}
	}
}

// Finding 1: under the fixed-representative SSE objective the optimal
// bucketing coincides with the V-optimal bucketing of the expected
// frequencies (the "Expectation heuristic").
func TestSSEFixedOptimalEqualsExpectationVOpt(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		src := ptest.RandomTuplePDF(rng, 8, 6, 3)
		oProb := hist.NewSSEFixed(src)
		oDet := hist.NewSSEFixed(pdata.Deterministic(src.ExpectedFreqs()))
		for B := 1; B <= 4; B++ {
			hProb, err := hist.Optimal(oProb, B)
			if err != nil {
				t.Fatal(err)
			}
			hDet, err := hist.Optimal(oDet, B)
			if err != nil {
				t.Fatal(err)
			}
			// Equal cost when the deterministic bucketing is priced under
			// the probabilistic fixed-rep oracle (ties may differ in layout).
			reprice, err := hist.FromBoundaries(oProb, hDet.Boundaries())
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(reprice.Cost-hProb.Cost) > 1e-7*(1+hProb.Cost) {
				t.Fatalf("trial %d B=%d: expectation V-opt cost %v != probabilistic %v",
					trial, B, reprice.Cost, hProb.Cost)
			}
		}
	}
}

// --- SSRE -------------------------------------------------------------------

func TestSSREOracleAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	p := metric.Params{C: 0.5}
	for trial := 0; trial < 15; trial++ {
		for _, src := range []pdata.Source{
			ptest.RandomValuePDF(rng, 4, 3),
			ptest.RandomTuplePDF(rng, 4, 4, 2),
		} {
			o := hist.NewSSRE(pdata.AsValuePDF(src), p)
			allBuckets(4, func(s, e int) {
				cost, rep := o.Cost(s, e)
				want := ptest.ExactBucketCost(src, metric.SSRE, p, s, e, rep)
				if math.Abs(cost-want) > costTol {
					t.Fatalf("%T [%d,%d]: cost %v, enum-at-rep %v", src, s, e, cost, want)
				}
				for _, d := range []float64{-0.2, 0.2} {
					alt := ptest.ExactBucketCost(src, metric.SSRE, p, s, e, rep+d)
					if alt < cost-costTol {
						t.Fatalf("%T [%d,%d]: rep %v suboptimal", src, s, e, rep)
					}
				}
			})
		}
	}
}

// --- SAE / SARE --------------------------------------------------------------

func TestWeightedAbsAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	p := metric.Params{C: 0.5}
	for trial := 0; trial < 12; trial++ {
		for _, k := range []metric.Kind{metric.SAE, metric.SARE} {
			for _, src := range []pdata.Source{
				ptest.RandomValuePDF(rng, 4, 3),
				ptest.RandomTuplePDF(rng, 4, 3, 2),
			} {
				vp := pdata.AsValuePDF(src)
				vs := pdata.Support(vp)
				tab, err := pdata.NewPMFTable(vp, vs)
				if err != nil {
					t.Fatal(err)
				}
				o, err := hist.NewWeightedAbs(tab, k, p)
				if err != nil {
					t.Fatal(err)
				}
				allBuckets(4, func(s, e int) {
					cost, rep := o.Cost(s, e)
					want := ptest.ExactBucketCost(src, k, p, s, e, rep)
					if math.Abs(cost-want) > costTol {
						t.Fatalf("%v %T [%d,%d]: cost %v, enum-at-rep %v", k, src, s, e, cost, want)
					}
					// optimal over every candidate value in V (paper: the
					// optimum is attained at a member of V)
					for _, v := range vs.Values {
						alt := ptest.ExactBucketCost(src, k, p, s, e, v)
						if alt < cost-costTol {
							t.Fatalf("%v %T [%d,%d]: rep %v (cost %v) beaten by %v (cost %v)",
								k, src, s, e, rep, cost, v, alt)
						}
					}
				})
			}
		}
	}
}

func TestWeightedAbsRejectsWrongMetric(t *testing.T) {
	vp := ptest.RandomValuePDF(rand.New(rand.NewSource(1)), 3, 2)
	tab, err := pdata.NewPMFTable(vp, pdata.Support(vp))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hist.NewWeightedAbs(tab, metric.SSE, metric.Params{}); err == nil {
		t.Fatal("WeightedAbs accepted SSE")
	}
}

// --- MAE / MARE ---------------------------------------------------------------

func TestMaxAbsAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	p := metric.Params{C: 0.5}
	for trial := 0; trial < 12; trial++ {
		for _, k := range []metric.Kind{metric.MAE, metric.MARE} {
			for _, src := range []pdata.Source{
				ptest.RandomValuePDF(rng, 4, 3),
				ptest.RandomTuplePDF(rng, 4, 3, 2),
			} {
				vp := pdata.AsValuePDF(src)
				vs := pdata.Support(vp)
				tab, err := pdata.NewPMFTable(vp, vs)
				if err != nil {
					t.Fatal(err)
				}
				o, err := hist.NewMaxAbs(tab, k, p)
				if err != nil {
					t.Fatal(err)
				}
				allBuckets(4, func(s, e int) {
					cost, rep := o.Cost(s, e)
					want := ptest.ExactBucketCost(src, k, p, s, e, rep)
					if math.Abs(cost-want) > costTol {
						t.Fatalf("%v %T [%d,%d]: cost %v, enum-at-rep %v", k, src, s, e, cost, want)
					}
					// optimality against a fine grid of fractional candidates
					maxV := vs.Values[vs.Len()-1]
					for g := 0; g <= 60; g++ {
						cand := maxV * float64(g) / 60
						alt := ptest.ExactBucketCost(src, k, p, s, e, cand)
						if alt < cost-1e-7 {
							t.Fatalf("%v %T [%d,%d]: rep %v (cost %v) beaten by %v (cost %v)",
								k, src, s, e, rep, cost, cand, alt)
						}
					}
				})
			}
		}
	}
}

func TestMaxAbsRejectsWrongMetric(t *testing.T) {
	vp := ptest.RandomValuePDF(rand.New(rand.NewSource(1)), 3, 2)
	tab, err := pdata.NewPMFTable(vp, pdata.Support(vp))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hist.NewMaxAbs(tab, metric.SAE, metric.Params{}); err == nil {
		t.Fatal("MaxAbs accepted SAE")
	}
}

// --- oracle factory -----------------------------------------------------------

func TestNewOracleRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	p := metric.DefaultParams()
	srcs := []pdata.Source{
		ptest.RandomValuePDF(rng, 4, 2),
		ptest.RandomTuplePDF(rng, 4, 3, 2),
		ptest.RandomBasic(rng, 4, 4),
	}
	kinds := []metric.Kind{metric.SSE, metric.SSEFixed, metric.SSRE,
		metric.SAE, metric.SARE, metric.MAE, metric.MARE}
	for _, src := range srcs {
		for _, k := range kinds {
			o, err := hist.NewOracle(src, k, p)
			if err != nil {
				t.Fatalf("NewOracle(%T, %v): %v", src, k, err)
			}
			if o.N() != 4 {
				t.Fatalf("NewOracle(%T, %v): N = %d", src, k, o.N())
			}
			wantCombine := hist.Sum
			if !k.Cumulative() {
				wantCombine = hist.Max
			}
			if o.Combine() != wantCombine {
				t.Fatalf("NewOracle(%T, %v): combine mismatch", src, k)
			}
		}
	}
}
