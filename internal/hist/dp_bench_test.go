package hist

// Benchmarks pinning the pruned DP's output-sensitivity claim: the same
// (n, B, metric) build through the default pruned reduction vs. the dense
// reference (DenseDPEnv forced). The data is structured — piecewise-
// constant segments plus small noise — which is where monotonicity
// pruning bites; both variants run on a serial pool so cost-evals/op is
// deterministic and the timing isolates the split-scan work rather than
// scheduling. scripts/bench_json.sh carries cost-evals/op into the
// committed snapshot, and scripts/bench_gate.sh compares it run-to-run
// (the count is exact, so any growth is a real algorithmic change).
import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"probsyn/internal/engine"
	"probsyn/internal/metric"
	"probsyn/internal/pdata"
)

// benchSegmented builds a deterministic n-item source with 16 flat
// segments of increasing level plus ±0.25 uniform noise: large inter-
// segment cost steps (deep prev-side cuts) with enough jitter that no
// bucket is exactly free.
func benchSegmented(n int) *pdata.ValuePDF {
	rng := rand.New(rand.NewSource(1009))
	freqs := make([]float64, n)
	seg := n / 16
	for i := range freqs {
		freqs[i] = float64(i/seg)*4 + rng.Float64()*0.5 - 0.25
	}
	return pdata.Deterministic(freqs)
}

func benchDP(b *testing.B, dense bool, n, B int, k metric.Kind) {
	b.Helper()
	o, err := NewOracle(benchSegmented(n), k, metric.Params{C: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	if dense {
		os.Setenv(DenseDPEnv, "1")
		defer os.Unsetenv(DenseDPEnv)
	}
	pool := engine.New(engine.Options{Workers: 1})
	var st DPStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := RunDPPool(o, B, pool)
		if err != nil {
			b.Fatal(err)
		}
		st = tab.Stats()
	}
	b.ReportMetric(float64(st.CostEvals), "cost-evals/op")
	b.ReportMetric(float64(st.CandidatesScanned), "scanned/op")
}

func benchDPGrid(b *testing.B, dense bool) {
	b.Helper()
	for _, n := range []int{2048, 8192} {
		for _, B := range []int{50, 200} {
			for _, k := range []metric.Kind{metric.SSE, metric.SSRE, metric.SARE} {
				b.Run(fmt.Sprintf("n=%d/B=%d/%s", n, B, k), func(b *testing.B) {
					benchDP(b, dense, n, B, k)
				})
			}
		}
	}
}

// BenchmarkHistDPPruned: the default path. Compare each sub-benchmark
// against its BenchmarkHistDPDense twin; the SSE n=8192/B=200 pair is
// the headline (>= 3x in the committed snapshot).
func BenchmarkHistDPPruned(b *testing.B) { benchDPGrid(b, false) }

// BenchmarkHistDPDense: the dense reference, same grid.
func BenchmarkHistDPDense(b *testing.B) { benchDPGrid(b, true) }
