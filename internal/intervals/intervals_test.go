package intervals

import (
	"math/rand"
	"sort"
	"testing"
)

func bruteStab(ivs []Interval, x int) []int {
	var ids []int
	for _, iv := range ivs {
		if iv.Lo <= x && x <= iv.Hi {
			ids = append(ids, iv.ID)
		}
	}
	sort.Ints(ids)
	return ids
}

func treeStab(t *Tree, x int) []int {
	var ids []int
	t.Stab(x, func(iv Interval) bool { ids = append(ids, iv.ID); return true })
	sort.Ints(ids)
	return ids
}

func TestEmptyTree(t *testing.T) {
	tr := New(nil)
	if tr.Size() != 0 {
		t.Fatalf("Size = %d", tr.Size())
	}
	if got := treeStab(tr, 5); len(got) != 0 {
		t.Fatalf("stab on empty tree returned %v", got)
	}
}

func TestSingleInterval(t *testing.T) {
	tr := New([]Interval{{Lo: 2, Hi: 5, ID: 1}})
	for x, want := range map[int]int{1: 0, 2: 1, 3: 1, 5: 1, 6: 0} {
		if got := tr.CountStab(x); got != want {
			t.Errorf("CountStab(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestInvalidIntervalsDropped(t *testing.T) {
	tr := New([]Interval{{Lo: 5, Hi: 2, ID: 1}, {Lo: 1, Hi: 1, ID: 2}})
	if tr.Size() != 1 {
		t.Fatalf("Size = %d, want 1 (reversed interval dropped)", tr.Size())
	}
}

func TestPointIntervals(t *testing.T) {
	ivs := []Interval{{0, 0, 1}, {0, 0, 2}, {3, 3, 3}}
	tr := New(ivs)
	if got := treeStab(tr, 0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("stab(0) = %v", got)
	}
	if got := tr.CountStab(1); got != 0 {
		t.Fatalf("stab(1) = %d, want 0", got)
	}
}

func TestNestedAndOverlapping(t *testing.T) {
	ivs := []Interval{
		{0, 100, 1}, {10, 20, 2}, {15, 60, 3}, {59, 61, 4}, {90, 95, 5},
	}
	tr := New(ivs)
	for x := -2; x <= 102; x++ {
		got := treeStab(tr, x)
		want := bruteStab(ivs, x)
		if len(got) != len(want) {
			t.Fatalf("stab(%d) = %v, want %v", x, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("stab(%d) = %v, want %v", x, got, want)
			}
		}
	}
}

func TestStabEarlyStop(t *testing.T) {
	ivs := []Interval{{0, 10, 1}, {0, 10, 2}, {0, 10, 3}}
	tr := New(ivs)
	calls := 0
	tr.Stab(5, func(Interval) bool { calls++; return calls < 2 })
	if calls != 2 {
		t.Fatalf("visited %d intervals after early stop, want 2", calls)
	}
}

func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		m := 1 + rng.Intn(200)
		ivs := make([]Interval, m)
		for i := range ivs {
			lo := rng.Intn(300)
			ivs[i] = Interval{Lo: lo, Hi: lo + rng.Intn(40), ID: i}
		}
		tr := New(ivs)
		if tr.Size() != m {
			t.Fatalf("Size = %d, want %d", tr.Size(), m)
		}
		for q := 0; q < 100; q++ {
			x := rng.Intn(360) - 10
			got, want := treeStab(tr, x), bruteStab(ivs, x)
			if len(got) != len(want) {
				t.Fatalf("trial %d: stab(%d) %d hits, want %d", trial, x, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d: stab(%d) = %v, want %v", trial, x, got, want)
				}
			}
		}
	}
}
