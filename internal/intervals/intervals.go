// Package intervals implements a static centered interval tree supporting
// stabbing queries: report all intervals containing a query point. The
// tuple-pdf SSE oracle uses it to locate the tuples whose alternative spans
// straddle a bucket boundary (§3.1; DESIGN.md finding 3).
package intervals

import "sort"

// Interval is a closed integer interval [Lo, Hi] carrying a caller ID.
type Interval struct {
	Lo, Hi int
	ID     int
}

// Tree is an immutable centered interval tree.
type Tree struct {
	root *node
	size int
}

type node struct {
	center      int
	byLo        []Interval // intervals containing center, ascending Lo
	byHi        []Interval // same intervals, descending Hi
	left, right *node
}

// New builds a tree over the given intervals. Intervals with Lo > Hi are
// ignored. The input slice is not retained.
func New(ivs []Interval) *Tree {
	valid := make([]Interval, 0, len(ivs))
	for _, iv := range ivs {
		if iv.Lo <= iv.Hi {
			valid = append(valid, iv)
		}
	}
	t := &Tree{size: len(valid)}
	t.root = build(valid)
	return t
}

func build(ivs []Interval) *node {
	if len(ivs) == 0 {
		return nil
	}
	// Center on the median of all endpoints for balance.
	endpoints := make([]int, 0, 2*len(ivs))
	for _, iv := range ivs {
		endpoints = append(endpoints, iv.Lo, iv.Hi)
	}
	sort.Ints(endpoints)
	center := endpoints[len(endpoints)/2]

	var leftIvs, rightIvs, here []Interval
	for _, iv := range ivs {
		switch {
		case iv.Hi < center:
			leftIvs = append(leftIvs, iv)
		case iv.Lo > center:
			rightIvs = append(rightIvs, iv)
		default:
			here = append(here, iv)
		}
	}
	n := &node{center: center}
	n.byLo = append([]Interval(nil), here...)
	sort.Slice(n.byLo, func(a, b int) bool { return n.byLo[a].Lo < n.byLo[b].Lo })
	n.byHi = append([]Interval(nil), here...)
	sort.Slice(n.byHi, func(a, b int) bool { return n.byHi[a].Hi > n.byHi[b].Hi })
	n.left = build(leftIvs)
	n.right = build(rightIvs)
	return n
}

// Size returns the number of stored intervals.
func (t *Tree) Size() int { return t.size }

// Stab calls visit for every interval containing x, in unspecified order.
// Traversal stops early if visit returns false.
func (t *Tree) Stab(x int, visit func(Interval) bool) {
	stab(t.root, x, visit)
}

func stab(n *node, x int, visit func(Interval) bool) bool {
	if n == nil {
		return true
	}
	switch {
	case x < n.center:
		for _, iv := range n.byLo {
			if iv.Lo > x {
				break
			}
			if !visit(iv) {
				return false
			}
		}
		return stab(n.left, x, visit)
	case x > n.center:
		for _, iv := range n.byHi {
			if iv.Hi < x {
				break
			}
			if !visit(iv) {
				return false
			}
		}
		return stab(n.right, x, visit)
	default: // x == center: every interval stored here contains x
		for _, iv := range n.byLo {
			if !visit(iv) {
				return false
			}
		}
		return true
	}
}

// CountStab returns the number of intervals containing x.
func (t *Tree) CountStab(x int) int {
	c := 0
	t.Stab(x, func(Interval) bool { c++; return true })
	return c
}
