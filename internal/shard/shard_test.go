package shard

import (
	"math"
	"math/rand"
	"testing"
)

func TestBoundsTile(t *testing.T) {
	for _, n := range []int{1, 7, 64, 65536} {
		for _, k := range []int{1, 2, 3, 4, 8} {
			b := Bounds(n, k)
			if b[0] != 0 || b[k] != n {
				t.Fatalf("Bounds(%d,%d) = %v: endpoints wrong", n, k, b)
			}
			for s := 0; s < k; s++ {
				if b[s+1] < b[s] {
					t.Fatalf("Bounds(%d,%d) = %v: not monotone", n, k, b)
				}
				if w := b[s+1] - b[s]; w > n/k+1 {
					t.Fatalf("Bounds(%d,%d) = %v: shard %d width %d not near-equal", n, k, b, s, w)
				}
			}
		}
	}
}

// bruteAlloc enumerates every split of total across k shards (each >= 1,
// clamped at its cap for pricing) and returns the optimal combined cost.
func bruteAlloc(total int, caps []int, cumulative bool, cost func(s, b int) float64) float64 {
	k := len(caps)
	best := math.Inf(1)
	var rec func(s, left int, acc float64)
	rec = func(s, left int, acc float64) {
		if s == k-1 {
			if left < 1 {
				return
			}
			b := min(left, caps[s])
			c := cost(s, b)
			if cumulative {
				c += acc
			} else {
				c = math.Max(c, acc)
			}
			if c < best {
				best = c
			}
			return
		}
		for b := 1; b <= left-(k-1-s); b++ {
			c := cost(s, min(b, caps[s]))
			if cumulative {
				rec(s+1, left-b, acc+c)
			} else {
				rec(s+1, left-b, math.Max(acc, c))
			}
		}
	}
	rec(0, total, 0)
	return best
}

func TestAllocateMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(4)
		caps := make([]int, k)
		frontiers := make([][]float64, k)
		for s := range caps {
			caps[s] = 1 + rng.Intn(6)
			// Random non-increasing frontier.
			f := make([]float64, caps[s]+1)
			v := 10 * rng.Float64()
			for b := 1; b <= caps[s]; b++ {
				f[b] = v
				v *= rng.Float64()
			}
			frontiers[s] = f
		}
		cost := func(s, b int) float64 { return frontiers[s][b] }
		for _, cumulative := range []bool{true, false} {
			maxTotal := k + rng.Intn(12)
			a, err := Allocate(maxTotal, caps, cumulative, cost)
			if err != nil {
				t.Fatal(err)
			}
			for total := k; total <= maxTotal; total++ {
				want := bruteAlloc(total, caps, cumulative, cost)
				if got := a.Cost(total); got != want {
					t.Fatalf("trial %d cum=%v: Cost(%d) = %v, brute force %v (caps %v)",
						trial, cumulative, total, got, want, caps)
				}
				// The recovered split must achieve the cost it claims.
				split := a.Split(total)
				sum, achieved := 0, 0.0
				if !cumulative {
					achieved = math.Inf(-1)
				}
				for s, b := range split {
					if b < 1 || b > caps[s] {
						t.Fatalf("split %v entry %d outside [1, %d]", split, s, caps[s])
					}
					sum += b
					if cumulative {
						achieved += cost(s, b)
					} else {
						achieved = math.Max(achieved, cost(s, b))
					}
				}
				if sum > total {
					t.Fatalf("split %v spends %d > total %d", split, sum, total)
				}
				if math.Abs(achieved-a.Cost(total)) > 1e-12*math.Max(1, achieved) {
					t.Fatalf("split %v achieves %v, table says %v", split, achieved, a.Cost(total))
				}
			}
		}
	}
}

func TestAllocateRejectsBadInputs(t *testing.T) {
	cost := func(_, _ int) float64 { return 0 }
	if _, err := Allocate(3, nil, true, cost); err == nil {
		t.Fatal("no shards accepted")
	}
	if _, err := Allocate(1, []int{1, 1}, true, cost); err == nil {
		t.Fatal("total below k accepted")
	}
	if _, err := Allocate(3, []int{1, 0}, true, cost); err == nil {
		t.Fatal("zero cap accepted")
	}
}
