// Package shard holds the two pieces of domain-sharded synopsis
// construction that every family shares: the deterministic contiguous
// partition of an item domain into k shards, and the exact budget-
// allocation dynamic program that recombines per-shard cost frontiers
// into one global budget split.
//
// The allocation DP is exact, not a greedy frontier walk: per-shard
// frontiers need not be convex (a histogram's marginal gain can jump
// when one extra bucket isolates a spike), and a greedy walk commits to
// locally-best increments that a non-convex frontier punishes. The DP
// costs O(k·T²) frontier lookups for a total budget T — negligible next
// to the per-shard builds it stitches together — and is deterministic:
// budgets are scanned in ascending order with strict <, so ties resolve
// to the same split on every run and at every worker count.
package shard

import (
	"fmt"
	"math"
)

// Bounds returns the k+1 boundaries of the contiguous near-equal
// partition of [0, n) into k shards: shard s covers
// [Bounds(n,k)[s], Bounds(n,k)[s+1]). The split is the same arithmetic
// the engine's ChunkBounds uses, so any process that knows (n, k)
// recomputes identical boundaries — the cluster's scatter/gather layer
// depends on that to split range queries without coordination.
func Bounds(n, k int) []int {
	out := make([]int, k+1)
	for s := 0; s <= k; s++ {
		out[s] = s * n / k
	}
	return out
}

// Alloc is a solved budget-allocation DP over k per-shard cost
// frontiers: Cost(t) answers the optimal combined cost of splitting a
// total budget t across the shards with every shard allocated at least
// one term, for every t up to the solved maximum, and Split(t) recovers
// the per-shard budgets achieving it.
type Alloc struct {
	k        int
	maxTotal int
	caps     []int
	vals     [][]float64 // vals[s][t]: best combined cost of shards 0..s at total t
	pick     [][]int     // pick[s][t]: shard s's budget in that optimum
}

// Allocate solves the allocation DP up to maxTotal. caps[s] is shard
// s's frontier ceiling (its Bmax): cost(s, b) is consulted only for
// 1 <= b <= caps[s], and allocations beyond the cap are priced at the
// cap — budget past a frontier's ceiling cannot reduce its cost, so the
// clamp is exact, and the recorded pick is the clamped budget the
// caller can extract at. cumulative selects how per-shard costs
// combine: sum for cumulative metrics, max for maximum-error ones.
// cost must be non-increasing in b and safe for repeated calls.
func Allocate(maxTotal int, caps []int, cumulative bool, cost func(s, b int) float64) (*Alloc, error) {
	k := len(caps)
	if k < 1 {
		return nil, fmt.Errorf("shard: no shards to allocate over")
	}
	if maxTotal < k {
		return nil, fmt.Errorf("shard: total budget %d cannot give %d shards one term each", maxTotal, k)
	}
	for s, c := range caps {
		if c < 1 {
			return nil, fmt.Errorf("shard: shard %d has frontier cap %d, want >= 1", s, c)
		}
	}
	a := &Alloc{k: k, maxTotal: maxTotal, caps: append([]int(nil), caps...)}
	ccost := func(s, b int) float64 {
		if b > caps[s] {
			b = caps[s]
		}
		return cost(s, b)
	}
	a.vals = make([][]float64, k)
	a.pick = make([][]int, k)
	for s := 0; s < k; s++ {
		a.vals[s] = make([]float64, maxTotal+1)
		a.pick[s] = make([]int, maxTotal+1)
		for t := range a.vals[s] {
			a.vals[s][t] = math.Inf(1)
		}
	}
	for t := 1; t <= maxTotal; t++ {
		a.vals[0][t] = ccost(0, t)
		a.pick[0][t] = min(t, caps[0])
	}
	for s := 1; s < k; s++ {
		for t := s + 1; t <= maxTotal; t++ {
			best, bestB := math.Inf(1), 0
			bhi := t - s // shards 0..s-1 need one term each
			if bhi > caps[s] {
				bhi = caps[s]
			}
			for b := 1; b <= bhi; b++ {
				prev := a.vals[s-1][t-b]
				c := ccost(s, b)
				if cumulative {
					c += prev
				} else if prev > c {
					c = prev
				}
				if c < best {
					best, bestB = c, b
				}
			}
			a.vals[s][t] = best
			a.pick[s][t] = bestB
		}
	}
	return a, nil
}

// MaxTotal returns the largest total budget the DP was solved to.
func (a *Alloc) MaxTotal() int { return a.maxTotal }

// Cost returns the optimal combined cost at the given total budget,
// clamped to [k, MaxTotal].
func (a *Alloc) Cost(total int) float64 {
	return a.vals[a.k-1][a.clamp(total)]
}

// Split returns the per-shard budgets of the optimum at the given total
// (clamped like Cost). Every entry is within [1, caps[s]]; the entries
// sum to at most the total (less when a shard's cap binds).
func (a *Alloc) Split(total int) []int {
	t := a.clamp(total)
	out := make([]int, a.k)
	for s := a.k - 1; s >= 1; s-- {
		out[s] = a.pick[s][t]
		// The DP scanned unclamped budgets; recover the unclamped step to
		// keep the running total consistent with the table indices.
		t -= out[s]
	}
	out[0] = a.pick[0][t]
	return out
}

func (a *Alloc) clamp(total int) int {
	if total > a.maxTotal {
		total = a.maxTotal
	}
	if total < a.k {
		total = a.k
	}
	return total
}
